GO ?= go

.PHONY: all build test race vet check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages under the race detector:
# the real-time runtime (node loop, UDP reader, Status/Snapshot sampling)
# and the protocol core it drives.
race:
	$(GO) test -race ./internal/rt/... ./internal/core/...

# check is the tier-1 gate: everything builds, vets clean, passes the
# full suite, and the rt/core packages pass under -race.
check: vet test race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build test race vet check bench bench-diff bench-smoke bench-throughput bench-groups chaos-smoke chaos-soak inspect-smoke trace-smoke join-smoke capture-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages under the race detector:
# the real-time runtime (node loop, UDP reader, Status/Snapshot sampling),
# the sharded multi-group runtime (shared-socket demux, shard loops, the
# shared burst sender), the protocol core they drive, the flight recorder
# and health evaluator (sampler goroutine vs concurrent readers), the
# cluster inspector (parallel probes against live nodes), and the
# cross-node trace stitcher (parallel /trace collection), and the fault
# injection layer whose checker audits invariants across restarts (the
# rt and core lists include the join/state-transfer paths: Cluster.Restart
# swaps the process on the loop goroutine while Status/Send race it).
race:
	$(GO) test -race ./internal/rt/... ./internal/topics/... ./internal/core/... ./internal/obs/... ./internal/health/... ./internal/inspect/... ./internal/stitch/... ./internal/faultrt/...

# check is the tier-1 gate: everything builds, vets clean, passes the
# full suite, the concurrency-sensitive packages pass under -race, every
# benchmark body still runs (one iteration each), a seeded chaos soak
# upholds the uniform invariants under the race detector, and a live
# three-member cluster inspects healthy end to end through the real
# binaries — including the forensic pipeline: capture dumps from real
# nodes must replay offline to a clean verdict.
check: vet test race bench-smoke bench-throughput bench-groups chaos-smoke inspect-smoke trace-smoke join-smoke capture-smoke

# inspect-smoke boots three urcgc-node processes, points urcgc-inspect at
# their observability endpoints, and requires a healthy one-shot verdict —
# the end-to-end gate for the flight recorder, /healthz and the
# cluster-wide divergence detector.
inspect-smoke:
	sh scripts/inspect_smoke.sh

# trace-smoke boots a three-member two-group cluster with lifecycle
# tracing on and requires urcgc-trace to stitch at least one cross-node
# message timeline out of the members' /trace reports — the end-to-end
# gate for per-group spans, /trace?group=N and the (group, MID) join.
trace-smoke:
	sh scripts/trace_smoke.sh

# join-smoke is the dynamic-membership end-to-end gate: three urcgc-node
# processes form a group, one is kill -9'd, the survivors exclude it, and
# a restart with -join must state-transfer back in, be re-admitted into
# every view, answer /healthz 200 and leave urcgc-inspect healthy. A
# failure with URCGC_CAPTURE_DIR set preserves the live members' /capture
# dumps there for urcgc-replay (CI uploads them as artifacts).
join-smoke:
	sh scripts/join_smoke.sh

# capture-smoke is the forensic-pipeline end-to-end gate: three urcgc-node
# processes with the frame flight recorder on (-capture), a burst of
# multicast traffic, then urcgc-replay collects every member's /capture
# dump and must reproduce a clean verdict offline — from the live
# endpoints and again from the saved dump files.
capture-smoke:
	sh scripts/capture_smoke.sh

# chaos-smoke is the CI chaos gate: a short seeded soak (one crash, one
# healed partition, 1/100 omission bursts, background reordering and
# duplication) under -race, audited for uniform atomicity and ordering;
# plus the rolling-restart smoke (every member kill -9'd and rejoined in
# turn under omissions, invariants audited across incarnations).
chaos-smoke:
	$(GO) test -race -run 'TestSmokeSoak|TestSameSeedSamePlan|TestRollingRestartSmoke' -count 1 ./internal/chaos/

# chaos-soak is the 60-second acceptance soak (same shape, longer wall
# clock), which also asserts member health degraded under the faults and
# recovered after; the five-member rolling-restart soak (every member
# kill -9'd and rejoined sequentially under 1/100 omission, the uniform
# invariants audited across incarnations); plus the five-member
# partition/heal demo: inspect healthy -> divergence naming the cut-off
# member -> healthy again. Also available interactively as
# `go run ./cmd/urcgc-chaos`.
chaos-soak:
	URCGC_CHAOS_SOAK=1 $(GO) test -race -run 'TestLongSoak|TestRollingRestartSoak' -count 1 -timeout 10m -v ./internal/chaos/
	$(GO) test -race -run TestInspectPartitionRecovery -count 1 -timeout 10m -v ./internal/inspect/

# bench runs the full baseline suite at real benchtimes and refreshes
# BENCH_BASELINE.json (the previous recording is preserved under
# "previous" for before/after comparison). Expect a few minutes.
bench:
	$(GO) run ./cmd/urcgc-bench -baseline BENCH_BASELINE.json

# bench-diff is the perf regression guard: re-run the guarded families
# (Wire codec, ThroughputSaturation, GroupScaling) fresh and fail on a
# >25% ns/op regression against the recorded BENCH_BASELINE.json. Not in
# `check` — absolute timings on shared CI runners are too noisy to gate
# merges on; run it locally around perf-sensitive changes.
bench-diff:
	$(GO) run ./cmd/urcgc-bench -diff BENCH_BASELINE.json

# bench-smoke executes every benchmark once — a compile-and-run gate,
# not a measurement.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-throughput is the batched hot-path smoke: a short run of the
# ThroughputSaturation family (msgs/sec x cluster size x batch size) on
# the live mesh runtime, exercising the coalescing sender and DataBatch
# frames under real concurrency. Full-length numbers are recorded by
# `make bench` into BENCH_BASELINE.json.
bench-throughput:
	$(GO) test -bench 'BenchmarkThroughputSaturation' -benchtime 500ms -run '^$$' .

# bench-groups is the sharded multi-group smoke: two groups over two shard
# loops must sustain at least 1.5x the single-group aggregate msgs/s, or
# the runtime has regressed into serializing its groups. Full-length
# scaling points (1/2/4/8 groups) are recorded by `make bench` into
# BENCH_BASELINE.json under the GroupScaling family.
bench-groups:
	URCGC_BENCH_GROUPS=1 $(GO) test -run TestGroupScalingSmoke -count 1 -v .

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build test race vet check bench bench-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages under the race detector:
# the real-time runtime (node loop, UDP reader, Status/Snapshot sampling)
# and the protocol core it drives.
race:
	$(GO) test -race ./internal/rt/... ./internal/core/...

# check is the tier-1 gate: everything builds, vets clean, passes the
# full suite, the rt/core packages pass under -race, and every benchmark
# body still runs (one iteration each).
check: vet test race bench-smoke

# bench runs the full baseline suite at real benchtimes and refreshes
# BENCH_BASELINE.json (the previous recording is preserved under
# "previous" for before/after comparison). Expect a few minutes.
bench:
	$(GO) run ./cmd/urcgc-bench -baseline BENCH_BASELINE.json

# bench-smoke executes every benchmark once — a compile-and-run gate,
# not a measurement.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

clean:
	$(GO) clean ./...

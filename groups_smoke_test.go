package urcgc

import (
	"os"
	"testing"

	"urcgc/internal/benchsuite"
)

// TestGroupScalingSmoke is the `make bench-groups` gate: hosting two groups
// over two shards must beat the single-group baseline by at least 1.5x in
// aggregate confirmed msgs/s. Per-group throughput is round-pacing-bound,
// so if multiplexing a second group does NOT add throughput, the sharded
// runtime has regressed into serializing its groups. Gated behind an env
// var because it measures wall-clock rates — a plain `go test ./...` (and
// especially -race) should not depend on scheduler timing.
func TestGroupScalingSmoke(t *testing.T) {
	if os.Getenv("URCGC_BENCH_GROUPS") == "" {
		t.Skip("set URCGC_BENCH_GROUPS=1 (or run `make bench-groups`) to run the group-scaling smoke")
	}
	single := testing.Benchmark(benchsuite.GroupScalingG1S1)
	multi := testing.Benchmark(benchsuite.GroupScalingG2S2)
	s := single.Extra["msgs/s"]
	m := multi.Extra["msgs/s"]
	if s <= 0 || m <= 0 {
		t.Fatalf("benchmarks reported no rate: single %v msgs/s, multi %v msgs/s", s, m)
	}
	t.Logf("aggregate: 1 group/1 shard %.0f msgs/s, 2 groups/2 shards %.0f msgs/s (%.2fx)", s, m, m/s)
	if m < 1.5*s {
		t.Fatalf("2 groups over 2 shards sustained %.0f msgs/s, want >= 1.5x the single-group %.0f msgs/s", m, s)
	}
}

// Package urcgc is a complete Go implementation of the urcgc protocol from
// Aiello, Pagani and Rossi, "Causal Ordering in Reliable Group
// Communications" (SIGCOMM 1993): uniform reliable causal multicast built
// on a rotating coordinator, history buffers and reliably circulated
// per-subrun decisions, with the paper's CBCAST and Psync baselines, a
// deterministic simulation substrate, live goroutine/UDP runtimes, and a
// benchmark harness regenerating every table and figure of the paper's
// evaluation.
//
// Start with README.md for the tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-vs-measured comparison. The root
// package holds only the benchmark harness (bench_test.go); the library
// lives under internal/.
package urcgc

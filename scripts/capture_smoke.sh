#!/bin/sh
# capture-smoke: boot a three-member urcgc cluster from the real binaries
# with the frame flight recorder on, drive a burst of multicast traffic,
# then collect every member's /capture dump with urcgc-replay and require
# the offline replay to reproduce a clean verdict — the end-to-end gate
# for the whole forensic pipeline: capture hooks -> ring -> /capture ->
# dump codec -> timeline merge -> deterministic replay -> invariant audit.
#
# Traffic is driven through stdin (not -chatter) so it stops before the
# captures are fetched: the atomicity audit compares survivors' processed
# sets exactly, and frames still in flight at the snapshot cut would read
# as spurious breaches. The retry loop absorbs any residual settle time.
set -eu

GO=${GO:-go}
BIN=$(mktemp -d)
trap 'kill $P0 $P1 $P2 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/urcgc-node" ./cmd/urcgc-node
$GO build -o "$BIN/urcgc-replay" ./cmd/urcgc-replay

# Fixed loopback ports, chosen high and unusual to avoid collisions (and
# distinct from the other smokes so they can share a CI job).
PEERS=127.0.0.1:17861,127.0.0.1:17862,127.0.0.1:17863
OBS0=127.0.0.1:18861
OBS1=127.0.0.1:18862
OBS2=127.0.0.1:18863

# Each member multicasts a burst of lines over stdin, then holds stdin
# open (EOF would shut the node down) while the cluster settles and the
# captures are fetched.
feed() {
    i=0
    while [ $i -lt 15 ]; do
        echo "smoke-$1-$i"
        i=$((i + 1))
        sleep 0.05
    done
    sleep 60
}
feed 0 | "$BIN/urcgc-node" -self 0 -peers "$PEERS" -metrics "$OBS0" -round 5ms -capture 16384 >"$BIN/node0.log" 2>&1 & P0=$!
feed 1 | "$BIN/urcgc-node" -self 1 -peers "$PEERS" -metrics "$OBS1" -round 5ms -capture 16384 >"$BIN/node1.log" 2>&1 & P1=$!
feed 2 | "$BIN/urcgc-node" -self 2 -peers "$PEERS" -metrics "$OBS2" -round 5ms -capture 16384 >"$BIN/node2.log" 2>&1 & P2=$!

# Let the burst decide everywhere (K subruns at round 5ms is ~tens of ms;
# the 15x50ms feeders dominate), then fetch + replay. Retries absorb a
# slow CI runner still settling its last decisions.
sleep 3
tries=0
until "$BIN/urcgc-replay" -nodes "$OBS0,$OBS1,$OBS2" -save "$BIN/dumps" >"$BIN/replay.out" 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 8 ]; then
        echo "capture-smoke: replay never reached a clean verdict" >&2
        cat "$BIN/replay.out" >&2
        echo "--- node 0 ---" >&2; cat "$BIN/node0.log" >&2
        echo "--- node 1 ---" >&2; cat "$BIN/node1.log" >&2
        echo "--- node 2 ---" >&2; cat "$BIN/node2.log" >&2
        exit 1
    fi
    sleep 2
done
cat "$BIN/replay.out"

# Guard against a vacuous pass: the replay must have fed real traffic.
if grep -q 'fed 0 ingress' "$BIN/replay.out"; then
    echo "capture-smoke: clean verdict but no frames were ever fed" >&2
    exit 1
fi

# The saved dumps must round-trip offline too — same clean verdict from
# the artifacts alone, the path an operator replays after the fact.
if ! "$BIN/urcgc-replay" "$BIN/dumps" >"$BIN/replay-offline.out" 2>&1; then
    echo "capture-smoke: saved dumps did not replay clean" >&2
    cat "$BIN/replay-offline.out" >&2
    exit 1
fi
echo "capture-smoke: clean replay from live endpoints and saved dumps"

#!/bin/sh
# trace-smoke: boot a three-member two-group urcgc cluster from the real
# binaries with lifecycle tracing on, let the chatter generate traffic,
# then require urcgc-trace to stitch at least one cross-node message
# timeline out of the members' /trace reports (exit 0). This is the
# end-to-end gate for the tracing stack: per-group lifecycle spans ->
# /trace?group=N -> cross-node collection -> the (group, MID) join.
set -eu

GO=${GO:-go}
BIN=$(mktemp -d)
trap 'kill $P0 $P1 $P2 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/urcgc-node" ./cmd/urcgc-node
$GO build -o "$BIN/urcgc-trace" ./cmd/urcgc-trace

# Fixed loopback ports, chosen high and unusual to avoid collisions (and
# distinct from inspect_smoke.sh so both smokes can run back to back).
PEERS=127.0.0.1:17851,127.0.0.1:17852,127.0.0.1:17853
OBS0=127.0.0.1:18851
OBS1=127.0.0.1:18852
OBS2=127.0.0.1:18853

# -groups 2 exercises the multi-group /trace shape; -chatter keeps every
# member submitting (and keeps it running past stdin EOF); -trace-slow
# enables the lifecycle tracer that /trace serves.
FLAGS="-peers $PEERS -groups 2 -round 5ms -chatter 50ms -trace-slow 250ms -sample 100ms"
"$BIN/urcgc-node" -self 0 $FLAGS -metrics "$OBS0" </dev/null >"$BIN/node0.log" 2>&1 & P0=$!
"$BIN/urcgc-node" -self 1 $FLAGS -metrics "$OBS1" </dev/null >"$BIN/node1.log" 2>&1 & P1=$!
"$BIN/urcgc-node" -self 2 $FLAGS -metrics "$OBS2" </dev/null >"$BIN/node2.log" 2>&1 & P2=$!

# Give the group a moment to form and chatter to flow, then require a
# non-empty stitched report (-min 1 exits 1 otherwise); retry briefly so a
# slow CI runner's boot doesn't flake the gate.
sleep 2
tries=0
until "$BIN/urcgc-trace" -nodes "$OBS0,$OBS1,$OBS2" -min 1 >"$BIN/report.txt" 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 8 ]; then
        echo "trace-smoke: never stitched a message" >&2
        echo "--- urcgc-trace ---" >&2; cat "$BIN/report.txt" >&2
        echo "--- node 0 ---" >&2; cat "$BIN/node0.log" >&2
        echo "--- node 1 ---" >&2; cat "$BIN/node1.log" >&2
        echo "--- node 2 ---" >&2; cat "$BIN/node2.log" >&2
        exit 1
    fi
    sleep 2
done
head -2 "$BIN/report.txt"
echo "trace-smoke: stitched"

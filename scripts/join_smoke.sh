#!/bin/sh
# join-smoke: boot a three-member urcgc cluster from the real binaries,
# kill -9 one member, let the survivors exclude it, then restart it with
# -join and require the full end-to-end rejoin: state transfer from a live
# member, re-admission into every view, /healthz 200 on all members, and a
# healthy one-shot urcgc-inspect verdict. This is the end-to-end gate for
# dynamic membership: Join/JoinState PDUs -> core join state machine ->
# rt restart -> joining status/health grace -> inspect informational kind.
set -eu

GO=${GO:-go}
BIN=$(mktemp -d)
trap 'kill $P0 $P1 $P2 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/urcgc-node" ./cmd/urcgc-node
$GO build -o "$BIN/urcgc-inspect" ./cmd/urcgc-inspect

# Fixed loopback ports, chosen high and unusual to avoid collisions (and
# distinct from inspect_smoke/trace_smoke so the smokes can run in one CI
# job without racing each other's sockets).
PEERS=127.0.0.1:17851,127.0.0.1:17852,127.0.0.1:17853
OBS0=127.0.0.1:18851
OBS1=127.0.0.1:18852
OBS2=127.0.0.1:18853

# -chatter keeps each member generating traffic (the protocol's silence
# detection and the joiner's re-admission both need live subruns);
# -sample 100ms gives the flight recorder a fast window.
"$BIN/urcgc-node" -self 0 -peers "$PEERS" -metrics "$OBS0" -round 5ms -sample 100ms -chatter 50ms -capture 16384 </dev/null >"$BIN/node0.log" 2>&1 & P0=$!
"$BIN/urcgc-node" -self 1 -peers "$PEERS" -metrics "$OBS1" -round 5ms -sample 100ms -chatter 50ms -capture 16384 </dev/null >"$BIN/node1.log" 2>&1 & P1=$!
"$BIN/urcgc-node" -self 2 -peers "$PEERS" -metrics "$OBS2" -round 5ms -sample 100ms -chatter 50ms -capture 16384 </dev/null >"$BIN/node2.log" 2>&1 & P2=$!

dump_logs() {
    echo "--- node 0 ---" >&2; cat "$BIN/node0.log" >&2
    echo "--- node 1 ---" >&2; cat "$BIN/node1.log" >&2
    echo "--- node 2 ---" >&2; cat "$BIN/node2.log" >&2
    [ -f "$BIN/node2-rejoin.log" ] && { echo "--- node 2 (rejoin) ---" >&2; cat "$BIN/node2-rejoin.log" >&2; }
    preserve_captures
}

# preserve_captures saves the live members' frame flight recorders to
# URCGC_CAPTURE_DIR (CI exports it and uploads the dumps as artifacts),
# so a failed gate can be replayed offline with urcgc-replay.
preserve_captures() {
    [ -n "${URCGC_CAPTURE_DIR:-}" ] || return 0
    mkdir -p "$URCGC_CAPTURE_DIR"
    for i in 0 1 2; do
        eval "obs=\$OBS$i"
        if curl -fsS "http://$obs/capture" -o "$URCGC_CAPTURE_DIR/capture-node$i.bin" 2>/dev/null; then
            echo "join-smoke: saved $URCGC_CAPTURE_DIR/capture-node$i.bin (replay with urcgc-replay)" >&2
        fi
    done
}

# wait_until <tries> <sleep> <message> <cmd...>: retry a probe until it
# succeeds, dumping the member logs and failing the gate if it never does.
wait_until() {
    tries=$1; pause=$2; msg=$3; shift 3
    n=0
    until "$@"; do
        n=$((n + 1))
        if [ "$n" -ge "$tries" ]; then
            echo "join-smoke: $msg" >&2
            dump_logs
            exit 1
        fi
        sleep "$pause"
    done
}

# Phase 1: the cluster forms and inspects healthy.
sleep 2
wait_until 8 2 "cluster never inspected healthy" \
    "$BIN/urcgc-inspect" -nodes "$OBS0,$OBS1,$OBS2" -grace 1s >/dev/null

# Phase 2: kill -9 member 2; the survivors' silence detection must
# exclude it from the view (alive mask [true true false] at member 0).
kill -9 "$P2"
wait "$P2" 2>/dev/null || true
echo "join-smoke: killed member 2, waiting for exclusion"
excluded() { curl -fsS "http://$OBS0/status" 2>/dev/null | grep -q 'alive.*\[true true false\]'; }
wait_until 60 0.5 "survivors never excluded the killed member" excluded

# Phase 3: restart member 2 with -join. It must state-transfer, be
# re-admitted into every member's view, and log the completed join.
"$BIN/urcgc-node" -self 2 -peers "$PEERS" -metrics "$OBS2" -round 5ms -sample 100ms -chatter 50ms -capture 16384 -join </dev/null >"$BIN/node2-rejoin.log" 2>&1 & P2=$!
echo "join-smoke: restarted member 2 with -join"
rejoined_log() { grep -q 'rejoined the group' "$BIN/node2-rejoin.log"; }
wait_until 60 0.5 "restarted member never completed its join" rejoined_log
readmitted() {
    for obs in "$OBS0" "$OBS1" "$OBS2"; do
        curl -fsS "http://$obs/status" 2>/dev/null | grep -q 'alive.*\[true true true\]' || return 1
    done
}
wait_until 60 0.5 "views never re-admitted the restarted member" readmitted

# Phase 4: /healthz answers 200 on every member (the join grace window
# must not leave a lingering 503), and the cluster-wide verdict is
# healthy again — the joining state may appear only informationally.
healthz_ok() {
    for obs in "$OBS0" "$OBS1" "$OBS2"; do
        curl -fsS "http://$obs/healthz" >/dev/null 2>&1 || return 1
    done
}
wait_until 30 1 "a member still answers /healthz 503 after the rejoin" healthz_ok
wait_until 8 2 "cluster never inspected healthy after the rejoin" \
    "$BIN/urcgc-inspect" -nodes "$OBS0,$OBS1,$OBS2" -grace 1s >/dev/null

echo "join-smoke: member 2 rejoined; cluster healthy"

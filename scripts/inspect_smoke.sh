#!/bin/sh
# inspect-smoke: boot a three-member urcgc cluster from the real binaries,
# point urcgc-inspect at the members' observability endpoints, and require
# a healthy one-shot verdict (exit 0). This is the end-to-end gate for the
# whole health stack: core callbacks -> rt gauges -> flight recorder ->
# /healthz + /timeseries -> cluster-wide reconstruction.
set -eu

GO=${GO:-go}
BIN=$(mktemp -d)
trap 'kill $P0 $P1 $P2 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/urcgc-node" ./cmd/urcgc-node
$GO build -o "$BIN/urcgc-inspect" ./cmd/urcgc-inspect

# Fixed loopback ports, chosen high and unusual to avoid collisions.
PEERS=127.0.0.1:17841,127.0.0.1:17842,127.0.0.1:17843
OBS0=127.0.0.1:18841
OBS1=127.0.0.1:18842
OBS2=127.0.0.1:18843

# -chatter keeps each member generating traffic (and keeps it running past
# stdin EOF); -sample 100ms gives the flight recorder a fast window.
"$BIN/urcgc-node" -self 0 -peers "$PEERS" -metrics "$OBS0" -round 5ms -sample 100ms -chatter 50ms </dev/null >"$BIN/node0.log" 2>&1 & P0=$!
"$BIN/urcgc-node" -self 1 -peers "$PEERS" -metrics "$OBS1" -round 5ms -sample 100ms -chatter 50ms </dev/null >"$BIN/node1.log" 2>&1 & P1=$!
"$BIN/urcgc-node" -self 2 -peers "$PEERS" -metrics "$OBS2" -round 5ms -sample 100ms -chatter 50ms </dev/null >"$BIN/node2.log" 2>&1 & P2=$!

# Give the group a moment to form, then require a healthy verdict; retry
# briefly so a slow CI runner's boot doesn't flake the gate.
sleep 2
tries=0
until "$BIN/urcgc-inspect" -nodes "$OBS0,$OBS1,$OBS2" -grace 1s; do
    tries=$((tries + 1))
    if [ "$tries" -ge 8 ]; then
        echo "inspect-smoke: cluster never inspected healthy" >&2
        echo "--- node 0 ---" >&2; cat "$BIN/node0.log" >&2
        echo "--- node 1 ---" >&2; cat "$BIN/node1.log" >&2
        echo "--- node 2 ---" >&2; cat "$BIN/node2.log" >&2
        exit 1
    fi
    sleep 2
done
echo "inspect-smoke: healthy"

// Streams: the general interpretation of Definition 3.1 — each process
// roots several concurrent sequences — applied to the multimedia-space
// setting the paper aims at.
//
//	go run ./examples/streams
//
// Two producers each publish an audio stream and a video stream. The
// streams are concurrent (audio never waits for video), except at chapter
// marks: a chapter-start video frame is labelled as causally dependent on
// the last audio sample of the previous chapter, so every consumer switches
// chapters in sync while everything else interleaves freely. Runs in the
// deterministic simulator via the virtual-member construction.
package main

import (
	"fmt"
	"log"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/virtual"
)

const (
	producers = 2
	audio     = 0 // stream index
	video     = 1
	chapters  = 3
	perChap   = 4 // audio samples and video frames per chapter
)

func main() {
	g, err := virtual.NewGroup(virtual.Config{
		Mapping: virtual.Mapping{Procs: producers, StreamsPerProc: 2},
		K:       3, R: 8, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Per-producer production plan, advanced one step per subrun.
	type plan struct {
		chapter, a, v int
		lastAudio     virtual.MsgID
		pendingMark   bool
	}
	plans := make([]plan, producers)

	_, err = g.Run(core.RunOptions{
		MaxRounds: 400,
		MinRounds: 2 * 2 * chapters * perChap,
		OnRound: func(round int) {
			if round%2 != 0 {
				return
			}
			for p := range plans {
				pl := &plans[p]
				owner := mid.ProcID(p)
				if pl.chapter >= chapters {
					continue
				}
				// Audio flows every subrun.
				if pl.a < perChap {
					id, err := g.Submit(virtual.StreamID{Owner: owner, Stream: audio},
						[]byte(fmt.Sprintf("p%d ch%d audio %d", p, pl.chapter, pl.a)), nil)
					if err == nil {
						pl.lastAudio = id
						pl.a++
					}
				}
				// Video flows too; the first frame of a new chapter waits
				// for the previous chapter's audio to have been processed
				// by our own video member, then carries the causal label.
				switch {
				case pl.v == 0 && pl.chapter > 0 && !pl.pendingMark:
					pl.pendingMark = true
				case pl.v == 0 && pl.chapter > 0:
					seen, _ := g.Processed(owner, pl.lastAudio.Stream)
					if seen < pl.lastAudio.Seq {
						continue // chapter mark not yet processable
					}
					if _, err := g.Submit(virtual.StreamID{Owner: owner, Stream: video},
						[]byte(fmt.Sprintf("p%d ch%d MARK", p, pl.chapter)),
						[]virtual.MsgID{pl.lastAudio}); err == nil {
						pl.pendingMark = false
						pl.v++
					}
				case pl.v < perChap:
					if _, err := g.Submit(virtual.StreamID{Owner: owner, Stream: video},
						[]byte(fmt.Sprintf("p%d ch%d video %d", p, pl.chapter, pl.v)), nil); err == nil {
						pl.v++
					}
				}
				if pl.a >= perChap && pl.v >= perChap {
					pl.chapter++
					pl.a, pl.v = 0, 0
					if pl.chapter > 0 {
						pl.v = 0 // next chapter starts with the mark frame
					}
				}
			}
		},
		StopWhenQuiescent: true,
		DrainSubruns:      4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify at every consumer: chapter marks appear after the audio they
	// depend on, while plain audio/video interleave concurrently.
	for owner := mid.ProcID(0); owner < producers; owner++ {
		logm, err := g.ProcessedLogOf(owner)
		if err != nil {
			log.Fatal(err)
		}
		interleave := 0
		var prev virtual.StreamID
		for i, m := range logm {
			if i > 0 && m.Stream != prev {
				interleave++
			}
			prev = m.Stream
		}
		fmt.Printf("consumer %d processed %d messages, %d stream interleavings (concurrency preserved)\n",
			owner, len(logm), interleave)
	}
	fmt.Println("chapter marks were causally ordered after their audio; everything else ran concurrently")
}

// Replicated: the client-server group structure of Section 3 — a
// replicated counter service on top of urcgc's uniform atomicity and
// causal ordering.
//
//	go run ./examples/replicated
//
// Five servers replicate a counter. Clients call through any server
// ("agent"); the request enters the group's causal order once, every server
// applies it deterministically, and the reply is accepted under a majority
// vote (the voting function v of the paper's transport tuple). One server
// crashes mid-run; calls keep completing because the vote needs only a
// majority, and the protocol's embedded crash handling removes the dead
// server without blocking.
package main

import (
	"fmt"
	"log"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/groups"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

func main() {
	const servers = 5
	cluster, err := core.NewCluster(core.ClusterConfig{
		Config:   core.Config{N: servers, K: 3, R: 8, SelfExclusion: true},
		Seed:     7,
		Injector: fault.Crash{Proc: 4, At: sim.StartOfSubrun(6)},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The replicated state machine: a counter, with deterministic replies.
	counters := make([]int, servers)
	svc, err := groups.NewService(cluster, func(server mid.ProcID, req groups.Request) []byte {
		counters[server] += int(req.Input[0])
		return []byte(fmt.Sprintf("counter=%d", counters[server]))
	})
	if err != nil {
		log.Fatal(err)
	}

	const calls = 10
	_, err = cluster.Run(core.RunOptions{
		MaxRounds: 400,
		MinRounds: 2 * 2 * calls,
		OnRound: svc.OnRound(func(round int) {
			if round%2 != 0 || round/2 >= calls {
				return
			}
			k := uint32(round / 2)
			agent := mid.ProcID(int(k) % 4) // rotate among the surviving agents
			if _, err := svc.Call(agent, groups.Request{
				Client: 1, CallID: k, Input: []byte{1},
			}, groups.MajorityVote(servers)); err != nil {
				log.Fatal(err)
			}
		}),
		StopWhenQuiescent: true,
		DrainSubruns:      4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("client 1 issued 10 increments through rotating agents (server 4 crashed at subrun 6):")
	for k := uint32(0); k < calls; k++ {
		out, done := svc.Done(1, k)
		status := "TIMED OUT"
		if done {
			status = string(out)
		}
		fmt.Printf("  call %2d -> %-12s (%d replies gathered)\n", k, status, len(svc.Replies(1, k)))
	}
	fmt.Printf("\nsurvivors' replicated counters: ")
	for _, p := range cluster.ActiveSet() {
		fmt.Printf("server%d=%d ", p, counters[p])
	}
	fmt.Println("\nuniform atomicity + causal order = state machine replication; the crash never blocked a call")
}

// Quickstart: a five-member urcgc group exchanging causally related
// messages through the Section 5 service primitives.
//
//	go run ./examples/quickstart
//
// Member 0 asks a question; every member that sees it replies with a
// message explicitly labelled as causally dependent on the question
// (Definition 3.1's application-specified causality). The protocol
// guarantees each member processes the question before any reply, while
// the replies themselves — mutually concurrent — may interleave freely.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
	"urcgc/internal/stack"
)

func main() {
	const n = 5
	cluster, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	saps := make([]*stack.SAP, n)
	for i := range saps {
		saps[i] = stack.Open(cluster.Node(mid.ProcID(i)))
		defer saps[i].Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Member 0 asks; the Confirm returns once the local entity processed it.
	question, err := saps[0].DataRq(ctx, []byte("what is the plan?"), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member 0 asked %v\n", question.MID)

	// Members 1..4 reply once they have seen the question, labelling the
	// reply as causally dependent on it.
	for i := 1; i < n; i++ {
		i := i
		go func() {
			for ind := range saps[i].DataInd() {
				if ind.Msg.ID != question.MID {
					continue
				}
				conf, err := saps[i].DataRq(ctx,
					[]byte(fmt.Sprintf("member %d: sounds good", i)),
					mid.DepList{question.MID})
				if err != nil {
					log.Printf("member %d reply failed: %v", i, err)
					return
				}
				fmt.Printf("member %d replied %v (depends on %v)\n", i, conf.MID, question.MID)
				return
			}
		}()
	}

	// Member 0 collects everything: the question is processed first
	// everywhere; the four replies arrive in some interleaving.
	got := 0
	for got < n-1 {
		select {
		case ind := <-saps[0].DataInd():
			fmt.Printf("member 0 processed %v: %q (deps %v)\n", ind.Msg.ID, ind.Msg.Payload, ind.Msg.Deps)
			got++
		case <-ctx.Done():
			log.Fatal("timed out collecting replies")
		}
	}
	fmt.Println("all replies processed after their cause — causal order held")
}

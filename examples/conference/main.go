// Conference: causal floor control with a crash mid-session — the paper's
// headline property on display: the group keeps processing while the
// embedded decision mechanism detects the crash and removes the member, no
// blocking view-change protocol anywhere.
//
//	go run ./examples/conference
//
// Six participants hold a discussion; a remark is always labelled as
// causally dependent on the remark it answers, so every participant hears
// an answer only after the question. Midway, one participant's machine
// fail-stops. The survivors keep talking (throughput never pauses), the
// rotating coordinators declare the crash after K silent subruns, and every
// surviving view converges on the five-member group.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
)

const participants = 6

func main() {
	cluster, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: participants, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Participant 0 opens the discussion.
	opening, err := cluster.Node(0).Send(ctx, []byte("opening: shall we adopt causal order?"), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("participant 0 opened with %v\n", opening.String())

	// Everyone answers what they last heard: a causal chain of remarks.
	var mu sync.Mutex
	lastRemark := opening
	remark := func(who int, text string) {
		mu.Lock()
		dep := lastRemark
		mu.Unlock()
		var deps mid.DepList
		if dep.Proc != mid.ProcID(who) {
			deps = mid.DepList{dep}
		}
		id, err := cluster.Node(mid.ProcID(who)).Send(ctx, []byte(text), deps)
		if err != nil {
			fmt.Printf("participant %d could not speak: %v\n", who, err)
			return
		}
		mu.Lock()
		lastRemark = id
		mu.Unlock()
		fmt.Printf("participant %d said %v answering %v\n", who, id, dep)
	}

	// First half of the discussion.
	for turn := 0; turn < 8; turn++ {
		remark(1+turn%(participants-1), fmt.Sprintf("remark %d", turn))
	}

	// Participant 5's machine dies. Nothing blocks.
	fmt.Println("\n*** participant 5 fail-stops ***")
	cluster.Node(5).Kill()
	crashAt := time.Now()

	// The discussion continues at full rate while detection runs.
	for turn := 8; turn < 20; turn++ {
		remark(1+turn%(participants-2), fmt.Sprintf("remark %d", turn))
	}

	// Wait for every survivor's view to exclude participant 5.
	for {
		excluded := 0
		for i := 0; i < participants-1; i++ {
			sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
			st, err := cluster.Node(mid.ProcID(i)).Status(sctx)
			scancel()
			if err == nil && !st.Alive[5] {
				excluded++
			}
		}
		if excluded == participants-1 {
			break
		}
		select {
		case <-ctx.Done():
			log.Fatal("views never converged")
		case <-time.After(2 * time.Millisecond):
		}
	}
	fmt.Printf("\nall survivors excluded participant 5 %.0fms after the crash\n",
		float64(time.Since(crashAt).Milliseconds()))
	fmt.Println("the discussion never paused: remarks 8..19 were confirmed during detection")

	// Show one survivor's final knowledge. Status is the supported way to
	// read a live member from outside its loop goroutine: the sample is
	// taken inside the loop and cloned, so no raw accessor races.
	if st, err := cluster.Node(0).Status(ctx); err == nil {
		fmt.Printf("participant 0: processed %d remarks, view %v, history %d (cleaned by stability)\n",
			st.Processed.Sum(), st.Alive, st.HistoryLen)
	}
}

// Whiteboard: the multimedia-space scenario that motivates the paper's
// intermediate interpretation of causality.
//
//	go run ./examples/whiteboard
//
// Four users draw on a shared board of named regions. An edit to a region
// is labelled as causally dependent on the last edit of that region the
// editor has seen — and on nothing else, so edits to different regions stay
// concurrent and are processed in parallel streams. Every replica applies
// edits in causal order; a region's value is the edit with the deepest
// causal chain (ties broken by MID), so concurrent edits resolve the same
// way everywhere and all replicas converge without a total-order protocol.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
)

const (
	users   = 4
	edits   = 6 // edits per user
	regions = 3
)

// edit is the payload: "region=value".
func editPayload(region int, value string) []byte {
	return []byte(fmt.Sprintf("r%d=%s", region, value))
}

// regEdit is an applied edit with its causal-chain depth within its region.
type regEdit struct {
	id    mid.MID
	depth int
	value string
}

// wins implements the deterministic conflict rule: deeper causal chain
// first, then the MID total order. Replicas applying the same edit set
// therefore always pick the same winner.
func (e regEdit) wins(o regEdit) bool {
	if e.depth != o.depth {
		return e.depth > o.depth
	}
	return o.id.Less(e.id)
}

// board is one replica's state: region -> winning edit, rebuilt from
// indications in causal order.
type board struct {
	mu      sync.Mutex
	winners map[string]regEdit
	depths  map[mid.MID]int // every applied edit's chain depth
	applied int
}

func (b *board) apply(m causal.Message) {
	parts := strings.SplitN(string(m.Payload), "=", 2)
	b.mu.Lock()
	defer b.mu.Unlock()
	depth := 1
	for _, d := range m.Deps {
		// Causal order guarantees the dependency was applied first.
		if dd, ok := b.depths[d]; ok && dd+1 > depth {
			depth = dd + 1
		}
	}
	b.depths[m.ID] = depth
	e := regEdit{id: m.ID, depth: depth, value: parts[1]}
	if cur, ok := b.winners[parts[0]]; !ok || e.wins(cur) {
		b.winners[parts[0]] = e
	}
	b.applied++
}

func (b *board) lastEditOf(region string) (mid.MID, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.winners[region]
	return e.id, ok
}

func (b *board) render() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([]string, 0, len(b.winners))
	for k := range b.winners {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s ", k, b.winners[k].value)
	}
	return strings.TrimSpace(sb.String())
}

func main() {
	cluster, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: users, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	boards := make([]*board, users)
	for i := range boards {
		boards[i] = &board{winners: map[string]regEdit{}, depths: map[mid.MID]int{}}
	}
	// Apply every indication to the replica, in the causal order the
	// protocol hands them over.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < users; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case ind := <-cluster.Node(mid.ProcID(i)).Indications():
					boards[i].apply(ind.Msg)
				case <-stop:
					return
				}
			}
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(7))

	// Users edit concurrently. Each edit depends on the last edit of ITS
	// region only — other regions' streams stay concurrent.
	var editors sync.WaitGroup
	for u := 0; u < users; u++ {
		u := u
		editors.Add(1)
		go func() {
			defer editors.Done()
			for e := 0; e < edits; e++ {
				region := rng.Intn(regions)
				dep, hasDep := boards[u].lastEditOf(fmt.Sprintf("r%d", region))
				var deps mid.DepList
				if hasDep && dep.Proc != mid.ProcID(u) {
					deps = mid.DepList{dep}
				}
				id, err := cluster.Node(mid.ProcID(u)).Send(ctx,
					editPayload(region, fmt.Sprintf("u%de%d", u, e)), deps)
				if err != nil {
					log.Printf("user %d edit failed: %v", u, err)
					return
				}
				fmt.Printf("user %d edited region %d as %v (deps %v)\n", u, region, id, deps)
				time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
			}
		}()
	}
	editors.Wait()

	// Wait for every replica to have applied all edits.
	total := users * edits
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for i := range boards {
			boards[i].mu.Lock()
			n := boards[i].applied
			boards[i].mu.Unlock()
			if n < total {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	ref := boards[0].render()
	fmt.Printf("\nreplica 0: %s\n", ref)
	converged := true
	for i := 1; i < users; i++ {
		got := boards[i].render()
		fmt.Printf("replica %d: %s\n", i, got)
		if got != ref {
			converged = false
		}
	}
	if converged {
		fmt.Println("\nall replicas converged — causal chains plus a deterministic tiebreak were enough")
	} else {
		fmt.Println("\nreplicas DIVERGED — this would indicate a causal-order violation")
	}
}

// Faultdemo: the failure-handling machinery traced step by step in the
// deterministic simulator — omission recovery from history, crash
// detection through the attempts counters, and the agreed destruction of
// an orphaned sequence.
//
//	go run ./examples/faultdemo
//
// The scenario (five processes, K=2):
//
//  1. p0 broadcasts message p0#1, but every copy is lost (send omission).
//  2. p0 broadcasts p0#2, which arrives everywhere; since p0#2 causally
//     depends on p0#1, every receiver parks it in the waiting list.
//  3. Before any recovery from p0's history can complete, p0 crashes.
//  4. The rotating coordinators notice p0's silence; after K subruns the
//     attempts counter saturates and p0 is declared crashed.
//  5. The coordinator's decision exposes the gap: min_waiting[p0]=2 while
//     max_processed[p0]=0 among the living. The group agrees p0#1 is lost
//     forever and destroys p0#2 everywhere — uniform atomicity preserved:
//     nobody processes it.
//  6. Ordinary traffic keeps flowing throughout; the survivors converge.
package main

import (
	"fmt"
	"log"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

func main() {
	inj := fault.Multi{
		// All of p0's sends in subrun 0 vanish (that is where p0#1 goes).
		fault.During{
			From: 0, To: sim.StartOfSubrun(1),
			Inner: fault.OnlyProc{Proc: 0, Inner: &fault.EveryNth{N: 1, Side: fault.AtSend}},
		},
		// p0 crashes shortly after broadcasting p0#2.
		fault.Crash{Proc: 0, At: sim.StartOfRound(2) + 400},
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Config:   core.Config{N: 5, K: 2, R: 8, SelfExclusion: true},
		Seed:     8,
		Injector: inj,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Narrate the protocol's visible actions.
	lastAlive := 5
	c.OnDecision = func(p mid.ProcID, d *wire.Decision) {
		if p != 1 { // narrate from one vantage point
			return
		}
		alive := 0
		for _, a := range d.Alive {
			if a {
				alive++
			}
		}
		if alive < lastAlive {
			fmt.Printf("%5.1f rtd  decision of subrun %d declares a crash: alive=%v attempts=%v\n",
				c.Engine().Now().RTD(), d.Subrun, d.Alive, d.Attempts)
			lastAlive = alive
		}
		if d.FullGroup && d.MinWaiting[0] > d.MaxProcessed[0]+1 && !d.Alive[0] {
			fmt.Printf("%5.1f rtd  decision exposes the orphan gap: min_waiting[p0]=%d > max_processed[p0]+1=%d\n",
				c.Engine().Now().RTD(), d.MinWaiting[0], d.MaxProcessed[0]+1)
		}
	}
	c.Net().OnDeliver = func(src, dst mid.ProcID, pdu wire.PDU) {
		switch v := pdu.(type) {
		case *wire.Recover:
			fmt.Printf("%5.1f rtd  p%d asks p%d to recover %v from history\n",
				c.Engine().Now().RTD(), v.Requester, dst, v.Wants)
		case *wire.Retransmit:
			fmt.Printf("%5.1f rtd  p%d answers p%d with %d messages from history\n",
				c.Engine().Now().RTD(), v.Responder, dst, len(v.Msgs))
		}
	}

	fmt.Println("timeline:")
	res, err := c.Run(core.RunOptions{
		MaxRounds: 200,
		MinRounds: 40,
		OnRound: func(round int) {
			switch round {
			case 0:
				must(c.Submit(0, []byte("lost forever"), nil))
				fmt.Printf("%5.1f rtd  p0 broadcasts p0#1 — every copy will be dropped\n", c.Engine().Now().RTD())
			case 2:
				must(c.Submit(0, []byte("the orphan"), nil))
				fmt.Printf("%5.1f rtd  p0 broadcasts p0#2 (depends on p0#1), then crashes\n", c.Engine().Now().RTD())
			case 4:
				for i := 1; i < 5; i++ {
					must(c.Submit(mid.ProcID(i), []byte("business as usual"), nil))
				}
				fmt.Printf("%5.1f rtd  p1..p4 keep generating ordinary traffic\n", c.Engine().Now().RTD())
			}
		},
		StopWhenQuiescent: true,
		DrainSubruns:      4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\noutcome:")
	discards := 0
	for _, p := range c.ActiveSet() {
		discards += len(c.DiscardLog[p])
	}
	fmt.Printf("  survivors %v converged at %.1f rtd\n", c.ActiveSet(), sim.StartOfRound(res.QuiescentAtRound).RTD())
	fmt.Printf("  p0#2 destroyed by agreement at %d processes; processed by none\n", discards)
	for _, p := range c.ActiveSet() {
		v := c.Proc(p).Processed()
		fmt.Printf("  p%d processed %v (p0's column is 0: uniform atomicity held)\n", p, v)
		break
	}
}

func must(id mid.MID, err error) {
	if err != nil {
		log.Fatal(err)
	}
	_ = id
}

// Command urcgc-inspect reconstructs the cluster-wide protocol picture
// from the observability endpoints every urcgc-node serves. Point it at
// the -metrics addresses of the members:
//
//	urcgc-inspect -nodes 127.0.0.1:9100,127.0.0.1:9101,127.0.0.1:9102
//
// One-shot mode (the default) probes each node's /status, /metrics,
// /healthz and /timeseries, prints the reconstructed Report as JSON and
// exits 0 when the cluster is healthy, 1 when any divergence persists
// past the grace re-probe: a member unreachable or departed, members
// disagreeing about who is alive, a frozen token, a stability-frontier
// spread naming the lagging members, or a node's own /healthz verdict.
//
//	urcgc-inspect -nodes ... -watch 1s
//
// prints one summary line per interval instead, with problem details
// under each unhealthy round, until interrupted; the exit code reflects
// the final round.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"urcgc/internal/inspect"
)

func main() {
	var (
		nodes   = flag.String("nodes", "", "comma-separated observability addresses of the members (required)")
		timeout = flag.Duration("timeout", 2*time.Second, "per-request HTTP timeout")
		grace   = flag.Duration("grace", 2*time.Second, "one-shot re-probe delay before declaring problems persistent (0 disables)")
		skew    = flag.Int64("skew", 64, "tolerated stability-frontier spread before lagging nodes are flagged")
		stall   = flag.Int("stall", 12, "trailing flight samples of a frozen decision subrun that count as a token stall")
		watch   = flag.Duration("watch", 0, "poll at this interval and print summaries instead of one-shot JSON (0 = one-shot)")
	)
	flag.Parse()
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "urcgc-inspect: -nodes is required")
		os.Exit(2)
	}
	cfg := inspect.Config{
		Nodes:        strings.Split(*nodes, ","),
		Timeout:      *timeout,
		Grace:        *grace,
		FrontierSkew: *skew,
		StallWindow:  *stall,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	var report inspect.Report
	if *watch > 0 {
		report = inspect.Watch(ctx, cfg, *watch, os.Stdout)
	} else {
		report = inspect.OneShot(ctx, cfg)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "urcgc-inspect:", err)
			os.Exit(2)
		}
	}
	if !report.Healthy {
		os.Exit(1)
	}
}

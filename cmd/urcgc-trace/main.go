// Command urcgc-trace stitches one cross-node timeline per message out of
// the /trace lifecycle reports every member serves. Point it at the
// -metrics addresses of the cluster:
//
//	urcgc-trace -nodes 127.0.0.1:9100,127.0.0.1:9101,127.0.0.1:9102
//
// Spans are joined by (group, MID) — each group is its own sequence
// space — so one invocation covers every hosted group of a multi-group
// member; -group restricts the sweep to one group. The default text
// report lists the top -top slowest messages with the per-member
// broadcast→deliver skew, and flags messages stuck in a causal wait with
// the member and dependency MID that block them. -json emits the full
// stitched report instead.
//
// The exit code is 0 on success, 1 when fewer than -min messages could be
// stitched (the smoke test's guard), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"urcgc/internal/stitch"
)

func main() {
	var (
		nodes   = flag.String("nodes", "", "comma-separated observability addresses of the members (required)")
		group   = flag.Int("group", -1, "restrict to one group id (-1 = every hosted group)")
		top     = flag.Int("top", 10, "how many of the slowest stitched messages to print")
		slow    = flag.Int("slow", 32, "in-flight spans requested per node")
		recent  = flag.Int("recent", 32, "completed spans requested per node")
		timeout = flag.Duration("timeout", 3*time.Second, "per-request HTTP timeout")
		asJSON  = flag.Bool("json", false, "emit the stitched report as JSON")
		minMsgs = flag.Int("min", 0, "exit 1 unless at least this many messages were stitched")
	)
	flag.Parse()
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "urcgc-trace: -nodes is required")
		os.Exit(2)
	}

	collected := stitch.Collect(stitch.Config{
		Nodes:   strings.Split(*nodes, ","),
		Group:   *group,
		Slow:    *slow,
		Recent:  *recent,
		Timeout: *timeout,
	})
	report := stitch.Stitch(collected)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "urcgc-trace:", err)
			os.Exit(2)
		}
	} else {
		report.Write(os.Stdout, *top)
	}
	if len(report.Messages) < *minMsgs {
		fmt.Fprintf(os.Stderr, "urcgc-trace: stitched %d messages, need %d\n", len(report.Messages), *minMsgs)
		os.Exit(1)
	}
}

// Command urcgc-sim runs one configurable urcgc scenario in the
// discrete-event simulator and prints a run report: end-to-end delays,
// network load, history behaviour, group evolution.
//
// Usage examples:
//
//	urcgc-sim -n 10 -k 3 -load 1.0 -subruns 100
//	urcgc-sim -n 40 -k 5 -crash 39@4 -omit 500 -threshold 320
//	urcgc-sim -n 10 -crash "3@6,4@7" -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

func main() {
	var (
		n         = flag.Int("n", 10, "group size")
		k         = flag.Int("k", 3, "K: retries before a silent process is declared crashed")
		r         = flag.Int("r", 0, "R: failed recoveries before leaving (default 2K+2)")
		load      = flag.Float64("load", 1.0, "offered load: msgs per process per subrun")
		subruns   = flag.Int("subruns", 100, "workload duration in subruns")
		seed      = flag.Int64("seed", 1, "simulation seed")
		crash     = flag.String("crash", "", "crash schedule, e.g. \"3@6,4@7\" (proc@subrun)")
		omit      = flag.Int("omit", 0, "drop one packet every N (0 = none)")
		omitUntil = flag.Int("omit-until", 0, "confine omissions to the first N rtd (0 = whole run)")
		threshold = flag.Int("threshold", 0, "flow-control history threshold (0 = off; paper: 8n)")
		transH    = flag.Int("h", 1, "transport h parameter (1 = bare datagrams)")
		partition = flag.String("partition", "", "network cut, e.g. \"0,1,2@6-10\" (side A members @ subrun range)")
		causalDep = flag.Bool("temporal", false, "use conservative depend-on-everything labelling")
	)
	flag.Parse()

	if *r == 0 {
		*r = 2**k + 2
	}
	inj, err := buildInjector(*crash, *omit, *omitUntil, *partition)
	if err != nil {
		fatal(err)
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{
			N: *n, K: *k, R: *r,
			HistoryThreshold: *threshold,
			SelfExclusion:    true,
		},
		Seed:       *seed,
		Injector:   inj,
		TransportH: *transH,
	})
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed ^ 0xfeed))
	res, err := c.Run(core.RunOptions{
		MaxRounds: 2**subruns + 400,
		MinRounds: 2 * *subruns,
		OnRound: func(round int) {
			if round%2 != 0 || round/2 >= *subruns {
				return
			}
			for i := 0; i < c.N(); i++ {
				p := mid.ProcID(i)
				if !c.Active(p) || rng.Float64() >= *load {
					continue
				}
				if *causalDep {
					_, _ = c.SubmitCausal(p, []byte("payload"))
					continue
				}
				prev := mid.ProcID((i + c.N() - 1) % c.N())
				var deps mid.DepList
				if s := c.Proc(p).Processed()[prev]; s > 0 {
					deps = mid.DepList{{Proc: prev, Seq: s}}
				}
				_, _ = c.Submit(p, []byte("payload"), deps)
			}
		},
		StopWhenQuiescent: true,
		DrainSubruns:      2**k + 2,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("urcgc simulation: n=%d K=%d R=%d load=%.2f subruns=%d seed=%d h=%d\n",
		*n, *k, *r, *load, *subruns, *seed, *transH)
	if *crash != "" || *omit > 0 || *partition != "" {
		fmt.Printf("failures: crash=%q omission=1/%d partition=%q\n", *crash, *omit, *partition)
	}
	fmt.Println()
	if res.QuiescentAtRound >= 0 {
		fmt.Printf("quiescent at       %.1f rtd (round %d)\n", sim.StartOfRound(res.QuiescentAtRound).RTD(), res.QuiescentAtRound)
	} else {
		fmt.Printf("quiescent at       never (ran %d rounds)\n", res.Rounds)
	}
	fmt.Printf("mean delay D       %.3f rtd (p95 %.3f, max %.3f, %d samples)\n",
		c.Delay.MeanRTD(), c.Delay.PercentileRTD(95), c.Delay.MaxRTD(), c.Delay.Count())
	fmt.Printf("history peak       %.0f messages (mean-series peak %.0f)\n", c.HistMax.Max(), c.HistMean.Max())
	fmt.Printf("waiting peak       %.0f messages\n", c.WaitMax.Max())

	loadRep := c.Net().Load()
	fmt.Printf("network load       %s\n", loadRep)
	fmt.Printf("control traffic    %d msgs (%.1f per subrun), %d bytes\n",
		loadRep.ControlMsgs(), float64(loadRep.ControlMsgs())/float64(*subruns), loadRep.ControlBytes())
	fmt.Printf("drops injected     %d\n", c.Net().Drops())

	totalRecov, totalRetrans, totalDiscard := 0, 0, 0
	for i := 0; i < c.N(); i++ {
		p := c.Proc(mid.ProcID(i))
		totalRecov += p.Stats.Recoveries
		totalRetrans += p.Stats.Retransmits
		totalDiscard += p.Stats.Discarded
	}
	fmt.Printf("recoveries         %d requested, %d answered, %d discards\n", totalRecov, totalRetrans, totalDiscard)
	fmt.Printf("mean pdu sizes     request %.0fB decision %.0fB data %.0fB\n",
		loadRep.MeanSize(wire.KindRequest), loadRep.MeanSize(wire.KindDecision), loadRep.MeanSize(wire.KindData))

	fmt.Printf("active at end      %v\n", c.ActiveSet())
	if len(c.Left) > 0 {
		fmt.Printf("self-excluded      %v\n", c.Left)
	}
	for _, p := range c.ActiveSet() {
		fmt.Printf("  proc %-3d processed=%d history=%d view=%s\n",
			p, c.Proc(p).Processed().Sum(), c.Proc(p).HistoryLen(), c.Proc(p).View())
		break // one representative line; survivors are identical at quiescence
	}
}

func buildInjector(crash string, omit, omitUntil int, partition string) (fault.Injector, error) {
	var inj fault.Multi
	if crash != "" {
		for _, part := range strings.Split(crash, ",") {
			bits := strings.Split(strings.TrimSpace(part), "@")
			if len(bits) != 2 {
				return nil, fmt.Errorf("bad crash spec %q (want proc@subrun)", part)
			}
			proc, err := strconv.Atoi(bits[0])
			if err != nil {
				return nil, fmt.Errorf("bad crash proc %q: %v", bits[0], err)
			}
			at, err := strconv.Atoi(bits[1])
			if err != nil {
				return nil, fmt.Errorf("bad crash subrun %q: %v", bits[1], err)
			}
			inj = append(inj, fault.Crash{Proc: mid.ProcID(proc), At: sim.StartOfSubrun(at)})
		}
	}
	if omit > 0 {
		var om fault.Injector = &fault.EveryNth{N: omit, Side: fault.AtSend}
		if omitUntil > 0 {
			om = fault.During{From: 0, To: sim.Time(omitUntil) * sim.TicksPerRTD, Inner: om}
		}
		inj = append(inj, om)
	}
	if partition != "" {
		p, err := parsePartition(partition)
		if err != nil {
			return nil, err
		}
		inj = append(inj, p)
	}
	if len(inj) == 0 {
		return nil, nil
	}
	return inj, nil
}

// parsePartition reads "0,1,2@6-10": side-A members, cut from subrun 6 to
// subrun 10 (exclusive).
func parsePartition(spec string) (fault.Partition, error) {
	parts := strings.Split(spec, "@")
	if len(parts) != 2 {
		return fault.Partition{}, fmt.Errorf("bad partition spec %q (want members@from-to)", spec)
	}
	side := map[mid.ProcID]bool{}
	for _, m := range strings.Split(parts[0], ",") {
		v, err := strconv.Atoi(strings.TrimSpace(m))
		if err != nil {
			return fault.Partition{}, fmt.Errorf("bad partition member %q: %v", m, err)
		}
		side[mid.ProcID(v)] = true
	}
	rng := strings.Split(parts[1], "-")
	if len(rng) != 2 {
		return fault.Partition{}, fmt.Errorf("bad partition window %q (want from-to)", parts[1])
	}
	from, err := strconv.Atoi(rng[0])
	if err != nil {
		return fault.Partition{}, err
	}
	to, err := strconv.Atoi(rng[1])
	if err != nil {
		return fault.Partition{}, err
	}
	return fault.Partition{
		From:  sim.StartOfSubrun(from),
		To:    sim.StartOfSubrun(to),
		SideA: side,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "urcgc-sim:", err)
	os.Exit(1)
}

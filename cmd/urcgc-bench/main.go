// Command urcgc-bench regenerates the tables and figures of the paper's
// evaluation (Section 6) from the operational protocol implementations.
//
// Usage:
//
//	urcgc-bench [-exp fig4|fig5|table1|fig6a|fig6b|all] [-n N] [-k K] [-seed S]
//	urcgc-bench -baseline BENCH_BASELINE.json [-note "..."]
//	urcgc-bench -diff BENCH_BASELINE.json
//
// Each experiment prints the same rows/series the paper reports. Absolute
// values depend on the simulated substrate; see EXPERIMENTS.md for the
// paper-vs-measured comparison.
//
// With -baseline, the command instead runs the recorded benchmark suite
// (internal/benchsuite) through testing.Benchmark and writes the perf
// trajectory artifact; a pre-existing file's numbers are preserved under
// "previous" so the artifact carries before/after for the latest change.
// With -diff, it re-runs the guarded families (wire codec, saturation
// throughput, multi-group scaling) and exits 1 when any case's ns/op
// regressed more than 25% against the recorded baseline (`make bench-diff`).
package main

import (
	"flag"
	"fmt"
	"os"

	"urcgc/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4, fig5, table1, fig6a, fig6b, throughput, ablation, or all")
	n := flag.Int("n", 0, "override group size (0 = experiment default)")
	k := flag.Int("k", 0, "override K (0 = experiment default)")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	baseline := flag.String("baseline", "", "record the benchmark baseline to this JSON file and exit")
	diff := flag.String("diff", "", "re-run the guarded bench families and exit 1 on >25% ns/op regression vs this baseline JSON")
	note := flag.String("note", "", "annotation stored in the baseline file")
	flag.Parse()

	if *baseline != "" {
		exitOn(runBaseline(*baseline, *note))
		return
	}
	if *diff != "" {
		exitOn(runDiff(*diff))
		return
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false
	show := func(r interface {
		Render() string
		CSV() string
	}) {
		if *csv {
			fmt.Print(r.CSV())
			fmt.Println()
			return
		}
		fmt.Println(r.Render())
	}

	if run("fig4") {
		cfg := experiments.DefaultFig4()
		applyOverrides(&cfg.N, &cfg.K, *n, *k)
		cfg.Seed = *seed
		res, err := experiments.Fig4(cfg)
		exitOn(err)
		show(res)
		any = true
	}
	if run("fig5") {
		cfg := experiments.DefaultFig5()
		applyOverrides(&cfg.N, &cfg.K, *n, *k)
		cfg.Seed = *seed
		res, err := experiments.Fig5(cfg)
		exitOn(err)
		show(res)
		any = true
	}
	if run("table1") {
		cfg := experiments.DefaultTable1()
		if *n > 0 {
			cfg.Ns = []int{*n}
		}
		if *k > 0 {
			cfg.K = *k
		}
		cfg.Seed = *seed
		res, err := experiments.Table1(cfg)
		exitOn(err)
		show(res)
		any = true
	}
	if run("fig6a") || run("fig6b") {
		size := 40
		if *n > 0 {
			size = *n
		}
		cfg := experiments.DefaultFig6(size)
		if *k > 0 {
			cfg.Ks = []int{*k}
		}
		cfg.Seed = *seed
		if run("fig6a") {
			res, err := experiments.Fig6a(cfg)
			exitOn(err)
			show(res)
		}
		if run("fig6b") {
			res, err := experiments.Fig6b(cfg)
			exitOn(err)
			show(res)
		}
		any = true
	}
	if run("ablation") {
		cfg := experiments.DefaultAblation()
		applyOverrides(&cfg.N, &cfg.K, *n, *k)
		cfg.Seed = *seed
		res, err := experiments.Ablation(cfg)
		exitOn(err)
		show(res)
		any = true
	}
	if run("throughput") {
		cfg := experiments.DefaultThroughput()
		applyOverrides(&cfg.N, &cfg.K, *n, *k)
		cfg.Seed = *seed
		res, err := experiments.Throughput(cfg)
		exitOn(err)
		show(res)
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func applyOverrides(n, k *int, nv, kv int) {
	if nv > 0 {
		*n = nv
	}
	if kv > 0 {
		*k = kv
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "urcgc-bench:", err)
		os.Exit(1)
	}
}

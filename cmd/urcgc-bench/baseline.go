package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"urcgc/internal/benchsuite"
)

// The -baseline mode records the perf trajectory artifact BENCH_BASELINE.json:
// ns/op, B/op, allocs/op and the scientific metrics (delay_rtd, histpeak, …)
// for every benchsuite.Baseline case, run through testing.Benchmark — the
// same bodies `go test -bench` runs. Refreshing an existing file keeps the
// old run under "previous", so the artifact always carries before/after
// numbers for the latest perf change.

const baselineSchema = "urcgc-bench-baseline/v1"

type baselineEntry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  int64              `json:"b_op"`
	AllocsPerOp int64              `json:"allocs_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type baselineRun struct {
	Recorded string          `json:"recorded"`
	Note     string          `json:"note,omitempty"`
	Benches  []baselineEntry `json:"benches"`
}

type baselineFile struct {
	Schema   string          `json:"schema"`
	Recorded string          `json:"recorded"`
	Note     string          `json:"note,omitempty"`
	Go       string          `json:"go"`
	NumCPU   int             `json:"num_cpu"`
	Benches  []baselineEntry `json:"benches"`
	Previous *baselineRun    `json:"previous,omitempty"`
}

func runBaseline(path, note string) error {
	var previous *baselineRun
	if raw, err := os.ReadFile(path); err == nil {
		var old baselineFile
		if err := json.Unmarshal(raw, &old); err == nil && len(old.Benches) > 0 {
			previous = &baselineRun{Recorded: old.Recorded, Note: old.Note, Benches: old.Benches}
		}
	}

	cases := benchsuite.Baseline()
	entries := make([]baselineEntry, 0, len(cases))
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "bench %-28s ", c.Name)
		r := testing.Benchmark(c.F)
		e := baselineEntry{
			Name:        c.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %10d B/op %8d allocs/op\n", e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })

	out := baselineFile{
		Schema:   baselineSchema,
		Recorded: time.Now().UTC().Format(time.RFC3339),
		Note:     note,
		Go:       runtime.Version(),
		NumCPU:   runtime.NumCPU(),
		Benches:  entries,
		Previous: previous,
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benches)\n", path, len(entries))
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"urcgc/internal/benchsuite"
)

// The -diff mode is the perf regression guard over the trajectory artifact:
// it re-runs the guarded benchmark families fresh, compares each case's
// ns/op against the recorded BENCH_BASELINE.json, and fails (exit 1) when
// any case regressed past the tolerance. Only the families whose numbers
// the roadmap tracks are guarded — wire codec, saturation throughput, and
// multi-group scaling; the simulation-level cases (Fig4*, CBCASTRun, …)
// swing too much run-to-run to gate on.

// diffFamilies are the guarded name prefixes in benchsuite.Baseline:
// "Wire" covers the whole codec family (Marshal, MarshalAppend, Unmarshal).
var diffFamilies = []string{"Wire", "ThroughputSaturation", "GroupScaling"}

// diffTolerance is the allowed fractional ns/op growth before a case
// counts as a regression. Generous on purpose: these run on shared
// hardware, so the guard is for step-change regressions, not noise.
const diffTolerance = 0.25

func guarded(name string) bool {
	for _, p := range diffFamilies {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// runDiff compares a fresh run of the guarded families against the
// recorded baseline. Returns an error only for operational failures;
// regressions print a report and exit 1 directly.
func runDiff(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.Schema != baselineSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, base.Schema, baselineSchema)
	}
	recorded := make(map[string]baselineEntry, len(base.Benches))
	for _, e := range base.Benches {
		recorded[e.Name] = e
	}

	type row struct {
		name               string
		baseNs, freshNs    float64
		delta              float64 // fractional change, + is slower
		regressed, missing bool
	}
	var rows []row
	regressions := 0
	for _, c := range benchsuite.Baseline() {
		if !guarded(c.Name) {
			continue
		}
		old, ok := recorded[c.Name]
		if !ok {
			// A case the baseline has never seen can't regress; flag it so
			// the operator refreshes the artifact.
			rows = append(rows, row{name: c.Name, missing: true})
			continue
		}
		fmt.Fprintf(os.Stderr, "bench %-28s ", c.Name)
		r := testing.Benchmark(c.F)
		fresh := float64(r.T.Nanoseconds()) / float64(r.N)
		delta := (fresh - old.NsPerOp) / old.NsPerOp
		fmt.Fprintf(os.Stderr, "%12.0f ns/op (baseline %12.0f, %+6.1f%%)\n",
			fresh, old.NsPerOp, delta*100)
		reg := delta > diffTolerance
		if reg {
			regressions++
		}
		rows = append(rows, row{name: c.Name, baseNs: old.NsPerOp, freshNs: fresh, delta: delta, regressed: reg})
	}

	fmt.Printf("%-28s %14s %14s %8s\n", "bench", "baseline ns/op", "fresh ns/op", "delta")
	for _, r := range rows {
		if r.missing {
			fmt.Printf("%-28s %14s %14s %8s  not in baseline — refresh with -baseline\n",
				r.name, "-", "-", "-")
			continue
		}
		mark := ""
		if r.regressed {
			mark = "  REGRESSION (>" + fmt.Sprintf("%.0f%%", diffTolerance*100) + ")"
		}
		fmt.Printf("%-28s %14.0f %14.0f %+7.1f%%%s\n", r.name, r.baseNs, r.freshNs, r.delta*100, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "urcgc-bench: %d case(s) regressed past %.0f%% vs %s\n",
			regressions, diffTolerance*100, path)
		os.Exit(1)
	}
	fmt.Printf("no regression past %.0f%% in %d guarded cases\n", diffTolerance*100, len(rows))
	return nil
}

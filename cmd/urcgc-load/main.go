// Command urcgc-load drives a sharded multi-group cluster to saturation and
// reports what it sustained. It hosts the cluster itself — either over real
// loopback UDP sockets (the default, exercising the shared-socket demux and
// sendmmsg burst path) or over the in-process mesh (-mesh, protocol-only) —
// then fans thousands of concurrent client sessions across the groups. Each
// session loops: pick its group, Send, wait for the local confirm, record
// the latency. On exit it prints aggregate confirmed msgs/s plus the
// p50/p95/p99 confirm-latency quantiles; -json emits the same results as
// one machine-readable object instead, so load runs can be diffed across
// changes like BENCH_BASELINE.json.
//
//	urcgc-load -n 3 -groups 8 -shards 8 -sessions 2000 -duration 10s
//
// The tool is the load half of the observability story: point urcgc-inspect
// or curl at the -metrics listener of any member while it runs to watch the
// per-group counters move.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/nodehttp"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
	"urcgc/internal/topics"
)

func main() {
	var (
		n        = flag.Int("n", 3, "members in the cluster")
		groups   = flag.Int("groups", 8, "independent groups multiplexed over the shared transport")
		shards   = flag.Int("shards", 0, "protocol shard loops per member (0 = min(groups, GOMAXPROCS))")
		sessions = flag.Int("sessions", 1000, "concurrent client sessions fanned across groups and members")
		duration = flag.Duration("duration", 10*time.Second, "how long to drive load")
		k        = flag.Int("k", 3, "K parameter")
		round    = flag.Duration("round", 2*time.Millisecond, "round duration")
		batchWin = flag.Duration("batch-window", 500*time.Microsecond, "submission coalescing window (0 disables batching)")
		payload  = flag.Int("payload", 64, "bytes per message")
		mesh     = flag.Bool("mesh", false, "use the in-process mesh instead of loopback UDP sockets")
		metrics  = flag.String("metrics", "", "HTTP address serving member 0's /metrics and /status while loading (empty disables)")
		asJSON   = flag.Bool("json", false, "emit the results as one JSON object (msgs/s, quantiles, per-group counts)")
		verbose  = flag.Bool("v", false, "log per-member runtime warnings")
	)
	flag.Parse()

	if *sessions < 1 || *groups < 1 || *n < 3 {
		fmt.Fprintln(os.Stderr, "urcgc-load: need -sessions >= 1, -groups >= 1, -n >= 3")
		os.Exit(2)
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	cfg := topics.Config{
		Config: core.Config{
			N: *n, K: *k, R: 2**k + 2, SelfExclusion: true,
			BatchMax: core.DefaultBatchMax,
		},
		Groups:        *groups,
		Shards:        *shards,
		RoundDuration: *round,
		BatchWindow:   *batchWin,
		Logf:          logf,
	}

	cluster, reg, err := startCluster(cfg, *mesh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urcgc-load:", err)
		os.Exit(1)
	}
	defer cluster.stop()

	if *metrics != "" && reg != nil {
		mux := nodehttp.Mux(nodehttp.Options{Registry: reg, Status: cluster.status})
		ln, err := nodehttp.Serve(*metrics, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urcgc-load: metrics:", err)
			os.Exit(1)
		}
		fmt.Fprintf(progress(*asJSON), "member 0 observability at http://%s/metrics\n", ln.Addr())
	}

	transport := "udp"
	if *mesh {
		transport = "mesh"
	}
	fmt.Fprintf(progress(*asJSON), "cluster up: n=%d groups=%d shards=%d transport=%s round=%v batch-window=%v\n",
		*n, *groups, cluster.shards(), transport, *round, *batchWin)
	fmt.Fprintf(progress(*asJSON), "driving %d sessions for %v...\n", *sessions, *duration)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var (
		confirmed atomic.Int64
		failed    atomic.Int64
		wg        sync.WaitGroup
	)
	body := make([]byte, *payload)
	// Each session keeps its own latency slice; they are merged after the
	// run so the hot loop never contends on a shared structure.
	lats := make([][]time.Duration, *sessions)
	start := time.Now()
	for s := 0; s < *sessions; s++ {
		s := s
		g := uint32(s % *groups)
		member := mid.ProcID(s % *n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				t0 := time.Now()
				_, err := cluster.send(ctx, member, g, body)
				if err != nil {
					if ctx.Err() == nil {
						failed.Add(1)
					}
					continue
				}
				lats[s] = append(lats[s], time.Since(t0))
				confirmed.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	total := confirmed.Load()
	res := loadResult{
		N:           *n,
		Groups:      *groups,
		Shards:      cluster.shards(),
		Sessions:    *sessions,
		Transport:   transport,
		ElapsedMs:   float64(elapsed.Nanoseconds()) / 1e6,
		Confirmed:   total,
		Failed:      failed.Load(),
		MsgsPerSec:  float64(total) / elapsed.Seconds(),
		GroupCounts: cluster.groupCounts(),
	}
	if len(all) > 0 {
		res.P50Ms = ms(quantile(all, 0.50))
		res.P95Ms = ms(quantile(all, 0.95))
		res.P99Ms = ms(quantile(all, 0.99))
		res.MaxMs = ms(all[len(all)-1])
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "urcgc-load:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("\n--- urcgc-load results ---\n")
	fmt.Printf("confirmed   %d msgs in %v\n", total, elapsed.Round(time.Millisecond))
	fmt.Printf("aggregate   %.0f msgs/s across %d groups\n", res.MsgsPerSec, *groups)
	if res.Failed > 0 {
		fmt.Printf("failed      %d sends\n", res.Failed)
	}
	if len(all) > 0 {
		fmt.Printf("confirm latency  p50 %v  p95 %v  p99 %v  max %v\n",
			quantile(all, 0.50), quantile(all, 0.95), quantile(all, 0.99), all[len(all)-1])
	}
	fmt.Printf("per-group processed at member 0:")
	for g, c := range res.GroupCounts {
		fmt.Printf(" g%d=%d", g, c)
	}
	fmt.Println()
}

// loadResult is the -json shape: one flat object per run so results diff
// cleanly across changes, BENCH_BASELINE.json style. Latencies are
// milliseconds to match the baseline file's convention.
type loadResult struct {
	N           int     `json:"n"`
	Groups      int     `json:"groups"`
	Shards      int     `json:"shards"`
	Sessions    int     `json:"sessions"`
	Transport   string  `json:"transport"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	Confirmed   int64   `json:"confirmed"`
	Failed      int64   `json:"failed"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	GroupCounts []int64 `json:"group_counts_member0"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// progress picks where human chatter goes: stderr under -json so stdout
// stays one clean JSON object, stdout otherwise.
func progress(asJSON bool) *os.File {
	if asJSON {
		return os.Stderr
	}
	return os.Stdout
}

// quantile reads the q-th quantile from an ascending-sorted sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Round(10 * time.Microsecond)
}

// loadCluster abstracts the two hosting modes behind the few operations the
// driver needs.
type loadCluster struct {
	send        func(ctx context.Context, member mid.ProcID, g uint32, payload []byte) (mid.MID, error)
	status      func(ctx context.Context) (rt.Status, error)
	groupCounts func() []int64
	shards      func() int
	stop        func()
}

func startCluster(cfg topics.Config, mesh bool) (*loadCluster, *obs.Registry, error) {
	if mesh {
		c, err := topics.NewMultiCluster(cfg)
		if err != nil {
			return nil, nil, err
		}
		c.Start()
		return &loadCluster{
			send: func(ctx context.Context, member mid.ProcID, g uint32, payload []byte) (mid.MID, error) {
				return c.Node(member).Send(ctx, g, payload, nil)
			},
			status:      func(ctx context.Context) (rt.Status, error) { return c.Node(0).Status(ctx) },
			groupCounts: func() []int64 { return c.Node(0).GroupCounts() },
			shards:      func() int { return c.Node(0).Shards() },
			stop:        c.Stop,
		}, nil, nil
	}

	peers, err := loopbackPorts(cfg.N)
	if err != nil {
		return nil, nil, err
	}
	nodes := make([]*topics.MultiNode, cfg.N)
	var reg *obs.Registry
	for i := range nodes {
		nc := cfg
		nc.Self = mid.ProcID(i)
		nc.Peers = peers
		if i == 0 {
			reg = obs.New()
			nc.Metrics = reg
		}
		nodes[i], err = topics.NewMultiNode(nc)
		if err != nil {
			for _, n := range nodes[:i] {
				n.Stop()
			}
			return nil, nil, err
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	return &loadCluster{
		send: func(ctx context.Context, member mid.ProcID, g uint32, payload []byte) (mid.MID, error) {
			return nodes[member].Send(ctx, g, payload, nil)
		},
		status:      func(ctx context.Context) (rt.Status, error) { return nodes[0].Status(ctx) },
		groupCounts: func() []int64 { return nodes[0].GroupCounts() },
		shards:      func() int { return nodes[0].Shards() },
		stop: func() {
			for _, n := range nodes {
				n.Stop()
			}
		},
	}, reg, nil
}

// loopbackPorts reserves n distinct loopback UDP ports by binding and
// immediately releasing them; the cluster then binds the same addresses.
// The window between release and rebind is small and this is a load tool,
// not a production deployment.
func loopbackPorts(n int) ([]string, error) {
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return nil, err
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs, nil
}

// Command urcgc-node runs one urcgc group member over real UDP sockets —
// the paper's prototype deployment over a LAN (Section 7). Start one
// process per member, each with the same -peers list and its own -self:
//
//	urcgc-node -self 0 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//	urcgc-node -self 1 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//	urcgc-node -self 2 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702
//
// Lines typed on stdin are multicast to the group; messages processed at
// this member — its own and its peers', in causal order — are printed.
// With -chatter the node also generates synthetic traffic by itself.
//
// The node is observable while it runs: -metrics (default 127.0.0.1:0)
// binds an HTTP listener serving
//
//	/metrics     live counters, gauges and histograms (Prometheus text)
//	/status      this member's protocol state (view, vectors, buffers)
//	/events      recent trace events (inbox drops and other omissions)
//	/trace       per-message lifecycle spans: recent completed plus the
//	             slowest in-flight, waiting ones with their blocking MIDs
//	/debug/vars  the same registry as expvar JSON
//	/debug/pprof CPU/heap/goroutine profiles
//
// and a summary table of every instrument is printed on shutdown (SIGINT,
// SIGTERM, stdin EOF, or leaving the group).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

func main() {
	var (
		self    = flag.Int("self", 0, "this member's identity (index into -peers)")
		peers   = flag.String("peers", "", "comma-separated member addresses, index = identity")
		k       = flag.Int("k", 3, "K parameter")
		round   = flag.Duration("round", 20*time.Millisecond, "round duration")
		chatter   = flag.Duration("chatter", 0, "generate a synthetic message this often (0 = stdin only)")
		metrics   = flag.String("metrics", "127.0.0.1:0", "HTTP address for /metrics, /status, /events, /trace, /debug/vars and /debug/pprof (empty disables)")
		traceSlow = flag.Duration("trace-slow", time.Second, "flag a message stuck waiting longer than this on /trace (0 disables lifecycle tracing)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 1 || *peers == "" {
		fmt.Fprintln(os.Stderr, "urcgc-node: -peers is required")
		os.Exit(2)
	}
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	reg := obs.New()
	var lcOpts *lifecycle.Options
	if *traceSlow > 0 {
		lcOpts = &lifecycle.Options{SlowThreshold: *traceSlow}
	}
	node, err := rt.NewUDPNode(rt.UDPConfig{
		Config: core.Config{
			N: len(addrs), K: *k, R: 2**k + 2, SelfExclusion: true,
		},
		Self:          mid.ProcID(*self),
		Peers:         addrs,
		RoundDuration: *round,
		Metrics:       reg,
		Lifecycle:     lcOpts,
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "urcgc-node:", err)
		os.Exit(1)
	}
	node.Start()
	fmt.Printf("member %d of %d up at %s (round %v)\n", *self, len(addrs), node.LocalAddr(), *round)

	if *metrics != "" {
		if err := serveMetrics(*metrics, reg, node); err != nil {
			fmt.Fprintln(os.Stderr, "urcgc-node: metrics:", err)
			node.Stop()
			os.Exit(1)
		}
	}

	// shutdown prints the observability summary exactly once, then stops
	// the member.
	shutdown := func(why string) {
		fmt.Printf("\n--- %s: shutdown summary (member %d) ---\n", why, *self)
		reg.WriteSummary(os.Stdout)
		if tr := node.Lifecycle(); tr != nil {
			if c := tr.Counts(); c.Completed > 0 {
				fmt.Printf("--- slowest completed message spans (of %d) ---\n", c.Completed)
				tr.WriteSlowest(os.Stdout, 5)
			}
		}
		if evs := reg.Events().Events(); len(evs) > 0 {
			fmt.Printf("--- recent events (%d of %d total, %d dropped) ---\n",
				len(evs), reg.Events().Total(), reg.Events().Dropped())
			reg.Events().Write(os.Stdout)
		}
		node.Stop()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	leftCh := make(chan core.LeaveReason, 1)

	go func() {
		for ind := range node.Indications() {
			fmt.Printf("[%v] %s\n", ind.Msg.ID, ind.Msg.Payload)
			if reason, left := node.Left(); left {
				select {
				case leftCh <- reason:
				default:
				}
				return
			}
		}
	}()

	if *chatter > 0 {
		go func() {
			seq := 0
			for range time.Tick(*chatter) {
				seq++
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, err := node.Send(ctx, []byte(fmt.Sprintf("chatter %d from %d", seq, *self)), nil)
				cancel()
				if err != nil {
					fmt.Fprintln(os.Stderr, "chatter:", err)
					return
				}
			}
		}()
	}

	stdinDone := make(chan struct{})
	go func() {
		defer close(stdinDone)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			id, err := node.Send(ctx, []byte(line), nil)
			cancel()
			if err != nil {
				fmt.Fprintln(os.Stderr, "send:", err)
				continue
			}
			fmt.Printf("confirmed %v\n", id)
		}
	}()

	select {
	case sig := <-sigCh:
		shutdown(sig.String())
	case reason := <-leftCh:
		fmt.Printf("member left the group: %v\n", reason)
		shutdown("left group")
	case <-stdinDone:
		if *chatter > 0 {
			// Chatter-driven node: keep running until signalled or excluded.
			select {
			case sig := <-sigCh:
				shutdown(sig.String())
			case reason := <-leftCh:
				fmt.Printf("member left the group: %v\n", reason)
				shutdown("left group")
			}
			return
		}
		shutdown("stdin closed")
	}
}

// serveMetrics binds the observability endpoint and reports its address.
func serveMetrics(addr string, reg *obs.Registry, node *rt.UDPNode) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	reg.PublishExpvar("urcgc")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		evs := reg.Events().Events()
		fmt.Fprintf(w, "events total=%d dropped=%d shown=%d\n",
			reg.Events().Total(), reg.Events().Dropped(), len(evs))
		for _, e := range evs {
			fmt.Fprintf(w, "%s %s\n", e.At.Format("15:04:05.000"), e.Msg)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		tr := node.Lifecycle()
		if tr == nil {
			http.Error(w, "lifecycle tracing disabled (-trace-slow 0)", http.StatusNotFound)
			return
		}
		slowN := queryInt(r, "slow", 10)
		recentN := queryInt(r, "recent", 25)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr.Report(slowN, recentN))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		st, err := node.Status(ctx)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "running    %v\n", st.Running)
		fmt.Fprintf(w, "processed  %v\n", st.Processed)
		fmt.Fprintf(w, "alive      %v\n", st.Alive)
		fmt.Fprintf(w, "history    %d\n", st.HistoryLen)
		fmt.Fprintf(w, "waiting    %d\n", st.WaitingLen)
		fmt.Fprintf(w, "pending    %d\n", st.Pending)
		fmt.Fprintf(w, "stats      %+v\n", st.Stats)
	})
	go func() { _ = http.Serve(ln, mux) }()
	fmt.Printf("observability at http://%s/metrics (also /status, /events, /trace, /debug/vars, /debug/pprof)\n", ln.Addr())
	return nil
}

// queryInt reads a positive integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) int {
	v, err := strconv.Atoi(r.URL.Query().Get(key))
	if err != nil || v < 0 {
		return def
	}
	return v
}

// Command urcgc-node runs one urcgc group member over real UDP sockets —
// the paper's prototype deployment over a LAN (Section 7). Start one
// process per member, each with the same -peers list and its own -self:
//
//	urcgc-node -self 0 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//	urcgc-node -self 1 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//	urcgc-node -self 2 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702
//
// Lines typed on stdin are multicast to the group; messages processed at
// this member — its own and its peers', in causal order — are printed.
// With -chatter the node also generates synthetic traffic by itself.
//
// The node is observable while it runs: -metrics (default 127.0.0.1:0)
// binds an HTTP listener serving
//
//	/metrics     live counters, gauges and histograms (Prometheus text)
//	/status      this member's protocol state (view, vectors, buffers);
//	             append ?format=json for the machine-readable form
//	/healthz     per-node protocol health: 200 healthy, 503 + reasons
//	/timeseries  the flight recorder's gauge window as JSON
//	/events      recent trace events (inbox drops and other omissions)
//	/trace       per-message lifecycle spans: recent completed plus the
//	             slowest in-flight, waiting ones with their blocking MIDs
//	/debug/vars  the same registry as expvar JSON
//	/debug/pprof CPU/heap/goroutine profiles
//
// and a summary table of every instrument is printed on shutdown (SIGINT,
// SIGTERM, stdin EOF, or leaving the group). The whole cluster's health
// picture — view agreement, token progress, stability-frontier skew — is
// reconstructed from these endpoints by `urcgc-inspect`.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/health"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/nodehttp"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

func main() {
	var (
		self      = flag.Int("self", 0, "this member's identity (index into -peers)")
		peers     = flag.String("peers", "", "comma-separated member addresses, index = identity")
		k         = flag.Int("k", 3, "K parameter")
		round     = flag.Duration("round", 20*time.Millisecond, "round duration")
		chatter   = flag.Duration("chatter", 0, "generate a synthetic message this often (0 = stdin only)")
		metrics   = flag.String("metrics", "127.0.0.1:0", "HTTP address for /metrics, /status, /healthz, /timeseries, /events, /trace and /debug/* (empty disables)")
		traceSlow = flag.Duration("trace-slow", time.Second, "flag a message stuck waiting longer than this on /trace (0 disables lifecycle tracing)")
		sample    = flag.Duration("sample", time.Second, "flight-recorder sampling interval for /timeseries and /healthz (0 disables)")
		window    = flag.Int("window", 512, "flight-recorder ring length: samples of history retained")
		batchWin  = flag.Duration("batch-window", 0, "coalesce submissions arriving within this window into one DataBatch broadcast (0 disables batching)")
		batchMax  = flag.Int("batch-max", 0, "max messages per subrun drain when batching (0 = default when -batch-window is set)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 1 || *peers == "" {
		fmt.Fprintln(os.Stderr, "urcgc-node: -peers is required")
		os.Exit(2)
	}
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	reg := obs.New()
	var lcOpts *lifecycle.Options
	if *traceSlow > 0 {
		lcOpts = &lifecycle.Options{SlowThreshold: *traceSlow}
	}
	node, err := rt.NewUDPNode(rt.UDPConfig{
		Config: core.Config{
			N: len(addrs), K: *k, R: 2**k + 2, SelfExclusion: true,
			BatchMax: *batchMax,
		},
		Self:          mid.ProcID(*self),
		Peers:         addrs,
		RoundDuration: *round,
		BatchWindow:   *batchWin,
		Metrics:       reg,
		Lifecycle:     lcOpts,
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "urcgc-node:", err)
		os.Exit(1)
	}
	node.Start()
	fmt.Printf("member %d of %d up at %s (round %v)\n", *self, len(addrs), node.LocalAddr(), *round)

	var flight *obs.Flight
	if *metrics != "" {
		var evaluator *health.Evaluator
		if *sample > 0 {
			flight = obs.NewFlight(reg, obs.FlightOptions{Interval: *sample, Cap: *window})
			evaluator = health.NewEvaluator(flight, strconv.Itoa(*self), health.Thresholds{})
			flight.Start()
		}
		reg.PublishExpvar("urcgc")
		mux := nodehttp.Mux(nodehttp.Options{
			Registry:  reg,
			Flight:    flight,
			Health:    evaluator,
			Status:    node.Status,
			Lifecycle: node.Lifecycle,
			Pprof:     true,
		})
		ln, err := nodehttp.Serve(*metrics, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urcgc-node: metrics:", err)
			node.Stop()
			os.Exit(1)
		}
		fmt.Printf("observability at http://%s/metrics (also /status, /healthz, /timeseries, /events, /trace, /debug/vars, /debug/pprof)\n", ln.Addr())
	}

	// shutdown prints the observability summary exactly once, then stops
	// the member.
	shutdown := func(why string) {
		if flight != nil {
			flight.Stop()
		}
		fmt.Printf("\n--- %s: shutdown summary (member %d) ---\n", why, *self)
		reg.WriteSummary(os.Stdout)
		if tr := node.Lifecycle(); tr != nil {
			if c := tr.Counts(); c.Completed > 0 {
				fmt.Printf("--- slowest completed message spans (of %d) ---\n", c.Completed)
				tr.WriteSlowest(os.Stdout, 5)
			}
		}
		if evs := reg.Events().Events(); len(evs) > 0 {
			fmt.Printf("--- recent events (%d of %d total, %d dropped) ---\n",
				len(evs), reg.Events().Total(), reg.Events().Dropped())
			reg.Events().Write(os.Stdout)
		}
		node.Stop()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	leftCh := make(chan core.LeaveReason, 1)

	go func() {
		for ind := range node.Indications() {
			fmt.Printf("[%v] %s\n", ind.Msg.ID, ind.Msg.Payload)
			if reason, left := node.Left(); left {
				select {
				case leftCh <- reason:
				default:
				}
				return
			}
		}
	}()

	if *chatter > 0 {
		go func() {
			seq := 0
			for range time.Tick(*chatter) {
				seq++
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, err := node.Send(ctx, []byte(fmt.Sprintf("chatter %d from %d", seq, *self)), nil)
				cancel()
				if err != nil {
					fmt.Fprintln(os.Stderr, "chatter:", err)
					return
				}
			}
		}()
	}

	stdinDone := make(chan struct{})
	go func() {
		defer close(stdinDone)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			id, err := node.Send(ctx, []byte(line), nil)
			cancel()
			if err != nil {
				fmt.Fprintln(os.Stderr, "send:", err)
				continue
			}
			fmt.Printf("confirmed %v\n", id)
		}
	}()

	select {
	case sig := <-sigCh:
		shutdown(sig.String())
	case reason := <-leftCh:
		fmt.Printf("member left the group: %v\n", reason)
		shutdown("left group")
	case <-stdinDone:
		if *chatter > 0 {
			// Chatter-driven node: keep running until signalled or excluded.
			select {
			case sig := <-sigCh:
				shutdown(sig.String())
			case reason := <-leftCh:
				fmt.Printf("member left the group: %v\n", reason)
				shutdown("left group")
			}
			return
		}
		shutdown("stdin closed")
	}
}

// Command urcgc-node runs one urcgc group member over real UDP sockets —
// the paper's prototype deployment over a LAN (Section 7). Start one
// process per member, each with the same -peers list and its own -self:
//
//	urcgc-node -self 0 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//	urcgc-node -self 1 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//	urcgc-node -self 2 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702
//
// Lines typed on stdin are multicast to the group; messages processed at
// this member — its own and its peers', in causal order — are printed.
// With -chatter the node also generates synthetic traffic by itself.
//
// A member restarted with -join rejoins the running group instead of
// starting fresh: it state-transfers the history and sequence vectors
// from a live member, is re-admitted by the next decisions, and only then
// accepts new submissions. This is the recovery path after the suicide
// rule (or a crash) took the member out: leave, restart, rejoin.
//
// With -groups G (and optionally -shards S) the member hosts G independent
// groups over the same socket via the sharded multi-group runtime: stdin
// lines go to group 0 unless prefixed "<g>:", chatter rotates across
// groups, printed messages carry a [gN] tag, and the shutdown summary and
// /status include the per-group processed counts. Group 0's frames stay
// wire-compatible with single-group members. The observability surface
// grows the group dimension with it: /healthz aggregates one rule set per
// group (503s name the degraded {group, rule, reason} triples), /trace
// serves every group's spans (filter with ?group=N), and the per-group
// series carry a group label on /metrics and /timeseries.
//
// The node is observable while it runs: -metrics (default 127.0.0.1:0)
// binds an HTTP listener serving
//
//	/metrics     live counters, gauges and histograms (Prometheus text)
//	/status      this member's protocol state (view, vectors, buffers);
//	             append ?format=json for the machine-readable form
//	/healthz     per-node protocol health: 200 healthy, 503 + reasons
//	/timeseries  the flight recorder's gauge window as JSON
//	/events      recent trace events (inbox drops and other omissions)
//	/trace       per-message lifecycle spans: recent completed plus the
//	             slowest in-flight, waiting ones with their blocking MIDs
//	/capture     the frame flight recorder's raw wire traffic as a binary
//	             dump for urcgc-replay (?decode=1 for JSON; needs -capture)
//	/debug/vars  the same registry as expvar JSON
//	/debug/pprof CPU/heap/goroutine profiles
//
// and a summary table of every instrument is printed on shutdown (SIGINT,
// SIGTERM, stdin EOF, or leaving the group). The whole cluster's health
// picture — view agreement, token progress, stability-frontier skew — is
// reconstructed from these endpoints by `urcgc-inspect`.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/core"
	"urcgc/internal/health"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/nodehttp"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
	"urcgc/internal/topics"
)

// member abstracts the single-group rt.UDPNode and the multi-group
// topics.MultiNode behind the handful of operations main drives.
type member struct {
	start       func()
	stop        func()
	localAddr   func() *net.UDPAddr
	status      func(ctx context.Context) (rt.Status, error)
	send        func(ctx context.Context, group uint32, payload []byte) (mid.MID, error)
	indications <-chan topics.Indication
	left        func(group uint32) (core.LeaveReason, bool)
	lifecycle   func() *lifecycle.Tracer   // nil tracer when tracing is off
	lifecycles  func() []*lifecycle.Tracer // multi-group members only, indexed by group
	groupCounts func() []int64             // nil for single-group members
}

func main() {
	var (
		self      = flag.Int("self", 0, "this member's identity (index into -peers)")
		peers     = flag.String("peers", "", "comma-separated member addresses, index = identity")
		k         = flag.Int("k", 3, "K parameter")
		join      = flag.Bool("join", false, "rejoin a running group: state-transfer from a live member instead of starting fresh (use when restarting a member of a live cluster)")
		groups    = flag.Int("groups", 1, "independent groups hosted over this member's socket")
		shards    = flag.Int("shards", 0, "protocol shard loops when -groups > 1 (0 = min(groups, GOMAXPROCS))")
		round     = flag.Duration("round", 20*time.Millisecond, "round duration")
		chatter   = flag.Duration("chatter", 0, "generate a synthetic message this often (0 = stdin only)")
		metrics   = flag.String("metrics", "127.0.0.1:0", "HTTP address for /metrics, /status, /healthz, /timeseries, /events, /trace and /debug/* (empty disables)")
		traceSlow = flag.Duration("trace-slow", time.Second, "flag a message stuck waiting longer than this on /trace (0 disables lifecycle tracing)")
		sample    = flag.Duration("sample", time.Second, "flight-recorder sampling interval for /timeseries and /healthz (0 disables)")
		window    = flag.Int("window", 512, "flight-recorder ring length: samples of history retained")
		batchWin  = flag.Duration("batch-window", 0, "coalesce submissions arriving within this window into one DataBatch broadcast (0 disables batching)")
		batchMax  = flag.Int("batch-max", 0, "max messages per subrun drain when batching (0 = default when -batch-window is set)")
		capFrames = flag.Int("capture", 0, "frame flight-recorder depth: raw wire frames retained for /capture and urcgc-replay (0 disables)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 1 || *peers == "" {
		fmt.Fprintln(os.Stderr, "urcgc-node: -peers is required")
		os.Exit(2)
	}
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if *groups < 1 {
		fmt.Fprintln(os.Stderr, "urcgc-node: -groups must be at least 1")
		os.Exit(2)
	}
	reg := obs.New()
	cfg := core.Config{
		N: len(addrs), K: *k, R: 2**k + 2, SelfExclusion: true,
		BatchMax: *batchMax,
		Join:     *join,
	}

	var ring *capture.Ring
	if *capFrames > 0 {
		ring = capture.New(capture.Options{
			Node: mid.ProcID(*self), N: cfg.N, K: cfg.K, R: cfg.R,
			SelfExclusion: cfg.SelfExclusion, MaxFrames: *capFrames,
		})
	}

	var (
		node *member
		err  error
	)
	if *groups > 1 {
		node, err = newMultiMember(cfg, addrs, *self, *groups, *shards, *round, *batchWin, *traceSlow, reg, ring)
	} else {
		node, err = newSingleMember(cfg, addrs, *self, *round, *batchWin, *traceSlow, reg, ring)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "urcgc-node:", err)
		os.Exit(1)
	}
	node.start()
	joining := ""
	if *join {
		joining = ", rejoining"
	}
	if *groups > 1 {
		fmt.Printf("member %d of %d up at %s (round %v, %d groups over %d shards%s)\n",
			*self, len(addrs), node.localAddr(), *round, *groups, *shards, joining)
	} else {
		fmt.Printf("member %d of %d up at %s (round %v%s)\n", *self, len(addrs), node.localAddr(), *round, joining)
	}

	var flight *obs.Flight
	if *metrics != "" {
		var evaluator *health.Evaluator
		var multiEval *health.MultiEvaluator
		if *sample > 0 {
			flight = obs.NewFlight(reg, obs.FlightOptions{Interval: *sample, Cap: *window})
			if *groups > 1 {
				// One rule set per hosted group over the group-labeled
				// series: /healthz 503s name the degraded groups.
				multiEval = health.NewMultiEvaluator(flight, strconv.Itoa(*self), *groups, health.Thresholds{})
			} else {
				evaluator = health.NewEvaluator(flight, strconv.Itoa(*self), health.Thresholds{})
			}
			flight.Start()
		}
		reg.PublishExpvar("urcgc")
		mux := nodehttp.Mux(nodehttp.Options{
			Registry:        reg,
			Flight:          flight,
			Health:          evaluator,
			MultiHealth:     multiEval,
			Status:          node.status,
			Lifecycle:       node.lifecycle,
			LifecycleGroups: node.lifecycles,
			Capture:         ring,
			Pprof:           true,
		})
		ln, err := nodehttp.Serve(*metrics, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urcgc-node: metrics:", err)
			node.stop()
			os.Exit(1)
		}
		fmt.Printf("observability at http://%s/metrics (also /status, /healthz, /timeseries, /events, /trace, /debug/vars, /debug/pprof)\n", ln.Addr())
	}

	// shutdown prints the observability summary exactly once, then stops
	// the member.
	shutdown := func(why string) {
		if flight != nil {
			flight.Stop()
		}
		fmt.Printf("\n--- %s: shutdown summary (member %d) ---\n", why, *self)
		reg.WriteSummary(os.Stdout)
		if node.groupCounts != nil {
			fmt.Printf("--- per-group processed (%d groups) ---\n", *groups)
			for g, c := range node.groupCounts() {
				fmt.Printf("group %-4d %d\n", g, c)
			}
		}
		if tr := node.lifecycle(); tr != nil {
			if c := tr.Counts(); c.Completed > 0 {
				fmt.Printf("--- slowest completed message spans (of %d) ---\n", c.Completed)
				tr.WriteSlowest(os.Stdout, 5)
			}
		}
		if node.lifecycles != nil {
			for g, tr := range node.lifecycles() {
				if c := tr.Counts(); c.Completed > 0 {
					fmt.Printf("--- group %d slowest completed message spans (of %d) ---\n", g, c.Completed)
					tr.WriteSlowest(os.Stdout, 5)
				}
			}
		}
		if evs := reg.Events().Events(); len(evs) > 0 {
			fmt.Printf("--- recent events (%d of %d total, %d dropped) ---\n",
				len(evs), reg.Events().Total(), reg.Events().Dropped())
			reg.Events().Write(os.Stdout)
		}
		node.stop()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	leftCh := make(chan core.LeaveReason, 1)

	go func() {
		for ind := range node.indications {
			if *groups > 1 {
				fmt.Printf("[g%d %v] %s\n", ind.Group, ind.Msg.ID, ind.Msg.Payload)
			} else {
				fmt.Printf("[%v] %s\n", ind.Msg.ID, ind.Msg.Payload)
			}
			if reason, left := node.left(ind.Group); left {
				select {
				case leftCh <- reason:
				default:
				}
				return
			}
		}
	}()

	if *chatter > 0 {
		go func() {
			seq := 0
			for range time.Tick(*chatter) {
				seq++
				g := uint32(seq % *groups)
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, err := node.send(ctx, g, []byte(fmt.Sprintf("chatter %d from %d", seq, *self)))
				cancel()
				if err != nil {
					// Transient refusals are expected while rejoining (-join):
					// the member accepts submissions only once admitted.
					fmt.Fprintln(os.Stderr, "chatter:", err)
				}
			}
		}()
	}

	stdinDone := make(chan struct{})
	go func() {
		defer close(stdinDone)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			g, text := splitGroup(line, *groups)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			id, err := node.send(ctx, g, []byte(text))
			cancel()
			if err != nil {
				fmt.Fprintln(os.Stderr, "send:", err)
				continue
			}
			if *groups > 1 {
				fmt.Printf("confirmed %v on group %d\n", id, g)
			} else {
				fmt.Printf("confirmed %v\n", id)
			}
		}
	}()

	select {
	case sig := <-sigCh:
		shutdown(sig.String())
	case reason := <-leftCh:
		fmt.Printf("member left the group: %v\n", reason)
		shutdown("left group")
	case <-stdinDone:
		if *chatter > 0 {
			// Chatter-driven node: keep running until signalled or excluded.
			select {
			case sig := <-sigCh:
				shutdown(sig.String())
			case reason := <-leftCh:
				fmt.Printf("member left the group: %v\n", reason)
				shutdown("left group")
			}
			return
		}
		shutdown("stdin closed")
	}
}

// splitGroup routes a stdin line: "<g>: text" goes to group g when g parses
// as a hosted group index; everything else goes to group 0 verbatim.
func splitGroup(line string, groups int) (uint32, string) {
	if groups <= 1 {
		return 0, line
	}
	head, rest, ok := strings.Cut(line, ":")
	if !ok {
		return 0, line
	}
	g, err := strconv.Atoi(strings.TrimSpace(head))
	if err != nil || g < 0 || g >= groups {
		return 0, line
	}
	return uint32(g), strings.TrimSpace(rest)
}

func newSingleMember(cfg core.Config, addrs []string, self int,
	round, batchWin, traceSlow time.Duration, reg *obs.Registry, ring *capture.Ring) (*member, error) {
	var lcOpts *lifecycle.Options
	if traceSlow > 0 {
		lcOpts = &lifecycle.Options{SlowThreshold: traceSlow}
	}
	n, err := rt.NewUDPNode(rt.UDPConfig{
		Config:        cfg,
		Self:          mid.ProcID(self),
		Peers:         addrs,
		RoundDuration: round,
		BatchWindow:   batchWin,
		Metrics:       reg,
		Lifecycle:     lcOpts,
		Capture:       ring,
		Logf:          log.Printf,
		Joined: func() {
			fmt.Printf("member %d rejoined the group (state transfer complete)\n", self)
		},
	})
	if err != nil {
		return nil, err
	}
	// Re-tag the untagged single-group indications as group 0 so the main
	// loop handles one channel shape.
	ind := make(chan topics.Indication, 64)
	go func() {
		defer close(ind)
		for i := range n.Indications() {
			ind <- topics.Indication{Group: 0, Msg: i.Msg}
		}
	}()
	return &member{
		start:     n.Start,
		stop:      n.Stop,
		localAddr: n.LocalAddr,
		status:    n.Status,
		send: func(ctx context.Context, _ uint32, payload []byte) (mid.MID, error) {
			return n.Send(ctx, payload, nil)
		},
		indications: ind,
		left:        func(uint32) (core.LeaveReason, bool) { return n.Left() },
		lifecycle:   n.Lifecycle,
	}, nil
}

func newMultiMember(cfg core.Config, addrs []string, self, groups, shards int,
	round, batchWin, traceSlow time.Duration, reg *obs.Registry, ring *capture.Ring) (*member, error) {
	var lcOpts *lifecycle.Options
	if traceSlow > 0 {
		lcOpts = &lifecycle.Options{SlowThreshold: traceSlow}
	}
	n, err := topics.NewMultiNode(topics.Config{
		Config:        cfg,
		Groups:        groups,
		Shards:        shards,
		Self:          mid.ProcID(self),
		Peers:         addrs,
		RoundDuration: round,
		BatchWindow:   batchWin,
		Metrics:       reg,
		Lifecycle:     lcOpts,
		Capture:       ring,
		Logf:          log.Printf,
		Joined: func(g uint32) {
			fmt.Printf("member %d rejoined group %d (state transfer complete)\n", self, g)
		},
	})
	if err != nil {
		return nil, err
	}
	// Merge every group's indication stream into one tagged channel.
	ind := make(chan topics.Indication, 64)
	done := make(chan struct{}, groups)
	for g := 0; g < groups; g++ {
		ch, err := n.Indications(uint32(g))
		if err != nil {
			return nil, err
		}
		go func() {
			for i := range ch {
				ind <- i
			}
			done <- struct{}{}
		}()
	}
	go func() {
		for i := 0; i < groups; i++ {
			<-done
		}
		close(ind)
	}()
	return &member{
		start:     n.Start,
		stop:      n.Stop,
		localAddr: n.LocalAddr,
		status:    n.Status,
		send: func(ctx context.Context, g uint32, payload []byte) (mid.MID, error) {
			return n.Send(ctx, g, payload, nil)
		},
		indications: ind,
		left: func(g uint32) (core.LeaveReason, bool) {
			reason, ok := n.Left(g)
			return reason, ok
		},
		lifecycle:   func() *lifecycle.Tracer { return nil },
		lifecycles:  n.Lifecycles,
		groupCounts: n.GroupCounts,
	}, nil
}

// Command urcgc-node runs one urcgc group member over real UDP sockets —
// the paper's prototype deployment over a LAN (Section 7). Start one
// process per member, each with the same -peers list and its own -self:
//
//	urcgc-node -self 0 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//	urcgc-node -self 1 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//	urcgc-node -self 2 -peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702
//
// Lines typed on stdin are multicast to the group; messages processed at
// this member — its own and its peers', in causal order — are printed.
// With -chatter the node also generates synthetic traffic by itself.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
)

func main() {
	var (
		self    = flag.Int("self", 0, "this member's identity (index into -peers)")
		peers   = flag.String("peers", "", "comma-separated member addresses, index = identity")
		k       = flag.Int("k", 3, "K parameter")
		round   = flag.Duration("round", 20*time.Millisecond, "round duration")
		chatter = flag.Duration("chatter", 0, "generate a synthetic message this often (0 = stdin only)")
	)
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 1 || *peers == "" {
		fmt.Fprintln(os.Stderr, "urcgc-node: -peers is required")
		os.Exit(2)
	}
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	node, err := rt.NewUDPNode(rt.UDPConfig{
		Config: core.Config{
			N: len(addrs), K: *k, R: 2**k + 2, SelfExclusion: true,
		},
		Self:          mid.ProcID(*self),
		Peers:         addrs,
		RoundDuration: *round,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "urcgc-node:", err)
		os.Exit(1)
	}
	node.Start()
	defer node.Stop()
	fmt.Printf("member %d of %d up at %s (round %v)\n", *self, len(addrs), node.LocalAddr(), *round)

	go func() {
		for ind := range node.Indications() {
			fmt.Printf("[%v] %s\n", ind.Msg.ID, ind.Msg.Payload)
			if reason, left := node.Left(); left {
				fmt.Printf("member left the group: %v\n", reason)
				os.Exit(0)
			}
		}
	}()

	if *chatter > 0 {
		go func() {
			seq := 0
			for range time.Tick(*chatter) {
				seq++
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, err := node.Send(ctx, []byte(fmt.Sprintf("chatter %d from %d", seq, *self)), nil)
				cancel()
				if err != nil {
					fmt.Fprintln(os.Stderr, "chatter:", err)
					return
				}
			}
		}()
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		id, err := node.Send(ctx, []byte(line), nil)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "send:", err)
			continue
		}
		fmt.Printf("confirmed %v\n", id)
	}
}

// Command urcgc-replay re-runs a cluster's captured wire traffic offline
// and audits the result. It ingests the frame flight recorders of every
// member — capture dump files (or directories of them), or the live
// /capture endpoints — merges them into one cluster-wide timeline joined
// by (group, MID), replays each member's delivered ingress frames through
// a fresh protocol entity, and re-runs the uniform-atomicity and
// uniform-ordering audit. A violation observed live either reproduces
// from the artifacts alone or is refuted by them; a reproduced one is
// attributed to the first captured frame whose loss broke the invariant.
//
//	urcgc-replay capture-node0.bin capture-node1.bin capture-node2.bin
//	urcgc-replay /tmp/chaos-captures/
//	urcgc-replay -nodes 127.0.0.1:9100,127.0.0.1:9101 -save dumps/
//
// The exit code is 0 on a clean replay, 1 when violations reproduced,
// 2 on collection or decode errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/probe"
	"urcgc/internal/replay"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "urcgc-replay: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		nodes   = flag.String("nodes", "", "comma-separated addresses to fetch /capture from (instead of dump files)")
		save    = flag.String("save", "", "directory to save fetched dumps into (with -nodes)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout (with -nodes)")
		asJSON  = flag.Bool("json", false, "emit the replay result as JSON")
	)
	flag.Parse()

	var dumps []*capture.Dump
	switch {
	case *nodes != "":
		dumps = fetch(strings.Split(*nodes, ","), *timeout, *save)
	case flag.NArg() > 0:
		dumps = load(flag.Args())
	default:
		fail("nothing to replay: pass dump files/directories or -nodes")
	}

	res, err := replay.Run(dumps)
	if err != nil {
		fail("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail("%v", err)
		}
	} else {
		write(res)
	}
	if !res.Clean {
		os.Exit(1)
	}
}

// load reads dump files; a directory argument means every regular file
// inside it (the shape DumpCaptures writes).
func load(args []string) []*capture.Dump {
	var paths []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			fail("%v", err)
		}
		if !st.IsDir() {
			paths = append(paths, a)
			continue
		}
		ents, err := os.ReadDir(a)
		if err != nil {
			fail("%v", err)
		}
		for _, e := range ents {
			if e.Type().IsRegular() {
				paths = append(paths, filepath.Join(a, e.Name()))
			}
		}
	}
	var dumps []*capture.Dump
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fail("%v", err)
		}
		d, err := capture.Decode(f)
		f.Close()
		if err != nil {
			fail("%s: %v", p, err)
		}
		dumps = append(dumps, d)
	}
	return dumps
}

// fetch collects /capture from live members in parallel, optionally
// persisting each dump before decoding it.
func fetch(addrs []string, timeout time.Duration, save string) []*capture.Dump {
	if save != "" {
		if err := os.MkdirAll(save, 0o755); err != nil {
			fail("%v", err)
		}
	}
	client := &http.Client{Timeout: timeout}
	type fetched struct {
		addr string
		dump *capture.Dump
		err  error
	}
	results := probe.Fanout(addrs, func(_ int, addr string) fetched {
		url := probe.NormalizeAddr(addr) + "/capture"
		body, code, err := probe.Fetch(context.Background(), client, url)
		if err != nil {
			return fetched{addr: addr, err: err}
		}
		if code != http.StatusOK {
			return fetched{addr: addr, err: fmt.Errorf("HTTP %d (is the node running with capture enabled?)", code)}
		}
		d, err := capture.Decode(strings.NewReader(string(body)))
		if err != nil {
			return fetched{addr: addr, err: err}
		}
		return fetched{addr: addr, dump: d}
	})
	var dumps []*capture.Dump
	for _, r := range results {
		if r.err != nil {
			fail("%s: %v", r.addr, r.err)
		}
		if save != "" {
			path := filepath.Join(save, fmt.Sprintf("capture-node%d.bin", r.dump.Node))
			f, err := os.Create(path)
			if err != nil {
				fail("%v", err)
			}
			err = r.dump.Encode(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail("saving %s: %v", path, err)
			}
			fmt.Printf("saved %s (%d records)\n", path, len(r.dump.Records))
		}
		dumps = append(dumps, r.dump)
	}
	return dumps
}

// write renders the human-readable verdict.
func write(res *replay.Result) {
	fmt.Printf("replayed %d capture dumps\n", res.Dumps)
	for _, g := range res.Groups {
		fmt.Printf("\ngroup %d: members %v, survivors %v", g.Group, g.Members, g.Survivors)
		if len(g.Crashed) > 0 {
			fmt.Printf(", crashed %v", g.Crashed)
		}
		fmt.Printf("\n  fed %d ingress frames (+%d own broadcasts)", g.Fed, g.SelfFed)
		if g.Undecodable > 0 {
			fmt.Printf(", %d undecodable", g.Undecodable)
		}
		fmt.Println()
		if len(g.Findings) == 0 {
			fmt.Println("  invariants hold: uniform atomicity and uniform ordering")
			continue
		}
		fmt.Printf("  %d VIOLATIONS reproduced:\n", len(g.Findings))
		for _, f := range g.Findings {
			fmt.Printf("    %s: node %d, %s: %s\n", f.Invariant, f.Node, f.MID, f.Detail)
			if f.Blocking != nil {
				fmt.Printf("      blocking frame: node %d capture #%d [%s %s", f.Blocking.Node,
					f.Blocking.Seq, f.Blocking.Dir, f.Blocking.Verdict)
				if f.Blocking.Fault != "" {
					fmt.Printf(" fault=%s", f.Blocking.Fault)
				}
				fmt.Printf("] %s\n", f.Blocking.Reason)
			}
		}
	}
	if res.First != nil {
		fmt.Printf("\nfirst frame whose loss broke an invariant: node %d capture #%d at %s\n  %s\n",
			res.First.Node, res.First.Seq, res.First.At, res.First.Reason)
	}
	if res.Clean {
		fmt.Println("\nverdict: clean — the captures reproduce no violation")
	}
}

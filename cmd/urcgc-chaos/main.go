// Command urcgc-chaos soaks a live in-process cluster under a seeded
// wall-clock fault schedule — one crash, one healed partition, omission
// bursts, background reordering and duplication — and verifies the paper's
// uniform properties afterwards: every decided message processed by all
// surviving members (Uniform Atomicity) and causal order respected at
// every member (Uniform Ordering).
//
// The fault plan is a pure function of -seed, so a failing run is rerun
// against the identical scripted adversary by passing the same seed.
// Every member additionally records its wire traffic into a frame flight
// recorder (-capture); a violating run dumps the recordings to
// -capture-dir (default: a fresh temp dir) so urcgc-replay can reproduce
// and attribute the breach offline.
//
//	urcgc-chaos -seed 1 -duration 60s
//	urcgc-chaos -seed 1 -duration 10s -metrics 127.0.0.1:7780
//
// Exit status: 0 when both invariants held, 1 on violations or a run that
// failed to converge, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"urcgc/internal/chaos"
	"urcgc/internal/lifecycle"
	"urcgc/internal/obs"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "fault-schedule seed (same seed, same plan)")
		n        = flag.Int("n", 5, "group size")
		k        = flag.Int("k", 4, "silence threshold K (partition length stays under K subruns)")
		r        = flag.Int("r", 8, "recovery-exhaustion threshold R")
		round    = flag.Duration("round", 2*time.Millisecond, "wall-clock round length")
		duration = flag.Duration("duration", 60*time.Second, "fault-phase length")
		settle   = flag.Duration("settle", 0, "max post-fault convergence wait (default: fault-phase length)")
		metrics  = flag.String("metrics", "", "HTTP address for /metrics and /events during the soak (empty disables)")
		slow     = flag.Duration("trace-slow", time.Second, "lifecycle watchdog threshold; stuck spans name the injected fault (0 disables tracing)")
		capFr    = flag.Int("capture", 1<<15, "frame flight-recorder depth per member (0 disables capture)")
		capDir   = flag.String("capture-dir", "", "directory for capture dumps on a violating run (default: a fresh temp dir)")
		quiet    = flag.Bool("q", false, "suppress progress narration")
	)
	flag.Parse()

	cfg := chaos.Config{
		Seed: *seed, N: *n, K: *k, R: *r,
		Round: *round, Duration: *duration, Settle: *settle,
		CaptureFrames: *capFr,
		Metrics:       obs.New(),
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	if *slow > 0 {
		cfg.Lifecycle = &lifecycle.Options{SlowThreshold: *slow}
	}
	if *metrics != "" {
		if err := serveMetrics(*metrics, cfg.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "urcgc-chaos: %v\n", err)
			os.Exit(2)
		}
	}

	// SIGINT/SIGTERM abort the fault phase early; the audit still runs on
	// what happened so far.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rep, err := chaos.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "urcgc-chaos: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(rep)
	if ev := cfg.Metrics.Events(); ev != nil && !*quiet {
		for _, e := range ev.Events() {
			fmt.Printf("  event %s %s\n", e.At.Format("15:04:05.000"), e.Msg)
		}
	}
	if !rep.Ok() {
		// A violating run is evidence: dump every member's frame capture
		// so the breach can be replayed and attributed offline.
		dir := *capDir
		if dir == "" {
			if tmp, err := os.MkdirTemp("", "urcgc-captures-"); err == nil {
				dir = tmp
			}
		}
		if dir != "" && len(rep.Captures) > 0 {
			if paths, err := rep.DumpCaptures(dir); err != nil {
				fmt.Fprintf(os.Stderr, "urcgc-chaos: capture dump failed: %v\n", err)
			} else if len(paths) > 0 {
				fmt.Printf("capture dumps written (%d members): replay with\n  urcgc-replay %s\n",
					len(paths), dir)
			}
		}
	}
	if !rep.Ok() || !rep.Converged {
		os.Exit(1)
	}
}

// serveMetrics exposes the soak's registry while it runs.
func serveMetrics(addr string, reg *obs.Registry) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range reg.Events().Events() {
			fmt.Fprintf(w, "%s %s\n", e.At.Format("15:04:05.000"), e.Msg)
		}
	})
	go func() { _ = http.Serve(ln, mux) }()
	fmt.Printf("observability at http://%s/metrics (also /events)\n", ln.Addr())
	return nil
}

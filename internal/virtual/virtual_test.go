package virtual

import (
	"testing"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

func TestMapping(t *testing.T) {
	m := Mapping{Procs: 3, StreamsPerProc: 2}
	if m.GroupSize() != 6 {
		t.Errorf("GroupSize = %d", m.GroupSize())
	}
	v, err := m.Virtual(StreamID{Owner: 2, Stream: 1})
	if err != nil || v != 5 {
		t.Errorf("Virtual = %d, %v", v, err)
	}
	if s := m.Stream(5); s != (StreamID{Owner: 2, Stream: 1}) {
		t.Errorf("Stream = %v", s)
	}
	if m.Owner(3) != 1 {
		t.Errorf("Owner(3) = %d", m.Owner(3))
	}
	if _, err := m.Virtual(StreamID{Owner: 3, Stream: 0}); err == nil {
		t.Error("out-of-range owner accepted")
	}
	if _, err := m.Virtual(StreamID{Owner: 0, Stream: 2}); err == nil {
		t.Error("out-of-range stream accepted")
	}
	if (Mapping{Procs: 0, StreamsPerProc: 1}).Validate() == nil {
		t.Error("invalid mapping accepted")
	}
	if got := (StreamID{Owner: 2, Stream: 1}).String(); got != "p2/s1" {
		t.Errorf("String = %q", got)
	}
	if got := (MsgID{Stream: StreamID{2, 1}, Seq: 7}).String(); got != "p2/s1#7" {
		t.Errorf("MsgID String = %q", got)
	}
}

func TestConcurrentStreamsStayConcurrent(t *testing.T) {
	g, err := NewGroup(Config{
		Mapping: Mapping{Procs: 3, StreamsPerProc: 2},
		K:       3, R: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Owner 0 roots two independent sequences: audio (s0) and video (s1).
	// Neither labels the other, so they are concurrent by Definition 3.1.
	for k := 0; k < 5; k++ {
		if _, err := g.Submit(StreamID{0, 0}, []byte("audio"), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Submit(StreamID{0, 1}, []byte("video"), nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := g.Run(core.RunOptions{
		MaxRounds: 300, MinRounds: 2 * 2 * 5,
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	for owner := mid.ProcID(0); owner < 3; owner++ {
		for stream := 0; stream < 2; stream++ {
			got, err := g.Processed(owner, StreamID{Owner: 0, Stream: stream})
			if err != nil {
				t.Fatal(err)
			}
			if got != 5 {
				t.Errorf("owner %d processed %d of p0/s%d, want 5", owner, got, stream)
			}
		}
	}
}

func TestCrossStreamDependencyOrders(t *testing.T) {
	g, err := NewGroup(Config{
		Mapping: Mapping{Procs: 2, StreamsPerProc: 2},
		K:       3, R: 8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// p0/s0 emits a; p0/s1 emits b depending on a (a process may causally
	// relate its OWN streams under the general interpretation — exactly
	// what the intermediate interpretation forbids). The dependent message
	// is submitted once the sibling virtual member has processed a.
	a, err := g.Submit(StreamID{0, 0}, []byte("a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var b MsgID
	res, err := g.Run(core.RunOptions{
		MaxRounds: 200, MinRounds: 16,
		OnRound: func(round int) {
			if b.Seq != 0 || round%2 != 0 {
				return
			}
			if got, _ := g.Processed(0, StreamID{0, 0}); got >= a.Seq {
				var err error
				b, err = g.Submit(StreamID{0, 1}, []byte("b"), []MsgID{a})
				if err != nil {
					t.Errorf("submit b: %v", err)
				}
			}
		},
		StopWhenQuiescent: true, DrainSubruns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq == 0 {
		t.Fatal("b never submitted")
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	for owner := mid.ProcID(0); owner < 2; owner++ {
		log, err := g.ProcessedLogOf(owner)
		if err != nil {
			t.Fatal(err)
		}
		posA, posB := -1, -1
		for i, m := range log {
			if m == a {
				posA = i
			}
			if m == b {
				posB = i
			}
		}
		if posA < 0 || posB < 0 || posA > posB {
			t.Errorf("owner %d: a at %d, b at %d (log %v)", owner, posA, posB, log)
		}
	}
}

func TestOwnStreamDepRejected(t *testing.T) {
	g, err := NewGroup(Config{
		Mapping: Mapping{Procs: 2, StreamsPerProc: 2},
		K:       3, R: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.Submit(StreamID{0, 0}, []byte("a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit(StreamID{0, 0}, []byte("b"), []MsgID{a}); err == nil {
		t.Error("own-stream explicit dep must be rejected (implicit chain)")
	}
}

func TestTreeStructuredHistoryEquivalence(t *testing.T) {
	// The paper: the general interpretation implies a tree-structured
	// history per process. Under the virtual-member construction the
	// "tree" is the set of per-stream branches; verify the underlying flat
	// histories stay per-virtual-member contiguous while the owner's
	// streams interleave freely in processing order.
	g, err := NewGroup(Config{
		Mapping: Mapping{Procs: 2, StreamsPerProc: 3},
		K:       3, R: 8, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		for s := 0; s < 3; s++ {
			if _, err := g.Submit(StreamID{1, s}, []byte("x"), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := g.Run(core.RunOptions{
		MaxRounds: 300, MinRounds: 2 * 2 * 4,
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	log, err := g.ProcessedLogOf(0)
	if err != nil {
		t.Fatal(err)
	}
	// Per-branch contiguity.
	next := map[StreamID]mid.Seq{}
	interleavings := 0
	var prev StreamID
	for i, m := range log {
		if m.Seq != next[m.Stream]+1 {
			t.Fatalf("branch %v out of order at %v", m.Stream, m)
		}
		next[m.Stream] = m.Seq
		if i > 0 && m.Stream != prev {
			interleavings++
		}
		prev = m.Stream
	}
	if interleavings == 0 {
		t.Error("concurrent branches should interleave in processing order")
	}
}

// TestOwnerCrashSharedFate crashes a real process by fail-stopping all of
// its virtual members at the same instant (they share a machine). The
// survivors converge and exclude every one of the owner's streams.
func TestOwnerCrashSharedFate(t *testing.T) {
	m := Mapping{Procs: 3, StreamsPerProc: 2}
	crashAt := sim.StartOfSubrun(4)
	var inj fault.Multi
	for s := 0; s < m.StreamsPerProc; s++ {
		v, err := m.Virtual(StreamID{Owner: 2, Stream: s})
		if err != nil {
			t.Fatal(err)
		}
		inj = append(inj, fault.Crash{Proc: v, At: crashAt})
	}
	inner, err := core.NewCluster(core.ClusterConfig{
		Config:   core.Config{N: m.GroupSize(), K: 3, R: 8, SelfExclusion: true},
		Seed:     5,
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := &Group{Mapping: m, C: inner}
	perStream := 8
	res, err := g.Run(core.RunOptions{
		MaxRounds: 600, MinRounds: 2 * 2 * perStream,
		OnRound: func(round int) {
			if round%2 != 0 || round/2 >= perStream {
				return
			}
			for owner := 0; owner < 2; owner++ { // survivors only
				for s := 0; s < 2; s++ {
					_, _ = g.Submit(StreamID{Owner: mid.ProcID(owner), Stream: s}, []byte("x"), nil)
				}
			}
		},
		StopWhenQuiescent: true, DrainSubruns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	// Survivors' views exclude both of owner 2's virtual members.
	for owner := mid.ProcID(0); owner < 2; owner++ {
		first, _ := m.Virtual(StreamID{Owner: owner, Stream: 0})
		view := g.C.Proc(first).View()
		for s := 0; s < 2; s++ {
			v, _ := m.Virtual(StreamID{Owner: 2, Stream: s})
			if view.Alive(v) {
				t.Errorf("owner %d still believes p2/s%d alive", owner, s)
			}
		}
		// And they processed every surviving stream fully.
		for o := 0; o < 2; o++ {
			for s := 0; s < 2; s++ {
				got, _ := g.Processed(owner, StreamID{Owner: mid.ProcID(o), Stream: s})
				if got != mid.Seq(perStream) {
					t.Errorf("owner %d processed %d of p%d/s%d", owner, got, o, s)
				}
			}
		}
	}
}

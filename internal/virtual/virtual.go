// Package virtual implements the *general* interpretation of Definition
// 3.1: a process may root any number of concurrent sequences of causally
// ordered messages, not just one.
//
// The paper's protocol runs under the intermediate interpretation (one
// sequence per process) and notes that strict adherence to the general
// definition "would lead to the consideration of a tree structured
// history... Nevertheless, this would not affect the algorithm." This
// package realizes exactly that observation without touching the protocol:
// each user-visible stream is mapped to a *virtual member* of a larger
// urcgc group. Virtual members owned by the same real process share its
// fate (they crash together), sequences stay independent unless the
// application labels a dependency, and every URCGC guarantee carries over
// because the underlying group is just a bigger instance of the same
// algorithm.
package virtual

import (
	"fmt"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// StreamID names one of a process's concurrent sequences.
type StreamID struct {
	Owner  mid.ProcID // the real process
	Stream int        // 0-based stream index within the owner
}

// String renders the stream as "p2/s1".
func (s StreamID) String() string { return fmt.Sprintf("p%d/s%d", s.Owner, s.Stream) }

// Mapping fixes the translation between (owner, stream) pairs and the
// virtual member identifiers of the underlying group: owner o's stream s is
// virtual member o*StreamsPerProc + s.
type Mapping struct {
	Procs          int
	StreamsPerProc int
}

// Validate reports mapping errors.
func (m Mapping) Validate() error {
	if m.Procs < 1 || m.StreamsPerProc < 1 {
		return fmt.Errorf("virtual: mapping %d procs x %d streams invalid", m.Procs, m.StreamsPerProc)
	}
	return nil
}

// GroupSize returns the cardinality of the underlying urcgc group.
func (m Mapping) GroupSize() int { return m.Procs * m.StreamsPerProc }

// Virtual returns the virtual member carrying the stream.
func (m Mapping) Virtual(s StreamID) (mid.ProcID, error) {
	if s.Owner < 0 || int(s.Owner) >= m.Procs || s.Stream < 0 || s.Stream >= m.StreamsPerProc {
		return 0, fmt.Errorf("virtual: stream %v outside %dx%d mapping", s, m.Procs, m.StreamsPerProc)
	}
	return mid.ProcID(int(s.Owner)*m.StreamsPerProc + s.Stream), nil
}

// Stream returns the stream carried by a virtual member.
func (m Mapping) Stream(v mid.ProcID) StreamID {
	return StreamID{
		Owner:  mid.ProcID(int(v) / m.StreamsPerProc),
		Stream: int(v) % m.StreamsPerProc,
	}
}

// Owner returns the real process owning a virtual member.
func (m Mapping) Owner(v mid.ProcID) mid.ProcID { return m.Stream(v).Owner }

// MsgID names a message in stream terms.
type MsgID struct {
	Stream StreamID
	Seq    mid.Seq
}

// String renders e.g. "p2/s1#7".
func (id MsgID) String() string { return fmt.Sprintf("%v#%d", id.Stream, id.Seq) }

// Group is a simulated urcgc group under the general interpretation: n real
// processes, each rooting StreamsPerProc concurrent sequences. It wraps a
// core.Cluster of GroupSize virtual members.
type Group struct {
	Mapping Mapping
	C       *core.Cluster
}

// Config configures a virtual group.
type Config struct {
	Mapping
	K, R int
	Seed int64
}

// NewGroup builds the underlying cluster. The wrapped cluster runs
// reliably: fault injection under the virtual construction requires
// crashing all of an owner's members together (they share a machine), so a
// faulty variant must compose one fault.Crash per virtual member of the
// dying owner, all at the same instant — partial-owner crashes would break
// the shared-fate assumption.
func NewGroup(cfg Config) (*Group, error) {
	if err := cfg.Mapping.Validate(); err != nil {
		return nil, err
	}
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{
			N: cfg.GroupSize(), K: cfg.K, R: cfg.R, SelfExclusion: true,
		},
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Group{Mapping: cfg.Mapping, C: c}, nil
}

// Submit queues a message on one of the owner's streams, depending on the
// listed messages of any other streams (the general Definition 3.1: the
// roots of concurrency are per-sequence, and a process's own streams are
// mutually concurrent unless explicitly related).
//
// One artifact of the virtual-member construction: a dependency — even on a
// sibling stream of the same owner — must already have been processed by
// the submitting stream's virtual member, which happens one subrun after
// the dependency was broadcast. Applications chain across their own
// streams by submitting the dependent message on the next subrun (see the
// package tests).
func (g *Group) Submit(s StreamID, payload []byte, deps []MsgID) (MsgID, error) {
	v, err := g.Mapping.Virtual(s)
	if err != nil {
		return MsgID{}, err
	}
	var raw mid.DepList
	for _, d := range deps {
		dv, err := g.Mapping.Virtual(d.Stream)
		if err != nil {
			return MsgID{}, err
		}
		if dv == v {
			return MsgID{}, fmt.Errorf("virtual: own-stream dependencies are implicit")
		}
		raw = append(raw, mid.MID{Proc: dv, Seq: d.Seq})
	}
	id, err := g.C.Submit(v, payload, raw)
	if err != nil {
		return MsgID{}, err
	}
	return MsgID{Stream: s, Seq: id.Seq}, nil
}

// Processed returns how many messages of stream s the given real process
// has processed (through any of its virtual members — they share state
// per-member; the owner's view is the max across its members, which are
// identical at quiescence).
func (g *Group) Processed(owner mid.ProcID, s StreamID) (mid.Seq, error) {
	v, err := g.Mapping.Virtual(s)
	if err != nil {
		return 0, err
	}
	// Read from the owner's first virtual member.
	first, err := g.Mapping.Virtual(StreamID{Owner: owner, Stream: 0})
	if err != nil {
		return 0, err
	}
	return g.C.Proc(first).Processed()[v], nil
}

// ProcessedLogOf returns the processing order observed by a real process
// (its first virtual member), translated to stream identifiers.
func (g *Group) ProcessedLogOf(owner mid.ProcID) ([]MsgID, error) {
	first, err := g.Mapping.Virtual(StreamID{Owner: owner, Stream: 0})
	if err != nil {
		return nil, err
	}
	log := g.C.ProcessedLog[first]
	out := make([]MsgID, len(log))
	for i, m := range log {
		out[i] = MsgID{Stream: g.Mapping.Stream(m.Proc), Seq: m.Seq}
	}
	return out, nil
}

// Run drives the underlying cluster.
func (g *Group) Run(opts core.RunOptions) (core.RunResult, error) {
	return g.C.Run(opts)
}

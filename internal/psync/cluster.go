package psync

import (
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/fault"
	"urcgc/internal/metrics"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/simnet"
	"urcgc/internal/wire"
)

// ClusterConfig configures a simulated Psync conversation.
type ClusterConfig struct {
	Config
	Seed     int64
	Injector fault.Injector
	Latency  simnet.Latency
}

// Cluster runs a Psync group in the simulator.
type Cluster struct {
	cfg   ClusterConfig
	eng   *sim.Engine
	net   *simnet.Network
	procs []*Process

	Delay        *metrics.Delay
	DeliveredLog [][]mid.MID
}

type netTransport struct {
	nw   *simnet.Network
	self mid.ProcID
}

func (t netTransport) Send(dst mid.ProcID, pdu wire.PDU) { t.nw.Send(t.self, dst, pdu) }

func (t netTransport) Broadcast(pdu wire.PDU) {
	for dst := 0; dst < t.nw.N(); dst++ {
		t.nw.Send(t.self, mid.ProcID(dst), pdu)
	}
}

// NewCluster builds a Psync group of cc.N processes.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	inj := cc.Injector
	if inj == nil {
		inj = fault.None{}
	}
	eng := sim.NewEngine(cc.Seed)
	nw := simnet.New(eng, cc.N, inj)
	if cc.Latency != nil {
		nw.SetLatency(cc.Latency)
	}
	c := &Cluster{
		cfg:          cc,
		eng:          eng,
		net:          nw,
		procs:        make([]*Process, cc.N),
		Delay:        metrics.NewDelay(),
		DeliveredLog: make([][]mid.MID, cc.N),
	}
	for i := 0; i < cc.N; i++ {
		id := mid.ProcID(i)
		p, err := NewProcess(id, cc.Config, netTransport{nw: nw, self: id}, Callbacks{
			OnDeliver: func(m *causal.Message) {
				c.DeliveredLog[id] = append(c.DeliveredLog[id], m.ID)
				c.Delay.Processed(m.ID, eng.Now())
			},
		})
		if err != nil {
			return nil, err
		}
		c.procs[i] = p
		nw.Attach(id, p)
	}
	return c, nil
}

// Engine returns the event engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Net returns the network.
func (c *Cluster) Net() *simnet.Network { return c.net }

// Proc returns process i.
func (c *Cluster) Proc(i mid.ProcID) *Process { return c.procs[i] }

// N returns the group cardinality.
func (c *Cluster) N() int { return c.cfg.N }

// Crashed reports whether the failure model has fail-stopped p.
func (c *Cluster) Crashed(p mid.ProcID) bool {
	inj := c.cfg.Injector
	if inj == nil {
		return false
	}
	return inj.Crashed(p, c.eng.Now())
}

// Submit queues a payload at p, recording generation time.
func (c *Cluster) Submit(p mid.ProcID, payload []byte) mid.MID {
	proc := c.procs[p]
	id := mid.MID{Proc: p, Seq: proc.nextSeq + mid.Seq(len(proc.outbox)) + 1}
	proc.Submit(payload)
	c.Delay.Generated(id, c.eng.Now())
	return id
}

// Run drives the cluster for maxRounds rounds.
func (c *Cluster) Run(maxRounds int, onRound func(round int)) error {
	if maxRounds <= 0 {
		return fmt.Errorf("psync: maxRounds must be positive")
	}
	sim.NewTicker(c.eng, func(round int) bool {
		if round >= maxRounds {
			return false
		}
		if onRound != nil {
			onRound(round)
		}
		for i, p := range c.procs {
			if c.Crashed(mid.ProcID(i)) {
				continue
			}
			p.StartRound(round)
		}
		return true
	})
	c.eng.Run()
	return nil
}

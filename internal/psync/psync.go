// Package psync reimplements the essentials of Psync (Peterson, Buchholz,
// Schlichting 1989), the conversation-based causal multicast the paper
// cites as its second baseline.
//
// Messages are nodes of a context graph: each carries the identifiers of
// the leaves of the sender's view (its direct causal predecessors) and is
// delivered only after its whole causal past. Holes in the graph are
// repaired with NAK-driven retransmissions. Two properties distinguish it
// from urcgc in the paper's comparison:
//
//   - flow control deletes the messages exceeding the waiting-list bound,
//     thereby *increasing* the omission rate instead of pacing senders
//     (Section 6);
//   - crash handling uses the specialized blocking operation mask_out,
//     re-run from scratch on every failure, during which the conversation
//     makes no progress.
package psync

import (
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
	"urcgc/internal/waitlist"
	"urcgc/internal/wire"
)

// Config carries Psync group parameters.
type Config struct {
	N int
	K int // silence threshold and per-phase retries for mask_out
	// WaitBound caps the waiting list; arrivals beyond it are deleted
	// (Psync's flow control). Zero means unbounded.
	WaitBound int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("psync: N = %d", c.N)
	}
	if c.K < 1 {
		return fmt.Errorf("psync: K = %d", c.K)
	}
	if c.WaitBound < 0 {
		return fmt.Errorf("psync: negative WaitBound")
	}
	return nil
}

// Data is a context-graph node: payload plus the leaves of the sender's
// view at send time.
type Data struct {
	Msg causal.Message // Deps = direct predecessors (the leaves)
}

// Kind implements wire.PDU.
func (*Data) Kind() wire.Kind { return wire.KindPsData }

// EncodedSize implements wire.PDU.
func (d *Data) EncodedSize() int {
	return 1 + 8 + 2 + 8*len(d.Msg.Deps) + 2 + len(d.Msg.Payload)
}

// Nak requests retransmission of missing context-graph nodes.
type Nak struct {
	Requester mid.ProcID
	Wants     []mid.MID
}

// Kind implements wire.PDU.
func (*Nak) Kind() wire.Kind { return wire.KindPsNak }

// EncodedSize implements wire.PDU.
func (n *Nak) EncodedSize() int { return 1 + 4 + 2 + 8*len(n.Wants) }

// Retrans answers a Nak.
type Retrans struct {
	Responder mid.ProcID
	Msgs      []*causal.Message
}

// Kind implements wire.PDU.
func (*Retrans) Kind() wire.Kind { return wire.KindPsRetrans }

// EncodedSize implements wire.PDU.
func (r *Retrans) EncodedSize() int {
	s := 1 + 4 + 2
	for _, m := range r.Msgs {
		s += 8 + 2 + 8*len(m.Deps) + 2 + len(m.Payload)
	}
	return s
}

// Mask is the mask_out operation: Dead are being masked out of the
// conversation. Commit false is the proposal phase (members suspend and
// ack); commit true installs the mask and resumes.
type Mask struct {
	Initiator mid.ProcID
	Epoch     int32
	Dead      []bool
	Commit    bool
	// MaxAvail, on commit, tells per masked sequence the highest node any
	// live member holds; later nodes are discarded from waiting lists.
	MaxAvail mid.SeqVector
}

// Kind implements wire.PDU.
func (*Mask) Kind() wire.Kind { return wire.KindPsMask }

// EncodedSize implements wire.PDU.
func (m *Mask) EncodedSize() int {
	return 1 + 4 + 4 + 1 + (len(m.Dead)+7)/8 + 4*len(m.MaxAvail)
}

// MaskAck acknowledges a Mask proposal, carrying the member's delivered
// vector so the initiator can compute MaxAvail.
type MaskAck struct {
	Sender    mid.ProcID
	Epoch     int32
	Delivered mid.SeqVector
}

// Kind implements wire.PDU.
func (*MaskAck) Kind() wire.Kind { return wire.KindPsMaskAck }

// EncodedSize implements wire.PDU.
func (a *MaskAck) EncodedSize() int { return 1 + 4 + 4 + 4*len(a.Delivered) }

// Transport mirrors the urcgc transport contract.
type Transport interface {
	Send(dst mid.ProcID, pdu wire.PDU)
	Broadcast(pdu wire.PDU)
}

// Callbacks surface protocol events.
type Callbacks struct {
	OnDeliver func(m *causal.Message)
	OnDiscard func(m *causal.Message) // flow-control deletion or mask_out orphan
	OnMasked  func(epoch int32, alive []bool)
}

// Process is one Psync conversation participant.
type Process struct {
	id  mid.ProcID
	cfg Config
	tp  Transport
	cb  Callbacks

	tracker *causal.Tracker
	wait    *waitlist.List
	store   map[mid.MID]*causal.Message // delivered nodes retained for NAK answers
	view    []bool
	epoch   int32
	nextSeq mid.Seq
	outbox  [][]byte

	suspended    bool
	maskEpoch    int32
	maskDead     []bool
	maskAcks     map[mid.ProcID]mid.SeqVector
	maskSubs     int
	initiating   bool
	heardThisSub []bool
	silence      []int
	pending      []*causal.Message // data queued during mask_out

	// Stats for reports and tests.
	Stats Stats
}

// Stats counts externally observable Psync activity.
type Stats struct {
	Sent       int
	Delivered  int
	Naks       int
	Dropped    int // flow-control deletions (induced omissions)
	Discarded  int // mask_out orphan deletions
	Masks      int
	SuspendedT int64
}

// NewProcess returns a Psync entity.
func NewProcess(id mid.ProcID, cfg Config, tp Transport, cb Callbacks) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if int(id) >= cfg.N || id < 0 {
		return nil, fmt.Errorf("psync: id %d outside group of %d", id, cfg.N)
	}
	p := &Process{
		id:           id,
		cfg:          cfg,
		tp:           tp,
		cb:           cb,
		tracker:      causal.NewTracker(cfg.N),
		wait:         waitlist.New(cfg.N),
		store:        make(map[mid.MID]*causal.Message),
		view:         make([]bool, cfg.N),
		heardThisSub: make([]bool, cfg.N),
		silence:      make([]int, cfg.N),
	}
	for i := range p.view {
		p.view[i] = true
	}
	return p, nil
}

// ID returns the process identifier.
func (p *Process) ID() mid.ProcID { return p.id }

// Delivered returns the per-sender delivered counts.
func (p *Process) Delivered() mid.SeqVector { return p.tracker.Processed() }

// WaitingLen returns the waiting-list length.
func (p *Process) WaitingLen() int { return p.wait.Len() }

// Alive reports whether q is unmasked.
func (p *Process) Alive(q mid.ProcID) bool {
	return q >= 0 && int(q) < len(p.view) && p.view[q]
}

// Suspended reports whether a mask_out is blocking the conversation.
func (p *Process) Suspended() bool { return p.suspended }

// Submit queues a payload. It is sent with the current leaves as parents at
// the next subrun.
func (p *Process) Submit(payload []byte) {
	p.outbox = append(p.outbox, payload)
}

// leaves returns the direct-predecessor labels for a new node: the latest
// delivered node of every sequence (the conservative reading of Psync's
// context-graph leaves).
func (p *Process) leaves() mid.DepList {
	var deps mid.DepList
	for q := 0; q < p.cfg.N; q++ {
		qp := mid.ProcID(q)
		if qp == p.id {
			continue
		}
		if s := p.tracker.LastProcessed(qp); s > 0 {
			deps = append(deps, mid.MID{Proc: qp, Seq: s})
		}
	}
	return deps
}

// StartRound drives the process; like the other protocols, activity happens
// on even rounds (subrun starts).
func (p *Process) StartRound(r int) {
	if p.suspended {
		p.Stats.SuspendedT++
	}
	if r%2 != 0 {
		return
	}
	if p.suspended {
		p.maskTick()
	} else {
		p.normalTick()
	}
	p.silenceTick()
}

func (p *Process) normalTick() {
	if len(p.outbox) > 0 {
		payload := p.outbox[0]
		p.outbox = p.outbox[1:]
		p.nextSeq++
		m := &causal.Message{
			ID:      mid.MID{Proc: p.id, Seq: p.nextSeq},
			Deps:    p.leaves(),
			Payload: payload,
		}
		p.Stats.Sent++
		p.tp.Broadcast(&Data{Msg: *m})
		p.deliver(m)
		p.cascade()
	}
	// NAK the first missing node of every blocked sequence.
	need := p.wait.MissingBefore(p.tracker.Processed())
	var wants []mid.MID
	for q, s := range need {
		if s != 0 && !p.tracker.IsCondemned(mid.MID{Proc: mid.ProcID(q), Seq: s}) {
			wants = append(wants, mid.MID{Proc: mid.ProcID(q), Seq: s})
		}
	}
	if len(wants) > 0 {
		p.Stats.Naks++
		p.tp.Broadcast(&Nak{Requester: p.id, Wants: wants})
	}
}

// Recv handles one delivered PDU.
func (p *Process) Recv(src mid.ProcID, pdu wire.PDU) {
	if src >= 0 && int(src) < len(p.heardThisSub) {
		p.heardThisSub[src] = true
	}
	switch v := pdu.(type) {
	case *Data:
		if p.suspended {
			cp := v.Msg
			p.pending = append(p.pending, &cp)
			return
		}
		p.accept(&v.Msg)
	case *Nak:
		p.answerNak(v)
	case *Retrans:
		for _, m := range v.Msgs {
			if p.suspended {
				p.pending = append(p.pending, m)
				continue
			}
			p.accept(m)
		}
	case *Mask:
		p.onMask(v)
	case *MaskAck:
		if p.initiating && v.Epoch == p.maskEpoch {
			p.maskAcks[v.Sender] = v.Delivered
		}
	}
}

func (p *Process) accept(m *causal.Message) {
	if m.Validate() != nil {
		return
	}
	if m.ID.Seq <= p.tracker.LastProcessed(m.ID.Proc) || p.wait.Has(m.ID) || p.tracker.Doomed(m) {
		return
	}
	if p.tracker.Ready(m) {
		p.deliver(m)
		p.cascade()
		return
	}
	// Psync flow control: beyond the bound, delete (an induced omission).
	if p.cfg.WaitBound > 0 && p.wait.Len() >= p.cfg.WaitBound {
		p.Stats.Dropped++
		if p.cb.OnDiscard != nil {
			p.cb.OnDiscard(m)
		}
		return
	}
	p.wait.Add(m)
}

func (p *Process) deliver(m *causal.Message) {
	if err := p.tracker.Process(m); err != nil {
		panic(fmt.Sprintf("psync: process %d: %v", p.id, err))
	}
	p.store[m.ID] = m
	p.Stats.Delivered++
	if p.cb.OnDeliver != nil {
		p.cb.OnDeliver(m)
	}
}

func (p *Process) cascade() {
	for {
		m := p.wait.NextReady(p.tracker)
		if m == nil {
			return
		}
		p.wait.Remove(m.ID)
		p.deliver(m)
	}
}

func (p *Process) answerNak(n *Nak) {
	var msgs []*causal.Message
	for _, want := range n.Wants {
		if m := p.store[want]; m != nil {
			msgs = append(msgs, m)
		}
	}
	if len(msgs) > 0 {
		p.tp.Send(n.Requester, &Retrans{Responder: p.id, Msgs: msgs})
	}
}

// ---- mask_out ----

func (p *Process) silenceTick() {
	anyTraffic := false
	for q := range p.heardThisSub {
		if p.heardThisSub[q] {
			anyTraffic = true
			break
		}
	}
	for q := range p.silence {
		if mid.ProcID(q) == p.id || !p.view[q] {
			continue
		}
		if p.heardThisSub[q] {
			p.silence[q] = 0
		} else if anyTraffic {
			p.silence[q]++
		}
		p.heardThisSub[q] = false
	}
	if p.suspended {
		return
	}
	dead := make([]bool, p.cfg.N)
	found := false
	for q := range p.silence {
		if p.view[q] && mid.ProcID(q) != p.id && p.silence[q] >= p.cfg.K {
			dead[q] = true
			found = true
		}
	}
	if !found {
		return
	}
	acting := p.id
	for q := range p.view {
		if p.view[q] && !dead[q] {
			acting = mid.ProcID(q)
			break
		}
	}
	if acting == p.id {
		p.startMask(dead)
	}
}

func (p *Process) startMask(dead []bool) {
	p.suspended = true
	p.initiating = true
	p.maskEpoch = p.epoch + 1
	p.maskDead = dead
	p.maskSubs = 0
	p.maskAcks = map[mid.ProcID]mid.SeqVector{p.id: p.tracker.Processed().Clone()}
}

func (p *Process) onMask(m *Mask) {
	if m.Epoch <= p.epoch {
		return
	}
	if !m.Commit {
		p.suspended = true
		p.maskEpoch = m.Epoch
		p.maskDead = m.Dead
		p.tp.Send(m.Initiator, &MaskAck{Sender: p.id, Epoch: m.Epoch, Delivered: p.tracker.Processed().Clone()})
		return
	}
	p.installMask(m)
}

func (p *Process) installMask(m *Mask) {
	p.epoch = m.Epoch
	for q := range p.view {
		if q < len(m.Dead) && m.Dead[q] {
			p.view[q] = false
		}
	}
	// Orphans: nodes of masked sequences beyond what any live member holds
	// can never be repaired; condemn and drop dependents.
	for q := range m.Dead {
		if !m.Dead[q] || q >= len(m.MaxAvail) {
			continue
		}
		qp := mid.ProcID(q)
		if p.tracker.LastProcessed(qp) <= m.MaxAvail[q] {
			_ = p.tracker.Condemn(qp, m.MaxAvail[q]+1)
		}
	}
	for _, dropped := range p.wait.DropDoomed(p.tracker) {
		p.Stats.Discarded++
		if p.cb.OnDiscard != nil {
			p.cb.OnDiscard(dropped)
		}
	}
	p.suspended = false
	p.initiating = false
	p.Stats.Masks++
	if p.cb.OnMasked != nil {
		p.cb.OnMasked(p.epoch, append([]bool(nil), p.view...))
	}
	pend := p.pending
	p.pending = nil
	for _, msg := range pend {
		p.accept(msg)
	}
	p.cascade()
}

func (p *Process) maskTick() {
	if !p.initiating {
		return // member: wait for the commit (or a restarted proposal)
	}
	p.maskSubs++
	p.tp.Broadcast(&Mask{Initiator: p.id, Epoch: p.maskEpoch, Dead: p.maskDead})
	allAcked := true
	for q := range p.view {
		qp := mid.ProcID(q)
		if !p.view[q] || p.maskDead[q] || qp == p.id {
			continue
		}
		if _, ok := p.maskAcks[qp]; !ok {
			allAcked = false
		}
	}
	if !allAcked && p.maskSubs < 2*p.cfg.K {
		return
	}
	// Commit: compute MaxAvail over the acked delivered vectors.
	maxAvail := mid.NewSeqVector(p.cfg.N)
	for _, v := range p.maskAcks {
		maxAvail.MaxInto(v)
	}
	commit := &Mask{
		Initiator: p.id, Epoch: p.maskEpoch, Dead: p.maskDead,
		Commit: true, MaxAvail: maxAvail,
	}
	p.tp.Broadcast(commit)
	p.installMask(commit)
}

package psync

import (
	"fmt"
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

func everyOther(c *Cluster, perProc int) func(round int) {
	return func(round int) {
		if round%2 != 0 || round/2 >= perProc {
			return
		}
		for i := 0; i < c.N(); i++ {
			if c.Crashed(mid.ProcID(i)) {
				continue
			}
			c.Submit(mid.ProcID(i), []byte(fmt.Sprintf("m%d-%d", i, round/2)))
		}
	}
}

func TestReliableConversation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Config: Config{N: 4, K: 3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(120, everyOther(c, 10)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v := c.Proc(mid.ProcID(i)).Delivered()
		for q := 0; q < 4; q++ {
			if v[q] != 10 {
				t.Errorf("proc %d delivered %d of p%d's, want 10", i, v[q], q)
			}
		}
	}
}

func TestContextGraphOrdering(t *testing.T) {
	// b is sent by p1 after delivering a from p0, so every log must show a
	// before b.
	c, err := NewCluster(ClusterConfig{Config: Config{N: 3, K: 3}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(40, func(round int) {
		switch round {
		case 0:
			c.Submit(0, []byte("a"))
		case 2:
			if c.Proc(1).Delivered()[0] != 1 {
				t.Fatal("p1 should have delivered a")
			}
			c.Submit(1, []byte("b"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		posA, posB := -1, -1
		for j, id := range c.DeliveredLog[i] {
			if id == (mid.MID{Proc: 0, Seq: 1}) {
				posA = j
			}
			if id == (mid.MID{Proc: 1, Seq: 1}) {
				posB = j
			}
		}
		if posA < 0 || posB < 0 || posA > posB {
			t.Errorf("proc %d: a at %d, b at %d", i, posA, posB)
		}
	}
}

func TestNakRepairsOmissions(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Config: Config{N: 4, K: 4},
		Seed:   3,
		Injector: fault.During{
			From: 0, To: 8 * sim.TicksPerRTD,
			Inner: fault.NewRate(0.05, fault.AtSend, 99),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(300, everyOther(c, 12)); err != nil {
		t.Fatal(err)
	}
	naks := 0
	for i := 0; i < 4; i++ {
		naks += c.Proc(mid.ProcID(i)).Stats.Naks
		v := c.Proc(mid.ProcID(i)).Delivered()
		for q := 0; q < 4; q++ {
			if v[q] != 12 {
				t.Errorf("proc %d delivered %d of p%d's, want 12", i, v[q], q)
			}
		}
	}
	if naks == 0 {
		t.Error("expected NAK repair traffic under omissions")
	}
}

func TestFlowControlDeletesBeyondBound(t *testing.T) {
	// Half of everything addressed to p3 is lost for 10 rtd, so arrivals
	// referencing missing parents pile up in its waiting list; the tight
	// bound forces deletions (Psync's flow-control pathology: drops raise
	// the effective omission rate).
	c, err := NewCluster(ClusterConfig{
		Config: Config{N: 4, K: 40, WaitBound: 2},
		Seed:   4,
		Injector: fault.During{
			From: 0, To: 10 * sim.TicksPerRTD,
			Inner: fault.OnlyProc{Proc: 3, Inner: fault.NewRate(0.5, fault.AtRecv, 7)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(700, everyOther(c, 25)); err != nil {
		t.Fatal(err)
	}
	p3 := c.Proc(3)
	if p3.Stats.Dropped == 0 {
		t.Error("tight WaitBound should have deleted messages")
	}
	if p3.WaitingLen() > 2 {
		t.Errorf("waiting %d exceeds bound", p3.WaitingLen())
	}
}

func TestMaskOutOnCrash(t *testing.T) {
	failAt := sim.StartOfSubrun(6)
	c, err := NewCluster(ClusterConfig{
		Config:   Config{N: 4, K: 2},
		Seed:     5,
		Injector: fault.Crash{Proc: 2, At: failAt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(400, everyOther(c, 30)); err != nil {
		t.Fatal(err)
	}
	suspended := int64(0)
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue
		}
		p := c.Proc(mid.ProcID(i))
		if p.Alive(2) {
			t.Errorf("proc %d still has 2 unmasked", i)
		}
		if p.Suspended() {
			t.Errorf("proc %d still suspended", i)
		}
		if p.Stats.Masks == 0 {
			t.Errorf("proc %d never completed mask_out", i)
		}
		suspended += p.Stats.SuspendedT
	}
	if suspended == 0 {
		t.Error("mask_out should have blocked the conversation")
	}
	// Survivors converge.
	ref := c.Proc(0).Delivered()
	for i := 1; i < 4; i++ {
		if i == 2 {
			continue
		}
		if !ref.Equal(c.Proc(mid.ProcID(i)).Delivered()) {
			t.Errorf("survivor %d diverges: %v vs %v", i, c.Proc(mid.ProcID(i)).Delivered(), ref)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{N: 0, K: 1}).Validate() == nil {
		t.Error("N=0")
	}
	if (Config{N: 2, K: 0}).Validate() == nil {
		t.Error("K=0")
	}
	if (Config{N: 2, K: 1, WaitBound: -1}).Validate() == nil {
		t.Error("negative bound")
	}
	if (Config{N: 2, K: 1, WaitBound: 5}).Validate() != nil {
		t.Error("valid rejected")
	}
}

func TestEncodedSizes(t *testing.T) {
	n := &Nak{Requester: 1, Wants: []mid.MID{{Proc: 0, Seq: 1}}}
	if got := n.EncodedSize(); got != 1+4+2+8 {
		t.Errorf("Nak size = %d", got)
	}
	m := &Mask{Dead: make([]bool, 9), MaxAvail: mid.NewSeqVector(9)}
	if got := m.EncodedSize(); got != 1+4+4+1+2+36 {
		t.Errorf("Mask size = %d", got)
	}
}

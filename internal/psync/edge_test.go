package psync

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

type nullTransport struct{}

func (nullTransport) Send(mid.ProcID, wire.PDU) {}
func (nullTransport) Broadcast(wire.PDU)        {}

type captureTp struct {
	sends  []wire.PDU
	bcasts []wire.PDU
}

func (c *captureTp) Send(_ mid.ProcID, pdu wire.PDU) { c.sends = append(c.sends, pdu) }
func (c *captureTp) Broadcast(pdu wire.PDU)          { c.bcasts = append(c.bcasts, pdu) }

func node(t *testing.T, id mid.ProcID, n int, tp Transport, cb Callbacks) *Process {
	t.Helper()
	p, err := NewProcess(id, Config{N: n, K: 2}, tp, cb)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func psMsg(p mid.ProcID, s mid.Seq, deps ...mid.MID) *causal.Message {
	return &causal.Message{ID: mid.MID{Proc: p, Seq: s}, Deps: mid.DepList(deps), Payload: []byte("x")}
}

func TestAnswerNakFromStore(t *testing.T) {
	tp := &captureTp{}
	p := node(t, 0, 3, tp, Callbacks{})
	p.Recv(1, &Data{Msg: *psMsg(1, 1)})
	p.Recv(2, &Nak{Requester: 2, Wants: []mid.MID{{Proc: 1, Seq: 1}}})
	if len(tp.sends) != 1 {
		t.Fatalf("sends = %d", len(tp.sends))
	}
	rt, ok := tp.sends[0].(*Retrans)
	if !ok || len(rt.Msgs) != 1 || rt.Msgs[0].ID != (mid.MID{Proc: 1, Seq: 1}) {
		t.Errorf("retrans = %+v", tp.sends[0])
	}
	// A NAK for something we lack is silently unanswered.
	p.Recv(2, &Nak{Requester: 2, Wants: []mid.MID{{Proc: 1, Seq: 9}}})
	if len(tp.sends) != 1 {
		t.Error("unanswerable NAK must stay silent")
	}
}

func TestSuspendedQueuesData(t *testing.T) {
	delivered := 0
	p := node(t, 1, 3, nullTransport{}, Callbacks{OnDeliver: func(*causal.Message) { delivered++ }})
	// A mask proposal from p0 suspends us.
	p.Recv(0, &Mask{Initiator: 0, Epoch: 1, Dead: []bool{false, false, true}})
	if !p.Suspended() {
		t.Fatal("mask proposal should suspend")
	}
	p.Recv(0, &Data{Msg: *psMsg(0, 1)})
	if delivered != 0 {
		t.Error("suspended conversation must queue, not deliver")
	}
	// The commit installs the mask and releases the queue.
	p.Recv(0, &Mask{Initiator: 0, Epoch: 1, Dead: []bool{false, false, true}, Commit: true, MaxAvail: mid.NewSeqVector(3)})
	if p.Suspended() {
		t.Fatal("commit should resume")
	}
	if delivered != 1 {
		t.Errorf("delivered = %d after resume", delivered)
	}
	if p.Alive(2) {
		t.Error("mask not applied")
	}
}

func TestMaskCommitCondemnsOrphans(t *testing.T) {
	var discarded []*causal.Message
	p := node(t, 1, 3, nullTransport{}, Callbacks{OnDiscard: func(m *causal.Message) { discarded = append(discarded, m) }})
	// p2's node 2 waits on p2's node 1, which nobody alive holds.
	p.Recv(2, &Data{Msg: *psMsg(2, 2)})
	if p.WaitingLen() != 1 {
		t.Fatalf("waiting = %d", p.WaitingLen())
	}
	p.Recv(0, &Mask{
		Initiator: 0, Epoch: 1, Dead: []bool{false, false, true},
		Commit: true, MaxAvail: mid.SeqVector{0, 0, 0},
	})
	if len(discarded) != 1 {
		t.Fatalf("discarded = %v", discarded)
	}
	if p.WaitingLen() != 0 {
		t.Error("orphan still waiting")
	}
}

func TestStaleMaskIgnored(t *testing.T) {
	p := node(t, 1, 3, nullTransport{}, Callbacks{})
	p.Recv(0, &Mask{Initiator: 0, Epoch: 2, Dead: []bool{false, false, true}, Commit: true, MaxAvail: mid.NewSeqVector(3)})
	p.Recv(0, &Mask{Initiator: 0, Epoch: 1, Dead: []bool{false, true, false}, Commit: true, MaxAvail: mid.NewSeqVector(3)})
	if !p.Alive(1) || p.Alive(2) {
		t.Error("stale mask applied")
	}
}

func TestLeavesLabelConcurrentSequences(t *testing.T) {
	p := node(t, 0, 4, nullTransport{}, Callbacks{})
	p.Recv(1, &Data{Msg: *psMsg(1, 1)})
	p.Recv(2, &Data{Msg: *psMsg(2, 1)})
	deps := p.leaves()
	if !deps.Covers(mid.MID{Proc: 1, Seq: 1}) || !deps.Covers(mid.MID{Proc: 2, Seq: 1}) {
		t.Errorf("leaves = %v", deps)
	}
	if deps.Covers(mid.MID{Proc: 3, Seq: 1}) {
		t.Error("no node from p3 yet")
	}
}

package chaos

import (
	"context"
	"os"
	"testing"
	"time"

	"urcgc/internal/faultrt"
	"urcgc/internal/lifecycle"
	"urcgc/internal/obs"
)

// TestSmokeSoak is the CI chaos gate: a short seeded soak with one crash,
// one healed partition, omission bursts and background reordering and
// duplication, audited for uniform atomicity and uniform ordering. It must
// stay fast enough for -race on a CI runner.
func TestSmokeSoak(t *testing.T) {
	reg := obs.New()
	cfg := Config{
		Seed:          41,
		Duration:      1500 * time.Millisecond,
		CaptureFrames: 1 << 15,
		Metrics:       reg,
		Lifecycle: &lifecycle.Options{
			SlowThreshold: 250 * time.Millisecond,
		},
		Logf: t.Logf,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assessSoak(t, rep, reg)
}

// TestSmokeSoakBatched repeats the CI chaos gate with the batched hot path
// on — coalescing sender plus multi-message DataBatch frames — and holds
// it to the same invariant audit: batching must not cost Uniform Atomicity
// or Uniform Ordering under crashes, partitions, omissions, reordering and
// duplication.
func TestSmokeSoakBatched(t *testing.T) {
	reg := obs.New()
	cfg := Config{
		Seed:        41,
		Duration:    1500 * time.Millisecond,
		BatchWindow: 2 * time.Millisecond,
		BatchMax:    16,
		Metrics:     reg,
		Lifecycle: &lifecycle.Options{
			SlowThreshold: 250 * time.Millisecond,
		},
		Logf: t.Logf,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assessSoak(t, rep, reg)
}

// TestLongSoak is the acceptance soak: 60 seconds of faults. Gated behind
// URCGC_CHAOS_SOAK=1 so the ordinary suite stays fast; the chaos CLI runs
// the same shape interactively.
func TestLongSoak(t *testing.T) {
	if os.Getenv("URCGC_CHAOS_SOAK") == "" {
		t.Skip("set URCGC_CHAOS_SOAK=1 to run the 60s acceptance soak")
	}
	reg := obs.New()
	cfg := Config{
		Seed:     1,
		Duration: 60 * time.Second,
		Settle:   10 * time.Second,
		Metrics:  reg,
		Logf:     t.Logf,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assessSoak(t, rep, reg)
}

// assessSoak asserts the soak acceptance criteria on a finished report.
func assessSoak(t *testing.T, rep *Report, reg *obs.Registry) {
	t.Helper()
	t.Logf("\n%s", rep)
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("invariant violated: %v", v)
		}
		// Preserve the evidence: with URCGC_CAPTURE_DIR set (CI exports
		// it), a violating soak dumps every member's frame capture for
		// offline replay with urcgc-replay.
		if dir := os.Getenv("URCGC_CAPTURE_DIR"); dir != "" {
			if paths, err := rep.DumpCaptures(dir); err != nil {
				t.Logf("capture dump failed: %v", err)
			} else if len(paths) > 0 {
				t.Logf("capture dumps written: %v — replay with: urcgc-replay %s", paths, dir)
			}
		}
	}
	if !rep.Converged {
		t.Error("survivors did not converge inside the settle window")
	}
	if len(rep.Killed) != 1 || rep.Killed[0] != rep.Schedule.CrashProc {
		t.Errorf("killed = %v, want exactly the scheduled crash of p%d",
			rep.Killed, rep.Schedule.CrashProc)
	}
	if len(rep.Survivors) != rep.Schedule.N-1 || len(rep.Left) != 0 {
		t.Errorf("survivors = %v, left = %v: the healed partition must not evict anyone",
			rep.Survivors, rep.Left)
	}
	if rep.Confirmed == 0 {
		t.Error("no send ever confirmed under faults")
	}
	for _, p := range rep.Survivors {
		if rep.Processed[p] == 0 {
			t.Errorf("survivor p%d processed nothing", p)
		}
	}
	// The health layer must have noticed the adversary — at minimum the
	// scheduled crash freezes its victim's gauges — and every survivor's
	// verdict must return to healthy once the faults clear.
	if !rep.HealthMonitored {
		t.Error("health was not monitored despite a metrics registry")
	}
	if !rep.HealthDegraded || len(rep.DegradedNodes) == 0 {
		t.Error("no member's health ever degraded during the fault phase")
	}
	if !rep.HealthRecovered {
		t.Errorf("survivors did not return to healthy after the faults: degraded=%v", rep.DegradedNodes)
	}
	// Every scheduled fault kind must have fired, and the per-kind
	// counters must be visible on the metrics registry.
	snap := reg.Snapshot()
	for _, k := range faultrt.Kinds() {
		if rep.Injected[k.String()] == 0 {
			t.Errorf("no %s fault was ever injected", k)
		}
		name := obs.Labeled("faultrt_injected_total", "kind", k.String())
		if snap[name] == 0 {
			t.Errorf("%s not exported on /metrics", name)
		}
	}
}

// TestSameSeedSamePlan pins the run-level determinism contract: two soaks
// with the same seed execute the identical fault plan.
func TestSameSeedSamePlan(t *testing.T) {
	a, err := Run(context.Background(), Config{Seed: 7, Duration: 200 * time.Millisecond, Settle: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), Config{Seed: 7, Duration: 200 * time.Millisecond, Settle: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatalf("same seed, different plans:\n%s\nvs\n%s", a.Schedule, b.Schedule)
	}
	if c, _ := Run(context.Background(), Config{Seed: 8, Duration: 200 * time.Millisecond, Settle: 400 * time.Millisecond}); c.Schedule.String() == a.Schedule.String() {
		t.Error("a different seed should produce a different plan")
	}
}

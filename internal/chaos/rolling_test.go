package chaos

import (
	"context"
	"os"
	"testing"
	"time"
)

// assessRolling asserts the rolling-restart acceptance criteria.
func assessRolling(t *testing.T, rep *RollingReport, n int) {
	t.Helper()
	t.Logf("\n%s", rep)
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("invariant violated: %v", v)
		}
	}
	if len(rep.Restarted) != n {
		t.Errorf("plan cycled %d of %d members", len(rep.Restarted), n)
	}
	if len(rep.Rejoined) != n {
		t.Errorf("only %d of %d members rejoined", len(rep.Rejoined), n)
	}
	if !rep.Converged {
		t.Error("the group did not re-converge after the rolling restart")
	}
	if !rep.Healthy {
		t.Error("not every member ended running, joined and with a full view")
	}
	if rep.Confirmed == 0 {
		t.Error("no send ever confirmed during the rolling restart")
	}
}

// TestRollingRestartSmoke is the CI gate for dynamic membership: a small
// group, every member kill -9'd and rejoined in turn under 1/100 send
// omissions and continuous load, audited for uniform atomicity and uniform
// ordering across incarnations. Fast enough for -race on a CI runner.
func TestRollingRestartSmoke(t *testing.T) {
	cfg := RollingConfig{
		Seed: 11,
		N:    4,
		Logf: t.Logf,
	}
	rep, err := RunRollingRestart(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assessRolling(t, rep, cfg.N)
}

// TestRollingRestartSoak is the acceptance shape: n=5 with slower rounds
// and generous budgets. Gated behind URCGC_CHAOS_SOAK=1 like TestLongSoak.
func TestRollingRestartSoak(t *testing.T) {
	if os.Getenv("URCGC_CHAOS_SOAK") == "" {
		t.Skip("set URCGC_CHAOS_SOAK=1 to run the rolling-restart acceptance soak")
	}
	cfg := RollingConfig{
		Seed:        1,
		N:           5,
		Round:       4 * time.Millisecond,
		PhaseBudget: 30 * time.Second,
		Logf:        t.Logf,
	}
	rep, err := RunRollingRestart(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assessRolling(t, rep, cfg.N)
}

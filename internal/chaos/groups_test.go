package chaos

import (
	"context"
	"testing"
	"time"
)

// TestSmokeSoakGroupPartition is the multi-group acceptance soak: cut one
// group's traffic to one member of a three-group cluster and require that
// exactly that group's per-group health verdict degrades and recovers,
// while the co-hosted groups on the same nodes and transport stay healthy
// for the whole run.
func TestSmokeSoakGroupPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live run")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := RunGroups(ctx, GroupsConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if !rep.HealthyBeforeFault {
		t.Fatal("cluster never reached an all-healthy baseline with traffic in every group")
	}
	if _, ok := rep.Degraded[rep.Target]; !ok {
		t.Fatalf("partitioned group %d never degraded: %v", rep.Target, rep.Degraded)
	}
	if !rep.OnlyTargetDegraded() {
		t.Fatalf("degradation leaked beyond group %d: %v", rep.Target, rep.Degraded)
	}
	if !rep.Recovered {
		t.Fatal("per-group verdicts never recovered after the heal")
	}
}

package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/faultrt"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

// RollingConfig parameterizes one rolling-restart soak: every member is
// kill -9'd and rejoined in turn, under background omissions and load. The
// zero value of every field gets a usable default.
type RollingConfig struct {
	// Seed feeds the (deterministic) omission counter alignment; kept for
	// symmetry with Config even though the rolling plan itself is fixed.
	Seed int64
	// N is the group size (default 5).
	N int
	// K is the silence threshold (default 4).
	K int
	// R is the recovery-exhaustion threshold (default 12; the self-
	// exclusion rule requires R > 2K).
	R int
	// Round is the wall-clock round length (default 2ms).
	Round time.Duration
	// OmissionEvery drops one datagram in this many at the send boundary
	// for the whole run — the paper's 1/100 curve by default. 0 means the
	// default; negative disables omissions.
	OmissionEvery int
	// SendEvery is each live member's submission cadence (default 4*Round).
	SendEvery time.Duration
	// SendTimeout abandons a confirm wait (default max(100*Round, 200ms)).
	SendTimeout time.Duration
	// PhaseBudget bounds each wait of the rolling plan — crash declared,
	// state installed, rejoin admitted, views re-converged (default 10s).
	PhaseBudget time.Duration
	// Settle bounds the final convergence wait (default PhaseBudget).
	Settle time.Duration
	// Metrics, when non-nil, receives the cluster's instruments.
	Metrics *obs.Registry
	// Logf, when non-nil, narrates progress.
	Logf func(format string, args ...any)
}

func (c RollingConfig) fill() RollingConfig {
	if c.N == 0 {
		c.N = 5
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.R == 0 {
		c.R = 12
	}
	if c.Round == 0 {
		c.Round = 2 * time.Millisecond
	}
	if c.OmissionEvery == 0 {
		c.OmissionEvery = 100
	}
	if c.SendEvery == 0 {
		c.SendEvery = 4 * c.Round
	}
	if c.SendTimeout == 0 {
		c.SendTimeout = 100 * c.Round
		if c.SendTimeout < 200*time.Millisecond {
			c.SendTimeout = 200 * time.Millisecond
		}
	}
	if c.PhaseBudget == 0 {
		c.PhaseBudget = 10 * time.Second
	}
	if c.Settle == 0 {
		c.Settle = c.PhaseBudget
	}
	return c
}

// RollingReport is the outcome of one rolling-restart soak.
type RollingReport struct {
	// Restarted lists the members the plan killed and revived, in order.
	Restarted []mid.ProcID
	// Rejoined lists those whose new incarnation was re-admitted in time.
	Rejoined []mid.ProcID
	// Sent and Confirmed count submissions and completed confirm waits.
	Sent, Confirmed int64
	// Injected counts realized injections per fault kind.
	Injected map[string]int64
	// Converged reports whether every member's processed vector agreed and
	// stabilized inside the settle window.
	Converged bool
	// Healthy reports whether, at the end, every member was running, done
	// joining, and every view held the full group alive.
	Healthy bool
	// Violations are the invariant breaches found; empty means clean.
	Violations []faultrt.Violation
}

// Ok reports whether the run upheld both uniform properties.
func (r *RollingReport) Ok() bool { return len(r.Violations) == 0 }

// String renders a human summary.
func (r *RollingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rolling restart: %d members cycled, %d rejoined\n", len(r.Restarted), len(r.Rejoined))
	fmt.Fprintf(&b, "sent=%d confirmed=%d converged=%v healthy=%v\n", r.Sent, r.Confirmed, r.Converged, r.Healthy)
	kinds := make([]string, 0, len(r.Injected))
	for k := range r.Injected {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  injected %s: %d\n", k, r.Injected[k])
	}
	if r.Ok() {
		b.WriteString("invariants: uniform atomicity and uniform ordering hold\n")
	} else {
		fmt.Fprintf(&b, "invariants: %d VIOLATIONS\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %v\n", v)
		}
	}
	return b.String()
}

// RunRollingRestart cycles every member through kill -9 and rejoin, one at
// a time, under background omissions and continuous load: kill, wait for
// the survivors to declare the crash, drain the dead member's indication
// backlog, restart it as a joiner (rebaselining the invariant checker at
// the installed stable vector), wait for re-admission and full view
// convergence, then move to the next member. Afterwards the survivors
// settle and the checker audits every incarnation. ctx aborts the plan
// early (the audit still runs on what happened).
func RunRollingRestart(ctx context.Context, cfg RollingConfig) (*RollingReport, error) {
	cfg = cfg.fill()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var inj faultrt.Injector = faultrt.None{}
	if cfg.OmissionEvery > 0 {
		inj = &faultrt.DropEvery{N: cfg.OmissionEvery, Side: faultrt.AtSend}
	}
	hook := faultrt.NewHook(inj, cfg.Metrics)
	checker := faultrt.NewChecker()

	joinedCh := make(chan mid.ProcID, cfg.N)
	cl, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: cfg.N, K: cfg.K, R: cfg.R, SelfExclusion: true},
		RoundDuration: cfg.Round,
		Metrics:       cfg.Metrics,
		Fault:         hook,
		JoinInstalled: func(node mid.ProcID, stable mid.SeqVector) {
			checker.Restart(node, stable)
		},
		FastForwarded: func(node, of mid.ProcID, to mid.Seq) {
			checker.FastForward(node, of, to)
		},
		Joined: func(node mid.ProcID) {
			select {
			case joinedCh <- node:
			default:
			}
		},
	})
	if err != nil {
		return nil, err
	}
	cl.Start()

	// Consumers: one per member, feeding the indication stream into the
	// checker; after drainStop they empty whatever is still buffered.
	var consumers sync.WaitGroup
	drainStop := make(chan struct{})
	for i := 0; i < cfg.N; i++ {
		node := cl.Node(mid.ProcID(i))
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				select {
				case ind := <-node.Indications():
					checker.Record(node.ID(), &ind.Msg)
				case <-drainStop:
					for {
						select {
						case ind := <-node.Indications():
							checker.Record(node.ID(), &ind.Msg)
						default:
							return
						}
					}
				}
			}
		}()
	}

	// Load: every member submits on a cadence for the whole plan. Sends on
	// a killed or still-joining member fail fast; both are legal.
	loadCtx, cancelLoad := context.WithCancel(ctx)
	var sent, confirmed atomic.Int64
	var load sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		node := cl.Node(mid.ProcID(i))
		load.Add(1)
		go func() {
			defer load.Done()
			tick := time.NewTicker(cfg.SendEvery)
			defer tick.Stop()
			for {
				select {
				case <-loadCtx.Done():
					return
				case <-tick.C:
				}
				sctx, cancel := context.WithTimeout(loadCtx, cfg.SendTimeout)
				sent.Add(1)
				if _, err := node.SendCausal(sctx, []byte("roll")); err == nil {
					confirmed.Add(1)
				}
				cancel()
			}
		}()
	}

	rep := &RollingReport{}
	poll := 5 * cfg.Round
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	// waitUntil polls cond inside the phase budget; false = budget ran out
	// or the context ended.
	waitUntil := func(cond func() bool) bool {
		deadline := time.Now().Add(cfg.PhaseBudget)
		for time.Now().Before(deadline) && ctx.Err() == nil {
			if cond() {
				return true
			}
			time.Sleep(poll)
		}
		return false
	}
	aliveAt := func(at, q mid.ProcID) (bool, error) {
		var alive bool
		sctx, cancel := context.WithTimeout(ctx, time.Second)
		err := cl.Node(at).Snapshot(sctx, func(p *core.Process) { alive = p.View().Alive(q) })
		cancel()
		return alive, err
	}

	for i := 0; i < cfg.N && ctx.Err() == nil; i++ {
		victim := mid.ProcID(i)
		rep.Restarted = append(rep.Restarted, victim)
		logf("rolling: kill -9 member %d", victim)
		cl.Node(victim).Kill()

		declared := waitUntil(func() bool {
			for q := 0; q < cfg.N; q++ {
				if q == i {
					continue
				}
				if alive, err := aliveAt(mid.ProcID(q), victim); err != nil || alive {
					return false
				}
			}
			return true
		})
		if !declared {
			logf("rolling: survivors never declared member %d crashed", victim)
			break
		}

		// Drain the dead incarnation's indication backlog so nothing of it
		// is recorded after the checker rebaselines.
		waitUntil(func() bool { return len(cl.Node(victim).Indications()) == 0 })
		time.Sleep(5 * cfg.Round)

		logf("rolling: restart member %d as joiner", victim)
		if err := cl.Restart(ctx, victim); err != nil {
			logf("rolling: restart of member %d failed: %v", victim, err)
			break
		}
		admitted := waitUntil(func() bool {
			select {
			case q := <-joinedCh:
				return q == victim
			default:
				return false
			}
		})
		if !admitted {
			logf("rolling: member %d never rejoined", victim)
			break
		}
		readmitted := waitUntil(func() bool {
			for q := 0; q < cfg.N; q++ {
				if alive, err := aliveAt(mid.ProcID(q), victim); err != nil || !alive {
					return false
				}
			}
			return true
		})
		if !readmitted {
			logf("rolling: views never re-admitted member %d", victim)
			break
		}
		rep.Rejoined = append(rep.Rejoined, victim)
		logf("rolling: member %d back in the view", victim)
	}

	cancelLoad()
	load.Wait()
	logf("rolling plan over: sent=%d confirmed=%d; settling", sent.Load(), confirmed.Load())

	// Settle: every member's processed vector must agree and stop moving —
	// the recovered group has one history again.
	vectors := func() ([]mid.SeqVector, bool) {
		out := make([]mid.SeqVector, cfg.N)
		for q := 0; q < cfg.N; q++ {
			sctx, cancel := context.WithTimeout(ctx, time.Second)
			err := cl.Node(mid.ProcID(q)).Snapshot(sctx, func(p *core.Process) { out[q] = p.Processed().Clone() })
			cancel()
			if err != nil {
				return nil, false
			}
		}
		return out, true
	}
	converged := false
	deadline := time.Now().Add(cfg.Settle)
	prev, _ := vectors()
	for time.Now().Before(deadline) && ctx.Err() == nil {
		time.Sleep(4 * poll)
		cur, ok := vectors()
		if !ok {
			continue
		}
		same := true
		for q := 1; q < cfg.N; q++ {
			if !cur[0].Equal(cur[q]) {
				same = false
				break
			}
		}
		if same && prev != nil && cur[0].Equal(prev[0]) {
			converged = true
			break
		}
		prev = cur
	}
	rep.Converged = converged

	// Final health: everyone running, done joining, full views everywhere.
	healthy := true
	for q := 0; q < cfg.N; q++ {
		sctx, cancel := context.WithTimeout(ctx, time.Second)
		st, err := cl.Node(mid.ProcID(q)).Status(sctx)
		cancel()
		if err != nil || !st.Running || st.Joining {
			healthy = false
			break
		}
		count := 0
		for _, a := range st.Alive {
			if a {
				count++
			}
		}
		if count != cfg.N {
			healthy = false
			break
		}
	}
	rep.Healthy = healthy

	cl.Stop()
	close(drainStop)
	consumers.Wait()

	rep.Sent = sent.Load()
	rep.Confirmed = confirmed.Load()
	rep.Injected = hook.Injected()
	survivors := make([]mid.ProcID, 0, cfg.N)
	for q := 0; q < cfg.N; q++ {
		node := cl.Node(mid.ProcID(q))
		if _, left := node.Left(); left || node.Killed() {
			continue
		}
		survivors = append(survivors, mid.ProcID(q))
	}
	rep.Violations = checker.Check(survivors)
	return rep, nil
}

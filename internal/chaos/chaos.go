// Package chaos soaks a live in-process cluster under a seeded wall-clock
// fault schedule and verifies the paper's two uniform properties
// afterwards: Uniform Ordering (causal order respected at every member)
// and Uniform Atomicity (every decided message processed by all surviving
// members or none). It is the wall-clock counterpart of the simulator's
// scripted fault experiments: the faultrt schedule expands a seed into one
// crash, one healed partition, omission bursts and background
// reordering/duplication, the cluster runs under generated load, and a
// faultrt.Checker audits every member's indication stream at the end.
//
// Determinism contract: the fault plan is a pure function of the seed
// (Report.Schedule renders it), so a same-seed rerun faces the identical
// scripted adversary. The realized injection trace additionally depends on
// the datagram interleaving of the run, which wall-clock concurrency does
// not replay; faultrt's own tests pin trace determinism for a fixed
// consultation sequence.
package chaos

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/core"
	"urcgc/internal/faultrt"
	"urcgc/internal/health"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

// Config parameterizes one soak. The zero value of every field gets a
// usable default.
type Config struct {
	// Seed selects the fault schedule; same seed, same plan.
	Seed int64
	// N is the group size (default 5).
	N int
	// K is the protocol's silence threshold (default 4); the schedule's
	// partition is kept shorter than K subruns so it heals as an omission
	// burst instead of evicting half the group.
	K int
	// R is the recovery-exhaustion threshold (default 8).
	R int
	// Round is the wall-clock round length (default 2ms).
	Round time.Duration
	// Duration is the fault phase: load runs and faults fire (default 2s).
	Duration time.Duration
	// Settle bounds the post-fault convergence wait (default Duration).
	Settle time.Duration
	// SendEvery is each member's submission cadence (default 4*Round).
	SendEvery time.Duration
	// BatchWindow, when positive, enables the runtime's coalescing sender
	// so the soak exercises DataBatch traffic under the fault schedule.
	BatchWindow time.Duration
	// BatchMax caps the per-subrun drain when batching (0 = runtime
	// default when BatchWindow is set).
	BatchMax int
	// SendTimeout abandons a confirm wait (default max(100*Round, 200ms));
	// abandoned sends are legal — the message stays in flight.
	SendTimeout time.Duration
	// CaptureFrames, when positive, arms a frame flight recorder of that
	// many records on every member (internal/capture); the rings ride the
	// Report so a violating run can be dumped and replayed offline.
	CaptureFrames int
	// CaptureBytes bounds each ring's retained frame bytes (0 = default).
	CaptureBytes int
	// Inject, when non-nil, layers an extra scripted adversary onto the
	// seeded schedule — tests use it for targeted faults (a permanent
	// partition, say) the background plan never generates.
	Inject faultrt.Injector
	// Metrics, when non-nil, receives the cluster's and the injector's
	// instruments (faultrt_injected_total{kind} among them).
	Metrics *obs.Registry
	// Lifecycle, when non-nil, enables per-message tracing; stuck-span
	// watchdog lines name the injected fault that plausibly caused the
	// stall.
	Lifecycle *lifecycle.Options
	// Logf, when non-nil, narrates progress.
	Logf func(format string, args ...any)
}

func (c Config) fill() Config {
	if c.N == 0 {
		c.N = 5
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.R == 0 {
		c.R = 8
	}
	if c.Round == 0 {
		c.Round = 2 * time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Settle == 0 {
		c.Settle = c.Duration
	}
	if c.SendEvery == 0 {
		c.SendEvery = 4 * c.Round
	}
	if c.SendTimeout == 0 {
		c.SendTimeout = 100 * c.Round
		if c.SendTimeout < 200*time.Millisecond {
			c.SendTimeout = 200 * time.Millisecond
		}
	}
	return c
}

// Report is the outcome of one soak.
type Report struct {
	// Schedule is the seed-deterministic fault plan the run executed.
	Schedule *faultrt.Schedule
	// Injected counts realized injections per fault kind.
	Injected map[string]int64
	// Sent and Confirmed count submissions and completed confirm waits.
	Sent, Confirmed int64
	// Survivors are the members neither fail-stopped nor self-excluded.
	Survivors []mid.ProcID
	// Killed are the fail-stopped members (the schedule's crash).
	Killed []mid.ProcID
	// Left maps self-excluded members to their protocol-level reason.
	Left map[mid.ProcID]core.LeaveReason
	// Processed counts indications per member.
	Processed map[mid.ProcID]int
	// Converged reports whether the survivors' histories stabilized at the
	// same length inside the settle window.
	Converged bool
	// Violations are the invariant breaches found; empty means clean.
	Violations []faultrt.Violation
	// HealthMonitored reports whether per-node health verdicts were
	// evaluated over a flight recording during the run (Metrics was set).
	HealthMonitored bool
	// HealthDegraded reports whether any member's health verdict went
	// unhealthy while the faults were active — the health layer noticed
	// the adversary.
	HealthDegraded bool
	// DegradedNodes maps each member that went unhealthy to the rules
	// that fired on it.
	DegradedNodes map[mid.ProcID][]string
	// HealthRecovered reports whether every survivor's verdict returned
	// to healthy after the faults cleared.
	HealthRecovered bool
	// Captures holds each member's frame flight recorder when
	// Config.CaptureFrames armed one; DumpCaptures persists them.
	Captures []*capture.Ring
}

// DumpCaptures writes every member's capture ring to dir as
// capture-node<N>.bin (the /capture binary format urcgc-replay ingests),
// returning the written paths. It is a no-op without armed rings.
func (r *Report) DumpCaptures(dir string) ([]string, error) {
	if len(r.Captures) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, ring := range r.Captures {
		if ring == nil {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("capture-node%d.bin", ring.Node()))
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		err = ring.Snapshot().Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return paths, fmt.Errorf("dumping %s: %w", path, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// Ok reports whether the run upheld both uniform properties.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders a human summary.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Schedule.String())
	fmt.Fprintf(&b, "sent=%d confirmed=%d\n", r.Sent, r.Confirmed)
	for _, p := range r.Survivors {
		fmt.Fprintf(&b, "  survivor p%d processed %d\n", p, r.Processed[p])
	}
	for _, p := range r.Killed {
		fmt.Fprintf(&b, "  killed p%d processed %d\n", p, r.Processed[p])
	}
	for p, reason := range r.Left {
		fmt.Fprintf(&b, "  left p%d (%v) processed %d\n", p, reason, r.Processed[p])
	}
	kinds := make([]string, 0, len(r.Injected))
	for k := range r.Injected {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  injected %s: %d\n", k, r.Injected[k])
	}
	if !r.Converged {
		b.WriteString("  WARNING: survivors did not converge inside the settle window\n")
	}
	if r.HealthMonitored {
		degraded := make([]string, 0, len(r.DegradedNodes))
		for p, rules := range r.DegradedNodes {
			degraded = append(degraded, fmt.Sprintf("p%d(%s)", p, strings.Join(rules, "+")))
		}
		sort.Strings(degraded)
		fmt.Fprintf(&b, "  health: degraded=%v [%s] recovered=%v\n",
			r.HealthDegraded, strings.Join(degraded, " "), r.HealthRecovered)
	}
	if r.Ok() {
		b.WriteString("invariants: uniform atomicity and uniform ordering hold\n")
	} else {
		fmt.Fprintf(&b, "invariants: %d VIOLATIONS\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %v\n", v)
		}
	}
	return b.String()
}

// Run executes one soak: build the schedule, start the cluster with the
// fault hook at its transport boundary, generate load through the fault
// phase, let the survivors settle, then audit every history. ctx aborts
// the fault phase early (the audit still runs on what happened).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.fill()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sched := faultrt.NewSchedule(cfg.Seed, cfg.N, cfg.Duration, cfg.Round, cfg.K)
	logf("%s", sched)
	inj := faultrt.Injector(sched.Injector())
	if cfg.Inject != nil {
		inj = faultrt.Multi{inj, cfg.Inject}
	}
	hook := faultrt.NewHook(inj, cfg.Metrics)
	var rings []*capture.Ring
	if cfg.CaptureFrames > 0 {
		rings = make([]*capture.Ring, cfg.N)
		for i := range rings {
			rings[i] = capture.New(capture.Options{
				Node: mid.ProcID(i), N: cfg.N, K: cfg.K, R: cfg.R,
				MaxFrames: cfg.CaptureFrames, MaxBytes: cfg.CaptureBytes,
			})
		}
		// The hook sees every crash verdict first; the mark fences the
		// member's ring so replay knows its silence is death, not loss.
		hook.OnCrash = func(p mid.ProcID, _ time.Duration) {
			if int(p) < len(rings) {
				rings[p].Mark(capture.Crash, faultrt.KindSet(0).With(faultrt.KindCrash))
			}
		}
	}
	cl, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: cfg.N, K: cfg.K, R: cfg.R, BatchMax: cfg.BatchMax},
		RoundDuration: cfg.Round,
		BatchWindow:   cfg.BatchWindow,
		Metrics:       cfg.Metrics,
		Lifecycle:     cfg.Lifecycle,
		Fault:         hook,
		Captures:      rings,
	})
	if err != nil {
		return nil, err
	}
	checker := faultrt.NewChecker()
	cl.Start()

	// Health watch: with a registry present, a flight recording of the
	// cluster's gauges feeds one evaluator per member, so the run can
	// assert the health layer notices the adversary and calms down after.
	var monitor *healthMonitor
	if cfg.Metrics != nil {
		monitor = newHealthMonitor(cfg)
		monitor.start()
	}

	// Consumers: one per member, feeding the indication stream into the
	// checker; after drainStop they empty whatever is still buffered.
	var consumers sync.WaitGroup
	drainStop := make(chan struct{})
	for i := 0; i < cfg.N; i++ {
		node := cl.Node(mid.ProcID(i))
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				select {
				case ind := <-node.Indications():
					checker.Record(node.ID(), &ind.Msg)
				case <-drainStop:
					for {
						select {
						case ind := <-node.Indications():
							checker.Record(node.ID(), &ind.Msg)
						default:
							return
						}
					}
				}
			}
		}()
	}

	// Load: every member submits on a fixed cadence through the fault
	// phase. Sends fail fast on a fail-stopped member and are abandoned
	// after SendTimeout otherwise — both legal under the fault model.
	loadCtx, cancelLoad := context.WithCancel(ctx)
	var sent, confirmed atomic.Int64
	var load sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		node := cl.Node(mid.ProcID(i))
		load.Add(1)
		go func() {
			defer load.Done()
			tick := time.NewTicker(cfg.SendEvery)
			defer tick.Stop()
			for {
				select {
				case <-loadCtx.Done():
					return
				case <-tick.C:
				}
				sctx, cancel := context.WithTimeout(loadCtx, cfg.SendTimeout)
				sent.Add(1)
				if _, err := node.SendCausal(sctx, []byte("chaos")); err == nil {
					confirmed.Add(1)
				}
				cancel()
			}
		}()
	}

	select {
	case <-time.After(cfg.Duration):
	case <-ctx.Done():
	}
	cancelLoad()
	load.Wait()
	logf("fault phase over: sent=%d confirmed=%d; settling", sent.Load(), confirmed.Load())

	// Settle: poll until every survivor's history has the same length and
	// has stopped growing — the protocol has recovered everything the
	// faults delayed — or the settle budget runs out.
	survivors := surviving(cl, cfg.N)
	converged := false
	poll := 20 * cfg.Round
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	deadline := time.Now().Add(cfg.Settle)
	prev := counts(checker, survivors)
	for time.Now().Before(deadline) {
		time.Sleep(poll)
		survivors = surviving(cl, cfg.N)
		cur := counts(checker, survivors)
		if equalAll(cur) && sameCounts(prev, cur) {
			converged = true
			break
		}
		prev = cur
	}

	// Health verdicts are read before Stop (the evaluators watch live
	// gauges); recovery gets its own settle-sized budget since the
	// windows need a stretch of healthy samples to clear.
	var monitored, recovered bool
	var degraded map[mid.ProcID][]string
	if monitor != nil {
		monitored = true
		recovered = monitor.awaitRecovery(surviving(cl, cfg.N), cfg.Settle)
		degraded = monitor.degradedNodes()
		monitor.shutdown()
		logf("health: degraded=%d nodes, survivors recovered=%v", len(degraded), recovered)
	}
	cl.Stop()
	close(drainStop)
	consumers.Wait()

	rep := &Report{
		HealthMonitored: monitored,
		HealthDegraded:  len(degraded) > 0,
		DegradedNodes:   degraded,
		HealthRecovered: recovered,
		Schedule:        sched,
		Injected:        hook.Injected(),
		Sent:            sent.Load(),
		Confirmed:       confirmed.Load(),
		Left:            make(map[mid.ProcID]core.LeaveReason),
		Processed:       make(map[mid.ProcID]int),
		Converged:       converged,
		Captures:        rings,
	}
	for i := 0; i < cfg.N; i++ {
		p := mid.ProcID(i)
		node := cl.Node(p)
		rep.Processed[p] = checker.Recorded(p)
		if reason, left := node.Left(); left {
			rep.Left[p] = reason
			continue
		}
		if node.Killed() {
			rep.Killed = append(rep.Killed, p)
			continue
		}
		rep.Survivors = append(rep.Survivors, p)
	}
	rep.Violations = checker.Check(rep.Survivors)
	return rep, nil
}

// healthMonitor samples the cluster's gauges into a flight recording and
// evaluates every member's health on a poll cadence, accumulating which
// members degraded and why while the adversary was active.
type healthMonitor struct {
	flight *obs.Flight
	evals  []*health.Evaluator
	poll   time.Duration

	mu       sync.Mutex
	degraded map[mid.ProcID]map[string]bool

	stop chan struct{}
	done chan struct{}
}

// newHealthMonitor tunes the sampling interval and rule windows to the
// round length, so a soak at 2ms rounds degrades and recovers inside the
// CI smoke budget while a slower cluster still gets sane windows.
func newHealthMonitor(cfg Config) *healthMonitor {
	interval := 5 * cfg.Round
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	th := health.Thresholds{
		TokenStallSamples: 10, HistoryWindow: 12, HistoryGrowthMin: 32,
		WaitingStuckSamples: 15, FrontierLagWindow: 12, FrontierLagMin: 12,
	}
	m := &healthMonitor{
		flight:   obs.NewFlight(cfg.Metrics, obs.FlightOptions{Interval: interval, Cap: 2048}),
		poll:     2 * interval,
		degraded: make(map[mid.ProcID]map[string]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := 0; i < cfg.N; i++ {
		m.evals = append(m.evals, health.NewEvaluator(m.flight, fmt.Sprint(i), th))
	}
	return m
}

func (m *healthMonitor) start() {
	m.flight.Start()
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.poll)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.evalOnce()
			}
		}
	}()
}

func (m *healthMonitor) evalOnce() {
	for i, e := range m.evals {
		st := e.Eval()
		if st.Healthy {
			continue
		}
		m.mu.Lock()
		set := m.degraded[mid.ProcID(i)]
		if set == nil {
			set = make(map[string]bool)
			m.degraded[mid.ProcID(i)] = set
		}
		for _, r := range st.Reasons {
			set[r.Rule] = true
		}
		m.mu.Unlock()
	}
}

// degradedNodes snapshots who went unhealthy so far, and why.
func (m *healthMonitor) degradedNodes() map[mid.ProcID][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[mid.ProcID][]string, len(m.degraded))
	for p, set := range m.degraded {
		rules := make([]string, 0, len(set))
		for r := range set {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		out[p] = rules
	}
	return out
}

// awaitRecovery polls until every listed member's verdict is healthy
// again, or the budget runs out.
func (m *healthMonitor) awaitRecovery(members []mid.ProcID, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	for {
		healthy := true
		for _, p := range members {
			if !m.evals[p].Eval().Healthy {
				healthy = false
				break
			}
		}
		if healthy {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(m.poll)
	}
}

func (m *healthMonitor) shutdown() {
	close(m.stop)
	<-m.done
	m.flight.Stop()
}

// surviving lists members neither fail-stopped nor self-excluded.
func surviving(cl *rt.Cluster, n int) []mid.ProcID {
	var out []mid.ProcID
	for i := 0; i < n; i++ {
		node := cl.Node(mid.ProcID(i))
		if _, left := node.Left(); left || node.Killed() {
			continue
		}
		out = append(out, mid.ProcID(i))
	}
	return out
}

func counts(c *faultrt.Checker, procs []mid.ProcID) map[mid.ProcID]int {
	out := make(map[mid.ProcID]int, len(procs))
	for _, p := range procs {
		out[p] = c.Recorded(p)
	}
	return out
}

// equalAll reports whether every count is identical.
func equalAll(m map[mid.ProcID]int) bool {
	first, have := 0, false
	for _, v := range m {
		if !have {
			first, have = v, true
			continue
		}
		if v != first {
			return false
		}
	}
	return true
}

func sameCounts(a, b map[mid.ProcID]int) bool {
	if len(a) != len(b) {
		return false
	}
	for p, v := range a {
		if b[p] != v {
			return false
		}
	}
	return true
}

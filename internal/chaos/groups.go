// Multi-group soak: the fault-isolation counterpart of Run. Where Run
// soaks one group under a seeded schedule, RunGroups hosts a sharded
// multi-group cluster (internal/topics), partitions exactly one group by
// dropping that group's frames to and from one member, and watches the
// per-group health verdicts: the partitioned group must degrade on the
// /healthz rules — and recover after the heal — while every co-hosted
// group on the very same nodes, sockets and shard loops stays healthy
// throughout. That isolation is the point of the per-group observability
// layer: a fault confined to one group reads as that group's problem, not
// as whole-node noise.
package chaos

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/health"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/topics"
)

// GroupsConfig parameterizes one multi-group partition soak. The zero
// value of every field gets a usable default.
type GroupsConfig struct {
	// N is the member count (default 3).
	N int
	// Groups is how many groups share the transport (default 3).
	Groups int
	// Shards is the shard-loop count (0 = the runtime's default).
	Shards int
	// Round is the wall-clock round length (default 2ms).
	Round time.Duration
	// Warm bounds the pre-fault wait for an all-healthy verdict with
	// traffic flowing in every group (default 5s).
	Warm time.Duration
	// Fault is how long the partition holds (default 1.5s). The protocol
	// runs with K far above the subruns this can span, so the cut heals
	// as an omission burst — nobody is declared crashed.
	Fault time.Duration
	// Settle bounds the post-heal wait for recovery (default 10s).
	Settle time.Duration
	// SendEvery is each (member, group) submission cadence (default
	// 8*Round).
	SendEvery time.Duration
	// SendTimeout abandons a confirm wait (default max(100*Round, 200ms));
	// abandoned sends are legal — the partitioned group stalls by design.
	SendTimeout time.Duration
	// Target is the group the partition cuts (default 1).
	Target uint32
	// Victim is the member isolated from Target's traffic (default N-1).
	Victim mid.ProcID
	// Metrics receives the cluster's instruments; nil gets a fresh
	// registry (the health monitor needs one either way).
	Metrics *obs.Registry
	// Logf, when non-nil, narrates progress.
	Logf func(format string, args ...any)
}

func (c GroupsConfig) fill() GroupsConfig {
	if c.N == 0 {
		c.N = 3
	}
	if c.Groups == 0 {
		c.Groups = 3
	}
	if c.Round == 0 {
		c.Round = 2 * time.Millisecond
	}
	if c.Warm == 0 {
		c.Warm = 5 * time.Second
	}
	if c.Fault == 0 {
		c.Fault = 1500 * time.Millisecond
	}
	if c.Settle == 0 {
		c.Settle = 10 * time.Second
	}
	if c.SendEvery == 0 {
		c.SendEvery = 8 * c.Round
	}
	if c.SendTimeout == 0 {
		c.SendTimeout = 100 * c.Round
		if c.SendTimeout < 200*time.Millisecond {
			c.SendTimeout = 200 * time.Millisecond
		}
	}
	if c.Target == 0 {
		c.Target = 1
	}
	if c.Victim == 0 {
		c.Victim = mid.ProcID(c.N - 1)
	}
	if c.Metrics == nil {
		c.Metrics = obs.New()
	}
	return c
}

// GroupsReport is the outcome of one multi-group partition soak.
type GroupsReport struct {
	// Target is the partitioned group, Victim the member it lost.
	Target uint32     `json:"target"`
	Victim mid.ProcID `json:"victim"`
	// HealthyBeforeFault reports whether every node's every group reached
	// a healthy verdict, with traffic confirmed in every group, before the
	// cut.
	HealthyBeforeFault bool `json:"healthy_before_fault"`
	// Degraded maps each group that went unhealthy during the fault or
	// recovery window to the rules that fired on it (any node).
	Degraded map[uint32][]string `json:"degraded"`
	// Recovered reports whether every node's every group verdict returned
	// to healthy inside the settle budget after the heal.
	Recovered bool `json:"recovered"`
	// Sent and Confirmed count submissions and completed confirm waits;
	// ConfirmedPerGroup splits the latter by group.
	Sent              int64   `json:"sent"`
	Confirmed         int64   `json:"confirmed"`
	ConfirmedPerGroup []int64 `json:"confirmed_per_group"`
}

// OnlyTargetDegraded reports the soak's acceptance property: the
// partitioned group degraded and no other group did.
func (r *GroupsReport) OnlyTargetDegraded() bool {
	if len(r.Degraded) != 1 {
		return false
	}
	_, ok := r.Degraded[r.Target]
	return ok
}

// String renders a human summary.
func (r *GroupsReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "group partition soak: target group %d, victim p%d\n", r.Target, r.Victim)
	fmt.Fprintf(&b, "  sent=%d confirmed=%d per-group=%v\n", r.Sent, r.Confirmed, r.ConfirmedPerGroup)
	groups := make([]uint32, 0, len(r.Degraded))
	for g := range r.Degraded {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, g := range groups {
		fmt.Fprintf(&b, "  degraded group %d: %s\n", g, strings.Join(r.Degraded[g], "+"))
	}
	fmt.Fprintf(&b, "  healthy-before=%v only-target=%v recovered=%v\n",
		r.HealthyBeforeFault, r.OnlyTargetDegraded(), r.Recovered)
	return b.String()
}

// groupsMonitor evaluates every node's per-group verdicts on a poll
// cadence and accumulates which groups degraded and why.
type groupsMonitor struct {
	evals []*health.MultiEvaluator
	poll  time.Duration

	mu       sync.Mutex
	tracking bool
	degraded map[uint32]map[string]bool
}

func (m *groupsMonitor) evalOnce() (allHealthy bool) {
	allHealthy = true
	for _, e := range m.evals {
		st := e.Eval()
		if st.Healthy {
			continue
		}
		allHealthy = false
		m.mu.Lock()
		if m.tracking {
			for _, r := range st.Reasons {
				set := m.degraded[uint32(r.Group)]
				if set == nil {
					set = make(map[string]bool)
					m.degraded[uint32(r.Group)] = set
				}
				set[r.Rule] = true
			}
		}
		m.mu.Unlock()
	}
	return allHealthy
}

// track turns on degradation accumulation; the warm-up phase is excluded
// so a slow start cannot masquerade as fault fallout.
func (m *groupsMonitor) track() {
	m.mu.Lock()
	m.tracking = true
	m.mu.Unlock()
}

func (m *groupsMonitor) snapshot() map[uint32][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint32][]string, len(m.degraded))
	for g, set := range m.degraded {
		rules := make([]string, 0, len(set))
		for r := range set {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		out[g] = rules
	}
	return out
}

// await polls until every node's every group is healthy (and cond, when
// non-nil, also holds) or the budget runs out.
func (m *groupsMonitor) await(ctx context.Context, budget time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(budget)
	for {
		if m.evalOnce() && (cond == nil || cond()) {
			return true
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return false
		}
		time.Sleep(m.poll)
	}
}

// RunGroups executes one multi-group partition soak: boot the sharded
// cluster, drive load into every group, wait for an all-healthy baseline,
// cut one member out of one group, hold the cut, heal, and report which
// groups' health verdicts noticed.
func RunGroups(ctx context.Context, cfg GroupsConfig) (*GroupsReport, error) {
	cfg = cfg.fill()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// The cut: an atomic flag consulted by the transport's per-frame drop
	// hook. Only the target group's frames touching the victim are lost;
	// every other group's traffic — on the same transport — is untouched.
	var cut atomic.Bool
	tcfg := topics.Config{
		// K far above the subruns the fault window can span, so neither
		// side declares the other crashed; SelfExclusion off so nobody
		// leaves while its token is cut off.
		Config: core.Config{
			N: cfg.N, K: 600, R: 1202, SelfExclusion: false,
			BatchMax: core.DefaultBatchMax,
		},
		Groups:        cfg.Groups,
		Shards:        cfg.Shards,
		RoundDuration: cfg.Round,
		Metrics:       cfg.Metrics,
		DropFrame: func(group uint32, src, dst mid.ProcID) bool {
			return cut.Load() && group == cfg.Target &&
				(src == cfg.Victim || dst == cfg.Victim)
		},
		Logf: logf,
	}
	cl, err := topics.NewMultiCluster(tcfg)
	if err != nil {
		return nil, err
	}
	cl.Start()
	defer cl.Stop()

	// Per-group health: one flight recording of the shared registry feeds
	// a MultiEvaluator per node, the same wiring urcgc-node serves under
	// -groups.
	interval := 5 * cfg.Round
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	flight := obs.NewFlight(cfg.Metrics, obs.FlightOptions{Interval: interval, Cap: 4096})
	flight.Start()
	defer flight.Stop()
	th := health.Thresholds{
		TokenStallSamples: 10, HistoryWindow: 12, HistoryGrowthMin: 32,
		WaitingStuckSamples: 15, FrontierLagWindow: 12, FrontierLagMin: 12,
	}
	mon := &groupsMonitor{poll: 2 * interval, degraded: make(map[uint32]map[string]bool)}
	for i := 0; i < cfg.N; i++ {
		mon.evals = append(mon.evals, health.NewMultiEvaluator(flight, strconv.Itoa(i), cfg.Groups, th))
	}

	// Load: every (member, group) pair submits on a fixed cadence for the
	// whole run. Sends into the cut group stall by design; the timeout
	// abandons them (legal — the message stays in flight).
	loadCtx, cancelLoad := context.WithCancel(ctx)
	defer cancelLoad()
	var sent, confirmed atomic.Int64
	perGroup := make([]atomic.Int64, cfg.Groups)
	var load sync.WaitGroup
	for i := 0; i < cfg.N; i++ {
		for g := 0; g < cfg.Groups; g++ {
			node, group := cl.Node(mid.ProcID(i)), uint32(g)
			load.Add(1)
			go func() {
				defer load.Done()
				tick := time.NewTicker(cfg.SendEvery)
				defer tick.Stop()
				for {
					select {
					case <-loadCtx.Done():
						return
					case <-tick.C:
					}
					sctx, cancel := context.WithTimeout(loadCtx, cfg.SendTimeout)
					sent.Add(1)
					if _, err := node.Send(sctx, group, []byte("chaos"), nil); err == nil {
						confirmed.Add(1)
						perGroup[group].Add(1)
					}
					cancel()
				}
			}()
		}
	}
	defer load.Wait()

	rep := &GroupsReport{Target: cfg.Target, Victim: cfg.Victim}

	// Baseline: all verdicts healthy with confirmed traffic in every
	// group, so the degradation to come is attributable to the cut.
	allMoving := func() bool {
		for g := range perGroup {
			if perGroup[g].Load() == 0 {
				return false
			}
		}
		return true
	}
	rep.HealthyBeforeFault = mon.await(ctx, cfg.Warm, allMoving)
	logf("baseline healthy=%v confirmed=%d; cutting group %d from p%d for %v",
		rep.HealthyBeforeFault, confirmed.Load(), cfg.Target, cfg.Victim, cfg.Fault)

	// Fault: hold the cut, polling verdicts throughout.
	mon.track()
	cut.Store(true)
	faultDeadline := time.Now().Add(cfg.Fault)
	for time.Now().Before(faultDeadline) && ctx.Err() == nil {
		mon.evalOnce()
		time.Sleep(mon.poll)
	}
	cut.Store(false)
	logf("healed; degraded so far: %v", mon.snapshot())

	// Recovery: keep accumulating (a late verdict still counts against
	// isolation) until everything is healthy again or the budget ends.
	rep.Recovered = mon.await(ctx, cfg.Settle, nil)

	cancelLoad()
	load.Wait()
	rep.Degraded = mon.snapshot()
	rep.Sent, rep.Confirmed = sent.Load(), confirmed.Load()
	rep.ConfirmedPerGroup = make([]int64, cfg.Groups)
	for g := range perGroup {
		rep.ConfirmedPerGroup[g] = perGroup[g].Load()
	}
	return rep, nil
}

// Package group implements the local group view of the urcgc protocol and
// the attempts-counter bookkeeping coordinators use to declare crashes.
//
// Knowledge about the group is only ever acquired through communication: a
// coordinator that fails to hear from a process for K consecutive non-crashed
// coordinators' subruns declares it crashed and removes it from the group;
// the attempts counters ride inside the circulated decision, so successive
// coordinators resume each other's counting. A process that discovers it has
// been declared crashed commits suicide; one that fails to hear K
// consecutive coordinators leaves autonomously.
package group

import (
	"fmt"

	"urcgc/internal/mid"
)

// View is a process's local knowledge of the group composition. The zero
// value is unusable; construct with NewView.
type View struct {
	alive []bool
	count int
}

// NewView returns a view in which all n processes are alive.
func NewView(n int) *View {
	v := &View{alive: make([]bool, n), count: n}
	for i := range v.alive {
		v.alive[i] = true
	}
	return v
}

// N returns the group cardinality (live and crashed members).
func (v *View) N() int { return len(v.alive) }

// Alive reports whether process i is believed alive.
func (v *View) Alive(i mid.ProcID) bool {
	return i >= 0 && int(i) < len(v.alive) && v.alive[i]
}

// AliveCount returns the number of processes believed alive.
func (v *View) AliveCount() int { return v.count }

// MarkCrashed removes process i from the view. Removing an already-removed
// process is a no-op. It returns true if the view changed.
func (v *View) MarkCrashed(i mid.ProcID) bool {
	if !v.Alive(i) {
		return false
	}
	v.alive[i] = false
	v.count--
	return true
}

// AliveSet returns the identifiers of the processes believed alive, in
// ascending order.
func (v *View) AliveSet() []mid.ProcID {
	out := make([]mid.ProcID, 0, v.count)
	for i, a := range v.alive {
		if a {
			out = append(out, mid.ProcID(i))
		}
	}
	return out
}

// AliveMask returns a copy of the alive flags, indexed by ProcID. This is
// the representation carried inside decisions.
func (v *View) AliveMask() []bool {
	return append([]bool(nil), v.alive...)
}

// MarkAlive re-admits process i into the view — the coordinator-side half
// of a join decision. Re-admitting an already-alive process is a no-op. It
// returns true if the view changed.
func (v *View) MarkAlive(i mid.ProcID) bool {
	if i < 0 || int(i) >= len(v.alive) || v.alive[i] {
		return false
	}
	v.alive[i] = true
	v.count++
	return true
}

// ApplyMask intersects the view with a mask received in a decision: any
// process the decision declares crashed is removed locally. Processes the
// decision believes alive but the local view has removed stay removed —
// local knowledge of a crash is never retracted (crashes are permanent under
// fail-stop). It returns the processes newly removed.
func (v *View) ApplyMask(mask []bool) []mid.ProcID {
	var removed []mid.ProcID
	for i := range v.alive {
		if i < len(mask) && !mask[i] && v.alive[i] {
			v.alive[i] = false
			v.count--
			removed = append(removed, mid.ProcID(i))
		}
	}
	return removed
}

// Adopt replaces the view with a decision's alive mask, in both directions:
// members the decision declares crashed are removed AND members it admits
// (a joiner entering through decision circulation) are restored. The
// decision is authoritative because callers gate on subrun ordering — a
// stale decision never reaches Adopt — and because a truly crashed member
// that was wrongly resurrected is re-declared within K subruns by the same
// silence counting that declared it the first time. It returns the members
// removed and the members added.
func (v *View) Adopt(mask []bool) (removed, added []mid.ProcID) {
	for i := range v.alive {
		if i >= len(mask) {
			break
		}
		switch {
		case !mask[i] && v.alive[i]:
			v.alive[i] = false
			v.count--
			removed = append(removed, mid.ProcID(i))
		case mask[i] && !v.alive[i]:
			v.alive[i] = true
			v.count++
			added = append(added, mid.ProcID(i))
		}
	}
	return removed, added
}

// Equal reports whether two views agree on every member.
func (v *View) Equal(o *View) bool {
	if len(v.alive) != len(o.alive) {
		return false
	}
	for i := range v.alive {
		if v.alive[i] != o.alive[i] {
			return false
		}
	}
	return true
}

// String renders the view as e.g. "{0,1,3}/4".
func (v *View) String() string {
	s := "{"
	first := true
	for i, a := range v.alive {
		if !a {
			continue
		}
		if !first {
			s += ","
		}
		s += fmt.Sprint(i)
		first = false
	}
	return fmt.Sprintf("%s}/%d", s, len(v.alive))
}

// Attempts tracks, per process, how many consecutive subruns the process has
// failed to communicate with a (non-crashed) coordinator. The counters are
// carried inside decisions so each coordinator resumes its predecessor's
// count; when a counter reaches K the process is declared crashed.
type Attempts struct {
	counts []uint8
	k      int
}

// NewAttempts returns zeroed counters for n processes with crash threshold k.
func NewAttempts(n, k int) *Attempts {
	return &Attempts{counts: make([]uint8, n), k: k}
}

// K returns the crash-declaration threshold.
func (a *Attempts) K() int { return a.k }

// Counts returns a copy of the counters, for embedding into a decision.
func (a *Attempts) Counts() []uint8 {
	return append([]uint8(nil), a.counts...)
}

// Load replaces the counters with those from a circulated decision. Short
// input leaves the tail untouched.
func (a *Attempts) Load(counts []uint8) {
	copy(a.counts, counts)
}

// Observe updates the counters for one subrun: heard[i] true means process i
// communicated with the coordinator this subrun (counter resets), false
// means it stayed silent (counter increments). Processes already declared
// crashed in view are skipped. It returns the processes whose counter
// reached K this subrun — the newly declared crashes.
func (a *Attempts) Observe(heard []bool, view *View) []mid.ProcID {
	var crashed []mid.ProcID
	for i := range a.counts {
		p := mid.ProcID(i)
		if !view.Alive(p) {
			continue
		}
		if i < len(heard) && heard[i] {
			a.counts[i] = 0
			continue
		}
		if int(a.counts[i]) < a.k {
			a.counts[i]++
		}
		if int(a.counts[i]) >= a.k {
			crashed = append(crashed, p)
		}
	}
	return crashed
}

// Resilience returns the maximum number of per-subrun failures t = (n-1)/2
// under which the reliable circulation of decisions is guaranteed
// (Section 4 of the paper).
func Resilience(n int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) / 2
}

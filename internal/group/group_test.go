package group

import (
	"testing"

	"urcgc/internal/mid"
)

func TestNewViewAllAlive(t *testing.T) {
	v := NewView(4)
	if v.AliveCount() != 4 || v.N() != 4 {
		t.Errorf("AliveCount=%d N=%d", v.AliveCount(), v.N())
	}
	for i := 0; i < 4; i++ {
		if !v.Alive(mid.ProcID(i)) {
			t.Errorf("process %d should start alive", i)
		}
	}
	if v.Alive(-1) || v.Alive(4) {
		t.Error("out-of-range processes are not alive")
	}
}

func TestMarkCrashed(t *testing.T) {
	v := NewView(3)
	if !v.MarkCrashed(1) {
		t.Error("first MarkCrashed should change the view")
	}
	if v.MarkCrashed(1) {
		t.Error("second MarkCrashed should be a no-op")
	}
	if v.Alive(1) || v.AliveCount() != 2 {
		t.Error("process 1 should be removed")
	}
	set := v.AliveSet()
	if len(set) != 2 || set[0] != 0 || set[1] != 2 {
		t.Errorf("AliveSet = %v", set)
	}
	if got := v.String(); got != "{0,2}/3" {
		t.Errorf("String = %q", got)
	}
}

func TestApplyMask(t *testing.T) {
	v := NewView(4)
	v.MarkCrashed(3) // local knowledge
	removed := v.ApplyMask([]bool{true, false, true, true})
	if len(removed) != 1 || removed[0] != 1 {
		t.Errorf("removed = %v", removed)
	}
	// Mask believing 3 alive must not resurrect it.
	if v.Alive(3) {
		t.Error("crashes are permanent; mask must not resurrect")
	}
	if v.AliveCount() != 2 {
		t.Errorf("AliveCount = %d", v.AliveCount())
	}
	// Idempotent.
	if rem := v.ApplyMask([]bool{true, false, true, true}); rem != nil {
		t.Errorf("second apply removed %v", rem)
	}
}

func TestViewEqual(t *testing.T) {
	a, b := NewView(3), NewView(3)
	if !a.Equal(b) {
		t.Error("fresh views equal")
	}
	a.MarkCrashed(0)
	if a.Equal(b) {
		t.Error("diverged views unequal")
	}
	b.MarkCrashed(0)
	if !a.Equal(b) {
		t.Error("re-converged views equal")
	}
	if a.Equal(NewView(4)) {
		t.Error("different sizes unequal")
	}
}

func TestAttemptsObserve(t *testing.T) {
	v := NewView(3)
	a := NewAttempts(3, 2)
	// Subrun 1: process 2 silent.
	crashed := a.Observe([]bool{true, true, false}, v)
	if crashed != nil {
		t.Errorf("after 1 silent subrun, crashed = %v", crashed)
	}
	// Subrun 2: still silent -> reaches K=2.
	crashed = a.Observe([]bool{true, true, false}, v)
	if len(crashed) != 1 || crashed[0] != 2 {
		t.Errorf("crashed = %v, want [2]", crashed)
	}
}

func TestAttemptsResetOnContact(t *testing.T) {
	v := NewView(2)
	a := NewAttempts(2, 3)
	a.Observe([]bool{true, false}, v)
	a.Observe([]bool{true, false}, v)
	a.Observe([]bool{true, true}, v) // contact resets
	a.Observe([]bool{true, false}, v)
	crashed := a.Observe([]bool{true, false}, v)
	if crashed != nil {
		t.Errorf("counter should have reset; crashed = %v", crashed)
	}
	if c := a.Counts(); c[1] != 2 {
		t.Errorf("counts = %v", c)
	}
}

func TestAttemptsSkipsCrashed(t *testing.T) {
	v := NewView(2)
	v.MarkCrashed(1)
	a := NewAttempts(2, 1)
	crashed := a.Observe([]bool{true, false}, v)
	if crashed != nil {
		t.Errorf("already-crashed process must not be re-declared: %v", crashed)
	}
}

func TestAttemptsLoadCirculation(t *testing.T) {
	v := NewView(3)
	a1 := NewAttempts(3, 3)
	a1.Observe([]bool{true, true, false}, v)
	a1.Observe([]bool{true, true, false}, v)
	// Next coordinator resumes from the circulated counters.
	a2 := NewAttempts(3, 3)
	a2.Load(a1.Counts())
	crashed := a2.Observe([]bool{true, true, false}, v)
	if len(crashed) != 1 || crashed[0] != 2 {
		t.Errorf("circulated counters should reach K: crashed = %v", crashed)
	}
}

func TestResilience(t *testing.T) {
	cases := map[int]int{1: 0, 2: 0, 3: 1, 10: 4, 40: 19, 0: 0}
	for n, want := range cases {
		if got := Resilience(n); got != want {
			t.Errorf("Resilience(%d) = %d, want %d", n, got, want)
		}
	}
}

package groups

import (
	"fmt"
	"testing"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

// counterService is a deterministic replicated state machine: each request
// adds its input's first byte to a per-server accumulator and answers with
// the running total. Identical causal order => identical answers.
func newCounterService(t *testing.T, n int, seed int64, inj fault.Injector) (*Service, *core.Cluster) {
	t.Helper()
	c, err := core.NewCluster(core.ClusterConfig{
		Config:   core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
		Seed:     seed,
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]int, n)
	svc, err := NewService(c, func(server mid.ProcID, req Request) []byte {
		if len(req.Input) > 0 {
			totals[server] += int(req.Input[0])
		}
		return []byte(fmt.Sprintf("total=%d", totals[server]))
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc, c
}

func TestReplicatedCallsAgree(t *testing.T) {
	svc, c := newCounterService(t, 5, 1, nil)
	calls := 6
	_, err := c.Run(core.RunOptions{
		MaxRounds: 300, MinRounds: 2 * 2 * calls,
		OnRound: svc.OnRound(func(round int) {
			if round%2 != 0 || round/2 >= calls {
				return
			}
			k := uint32(round / 2)
			agent := mid.ProcID(int(k) % c.N())
			if _, err := svc.Call(agent, Request{Client: 9, CallID: k, Input: []byte{byte(k + 1)}}, MajorityVote(c.N())); err != nil {
				panic(err)
			}
		}),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every call completed by majority with a consistent output.
	for k := uint32(0); k < uint32(calls); k++ {
		out, done := svc.Done(9, k)
		if !done {
			t.Fatalf("call %d never completed: replies %v", k, svc.Replies(9, k))
		}
		if len(out) == 0 {
			t.Fatalf("call %d empty output", k)
		}
		// All gathered replies for one call agree (state machine property).
		for _, r := range svc.Replies(9, k) {
			if string(r.Output) != string(out) {
				t.Fatalf("call %d: server %d answered %q, vote was %q", k, r.Server, r.Output, out)
			}
		}
	}
}

func TestCallsSurviveServerCrash(t *testing.T) {
	svc, c := newCounterService(t, 5, 2, fault.Crash{Proc: 4, At: sim.StartOfSubrun(5)})
	calls := 8
	_, err := c.Run(core.RunOptions{
		MaxRounds: 400, MinRounds: 2 * 2 * calls,
		OnRound: svc.OnRound(func(round int) {
			if round%2 != 0 || round/2 >= calls {
				return
			}
			k := uint32(round / 2)
			agent := mid.ProcID(int(k) % 4) // avoid the doomed server as agent
			if _, err := svc.Call(agent, Request{Client: 1, CallID: k, Input: []byte{1}}, MajorityVote(c.N())); err != nil {
				panic(err)
			}
		}),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(0); k < uint32(calls); k++ {
		if _, done := svc.Done(1, k); !done {
			t.Fatalf("call %d did not survive the crash; replies %v", k, svc.Replies(1, k))
		}
	}
}

func TestVotingRules(t *testing.T) {
	mk := func(outs ...string) []Reply {
		rs := make([]Reply, len(outs))
		for i, o := range outs {
			rs[i] = Reply{Server: mid.ProcID(i), Output: []byte(o)}
		}
		return rs
	}
	maj := MajorityVote(5)
	if maj(mk("a", "a")) {
		t.Error("2 of 5 is not a majority")
	}
	if !maj(mk("a", "a", "a")) {
		t.Error("3 of 5 agreeing is a majority")
	}
	if maj(mk("a", "b", "a")) {
		t.Error("2 agreeing of 3 replies is not > n/2")
	}
	first := FirstReply()
	if first(nil) {
		t.Error("no replies yet")
	}
	if !first(mk("x")) {
		t.Error("one reply completes FirstReply")
	}
}

func TestDuplicateCallRejected(t *testing.T) {
	svc, _ := newCounterService(t, 3, 3, nil)
	if _, err := svc.Call(0, Request{Client: 1, CallID: 7, Input: []byte{1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Call(1, Request{Client: 1, CallID: 7, Input: []byte{1}}, nil); err == nil {
		t.Error("duplicate call must be rejected")
	}
}

func TestNilHandlerRejected(t *testing.T) {
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{N: 2, K: 2, R: 5, SelfExclusion: true},
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewService(c, nil); err == nil {
		t.Error("nil handler must be rejected")
	}
}

func TestRequestCodec(t *testing.T) {
	r := Request{Client: 0xdeadbeef, CallID: 42, Input: []byte("payload")}
	got, err := decodeReq(encodeReq(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Client != r.Client || got.CallID != r.CallID || string(got.Input) != "payload" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := decodeReq([]byte{1, 2}); err == nil {
		t.Error("short payload must fail")
	}
	empty := Request{Client: 1, CallID: 2}
	got, err = decodeReq(encodeReq(empty))
	if err != nil || len(got.Input) != 0 {
		t.Errorf("empty input round trip: %+v, %v", got, err)
	}
}

// Package groups implements the client-server group structure of Section 3:
// a set of server processes runs the urcgc protocol among themselves, while
// external clients submit requests to any server and collect replies. The
// paper notes the algorithm "may apply to client server groups, through a
// proper management of the reply messages" — this package is that
// management: a request is injected into the servers' causal order exactly
// once, every server processes it (uniform atomicity makes the service
// state machine-replicated), and the replies are gathered under an
// application voting rule (the v of the t.data tuple, unused inside urcgc
// itself).
package groups

import (
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// Request is a client call: opaque input, a client-chosen ID for matching
// replies, and the identity of the server contacted (the "agent").
type Request struct {
	Client uint32
	CallID uint32
	Input  []byte
}

// Reply is one server's answer to a processed request.
type Reply struct {
	Server mid.ProcID
	Client uint32
	CallID uint32
	Output []byte
}

// Handler is the replicated service: deterministic, applied at every server
// in the same causal order, so every server computes the same outputs.
type Handler func(server mid.ProcID, req Request) []byte

// Voting decides when a call is complete given the replies gathered so far
// (the v function of the paper's transport tuple). Return true to finish.
type Voting func(replies []Reply) bool

// MajorityVote completes a call once more than half the servers replied and
// agree; it is the classic voting rule for replicated services.
func MajorityVote(n int) Voting {
	return func(replies []Reply) bool {
		if len(replies) <= n/2 {
			return false
		}
		counts := map[string]int{}
		for _, r := range replies {
			counts[string(r.Output)]++
			if counts[string(r.Output)] > n/2 {
				return true
			}
		}
		return false
	}
}

// FirstReply completes a call on the first reply (the agent's own).
func FirstReply() Voting {
	return func(replies []Reply) bool { return len(replies) > 0 }
}

// Service runs a replicated service on a simulated urcgc server group.
type Service struct {
	C       *core.Cluster
	handler Handler

	calls   map[callKey]*call
	replies []Reply
	applied []int // per server, requests applied (for tests)
}

type callKey struct {
	client, callID uint32
}

type call struct {
	req     Request
	voting  Voting
	replies []Reply
	done    bool
	output  []byte
}

// NewService wraps a cluster of servers with a deterministic handler. The
// cluster must be a plain peer group (every member a server).
func NewService(c *core.Cluster, h Handler) (*Service, error) {
	if h == nil {
		return nil, fmt.Errorf("groups: nil handler")
	}
	s := &Service{
		C:       c,
		handler: h,
		calls:   map[callKey]*call{},
		applied: make([]int, c.N()),
	}
	return s, nil
}

// encodeReq packs a request into a urcgc payload: client(4) callID(4) input.
func encodeReq(r Request) []byte {
	buf := make([]byte, 8+len(r.Input))
	buf[0] = byte(r.Client >> 24)
	buf[1] = byte(r.Client >> 16)
	buf[2] = byte(r.Client >> 8)
	buf[3] = byte(r.Client)
	buf[4] = byte(r.CallID >> 24)
	buf[5] = byte(r.CallID >> 16)
	buf[6] = byte(r.CallID >> 8)
	buf[7] = byte(r.CallID)
	copy(buf[8:], r.Input)
	return buf
}

func decodeReq(b []byte) (Request, error) {
	if len(b) < 8 {
		return Request{}, fmt.Errorf("groups: short request payload")
	}
	return Request{
		Client: uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]),
		CallID: uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
		Input:  append([]byte(nil), b[8:]...),
	}, nil
}

// Call submits a request through the given agent server. The request enters
// the servers' causal order; as servers process it (OnProcessed must be
// wired, see Bind), each produces a Reply, and the call completes when the
// voting rule is satisfied. Returns the message ID carrying the request.
func (s *Service) Call(agent mid.ProcID, req Request, v Voting) (mid.MID, error) {
	if v == nil {
		v = FirstReply()
	}
	key := callKey{req.Client, req.CallID}
	if _, dup := s.calls[key]; dup {
		return mid.MID{}, fmt.Errorf("groups: duplicate call %d/%d", req.Client, req.CallID)
	}
	id, err := s.C.Submit(agent, encodeReq(req), nil)
	if err != nil {
		return mid.MID{}, err
	}
	s.calls[key] = &call{req: req, voting: v}
	return id, nil
}

// Bind installs the processing hook on every server of the cluster. Must be
// called before the cluster runs. It composes with any hooks the harness
// already installed via the cluster's callbacks — Bind uses the cluster's
// ProcessedLog growth, polled from OnRound, to stay composable.
//
// Wire it as: opts.OnRound = service.OnRound(opts.OnRound).
func (s *Service) OnRound(inner func(int)) func(int) {
	return func(round int) {
		if inner != nil {
			inner(round)
		}
		for i := 0; i < s.C.N(); i++ {
			server := mid.ProcID(i)
			log := s.C.ProcessedLog[i]
			for ; s.applied[i] < len(log); s.applied[i]++ {
				s.apply(server, log[s.applied[i]])
			}
		}
	}
}

func (s *Service) apply(server mid.ProcID, id mid.MID) {
	msg := s.lookupPayload(server, id)
	if msg == nil {
		return
	}
	req, err := decodeReq(msg.Payload)
	if err != nil {
		return
	}
	out := s.handler(server, req)
	rep := Reply{Server: server, Client: req.Client, CallID: req.CallID, Output: out}
	s.replies = append(s.replies, rep)
	if c, ok := s.calls[callKey{req.Client, req.CallID}]; ok && !c.done {
		c.replies = append(c.replies, rep)
		if c.voting(c.replies) {
			c.done = true
			c.output = out
		}
	}
}

// lookupPayload fetches the processed message from the server's history.
// Stability may already have purged it; in that case the reply from this
// server is skipped (enough servers reply before stability catches up).
func (s *Service) lookupPayload(server mid.ProcID, id mid.MID) *causal.Message {
	msg, _ := s.C.Proc(server).History().Get(id.Proc, id.Seq)
	return msg
}

// Done reports whether a call completed and, if so, its voted output.
func (s *Service) Done(client, callID uint32) ([]byte, bool) {
	c, ok := s.calls[callKey{client, callID}]
	if !ok || !c.done {
		return nil, false
	}
	return c.output, true
}

// Replies returns all replies a call has gathered so far.
func (s *Service) Replies(client, callID uint32) []Reply {
	c, ok := s.calls[callKey{client, callID}]
	if !ok {
		return nil
	}
	return append([]Reply(nil), c.replies...)
}

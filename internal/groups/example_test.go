package groups_test

import (
	"fmt"

	"urcgc/internal/core"
	"urcgc/internal/groups"
	"urcgc/internal/mid"
)

// A replicated counter: the client calls through server 0, every server
// applies the increment in the same causal position, and the call completes
// once a majority agrees on the answer.
func ExampleService() {
	cluster, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{N: 3, K: 2, R: 5, SelfExclusion: true},
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	counters := make([]int, 3)
	svc, err := groups.NewService(cluster, func(server mid.ProcID, req groups.Request) []byte {
		counters[server] += int(req.Input[0])
		return []byte(fmt.Sprintf("%d", counters[server]))
	})
	if err != nil {
		panic(err)
	}
	_, err = cluster.Run(core.RunOptions{
		MaxRounds: 60,
		MinRounds: 8,
		OnRound: svc.OnRound(func(round int) {
			if round == 0 {
				svc.Call(0, groups.Request{Client: 7, CallID: 1, Input: []byte{5}}, groups.MajorityVote(3))
			}
		}),
		StopWhenQuiescent: true,
		DrainSubruns:      2,
	})
	if err != nil {
		panic(err)
	}
	out, done := svc.Done(7, 1)
	fmt.Printf("done=%v output=%s\n", done, out)
	// Output: done=true output=5
}

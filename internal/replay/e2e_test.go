package replay

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/chaos"
	"urcgc/internal/faultrt"
	"urcgc/internal/mid"
)

// verdictKey canonicalizes one violation for cross-run comparison.
func verdictKey(invariant string, node int32, m string) string {
	return invariant + "|" + string(rune('0'+node)) + "|" + m
}

// TestEndToEndPartitionForensics is the acceptance path of the capture
// subsystem, end to end: a seeded chaos soak with an extra permanent
// partition isolates one member mid-run, so the live checker reports
// uniform-atomicity violations; the run dumps every member's capture to
// disk, the dumps are decoded back, and the offline replay must reproduce
// the live verdict exactly — and blame a partition-destroyed frame.
func TestEndToEndPartitionForensics(t *testing.T) {
	const (
		seed  = 11
		n     = 5
		k     = 4
		round = 2 * time.Millisecond
		dur   = 1200 * time.Millisecond
	)
	// Isolate a member the background schedule does not crash, from
	// mid-run to forever: its frontier freezes while the rest advance,
	// which survivors' audits must flag in both directions.
	sched := faultrt.NewSchedule(seed, n, dur, round, k)
	victim := (sched.CrashProc + 1) % n
	cut := faultrt.Partition{
		From:  dur / 3,
		To:    time.Hour,
		SideA: map[mid.ProcID]bool{victim: true},
	}

	rep, err := chaos.Run(context.Background(), chaos.Config{
		Seed: seed, N: n, K: k, Round: round,
		Duration:      dur,
		Settle:        300 * time.Millisecond,
		CaptureFrames: 1 << 15,
		Inject:        cut,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatalf("permanent partition of p%d produced no live violations", victim)
	}
	t.Logf("live verdict: %d violations, survivors %v", len(rep.Violations), rep.Survivors)

	// Dump the evidence and read it back through the decoder — the test
	// exercises the same artifact path an operator uses.
	dir := t.TempDir()
	paths, err := rep.DumpCaptures(dir)
	if err != nil || len(paths) != n {
		t.Fatalf("dumped %d captures (err %v), want %d", len(paths), err, n)
	}
	var dumps []*capture.Dump
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := capture.Decode(f)
		f.Close()
		if err != nil {
			t.Fatalf("decoding %s: %v", filepath.Base(p), err)
		}
		dumps = append(dumps, d)
	}

	res, err := Run(dumps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean || len(res.Groups) != 1 {
		t.Fatalf("offline replay missed the breach: %+v", res)
	}
	g := res.Groups[0]
	t.Logf("replay verdict: %d findings, survivors %v, fed %d (+%d self)",
		len(g.Findings), g.Survivors, g.Fed, g.SelfFed)

	// The offline verdict must equal the live one: same survivors, same
	// violation set.
	liveSurv := make([]int32, 0, len(rep.Survivors))
	for _, p := range rep.Survivors {
		liveSurv = append(liveSurv, int32(p))
	}
	sort.Slice(liveSurv, func(i, j int) bool { return liveSurv[i] < liveSurv[j] })
	if len(liveSurv) != len(g.Survivors) {
		t.Fatalf("survivors: live %v, replay %v", liveSurv, g.Survivors)
	}
	for i := range liveSurv {
		if liveSurv[i] != g.Survivors[i] {
			t.Fatalf("survivors: live %v, replay %v", liveSurv, g.Survivors)
		}
	}
	live := map[string]bool{}
	for _, v := range rep.Violations {
		live[verdictKey(v.Invariant, int32(v.Node), v.Msg.String())] = true
	}
	offline := map[string]bool{}
	for _, f := range g.Findings {
		offline[verdictKey(f.Invariant, f.Node, f.MID)] = true
	}
	for key := range live {
		if !offline[key] {
			t.Errorf("live violation not reproduced offline: %s", key)
		}
	}
	for key := range offline {
		if !live[key] {
			t.Errorf("replay invented a violation the live run never saw: %s", key)
		}
	}

	// Forensics: the replay must name a blocking frame, and the partition
	// that caused the breach must appear in the blame.
	if res.First == nil {
		t.Fatal("no blocking frame attributed")
	}
	t.Logf("first blocking frame: node %d capture #%d %s %s (%s): %s",
		res.First.Node, res.First.Seq, res.First.Dir, res.First.Verdict,
		res.First.Fault, res.First.Reason)
	partitionBlamed := false
	for _, f := range g.Findings {
		if f.Blocking != nil && strings.Contains(f.Blocking.Fault, "partition") {
			partitionBlamed = true
			if len(f.Blocking.Frame.MIDs) == 0 {
				t.Errorf("partition-blamed frame carries no MIDs: %+v", f.Blocking)
			}
			break
		}
	}
	if !partitionBlamed {
		t.Error("no finding blames a partition-destroyed frame")
	}
}

// Package replay turns capture dumps into a deterministic offline re-run
// of the protocol. It ingests every member's frame flight recorder
// (internal/capture), merges the records into one cluster-wide timeline
// joined by (group, MID), and replays each member's delivered ingress
// frames — in capture order — through a fresh core.Process wired to a
// no-op transport. A faultrt.Checker audits the replayed processing logs
// exactly as the live chaos harness audits the live ones, so a violation
// seen in production either reproduces from the artifact alone or is
// refuted by it. For every reproduced violation the timeline is searched
// for the blocking frame: the first captured frame carrying the missing
// message whose loss explains the breach — an ingress discard at the
// violating member, an injected fault at the sender, or a broadcast that
// no capture ever saw arrive.
//
// Replay determinism rests on three properties of the runtime:
//
//   - core.Process is purely reactive from Recv: no timers fire inside
//     it, so feeding the captured ingress sequence reproduces the same
//     processing order (the round clock only matters for generating
//     traffic, which replay never does).
//   - a member processes its own broadcast at egress time
//     (broadcastFrame), so the member's own Data/DataBatch/Decision
//     egress records are fed back to it as Recv(self, pdu) in capture
//     order — its side of the history comes from the same artifact.
//   - rings are per-member and strictly sequence-numbered, so one
//     member's feed order is exactly its live event order.
//
// Known limit: rejoin incarnations (a member that died and state-
// transferred back) are replayed as one incarnation; dumps from runs
// with mid-run joins may over-report ordering violations.
package replay

import (
	"fmt"
	"sort"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/faultrt"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// nullTransport discards everything a replayed process tries to send:
// its peers' inputs come from their own dumps, not from this replay.
type nullTransport struct{}

func (nullTransport) Send(mid.ProcID, wire.PDU) {}
func (nullTransport) Broadcast(wire.PDU)        {}

// Event is one captured record placed on the cluster timeline.
type Event struct {
	// Node owns the ring the record came from.
	Node mid.ProcID
	// Rec is the record itself.
	Rec *capture.Record
	// AbsNs is the record's absolute wall time (ring start + offset),
	// comparable across members to the hosts' clock sync.
	AbsNs int64
	// PDU is the decoded frame body, nil when the record carries none or
	// the bytes do not decode.
	PDU wire.PDU
}

type midKey struct {
	group uint32
	id    mid.MID
}

// Timeline is the merged cluster-wide view of every dump.
type Timeline struct {
	// Events holds every record of every dump, ordered by AbsNs.
	Events []*Event
	// ByMID joins events carrying a given user message, the cross-node
	// key being (group, MID); within one group a MID names the same
	// message on every member.
	ByMID map[midKey][]*Event
}

// Merge builds the cluster timeline from per-member dumps.
func Merge(dumps []*capture.Dump) *Timeline {
	tl := &Timeline{ByMID: make(map[midKey][]*Event)}
	for _, d := range dumps {
		base := d.StartWall.UnixNano()
		for i := range d.Records {
			rec := &d.Records[i]
			ev := &Event{Node: d.Node, Rec: rec, AbsNs: base + rec.AtNs}
			if len(rec.Frame) > 0 {
				if pdu, err := wire.Unmarshal(rec.Frame); err == nil {
					ev.PDU = pdu
					for _, m := range capture.FrameMIDs(pdu) {
						k := midKey{rec.Group, m}
						tl.ByMID[k] = append(tl.ByMID[k], ev)
					}
				}
			}
			tl.Events = append(tl.Events, ev)
		}
	}
	sort.SliceStable(tl.Events, func(i, j int) bool { return tl.Events[i].AbsNs < tl.Events[j].AbsNs })
	for _, evs := range tl.ByMID {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].AbsNs < evs[j].AbsNs })
	}
	return tl
}

// BlockingFrame names the captured frame whose loss explains a violation.
type BlockingFrame struct {
	// Node owns the ring holding the evidence; Seq is the record's
	// capture sequence there ("capture #N" in the runtime's warn lines).
	Node    int32  `json:"node"`
	Seq     uint64 `json:"seq"`
	Dir     string `json:"dir"`
	Verdict string `json:"verdict"`
	Fault   string `json:"fault,omitempty"`
	Peer    int32  `json:"peer"`
	At      string `json:"at"`
	// Frame summarizes the decoded body (kind, MIDs, subrun).
	Frame capture.FrameInfo `json:"frame"`
	// Reason explains how this frame's fate broke the invariant.
	Reason string `json:"reason"`
}

// Finding is one replay-confirmed violation with its evidence.
type Finding struct {
	// Invariant, Node, MID and Detail restate the checker violation.
	Invariant string `json:"invariant"`
	Node      int32  `json:"node"`
	MID       string `json:"mid"`
	Detail    string `json:"detail"`
	// Blocking is the attributed frame; nil when the message left no
	// frame trace at all (Reason folded into Detail).
	Blocking *BlockingFrame `json:"blocking,omitempty"`
}

// GroupResult is the replay verdict for one group.
type GroupResult struct {
	Group uint32 `json:"group"`
	// Members lists every dump-holding member replayed into this group;
	// Crashed the ones whose ring carries a crash mark; Survivors the
	// members the checker audited (alive at end of replay).
	Members   []int32 `json:"members"`
	Crashed   []int32 `json:"crashed,omitempty"`
	Survivors []int32 `json:"survivors"`
	// Fed counts ingress frames replayed; SelfFed the members' own
	// egress broadcasts fed back; Undecodable the reached frames whose
	// bytes no longer parse (capture corruption — each one weakens the
	// replay's fidelity).
	Fed         int `json:"fed"`
	SelfFed     int `json:"self_fed"`
	Undecodable int `json:"undecodable"`
	// Findings lists the reproduced violations, with blame.
	Findings []Finding `json:"findings,omitempty"`
}

// Result is the whole-cluster replay verdict.
type Result struct {
	Dumps  int           `json:"dumps"`
	Groups []GroupResult `json:"groups"`
	// Clean reports that no group reproduced any violation.
	Clean bool `json:"clean"`
	// First is the earliest blocking frame across all findings: the
	// first captured frame whose loss broke an invariant.
	First *BlockingFrame `json:"first_blocking,omitempty"`
}

// Run replays a set of per-member dumps and audits the result. Dumps
// must come from one run: same group shape, one dump per member.
func Run(dumps []*capture.Dump) (*Result, error) {
	if len(dumps) == 0 {
		return nil, fmt.Errorf("replay: no dumps")
	}
	byNode := make(map[mid.ProcID]*capture.Dump, len(dumps))
	for _, d := range dumps {
		if d.Node < 0 || d.N <= int(d.Node) {
			return nil, fmt.Errorf("replay: dump names member %d of %d", d.Node, d.N)
		}
		if d.N != dumps[0].N {
			return nil, fmt.Errorf("replay: dump shapes disagree: N=%d vs N=%d", d.N, dumps[0].N)
		}
		if byNode[d.Node] != nil {
			return nil, fmt.Errorf("replay: two dumps for member %d", d.Node)
		}
		byNode[d.Node] = d
	}

	tl := Merge(dumps)
	groups := map[uint32]bool{}
	for _, ev := range tl.Events {
		if ev.Rec.Dir != capture.DirMark {
			groups[ev.Rec.Group] = true
		}
	}
	order := make([]uint32, 0, len(groups))
	for g := range groups {
		order = append(order, g)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	res := &Result{Dumps: len(dumps)}
	for _, g := range order {
		gr, err := replayGroup(g, dumps, tl)
		if err != nil {
			return nil, err
		}
		res.Groups = append(res.Groups, *gr)
	}
	res.Clean = true
	for _, gr := range res.Groups {
		for i := range gr.Findings {
			res.Clean = false
			b := gr.Findings[i].Blocking
			if b != nil && (res.First == nil || b.At < res.First.At) {
				res.First = b
			}
		}
	}
	return res, nil
}

// procConfig rebuilds a member's protocol shape from its dump header,
// defaulting the retry parameters when the capturing runtime did not
// stamp them (K, then the paper's R > 2K floor).
func procConfig(d *capture.Dump) core.Config {
	cfg := core.Config{N: d.N, K: d.K, R: d.R, SelfExclusion: d.SelfExclusion}
	if cfg.K <= 0 {
		cfg.K = 2
	}
	if cfg.R <= 2*cfg.K {
		cfg.R = 2*cfg.K + 1
	}
	return cfg
}

// selfFeedKind reports whether a member's own egress broadcast of this
// kind must be fed back to it: the live runtime processes its own
// Data/DataBatch locally at broadcast time, and a coordinator applies
// its own Decision when it ships it — none of these ever appear on the
// member's own ingress.
func selfFeedKind(pdu wire.PDU) bool {
	switch pdu.(type) {
	case *wire.Data, *wire.DataBatch, *wire.Decision:
		return true
	}
	return false
}

// replayGroup re-runs one group from every member's records.
func replayGroup(g uint32, dumps []*capture.Dump, tl *Timeline) (*GroupResult, error) {
	gr := &GroupResult{Group: g}
	ck := faultrt.NewChecker()
	var survivors []mid.ProcID
	for _, d := range dumps {
		node := d.Node
		gr.Members = append(gr.Members, int32(node))
		proc, err := core.NewProcess(node, procConfig(d), nullTransport{}, core.Callbacks{
			OnProcess: func(m *causal.Message) { ck.Record(node, m) },
		})
		if err != nil {
			return nil, fmt.Errorf("replay: member %d: %w", node, err)
		}
		crashed := false
		for i := range d.Records {
			rec := &d.Records[i]
			if rec.Dir == capture.DirMark && rec.Verdict == capture.Crash {
				crashed = true
				break // everything after the mark happened to a dead member
			}
			if rec.Group != g || !rec.Verdict.Reached() || len(rec.Frame) == 0 {
				continue
			}
			pdu, err := wire.Unmarshal(rec.Frame)
			if err != nil {
				gr.Undecodable++
				continue
			}
			switch rec.Dir {
			case capture.DirIngress:
				proc.Recv(rec.Peer, pdu)
				gr.Fed++
			case capture.DirEgress:
				// Only the broadcast record (peer-less, clean) is the
				// member's own processing point; per-destination fault
				// records are blame evidence, not a second delivery.
				if rec.Peer == mid.None && rec.Verdict == capture.Sent && selfFeedKind(pdu) {
					proc.Recv(node, pdu)
					gr.SelfFed++
				}
			}
		}
		if crashed {
			gr.Crashed = append(gr.Crashed, int32(node))
		} else if proc.Running() {
			survivors = append(survivors, node)
			gr.Survivors = append(gr.Survivors, int32(node))
		}
	}
	sort.Slice(gr.Members, func(i, j int) bool { return gr.Members[i] < gr.Members[j] })
	sort.Slice(gr.Survivors, func(i, j int) bool { return gr.Survivors[i] < gr.Survivors[j] })
	for _, v := range ck.Check(survivors) {
		f := Finding{
			Invariant: v.Invariant,
			Node:      int32(v.Node),
			MID:       v.Msg.String(),
			Detail:    v.Detail,
			Blocking:  attribute(g, v, tl, dumps),
		}
		gr.Findings = append(gr.Findings, f)
	}
	return gr, nil
}

// frameView renders one event as blame evidence.
func frameView(ev *Event, reason string) *BlockingFrame {
	b := &BlockingFrame{
		Node:    int32(ev.Node),
		Seq:     ev.Rec.Seq,
		Dir:     ev.Rec.Dir.String(),
		Verdict: ev.Rec.Verdict.String(),
		Peer:    int32(ev.Rec.Peer),
		At:      time.Unix(0, ev.AbsNs).UTC().Format(time.RFC3339Nano),
		Frame:   capture.Summarize(ev.Rec.Frame),
		Reason:  reason,
	}
	if ev.Rec.Fault != 0 {
		b.Fault = ev.Rec.Fault.String()
	}
	return b
}

// attribute searches the timeline for the frame whose loss explains one
// violation: the earliest ingress discard of the message at the violating
// member, else the earliest injected fault that destroyed it en route to
// that member, else the earliest broadcast that no capture saw arrive.
func attribute(g uint32, v faultrt.Violation, tl *Timeline, dumps []*capture.Dump) *BlockingFrame {
	evs := tl.ByMID[midKey{g, v.Msg}]
	if len(evs) == 0 {
		return nil // never captured anywhere: evicted or pre-capture traffic
	}
	var arrived bool
	var firstSent *Event
	for _, ev := range evs {
		switch ev.Rec.Dir {
		case capture.DirIngress:
			if ev.Node != v.Node {
				continue
			}
			if ev.Rec.Verdict.Reached() {
				arrived = true
				continue
			}
			return frameView(ev, fmt.Sprintf(
				"carried %v to member %d but was discarded at ingress (%s)",
				v.Msg, v.Node, ev.Rec.Verdict))
		case capture.DirEgress:
			if !ev.Rec.Verdict.Reached() && ev.Rec.Peer == v.Node {
				return frameView(ev, fmt.Sprintf(
					"destroyed in flight from member %d to member %d (%s, fault %s)",
					ev.Node, v.Node, ev.Rec.Verdict, ev.Rec.Fault))
			}
			if ev.Rec.Verdict.Reached() && firstSent == nil {
				firstSent = ev
			}
		}
	}
	if arrived {
		// The frame reached the member; the breach is not a lost frame
		// (ordering violations land here when the dependency arrived).
		return nil
	}
	if firstSent != nil {
		evicted := uint64(0)
		for _, d := range dumps {
			if d.Node == v.Node {
				evicted = d.Evicted
			}
		}
		note := ""
		if evicted > 0 {
			note = fmt.Sprintf(" (member %d's ring evicted %d records — arrival may predate its window)", v.Node, evicted)
		}
		return frameView(firstSent, fmt.Sprintf(
			"broadcast by member %d but no capture ever saw it reach member %d%s",
			firstSent.Node, v.Node, note))
	}
	return nil
}

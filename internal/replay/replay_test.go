package replay

import (
	"strings"
	"testing"

	"urcgc/internal/capture"
	"urcgc/internal/causal"
	"urcgc/internal/faultrt"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// frame marshals one PDU body the way the runtimes store it.
func frame(t *testing.T, pdu wire.PDU) []byte {
	t.Helper()
	b, err := wire.MarshalAppend(nil, pdu)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func data(t *testing.T, proc mid.ProcID, seq mid.Seq) []byte {
	t.Helper()
	return frame(t, &wire.Data{Msg: causal.Message{
		ID:      mid.MID{Proc: proc, Seq: seq},
		Payload: []byte("x"),
	}})
}

// cluster builds one ring per member with the founding shape stamped.
func cluster(n int) []*capture.Ring {
	rings := make([]*capture.Ring, n)
	for i := range rings {
		rings[i] = capture.New(capture.Options{Node: mid.ProcID(i), N: n, K: 2, R: 5})
	}
	return rings
}

func snapshots(rings []*capture.Ring) []*capture.Dump {
	out := make([]*capture.Dump, len(rings))
	for i, r := range rings {
		out[i] = r.Snapshot()
	}
	return out
}

// TestReplayCleanRun replays a faultless three-member exchange — every
// broadcast delivered everywhere — and expects a clean verdict.
func TestReplayCleanRun(t *testing.T) {
	rings := cluster(3)
	for _, origin := range []mid.ProcID{0, 1} {
		f := data(t, origin, 1)
		rings[origin].Record(capture.DirEgress, 0, mid.None, capture.Sent, 0, f)
		for i, r := range rings {
			if mid.ProcID(i) != origin {
				r.Record(capture.DirIngress, 0, origin, capture.Delivered, 0, f)
			}
		}
	}
	res, err := Run(snapshots(rings))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || len(res.Groups) != 1 {
		t.Fatalf("clean run verdict = %+v", res)
	}
	g := res.Groups[0]
	if len(g.Survivors) != 3 || g.Fed != 4 || g.SelfFed != 2 || len(g.Findings) != 0 {
		t.Fatalf("group result = %+v", g)
	}
}

// TestReplayReproducesIngressDrop re-runs a cluster where member 2's copy
// of p0#1 was destroyed at its ingress by an injected fault: the replay
// must report the atomicity breach at member 2 and blame exactly that
// ingress record.
func TestReplayReproducesIngressDrop(t *testing.T) {
	rings := cluster(3)
	f := data(t, 0, 1)
	rings[0].Record(capture.DirEgress, 0, mid.None, capture.Sent, 0, f)
	rings[1].Record(capture.DirIngress, 0, 0, capture.Delivered, 0, f)
	dropSeq := rings[2].Record(capture.DirIngress, 0, 0, capture.FaultDrop,
		faultrt.KindSet(0).With(faultrt.KindDrop), f)

	res, err := Run(snapshots(rings))
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("replay missed the violation")
	}
	g := res.Groups[0]
	if len(g.Findings) != 1 {
		t.Fatalf("findings = %+v", g.Findings)
	}
	fd := g.Findings[0]
	if fd.Invariant != "uniform-atomicity" || fd.Node != 2 || fd.MID != "p0#1" {
		t.Fatalf("finding = %+v", fd)
	}
	b := fd.Blocking
	if b == nil || b.Node != 2 || b.Seq != dropSeq || b.Verdict != "fault-drop" || b.Dir != "in" {
		t.Fatalf("blocking frame = %+v", b)
	}
	if !strings.Contains(b.Reason, "discarded at ingress") {
		t.Fatalf("reason = %q", b.Reason)
	}
	if res.First == nil || res.First.Seq != dropSeq {
		t.Fatalf("first blocking = %+v", res.First)
	}
}

// TestReplayBlamesSenderSideDrop models the mesh/partition shape: the
// frame to member 2 was destroyed at the sender's boundary, so member 2
// has no ingress record at all — the blame must land on the sender's
// per-destination egress record.
func TestReplayBlamesSenderSideDrop(t *testing.T) {
	rings := cluster(3)
	f := data(t, 0, 1)
	rings[0].Record(capture.DirEgress, 0, mid.None, capture.Sent, 0, f)
	rings[0].Record(capture.DirEgress, 0, 2, capture.FaultDrop,
		faultrt.KindSet(0).With(faultrt.KindPartition), f)
	rings[1].Record(capture.DirIngress, 0, 0, capture.Delivered, 0, f)

	res, err := Run(snapshots(rings))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Groups[0]
	if len(g.Findings) != 1 {
		t.Fatalf("findings = %+v", g.Findings)
	}
	b := g.Findings[0].Blocking
	if b == nil || b.Node != 0 || b.Peer != 2 || b.Verdict != "fault-drop" || b.Dir != "out" {
		t.Fatalf("blocking frame = %+v", b)
	}
	if !strings.Contains(b.Reason, "destroyed in flight") || !strings.Contains(b.Fault, "partition") {
		t.Fatalf("blame = %+v", b)
	}
}

// TestReplayVanishedFrame covers the silent-loss shape: the broadcast was
// captured leaving the origin, no fault was recorded anywhere, and the
// victim simply never saw it — the blame names the broadcast and notes
// the arrival is untraced.
func TestReplayVanishedFrame(t *testing.T) {
	rings := cluster(3)
	f := data(t, 0, 1)
	rings[0].Record(capture.DirEgress, 0, mid.None, capture.Sent, 0, f)
	rings[1].Record(capture.DirIngress, 0, 0, capture.Delivered, 0, f)
	// member 2: nothing.

	res, err := Run(snapshots(rings))
	if err != nil {
		t.Fatal(err)
	}
	b := res.Groups[0].Findings[0].Blocking
	if b == nil || b.Node != 0 || b.Dir != "out" || !strings.Contains(b.Reason, "no capture ever saw it reach member 2") {
		t.Fatalf("blocking frame = %+v", b)
	}
}

// TestReplayCrashMarkStopsFeed pins that a crash mark fences the member's
// replay: records after the mark never feed, and the member is excluded
// from the survivor set (so its missing tail is not a violation).
func TestReplayCrashMarkStopsFeed(t *testing.T) {
	rings := cluster(3)
	f1, f2 := data(t, 0, 1), data(t, 0, 2)
	rings[0].Record(capture.DirEgress, 0, mid.None, capture.Sent, 0, f1)
	rings[0].Record(capture.DirEgress, 0, mid.None, capture.Sent, 0, f2)
	for _, i := range []int{1, 2} {
		rings[i].Record(capture.DirIngress, 0, 0, capture.Delivered, 0, f1)
	}
	rings[1].Record(capture.DirIngress, 0, 0, capture.Delivered, 0, f2)
	rings[2].Mark(capture.Crash, faultrt.KindSet(0).With(faultrt.KindCrash))
	rings[2].Record(capture.DirIngress, 0, 0, capture.Delivered, 0, f2) // post-mortem

	res, err := Run(snapshots(rings))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("crashed member's missing tail reported as violation: %+v", res.Groups[0].Findings)
	}
	g := res.Groups[0]
	if len(g.Crashed) != 1 || g.Crashed[0] != 2 || len(g.Survivors) != 2 {
		t.Fatalf("crash accounting = %+v", g)
	}
}

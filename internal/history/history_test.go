package history

import (
	"math/rand"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

func msg(p mid.ProcID, s mid.Seq) *causal.Message {
	return &causal.Message{ID: mid.MID{Proc: p, Seq: s}}
}

func TestStoreAndGet(t *testing.T) {
	h := New(3)
	if err := h.Store(msg(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := h.Store(msg(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := h.Get(1, 2); got == nil || got.ID.Seq != 2 {
		t.Errorf("Get(1,2) = %v", got)
	}
	if h.Get(1, 3) != nil {
		t.Error("Get of unstored message should be nil")
	}
	if h.Get(0, 1) != nil {
		t.Error("Get from empty entry should be nil")
	}
	if h.Get(9, 1) != nil || h.Get(-1, 1) != nil {
		t.Error("Get out of range should be nil")
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestStoreOutOfOrderFails(t *testing.T) {
	h := New(2)
	if err := h.Store(msg(0, 2)); err == nil {
		t.Error("first store must be seq 1")
	}
	if err := h.Store(msg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := h.Store(msg(0, 1)); err == nil {
		t.Error("duplicate store must fail")
	}
	if err := h.Store(msg(0, 3)); err == nil {
		t.Error("gap store must fail")
	}
	if err := h.Store(msg(5, 1)); err == nil {
		t.Error("store from unknown process must fail")
	}
}

func TestCleanTo(t *testing.T) {
	h := New(2)
	for s := mid.Seq(1); s <= 5; s++ {
		if err := h.Store(msg(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	released := h.CleanTo(mid.SeqVector{3, 0})
	if released != 3 {
		t.Errorf("released = %d, want 3", released)
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d, want 2", h.Len())
	}
	if h.Get(0, 3) != nil {
		t.Error("purged message should be gone")
	}
	if h.Get(0, 4) == nil {
		t.Error("retained message should remain")
	}
	if h.Base(0) != 3 || h.MaxSeq(0) != 5 {
		t.Errorf("Base=%d MaxSeq=%d", h.Base(0), h.MaxSeq(0))
	}
	// Cleaning backwards is a no-op.
	if rel := h.CleanTo(mid.SeqVector{2, 0}); rel != 0 {
		t.Errorf("backward clean released %d", rel)
	}
	// Cleaning beyond stored clips.
	if rel := h.CleanTo(mid.SeqVector{99, 0}); rel != 2 {
		t.Errorf("over-clean released %d, want 2", rel)
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d, want 0", h.Len())
	}
	// Storage continues after a full purge.
	if err := h.Store(msg(0, 6)); err != nil {
		t.Fatal(err)
	}
	if h.MaxSeq(0) != 6 {
		t.Errorf("MaxSeq = %d", h.MaxSeq(0))
	}
}

func TestCleanToShortVector(t *testing.T) {
	h := New(3)
	if err := h.Store(msg(2, 1)); err != nil {
		t.Fatal(err)
	}
	// Vector shorter than group: untouched entries stay.
	if rel := h.CleanTo(mid.SeqVector{0}); rel != 0 {
		t.Errorf("released %d", rel)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestRange(t *testing.T) {
	h := New(1)
	for s := mid.Seq(1); s <= 6; s++ {
		if err := h.Store(msg(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	h.CleanTo(mid.SeqVector{2})
	got := h.Range(0, 1, 4) // clipped to [3,4]
	if len(got) != 2 || got[0].ID.Seq != 3 || got[1].ID.Seq != 4 {
		t.Errorf("Range = %v", got)
	}
	if h.Range(0, 7, 9) != nil {
		t.Error("Range beyond stored should be nil")
	}
	if h.Range(0, 4, 3) != nil {
		t.Error("inverted Range should be nil")
	}
	if h.Range(5, 1, 2) != nil {
		t.Error("Range of unknown proc should be nil")
	}
	full := h.Range(0, 3, 6)
	if len(full) != 4 {
		t.Errorf("full Range len = %d", len(full))
	}
}

func TestStoredVector(t *testing.T) {
	h := New(3)
	for s := mid.Seq(1); s <= 3; s++ {
		if err := h.Store(msg(1, s)); err != nil {
			t.Fatal(err)
		}
	}
	h.CleanTo(mid.SeqVector{0, 2, 0})
	v := h.Stored()
	if !v.Equal(mid.SeqVector{0, 3, 0}) {
		t.Errorf("Stored = %v", v)
	}
	if h.PerSender()[1] != 1 {
		t.Errorf("PerSender = %v", h.PerSender())
	}
}

// Property: after any interleaving of stores and cleans, the retained range
// per sender is exactly (base, maxseq], Len matches the sum of retained
// counts, and Get answers exactly inside that range.
func TestHistoryInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		h := New(n)
		next := make([]mid.Seq, n)
		for op := 0; op < 200; op++ {
			if rng.Intn(3) != 0 { // store
				q := rng.Intn(n)
				next[q]++
				if err := h.Store(msg(mid.ProcID(q), next[q])); err != nil {
					t.Fatal(err)
				}
			} else { // clean to a random stable vector
				stable := mid.NewSeqVector(n)
				for q := 0; q < n; q++ {
					if next[q] > 0 {
						stable[q] = mid.Seq(rng.Intn(int(next[q]) + 1))
					}
				}
				h.CleanTo(stable)
			}
			sum := 0
			for q := 0; q < n; q++ {
				p := mid.ProcID(q)
				base, maxs := h.Base(p), h.MaxSeq(p)
				if maxs != next[q] {
					t.Fatalf("MaxSeq(%d) = %d, want %d", q, maxs, next[q])
				}
				if base > maxs {
					t.Fatalf("base %d > maxseq %d", base, maxs)
				}
				sum += int(maxs - base)
				if base >= 1 && h.Get(p, base) != nil {
					t.Fatalf("purged message (%d,%d) still retrievable", q, base)
				}
				if maxs > base && h.Get(p, maxs) == nil {
					t.Fatalf("retained message (%d,%d) missing", q, maxs)
				}
			}
			if h.Len() != sum {
				t.Fatalf("Len = %d, want %d", h.Len(), sum)
			}
		}
	}
}

// TestCleanToAmortization pokes the representation directly: partial cleans
// must nil dropped slots immediately (no pinning) while deferring compaction,
// and compaction must fire once the dead prefix reaches half the backing
// array.
func TestCleanToAmortization(t *testing.T) {
	h := New(1)
	for s := mid.Seq(1); s <= 10; s++ {
		if err := h.Store(msg(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	e := &h.entries[0]
	if h.CleanTo(mid.SeqVector{3}) != 3 {
		t.Fatal("clean to 3")
	}
	// 3 dead of 10 slots: below the half threshold, so no compaction yet.
	if e.start != 3 || len(e.msgs) != 10 {
		t.Fatalf("start=%d len=%d, want deferred compaction (3, 10)", e.start, len(e.msgs))
	}
	for i := 0; i < e.start; i++ {
		if e.msgs[i] != nil {
			t.Fatalf("dead slot %d still pins a message", i)
		}
	}
	if h.Get(0, 3) != nil || h.Get(0, 4) == nil {
		t.Fatal("Get wrong across dead prefix")
	}
	// 6 dead of 10 slots: threshold crossed, backing array replaced.
	if h.CleanTo(mid.SeqVector{6}) != 3 {
		t.Fatal("clean to 6")
	}
	if e.start != 0 || len(e.msgs) != 4 || cap(e.msgs) != 4 {
		t.Fatalf("start=%d len=%d cap=%d, want compacted (0, 4, 4)", e.start, len(e.msgs), cap(e.msgs))
	}
	if got := h.Range(0, 7, 10); len(got) != 4 || got[0].ID.Seq != 7 {
		t.Fatalf("Range after compaction = %v", got)
	}
	// Full purge releases the backing array entirely.
	h.CleanTo(mid.SeqVector{10})
	if e.msgs != nil || e.start != 0 || e.base != 10 {
		t.Fatalf("full purge left msgs=%v start=%d base=%d", e.msgs, e.start, e.base)
	}
	// Store keeps working against the purged base.
	if err := h.Store(msg(0, 11)); err != nil {
		t.Fatal(err)
	}
	if h.Get(0, 11) == nil || h.MaxSeq(0) != 11 {
		t.Fatal("store after full purge broken")
	}
}

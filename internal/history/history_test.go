package history

import (
	"errors"
	"math/rand"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

func msg(p mid.ProcID, s mid.Seq) *causal.Message {
	return &causal.Message{ID: mid.MID{Proc: p, Seq: s}}
}

// get ignores the gap error where a test only cares about presence.
func get(h *History, p mid.ProcID, s mid.Seq) *causal.Message {
	m, _ := h.Get(p, s)
	return m
}

// rng ignores the gap error where a test only cares about the clip.
func rng(h *History, p mid.ProcID, from, to mid.Seq) []*causal.Message {
	ms, _ := h.Range(p, from, to)
	return ms
}

func TestStoreAndGet(t *testing.T) {
	h := New(3)
	if err := h.Store(msg(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := h.Store(msg(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := get(h, 1, 2); got == nil || got.ID.Seq != 2 {
		t.Errorf("Get(1,2) = %v", got)
	}
	if get(h, 1, 3) != nil {
		t.Error("Get of unstored message should be nil")
	}
	if get(h, 0, 1) != nil {
		t.Error("Get from empty entry should be nil")
	}
	if get(h, 9, 1) != nil || get(h, -1, 1) != nil {
		t.Error("Get out of range should be nil")
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestStoreOutOfOrderFails(t *testing.T) {
	h := New(2)
	if err := h.Store(msg(0, 2)); err == nil {
		t.Error("first store must be seq 1")
	}
	if err := h.Store(msg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := h.Store(msg(0, 1)); err == nil {
		t.Error("duplicate store must fail")
	}
	if err := h.Store(msg(0, 3)); err == nil {
		t.Error("gap store must fail")
	}
	if err := h.Store(msg(5, 1)); err == nil {
		t.Error("store from unknown process must fail")
	}
}

func TestCleanTo(t *testing.T) {
	h := New(2)
	for s := mid.Seq(1); s <= 5; s++ {
		if err := h.Store(msg(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	released := h.CleanTo(mid.SeqVector{3, 0})
	if released != 3 {
		t.Errorf("released = %d, want 3", released)
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d, want 2", h.Len())
	}
	if m, err := h.Get(0, 3); m != nil || !errors.Is(err, ErrCompacted) {
		t.Errorf("purged Get = %v, %v; want nil, ErrCompacted", m, err)
	}
	if get(h, 0, 4) == nil {
		t.Error("retained message should remain")
	}
	if h.Base(0) != 3 || h.MaxSeq(0) != 5 {
		t.Errorf("Base=%d MaxSeq=%d", h.Base(0), h.MaxSeq(0))
	}
	// Cleaning backwards is a no-op.
	if rel := h.CleanTo(mid.SeqVector{2, 0}); rel != 0 {
		t.Errorf("backward clean released %d", rel)
	}
	// Cleaning beyond stored clips.
	if rel := h.CleanTo(mid.SeqVector{99, 0}); rel != 2 {
		t.Errorf("over-clean released %d, want 2", rel)
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d, want 0", h.Len())
	}
	// Storage continues after a full purge.
	if err := h.Store(msg(0, 6)); err != nil {
		t.Fatal(err)
	}
	if h.MaxSeq(0) != 6 {
		t.Errorf("MaxSeq = %d", h.MaxSeq(0))
	}
}

func TestCleanToShortVector(t *testing.T) {
	h := New(3)
	if err := h.Store(msg(2, 1)); err != nil {
		t.Fatal(err)
	}
	// Vector shorter than group: untouched entries stay.
	if rel := h.CleanTo(mid.SeqVector{0}); rel != 0 {
		t.Errorf("released %d", rel)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestRange(t *testing.T) {
	h := New(1)
	for s := mid.Seq(1); s <= 6; s++ {
		if err := h.Store(msg(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	h.CleanTo(mid.SeqVector{2})
	got, err := h.Range(0, 1, 4) // clipped to [3,4], with a gap error up front
	if len(got) != 2 || got[0].ID.Seq != 3 || got[1].ID.Seq != 4 {
		t.Errorf("Range = %v", got)
	}
	var gap *CompactedError
	if !errors.As(err, &gap) || gap.Base != 2 || gap.Proc != 0 {
		t.Errorf("clipped Range err = %v, want CompactedError{0, 2}", err)
	}
	if ms, err := h.Range(0, 7, 9); ms != nil || err != nil {
		t.Errorf("Range beyond stored = %v, %v", ms, err)
	}
	if rng(h, 0, 4, 3) != nil {
		t.Error("inverted Range should be nil")
	}
	if rng(h, 5, 1, 2) != nil {
		t.Error("Range of unknown proc should be nil")
	}
	full, err := h.Range(0, 3, 6)
	if len(full) != 4 || err != nil {
		t.Errorf("full Range len = %d err = %v", len(full), err)
	}
}

// A request entirely inside the compacted prefix answers no data and the
// typed gap error naming the base — the satellite-2 contract: recovery must
// learn "that range is stable everywhere" rather than mistaking silence for
// a hole it keeps retrying.
func TestRangeFullyCompacted(t *testing.T) {
	h := New(1)
	for s := mid.Seq(1); s <= 6; s++ {
		if err := h.Store(msg(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	h.CleanTo(mid.SeqVector{4})
	ms, err := h.Range(0, 1, 3)
	if len(ms) != 0 {
		t.Errorf("fully compacted Range returned %d messages", len(ms))
	}
	var gap *CompactedError
	if !errors.As(err, &gap) || gap.Base != 4 {
		t.Fatalf("err = %v, want CompactedError base 4", err)
	}
}

func TestSkip(t *testing.T) {
	h := New(2)
	for s := mid.Seq(1); s <= 5; s++ {
		if err := h.Store(msg(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	// Partial skip releases the prefix like a clean.
	if rel := h.Skip(0, 2); rel != 2 {
		t.Errorf("Skip(0,2) released %d", rel)
	}
	if h.Base(0) != 2 || h.MaxSeq(0) != 5 || h.Len() != 3 {
		t.Errorf("after partial skip: base=%d max=%d len=%d", h.Base(0), h.MaxSeq(0), h.Len())
	}
	// Backward skip is a no-op.
	if rel := h.Skip(0, 1); rel != 0 {
		t.Errorf("backward Skip released %d", rel)
	}
	// Skip past the stored frontier: the base jumps beyond MaxSeq (the
	// skipped messages were never received here) and storing resumes there.
	if rel := h.Skip(0, 9); rel != 3 {
		t.Errorf("Skip(0,9) released %d", rel)
	}
	if h.Base(0) != 9 || h.MaxSeq(0) != 9 || h.Len() != 0 {
		t.Errorf("after jump skip: base=%d max=%d len=%d", h.Base(0), h.MaxSeq(0), h.Len())
	}
	if err := h.Store(msg(0, 10)); err != nil {
		t.Fatalf("store after jump: %v", err)
	}
	// Skip on an empty entry positions its base.
	if h.Skip(1, 7); h.Base(1) != 7 {
		t.Errorf("empty-entry skip base = %d", h.Base(1))
	}
	if h.Skip(5, 1) != 0 || h.Skip(-1, 1) != 0 {
		t.Error("out-of-range Skip should be a no-op")
	}
}

func TestInstallBases(t *testing.T) {
	h := New(3)
	if err := h.InstallBases(mid.SeqVector{4, 0, 7}); err != nil {
		t.Fatal(err)
	}
	if h.Base(0) != 4 || h.Base(1) != 0 || h.Base(2) != 7 {
		t.Errorf("bases = %d,%d,%d", h.Base(0), h.Base(1), h.Base(2))
	}
	// Storing resumes at watermark+1, and the prefix answers compacted.
	if err := h.Store(msg(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := h.Store(msg(0, 4)); err == nil {
		t.Error("store below installed base must fail")
	}
	if _, err := h.Get(0, 3); !errors.Is(err, ErrCompacted) {
		t.Errorf("Get below installed base = %v, want ErrCompacted", err)
	}
	// Installing over retained messages is rejected.
	if err := h.InstallBases(mid.SeqVector{9, 9, 9}); err == nil {
		t.Error("InstallBases over retained messages must fail")
	}
}

func TestStoredVector(t *testing.T) {
	h := New(3)
	for s := mid.Seq(1); s <= 3; s++ {
		if err := h.Store(msg(1, s)); err != nil {
			t.Fatal(err)
		}
	}
	h.CleanTo(mid.SeqVector{0, 2, 0})
	v := h.Stored()
	if !v.Equal(mid.SeqVector{0, 3, 0}) {
		t.Errorf("Stored = %v", v)
	}
	if h.PerSender()[1] != 1 {
		t.Errorf("PerSender = %v", h.PerSender())
	}
}

// Property: after any interleaving of stores and cleans, the retained range
// per sender is exactly (base, maxseq], Len matches the sum of retained
// counts, and Get answers exactly inside that range.
func TestHistoryInvariantsUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		h := New(n)
		next := make([]mid.Seq, n)
		for op := 0; op < 200; op++ {
			if rng.Intn(3) != 0 { // store
				q := rng.Intn(n)
				next[q]++
				if err := h.Store(msg(mid.ProcID(q), next[q])); err != nil {
					t.Fatal(err)
				}
			} else { // clean to a random stable vector
				stable := mid.NewSeqVector(n)
				for q := 0; q < n; q++ {
					if next[q] > 0 {
						stable[q] = mid.Seq(rng.Intn(int(next[q]) + 1))
					}
				}
				h.CleanTo(stable)
			}
			sum := 0
			for q := 0; q < n; q++ {
				p := mid.ProcID(q)
				base, maxs := h.Base(p), h.MaxSeq(p)
				if maxs != next[q] {
					t.Fatalf("MaxSeq(%d) = %d, want %d", q, maxs, next[q])
				}
				if base > maxs {
					t.Fatalf("base %d > maxseq %d", base, maxs)
				}
				sum += int(maxs - base)
				if base >= 1 {
					m, err := h.Get(p, base)
					if m != nil || !errors.Is(err, ErrCompacted) {
						t.Fatalf("purged message (%d,%d): %v, %v", q, base, m, err)
					}
				}
				if maxs > base && get(h, p, maxs) == nil {
					t.Fatalf("retained message (%d,%d) missing", q, maxs)
				}
			}
			if h.Len() != sum {
				t.Fatalf("Len = %d, want %d", h.Len(), sum)
			}
		}
	}
}

// TestCleanToAmortization pokes the representation directly: partial cleans
// must nil dropped slots immediately (no pinning) while deferring compaction,
// and compaction must fire once the dead prefix reaches half the backing
// array.
func TestCleanToAmortization(t *testing.T) {
	h := New(1)
	for s := mid.Seq(1); s <= 10; s++ {
		if err := h.Store(msg(0, s)); err != nil {
			t.Fatal(err)
		}
	}
	e := &h.entries[0]
	if h.CleanTo(mid.SeqVector{3}) != 3 {
		t.Fatal("clean to 3")
	}
	// 3 dead of 10 slots: below the half threshold, so no compaction yet.
	if e.start != 3 || len(e.msgs) != 10 {
		t.Fatalf("start=%d len=%d, want deferred compaction (3, 10)", e.start, len(e.msgs))
	}
	for i := 0; i < e.start; i++ {
		if e.msgs[i] != nil {
			t.Fatalf("dead slot %d still pins a message", i)
		}
	}
	if get(h, 0, 3) != nil || get(h, 0, 4) == nil {
		t.Fatal("Get wrong across dead prefix")
	}
	// 6 dead of 10 slots: threshold crossed, backing array replaced.
	if h.CleanTo(mid.SeqVector{6}) != 3 {
		t.Fatal("clean to 6")
	}
	if e.start != 0 || len(e.msgs) != 4 || cap(e.msgs) != 4 {
		t.Fatalf("start=%d len=%d cap=%d, want compacted (0, 4, 4)", e.start, len(e.msgs), cap(e.msgs))
	}
	if got := rng(h, 0, 7, 10); len(got) != 4 || got[0].ID.Seq != 7 {
		t.Fatalf("Range after compaction = %v", got)
	}
	// Full purge releases the backing array entirely.
	h.CleanTo(mid.SeqVector{10})
	if e.msgs != nil || e.start != 0 || e.base != 10 {
		t.Fatalf("full purge left msgs=%v start=%d base=%d", e.msgs, e.start, e.base)
	}
	// Store keeps working against the purged base.
	if err := h.Store(msg(0, 11)); err != nil {
		t.Fatal(err)
	}
	if get(h, 0, 11) == nil || h.MaxSeq(0) != 11 {
		t.Fatal("store after full purge broken")
	}
}

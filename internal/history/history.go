// Package history implements the urcgc history buffer (Section 4): a table
// with one entry per group member holding, in sequence order, the processed
// messages that member generated. The history serves two purposes:
//
//   - recovery: a process missing messages asks a more updated peer, which
//     answers out of its history;
//   - ordering bookkeeping: the i-th entry describes the dependence among
//     p_i's own messages, while cross-sequence dependence travels inside
//     each message.
//
// Messages are purged only when stable — processed by every active process —
// which the coordinator decides and announces in the clean_to vector of its
// decision. Because stability is a global agreement, all histories stay
// roughly the same length; Fig. 6 of the paper plots exactly this length,
// and Len/PerSender expose it.
package history

import (
	"errors"
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// ErrCompacted is the sentinel for requests that reach into the purged
// stable prefix of a sequence. Before it existed, Get answered nil and Range
// silently clipped — indistinguishable from "never stored", so a recovery
// retry serving a joiner handed back partial data as if it were everything.
// Errors carrying it are *CompactedError values; test with errors.Is.
var ErrCompacted = errors.New("history: requested range compacted")

// CompactedError reports that a requested sequence range reaches at or
// below the purged (uniformly stable) prefix, naming where the retained
// suffix begins so the caller can fast-forward or re-aim its want.
type CompactedError struct {
	Proc mid.ProcID
	// Base is the highest purged sequence number: every message of the
	// sequence with seq <= Base is compacted here.
	Base mid.Seq
}

// Error implements error.
func (e *CompactedError) Error() string {
	return fmt.Sprintf("history: p%d compacted through seq %d", e.Proc, e.Base)
}

// Is makes errors.Is(err, ErrCompacted) succeed for CompactedError values.
func (e *CompactedError) Is(target error) bool { return target == ErrCompacted }

// entry holds one sender's retained suffix of messages. The retained
// messages are msgs[start:]; msgs[start] has sequence number base+1, so the
// retained range is [base+1, base+len(msgs)-start]. The dead prefix
// msgs[:start] holds nil slots: purging nils the slot (so no purged
// *Message is ever pinned) and advances start, deferring the O(live)
// compaction until the dead prefix dominates the backing array.
type entry struct {
	base  mid.Seq
	start int
	msgs  []*causal.Message
}

// live returns the retained suffix.
func (e *entry) live() []*causal.Message { return e.msgs[e.start:] }

// History is the per-process history buffer. It is not safe for concurrent
// use; the protocol owns it from a single goroutine.
type History struct {
	entries []entry
	total   int
}

// New returns an empty history for a group of n processes.
func New(n int) *History {
	return &History{entries: make([]entry, n)}
}

// N returns the group cardinality the history was sized for.
func (h *History) N() int { return len(h.entries) }

// Store saves a processed message. Messages of one sequence must be stored
// contiguously in sequence order — the protocol processes them that way —
// and storing out of order is a bug, reported as an error.
func (h *History) Store(m *causal.Message) error {
	p := m.ID.Proc
	if int(p) >= len(h.entries) || p < 0 {
		return fmt.Errorf("history: message %v from process outside group of %d", m.ID, len(h.entries))
	}
	e := &h.entries[p]
	want := e.base + mid.Seq(len(e.live())) + 1
	if m.ID.Seq != want {
		return fmt.Errorf("history: storing %v out of order (next expected seq %d)", m.ID, want)
	}
	e.msgs = append(e.msgs, m)
	h.total++
	return nil
}

// Get returns the retained message (q, s). A request at or below the purged
// prefix answers a *CompactedError naming the purge base — the message
// existed here and was released as stable, which is different news than
// "never stored" (nil, nil): the caller can treat everything up to Base as
// uniformly delivered instead of waiting for bytes nobody retains.
func (h *History) Get(q mid.ProcID, s mid.Seq) (*causal.Message, error) {
	if int(q) >= len(h.entries) || q < 0 || s == 0 {
		return nil, nil
	}
	e := &h.entries[q]
	if s <= e.base {
		return nil, &CompactedError{Proc: q, Base: e.base}
	}
	if s > e.base+mid.Seq(len(e.live())) {
		return nil, nil
	}
	return e.msgs[e.start+int(s-e.base)-1], nil
}

// Range returns the retained messages (q, from..to), inclusive, clipped to
// the retained range, in sequence order. When the request reaches into the
// purged prefix (from <= Base(q)) the retained overlap is still returned,
// but alongside a *CompactedError naming the base, so the caller knows the
// answer has a stable gap at the front rather than mistaking the clip for
// the whole range.
func (h *History) Range(q mid.ProcID, from, to mid.Seq) ([]*causal.Message, error) {
	if int(q) >= len(h.entries) || q < 0 || to < from {
		return nil, nil
	}
	e := &h.entries[q]
	var gap error
	if from <= e.base && from >= 1 {
		gap = &CompactedError{Proc: q, Base: e.base}
		from = e.base + 1
	}
	if hi := e.base + mid.Seq(len(e.live())); to > hi {
		to = hi
	}
	if to < from {
		return nil, gap
	}
	out := make([]*causal.Message, 0, to-from+1)
	for s := from; s <= to; s++ {
		out = append(out, e.msgs[e.start+int(s-e.base)-1])
	}
	return out, gap
}

// MaxSeq returns the highest sequence number of q ever stored (including
// purged prefixes), i.e. base + retained count.
func (h *History) MaxSeq(q mid.ProcID) mid.Seq {
	if int(q) >= len(h.entries) || q < 0 {
		return 0
	}
	e := &h.entries[q]
	return e.base + mid.Seq(len(e.live()))
}

// Base returns the highest purged (stable) sequence number of q.
func (h *History) Base(q mid.ProcID) mid.Seq {
	if int(q) >= len(h.entries) || q < 0 {
		return 0
	}
	return h.entries[q].base
}

// CleanTo purges, for every sender q, the messages with sequence number
// <= stable[q]. It never purges beyond what is stored and never un-purges.
// It returns the number of messages released.
//
// Purged messages are never pinned: their slots are nilled immediately, so
// the only memory retained past a purge is the dead prefix of pointer
// slots (8 bytes each), and the slice is compacted — releasing the whole
// backing array — as soon as the dead prefix exceeds half of it. This
// amortizes the old copy-the-tail-on-every-clean behaviour to O(1) slot
// writes per purged message instead of O(live) copies per clean.
func (h *History) CleanTo(stable mid.SeqVector) int {
	released := 0
	for q := range h.entries {
		if q >= len(stable) {
			break
		}
		e := &h.entries[q]
		target := stable[q]
		if hi := e.base + mid.Seq(len(e.live())); target > hi {
			target = hi
		}
		if target <= e.base {
			continue
		}
		drop := int(target - e.base)
		for i := e.start; i < e.start+drop; i++ {
			e.msgs[i] = nil // release the message even before compaction
		}
		e.start += drop
		e.base = target
		released += drop
		h.total -= drop
		if e.start*2 >= len(e.msgs) {
			live := e.live()
			if len(live) == 0 {
				e.msgs = nil
			} else {
				tail := make([]*causal.Message, len(live))
				copy(tail, live)
				e.msgs = tail
			}
			e.start = 0
		}
	}
	return released
}

// InstallBases sets every sender's purge base to the given stability
// watermark — the joiner's bootstrap: the history starts logically "already
// cleaned" through the watermark, so storing resumes at watermark+1 per
// sequence. Valid only on an empty history; installing over retained
// messages would corrupt the base/seq invariant.
func (h *History) InstallBases(watermark mid.SeqVector) error {
	if h.total != 0 {
		return fmt.Errorf("history: installing bases over %d retained messages", h.total)
	}
	for q := range h.entries {
		e := &h.entries[q]
		if len(e.msgs) != 0 {
			return fmt.Errorf("history: installing bases over non-empty entry p%d", q)
		}
		if q < len(watermark) && watermark[q] > e.base {
			e.base = watermark[q]
		}
	}
	return nil
}

// Skip advances sender q's purge base to seq, releasing any retained
// messages at or below it — the receiver-side half of a Compacted
// fast-forward: the range was purged as uniformly stable everywhere alive,
// so this history will never store it. Unlike CleanTo, the base may jump
// past the stored frontier (the skipped messages were never received here).
// Moving backwards is a no-op. Returns the number of messages released.
func (h *History) Skip(q mid.ProcID, seq mid.Seq) int {
	if int(q) >= len(h.entries) || q < 0 {
		return 0
	}
	e := &h.entries[q]
	if seq <= e.base {
		return 0
	}
	released := 0
	if hi := e.base + mid.Seq(len(e.live())); seq < hi {
		// Partial purge of the retained suffix, exactly like CleanTo.
		drop := int(seq - e.base)
		for i := e.start; i < e.start+drop; i++ {
			e.msgs[i] = nil
		}
		e.start += drop
		released = drop
	} else {
		// The jump clears (or overshoots) everything retained.
		released = len(e.live())
		e.msgs = nil
		e.start = 0
	}
	e.base = seq
	h.total -= released
	if e.msgs != nil && e.start*2 >= len(e.msgs) {
		live := e.live()
		if len(live) == 0 {
			e.msgs = nil
		} else {
			tail := make([]*causal.Message, len(live))
			copy(tail, live)
			e.msgs = tail
		}
		e.start = 0
	}
	return released
}

// Len returns the number of messages currently retained across all senders.
// This is the quantity plotted in Fig. 6 of the paper.
func (h *History) Len() int { return h.total }

// PerSender returns the retained count per sender.
func (h *History) PerSender() []int {
	out := make([]int, len(h.entries))
	for i := range h.entries {
		out[i] = len(h.entries[i].live())
	}
	return out
}

// Stored returns a vector with, per sender, the highest stored sequence
// number. It equals the process's last_processed vector when every processed
// message is stored, which the protocol guarantees.
func (h *History) Stored() mid.SeqVector {
	v := mid.NewSeqVector(len(h.entries))
	for q := range h.entries {
		v[q] = h.MaxSeq(mid.ProcID(q))
	}
	return v
}

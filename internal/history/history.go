// Package history implements the urcgc history buffer (Section 4): a table
// with one entry per group member holding, in sequence order, the processed
// messages that member generated. The history serves two purposes:
//
//   - recovery: a process missing messages asks a more updated peer, which
//     answers out of its history;
//   - ordering bookkeeping: the i-th entry describes the dependence among
//     p_i's own messages, while cross-sequence dependence travels inside
//     each message.
//
// Messages are purged only when stable — processed by every active process —
// which the coordinator decides and announces in the clean_to vector of its
// decision. Because stability is a global agreement, all histories stay
// roughly the same length; Fig. 6 of the paper plots exactly this length,
// and Len/PerSender expose it.
package history

import (
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// entry holds one sender's retained suffix of messages. The retained
// messages are msgs[start:]; msgs[start] has sequence number base+1, so the
// retained range is [base+1, base+len(msgs)-start]. The dead prefix
// msgs[:start] holds nil slots: purging nils the slot (so no purged
// *Message is ever pinned) and advances start, deferring the O(live)
// compaction until the dead prefix dominates the backing array.
type entry struct {
	base  mid.Seq
	start int
	msgs  []*causal.Message
}

// live returns the retained suffix.
func (e *entry) live() []*causal.Message { return e.msgs[e.start:] }

// History is the per-process history buffer. It is not safe for concurrent
// use; the protocol owns it from a single goroutine.
type History struct {
	entries []entry
	total   int
}

// New returns an empty history for a group of n processes.
func New(n int) *History {
	return &History{entries: make([]entry, n)}
}

// N returns the group cardinality the history was sized for.
func (h *History) N() int { return len(h.entries) }

// Store saves a processed message. Messages of one sequence must be stored
// contiguously in sequence order — the protocol processes them that way —
// and storing out of order is a bug, reported as an error.
func (h *History) Store(m *causal.Message) error {
	p := m.ID.Proc
	if int(p) >= len(h.entries) || p < 0 {
		return fmt.Errorf("history: message %v from process outside group of %d", m.ID, len(h.entries))
	}
	e := &h.entries[p]
	want := e.base + mid.Seq(len(e.live())) + 1
	if m.ID.Seq != want {
		return fmt.Errorf("history: storing %v out of order (next expected seq %d)", m.ID, want)
	}
	e.msgs = append(e.msgs, m)
	h.total++
	return nil
}

// Get returns the retained message (q, s), or nil if it is outside the
// retained range (never stored, or already purged as stable).
func (h *History) Get(q mid.ProcID, s mid.Seq) *causal.Message {
	if int(q) >= len(h.entries) || q < 0 || s == 0 {
		return nil
	}
	e := &h.entries[q]
	if s <= e.base || s > e.base+mid.Seq(len(e.live())) {
		return nil
	}
	return e.msgs[e.start+int(s-e.base)-1]
}

// Range returns the retained messages (q, from..to), inclusive, clipped to
// the retained range. The result is in sequence order.
func (h *History) Range(q mid.ProcID, from, to mid.Seq) []*causal.Message {
	if int(q) >= len(h.entries) || q < 0 || to < from {
		return nil
	}
	e := &h.entries[q]
	if from <= e.base {
		from = e.base + 1
	}
	if hi := e.base + mid.Seq(len(e.live())); to > hi {
		to = hi
	}
	if to < from {
		return nil
	}
	out := make([]*causal.Message, 0, to-from+1)
	for s := from; s <= to; s++ {
		out = append(out, e.msgs[e.start+int(s-e.base)-1])
	}
	return out
}

// MaxSeq returns the highest sequence number of q ever stored (including
// purged prefixes), i.e. base + retained count.
func (h *History) MaxSeq(q mid.ProcID) mid.Seq {
	if int(q) >= len(h.entries) || q < 0 {
		return 0
	}
	e := &h.entries[q]
	return e.base + mid.Seq(len(e.live()))
}

// Base returns the highest purged (stable) sequence number of q.
func (h *History) Base(q mid.ProcID) mid.Seq {
	if int(q) >= len(h.entries) || q < 0 {
		return 0
	}
	return h.entries[q].base
}

// CleanTo purges, for every sender q, the messages with sequence number
// <= stable[q]. It never purges beyond what is stored and never un-purges.
// It returns the number of messages released.
//
// Purged messages are never pinned: their slots are nilled immediately, so
// the only memory retained past a purge is the dead prefix of pointer
// slots (8 bytes each), and the slice is compacted — releasing the whole
// backing array — as soon as the dead prefix exceeds half of it. This
// amortizes the old copy-the-tail-on-every-clean behaviour to O(1) slot
// writes per purged message instead of O(live) copies per clean.
func (h *History) CleanTo(stable mid.SeqVector) int {
	released := 0
	for q := range h.entries {
		if q >= len(stable) {
			break
		}
		e := &h.entries[q]
		target := stable[q]
		if hi := e.base + mid.Seq(len(e.live())); target > hi {
			target = hi
		}
		if target <= e.base {
			continue
		}
		drop := int(target - e.base)
		for i := e.start; i < e.start+drop; i++ {
			e.msgs[i] = nil // release the message even before compaction
		}
		e.start += drop
		e.base = target
		released += drop
		h.total -= drop
		if e.start*2 >= len(e.msgs) {
			live := e.live()
			if len(live) == 0 {
				e.msgs = nil
			} else {
				tail := make([]*causal.Message, len(live))
				copy(tail, live)
				e.msgs = tail
			}
			e.start = 0
		}
	}
	return released
}

// Len returns the number of messages currently retained across all senders.
// This is the quantity plotted in Fig. 6 of the paper.
func (h *History) Len() int { return h.total }

// PerSender returns the retained count per sender.
func (h *History) PerSender() []int {
	out := make([]int, len(h.entries))
	for i := range h.entries {
		out[i] = len(h.entries[i].live())
	}
	return out
}

// Stored returns a vector with, per sender, the highest stored sequence
// number. It equals the process's last_processed vector when every processed
// message is stored, which the protocol guarantees.
func (h *History) Stored() mid.SeqVector {
	v := mid.NewSeqVector(len(h.entries))
	for q := range h.entries {
		v[q] = h.MaxSeq(mid.ProcID(q))
	}
	return v
}

package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTickMerge(t *testing.T) {
	a := New(3)
	a.Tick(1)
	a.Tick(1)
	b := New(3)
	b.Tick(0)
	a.Merge(b)
	if !a.Equal(VT{1, 2, 0}) {
		t.Errorf("merged = %v", a)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b VT
		want Ordering
	}{
		{VT{1, 0}, VT{1, 0}, Same},
		{VT{1, 0}, VT{1, 1}, Before},
		{VT{2, 1}, VT{1, 1}, After},
		{VT{1, 0}, VT{0, 1}, Concurrent},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: Compare = %v, want %v", i, got, c.want)
		}
	}
}

func TestOrderingString(t *testing.T) {
	for o, s := range map[Ordering]string{Before: "before", After: "after", Same: "same", Concurrent: "concurrent"} {
		if o.String() != s {
			t.Errorf("%v", o)
		}
	}
}

func TestDeliverable(t *testing.T) {
	local := VT{2, 1, 0}
	// Next from sender 0 with no cross-run-ahead.
	if !Deliverable(VT{3, 1, 0}, 0, local) {
		t.Error("should be deliverable")
	}
	// Gap in sender's own sequence.
	if Deliverable(VT{4, 1, 0}, 0, local) {
		t.Error("gap must block")
	}
	// Already delivered.
	if Deliverable(VT{2, 1, 0}, 0, local) {
		t.Error("duplicate must not be deliverable")
	}
	// Cross entry runs ahead.
	if Deliverable(VT{3, 2, 0}, 0, local) {
		t.Error("cross dependency must block")
	}
	// Out-of-range sender.
	if Deliverable(VT{1, 0, 0}, 9, local) {
		t.Error("bad sender")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := VT{1, 2}
	b := a.Clone()
	b.Tick(0)
	if a[0] != 1 {
		t.Error("clone must be independent")
	}
}

// Property: Merge is the least upper bound — it dominates both inputs, and
// any vector dominating both inputs dominates the merge.
func TestMergeIsLUB(t *testing.T) {
	f := func(xs, ys [4]uint8) bool {
		a, b := New(4), New(4)
		for i := 0; i < 4; i++ {
			a[i], b[i] = uint32(xs[i]), uint32(ys[i])
		}
		m := a.Clone()
		m.Merge(b)
		if !a.LE(m) || !b.LE(m) {
			return false
		}
		// Anything dominating both dominates m.
		up := New(4)
		for i := range up {
			up[i] = a[i] + b[i]
		}
		return m.LE(up)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: simulating a causal history and delivering messages as soon as
// Deliverable admits them yields exactly one delivery per message at every
// process, in an order where Before-related timestamps are respected.
func TestDeliverableRespectsCausality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	type msg struct {
		sender int
		ts     VT
	}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		// Generate a causal run: each process alternately sends and
		// "receives" some prior message (merging clocks).
		clocks := make([]VT, n)
		for i := range clocks {
			clocks[i] = New(n)
		}
		var msgs []msg
		for step := 0; step < 40; step++ {
			p := rng.Intn(n)
			if len(msgs) > 0 && rng.Intn(2) == 0 {
				m := msgs[rng.Intn(len(msgs))]
				clocks[p].Merge(m.ts)
				continue
			}
			clocks[p].Tick(p)
			msgs = append(msgs, msg{sender: p, ts: clocks[p].Clone()})
		}
		// Deliver at a fresh observer in random arrival order with retry.
		local := New(n)
		pending := append([]msg(nil), msgs...)
		rng.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
		delivered := 0
		for progress := true; progress; {
			progress = false
			rest := pending[:0]
			for _, m := range pending {
				if Deliverable(m.ts, m.sender, local) {
					local[m.sender]++
					delivered++
					progress = true
				} else {
					rest = append(rest, m)
				}
			}
			pending = rest
		}
		if delivered != len(msgs) || len(pending) != 0 {
			t.Fatalf("trial %d: delivered %d of %d", trial, delivered, len(msgs))
		}
	}
}

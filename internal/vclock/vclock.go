// Package vclock implements the vector timestamps CBCAST (Birman, Schiper,
// Stephenson 1991) uses to enforce causal delivery. Each process keeps a
// vector counting, per group member, how many of that member's broadcasts it
// has delivered; a message stamped with the sender's vector is deliverable
// when it is the next from its sender and its cross entries do not run ahead
// of the receiver.
package vclock

import "fmt"

// VT is a vector timestamp over a group of fixed cardinality.
type VT []uint32

// New returns a zero vector for n processes.
func New(n int) VT { return make(VT, n) }

// Clone returns an independent copy.
func (v VT) Clone() VT {
	out := make(VT, len(v))
	copy(out, v)
	return out
}

// Tick increments entry i (a send or delivery by process i).
func (v VT) Tick(i int) {
	v[i]++
}

// Merge raises each entry of v to the max with o.
func (v VT) Merge(o VT) {
	for i := range v {
		if i < len(o) && o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// LE reports whether v <= o pointwise.
func (v VT) LE(o VT) bool {
	for i := range v {
		var x uint32
		if i < len(o) {
			x = o[i]
		}
		if v[i] > x {
			return false
		}
	}
	return true
}

// Equal reports pointwise equality.
func (v VT) Equal(o VT) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Ordering relates two timestamps.
type Ordering int

// Possible orderings of two vector timestamps.
const (
	Before Ordering = iota
	After
	Same
	Concurrent
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Before:
		return "before"
	case After:
		return "after"
	case Same:
		return "same"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// Compare classifies v against o.
func (v VT) Compare(o VT) Ordering {
	le, ge := v.LE(o), o.LE(v)
	switch {
	case le && ge:
		return Same
	case le:
		return Before
	case ge:
		return After
	default:
		return Concurrent
	}
}

// Deliverable implements the CBCAST delivery test at a receiver with local
// vector local: a message stamped ts by sender is deliverable iff it is the
// sender's next broadcast (ts[sender] == local[sender]+1) and every other
// entry of ts is already covered locally (ts[k] <= local[k], k != sender).
func Deliverable(ts VT, sender int, local VT) bool {
	if sender < 0 || sender >= len(ts) {
		return false
	}
	for k := range ts {
		var have uint32
		if k < len(local) {
			have = local[k]
		}
		if k == sender {
			if ts[k] != have+1 {
				return false
			}
			continue
		}
		if ts[k] > have {
			return false
		}
	}
	return true
}

// String renders the vector compactly.
func (v VT) String() string {
	return fmt.Sprint([]uint32(v))
}

package core

import (
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/simnet"
	"urcgc/internal/trace"
)

// TestShortPartitionHeals: a cut shorter than the K detection window is
// just a burst of omissions — nobody is declared crashed, and after the
// heal every message is recovered from history and the group reconverges.
func TestShortPartitionHeals(t *testing.T) {
	k := 4
	cut := fault.Partition{
		From:  sim.StartOfSubrun(6),
		To:    sim.StartOfSubrun(8), // 2 subruns < K
		SideA: map[mid.ProcID]bool{0: true, 1: true, 2: true},
	}
	c, err := NewCluster(ClusterConfig{
		Config:   Config{N: 6, K: k, R: 2*k + 2, SelfExclusion: true},
		Seed:     41,
		Injector: cut,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(6)
	c.Trace = rec
	perProc := 12
	res, err := c.Run(RunOptions{
		MaxRounds: 600, MinRounds: 2 * 2 * perProc,
		OnRound:           steadyWorkload(c, 2, perProc),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatalf("never reconverged after heal; left=%v", c.Left)
	}
	if len(c.Left) != 0 {
		t.Fatalf("a sub-K partition must not evict anyone: %v", c.Left)
	}
	for i := 0; i < 6; i++ {
		p := mid.ProcID(i)
		if c.Proc(p).View().AliveCount() != 6 {
			t.Errorf("proc %d view shrank to %v", i, c.Proc(p).View())
		}
		for q := 0; q < 6; q++ {
			if got := c.Proc(p).Processed()[q]; got != mid.Seq(perProc) {
				t.Errorf("proc %d processed %d of p%d's, want %d", i, got, q, perProc)
			}
		}
	}
	if v := rec.Verify(); len(v) != 0 {
		t.Fatalf("URCGC clauses violated:\n%v", v)
	}
}

// TestLongPartitionStaysSafe: a cut far longer than K violates the paper's
// resilience assumption (each side loses more than t=(n-1)/2 peers per
// subrun), so liveness is forfeit — both sides declare the other crashed,
// and on heal the colliding decisions drive mutual suicides. SAFETY must
// still hold: whatever processes remain active agree exactly, and the
// offline verifier finds no clause violation among the survivors.
func TestLongPartitionStaysSafe(t *testing.T) {
	k := 2
	cut := fault.Partition{
		From:  sim.StartOfSubrun(6),
		To:    sim.StartOfSubrun(16), // 10 subruns >> K
		SideA: map[mid.ProcID]bool{0: true, 1: true},
	}
	c, err := NewCluster(ClusterConfig{
		Config:   Config{N: 5, K: k, R: 2*k + 1, SelfExclusion: true},
		Seed:     42,
		Injector: cut,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(5)
	c.Trace = rec
	_, err = c.Run(RunOptions{
		MaxRounds: 400,
		OnRound:   steadyWorkload(c, 2, 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever survived agrees (checkUniformity covers the active set; an
	// empty active set is the degenerate-but-safe outcome).
	checkUniformity(t, c)
	checkCausalOrder(t, c)
	if v := rec.Verify(); len(v) != 0 {
		t.Fatalf("URCGC clauses violated under split brain:\n%v", v)
	}
	// The split was detected: at least one side excluded the other.
	excluded := false
	for i := 0; i < 5; i++ {
		if !c.Proc(mid.ProcID(i)).View().Alive(0) || !c.Proc(mid.ProcID(i)).View().Alive(4) {
			excluded = true
		}
	}
	if !excluded && len(c.Left) == 0 {
		t.Error("a 10-subrun partition should leave visible scars")
	}
}

// TestTwoSiteTopologyConverges runs the protocol over a heterogeneous
// latency model (two fast sites joined by a slow link): everything still
// converges within the rounds, with delays reflecting the topology.
func TestTwoSiteTopologyConverges(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Config: Config{N: 6, K: 3, R: 8, SelfExclusion: true},
		Seed:   43,
		Latency: simnet.TwoSiteLatency(
			map[mid.ProcID]bool{0: true, 1: true, 2: true},
			sim.TicksPerRound/10,   // fast LAN
			sim.TicksPerRound*8/10, // slow inter-site link
			sim.TicksPerRound/20,
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	perProc := 10
	res, err := c.Run(RunOptions{
		MaxRounds: 400, MinRounds: 2 * 2 * perProc,
		OnRound:           steadyWorkload(c, 2, perProc),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent over the two-site topology")
	}
	checkUniformity(t, c)
	if len(c.Left) != 0 {
		t.Errorf("slow links are not failures: %v", c.Left)
	}
}

package core

import (
	"fmt"
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/group"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

func baseCfg(n int) Config {
	return Config{N: n, K: 2, R: 8, SelfExclusion: true}
}

// checkCausalOrder asserts each process's log respects the causal relation:
// every message appears after all its effective dependencies.
func checkCausalOrder(t *testing.T, c *Cluster) {
	t.Helper()
	// Rebuild the message population from the logs to know the deps.
	for i, log := range c.ProcessedLog {
		seen := make(map[mid.MID]bool, len(log))
		last := mid.NewSeqVector(c.N())
		for _, id := range log {
			if id.Seq != last[id.Proc]+1 {
				t.Fatalf("proc %d log breaks sequence contiguity at %v (last %d)", i, id, last[id.Proc])
			}
			last[id.Proc] = id.Seq
			seen[id] = true
		}
	}
}

// checkUniformity asserts all active processes processed exactly the same
// messages (Uniform Atomicity restricted to survivors) and that ordering
// agreed (same per-sequence prefixes follow from contiguity + equal counts).
func checkUniformity(t *testing.T, c *Cluster) {
	t.Helper()
	var ref mid.SeqVector
	var refID mid.ProcID
	for _, p := range c.ActiveSet() {
		v := c.Proc(p).Processed()
		if ref == nil {
			ref, refID = v, p
			continue
		}
		if !ref.Equal(v) {
			t.Fatalf("active processes %d and %d disagree: %v vs %v", refID, p, ref, v)
		}
	}
}

// steadyWorkload submits one message at every process every period rounds,
// for total messages per process, with a cross dependency on the latest
// processed message of the previous process (a ring of causal relations).
func steadyWorkload(c *Cluster, period, perProc int) func(round int) {
	return func(round int) {
		if round%period != 0 {
			return
		}
		k := round / period
		if k >= perProc {
			return
		}
		for i := 0; i < c.N(); i++ {
			p := mid.ProcID(i)
			if !c.Active(p) {
				continue
			}
			prev := mid.ProcID((i + c.N() - 1) % c.N())
			var deps mid.DepList
			if s := c.Proc(p).Processed()[prev]; s > 0 {
				deps = mid.DepList{{Proc: prev, Seq: s}}
			}
			if _, err := c.Submit(p, []byte(fmt.Sprintf("m%d-%d", i, k)), deps); err != nil {
				panic(err)
			}
		}
	}
}

func TestReliableRunConverges(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Config: baseCfg(5), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perProc := 10
	res, err := c.Run(RunOptions{
		MaxRounds: 400, MinRounds: 2 * 2 * perProc,
		OnRound:           steadyWorkload(c, 2, perProc),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("group never became quiescent")
	}
	checkUniformity(t, c)
	checkCausalOrder(t, c)
	want := mid.Seq(perProc)
	for i := 0; i < 5; i++ {
		v := c.Proc(mid.ProcID(i)).Processed()
		for q := 0; q < 5; q++ {
			if v[q] != want {
				t.Fatalf("proc %d processed %d of p%d's messages, want %d", i, v[q], q, want)
			}
		}
	}
	if len(c.Left) != 0 {
		t.Fatalf("no process should leave under reliable conditions: %v", c.Left)
	}
}

func TestReliableDelayIsHalfRTD(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Config: baseCfg(5), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(RunOptions{
		MaxRounds: 200, MinRounds: 80,
		OnRound:           steadyWorkload(c, 2, 15),
		StopWhenQuiescent: true, DrainSubruns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Delay.MeanRTD()
	// One-way latency is 0.25-0.35 rtd; self-processing is immediate, so the
	// mean sits a bit below the paper's >= 0.5 rtd bound computed for remote
	// processing only. Assert the remote-dominated band.
	if d < 0.15 || d > 0.6 {
		t.Errorf("reliable mean delay = %.3f rtd, want within [0.15, 0.6]", d)
	}
}

func TestHistoryCleanedUnderReliableRun(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Config: baseCfg(5), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(RunOptions{
		MaxRounds: 400, MinRounds: 120,
		OnRound:           steadyWorkload(c, 2, 30),
		StopWhenQuiescent: true, DrainSubruns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: without failures no more than 2n messages are retained.
	if maxH := c.HistMax.Max(); maxH > float64(2*c.N()) {
		t.Errorf("history peaked at %v, want <= 2n = %d", maxH, 2*c.N())
	}
	// After draining, histories must be fully cleaned.
	for i := 0; i < c.N(); i++ {
		if h := c.Proc(mid.ProcID(i)).HistoryLen(); h > c.N() {
			t.Errorf("proc %d retains %d messages after drain", i, h)
		}
	}
}

func TestCrashedProcessIsDeclaredAndExcluded(t *testing.T) {
	crashAt := sim.StartOfSubrun(3)
	c, err := NewCluster(ClusterConfig{
		Config:   baseCfg(5),
		Seed:     4,
		Injector: fault.Crash{Proc: 4, At: crashAt},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunOptions{
		MaxRounds: 300, MinRounds: 60,
		OnRound:           steadyWorkload(c, 2, 12),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("group never became quiescent despite the crash")
	}
	checkUniformity(t, c)
	for _, p := range c.ActiveSet() {
		if c.Proc(p).View().Alive(4) {
			t.Errorf("proc %d still believes 4 alive", p)
		}
	}
	// Survivors processed all of each other's messages.
	for _, p := range c.ActiveSet() {
		v := c.Proc(p).Processed()
		for q := 0; q < 4; q++ {
			if v[q] != 12 {
				t.Errorf("proc %d processed %d of p%d's, want 12", p, v[q], q)
			}
		}
	}
}

func TestCoordinatorCrashDoesNotBlock(t *testing.T) {
	// Process 0 coordinates subrun 0, 5, 10...; crash it right before its
	// second stint, mid-run.
	c, err := NewCluster(ClusterConfig{
		Config:   baseCfg(5),
		Seed:     5,
		Injector: fault.Crash{Proc: 0, At: sim.StartOfSubrun(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunOptions{
		MaxRounds: 300, MinRounds: 80,
		OnRound:           steadyWorkload(c, 2, 15),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("group never became quiescent despite coordinator crash")
	}
	checkUniformity(t, c)
	// Decisions kept flowing: later subruns produced decisions from other
	// coordinators. Count decisions observed by a survivor.
	if c.Decisions[1] < 10 {
		t.Errorf("survivor observed only %d decisions", c.Decisions[1])
	}
	// History still got cleaned after the crash (stability achieved on the
	// new group).
	for _, p := range c.ActiveSet() {
		if h := c.Proc(p).HistoryLen(); h > 2*c.N() {
			t.Errorf("proc %d history %d not cleaned after crash", p, h)
		}
	}
}

func TestOmissionRecoveryFromHistory(t *testing.T) {
	// Drop 3% of packets in the first 10 rtd. K=3 keeps isolated request
	// losses from triggering spurious crash declarations; every lost DATA
	// message must be recovered from history.
	cfg := Config{N: 5, K: 3, R: 8, SelfExclusion: true}
	c, err := NewCluster(ClusterConfig{
		Config: cfg,
		Seed:   6,
		Injector: fault.During{
			From: 0, To: 10 * sim.TicksPerRTD,
			Inner: fault.NewRate(0.03, fault.AtSend, 1234),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunOptions{
		MaxRounds: 600, MinRounds: 80,
		OnRound:           steadyWorkload(c, 2, 15),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("group never recovered from omissions")
	}
	checkUniformity(t, c)
	checkCausalOrder(t, c)
	if len(c.Left) != 0 {
		t.Fatalf("processes left under mild omissions: %v", c.Left)
	}
	for _, p := range c.ActiveSet() {
		v := c.Proc(p).Processed()
		for q := 0; q < 5; q++ {
			if v[q] != 15 {
				t.Fatalf("proc %d processed %d of p%d's, want 15", p, v[q], q)
			}
		}
	}
	// Recovery actually happened.
	recoveries := 0
	for i := 0; i < 5; i++ {
		recoveries += c.Proc(mid.ProcID(i)).Stats.Recoveries
	}
	if recoveries == 0 {
		t.Error("expected recovery traffic under omissions")
	}
}

func TestSendFaultyProcessSuicides(t *testing.T) {
	// Process 3's sends all vanish from subrun 2 on: it stays alive and
	// keeps receiving, so it must learn it was declared crashed and commit
	// suicide.
	c, err := NewCluster(ClusterConfig{
		Config: baseCfg(5),
		Seed:   7,
		Injector: fault.During{
			From: sim.StartOfSubrun(2), To: 1 << 40,
			Inner: fault.OnlyProc{Proc: 3, Inner: &fault.EveryNth{N: 1, Side: fault.AtSend}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(RunOptions{
		MaxRounds: 200, MinRounds: 60,
		OnRound: steadyWorkload(c, 2, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if reason, ok := c.Left[3]; !ok || reason != Suicide {
		t.Fatalf("process 3 should have committed suicide, Left = %v", c.Left)
	}
	for _, p := range c.ActiveSet() {
		if c.Proc(p).View().Alive(3) {
			t.Errorf("proc %d still believes 3 alive", p)
		}
	}
	checkUniformity(t, c)
}

func TestOrphanedSequenceIsDiscarded(t *testing.T) {
	// p0 submits msg1 whose broadcast is entirely lost (all p0 sends in
	// subrun 0 dropped), then msg2 which arrives. Receivers wait for msg1.
	// p0 crashes before any recovery can succeed. The group must agree to
	// destroy msg2 everywhere and move on.
	inj := fault.Multi{
		fault.During{
			From: 0, To: sim.StartOfSubrun(1),
			Inner: fault.OnlyProc{Proc: 0, Inner: &fault.EveryNth{N: 1, Side: fault.AtSend}},
		},
		fault.Crash{Proc: 0, At: sim.StartOfRound(2) + 400},
	}
	c, err := NewCluster(ClusterConfig{Config: baseCfg(5), Seed: 8, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(RunOptions{
		MaxRounds: 200, MinRounds: 40,
		OnRound: func(round int) {
			switch round {
			case 0:
				if _, err := c.Submit(0, []byte("lost"), nil); err != nil {
					panic(err)
				}
			case 2:
				if _, err := c.Submit(0, []byte("orphan"), nil); err != nil {
					panic(err)
				}
			case 4:
				// Keep the group busy so decisions flow.
				for i := 1; i < 5; i++ {
					if _, err := c.Submit(mid.ProcID(i), []byte("x"), nil); err != nil {
						panic(err)
					}
				}
			}
		},
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every survivor discarded msg2 and processed nothing from p0.
	discards := 0
	for _, p := range c.ActiveSet() {
		if got := c.Proc(p).Processed()[0]; got != 0 {
			t.Errorf("proc %d processed %d of p0's messages, want 0", p, got)
		}
		discards += len(c.DiscardLog[p])
		if c.Proc(p).WaitingLen() != 0 {
			t.Errorf("proc %d still has %d waiting", p, c.Proc(p).WaitingLen())
		}
	}
	if discards == 0 {
		t.Error("expected agreed discards of the orphaned message")
	}
	checkUniformity(t, c)
	if len(c.Left) != 0 {
		t.Errorf("no survivor should self-exclude: %v", c.Left)
	}
}

func TestFlowControlBoundsHistory(t *testing.T) {
	cfg := baseCfg(4)
	cfg.HistoryThreshold = 8 // very tight: 2n
	c, err := NewCluster(ClusterConfig{Config: cfg, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Submit a big burst up front; flow control must pace it out.
	for i := 0; i < 4; i++ {
		for k := 0; k < 20; k++ {
			if _, err := c.Submit(mid.ProcID(i), []byte("burst"), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := c.Run(RunOptions{
		MaxRounds: 2000, MinRounds: 10,
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("burst never drained")
	}
	checkUniformity(t, c)
	// The bound: a process checks the threshold before generating, so the
	// history can overshoot by at most one generation wave (n messages).
	limit := float64(cfg.HistoryThreshold + cfg.N)
	if got := c.HistMax.Max(); got > limit {
		t.Errorf("history peaked at %v, want <= %v", got, limit)
	}
	for i := 0; i < 4; i++ {
		if v := c.Proc(mid.ProcID(i)).Processed(); v.Sum() != 80 {
			t.Fatalf("proc %d processed %d, want 80", i, v.Sum())
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() [][]mid.MID {
		c, err := NewCluster(ClusterConfig{
			Config:   baseCfg(5),
			Seed:     42,
			Injector: fault.Multi{fault.Crash{Proc: 2, At: sim.StartOfSubrun(4)}, &fault.EveryNth{N: 11, Side: fault.AtSend}},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Run(RunOptions{
			MaxRounds: 300, MinRounds: 60,
			OnRound:           steadyWorkload(c, 2, 10),
			StopWhenQuiescent: true, DrainSubruns: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c.ProcessedLog
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("proc %d: %d vs %d processed", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("proc %d diverges at %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestCoordinatorOfSkipsCrashed(t *testing.T) {
	gv := group.NewView(4)
	gv.MarkCrashed(1)
	if got := CoordinatorOf(1, gv); got != 2 {
		t.Errorf("CoordinatorOf(1) = %d, want 2 (skipping crashed 1)", got)
	}
	if got := CoordinatorOf(5, gv); got != 2 {
		t.Errorf("CoordinatorOf(5) = %d, want 2", got)
	}
	if got := CoordinatorOf(0, gv); got != 0 {
		t.Errorf("CoordinatorOf(0) = %d, want 0", got)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{N: 5, K: 2, R: 5, SelfExclusion: true}, true},
		{Config{N: 0, K: 2, R: 5}, false},
		{Config{N: 5, K: 0, R: 5}, false},
		{Config{N: 5, K: 2, R: 0}, false},
		{Config{N: 5, K: 2, R: 4, SelfExclusion: true}, false}, // R <= 2K
		{Config{N: 5, K: 2, R: 4, SelfExclusion: false}, true}, // relaxed without self-exclusion
		{Config{N: 5, K: 2, R: 5, HistoryThreshold: -1}, false},
	}
	for i, cse := range cases {
		if err := cse.cfg.Validate(); (err == nil) != cse.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, cse.ok)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Config: baseCfg(3), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Proc(0)
	if _, err := p.Submit(nil, mid.DepList{{Proc: 0, Seq: 1}}); err == nil {
		t.Error("own-sequence explicit dep must be rejected")
	}
	if _, err := p.Submit(nil, mid.DepList{{Proc: 1, Seq: 5}}); err == nil {
		t.Error("dep on unprocessed message must be rejected")
	}
	if _, err := p.Submit(nil, mid.DepList{{}}); err == nil {
		t.Error("zero dep must be rejected")
	}
	id, err := p.Submit([]byte("ok"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != (mid.MID{Proc: 0, Seq: 1}) {
		t.Errorf("first MID = %v", id)
	}
}

func TestSingletonGroup(t *testing.T) {
	cfg := Config{N: 1, K: 1, R: 3, SelfExclusion: true}
	c, err := NewCluster(ClusterConfig{Config: cfg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if _, err := c.Submit(0, []byte("solo"), nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Run(RunOptions{MaxRounds: 100, MinRounds: 12, StopWhenQuiescent: true, DrainSubruns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("singleton never quiescent")
	}
	if got := c.Proc(0).Processed()[0]; got != 5 {
		t.Errorf("processed %d, want 5", got)
	}
	if h := c.Proc(0).HistoryLen(); h != 0 {
		t.Errorf("history %d after drain, want 0 (self-stability)", h)
	}
}

package core

import (
	"math/rand"
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/trace"
)

// TestTraceVerifierOnFaultyRuns runs randomized faulty scenarios with the
// independent offline verifier attached: the trace package reconstructs the
// causal relation from the recorded labels and re-checks every URCGC clause
// without trusting the protocol's own bookkeeping.
func TestTraceVerifierOnFaultyRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(4)
		cfg := Config{N: n, K: 3, R: 8, SelfExclusion: true}
		var inj fault.Multi
		if rng.Intn(2) == 0 {
			inj = append(inj, fault.Crash{
				Proc: mid.ProcID(rng.Intn(n)),
				At:   sim.Time(rng.Int63n(int64(15 * sim.TicksPerRTD))),
			})
		}
		inj = append(inj, fault.During{
			From: 0, To: 15 * sim.TicksPerRTD,
			Inner: fault.NewRate(0.02, fault.AtSend, rng.Int63()),
		})
		c, err := NewCluster(ClusterConfig{Config: cfg, Seed: rng.Int63(), Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder(n)
		c.Trace = rec
		perProc := 8
		res, err := c.Run(RunOptions{
			MaxRounds: 1000, MinRounds: 2 * 2 * perProc,
			OnRound:           steadyWorkload(c, 2, perProc),
			StopWhenQuiescent: true, DrainSubruns: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.QuiescentAtRound < 0 {
			t.Fatalf("trial %d: never quiescent; left=%v", trial, c.Left)
		}
		if violations := rec.Verify(); len(violations) != 0 {
			t.Fatalf("trial %d: URCGC clauses violated:\n%v\nlog:\n%s",
				trial, violations, rec.Dump())
		}
	}
}

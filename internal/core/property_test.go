package core

import (
	"math/rand"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// TestArrivalOrderIndependence: a single process fed the same causally
// consistent message population in ANY arrival order processes all of it,
// in a causally consistent order, with nothing left waiting. This isolates
// the Recv/waitlist/cascade machinery from the network.
func TestArrivalOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(3)
		// Generate a consistent population: per-sender chains plus random
		// backward cross deps.
		perProc := 2 + rng.Intn(5)
		gen := mid.NewSeqVector(n)
		var msgs []*causal.Message
		for k := 0; k < n*perProc; k++ {
			p := mid.ProcID(k % n)
			if p == 0 {
				// Process 0 is the receiver under test: it only consumes.
				p = mid.ProcID(1 + (k % (n - 1)))
			}
			gen[p]++
			var deps mid.DepList
			for q := 1; q < n; q++ {
				if mid.ProcID(q) != p && gen[q] > 0 && rng.Intn(3) == 0 {
					deps = append(deps, mid.MID{Proc: mid.ProcID(q), Seq: mid.Seq(1 + rng.Intn(int(gen[q])))})
				}
			}
			msgs = append(msgs, &causal.Message{
				ID:   mid.MID{Proc: p, Seq: gen[p]},
				Deps: deps.Canonical(),
			})
		}
		// For the receiver's correctness only acyclicity matters, which
		// backward-in-generation-order cross deps guarantee.
		rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })

		cfg := Config{N: n, K: 3, R: 8, SelfExclusion: false}
		p, _ := newProc(t, 0, cfg)
		for _, m := range msgs {
			p.Recv(m.ID.Proc, &wire.Data{Msg: *m})
		}
		if p.WaitingLen() != 0 {
			t.Fatalf("trial %d: %d messages stuck waiting", trial, p.WaitingLen())
		}
		if int(p.Processed().Sum()) != len(msgs) {
			t.Fatalf("trial %d: processed %d of %d", trial, p.Processed().Sum(), len(msgs))
		}
		// Causal consistency of the processing order is enforced by the
		// tracker itself (it panics on violation), so reaching here with
		// everything processed is the assertion.
	}
}

// TestDecisionIdempotence: applying the same decision twice (e.g. received
// directly and again via a forwarded request) changes nothing.
func TestDecisionIdempotence(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	p, tp := newProc(t, 1, cfg)
	d := &wire.Decision{
		Subrun: 4, Coord: 0,
		MaxProcessed: mid.SeqVector{2, 0, 0},
		MostUpdated:  []mid.ProcID{0, mid.None, mid.None},
		MinWaiting:   mid.NewSeqVector(3),
		CleanTo:      mid.NewSeqVector(3),
		Covered:      []bool{true, true, true},
		Attempts:     make([]uint8, 3),
		Alive:        []bool{true, true, true},
		FullGroup:    true,
	}
	p.Recv(0, d)
	sendsAfterFirst := len(tp.sends)
	p.Recv(0, d.Clone())
	p.Recv(0, d.Clone())
	if len(tp.sends) != sendsAfterFirst {
		t.Errorf("replayed decision caused %d extra sends", len(tp.sends)-sendsAfterFirst)
	}
	if !p.View().Alive(0) || !p.View().Alive(2) {
		t.Error("view corrupted by replay")
	}
}

// TestViewResurrection: a stale (replayed) decision can never bring a
// crashed member back, but a strictly fresher one can — that is how a join
// admission circulates. The decision is authoritative for the view, gated
// on subrun ordering; a truly dead member wrongly kept alive is re-declared
// within K subruns by the same silence counting that declared it first.
func TestViewResurrection(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	p, _ := newProc(t, 0, cfg)
	dead := &wire.Decision{
		Subrun: 5, Coord: 1,
		MaxProcessed: mid.NewSeqVector(3), MostUpdated: []mid.ProcID{mid.None, mid.None, mid.None},
		MinWaiting: mid.NewSeqVector(3), CleanTo: mid.NewSeqVector(3),
		Covered: []bool{true, true, false}, Attempts: []uint8{0, 0, 2},
		Alive: []bool{true, true, false}, FullGroup: true,
	}
	p.Recv(1, dead)
	if p.View().Alive(2) {
		t.Fatal("crash not applied")
	}
	stale := dead.Clone()
	stale.Subrun = 4
	stale.Alive = []bool{true, true, true}
	stale.Attempts = []uint8{0, 0, 0}
	p.Recv(1, stale)
	if p.View().Alive(2) {
		t.Error("stale decision resurrected a crashed process")
	}
	admit := dead.Clone()
	admit.Subrun = 6
	admit.Alive = []bool{true, true, true}
	admit.Attempts = []uint8{0, 0, 0}
	p.Recv(1, admit)
	if !p.View().Alive(2) {
		t.Error("fresh decision must re-admit the member (join circulation)")
	}
}

// TestHistoryNeverRegrows: CleanTo application is monotone — replaying an
// older full-group decision must not resurrect purged history.
func TestHistoryNeverRegrows(t *testing.T) {
	cfg := Config{N: 2, K: 2, R: 5, SelfExclusion: false}
	p, _ := newProc(t, 0, cfg)
	for s := 0; s < 4; s++ {
		if _, err := p.Submit([]byte("m"), nil); err != nil {
			t.Fatal(err)
		}
		p.StartRound(2 * s)
	}
	if p.HistoryLen() != 4 {
		t.Fatalf("history = %d", p.HistoryLen())
	}
	clean := func(subrun int64, to mid.Seq) *wire.Decision {
		return &wire.Decision{
			Subrun: subrun, Coord: 1,
			MaxProcessed: mid.SeqVector{4, 0}, MostUpdated: []mid.ProcID{0, mid.None},
			MinWaiting: mid.NewSeqVector(2), CleanTo: mid.SeqVector{to, 0},
			Covered: []bool{true, true}, Attempts: make([]uint8, 2),
			Alive: []bool{true, true}, FullGroup: true,
		}
	}
	p.Recv(1, clean(10, 3))
	if p.HistoryLen() != 1 {
		t.Fatalf("after clean-to-3, history = %d", p.HistoryLen())
	}
	// A stale lower CleanTo is ignored entirely (stale subrun).
	p.Recv(1, clean(9, 1))
	if p.HistoryLen() != 1 {
		t.Errorf("stale decision regrew history to %d", p.HistoryLen())
	}
	// A newer decision with a LOWER CleanTo (possible when chains restart)
	// must also never regrow.
	p.Recv(1, clean(11, 1))
	if p.HistoryLen() != 1 {
		t.Errorf("newer lower CleanTo regrew history to %d", p.HistoryLen())
	}
}

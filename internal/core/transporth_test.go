package core

import (
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

// TestTransportHShiftsRecoveryIntoTransport exercises the Section 5 trade:
// with h > 1 the transport's retransmissions repair subnet loss, so the
// protocol performs (almost) no recovery from history; with h = 1 the same
// loss surfaces as process omissions repaired from history.
func TestTransportHShiftsRecoveryIntoTransport(t *testing.T) {
	run := func(h int) (recoveries, retries int) {
		cfg := baseCfg(5)
		cfg.K = 3
		c, err := NewCluster(ClusterConfig{
			Config:     cfg,
			Seed:       11,
			TransportH: h,
			Injector: fault.During{
				From: 0, To: 12 * sim.TicksPerRTD,
				Inner: fault.NewRate(0.04, fault.AtSend, 77),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(RunOptions{
			MaxRounds: 600, MinRounds: 60,
			OnRound:           steadyWorkload(c, 2, 15),
			StopWhenQuiescent: true, DrainSubruns: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.QuiescentAtRound < 0 {
			t.Fatalf("h=%d: never quiescent (left=%v)", h, c.Left)
		}
		checkUniformity(t, c)
		for i := 0; i < c.N(); i++ {
			recoveries += c.Proc(mid.ProcID(i)).Stats.Recoveries
			if e := c.TransportEntity(mid.ProcID(i)); e != nil {
				retries += e.Stats.Retries
			}
		}
		return recoveries, retries
	}
	rec1, ret1 := run(1)
	rec4, ret4 := run(4)
	if ret1 != 0 {
		t.Errorf("h=1 must not produce transport retries, got %d", ret1)
	}
	if rec1 == 0 {
		t.Error("h=1 under loss should recover from history")
	}
	if ret4 == 0 {
		t.Error("h=4 under loss should retransmit in the transport")
	}
	if rec4 >= rec1 {
		t.Errorf("h=4 should reduce history recoveries: %d vs %d at h=1", rec4, rec1)
	}
}

// TestTransportHReliableEquivalence: without failures, both configurations
// converge identically (the transport layer is transparent).
func TestTransportHReliableEquivalence(t *testing.T) {
	for _, h := range []int{1, 3} {
		c, err := NewCluster(ClusterConfig{Config: baseCfg(4), Seed: 12, TransportH: h})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(RunOptions{
			MaxRounds: 300, MinRounds: 40,
			OnRound:           steadyWorkload(c, 2, 10),
			StopWhenQuiescent: true, DrainSubruns: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.QuiescentAtRound < 0 {
			t.Fatalf("h=%d: never quiescent", h)
		}
		for i := 0; i < 4; i++ {
			if v := c.Proc(mid.ProcID(i)).Processed(); v.Sum() != 40 {
				t.Fatalf("h=%d: proc %d processed %d, want 40", h, i, v.Sum())
			}
		}
	}
}

package core

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

// dec builds a minimal decision for join tests.
func dec(subrun int64, coord mid.ProcID, alive []bool, maxp mid.SeqVector) *wire.Decision {
	n := len(alive)
	d := &wire.Decision{
		Subrun: subrun, Coord: coord,
		MaxProcessed: maxp, MostUpdated: make([]mid.ProcID, n),
		MinWaiting: mid.NewSeqVector(n), CleanTo: mid.NewSeqVector(n),
		Attempts: make([]uint8, n), Alive: alive,
		Covered: make([]bool, n),
	}
	for i := range d.MostUpdated {
		d.MostUpdated[i] = mid.None
	}
	return d
}

// TestJoinerLifecycle walks a joiner end to end at the unit level: solicit,
// install, join-flagged request, admission, own-sequence catch-up, and the
// first accepted Submit continuing the old sequence past everything the
// group holds of it.
func TestJoinerLifecycle(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true, Join: true}
	p, tp := newProc(t, 2, cfg)
	if !p.Joining() {
		t.Fatal("joiner must start joining")
	}
	if _, err := p.Submit([]byte("x"), nil); err == nil {
		t.Fatal("Submit must be refused while joining")
	}

	// Pre-sync: the only thing a joiner does is solicit a sponsor...
	p.StartRound(0)
	if len(tp.sends) != 1 {
		t.Fatalf("pre-sync subrun sent %d PDUs, want 1", len(tp.sends))
	}
	if j, ok := tp.sends[0].pdu.(*wire.Join); !ok || j.Joiner != 2 || tp.sends[0].dst != 0 {
		t.Fatalf("want Join{2} to p0, got %T to p%d", tp.sends[0].pdu, tp.sends[0].dst)
	}
	// ...and everything else bounces off.
	p.Recv(0, &wire.Data{Msg: causal.Message{ID: mid.MID{Proc: 0, Seq: 1}, Payload: []byte("x")}})
	if p.WaitingLen() != 0 || p.Processed().Sum() != 0 {
		t.Fatal("pre-sync joiner must process nothing")
	}

	// The sponsor's state transfer: stability watermark {2,1,1}, sponsor
	// saw 2 messages of our old incarnation, freshest decision of subrun 7
	// declares us dead.
	prev := dec(7, 0, []bool{true, true, false}, mid.SeqVector{2, 1, 2})
	p.Recv(0, &wire.JoinState{
		Sponsor: 0, Resume: 2,
		Stable:    mid.SeqVector{2, 1, 1},
		Processed: mid.SeqVector{2, 1, 2},
		Prev:      prev,
	})
	if !p.Processed().Equal(mid.SeqVector{2, 1, 1}) {
		t.Fatalf("installed processed = %v", p.Processed())
	}
	if !p.Joining() {
		t.Fatal("still joining until a decision admits us")
	}
	if p.Subrun() != 7 {
		t.Fatalf("subrun not aligned to the decision: %d", p.Subrun())
	}

	// Post-sync request phase: a join-flagged REQUEST to the coordinator,
	// on the group's subrun numbering.
	tp.sends = nil
	p.StartRound(2) // local subrun 1 + bias 7 = 8
	if len(tp.sends) != 1 {
		t.Fatalf("post-sync subrun sent %d PDUs, want 1", len(tp.sends))
	}
	req, ok := tp.sends[0].pdu.(*wire.Request)
	if !ok || !req.Join || req.Subrun != 8 || tp.sends[0].dst != 0 {
		t.Fatalf("want join-flagged Request subrun 8 to p0, got %+v to p%d", tp.sends[0].pdu, tp.sends[0].dst)
	}

	// Admission: a fresher decision includes us; someone holds 3 messages
	// of our old sequence, so the resume point moves past them.
	p.Recv(0, dec(8, 0, []bool{true, true, true}, mid.SeqVector{2, 1, 3}))
	if p.Joining() {
		t.Fatal("admitting decision must end the join")
	}
	if _, err := p.Submit([]byte("x"), nil); err == nil {
		t.Fatal("Submit must be refused until the own sequence caught up")
	}

	// Catch up the own sequence through recovery, then generate: the new
	// message continues at seq 4, colliding with nothing.
	p.Recv(0, &wire.Retransmit{Responder: 0, Msgs: []*causal.Message{
		{ID: mid.MID{Proc: 2, Seq: 2}, Payload: []byte("old")},
		{ID: mid.MID{Proc: 2, Seq: 3}, Payload: []byte("old")},
	}})
	if got := p.Processed()[2]; got != 3 {
		t.Fatalf("own sequence at %d after recovery, want 3", got)
	}
	id, err := p.Submit([]byte("new"), nil)
	if err != nil {
		t.Fatalf("Submit after catch-up: %v", err)
	}
	if id.Seq != 4 {
		t.Fatalf("resumed sequence at %d, want 4", id.Seq)
	}
}

// TestCoordinatorAdmitsJoiner: a join-flagged request from a declared-dead
// member re-enters it into the coordinator's view and decision mask, with
// its attempts counter restarted — and the rotation includes it again.
func TestCoordinatorAdmitsJoiner(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	p, tp := newProc(t, 0, cfg)
	p.Recv(1, dec(2, 1, []bool{true, true, false}, mid.NewSeqVector(3)))
	if p.View().Alive(2) {
		t.Fatal("crash not adopted")
	}
	if got := CoordinatorOf(2, p.View()); got != 0 {
		t.Fatalf("rotation must skip the dead member, got %d", got)
	}

	p.StartRound(6) // subrun 3: p0 coordinates
	jr := req(2, 3, mid.NewSeqVector(3), mid.NewSeqVector(3), nil)
	jr.Join = true
	p.Recv(2, jr)
	p.Recv(1, req(1, 3, mid.NewSeqVector(3), mid.NewSeqVector(3), nil))
	p.StartRound(7) // decision phase

	d := tp.lastDecision(t)
	if !d.Alive[2] {
		t.Fatal("decision must re-admit the joiner")
	}
	if d.Attempts[2] != 0 {
		t.Fatalf("joiner attempts = %d, want 0", d.Attempts[2])
	}
	if !p.View().Alive(2) {
		t.Fatal("coordinator view must re-admit the joiner")
	}
	if got := CoordinatorOf(2, p.View()); got != 2 {
		t.Fatalf("post-rejoin rotation must include the member, got %d", got)
	}
}

// TestThresholdPerAliveTracksView: the view-scaled flow-control threshold
// throttles against the live group size — shrinking the view tightens it,
// and a rejoin relaxes it back.
func TestThresholdPerAliveTracksView(t *testing.T) {
	cfg := Config{N: 4, K: 2, R: 5, SelfExclusion: false, ThresholdPerAlive: 2}
	p, _ := newProc(t, 3, cfg)
	round := 0
	subrun := func() { p.StartRound(round); round += 2 } // request phases only
	for i := 0; i < 5; i++ {
		if _, err := p.Submit([]byte("m"), nil); err != nil {
			t.Fatal(err)
		}
		subrun()
	}
	// All 4 alive: threshold 8, history 5 < 8 — everything flowed.
	if p.HistoryLen() != 5 || p.PendingSubmissions() != 0 {
		t.Fatalf("hist %d pending %d, want 5/0", p.HistoryLen(), p.PendingSubmissions())
	}

	// Two members die: threshold 2*2 = 4 <= 5 — generation defers.
	p.Recv(0, dec(50, 0, []bool{true, false, false, true}, mid.NewSeqVector(4)))
	if _, err := p.Submit([]byte("m"), nil); err != nil {
		t.Fatal(err)
	}
	subrun()
	if p.PendingSubmissions() != 1 {
		t.Fatalf("pending %d, want 1 (threshold must track the shrunk view)", p.PendingSubmissions())
	}

	// They rejoin: threshold back to 8 > 5 — the backlog drains.
	p.Recv(0, dec(51, 0, []bool{true, true, true, true}, mid.NewSeqVector(4)))
	subrun()
	if p.PendingSubmissions() != 0 {
		t.Fatalf("pending %d, want 0 (threshold must track the rejoined view)", p.PendingSubmissions())
	}
}

// TestRetransmitCompactedFastForward: a recovery answer naming a purged
// (uniformly stable) prefix lets a syncing joiner skip its frontier over
// the gap, dropping obsolete waiting copies, and resume processing the
// retained suffix.
func TestRetransmitCompactedFastForward(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true, Join: true}
	p, _ := newProc(t, 2, cfg)
	p.Recv(0, &wire.JoinState{
		Sponsor: 0, Resume: 1,
		Stable:    mid.SeqVector{3, 2, 1},
		Processed: mid.SeqVector{6, 5, 1},
		Prev:      dec(5, 0, []bool{true, true, false}, mid.SeqVector{6, 5, 1}),
	})

	// (0,5) arrives but waits on a cross dependency.
	p.Recv(0, &wire.Data{Msg: causal.Message{
		ID: mid.MID{Proc: 0, Seq: 5}, Deps: mid.DepList{{Proc: 1, Seq: 5}}, Payload: []byte("x"),
	}})
	if p.WaitingLen() != 1 {
		t.Fatalf("waiting %d, want 1", p.WaitingLen())
	}

	// The responder purged p0's sequence through 5 as stable; the answer
	// fast-forwards us over the gap and the waiting copy is obsolete.
	p.Recv(0, &wire.Retransmit{
		Responder: 0,
		Msgs:      []*causal.Message{{ID: mid.MID{Proc: 0, Seq: 6}, Payload: []byte("x")}},
		Compacted: []wire.WantRange{{Proc: 0, From: 4, To: 5}},
	})
	if got := p.Processed()[0]; got != 6 {
		t.Fatalf("p0 frontier at %d, want 6 (fast-forward + retained suffix)", got)
	}
	if p.WaitingLen() != 0 {
		t.Fatal("stale waiting copy must be dropped by the fast-forward")
	}
	if p.Stats.FastForwards != 1 {
		t.Fatalf("FastForwards = %d, want 1", p.Stats.FastForwards)
	}
}

// TestSimJoinConvergence is the simulator-level rejoin scenario at n=5: a
// member fail-stops under load, is declared crashed, restarts as a joiner,
// state-transfers, is re-admitted, and the group converges — identical
// processed vectors, all-alive views everywhere, and the rejoined member
// generating again on its old sequence.
func TestSimJoinConvergence(t *testing.T) {
	const victim = 2
	c, err := NewCluster(ClusterConfig{
		Config: Config{N: 5, K: 2, R: 6, SelfExclusion: true},
		Seed:   7,
		Injector: fault.CrashWindow{
			Proc: victim, At: sim.StartOfRound(40), Until: sim.StartOfRound(160),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rejoined := false
	victimSubmits := 0
	_, err = c.Run(RunOptions{
		MaxRounds: 2400, MinRounds: 420,
		StopWhenQuiescent: true, DrainSubruns: 8,
		OnRound: func(round int) {
			if round == 160 && !rejoined {
				rejoined = true
				if err := c.Rejoin(victim); err != nil {
					t.Fatal(err)
				}
			}
			if round%8 == 0 && round < 320 {
				for _, q := range []mid.ProcID{0, 1, 3} {
					if _, err := c.SubmitCausal(q, []byte("w")); err != nil {
						t.Fatal(err)
					}
				}
			}
			if round%8 == 4 && round < 36 {
				if _, err := c.SubmitCausal(victim, []byte("pre")); err != nil {
					t.Fatal(err)
				}
			}
			if rejoined && round%8 == 4 && round < 320 {
				// Refused while joining and while the own sequence resyncs;
				// accepted again once caught up.
				if _, err := c.SubmitCausal(victim, []byte("post")); err == nil {
					victimSubmits++
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	p := c.Proc(victim)
	if !p.Running() {
		t.Fatalf("rejoined member left again: %v", c.Left[victim])
	}
	if p.Joining() {
		t.Fatal("rejoined member never admitted")
	}
	if victimSubmits == 0 {
		t.Fatal("rejoined member never generated")
	}
	if _, left := c.Left[victim]; left {
		t.Fatal("Left record not cleared by rejoin")
	}
	for i := 0; i < c.N(); i++ {
		if got := c.Proc(mid.ProcID(i)).View().AliveCount(); got != 5 {
			t.Errorf("p%d view has %d alive, want 5", i, got)
		}
	}
	ref := c.Proc(0).Processed()
	for i := 1; i < c.N(); i++ {
		if !ref.Equal(c.Proc(mid.ProcID(i)).Processed()) {
			t.Errorf("p%d processed %v, want %v", i, c.Proc(mid.ProcID(i)).Processed(), ref)
		}
	}
}

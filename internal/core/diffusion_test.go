package core

import (
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

// diffusionCfg builds a group where the last 'observers' members only
// consume (the diffusion-group structure of Section 3).
func diffusionCfg(n, observers int) Config {
	obs := make([]bool, n)
	for i := n - observers; i < n; i++ {
		obs[i] = true
	}
	return Config{N: n, K: 3, R: 8, SelfExclusion: true, Observers: obs}
}

func TestDiffusionGroupDelivery(t *testing.T) {
	// 3 servers, 3 observers: every message reaches everyone, observers
	// never coordinate, stability still cleans histories (observers'
	// reports count toward the full-group chain).
	cfg := diffusionCfg(6, 3)
	c, err := NewCluster(ClusterConfig{Config: cfg, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	perProc := 10
	res, err := c.Run(RunOptions{
		MaxRounds: 400, MinRounds: 2 * 2 * perProc,
		OnRound: func(round int) {
			if round%2 != 0 || round/2 >= perProc {
				return
			}
			for i := 0; i < 3; i++ { // servers only
				if _, err := c.Submit(mid.ProcID(i), []byte("pub"), nil); err != nil {
					panic(err)
				}
			}
		},
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	checkUniformity(t, c)
	for i := 0; i < 6; i++ {
		v := c.Proc(mid.ProcID(i)).Processed()
		if v.Sum() != 30 {
			t.Errorf("member %d processed %d, want 30", i, v.Sum())
		}
		if h := c.Proc(mid.ProcID(i)).HistoryLen(); h > 12 {
			t.Errorf("member %d history %d not cleaned", i, h)
		}
		if c.Proc(mid.ProcID(i)).Stats.Decisions > 0 && cfg.IsObserver(mid.ProcID(i)) {
			t.Errorf("observer %d computed decisions", i)
		}
	}
}

func TestObserverCannotSubmit(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Config: diffusionCfg(4, 2), Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(3, []byte("nope"), nil); err == nil {
		t.Error("observer submission must be rejected")
	}
	if _, err := c.Submit(0, []byte("ok"), nil); err != nil {
		t.Errorf("server submission failed: %v", err)
	}
}

func TestObserverStalenessBlocksCleaning(t *testing.T) {
	// An observer that stops reporting (send-omission) must first stall
	// stability (uniformity protects it), then be declared crashed and
	// excluded, after which cleaning resumes — same machinery as peers.
	cfg := diffusionCfg(4, 1)
	inj := fault.During{
		From: sim.StartOfSubrun(4), To: 1 << 40,
		Inner: fault.OnlyProc{Proc: 3, Inner: &fault.EveryNth{N: 1, Side: fault.AtSend}},
	}
	c, err := NewCluster(ClusterConfig{Config: cfg, Seed: 23, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	perProc := 15
	_, err = c.Run(RunOptions{
		MaxRounds: 500, MinRounds: 2 * 2 * perProc,
		OnRound: func(round int) {
			if round%2 != 0 || round/2 >= perProc {
				return
			}
			for i := 0; i < 3; i++ {
				if _, err := c.Submit(mid.ProcID(i), []byte("x"), nil); err != nil {
					panic(err)
				}
			}
		},
		StopWhenQuiescent: true, DrainSubruns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The silent observer got declared crashed and suicided.
	if reason, ok := c.Left[3]; !ok || reason != Suicide {
		t.Fatalf("silent observer should suicide, Left=%v", c.Left)
	}
	// The servers cleaned up and converged without it.
	checkUniformity(t, c)
	for i := 0; i < 3; i++ {
		if h := c.Proc(mid.ProcID(i)).HistoryLen(); h > 8 {
			t.Errorf("server %d history %d not cleaned after exclusion", i, h)
		}
	}
}

func TestObserverCoordinatorSkipping(t *testing.T) {
	cfg := diffusionCfg(4, 2) // peers 0,1; observers 2,3
	p, tp := newProc(t, 0, cfg)
	// Subrun 2 would be member 2's turn in a peer group; with observers it
	// wraps to peer 0.
	if got := p.coordinator(2); got != 0 {
		t.Errorf("coordinator(2) = %d, want 0", got)
	}
	if got := p.coordinator(3); got != 0 {
		t.Errorf("coordinator(3) = %d, want 0 (skip observer 3, wrap)", got)
	}
	if got := p.coordinator(1); got != 1 {
		t.Errorf("coordinator(1) = %d, want 1", got)
	}
	_ = tp
}

func TestDiffusionConfigValidation(t *testing.T) {
	bad := Config{N: 3, K: 2, R: 5, Observers: []bool{true, true}}
	if bad.Validate() == nil {
		t.Error("length mismatch accepted")
	}
	allObs := Config{N: 2, K: 2, R: 5, Observers: []bool{true, true}}
	if allObs.Validate() == nil {
		t.Error("all-observer group accepted")
	}
	ok := Config{N: 2, K: 2, R: 5, Observers: []bool{false, true}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid diffusion config rejected: %v", err)
	}
}

// TestObserverReceivesDecisions confirms observers stay current through the
// decision flow (they are part of the group view and the covered chain).
func TestObserverReceivesDecisions(t *testing.T) {
	cfg := diffusionCfg(3, 1)
	c, err := NewCluster(ClusterConfig{Config: cfg, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	sawFull := false
	c.OnDecision = func(p mid.ProcID, d *wire.Decision) {
		if p == 2 && d.FullGroup {
			sawFull = true
		}
	}
	_, err = c.Run(RunOptions{
		MaxRounds: 60,
		OnRound: func(round int) {
			if round == 0 {
				_, _ = c.Submit(0, []byte("x"), nil)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawFull {
		t.Error("observer never saw a full-group decision")
	}
}

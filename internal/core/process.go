// Package core implements the urcgc algorithm of Aiello, Pagani and Rossi
// (SIGCOMM 1993): uniform reliable causal group communication built around a
// rotating coordinator, history buffers and the reliable circulation of
// decisions.
//
// Time advances in rounds; a subrun is two rounds. In the first round of a
// subrun every process may broadcast one new user message — which it also
// processes immediately — and sends a REQUEST to the subrun's coordinator
// carrying its last-processed vector, its oldest-waiting vector, and the
// freshest DECISION it holds. In the second round the coordinator folds the
// requests it received into a new DECISION — message stability (history
// cleaning), per-sequence most-updated holders for recovery, silence
// counters whose saturation at K declares crashes, and orphaned-sequence
// gaps whose dependents the group agrees to destroy — and broadcasts it.
// Decisions chain across coordinators, so crash recovery is embedded in
// normal processing: nothing ever blocks, which is the paper's headline
// property.
//
// Dynamic membership rides the same machinery: a (re)starting member
// solicits a live sponsor for a state transfer (JOIN/JOIN-STATE), installs
// the group's stability watermark as its past, catches up through the
// recovery path, and re-enters the view when a coordinator folds its
// join-flagged REQUEST into a decision — turning the suicide rule from
// terminal death into leave, resync, rejoin.
package core

import (
	"errors"
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/group"
	"urcgc/internal/history"
	"urcgc/internal/mid"
	"urcgc/internal/waitlist"
	"urcgc/internal/wire"
)

// Config carries the protocol parameters of one group.
type Config struct {
	// N is the group cardinality.
	N int
	// K is the number of retries before a silent process is declared
	// crashed, and before a process that hears no coordinator leaves.
	K int
	// R is the number of unsuccessful recovery attempts after which a
	// process autonomously leaves the group. The paper requires R > 2K+f
	// for no live process to be evicted while chasing a crashed
	// most-updated holder; Validate enforces R > 2K as the f=0 baseline.
	R int
	// HistoryThreshold is the distributed flow-control threshold of
	// Section 6: a process whose history holds at least this many messages
	// defers generating new ones. Zero disables flow control. The paper
	// uses 8n.
	HistoryThreshold int
	// ThresholdPerAlive, when positive, overrides HistoryThreshold with a
	// view-scaled budget: generation defers while the history holds at
	// least ThresholdPerAlive times the number of believed-alive members.
	// The paper's 8n rule is really about the live group — stability spans
	// only the members the chain must cover — so after crashes (and before
	// rejoins) a fixed 8N both under- and over-throttles. 8 reproduces the
	// paper's setting against the live view.
	ThresholdPerAlive int
	// RecoveryBatch caps how many messages of one sequence a single
	// RECOVER asks for. Zero means DefaultRecoveryBatch.
	RecoveryBatch int
	// BatchMax caps how many queued user messages one subrun may
	// broadcast. Zero or one keeps the classic one-Data-per-subrun
	// schedule; larger values drain up to BatchMax messages per subrun as
	// DataBatch frames, amortizing the subrun's control traffic
	// (REQUEST/DECISION) over the whole batch the same way Table 1
	// amortizes it over a subrun.
	BatchMax int
	// BatchBytes is the encoded-size budget of one DataBatch frame; a
	// drained batch is split into frames no larger than this, so batching
	// never manufactures oversize datagrams. Zero means DefaultBatchBytes.
	BatchBytes int
	// SelfExclusion enables the two autonomous-leave rules (suicide is
	// always on): leaving after R failed recoveries and after K subruns
	// without hearing any believed-alive coordinator. Experiments that
	// model more consecutive coordinator crashes than K disable it.
	SelfExclusion bool
	// Join starts the process as a joiner instead of a founding member: it
	// solicits a live sponsor for a state transfer (the group's stability
	// watermark becomes its installed past), then enters the view through
	// the regular decision circulation by flagging its requests. Until a
	// decision admits it, it never coordinates, never generates messages
	// and never self-excludes. This is how a member that committed suicide
	// returns: leave, resync, rejoin.
	Join bool
	// Observers marks diffusion-group members (Section 3): an observer
	// processes every message and reports to coordinators — so stability
	// waits for it and atomicity covers it — but it never generates
	// messages and never becomes coordinator. Nil means a pure peer group.
	Observers []bool
}

// IsObserver reports whether member i is an observer.
func (c Config) IsObserver(i mid.ProcID) bool {
	return i >= 0 && int(i) < len(c.Observers) && c.Observers[i]
}

// DefaultRecoveryBatch bounds one RECOVER's per-sequence ask.
const DefaultRecoveryBatch = 16

// DefaultBatchBytes bounds one DataBatch frame: it fits a 64 KiB UDP
// datagram with headroom for the runtime's framing.
const DefaultBatchBytes = 60 * 1024

// DefaultBatchMax is the per-subrun drain the runtime adopts when its
// coalescing sender is enabled without an explicit BatchMax.
const DefaultBatchMax = 32

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("core: N = %d, need at least 1", c.N)
	}
	if c.K < 1 {
		return fmt.Errorf("core: K = %d, need at least 1", c.K)
	}
	if c.R < 1 {
		return fmt.Errorf("core: R = %d, need at least 1", c.R)
	}
	if c.SelfExclusion && c.R <= 2*c.K {
		return fmt.Errorf("core: R = %d must exceed 2K = %d (paper: R > 2K+f)", c.R, 2*c.K)
	}
	if c.HistoryThreshold < 0 || c.ThresholdPerAlive < 0 || c.RecoveryBatch < 0 || c.BatchMax < 0 || c.BatchBytes < 0 {
		return fmt.Errorf("core: negative threshold")
	}
	if c.Join && c.N < 2 {
		return fmt.Errorf("core: a joiner needs at least one live sponsor (N >= 2)")
	}
	if c.Observers != nil {
		if len(c.Observers) != c.N {
			return fmt.Errorf("core: %d observer flags for group of %d", len(c.Observers), c.N)
		}
		peers := 0
		for _, o := range c.Observers {
			if !o {
				peers++
			}
		}
		if peers == 0 {
			return fmt.Errorf("core: a diffusion group needs at least one non-observer")
		}
	}
	return nil
}

func (c Config) recoveryBatch() mid.Seq {
	if c.RecoveryBatch > 0 {
		return mid.Seq(c.RecoveryBatch)
	}
	return DefaultRecoveryBatch
}

func (c Config) batchMax() int {
	if c.BatchMax > 1 {
		return c.BatchMax
	}
	return 1
}

func (c Config) batchBytes() int {
	if c.BatchBytes > 0 {
		return c.BatchBytes
	}
	return DefaultBatchBytes
}

// LeaveReason says why a process halted.
type LeaveReason int

// Leave reasons.
const (
	// Suicide: the process found itself declared crashed in a decision
	// (it is alive but faulty — e.g. its sends are being omitted) and
	// removed itself, as the protocol requires.
	Suicide LeaveReason = iota
	// RecoveryExhausted: R consecutive recovery attempts made no progress.
	RecoveryExhausted
	// CoordinatorSilence: no decision was received from K consecutive
	// believed-alive coordinators.
	CoordinatorSilence
)

// String implements fmt.Stringer.
func (r LeaveReason) String() string {
	switch r {
	case Suicide:
		return "suicide"
	case RecoveryExhausted:
		return "recovery-exhausted"
	case CoordinatorSilence:
		return "coordinator-silence"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Transport is how a process reaches its peers. Send to self is never
// issued. Broadcast must reach every other process in the group — including
// ones believed crashed, which may be alive-but-faulty and must be able to
// learn they were excluded.
type Transport interface {
	Send(dst mid.ProcID, pdu wire.PDU)
	Broadcast(pdu wire.PDU)
}

// Callbacks surface protocol events to the embedding runtime. Any field may
// be nil. Every callback runs synchronously on the goroutine driving the
// process; the simulator path leaves the observability fields nil and is
// untouched by them.
type Callbacks struct {
	// OnGenerate is invoked when Submit accepts a user message, before it
	// is queued for its broadcast round — the "generated" lifecycle stage.
	OnGenerate func(m *causal.Message)
	// OnBroadcast is invoked when a queued user message actually leaves
	// the outbox onto the wire (broadcast may lag generation by rounds:
	// at most BatchMax per subrun, deferred further by flow control).
	OnBroadcast func(m *causal.Message)
	// OnBatchBroadcast is invoked once per multi-message DataBatch frame
	// broadcast, with the message count and encoded frame size. The
	// per-message OnBroadcast still fires for every member; singleton
	// sends travel as classic Data and never reach this callback.
	OnBatchBroadcast func(msgs, bytes int)
	// OnWait is invoked when a received message parks in the waiting list
	// because its causal dependencies are not yet satisfied. missing
	// lists the unmet dependencies; it is backed by a scratch buffer
	// reused across calls, so the callee must clone it to retain it.
	OnWait func(m *causal.Message, missing mid.DepList)
	// OnStable is invoked when a full-group decision advances the local
	// stability watermark: every message (q, s) with s <= clean[q] is now
	// uniformly stable (processed at every covered live member). The
	// callee owns clean.
	OnStable func(clean mid.SeqVector)
	// OnProcess is invoked exactly once per message this process
	// processes, in processing (causal) order.
	OnProcess func(m *causal.Message)
	// OnDiscard is invoked when a waiting message is destroyed by the
	// group's orphaned-sequence agreement.
	OnDiscard func(m *causal.Message)
	// OnLeave is invoked once when the process halts itself.
	OnLeave func(reason LeaveReason)
	// OnDecision is invoked for every fresh decision applied.
	OnDecision func(d *wire.Decision)
	// OnRoundEnd is invoked after every StartRound with the buffer gauges
	// of the moment — the live counterpart of the Figure 6 history curves.
	OnRoundEnd func(o RoundObservation)
	// OnRecover is invoked for every RECOVER this process sends: holder is
	// the most-updated member asked, ranges how many sequence ranges.
	OnRecover func(holder mid.ProcID, ranges int)
	// OnRetransmit is invoked for every RECOVER this process answers from
	// history: requester is who asked, msgs how many messages were resent.
	OnRetransmit func(requester mid.ProcID, msgs int)
	// OnCrashDeclared is invoked when this process's view transitions a
	// member from believed-alive to declared-crashed, whether it made the
	// declaration as coordinator or adopted it from a decision.
	OnCrashDeclared func(q mid.ProcID)
	// OnSubrunStart is invoked at the opening of every subrun with the
	// subrun index and the coordinator this process will report to — the
	// local token-pass event of the rotating-coordinator scheme. A health
	// layer watching this sees the token position advance (or stall).
	OnSubrunStart func(subrun int64, coord mid.ProcID)
	// OnViewChange is invoked whenever the local view changes composition —
	// members declared crashed, or a joiner admitted back — after the
	// per-member OnCrashDeclared/OnMemberJoined calls. alive is a fresh
	// copy the callee owns.
	OnViewChange func(alive []bool)
	// OnMemberJoined is invoked when this process's view re-admits another
	// member — through a decision, or at the coordinator through the
	// join-flagged request that produced it — after the stale bookkeeping
	// of the member's previous incarnation has been dropped.
	OnMemberJoined func(q mid.ProcID)
	// OnJoinInstalled is invoked on a joiner when the sponsor's state
	// transfer is installed, before any message is processed: stable is the
	// stability watermark the process starts from (everything at or below
	// it is uniformly stable and will never be processed here). The callee
	// owns stable.
	OnJoinInstalled func(stable mid.SeqVector)
	// OnJoined is invoked on a joiner when a decision admits it into the
	// view and it resumes full protocol duty.
	OnJoined func()
	// OnFastForward is invoked when a recovery answer proves a prefix of
	// q's sequence was compacted as uniformly stable (nobody retains the
	// bytes) and the process skips its frontier to "to" instead of waiting
	// forever — without per-message OnProcess calls. Only a joiner syncing
	// against a moving stability watermark hits this path.
	OnFastForward func(q mid.ProcID, to mid.Seq)
}

// RoundObservation is the per-round gauge sample handed to OnRoundEnd.
type RoundObservation struct {
	Round      int // the round just executed
	HistoryLen int // history buffer length
	WaitingLen int // waiting-list length
	Pending    int // user messages queued, deferred by rounds or flow control
}

// Process is one urcgc protocol entity. It is driven by StartRound and
// Recv from a single goroutine (the simulator loop or the runtime's node
// goroutine); it is not safe for concurrent use.
//
// Concurrency contract: EVERY method — including the read accessors
// Running, View, HistoryLen, History, WaitingLen, Processed and
// PendingSubmissions, and reads of the exported Stats field — must run on
// the goroutine that drives StartRound/Recv. Calling them from any other
// goroutine races with applyDecision and cascade mutating the same state.
// In the live runtime that goroutine is the node loop: off-loop readers go
// through rt.Node.Snapshot/Status or rt.UDPNode.Snapshot/Status, which
// hand the Process to a closure inside the loop. The deterministic
// simulator is single-goroutine, so tests and experiments that call
// accessors between Run steps are within the contract.
type Process struct {
	id  mid.ProcID
	cfg Config
	cb  Callbacks
	tp  Transport

	tracker *causal.Tracker
	hist    *history.History
	wait    *waitlist.List
	view    *group.View

	running  bool
	nextSeq  mid.Seq
	outbox   []*causal.Message // user messages awaiting their send round
	lastDec  *wire.Decision    // freshest decision held
	requests map[mid.ProcID]*wire.Request

	subrun            int64 // current subrun index
	missedCoords      int   // consecutive subruns with no decision from a believed-alive coordinator
	decisionThisSub   bool  // a decision for the previous subrun arrived
	recoveryFailures  int
	lastProgress      uint64 // processed-sum at the last decision, for the R rule
	recoveryRequested bool

	// Join-protocol state. A founding member is born synced and never
	// joining. A joiner stays joining until a decision admits it; synced
	// flips when the sponsor's state transfer is installed; joinAligning
	// keeps nextSeq chasing MaxProcessed[self] until the first post-join
	// Submit, so the new incarnation resumes its sequence past everything
	// any member holds of the old one.
	joining      bool
	synced       bool
	joinAligning bool
	// subrunBias aligns the local round clock to the group's subrun
	// numbering: a restarted member's rounds restart at zero, but its
	// requests must name the subrun its peers are in to be folded.
	subrunBias int64

	// missScratch backs the missing-dependency list handed to OnWait, so
	// steady-state tracing costs no allocation per waiting message.
	missScratch mid.DepList

	// lastClean retains the stability watermark of the freshest full-group
	// decision applied, for the StableTo accessor (health and status
	// reporting). Preallocated; copied into, never re-allocated.
	lastClean mid.SeqVector

	// Counters for reports and tests.
	Stats Stats
}

// Stats counts externally observable protocol activity.
type Stats struct {
	Generated   int // user messages this process originated
	ProcessedN  int // messages processed (own and others')
	Discarded   int // messages destroyed by agreement
	Recoveries  int // RECOVER PDUs sent
	Retransmits int // RETRANSMIT PDUs answered
	Decisions   int // decisions computed as coordinator
	Duplicates  int // duplicate or stale DATA received
	Batches     int // multi-message DataBatch frames broadcast

	Sponsored    int // JOIN-STATE transfers served to joiners
	FastForwards int // compacted recovery gaps skipped while syncing
}

// NewProcess returns a protocol entity for process id. The transport must
// be non-nil; callbacks may be zero.
func NewProcess(id mid.ProcID, cfg Config, tp Transport, cb Callbacks) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if int(id) >= cfg.N || id < 0 {
		return nil, fmt.Errorf("core: process id %d outside group of %d", id, cfg.N)
	}
	if tp == nil {
		return nil, fmt.Errorf("core: nil transport")
	}
	return &Process{
		id:        id,
		cfg:       cfg,
		cb:        cb,
		tp:        tp,
		tracker:   causal.NewTracker(cfg.N),
		hist:      history.New(cfg.N),
		wait:      waitlist.New(cfg.N),
		view:      group.NewView(cfg.N),
		running:   true,
		joining:   cfg.Join,
		synced:    !cfg.Join,
		requests:  make(map[mid.ProcID]*wire.Request),
		lastClean: mid.NewSeqVector(cfg.N),
	}, nil
}

// ID returns the process identifier.
func (p *Process) ID() mid.ProcID { return p.id }

// Running reports whether the process is still executing the protocol.
// Loop-goroutine-only, like every accessor (see the concurrency contract).
func (p *Process) Running() bool { return p.running }

// Joining reports whether the process is still in the join protocol — not
// yet admitted into the view by a decision. Loop-goroutine-only.
func (p *Process) Joining() bool { return p.joining }

// View returns the process's local group view. Loop-goroutine-only, and
// the returned pointer must not be retained past the calling closure.
func (p *Process) View() *group.View { return p.view }

// HistoryLen returns the current history buffer length (Figure 6).
// Loop-goroutine-only.
func (p *Process) HistoryLen() int { return p.hist.Len() }

// History exposes the history buffer for read access (recovery answers and
// the client-server reply layer read processed messages from it). Callers
// must not mutate it. Loop-goroutine-only.
func (p *Process) History() *history.History { return p.hist }

// WaitingLen returns the current waiting-list length. Loop-goroutine-only.
func (p *Process) WaitingLen() int { return p.wait.Len() }

// Processed returns the last-processed vector. Callers must not modify it,
// and must Clone it before letting it escape the loop goroutine.
func (p *Process) Processed() mid.SeqVector { return p.tracker.Processed() }

// PendingSubmissions returns the number of user messages queued but not yet
// broadcast (they wait for their round or for flow control).
// Loop-goroutine-only.
func (p *Process) PendingSubmissions() int { return len(p.outbox) }

// Subrun returns the index of the current subrun. Loop-goroutine-only.
func (p *Process) Subrun() int64 { return p.subrun }

// CurrentCoordinator returns the coordinator of the current subrun under
// this process's view. Loop-goroutine-only.
func (p *Process) CurrentCoordinator() mid.ProcID { return p.coordinator(p.subrun) }

// StableTo returns the stability watermark of the freshest full-group
// decision applied: every (q, s) with s <= StableTo()[q] is uniformly
// stable. All-zero until the first full-group decision. Callers must not
// modify it, and must Clone it before letting it escape the loop
// goroutine.
func (p *Process) StableTo() mid.SeqVector { return p.lastClean }

// Submit queues a user message. Its causal dependencies are the explicit
// deps given (each must already be processed locally — a process can only
// causally relate messages it has seen, Definition 3.1) plus, implicitly,
// the sender's previous message. The message is broadcast at the next
// first-round of a subrun permitted by flow control, one per round at most.
// The assigned MID is returned.
func (p *Process) Submit(payload []byte, deps mid.DepList) (mid.MID, error) {
	if !p.running {
		return mid.MID{}, fmt.Errorf("core: process %d has left the group", p.id)
	}
	if p.joining {
		return mid.MID{}, fmt.Errorf("core: process %d is still joining", p.id)
	}
	if p.joinAligning {
		// Post-admission, the own sequence must catch up first: other
		// members may hold messages of the previous incarnation up to
		// nextSeq, and generating before processing them would fork the
		// sequence at duplicate numbers.
		if have := p.tracker.LastProcessed(p.id); have < p.nextSeq {
			return mid.MID{}, fmt.Errorf("core: process %d is resyncing its own sequence (%d of %d)", p.id, have, p.nextSeq)
		}
		p.joinAligning = false
	}
	if p.cfg.IsObserver(p.id) {
		return mid.MID{}, fmt.Errorf("core: observer %d cannot generate messages", p.id)
	}
	// Reject here, at the protocol boundary, anything the 16-bit wire
	// prefixes cannot carry — before the encoder could wrap it silently.
	if len(payload) > wire.MaxPayload {
		return mid.MID{}, fmt.Errorf("core: payload of %d bytes: %w", len(payload), wire.ErrTooLarge)
	}
	if len(deps) > wire.MaxDeps {
		return mid.MID{}, fmt.Errorf("core: %d dependencies: %w", len(deps), wire.ErrTooLarge)
	}
	for _, d := range deps {
		if d.IsZero() {
			return mid.MID{}, fmt.Errorf("core: zero dependency")
		}
		if d.Proc == p.id {
			return mid.MID{}, fmt.Errorf("core: own-sequence dependencies are implicit")
		}
		if p.tracker.LastProcessed(d.Proc) < d.Seq {
			return mid.MID{}, fmt.Errorf("core: dependency %v not processed locally", d)
		}
	}
	p.nextSeq++
	m := &causal.Message{
		ID:      mid.MID{Proc: p.id, Seq: p.nextSeq},
		Deps:    deps.Clone().Canonical(),
		Payload: payload,
	}
	p.outbox = append(p.outbox, m)
	if p.cb.OnGenerate != nil {
		p.cb.OnGenerate(m)
	}
	return m.ID, nil
}

// SubmitCausal queues a user message depending on the latest message this
// process has processed from every other live sequence — the conservative
// temporal interpretation of causality (what CBCAST enforces implicitly).
func (p *Process) SubmitCausal(payload []byte) (mid.MID, error) {
	var deps mid.DepList
	for q := 0; q < p.cfg.N; q++ {
		qp := mid.ProcID(q)
		if qp == p.id {
			continue
		}
		if s := p.tracker.LastProcessed(qp); s > 0 {
			deps = append(deps, mid.MID{Proc: qp, Seq: s})
		}
	}
	return p.Submit(payload, deps)
}

// CoordinatorOf returns the coordinator of subrun s under view v: the first
// believed-alive process at or cyclically after s mod n. If the view is
// empty it falls back to s mod n.
func CoordinatorOf(s int64, v *group.View) mid.ProcID {
	return coordinatorOf(s, v, nil)
}

// coordinatorOf additionally skips observer members (diffusion groups):
// only peers rotate through the coordinator role.
func coordinatorOf(s int64, v *group.View, observers []bool) mid.ProcID {
	n := int64(v.N())
	start := mid.ProcID(s % n)
	for i := int64(0); i < n; i++ {
		c := mid.ProcID((int64(start) + i) % n)
		if int(c) < len(observers) && observers[c] {
			continue
		}
		if v.Alive(c) {
			return c
		}
	}
	return start
}

// coordinator returns the coordinator of subrun s from this process's view.
func (p *Process) coordinator(s int64) mid.ProcID {
	return coordinatorOf(s, p.view, p.cfg.Observers)
}

// StartRound drives the process at the beginning of global round r. Even
// rounds open a subrun (request phase); odd rounds are the decision phase.
func (p *Process) StartRound(r int) {
	if !p.running {
		return
	}
	if r%2 == 0 {
		p.startSubrun(int64(r/2) + p.subrunBias)
	} else {
		p.decisionPhase()
	}
	if p.cb.OnRoundEnd != nil && p.running {
		p.cb.OnRoundEnd(RoundObservation{
			Round:      r,
			HistoryLen: p.hist.Len(),
			WaitingLen: p.wait.Len(),
			Pending:    len(p.outbox),
		})
	}
}

func (p *Process) startSubrun(s int64) {
	// Close the books on the previous subrun: did its coordinator reach us?
	// A joiner expects nothing yet and counts no silence.
	if s > 0 && !p.joining {
		p.accountCoordinatorSilence(s - 1)
		if !p.running {
			return // the silence rule made us leave
		}
	}
	p.subrun = s
	p.decisionThisSub = false
	p.requests = make(map[mid.ProcID]*wire.Request)

	if p.joining {
		p.joinSubrun(s)
		return
	}

	// Broadcast queued user messages, unless flow control defers: at most
	// BatchMax per subrun (classically one), split into byte-budgeted
	// DataBatch frames when more than one leaves at once.
	threshold := p.cfg.HistoryThreshold
	if p.cfg.ThresholdPerAlive > 0 {
		threshold = p.cfg.ThresholdPerAlive * p.view.AliveCount()
	}
	if len(p.outbox) > 0 && (threshold == 0 || p.hist.Len() < threshold) {
		p.broadcastOutbox()
	}

	// Send the REQUEST to the subrun's coordinator.
	coord := p.coordinator(s)
	if p.cb.OnSubrunStart != nil {
		p.cb.OnSubrunStart(s, coord)
	}
	req := p.buildRequest(s)
	if coord == p.id {
		p.requests[p.id] = req
	} else {
		p.tp.Send(coord, req)
	}
}

// joinSubrun is a joiner's request phase. Before the state transfer it only
// solicits a sponsor — it can process nothing until history bases and the
// processed vector are installed. After it, it reports like any member,
// flagging the request so the coordinator re-admits it, but it never acts
// as coordinator and never generates messages.
func (p *Process) joinSubrun(s int64) {
	if !p.synced {
		p.tp.Send(p.sponsorCandidate(s), &wire.Join{Joiner: p.id})
		return
	}
	coord := p.coordinator(s)
	if p.cb.OnSubrunStart != nil {
		p.cb.OnSubrunStart(s, coord)
	}
	if coord == p.id {
		// Our (stale) view rotated the token onto us, but nobody treats a
		// joiner as coordinator before a decision admits it; hold the
		// report and try the next rotation.
		return
	}
	req := p.buildRequest(s)
	req.Join = true
	p.tp.Send(coord, req)
}

// sponsorCandidate rotates the state-transfer solicitation over the other
// members, so a joiner is never stuck soliciting a crashed sponsor.
func (p *Process) sponsorCandidate(s int64) mid.ProcID {
	n := int64(p.cfg.N)
	c := mid.ProcID(s % n)
	if c == p.id {
		c = mid.ProcID((s + 1) % n)
	}
	return c
}

// batchFrameOverhead is a DataBatch frame's kind(1) + count(2).
const batchFrameOverhead = 3

// msgBodySize is one message's encoded body: mid(8) + depCount(2) +
// deps(8 each) + payloadLen(2) + payload.
func msgBodySize(m *causal.Message) int {
	return 8 + 2 + 8*len(m.Deps) + 2 + len(m.Payload)
}

// broadcastOutbox drains up to BatchMax queued messages onto the wire. A
// single message travels as classic Data (wire-compatible with unbatched
// peers); a larger drain is split greedily into DataBatch frames whose
// encoded size stays within BatchBytes. Each broadcast message is also
// processed locally, exactly as the unbatched path did.
func (p *Process) broadcastOutbox() {
	take := p.cfg.batchMax()
	if take > len(p.outbox) {
		take = len(p.outbox)
	}
	taken := p.outbox[:take]
	p.outbox = p.outbox[take:]
	budget := p.cfg.batchBytes()
	for start := 0; start < len(taken); {
		// Grow the frame while it fits the budget; a message that alone
		// exceeds it still travels (Submit bounds fields, and the
		// transport counts and rejects oversize frames).
		size := batchFrameOverhead + msgBodySize(taken[start])
		end := start + 1
		for end < len(taken) && size+msgBodySize(taken[end]) <= budget {
			size += msgBodySize(taken[end])
			end++
		}
		p.broadcastFrame(taken[start:end], size)
		start = end
	}
	p.cascade()
}

func (p *Process) broadcastFrame(batch []*causal.Message, encoded int) {
	if len(batch) == 1 {
		m := batch[0]
		p.Stats.Generated++
		p.tp.Broadcast(&wire.Data{Msg: *m})
		if p.cb.OnBroadcast != nil {
			p.cb.OnBroadcast(m)
		}
		p.processMsg(m)
		return
	}
	// The simulator's transport retains PDUs by reference, so every frame
	// gets a freshly allocated slice — never a reused scratch buffer.
	pdu := &wire.DataBatch{Msgs: make([]causal.Message, len(batch))}
	for i, m := range batch {
		pdu.Msgs[i] = *m
	}
	p.Stats.Generated += len(batch)
	p.Stats.Batches++
	p.tp.Broadcast(pdu)
	if p.cb.OnBatchBroadcast != nil {
		p.cb.OnBatchBroadcast(len(batch), encoded)
	}
	for _, m := range batch {
		if p.cb.OnBroadcast != nil {
			p.cb.OnBroadcast(m)
		}
		p.processMsg(m)
	}
}

func (p *Process) buildRequest(s int64) *wire.Request {
	return &wire.Request{
		Sender:        p.id,
		Subrun:        s,
		LastProcessed: p.tracker.Processed().Clone(),
		Waiting:       p.wait.OldestWaiting(),
		Prev:          p.lastDec, // shared immutable; never mutated after build
	}
}

func (p *Process) accountCoordinatorSilence(s int64) {
	if p.decisionThisSub {
		p.missedCoords = 0
		return
	}
	if !p.view.Alive(p.coordinator(s)) {
		return // we expected nothing from a crashed coordinator
	}
	p.missedCoords++
	if p.cfg.SelfExclusion && p.missedCoords >= p.cfg.K {
		p.leave(CoordinatorSilence)
	}
}

func (p *Process) decisionPhase() {
	if p.joining || p.coordinator(p.subrun) != p.id {
		return
	}
	// Fold in our own (fresh) report.
	p.requests[p.id] = p.buildRequest(p.subrun)
	d := p.computeDecision()
	p.Stats.Decisions++
	p.decisionThisSub = true
	p.missedCoords = 0
	p.tp.Broadcast(d)
	p.applyDecision(d)
}

// Recv handles one delivered PDU.
func (p *Process) Recv(src mid.ProcID, pdu wire.PDU) {
	if !p.running {
		return
	}
	if p.joining && !p.synced {
		// Before the state transfer nothing is processable: history bases,
		// the processed vector and the own-sequence resume point are not
		// installed yet. Only the sponsor's answer matters.
		if js, ok := pdu.(*wire.JoinState); ok {
			p.installJoinState(js)
		}
		return
	}
	switch v := pdu.(type) {
	case *wire.Data:
		p.handleData(&v.Msg)
	case *wire.DataBatch:
		// One inbox event ingests the whole batch. Messages appear in
		// generation order, so intra-batch causality (each implicitly
		// depending on the sender's previous) resolves in a single pass.
		for i := range v.Msgs {
			p.handleData(&v.Msgs[i])
		}
	case *wire.Request:
		if v.Subrun == p.subrun && p.coordinator(p.subrun) == p.id {
			p.requests[v.Sender] = v
		} else if v.Prev != nil {
			// Not ours to coordinate, but the embedded decision may still
			// be fresher than what we hold.
			p.noteDecision(v.Prev)
		}
	case *wire.Decision:
		p.handleDecision(v)
	case *wire.Recover:
		p.handleRecover(v)
	case *wire.Retransmit:
		p.handleRetransmit(v)
	case *wire.Join:
		p.handleJoin(v)
	case *wire.JoinState:
		// Duplicate sponsor answer after installation; stale by definition.
	}
}

// handleJoin answers a joiner's solicitation with a state transfer: the
// local stability watermark (the joiner's installable past — everything at
// or below it is uniformly stable, so a fresh history may start above it),
// the processed vector (the catch-up target), the resume point for the
// joiner's own sequence, and the freshest decision held (the joiner's entry
// into the circulation). The transfer is a snapshot of vectors, not bytes:
// the actual messages flow through the existing recovery path.
func (p *Process) handleJoin(j *wire.Join) {
	if p.joining || j.Joiner == p.id || int(j.Joiner) >= p.cfg.N || j.Joiner < 0 {
		return
	}
	p.Stats.Sponsored++
	p.tp.Send(j.Joiner, &wire.JoinState{
		Sponsor:   p.id,
		Resume:    p.tracker.LastProcessed(j.Joiner),
		Stable:    p.lastClean.Clone(),
		Processed: p.tracker.Processed().Clone(),
		Prev:      p.lastDec,
	})
}

// installJoinState bootstraps a joiner from the sponsor's snapshot. The
// stability watermark becomes the installed past — processed vector,
// history purge bases and the local clean watermark all start there — and
// the sponsor's view of our old sequence becomes the resume point, so new
// messages continue it instead of colliding with it. The embedded decision
// then pulls the joiner into the circulation: its recovery targets fetch
// everything between the watermark and the group's frontier.
func (p *Process) installJoinState(js *wire.JoinState) {
	if len(js.Stable) != p.cfg.N || len(js.Processed) != p.cfg.N {
		return // not our group's geometry; keep soliciting
	}
	if err := p.tracker.Install(js.Stable); err != nil {
		return
	}
	if err := p.hist.InstallBases(js.Stable); err != nil {
		// Unreachable: nothing is processed (or stored) pre-sync, so the
		// history is empty. A failure here is a protocol bug.
		panic(fmt.Sprintf("core: process %d: %v", p.id, err))
	}
	copy(p.lastClean, js.Stable)
	p.nextSeq = js.Resume
	if floor := js.Stable[p.id]; p.nextSeq < floor {
		p.nextSeq = floor
	}
	p.synced = true
	p.joinAligning = true
	if p.cb.OnJoinInstalled != nil {
		p.cb.OnJoinInstalled(js.Stable.Clone())
	}
	if js.Prev != nil {
		p.handleDecision(js.Prev)
	}
}

// becomeJoined ends the join: a decision's view includes us again, so we
// resume full duty — coordinating, reporting, and (once the own sequence
// caught up) generating. Counters restart so the self-exclusion rules
// measure the new incarnation, not the sync.
func (p *Process) becomeJoined() {
	p.joining = false
	p.decisionThisSub = true
	p.missedCoords = 0
	p.recoveryFailures = 0
	if p.cb.OnJoined != nil {
		p.cb.OnJoined()
	}
}

// handleRetransmit ingests a recovery answer. Ranges the responder reports
// compacted were purged there as uniformly stable — every live member
// processed them — so a process that cannot fetch the bytes anywhere skips
// its frontier over the gap instead of waiting forever. Only a joiner
// syncing against a moving stability watermark can hit that path: a live
// in-view member is covered by every full-group chain, so stability never
// outruns what it has processed. The retained messages then flow through
// the normal data path.
func (p *Process) handleRetransmit(r *wire.Retransmit) {
	forwarded := false
	for _, c := range r.Compacted {
		if int(c.Proc) >= p.cfg.N || c.Proc < 0 || c.To <= p.tracker.LastProcessed(c.Proc) {
			continue // out of range, or already past the gap
		}
		p.hist.Skip(c.Proc, c.To)
		p.tracker.FastForward(c.Proc, c.To)
		p.Stats.FastForwards++
		forwarded = true
		if p.cb.OnFastForward != nil {
			p.cb.OnFastForward(c.Proc, c.To)
		}
	}
	if forwarded {
		// Waiting copies at or below the new frontier are obsolete
		// duplicates now; left in place they would present as "ready" and
		// trip the tracker's contiguity check. Above it, messages may have
		// become processable.
		p.wait.DropStale(p.tracker.Processed())
		p.cascade()
	}
	for _, m := range r.Msgs {
		p.handleData(m)
	}
}

func (p *Process) handleData(m *causal.Message) {
	if m.Validate() != nil {
		return // malformed; a real deployment would log this
	}
	if m.ID.Seq <= p.tracker.LastProcessed(m.ID.Proc) || p.wait.Has(m.ID) {
		p.Stats.Duplicates++
		return
	}
	if p.tracker.Doomed(m) {
		p.Stats.Duplicates++
		return // destroyed by agreement; never process, never wait
	}
	if p.tracker.Ready(m) {
		p.processMsg(m)
		p.cascade()
		return
	}
	p.wait.Add(m)
	if p.cb.OnWait != nil {
		p.cb.OnWait(m, p.missingDeps(m))
	}
}

// missingDeps returns m's currently unmet effective dependencies. The
// result reuses a scratch buffer: it is valid only until the next call,
// and callees must clone it to retain it (the OnWait contract).
func (p *Process) missingDeps(m *causal.Message) mid.DepList {
	missing := p.missScratch[:0]
	for _, d := range m.Deps {
		if p.tracker.LastProcessed(d.Proc) < d.Seq {
			missing = append(missing, d)
		}
	}
	if prev := m.ID.Prev(); !prev.IsZero() && p.tracker.LastProcessed(prev.Proc) < prev.Seq && !missing.Covers(prev) {
		missing = append(missing, prev)
	}
	missing = missing.Canonical()
	p.missScratch = missing
	return missing
}

func (p *Process) processMsg(m *causal.Message) {
	if err := p.tracker.Process(m); err != nil {
		// Ordering violations are protocol bugs; surface loudly.
		panic(fmt.Sprintf("core: process %d: %v", p.id, err))
	}
	if err := p.hist.Store(m); err != nil {
		panic(fmt.Sprintf("core: process %d: %v", p.id, err))
	}
	p.Stats.ProcessedN++
	if p.cb.OnProcess != nil {
		p.cb.OnProcess(m)
	}
}

func (p *Process) cascade() {
	for {
		m := p.wait.NextReady(p.tracker)
		if m == nil {
			return
		}
		p.wait.Remove(m.ID)
		p.processMsg(m)
	}
}

// noteDecision keeps the freshest decision seen without applying it (used
// for decisions gleaned from forwarded requests).
func (p *Process) noteDecision(d *wire.Decision) {
	if p.lastDec == nil || d.Subrun > p.lastDec.Subrun {
		p.lastDec = d
	}
}

func (p *Process) handleDecision(d *wire.Decision) {
	if p.lastDec != nil && d.Subrun <= p.lastDec.Subrun {
		return // stale
	}
	if d.Subrun == p.subrun {
		p.decisionThisSub = true
		p.missedCoords = 0
	}
	p.applyDecision(d)
}

func (p *Process) applyDecision(d *wire.Decision) {
	p.lastDec = d
	if p.cb.OnDecision != nil {
		p.cb.OnDecision(d)
	}

	// Group composition: adopt the decision's membership verdicts.
	p.adoptMask(d.Alive)
	if p.joining && d.Subrun > p.subrun {
		// Chase the group's subrun numbering: a restarted member's round
		// clock restarts at zero, and requests naming a stale subrun are
		// never folded.
		p.subrunBias += d.Subrun - p.subrun
		p.subrun = d.Subrun
	}
	if p.joinAligning && int(p.id) < len(d.MaxProcessed) && d.MaxProcessed[p.id] > p.nextSeq {
		// Some member holds more of our previous incarnation's sequence
		// than the sponsor did; resume past it.
		p.nextSeq = d.MaxProcessed[p.id]
	}
	if int(p.id) < len(d.Alive) && !d.Alive[p.id] {
		if !p.joining {
			// We are supposed dead: commit suicide. (A restart re-enters
			// through the join protocol: leave, resync, rejoin.)
			p.leave(Suicide)
			return
		}
		// A joiner expects to be listed dead until a coordinator folds its
		// join-flagged request; keep soliciting admission.
	} else if p.joining {
		// The view includes us: a coordinator admitted our request — or we
		// restarted before anyone declared the old incarnation crashed.
		p.becomeJoined()
	}

	// History cleaning: only a full-group stability vector may purge.
	if d.FullGroup {
		// Clip to what we ourselves processed: stability says everyone
		// covered processed these, and we are alive, but clip defensively.
		clean := d.CleanTo.Clone()
		clean.MinInto(p.tracker.Processed())
		p.hist.CleanTo(clean)
		copy(p.lastClean, clean)
		if p.cb.OnStable != nil {
			p.cb.OnStable(clean)
		}

		// Orphaned sequences: a gap above the best alive holder of a
		// crashed root's sequence can never be filled; the group destroys
		// the dependents and restarts the sequence's consumers after the
		// gap... which is to say, never (a sequence cannot skip).
		for q := 0; q < p.cfg.N; q++ {
			if q >= len(d.Alive) || d.Alive[q] {
				continue
			}
			qp := mid.ProcID(q)
			if d.MinWaiting[q] != 0 && d.MinWaiting[q] > d.MaxProcessed[q]+1 {
				if p.tracker.LastProcessed(qp) <= d.MaxProcessed[q] {
					_ = p.tracker.Condemn(qp, d.MaxProcessed[q]+1)
				}
			}
		}
		for _, m := range p.wait.DropDoomed(p.tracker) {
			p.Stats.Discarded++
			if p.cb.OnDiscard != nil {
				p.cb.OnDiscard(m)
			}
		}
	}

	// Recovery from history: chase every sequence the decision proves we
	// are behind on.
	p.requestRecovery(d)

	// The R rule: leaving after R recovery attempts with no progress.
	cur := p.tracker.Processed().Sum()
	if p.recoveryRequested {
		if cur == p.lastProgress {
			p.recoveryFailures++
			if p.cfg.SelfExclusion && !p.joining && p.recoveryFailures >= p.cfg.R {
				p.leave(RecoveryExhausted)
				return
			}
		} else {
			p.recoveryFailures = 0
		}
	}
	p.lastProgress = cur
}

func (p *Process) requestRecovery(d *wire.Decision) {
	wantsBy := make(map[mid.ProcID][]wire.WantRange)
	batch := p.cfg.recoveryBatch()
	for q := 0; q < p.cfg.N && q < len(d.MaxProcessed); q++ {
		qp := mid.ProcID(q)
		have := p.tracker.LastProcessed(qp)
		if d.MaxProcessed[q] <= have {
			continue
		}
		if c := p.tracker.CondemnedFrom(qp); c != 0 && have+1 >= c {
			continue // the gap is condemned, not recoverable
		}
		from := have + 1
		if p.wait.Has(mid.MID{Proc: qp, Seq: from}) {
			continue // already received; waiting on cross deps, not on q
		}
		holder := d.MostUpdated[q]
		if holder == p.id || holder == mid.None {
			continue
		}
		to := d.MaxProcessed[q]
		if to > from+batch-1 {
			to = from + batch - 1
		}
		wantsBy[holder] = append(wantsBy[holder], wire.WantRange{Proc: qp, From: from, To: to})
	}
	if len(wantsBy) == 0 {
		p.recoveryRequested = false
		return
	}
	p.recoveryRequested = true
	for h := 0; h < p.cfg.N; h++ { // fixed order keeps runs reproducible
		holder := mid.ProcID(h)
		wants, ok := wantsBy[holder]
		if !ok {
			continue
		}
		p.Stats.Recoveries++
		if p.cb.OnRecover != nil {
			p.cb.OnRecover(holder, len(wants))
		}
		p.tp.Send(holder, &wire.Recover{Requester: p.id, Wants: wants})
	}
}

func (p *Process) handleRecover(r *wire.Recover) {
	var msgs []*causal.Message
	var compacted []wire.WantRange
	for _, w := range r.Wants {
		got, err := p.hist.Range(w.Proc, w.From, w.To)
		msgs = append(msgs, got...)
		var ce *history.CompactedError
		if errors.As(err, &ce) {
			// The front of the want was purged here as uniformly stable.
			// Name the prefix nobody retains, so a joiner can skip it
			// instead of chasing unreachable bytes through R retries.
			to := w.To
			if ce.Base < to {
				to = ce.Base
			}
			compacted = append(compacted, wire.WantRange{Proc: w.Proc, From: w.From, To: to})
		}
	}
	if len(msgs) == 0 && len(compacted) == 0 {
		return
	}
	p.Stats.Retransmits++
	if p.cb.OnRetransmit != nil {
		p.cb.OnRetransmit(r.Requester, len(msgs))
	}
	p.tp.Send(r.Requester, &wire.Retransmit{Responder: p.id, Msgs: msgs, Compacted: compacted})
}

// adoptMask folds a decision's alive mask into the local view, in both
// directions: crash declarations remove members, join admissions restore
// them. Callers gate on decision freshness (handleDecision drops stale
// subruns), so the mask never time-travels; a truly crashed member that a
// stale view wrongly kept is re-declared within K subruns by the same
// silence counting that declared it the first time.
func (p *Process) adoptMask(mask []bool) {
	if p.cb.OnCrashDeclared != nil {
		for q := 0; q < p.cfg.N && q < len(mask); q++ {
			if !mask[q] && p.view.Alive(mid.ProcID(q)) {
				p.cb.OnCrashDeclared(mid.ProcID(q))
			}
		}
	}
	removed, added := p.view.Adopt(mask)
	for _, q := range added {
		p.noteJoined(q)
	}
	if len(removed)+len(added) > 0 && p.cb.OnViewChange != nil {
		p.cb.OnViewChange(p.view.AliveMask())
	}
}

// noteJoined clears the bookkeeping of q's previous incarnation when the
// view re-admits it: the condemned-suffix mark (the rejoined sequence
// continues past the resume point and must be processable again), and any
// stale waiting copies the old incarnation left behind (whatever is still
// needed re-arrives through recovery; what is not would collide with the
// re-issued sequence numbers).
func (p *Process) noteJoined(q mid.ProcID) {
	p.tracker.Uncondemn(q)
	p.wait.DropSender(q)
	if q != p.id && p.cb.OnMemberJoined != nil {
		p.cb.OnMemberJoined(q)
	}
}

func (p *Process) leave(reason LeaveReason) {
	if !p.running {
		return
	}
	p.running = false
	if p.cb.OnLeave != nil {
		p.cb.OnLeave(reason)
	}
}

// computeDecision folds the collected requests and the freshest circulated
// decision into this subrun's decision. See Figure 2 of the paper.
func (p *Process) computeDecision() *wire.Decision {
	n := p.cfg.N

	// Deterministic iteration order over the collected requests.
	senders := make([]mid.ProcID, 0, len(p.requests))
	for q := 0; q < n; q++ {
		if _, ok := p.requests[mid.ProcID(q)]; ok {
			senders = append(senders, mid.ProcID(q))
		}
	}

	// The freshest previous decision: ours or any carried by a request.
	prev := p.lastDec
	for _, sender := range senders {
		if r := p.requests[sender]; r.Prev != nil && (prev == nil || r.Prev.Subrun > prev.Subrun) {
			prev = r.Prev
		}
	}

	d := &wire.Decision{
		Subrun:       p.subrun,
		Coord:        p.id,
		MaxProcessed: mid.NewSeqVector(n),
		MostUpdated:  make([]mid.ProcID, n),
		MinWaiting:   mid.NewSeqVector(n),
		CleanTo:      mid.NewSeqVector(n),
		Attempts:     make([]uint8, n),
		Alive:        make([]bool, n),
		Covered:      make([]bool, n),
	}
	for q := range d.MostUpdated {
		d.MostUpdated[q] = mid.None
	}

	// Group composition: start from the local view folded with the
	// previous decision's mask, then fold join admissions, then count
	// silence. A join-flagged request is a live, synced process asking back
	// in: re-admit it before Observe so the admission lands in this
	// decision's mask and its attempts counter restarts at zero (it is in
	// heard). Everyone else adopts the admission from the mask.
	if prev != nil {
		p.adoptMask(prev.Alive)
	}
	admitted := false
	for q := 0; q < n; q++ {
		sender := mid.ProcID(q)
		if r, ok := p.requests[sender]; ok && r.Join && p.view.MarkAlive(sender) {
			p.noteJoined(sender)
			admitted = true
		}
	}
	if admitted && p.cb.OnViewChange != nil {
		p.cb.OnViewChange(p.view.AliveMask())
	}
	heard := make([]bool, n)
	for sender := range p.requests {
		if int(sender) < n {
			heard[sender] = true
		}
	}
	att := group.NewAttempts(n, p.cfg.K)
	if prev != nil {
		att.Load(prev.Attempts)
	}
	declared := att.Observe(heard, p.view)
	for _, crashed := range declared {
		p.view.MarkCrashed(crashed)
		if p.cb.OnCrashDeclared != nil {
			p.cb.OnCrashDeclared(crashed)
		}
	}
	if len(declared) > 0 && p.cb.OnViewChange != nil {
		p.cb.OnViewChange(p.view.AliveMask())
	}
	copy(d.Attempts, att.Counts())
	copy(d.Alive, p.view.AliveMask())

	// Most-updated holders, pruned to alive processes so recovery targets
	// can actually answer.
	if prev != nil {
		for q := 0; q < n && q < len(prev.MaxProcessed); q++ {
			h := prev.MostUpdated[q]
			if h != mid.None && p.view.Alive(h) {
				d.MaxProcessed[q] = prev.MaxProcessed[q]
				d.MostUpdated[q] = h
			}
		}
	}
	for _, sender := range senders {
		r := p.requests[sender]
		for q := 0; q < n && q < len(r.LastProcessed); q++ {
			if r.LastProcessed[q] > d.MaxProcessed[q] {
				d.MaxProcessed[q] = r.LastProcessed[q]
				d.MostUpdated[q] = sender
			}
		}
	}

	// Stability chain (CleanTo/Covered) and the waiting minima: continue
	// the previous chain if it was still accumulating, else start afresh.
	chaining := prev != nil && !prev.FullGroup
	if chaining {
		copy(d.Covered, prev.Covered)
		copy(d.CleanTo, prev.CleanTo)
		copy(d.MinWaiting, prev.MinWaiting)
	} else {
		for q := range d.CleanTo {
			d.CleanTo[q] = ^mid.Seq(0) // +inf until first report folds in
		}
	}
	for _, sender := range senders {
		r := p.requests[sender]
		if int(sender) < n {
			d.Covered[sender] = true
		}
		d.CleanTo.MinInto(r.LastProcessed)
		for q := 0; q < n && q < len(r.Waiting); q++ {
			if w := r.Waiting[q]; w != 0 && (d.MinWaiting[q] == 0 || w < d.MinWaiting[q]) {
				d.MinWaiting[q] = w
			}
		}
	}
	for q := range d.CleanTo {
		if d.CleanTo[q] == ^mid.Seq(0) {
			d.CleanTo[q] = 0 // nobody reported; nothing provably stable
		}
	}

	// Full group: every currently-alive process is covered by the chain.
	d.FullGroup = true
	for q := 0; q < n; q++ {
		if d.Alive[q] && !d.Covered[q] {
			d.FullGroup = false
			break
		}
	}
	return d
}

package core

import (
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

// TestLemma41DetectionBound operationalizes Lemma 4.1: after a process
// crashes, every active process learns the crash within 2K+f subruns (the
// paper's bound; f = 0 here since no coordinator dies).
func TestLemma41DetectionBound(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		k := k
		crashAt := sim.StartOfSubrun(5)
		c, err := NewCluster(ClusterConfig{
			Config:   Config{N: 6, K: k, R: 2*k + 2, SelfExclusion: true},
			Seed:     int64(k),
			Injector: fault.Crash{Proc: 5, At: crashAt},
		})
		if err != nil {
			t.Fatal(err)
		}
		learned := map[mid.ProcID]sim.Time{}
		c.OnDecision = func(p mid.ProcID, d *wire.Decision) {
			if _, done := learned[p]; done {
				return
			}
			if len(d.Alive) > 5 && !d.Alive[5] {
				learned[p] = c.Engine().Now()
			}
		}
		_, err = c.Run(RunOptions{
			MaxRounds: 2 * (5 + 2*k + 10),
			OnRound:   steadyWorkload(c, 2, 5+2*k+8),
		})
		if err != nil {
			t.Fatal(err)
		}
		bound := crashAt + sim.Time(2*k)*sim.TicksPerSubrun + sim.TicksPerSubrun // +1 subrun of delivery slack
		for _, p := range c.ActiveSet() {
			at, ok := learned[p]
			if !ok {
				t.Fatalf("K=%d: proc %d never learned the crash", k, p)
			}
			if at > bound {
				t.Errorf("K=%d: proc %d learned at %.1f rtd, bound %.1f rtd (Lemma 4.1)",
					k, p, at.RTD(), bound.RTD())
			}
		}
	}
}

// TestLemma42RecoveryBound operationalizes Lemma 4.2: a process missing
// messages that an active process holds recovers them within 2K+f+R subruns
// of the omission.
func TestLemma42RecoveryBound(t *testing.T) {
	k := 3
	// All of p3's receptions fail during subrun 2 only: it misses the
	// messages broadcast there and must recover them from history.
	lossFrom := sim.StartOfSubrun(2)
	lossTo := sim.StartOfSubrun(3)
	_ = lossFrom
	c, err := NewCluster(ClusterConfig{
		Config: Config{N: 5, K: k, R: 2*k + 2, SelfExclusion: true},
		Seed:   9,
		Injector: fault.During{
			From: lossFrom, To: lossTo,
			Inner: fault.OnlyProc{Proc: 3, Inner: &fault.EveryNth{N: 1, Side: fault.AtRecv}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	perProc := 12
	_, err = c.Run(RunOptions{
		MaxRounds: 2 * (perProc + 4*k + 10),
		OnRound:   steadyWorkload(c, 2, perProc),
	})
	if err != nil {
		t.Fatal(err)
	}
	// p3 must have caught up on everything generated in the loss window.
	p3 := c.Proc(3)
	for q := 0; q < 5; q++ {
		if got := p3.Processed()[q]; got != mid.Seq(perProc) {
			t.Errorf("p3 processed %d of p%d's messages, want %d", got, q, perProc)
		}
	}
	if p3.Stats.Recoveries == 0 {
		t.Error("p3 should have recovered from history")
	}
	// And it must have recovered within the Lemma 4.2 bound, checked via
	// the delay metric: the worst (generation -> processing) gap across the
	// whole run stays under 2K+f+R subruns (f=0) plus delivery slack.
	if worst := c.Delay.MaxRTD(); worst > float64(2*k+(2*k+2)+2) {
		t.Errorf("worst delay %.1f rtd exceeds the 2K+f+R bound", worst)
	}
}

// TestRecoveryExhaustionLeave verifies the R rule end to end: a process
// whose recovery target never answers (it crashed, and no other member
// holds the messages either — they were condemned) leaves after R attempts
// rather than spinning forever. Construct it by isolating one process's
// receives completely, so it can never make progress, with self-exclusion
// enabled.
func TestRecoveryExhaustionLeave(t *testing.T) {
	k := 2
	c, err := NewCluster(ClusterConfig{
		Config: Config{N: 4, K: k, R: 2*k + 1, SelfExclusion: true},
		Seed:   10,
		Injector: fault.During{
			From: sim.StartOfSubrun(3), To: 1 << 40,
			// p3 stops receiving DATA and decisions entirely.
			Inner: fault.OnlyProc{Proc: 3, Inner: &fault.EveryNth{N: 1, Side: fault.AtRecv}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(RunOptions{
		MaxRounds: 200,
		OnRound:   steadyWorkload(c, 2, 30),
	})
	if err != nil {
		t.Fatal(err)
	}
	reason, left := c.Left[3]
	if !left {
		t.Fatal("fully isolated process should self-exclude")
	}
	// Either rule may fire first: it hears no coordinator (CoordinatorSilence)
	// — the usual outcome for total receive loss.
	if reason != CoordinatorSilence && reason != RecoveryExhausted {
		t.Errorf("unexpected leave reason %v", reason)
	}
	// The survivors excluded it and kept converging.
	for _, p := range c.ActiveSet() {
		if c.Proc(p).View().Alive(3) {
			t.Errorf("proc %d still believes 3 alive", p)
		}
	}
	checkUniformity(t, c)
}

package core_test

import (
	"fmt"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// A three-member group exchanges causally related messages inside the
// deterministic simulator: member 1 answers member 0's question and labels
// the dependency, so every member processes question before answer.
func ExampleCluster() {
	c, err := core.NewCluster(core.ClusterConfig{
		Config: core.Config{N: 3, K: 2, R: 5, SelfExclusion: true},
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}

	var question mid.MID
	_, err = c.Run(core.RunOptions{
		MaxRounds: 60,
		MinRounds: 8,
		OnRound: func(round int) {
			switch round {
			case 0:
				question, _ = c.Submit(0, []byte("breakfast?"), nil)
			case 2:
				// By now member 1 has processed the question and may
				// causally answer it.
				_, _ = c.Submit(1, []byte("pancakes"), mid.DepList{question})
			}
		},
		StopWhenQuiescent: true,
		DrainSubruns:      2,
	})
	if err != nil {
		panic(err)
	}

	for i := 0; i < 3; i++ {
		log := c.ProcessedLog[i]
		fmt.Printf("member %d processed %v then %v\n", i, log[0], log[1])
	}
	// Output:
	// member 0 processed p0#1 then p1#1
	// member 1 processed p0#1 then p1#1
	// member 2 processed p0#1 then p1#1
}

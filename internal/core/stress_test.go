package core

import (
	"math/rand"
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/group"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

// TestRandomizedFailureSchedules runs many small groups under randomized
// crash + omission schedules within the resilience assumptions and asserts
// the URCGC safety clauses on every run:
//
//   - Uniform Atomicity (survivors): all active processes end with
//     identical processed vectors.
//   - Uniform Ordering: each log respects per-sequence contiguity;
//     cross-sequence causal order is enforced by the tracker, which panics
//     on violation, so merely completing the run checks it.
//   - View agreement: active processes agree the crashed are crashed once
//     quiescent.
//   - Discard consistency: a message processed by any active process is
//     condemned at no active process.
func TestRandomizedFailureSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(5)
		perProc := 5 + rng.Intn(10)
		cfg := Config{N: n, K: 3, R: 8, SelfExclusion: true}

		// At most (n-1)/2 crashes, spread over the early run; a mild global
		// omission rate stays within the per-subrun resilience with high
		// probability.
		var inj fault.Multi
		crashes := rng.Intn(group.Resilience(n) + 1)
		crashedAt := map[mid.ProcID]sim.Time{}
		for len(crashedAt) < crashes {
			p := mid.ProcID(rng.Intn(n))
			if _, dup := crashedAt[p]; dup {
				continue
			}
			at := sim.Time(rng.Int63n(int64(20 * sim.TicksPerRTD)))
			crashedAt[p] = at
			inj = append(inj, fault.Crash{Proc: p, At: at})
		}
		if rng.Intn(2) == 0 {
			inj = append(inj, fault.During{
				From:  0,
				To:    sim.Time(10+rng.Intn(20)) * sim.TicksPerRTD,
				Inner: fault.NewRate(0.01+0.02*rng.Float64(), fault.AtSend, rng.Int63()),
			})
		}

		c, err := NewCluster(ClusterConfig{Config: cfg, Seed: rng.Int63(), Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(RunOptions{
			MaxRounds:         1200,
			MinRounds:         2 * 2 * perProc,
			OnRound:           steadyWorkload(c, 2, perProc),
			StopWhenQuiescent: true,
			DrainSubruns:      4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.QuiescentAtRound < 0 {
			t.Fatalf("trial %d (n=%d crashes=%d): never quiescent; active=%v left=%v",
				trial, n, crashes, c.ActiveSet(), c.Left)
		}

		checkUniformity(t, c)
		checkCausalOrder(t, c)

		active := c.ActiveSet()
		if len(active) == 0 {
			continue // everything died; nothing to compare
		}
		// View agreement on real crashes — but only those that took effect
		// long enough (2K+2 subruns) before the run ended for detection to
		// have completed.
		detectionWindow := sim.Time(2*cfg.K+2) * sim.TicksPerSubrun
		for _, p := range active {
			for q, at := range crashedAt {
				if at+detectionWindow > res.End {
					continue
				}
				if c.Proc(p).View().Alive(q) {
					t.Errorf("trial %d: proc %d still believes crashed %d (at %d, end %d) alive", trial, p, q, at, res.End)
				}
			}
		}
		// Discard consistency: nothing processed anywhere active may be
		// condemned anywhere active. Equal vectors + per-process condemned
		// suffixes beyond the processed point make this mostly structural;
		// check via the discard logs against the common processed vector.
		ref := c.Proc(active[0]).Processed()
		for _, p := range active {
			for _, id := range c.DiscardLog[p] {
				if ref[id.Proc] >= id.Seq {
					t.Errorf("trial %d: %v discarded at %d but processed by the group", trial, id, p)
				}
			}
		}
	}
}

// TestResilienceBoundCrashBurst crashes exactly t = (n-1)/2 processes in the
// same subrun — the paper's worst admissible case — and checks the group
// still converges and cleans history.
func TestResilienceBoundCrashBurst(t *testing.T) {
	n := 9 // t = 4
	cfg := Config{N: n, K: 3, R: 8, SelfExclusion: true}
	var inj fault.Multi
	for i := 0; i < group.Resilience(n); i++ {
		inj = append(inj, fault.Crash{Proc: mid.ProcID(2*i + 1), At: sim.StartOfSubrun(4) + sim.Time(i*10)})
	}
	c, err := NewCluster(ClusterConfig{Config: cfg, Seed: 77, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	perProc := 8
	res, err := c.Run(RunOptions{
		MaxRounds: 800, MinRounds: 2 * 2 * perProc,
		OnRound:           steadyWorkload(c, 2, perProc),
		StopWhenQuiescent: true, DrainSubruns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatalf("never quiescent; left=%v", c.Left)
	}
	checkUniformity(t, c)
	if len(c.ActiveSet()) != n-group.Resilience(n) {
		t.Errorf("active = %v", c.ActiveSet())
	}
	for _, p := range c.ActiveSet() {
		if h := c.Proc(p).HistoryLen(); h > 2*n {
			t.Errorf("proc %d history %d never cleaned after burst", p, h)
		}
	}
}

// TestBackToBackCoordinatorCrashes kills two consecutive coordinators right
// at their subruns (f = 2) and verifies decisions keep chaining: the f
// penalty delays but never blocks the agreement (Figure 5's mechanism).
func TestBackToBackCoordinatorCrashes(t *testing.T) {
	n := 6
	cfg := Config{N: n, K: 3, R: 8, SelfExclusion: true}
	// Coordinators rotate 0,1,2,...; kill coordinators of subruns 3 and 4
	// just before their decision phases.
	inj := fault.Multi{
		fault.Crash{Proc: 3, At: sim.StartOfSubrun(3) + sim.TicksPerRound - 1},
		fault.Crash{Proc: 4, At: sim.StartOfSubrun(4) + sim.TicksPerRound - 1},
	}
	c, err := NewCluster(ClusterConfig{Config: cfg, Seed: 3, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	perProc := 10
	res, err := c.Run(RunOptions{
		MaxRounds: 800, MinRounds: 2 * 2 * perProc,
		OnRound:           steadyWorkload(c, 2, perProc),
		StopWhenQuiescent: true, DrainSubruns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatalf("never quiescent; left=%v", c.Left)
	}
	checkUniformity(t, c)
	for _, p := range c.ActiveSet() {
		v := c.Proc(p).View()
		if v.Alive(3) || v.Alive(4) {
			t.Errorf("proc %d has stale view %v", p, v)
		}
		if h := c.Proc(p).HistoryLen(); h > 2*n {
			t.Errorf("proc %d history %d not cleaned", p, h)
		}
	}
	// No survivor should have self-excluded: the decision chain must have
	// carried the silence counters across the dead coordinators.
	for p, r := range c.Left {
		if !c.Crashed(p) {
			t.Errorf("survivor %d left (%v)", p, r)
		}
	}
}

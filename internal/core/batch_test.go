package core

import (
	"errors"
	"fmt"
	"testing"

	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

// burstWorkload submits burst messages at every active process every period
// rounds — enough pending traffic per subrun to force multi-message frames
// when BatchMax > 1.
func burstWorkload(c *Cluster, period, bursts, burst int) func(round int) {
	return func(round int) {
		if round%period != 0 || round/period >= bursts {
			return
		}
		for i := 0; i < c.N(); i++ {
			p := mid.ProcID(i)
			if !c.Active(p) {
				continue
			}
			prev := mid.ProcID((i + c.N() - 1) % c.N())
			for k := 0; k < burst; k++ {
				var deps mid.DepList
				if s := c.Proc(p).Processed()[prev]; s > 0 {
					deps = mid.DepList{{Proc: prev, Seq: s}}
				}
				if _, err := c.Submit(p, []byte(fmt.Sprintf("b%d-%d-%d", i, round, k)), deps); err != nil {
					panic(err)
				}
			}
		}
	}
}

// TestBatchedRunConverges runs a bursty workload with multi-message subrun
// drains (BatchMax > 1) and asserts the batched wire path preserves the
// protocol's guarantees: same processed vectors everywhere, causal order in
// every log, and nothing lost.
func TestBatchedRunConverges(t *testing.T) {
	cfg := baseCfg(5)
	cfg.BatchMax = 8
	c, err := NewCluster(ClusterConfig{Config: cfg, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	const bursts, burst = 6, 4
	res, err := c.Run(RunOptions{
		MaxRounds: 400, MinRounds: 4 * bursts,
		OnRound:           burstWorkload(c, 4, bursts, burst),
		StopWhenQuiescent: true, DrainSubruns: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("batched group never became quiescent")
	}
	checkUniformity(t, c)
	checkCausalOrder(t, c)
	want := mid.Seq(bursts * burst)
	batches := 0
	for i := 0; i < c.N(); i++ {
		p := c.Proc(mid.ProcID(i))
		batches += p.Stats.Batches
		for q, s := range p.Processed() {
			if s != want {
				t.Fatalf("proc %d processed %d of p%d's messages, want %d", i, s, q, want)
			}
		}
	}
	if batches == 0 {
		t.Fatal("bursty workload with BatchMax=8 never broadcast a DataBatch frame")
	}
	if len(c.Left) != 0 {
		t.Fatalf("no process should leave under reliable batched traffic: %v", c.Left)
	}
}

// TestBatchedCrashRunConverges layers a coordinator crash over batched
// traffic: the survivors must still reach identical logs (Uniform
// Atomicity/Ordering restricted to survivors).
func TestBatchedCrashRunConverges(t *testing.T) {
	cfg := baseCfg(5)
	cfg.BatchMax = 8
	c, err := NewCluster(ClusterConfig{
		Config:   cfg,
		Seed:     22,
		Injector: fault.Crash{Proc: 4, At: sim.StartOfSubrun(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	const bursts, burst = 6, 4
	_, err = c.Run(RunOptions{
		MaxRounds: 600, MinRounds: 4 * bursts,
		OnRound:           burstWorkload(c, 4, bursts, burst),
		StopWhenQuiescent: true, DrainSubruns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkUniformity(t, c)
	checkCausalOrder(t, c)
}

// captureTP records broadcast PDUs for frame-shape assertions.
type captureTP struct{ bcast []wire.PDU }

func (t *captureTP) Send(mid.ProcID, wire.PDU) {}
func (t *captureTP) Broadcast(p wire.PDU)      { t.bcast = append(t.bcast, p) }
func (t *captureTP) dataFrames() (out []wire.PDU) {
	for _, p := range t.bcast {
		if p.Kind().IsData() {
			out = append(out, p)
		}
	}
	return out
}

// TestBatchSplitsToByteBudget drives one process directly and asserts the
// outbox drain splits into DataBatch frames whose encoded size respects
// BatchBytes, with a singleton remainder travelling as classic Data.
func TestBatchSplitsToByteBudget(t *testing.T) {
	cfg := baseCfg(3)
	cfg.BatchMax = 16
	cfg.BatchBytes = 80
	tp := &captureTP{}
	var batchCalls, batchMsgs int
	p, err := NewProcess(0, cfg, tp, Callbacks{
		OnBatchBroadcast: func(msgs, bytes int) {
			batchCalls++
			batchMsgs += msgs
			if bytes > cfg.BatchBytes {
				t.Errorf("OnBatchBroadcast reported %d bytes, budget %d", bytes, cfg.BatchBytes)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seven 10-byte messages: bodies of 22 bytes each, so frames pack three
	// messages (3+66=69 <= 80), leaving 3+3+1.
	for k := 0; k < 7; k++ {
		if _, err := p.Submit(make([]byte, 10), nil); err != nil {
			t.Fatal(err)
		}
	}
	p.StartRound(0)

	var got []mid.MID
	frames := tp.dataFrames()
	for _, f := range frames {
		switch v := f.(type) {
		case *wire.DataBatch:
			if len(v.Msgs) < 2 {
				t.Errorf("DataBatch frame with %d messages; singletons must travel as Data", len(v.Msgs))
			}
			if v.EncodedSize() > cfg.BatchBytes {
				t.Errorf("frame of %d bytes exceeds BatchBytes %d", v.EncodedSize(), cfg.BatchBytes)
			}
			for i := range v.Msgs {
				got = append(got, v.Msgs[i].ID)
			}
		case *wire.Data:
			got = append(got, v.Msg.ID)
		}
	}
	if len(frames) != 3 {
		t.Fatalf("7 messages under an 80-byte budget left in %d frames, want 3 (3+3+1)", len(frames))
	}
	if _, ok := frames[2].(*wire.Data); !ok {
		t.Errorf("remainder frame is %T, want classic *wire.Data for the singleton", frames[2])
	}
	for k, id := range got {
		if want := (mid.MID{Proc: 0, Seq: mid.Seq(k + 1)}); id != want {
			t.Fatalf("frame traversal yields %v at position %d, want %v (submission order)", id, k, want)
		}
	}
	if p.Stats.Batches != 2 || batchCalls != 2 || batchMsgs != 6 {
		t.Errorf("Stats.Batches=%d batchCalls=%d batchMsgs=%d, want 2/2/6", p.Stats.Batches, batchCalls, batchMsgs)
	}
	if p.Stats.Generated != 7 {
		t.Errorf("Stats.Generated=%d, want 7", p.Stats.Generated)
	}
}

// TestSubmitRejectsOversize pins the protocol-boundary guard added with the
// wire-limit bugfix: anything the 16-bit wire prefixes cannot carry is
// rejected at Submit with ErrTooLarge, never silently wrapped.
func TestSubmitRejectsOversize(t *testing.T) {
	p, err := NewProcess(0, baseCfg(3), &captureTP{}, Callbacks{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(make([]byte, wire.MaxPayload), nil); err != nil {
		t.Fatalf("payload of MaxPayload bytes must be accepted: %v", err)
	}
	if _, err := p.Submit(make([]byte, wire.MaxPayload+1), nil); !errors.Is(err, wire.ErrTooLarge) {
		t.Fatalf("payload one past MaxPayload: err=%v, want ErrTooLarge", err)
	}
	deps := make(mid.DepList, wire.MaxDeps+1)
	for i := range deps {
		deps[i] = mid.MID{Proc: 1, Seq: mid.Seq(i + 1)}
	}
	if _, err := p.Submit([]byte("x"), deps); !errors.Is(err, wire.ErrTooLarge) {
		t.Fatalf("deps one past MaxDeps: err=%v, want ErrTooLarge", err)
	}
}

package core

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// capture is a transport that records everything a process sends.
type capture struct {
	sends  []captured
	bcasts []wire.PDU
}

type captured struct {
	dst mid.ProcID
	pdu wire.PDU
}

func (c *capture) Send(dst mid.ProcID, pdu wire.PDU) {
	c.sends = append(c.sends, captured{dst, pdu})
}
func (c *capture) Broadcast(pdu wire.PDU) { c.bcasts = append(c.bcasts, pdu) }

func (c *capture) lastDecision(t *testing.T) *wire.Decision {
	t.Helper()
	for i := len(c.bcasts) - 1; i >= 0; i-- {
		if d, ok := c.bcasts[i].(*wire.Decision); ok {
			return d
		}
	}
	t.Fatal("no decision broadcast")
	return nil
}

func newProc(t *testing.T, id mid.ProcID, cfg Config) (*Process, *capture) {
	t.Helper()
	tp := &capture{}
	p, err := NewProcess(id, cfg, tp, Callbacks{})
	if err != nil {
		t.Fatal(err)
	}
	return p, tp
}

func req(sender mid.ProcID, subrun int64, last, waiting mid.SeqVector, prev *wire.Decision) *wire.Request {
	return &wire.Request{
		Sender: sender, Subrun: subrun,
		LastProcessed: last, Waiting: waiting, Prev: prev,
	}
}

func TestCoordinatorAggregatesRequests(t *testing.T) {
	cfg := Config{N: 4, K: 2, R: 5, SelfExclusion: true}
	p, tp := newProc(t, 0, cfg)

	// Subrun 0: p0 coordinates. Everyone reports.
	p.StartRound(0)
	p.Recv(1, req(1, 0, mid.SeqVector{3, 5, 0, 0}, mid.SeqVector{0, 0, 0, 0}, nil))
	p.Recv(2, req(2, 0, mid.SeqVector{2, 4, 7, 0}, mid.SeqVector{0, 0, 0, 2}, nil))
	p.Recv(3, req(3, 0, mid.SeqVector{4, 1, 0, 0}, mid.SeqVector{0, 6, 0, 0}, nil))
	p.StartRound(1)

	d := tp.lastDecision(t)
	if d.Subrun != 0 || d.Coord != 0 {
		t.Errorf("subrun/coord = %d/%d", d.Subrun, d.Coord)
	}
	// Max processed per sequence, with the reporting holder.
	if !d.MaxProcessed.Equal(mid.SeqVector{4, 5, 7, 0}) {
		t.Errorf("MaxProcessed = %v", d.MaxProcessed)
	}
	if d.MostUpdated[0] != 3 || d.MostUpdated[1] != 1 || d.MostUpdated[2] != 2 {
		t.Errorf("MostUpdated = %v", d.MostUpdated)
	}
	if d.MostUpdated[3] != mid.None {
		t.Errorf("MostUpdated[3] = %v, want None (nobody processed any)", d.MostUpdated[3])
	}
	// CleanTo = min over reports (p0's own report is all-zero).
	if !d.CleanTo.Equal(mid.SeqVector{0, 0, 0, 0}) {
		t.Errorf("CleanTo = %v", d.CleanTo)
	}
	// MinWaiting = min over nonzero waiting entries.
	if !d.MinWaiting.Equal(mid.SeqVector{0, 6, 0, 2}) {
		t.Errorf("MinWaiting = %v", d.MinWaiting)
	}
	// Everyone was heard: full group, nobody silent.
	if !d.FullGroup {
		t.Error("FullGroup should hold")
	}
	for i, a := range d.Attempts {
		if a != 0 {
			t.Errorf("Attempts[%d] = %d", i, a)
		}
	}
}

func TestCoordinatorCountsSilence(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	p, tp := newProc(t, 0, cfg)
	p.StartRound(0)
	p.Recv(1, req(1, 0, mid.NewSeqVector(3), mid.NewSeqVector(3), nil))
	// Process 2 silent.
	p.StartRound(1)
	d := tp.lastDecision(t)
	if d.Attempts[2] != 1 {
		t.Errorf("Attempts[2] = %d, want 1", d.Attempts[2])
	}
	if !d.Alive[2] {
		t.Error("one silent subrun must not declare a crash at K=2")
	}
	if d.FullGroup {
		t.Error("silent member not covered: FullGroup must be false")
	}
}

func TestAttemptsCirculateToDeclaration(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}

	// Coordinator of subrun 0 (p0) observes p2 silent once.
	p0, tp0 := newProc(t, 0, cfg)
	p0.StartRound(0)
	p0.Recv(1, req(1, 0, mid.NewSeqVector(3), mid.NewSeqVector(3), nil))
	p0.StartRound(1)
	d0 := tp0.lastDecision(t)

	// Coordinator of subrun 1 (p1) inherits the counter via the circulated
	// decision and observes p2 silent again: K=2 reached, crash declared.
	p1, tp1 := newProc(t, 1, cfg)
	p1.StartRound(2)
	p1.Recv(0, req(0, 1, mid.NewSeqVector(3), mid.NewSeqVector(3), d0))
	p1.StartRound(3)
	d1 := tp1.lastDecision(t)
	if d1.Attempts[2] < 2 {
		t.Errorf("Attempts[2] = %d, want >= 2", d1.Attempts[2])
	}
	if d1.Alive[2] {
		t.Error("p2 should be declared crashed after K silent subruns")
	}
	// Full group now holds on the reduced composition.
	if !d1.FullGroup {
		t.Error("FullGroup should hold over the survivors")
	}
}

func TestStabilityChainAccumulatesCoverage(t *testing.T) {
	cfg := Config{N: 4, K: 3, R: 7, SelfExclusion: true}

	// Subrun 0 at p0: only p1 reports (p2, p3 silent): partial chain.
	p0, tp0 := newProc(t, 0, cfg)
	p0.StartRound(0)
	p0.Recv(1, req(1, 0, mid.SeqVector{5, 5, 5, 5}, mid.NewSeqVector(4), nil))
	p0.StartRound(1)
	d0 := tp0.lastDecision(t)
	if d0.FullGroup {
		t.Fatal("chain incomplete, FullGroup must be false")
	}
	if !d0.Covered[0] || !d0.Covered[1] || d0.Covered[2] || d0.Covered[3] {
		t.Fatalf("Covered = %v", d0.Covered)
	}

	// Subrun 1 at p1: p2 and p3 report now (carrying d0), p0 silent — but
	// p0 is already covered by the chain, so the chain completes.
	p1, tp1 := newProc(t, 1, cfg)
	p1.StartRound(2)
	p1.Recv(2, req(2, 1, mid.SeqVector{4, 9, 9, 9}, mid.NewSeqVector(4), d0))
	p1.Recv(3, req(3, 1, mid.SeqVector{6, 9, 9, 9}, mid.NewSeqVector(4), d0))
	p1.StartRound(3)
	d1 := tp1.lastDecision(t)
	if !d1.FullGroup {
		t.Fatalf("chain should be complete: covered=%v alive=%v", d1.Covered, d1.Alive)
	}
	// CleanTo folds the chain minimum: p1's own report is all zero, so the
	// stable prefix is zero — conservative but correct. The interesting
	// entry is that the chain kept d0's coverage of p0.
	if !d1.Covered[0] {
		t.Error("chain lost p0's coverage")
	}
}

func TestSuicideOnDecision(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	var left []LeaveReason
	tp := &capture{}
	p, err := NewProcess(2, cfg, tp, Callbacks{
		OnLeave: func(r LeaveReason) { left = append(left, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &wire.Decision{
		Subrun: 5, Coord: 0,
		MaxProcessed: mid.NewSeqVector(3), MostUpdated: []mid.ProcID{mid.None, mid.None, mid.None},
		MinWaiting: mid.NewSeqVector(3), CleanTo: mid.NewSeqVector(3),
		Covered: []bool{true, true, false}, Attempts: []uint8{0, 0, 2},
		Alive: []bool{true, true, false}, FullGroup: true,
	}
	p.Recv(0, d)
	if p.Running() {
		t.Fatal("process should have committed suicide")
	}
	if len(left) != 1 || left[0] != Suicide {
		t.Errorf("left = %v", left)
	}
	// A halted process ignores everything.
	p.StartRound(12)
	p.Recv(0, d.Clone())
	if len(tp.bcasts) != 0 && len(tp.sends) != 0 {
		t.Error("halted process must not transmit")
	}
}

func TestDecisionTriggersRecovery(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, RecoveryBatch: 4, SelfExclusion: true}
	p, tp := newProc(t, 2, cfg)
	d := &wire.Decision{
		Subrun: 1, Coord: 0,
		MaxProcessed: mid.SeqVector{9, 0, 0},
		MostUpdated:  []mid.ProcID{0, mid.None, mid.None},
		MinWaiting:   mid.NewSeqVector(3), CleanTo: mid.NewSeqVector(3),
		Covered: []bool{true, true, true}, Attempts: make([]uint8, 3),
		Alive: []bool{true, true, true}, FullGroup: true,
	}
	p.Recv(0, d)
	if len(tp.sends) != 1 {
		t.Fatalf("sends = %v", tp.sends)
	}
	rec, ok := tp.sends[0].pdu.(*wire.Recover)
	if !ok || tp.sends[0].dst != 0 {
		t.Fatalf("expected RECOVER to p0, got %v to %d", tp.sends[0].pdu.Kind(), tp.sends[0].dst)
	}
	if len(rec.Wants) != 1 || rec.Wants[0] != (wire.WantRange{Proc: 0, From: 1, To: 4}) {
		t.Errorf("Wants = %v, want p0 1..4 (batch cap)", rec.Wants)
	}
}

func TestRecoveryNotRequestedFromSelfOrNone(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	p, tp := newProc(t, 2, cfg)
	d := &wire.Decision{
		Subrun: 1, Coord: 0,
		MaxProcessed: mid.SeqVector{0, 0, 5}, // our own sequence: we are behind?!
		MostUpdated:  []mid.ProcID{mid.None, mid.None, 2},
		MinWaiting:   mid.NewSeqVector(3), CleanTo: mid.NewSeqVector(3),
		Covered: []bool{true, true, true}, Attempts: make([]uint8, 3),
		Alive: []bool{true, true, true}, FullGroup: true,
	}
	p.Recv(0, d)
	if len(tp.sends) != 0 {
		t.Errorf("must not recover from self: %v", tp.sends)
	}
}

func TestHandleRecoverAnswersFromHistory(t *testing.T) {
	// SelfExclusion off: this isolated process would otherwise leave after
	// K subruns without hearing any coordinator.
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: false}
	p, tp := newProc(t, 0, cfg)
	// Process three own messages into the history via the normal path.
	for s := mid.Seq(1); s <= 3; s++ {
		if _, err := p.Submit([]byte{byte(s)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.StartRound(0) // broadcasts first message, processes it
	p.StartRound(2)
	p.StartRound(4)
	p.Recv(1, &wire.Recover{Requester: 1, Wants: []wire.WantRange{{Proc: 0, From: 1, To: 2}}})
	var rt *wire.Retransmit
	for _, s := range tp.sends {
		if v, ok := s.pdu.(*wire.Retransmit); ok && s.dst == 1 {
			rt = v
		}
	}
	if rt == nil {
		t.Fatal("no retransmit answered")
	}
	if len(rt.Msgs) != 2 || rt.Msgs[0].ID.Seq != 1 || rt.Msgs[1].ID.Seq != 2 {
		t.Errorf("retransmitted %v", rt.Msgs)
	}
	// Unanswerable recover: nothing held for that range.
	before := len(tp.sends)
	p.Recv(1, &wire.Recover{Requester: 1, Wants: []wire.WantRange{{Proc: 2, From: 1, To: 5}}})
	if len(tp.sends) != before {
		t.Error("empty recover must not be answered")
	}
}

func TestStaleRequestIgnoredButDecisionHarvested(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	p, _ := newProc(t, 0, cfg)
	d := &wire.Decision{
		Subrun: 7, Coord: 1,
		MaxProcessed: mid.NewSeqVector(3), MostUpdated: []mid.ProcID{mid.None, mid.None, mid.None},
		MinWaiting: mid.NewSeqVector(3), CleanTo: mid.NewSeqVector(3),
		Covered: []bool{true, true, true}, Attempts: make([]uint8, 3),
		Alive: []bool{true, true, true}, FullGroup: true,
	}
	// A request for a subrun we are not coordinating still carries a
	// fresher decision we should keep.
	p.StartRound(0)
	p.Recv(1, req(1, 99, mid.NewSeqVector(3), mid.NewSeqVector(3), d))
	if p.lastDec == nil || p.lastDec.Subrun != 7 {
		t.Errorf("embedded decision not harvested: %+v", p.lastDec)
	}
}

func TestFlowControlDefersBroadcast(t *testing.T) {
	cfg := Config{N: 2, K: 2, R: 5, HistoryThreshold: 2, SelfExclusion: false}
	p, tp := newProc(t, 0, cfg)
	for i := 0; i < 4; i++ {
		if _, err := p.Submit([]byte("x"), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Rounds 0 and 2 emit; by then the history holds 2 >= threshold, so
	// round 4 defers.
	p.StartRound(0)
	p.StartRound(2)
	p.StartRound(4)
	dataCount := 0
	for _, b := range tp.bcasts {
		if b.Kind() == wire.KindData {
			dataCount++
		}
	}
	if dataCount != 2 {
		t.Errorf("broadcast %d data messages, want 2 (flow control)", dataCount)
	}
	if p.PendingSubmissions() != 2 {
		t.Errorf("pending = %d, want 2", p.PendingSubmissions())
	}
	// Cleaning the history releases the valve.
	p.hist.CleanTo(mid.SeqVector{2, 0})
	p.StartRound(6)
	dataCount = 0
	for _, b := range tp.bcasts {
		if b.Kind() == wire.KindData {
			dataCount++
		}
	}
	if dataCount != 3 {
		t.Errorf("after cleaning, broadcasts = %d, want 3", dataCount)
	}
}

func TestDuplicateDataCounted(t *testing.T) {
	cfg := Config{N: 2, K: 2, R: 5, SelfExclusion: true}
	p, _ := newProc(t, 0, cfg)
	m := &causal.Message{ID: mid.MID{Proc: 1, Seq: 1}}
	p.Recv(1, &wire.Data{Msg: *m})
	p.Recv(1, &wire.Data{Msg: *m})
	if p.Stats.ProcessedN != 1 || p.Stats.Duplicates != 1 {
		t.Errorf("processed=%d dups=%d", p.Stats.ProcessedN, p.Stats.Duplicates)
	}
}

func TestMalformedDataIgnored(t *testing.T) {
	cfg := Config{N: 2, K: 2, R: 5, SelfExclusion: true}
	p, _ := newProc(t, 0, cfg)
	p.Recv(1, &wire.Data{Msg: causal.Message{}}) // zero MID
	if p.Stats.ProcessedN != 0 || p.WaitingLen() != 0 {
		t.Error("malformed message must be dropped")
	}
}

package core

import (
	"testing"

	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// TestOnRoundEndReportsGauges drives one process and checks the per-round
// observation stream: rounds in order, history growing as messages are
// processed, pending reflecting the outbox.
func TestOnRoundEndReportsGauges(t *testing.T) {
	cfg := Config{N: 2, K: 2, R: 5, SelfExclusion: true}
	tp := &capture{}
	var obs []RoundObservation
	p, err := NewProcess(0, cfg, tp, Callbacks{
		OnRoundEnd: func(o RoundObservation) { obs = append(obs, o) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit([]byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit([]byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	p.StartRound(0) // broadcasts+processes "a"; "b" still pending
	p.StartRound(1)
	p.StartRound(2) // broadcasts+processes "b"
	if len(obs) != 3 {
		t.Fatalf("got %d observations, want 3", len(obs))
	}
	if obs[0].Round != 0 || obs[1].Round != 1 || obs[2].Round != 2 {
		t.Errorf("round order wrong: %+v", obs)
	}
	if obs[0].HistoryLen != 1 || obs[0].Pending != 1 {
		t.Errorf("after round 0: %+v", obs[0])
	}
	if obs[2].HistoryLen != 2 || obs[2].Pending != 0 {
		t.Errorf("after round 2: %+v", obs[2])
	}
}

// TestOnCrashDeclaredAtCoordinator has the coordinator declare a silent
// member crashed and checks the hook fires exactly once.
func TestOnCrashDeclaredAtCoordinator(t *testing.T) {
	cfg := Config{N: 2, K: 1, R: 3, SelfExclusion: true}
	tp := &capture{}
	var declared []mid.ProcID
	p, err := NewProcess(0, cfg, tp, Callbacks{
		OnCrashDeclared: func(q mid.ProcID) { declared = append(declared, q) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.StartRound(0) // p1 stays silent
	p.StartRound(1) // K=1: attempts saturate, p1 declared crashed
	if len(declared) != 1 || declared[0] != 1 {
		t.Fatalf("declared = %v, want [1]", declared)
	}
	p.StartRound(2)
	p.StartRound(3)
	if len(declared) != 1 {
		t.Errorf("crash re-declared: %v", declared)
	}
}

// TestOnRecoverAndOnRetransmit checks both ends of a history recovery.
func TestOnRecoverAndOnRetransmit(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}

	// Requester side: a decision proves p0 is behind on p1's sequence.
	tp := &capture{}
	var recovers []mid.ProcID
	p, err := NewProcess(0, cfg, tp, Callbacks{
		OnRecover: func(holder mid.ProcID, ranges int) {
			if ranges != 1 {
				t.Errorf("ranges = %d, want 1", ranges)
			}
			recovers = append(recovers, holder)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := &wire.Decision{
		Subrun:       0,
		Coord:        1,
		MaxProcessed: mid.SeqVector{0, 2, 0},
		MostUpdated:  []mid.ProcID{mid.None, 1, mid.None},
		MinWaiting:   mid.NewSeqVector(3),
		CleanTo:      mid.NewSeqVector(3),
		Attempts:     make([]uint8, 3),
		Alive:        []bool{true, true, true},
		Covered:      []bool{true, true, true},
		FullGroup:    true,
	}
	p.Recv(1, d)
	if len(recovers) != 1 || recovers[0] != 1 {
		t.Fatalf("recovers = %v, want [1]", recovers)
	}

	// Responder side: p1 holds its own messages and answers a RECOVER.
	tp1 := &capture{}
	var answered []int
	p1, err := NewProcess(1, cfg, tp1, Callbacks{
		OnRetransmit: func(requester mid.ProcID, msgs int) {
			if requester != 0 {
				t.Errorf("requester = %v, want 0", requester)
			}
			answered = append(answered, msgs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Submit([]byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	p1.StartRound(0) // broadcasts and stores (1,1) in history
	p1.Recv(0, &wire.Recover{Requester: 0, Wants: []wire.WantRange{{Proc: 1, From: 1, To: 1}}})
	if len(answered) != 1 || answered[0] != 1 {
		t.Fatalf("answered = %v, want [1]", answered)
	}
}

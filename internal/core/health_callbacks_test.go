package core

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// fullGroupDecision builds a benign full-group decision for a group of n:
// everyone alive, nothing to recover, stability at clean.
func fullGroupDecision(n int, subrun int64, coord mid.ProcID, clean mid.SeqVector) *wire.Decision {
	d := &wire.Decision{
		Subrun:       subrun,
		Coord:        coord,
		MaxProcessed: clean.Clone(),
		MostUpdated:  make([]mid.ProcID, n),
		MinWaiting:   mid.NewSeqVector(n),
		CleanTo:      clean.Clone(),
		Attempts:     make([]uint8, n),
		Alive:        make([]bool, n),
		Covered:      make([]bool, n),
		FullGroup:    true,
	}
	for q := range d.MostUpdated {
		d.MostUpdated[q] = mid.None
		d.Alive[q] = true
		d.Covered[q] = true
	}
	return d
}

// TestOnSubrunStartTracksCoordinator pins the token-pass callback: it
// fires at every subrun opening with the coordinator of the moment, and
// the rotation skips members removed from the view.
func TestOnSubrunStartTracksCoordinator(t *testing.T) {
	// SelfExclusion off: the bare process under test hears no coordinators
	// and must not leave through the silence rule mid-test.
	cfg := Config{N: 3, K: 2, R: 5}
	tp := &capture{}
	type pass struct {
		subrun int64
		coord  mid.ProcID
	}
	var passes []pass
	p, err := NewProcess(0, cfg, tp, Callbacks{
		OnSubrunStart: func(s int64, c mid.ProcID) { passes = append(passes, pass{s, c}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.StartRound(0) // subrun 0, coord 0
	p.StartRound(2) // subrun 1, coord 1
	// A decision declares 1 crashed; subrun 2's token goes to 2, and the
	// next rotation wraps past the hole.
	d := fullGroupDecision(3, 1, 1, mid.NewSeqVector(3))
	d.Alive[1] = false
	p.Recv(1, d)
	p.StartRound(4) // subrun 2, coord 2
	p.StartRound(6) // subrun 3, coord 0
	p.StartRound(8) // subrun 4, start 1 crashed -> coord 2

	want := []pass{{0, 0}, {1, 1}, {2, 2}, {3, 0}, {4, 2}}
	if len(passes) != len(want) {
		t.Fatalf("passes = %v, want %v", passes, want)
	}
	for i := range want {
		if passes[i] != want[i] {
			t.Fatalf("pass %d = %+v, want %+v", i, passes[i], want[i])
		}
	}
	if p.Subrun() != 4 {
		t.Errorf("Subrun() = %d, want 4", p.Subrun())
	}
	if p.CurrentCoordinator() != 2 {
		t.Errorf("CurrentCoordinator() = %d, want 2", p.CurrentCoordinator())
	}
}

// TestOnViewChangeFromDecision pins the adopt path: a decision removing a
// member fires OnCrashDeclared then OnViewChange with a fresh mask copy.
func TestOnViewChangeFromDecision(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	tp := &capture{}
	var declared []mid.ProcID
	var views [][]bool
	p, err := NewProcess(0, cfg, tp, Callbacks{
		OnCrashDeclared: func(q mid.ProcID) { declared = append(declared, q) },
		OnViewChange:    func(alive []bool) { views = append(views, alive) },
	})
	if err != nil {
		t.Fatal(err)
	}
	d := fullGroupDecision(3, 0, 1, mid.NewSeqVector(3))
	d.Alive[2] = false
	p.Recv(1, d)
	if len(declared) != 1 || declared[0] != 2 {
		t.Fatalf("declared = %v, want [2]", declared)
	}
	if len(views) != 1 || !views[0][0] || !views[0][1] || views[0][2] {
		t.Fatalf("views = %v, want [[true true false]]", views)
	}
	// The callee owns the mask: mutating it must not touch the view.
	views[0][1] = false
	if !p.View().Alive(1) {
		t.Fatal("OnViewChange handed out the live mask, not a copy")
	}
	// Re-adopting the same mask is not a view change.
	d2 := fullGroupDecision(3, 1, 1, mid.NewSeqVector(3))
	d2.Alive[2] = false
	p.Recv(1, d2)
	if len(views) != 1 {
		t.Fatalf("unchanged mask fired OnViewChange again: %v", views)
	}
}

// TestOnViewChangeFromSilenceDeclaration pins the coordinator path: a
// coordinator whose attempts counters saturate fires OnViewChange once
// for the batch of declarations it makes itself.
func TestOnViewChangeFromSilenceDeclaration(t *testing.T) {
	cfg := Config{N: 3, K: 1, R: 1}
	tp := &capture{}
	var views [][]bool
	p, err := NewProcess(0, cfg, tp, Callbacks{
		OnViewChange: func(alive []bool) { views = append(views, alive) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Subrun 0: p0 coordinates, hears nobody. K=1 declares 1 and 2 at once.
	p.StartRound(0)
	p.StartRound(1)
	if len(views) != 1 {
		t.Fatalf("views fired %d times, want 1", len(views))
	}
	if v := views[0]; !v[0] || v[1] || v[2] {
		t.Fatalf("view = %v, want [true false false]", v)
	}
}

// TestStableToTracksFullGroupDecisions pins the StableTo accessor: zero
// before any full-group decision, then the clipped clean vector after.
func TestStableToTracksFullGroupDecisions(t *testing.T) {
	cfg := Config{N: 3, K: 2, R: 5, SelfExclusion: true}
	tp := &capture{}
	p, err := NewProcess(0, cfg, tp, Callbacks{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.StableTo().Equal(mid.NewSeqVector(3)) {
		t.Fatalf("StableTo before any decision = %v, want zeros", p.StableTo())
	}
	p.Recv(1, &wire.Data{Msg: causal.Message{ID: mid.MID{Proc: 1, Seq: 1}, Payload: []byte("x")}})
	d := fullGroupDecision(3, 0, 1, mid.SeqVector{0, 1, 0})
	p.Recv(1, d)
	if !p.StableTo().Equal(mid.SeqVector{0, 1, 0}) {
		t.Fatalf("StableTo = %v, want [0 1 0]", p.StableTo())
	}
	// A non-full-group decision must not advance the watermark.
	d2 := fullGroupDecision(3, 1, 1, mid.SeqVector{0, 9, 0})
	d2.FullGroup = false
	p.Recv(1, d2)
	if !p.StableTo().Equal(mid.SeqVector{0, 1, 0}) {
		t.Fatalf("partial-chain decision advanced StableTo to %v", p.StableTo())
	}
}

package core

import (
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/fault"
	"urcgc/internal/metrics"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/simnet"
	"urcgc/internal/trace"
	"urcgc/internal/transport"
	"urcgc/internal/wire"
)

// ClusterConfig configures a simulated group.
type ClusterConfig struct {
	Config
	// Seed drives every random choice of the run.
	Seed int64
	// Injector is the failure model; nil means a reliable system.
	Injector fault.Injector
	// Latency overrides the network latency model; nil means the default.
	Latency simnet.Latency
	// TransportH selects the paper's h parameter for the underlying
	// transport service (Section 5): h <= 1 mounts the protocol entities
	// directly on the datagram subnetwork, as all of the paper's
	// simulations do; h > 1 interposes transport entities that retransmit
	// every PDU until h destinations (clamped to the destination count)
	// have acknowledged, moving loss repair from the history into the
	// transport.
	TransportH int
}

// Cluster runs a full urcgc group inside the discrete-event simulator. It
// owns the engine, the network, the processes and the measurement hooks the
// experiments need.
type Cluster struct {
	cfg   ClusterConfig
	eng   *sim.Engine
	net   *simnet.Network
	procs []*Process
	ents  []*transport.Entity

	// Delay accumulates end-to-end delay samples (Figure 4).
	Delay *metrics.Delay
	// HistMax and HistMean sample the history length across live processes
	// once per round (Figure 6).
	HistMax  metrics.Series
	HistMean metrics.Series
	// WaitMax samples the waiting-list length across live processes.
	WaitMax metrics.Series

	// ProcessedLog records, per process, the MIDs in processing order —
	// the raw material for the atomicity and ordering invariant checks.
	ProcessedLog [][]mid.MID
	// DiscardLog records, per process, the MIDs destroyed by agreement.
	DiscardLog [][]mid.MID
	// Left records why each self-excluded process halted.
	Left map[mid.ProcID]LeaveReason
	// Decisions counts decisions observed per process.
	Decisions []int
	// OnDecision, when set, observes every fresh decision applied at any
	// process, with the cluster clock available via Engine().Now().
	OnDecision func(p mid.ProcID, d *wire.Decision)
	// Trace, when set before Run, records every protocol event for the
	// offline URCGC verifier (internal/trace).
	Trace *trace.Recorder

	crashSeen []bool
}

// netTransport adapts the simulated network to the process Transport.
type netTransport struct {
	nw   *simnet.Network
	self mid.ProcID
}

func (t netTransport) Send(dst mid.ProcID, pdu wire.PDU) { t.nw.Send(t.self, dst, pdu) }

func (t netTransport) Broadcast(pdu wire.PDU) {
	for dst := 0; dst < t.nw.N(); dst++ {
		t.nw.Send(t.self, mid.ProcID(dst), pdu)
	}
}

// entTransport routes PDUs through a transport entity (h > 1).
type entTransport struct {
	ent  *transport.Entity
	self mid.ProcID
	n    int
	h    int
}

func (t entTransport) Send(dst mid.ProcID, pdu wire.PDU) {
	if dst == t.self {
		return
	}
	t.ent.DataRq([]mid.ProcID{dst}, t.h, nil, pdu)
}

func (t entTransport) Broadcast(pdu wire.PDU) {
	dsts := make([]mid.ProcID, 0, t.n-1)
	for i := 0; i < t.n; i++ {
		if mid.ProcID(i) != t.self {
			dsts = append(dsts, mid.ProcID(i))
		}
	}
	t.ent.DataRq(dsts, t.h, nil, pdu)
}

// procHandler forwards decapsulated PDUs to a process bound after the
// transport entity is constructed.
type procHandler struct{ p *Process }

func (h *procHandler) Recv(src mid.ProcID, pdu wire.PDU) {
	if h.p != nil {
		h.p.Recv(src, pdu)
	}
}

// NewCluster builds a group of cc.N simulated processes.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	inj := cc.Injector
	if inj == nil {
		inj = fault.None{}
	}
	eng := sim.NewEngine(cc.Seed)
	nw := simnet.New(eng, cc.N, inj)
	if cc.Latency != nil {
		nw.SetLatency(cc.Latency)
	}
	c := &Cluster{
		cfg:          cc,
		eng:          eng,
		net:          nw,
		procs:        make([]*Process, cc.N),
		ents:         make([]*transport.Entity, cc.N),
		Delay:        metrics.NewDelay(),
		ProcessedLog: make([][]mid.MID, cc.N),
		DiscardLog:   make([][]mid.MID, cc.N),
		Left:         make(map[mid.ProcID]LeaveReason),
		Decisions:    make([]int, cc.N),
	}
	for i := 0; i < cc.N; i++ {
		id := mid.ProcID(i)
		cb := c.callbacks(id)
		if cc.TransportH > 1 {
			ph := &procHandler{}
			ent, err := transport.NewEntity(id, nw, eng, transport.Config{}, ph)
			if err != nil {
				return nil, err
			}
			p, err := NewProcess(id, cc.Config, entTransport{ent: ent, self: id, n: cc.N, h: cc.TransportH}, cb)
			if err != nil {
				return nil, err
			}
			ph.p = p
			c.procs[i] = p
			c.ents[i] = ent
			continue
		}
		p, err := NewProcess(id, cc.Config, netTransport{nw: nw, self: id}, cb)
		if err != nil {
			return nil, err
		}
		c.procs[i] = p
		nw.Attach(id, p)
	}
	return c, nil
}

// callbacks builds the measurement hooks for process id. Shared between
// cluster construction and Rejoin, so a joiner incarnation keeps feeding
// the same logs.
func (c *Cluster) callbacks(id mid.ProcID) Callbacks {
	eng := c.eng
	return Callbacks{
		OnBroadcast: func(m *causal.Message) {
			if c.Trace != nil {
				c.Trace.Broadcast(eng.Now(), id, m.ID)
			}
		},
		OnWait: func(m *causal.Message, missing mid.DepList) {
			if c.Trace != nil {
				c.Trace.Wait(eng.Now(), id, m.ID, missing)
			}
		},
		OnProcess: func(m *causal.Message) {
			c.ProcessedLog[id] = append(c.ProcessedLog[id], m.ID)
			c.Delay.Processed(m.ID, eng.Now())
			if c.Trace != nil {
				c.Trace.Process(eng.Now(), id, m.ID)
			}
		},
		OnDiscard: func(m *causal.Message) {
			c.DiscardLog[id] = append(c.DiscardLog[id], m.ID)
			if c.Trace != nil {
				c.Trace.Discard(eng.Now(), id, m.ID)
			}
		},
		OnLeave: func(r LeaveReason) {
			c.Left[id] = r
			if c.Trace != nil {
				c.Trace.Leave(eng.Now(), id)
			}
		},
		OnDecision: func(d *wire.Decision) {
			c.Decisions[id]++
			if c.OnDecision != nil {
				c.OnDecision(id, d)
			}
		},
	}
}

// Rejoin replaces process i with a fresh joiner incarnation attached to the
// same network slot — the simulated leave/resync/rejoin cycle. The previous
// entity's volatile state is discarded, as a real restart would lose it;
// the new one bootstraps through the join protocol against a live sponsor.
// The Left record of the previous incarnation is cleared: its exit is
// undone by rejoining, which is the whole point. Callers pairing Rejoin
// with an injected crash should use a bounded crash (fault.CrashWindow)
// ending at the rejoin instant, since the cluster driver keeps consulting
// the injector for liveness. Only direct-datagram clusters (TransportH <=
// 1) support rejoin.
func (c *Cluster) Rejoin(i mid.ProcID) error {
	if int(i) >= c.cfg.N || i < 0 {
		return fmt.Errorf("core: rejoin of process %d outside group of %d", i, c.cfg.N)
	}
	if c.cfg.TransportH > 1 {
		return fmt.Errorf("core: rejoin is unsupported with interposed transport entities")
	}
	cfg := c.cfg.Config
	cfg.Join = true
	p, err := NewProcess(i, cfg, netTransport{nw: c.net, self: i}, c.callbacks(i))
	if err != nil {
		return err
	}
	c.procs[i] = p
	c.net.Attach(i, p)
	delete(c.Left, i)
	return nil
}

// TransportEntity returns process i's transport entity, or nil when the
// cluster runs directly on datagrams (TransportH <= 1).
func (c *Cluster) TransportEntity(i mid.ProcID) *transport.Entity { return c.ents[i] }

// Engine returns the cluster's event engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Net returns the cluster's network (for load accounting).
func (c *Cluster) Net() *simnet.Network { return c.net }

// Proc returns process i.
func (c *Cluster) Proc(i mid.ProcID) *Process { return c.procs[i] }

// N returns the group cardinality.
func (c *Cluster) N() int { return c.cfg.N }

// Crashed reports whether the failure model has fail-stopped process p.
func (c *Cluster) Crashed(p mid.ProcID) bool {
	inj := c.cfg.Injector
	if inj == nil {
		return false
	}
	return inj.Crashed(p, c.eng.Now())
}

// Active reports whether process p is still executing the protocol: not
// fail-stopped by the failure model and not self-excluded.
func (c *Cluster) Active(p mid.ProcID) bool {
	return !c.Crashed(p) && c.procs[p].Running()
}

// ActiveSet returns the identifiers of the active processes.
func (c *Cluster) ActiveSet() []mid.ProcID {
	var out []mid.ProcID
	for i := range c.procs {
		if c.Active(mid.ProcID(i)) {
			out = append(out, mid.ProcID(i))
		}
	}
	return out
}

// Submit queues a user message at process p and records its generation
// instant for delay measurement.
func (c *Cluster) Submit(p mid.ProcID, payload []byte, deps mid.DepList) (mid.MID, error) {
	id, err := c.procs[p].Submit(payload, deps)
	if err != nil {
		return id, err
	}
	c.Delay.Generated(id, c.eng.Now())
	if c.Trace != nil {
		c.Trace.Generate(c.eng.Now(), p, id, deps)
	}
	return id, nil
}

// SubmitCausal is Submit with the conservative depend-on-everything-seen
// labelling.
func (c *Cluster) SubmitCausal(p mid.ProcID, payload []byte) (mid.MID, error) {
	id, err := c.procs[p].SubmitCausal(payload)
	if err != nil {
		return id, err
	}
	c.Delay.Generated(id, c.eng.Now())
	if c.Trace != nil {
		// The conservative labelling is reconstructed for the verifier:
		// every sequence's latest processed message at submission time.
		var deps mid.DepList
		for q := 0; q < c.cfg.N; q++ {
			qp := mid.ProcID(q)
			if qp == p {
				continue
			}
			if s := c.procs[p].Processed()[qp]; s > 0 {
				deps = append(deps, mid.MID{Proc: qp, Seq: s})
			}
		}
		c.Trace.Generate(c.eng.Now(), p, id, deps)
	}
	return id, nil
}

// RunOptions controls a cluster run.
type RunOptions struct {
	// MaxRounds bounds the run (required, > 0).
	MaxRounds int
	// MinRounds prevents the quiescence check from firing before the
	// workload has been injected.
	MinRounds int
	// OnRound, if set, runs at every round start before the processes
	// tick — the place to inject workload.
	OnRound func(round int)
	// StopWhenQuiescent ends the run early once every active process has
	// drained (identical processed vectors, empty waiting lists and
	// outboxes), after DrainSubruns additional subruns for history
	// cleaning decisions to circulate.
	StopWhenQuiescent bool
	DrainSubruns      int
}

// RunResult reports how a run ended.
type RunResult struct {
	// Rounds actually executed.
	Rounds int
	// QuiescentAtRound is the first round at which the group was observed
	// quiescent, or -1.
	QuiescentAtRound int
	// End is the virtual time the run stopped at.
	End sim.Time
}

// Run drives the cluster for up to opts.MaxRounds rounds.
func (c *Cluster) Run(opts RunOptions) (RunResult, error) {
	if opts.MaxRounds <= 0 {
		return RunResult{}, fmt.Errorf("core: MaxRounds must be positive")
	}
	res := RunResult{QuiescentAtRound: -1}
	drainLeft := -1
	sim.NewTicker(c.eng, func(round int) bool {
		if round >= opts.MaxRounds {
			return false
		}
		res.Rounds = round + 1
		if opts.OnRound != nil {
			opts.OnRound(round)
		}
		if c.Trace != nil {
			if c.crashSeen == nil {
				c.crashSeen = make([]bool, c.cfg.N)
			}
			for i := range c.procs {
				p := mid.ProcID(i)
				if !c.crashSeen[i] && c.Crashed(p) {
					c.crashSeen[i] = true
					c.Trace.Crash(c.eng.Now(), p)
				}
			}
		}
		c.sample()
		for i, p := range c.procs {
			if c.Crashed(mid.ProcID(i)) {
				continue
			}
			p.StartRound(round)
		}
		if opts.StopWhenQuiescent && round%2 == 1 && round >= opts.MinRounds {
			if res.QuiescentAtRound < 0 && c.Quiescent() {
				res.QuiescentAtRound = round
				drainLeft = opts.DrainSubruns
			}
			if drainLeft == 0 {
				return false
			}
			if drainLeft > 0 {
				drainLeft--
			}
		}
		return true
	})
	c.eng.Run()
	res.End = c.eng.Now()
	return res, nil
}

// Quiescent reports whether every active process has fully drained: no
// queued submissions, no waiting messages, and identical processed vectors.
func (c *Cluster) Quiescent() bool {
	var ref mid.SeqVector
	for i, p := range c.procs {
		if !c.Active(mid.ProcID(i)) {
			continue
		}
		if p.PendingSubmissions() > 0 || p.WaitingLen() > 0 {
			return false
		}
		if ref == nil {
			ref = p.Processed()
			continue
		}
		if !ref.Equal(p.Processed()) {
			return false
		}
	}
	return true
}

func (c *Cluster) sample() {
	maxH, sumH, maxW, live := 0, 0, 0, 0
	for i, p := range c.procs {
		if !c.Active(mid.ProcID(i)) {
			continue
		}
		live++
		if h := p.HistoryLen(); h > maxH {
			maxH = h
		}
		sumH += p.HistoryLen()
		if w := p.WaitingLen(); w > maxW {
			maxW = w
		}
	}
	if live == 0 {
		return
	}
	now := c.eng.Now()
	c.HistMax.Add(now, float64(maxH))
	c.HistMean.Add(now, float64(sumH)/float64(live))
	c.WaitMax.Add(now, float64(maxW))
}

package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// TestEnvelopeGroupZeroByteIdentical pins the wire-compat guarantee: a
// group-0 frame built through the envelope helpers is byte-identical to the
// pre-group framing ([src:4][marshaled PDU]) for every PDU kind the UDP
// runtime ships.
func TestEnvelopeGroupZeroByteIdentical(t *testing.T) {
	pdus := []PDU{
		&Data{Msg: causal.Message{ID: mid.MID{Proc: 2, Seq: 9}, Payload: []byte("hello")}},
		&DataBatch{Msgs: []causal.Message{
			{ID: mid.MID{Proc: 1, Seq: 1}, Payload: []byte("a")},
			{ID: mid.MID{Proc: 1, Seq: 2}, Deps: mid.DepList{{Proc: 0, Seq: 4}}, Payload: []byte("b")},
		}},
		&Recover{Requester: 3, Wants: []WantRange{{Proc: 1, From: 2, To: 5}}},
	}
	for _, pdu := range pdus {
		// The historical construction, verbatim from the PR-6 udpTransport.
		legacy := make([]byte, 4)
		binary.BigEndian.PutUint32(legacy, uint32(mid.ProcID(2)))
		legacy, err := MarshalAppend(legacy, pdu)
		if err != nil {
			t.Fatal(err)
		}

		framed, err := MarshalAppend(AppendEnvelope(nil, 0, 2), pdu)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(legacy, framed) {
			t.Fatalf("%v: group-0 envelope frame differs from legacy framing\nlegacy %x\n   new %x",
				pdu.Kind(), legacy, framed)
		}
		if EnvelopeSize(0) != 4 {
			t.Fatalf("EnvelopeSize(0) = %d, want 4", EnvelopeSize(0))
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		group uint32
		src   mid.ProcID
	}{
		{0, 0}, {0, 7}, {1, 0}, {1, 3}, {42, 2}, {MaxGroupID, 15},
	} {
		frame := AppendEnvelope(nil, tc.group, tc.src)
		frame = append(frame, 0xAB, 0xCD)
		if want := EnvelopeSize(tc.group) + 2; len(frame) != want {
			t.Fatalf("group %d: frame length %d, want %d", tc.group, len(frame), want)
		}
		group, src, body, err := ParseEnvelope(frame)
		if err != nil {
			t.Fatalf("group %d src %d: %v", tc.group, tc.src, err)
		}
		if group != tc.group || src != tc.src {
			t.Fatalf("round trip (%d, %d) -> (%d, %d)", tc.group, tc.src, group, src)
		}
		if !bytes.Equal(body, []byte{0xAB, 0xCD}) {
			t.Fatalf("group %d: body %x", tc.group, body)
		}
	}
}

func TestEnvelopeRejectsMalformed(t *testing.T) {
	for name, pkt := range map[string][]byte{
		"empty":               nil,
		"runt":                {1, 2, 3},
		"long-form-truncated": {0x80, 0, 0, 1, 0},
		"long-form-group0":    {0x80, 0, 0, 0, 0, 0, 0, 2},
	} {
		if _, _, _, err := ParseEnvelope(pkt); err == nil {
			t.Errorf("%s: ParseEnvelope accepted %x", name, pkt)
		}
	}
}

// TestEnvelopeLegacyDropsGroupTagged documents the compatibility story in
// the other direction: a single-group (legacy) receiver reading the first
// word of a group-tagged frame as the source sees a negative member id and
// drops the frame as bad-src rather than mis-decoding it.
func TestEnvelopeLegacyDropsGroupTagged(t *testing.T) {
	frame := AppendEnvelope(nil, 3, 1)
	legacySrc := mid.ProcID(int32(binary.BigEndian.Uint32(frame[:4])))
	if legacySrc >= 0 {
		t.Fatalf("group-tagged frame reads as non-negative legacy src %d", legacySrc)
	}
}

// Package wire defines the protocol data units of the urcgc protocol and
// their binary encoding.
//
// The simulator exchanges PDUs as typed values and only uses EncodedSize to
// account network load byte-accurately (Table 1 of the paper); the UDP
// runtime uses the full Marshal/Unmarshal path. Encoding is big-endian,
// length-prefixed where variable, and has no external dependencies, so a
// basic datagram transport suffices — the protocol requires no particular
// service from the layer below (Section 5).
package wire

import (
	"errors"
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// Kind discriminates PDU types on the wire.
type Kind uint8

// PDU kinds. Kinds 1-5 belong to the urcgc protocol and have a binary
// encoding; the 1x and 2x ranges are reserved for the CBCAST and Psync
// baseline protocols, which exist only inside the simulator and whose PDUs
// implement EncodedSize without a Marshal path.
const (
	KindData       Kind = 1 // user message broadcast
	KindRequest    Kind = 2 // per-subrun report to the coordinator
	KindDecision   Kind = 3 // coordinator broadcast
	KindRecover    Kind = 4 // point-to-point recovery request
	KindRetransmit Kind = 5 // recovery answer carrying history messages
	KindDataBatch  Kind = 6 // several user messages in one frame
	KindJoin       Kind = 7 // joiner's point-to-point contact to a sponsor
	KindJoinState  Kind = 8 // sponsor's state-transfer snapshot to a joiner

	// CBCAST baseline (internal/cbcast).
	KindCBData     Kind = 10 // vector-stamped causal broadcast
	KindCBAck      Kind = 11 // explicit stability (ack vector) message
	KindCBFlushReq Kind = 12 // view-change announcement
	KindCBFlush    Kind = 13 // member's unstable messages to the manager
	KindCBFlushDat Kind = 14 // manager's re-dissemination of unstable msgs
	KindCBView     Kind = 15 // new view installation

	// Psync baseline (internal/psync).
	KindPsData    Kind = 20 // context-graph message
	KindPsNak     Kind = 21 // retransmission request for a missing node
	KindPsRetrans Kind = 22 // answer to a NAK
	KindPsMask    Kind = 23 // mask_out proposal
	KindPsMaskAck Kind = 24 // mask_out acknowledgement
)

// IsData reports whether the kind carries user payload (as opposed to
// protocol control traffic). Load accounting uses this to split Table 1's
// control columns from data traffic.
func (k Kind) IsData() bool {
	return k == KindData || k == KindDataBatch || k == KindCBData || k == KindPsData
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindRequest:
		return "REQUEST"
	case KindDecision:
		return "DECISION"
	case KindRecover:
		return "RECOVER"
	case KindRetransmit:
		return "RETRANSMIT"
	case KindDataBatch:
		return "DATA-BATCH"
	case KindJoin:
		return "JOIN"
	case KindJoinState:
		return "JOIN-STATE"
	case KindCBData:
		return "CB-DATA"
	case KindCBAck:
		return "CB-ACK"
	case KindCBFlushReq:
		return "CB-FLUSHREQ"
	case KindCBFlush:
		return "CB-FLUSH"
	case KindCBFlushDat:
		return "CB-FLUSHDATA"
	case KindCBView:
		return "CB-VIEW"
	case KindPsData:
		return "PS-DATA"
	case KindPsNak:
		return "PS-NAK"
	case KindPsRetrans:
		return "PS-RETRANS"
	case KindPsMask:
		return "PS-MASK"
	case KindPsMaskAck:
		return "PS-MASKACK"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// PDU is implemented by every protocol data unit.
type PDU interface {
	Kind() Kind
	// EncodedSize returns the exact number of bytes Marshal produces,
	// including the kind byte.
	EncodedSize() int
}

// ErrTruncated is returned by Unmarshal when the buffer ends early.
var ErrTruncated = errors.New("wire: truncated PDU")

// ErrTooLarge is returned by the Marshal paths when a variable-length field
// exceeds its 16-bit wire length prefix. Before this check existed a
// 65536-byte payload encoded a length of 0 — a silently corrupt frame that
// decoded as garbage on every peer. Errors wrap ErrTooLarge, so callers
// test with errors.Is.
var ErrTooLarge = errors.New("wire: field exceeds 16-bit wire limit")

// Wire limits: every variable-length field is prefixed by a 16-bit count,
// so these are hard protocol bounds, not tunables. Anything that could
// exceed them must be rejected (Submit, Marshal) or split (the batcher)
// before it reaches the encoder.
const (
	// MaxPayload bounds one message's payload bytes.
	MaxPayload = 1<<16 - 1
	// MaxDeps bounds one message's explicit dependency labels.
	MaxDeps = 1<<16 - 1
	// MaxBatch bounds the messages in one DataBatch or Retransmit.
	MaxBatch = 1<<16 - 1
	// MaxVector bounds the group cardinality carried in Request/Decision
	// vectors.
	MaxVector = 1<<16 - 1
	// MaxWants bounds the ranges in one Recover.
	MaxWants = 1<<16 - 1
)

// Data carries one user message.
type Data struct {
	Msg causal.Message
}

// Kind implements PDU.
func (*Data) Kind() Kind { return KindData }

// EncodedSize implements PDU.
func (d *Data) EncodedSize() int {
	// kind(1) + mid(8) + depCount(2) + deps(8 each) + payloadLen(2) + payload
	return 1 + 8 + 2 + 8*len(d.Msg.Deps) + 2 + len(d.Msg.Payload)
}

// DataBatch carries several user messages in one frame — the wire-layer
// half of batching: one datagram, one syscall, one inbox event for N
// messages, amortizing the per-PDU costs exactly as the paper's subrun
// model amortizes control traffic (Table 1 splits per-message data cost
// from per-subrun control cost). Messages appear in generation order;
// receivers ingest them in order, so intra-batch causality (each message
// implicitly depending on its sender's previous) is preserved.
type DataBatch struct {
	Msgs []causal.Message
}

// Kind implements PDU.
func (*DataBatch) Kind() Kind { return KindDataBatch }

// EncodedSize implements PDU.
func (b *DataBatch) EncodedSize() int {
	// kind(1) + count(2) + embedded data messages (without kind bytes).
	s := 1 + 2
	for i := range b.Msgs {
		m := &b.Msgs[i]
		s += 8 + 2 + 8*len(m.Deps) + 2 + len(m.Payload)
	}
	return s
}

// Request is the per-subrun report a process sends to the current
// coordinator: its last-processed vector, its oldest-waiting vector, and
// the freshest decision it holds (the reliable circulation of decisions).
type Request struct {
	Sender        mid.ProcID
	Subrun        int64
	LastProcessed mid.SeqVector
	Waiting       mid.SeqVector
	Prev          *Decision // nil before the first decision is ever received
	// Join marks the sender as a synced joiner asking the coordinator to
	// (re-)admit it into the view: the decision closing this subrun carries
	// Alive[sender]=true with a reset attempts counter. Rides a flag bit in
	// the byte that used to be hasPrev, so the encoded size is unchanged.
	Join bool
}

// Kind implements PDU.
func (*Request) Kind() Kind { return KindRequest }

// EncodedSize implements PDU.
func (r *Request) EncodedSize() int {
	// kind(1) + sender(4) + subrun(8) + n(2) + last(4n) + waiting(4n) + flags(1)
	n := len(r.LastProcessed)
	s := 1 + 4 + 8 + 2 + 4*n + 4*n + 1
	if r.Prev != nil {
		s += r.Prev.EncodedSize() - 1 // embedded body carries no kind byte
	}
	return s
}

// Decision is the coordinator's broadcast closing a subrun. It both drives
// normal stability processing and embeds all failure handling, which is the
// heart of the paper's contribution: there is no separate membership
// protocol.
type Decision struct {
	Subrun int64
	Coord  mid.ProcID

	// MaxProcessed[q] is the highest sequence number of q's sequence any
	// contacted process has processed; MostUpdated[q] identifies one such
	// process (mid.None when MaxProcessed[q] is 0). Drives recovery.
	MaxProcessed mid.SeqVector
	MostUpdated  []mid.ProcID

	// MinWaiting[q] is the minimum over contacted processes of the oldest
	// waiting sequence number of q's sequence (0 = nothing waiting
	// anywhere). Together with MaxProcessed it detects orphaned sequences.
	MinWaiting mid.SeqVector

	// CleanTo[q] is the stability lower bound accumulated so far: the
	// minimum last-processed of q's sequence over the processes covered by
	// this decision chain. Histories may be purged up to CleanTo only when
	// FullGroup is true.
	CleanTo   mid.SeqVector
	Covered   []bool // processes whose reports are folded into CleanTo
	FullGroup bool

	// Attempts are the circulated silence counters; Alive is the group
	// composition after this subrun's crash declarations.
	Attempts []uint8
	Alive    []bool
}

// Kind implements PDU.
func (*Decision) Kind() Kind { return KindDecision }

// EncodedSize implements PDU.
func (d *Decision) EncodedSize() int {
	n := len(d.MaxProcessed)
	// kind(1) + subrun(8) + coord(4) + n(2) + flags(1)
	// + maxProcessed(4n) + mostUpdated(4n) + minWaiting(4n) + cleanTo(4n)
	// + attempts(n) + alive(ceil(n/8)) + covered(ceil(n/8))
	return 1 + 8 + 4 + 2 + 1 + 4*n*4 + n + 2*((n+7)/8)
}

// Clone returns a deep copy of the decision.
func (d *Decision) Clone() *Decision {
	if d == nil {
		return nil
	}
	cp := *d
	cp.MaxProcessed = d.MaxProcessed.Clone()
	cp.MostUpdated = append([]mid.ProcID(nil), d.MostUpdated...)
	cp.MinWaiting = d.MinWaiting.Clone()
	cp.CleanTo = d.CleanTo.Clone()
	cp.Covered = append([]bool(nil), d.Covered...)
	cp.Attempts = append([]uint8(nil), d.Attempts...)
	cp.Alive = append([]bool(nil), d.Alive...)
	return &cp
}

// Recover asks a more updated peer for missing history messages: for each
// listed sequence, the half-open want [From, To] inclusive.
type Recover struct {
	Requester mid.ProcID
	Wants     []WantRange
}

// WantRange names a contiguous slice of one sequence.
type WantRange struct {
	Proc     mid.ProcID
	From, To mid.Seq
}

// Kind implements PDU.
func (*Recover) Kind() Kind { return KindRecover }

// EncodedSize implements PDU.
func (r *Recover) EncodedSize() int {
	// kind(1) + requester(4) + count(2) + entries(12 each)
	return 1 + 4 + 2 + 12*len(r.Wants)
}

// Retransmit answers a Recover with messages read from the history.
type Retransmit struct {
	Responder mid.ProcID
	Msgs      []*causal.Message
	// Compacted lists wanted ranges the responder has already purged as
	// uniformly stable (history.ErrCompacted). Purging requires a full-group
	// decision covering those sequences, so a requester may fast-forward its
	// processed vector over them instead of waiting for bytes that no alive
	// member retains.
	Compacted []WantRange
}

// Kind implements PDU.
func (*Retransmit) Kind() Kind { return KindRetransmit }

// EncodedSize implements PDU.
func (t *Retransmit) EncodedSize() int {
	// kind(1) + responder(4) + count(2) + embedded data messages (without
	// their own kind bytes) + compactedCount(2) + compacted(12 each).
	s := 1 + 4 + 2
	for _, m := range t.Msgs {
		s += 8 + 2 + 8*len(m.Deps) + 2 + len(m.Payload)
	}
	return s + 2 + 12*len(t.Compacted)
}

// Join is a joiner's point-to-point contact to a live sponsor: "send me the
// state I need to enter the view". It is retried against rotating sponsor
// candidates until a JoinState answers, so loss is harmless.
type Join struct {
	Joiner mid.ProcID
}

// Kind implements PDU.
func (*Join) Kind() Kind { return KindJoin }

// EncodedSize implements PDU.
func (j *Join) EncodedSize() int {
	// kind(1) + joiner(4)
	return 1 + 4
}

// JoinState is a sponsor's state-transfer snapshot: the stability watermark
// below which history is uniformly delivered everywhere (the joiner installs
// it as its processed/history base, skipping the compacted prefix), the
// sequence number the joiner must resume its own generation from, and the
// sponsor's freshest decision so the joiner adopts the current view and
// catch-up targets. Messages between the watermark and the group frontier
// are not carried here — the joiner pulls them through the ordinary
// Recover/Retransmit path, which is the point: state transfer reuses the
// R-retry recovery machinery instead of inventing a second one.
type JoinState struct {
	Sponsor mid.ProcID
	// Resume is the next sequence number the joiner assigns to its own
	// messages: the sponsor's processed count of the joiner's sequence.
	Resume mid.Seq
	// Stable is the sponsor's stability watermark (its clean vector from
	// the freshest full-group decision).
	Stable mid.SeqVector
	// Processed is the sponsor's last-processed vector: the catch-up target
	// the joiner recovers toward.
	Processed mid.SeqVector
	// Prev is the sponsor's freshest decision, nil if it holds none.
	Prev *Decision
}

// Kind implements PDU.
func (*JoinState) Kind() Kind { return KindJoinState }

// EncodedSize implements PDU.
func (j *JoinState) EncodedSize() int {
	// kind(1) + sponsor(4) + resume(4) + n(2) + stable(4n) + processed(4n) + hasPrev(1)
	n := len(j.Stable)
	s := 1 + 4 + 4 + 2 + 4*n + 4*n + 1
	if j.Prev != nil {
		s += j.Prev.EncodedSize() - 1 // embedded body carries no kind byte
	}
	return s
}

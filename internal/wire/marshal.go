package wire

import (
	"encoding/binary"
	"fmt"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// Marshal encodes a PDU to a fresh buffer of exactly EncodedSize bytes.
func Marshal(p PDU) ([]byte, error) {
	w := &writer{buf: make([]byte, 0, p.EncodedSize())}
	w.u8(uint8(p.Kind()))
	switch v := p.(type) {
	case *Data:
		marshalMsgBody(w, &v.Msg)
	case *Request:
		w.i32(int32(v.Sender))
		w.i64(v.Subrun)
		if len(v.LastProcessed) != len(v.Waiting) {
			return nil, fmt.Errorf("wire: request vectors disagree on n (%d vs %d)", len(v.LastProcessed), len(v.Waiting))
		}
		w.u16(uint16(len(v.LastProcessed)))
		w.seqVec(v.LastProcessed)
		w.seqVec(v.Waiting)
		if v.Prev == nil {
			w.u8(0)
		} else {
			w.u8(1)
			if err := marshalDecisionBody(w, v.Prev); err != nil {
				return nil, err
			}
		}
	case *Decision:
		if err := marshalDecisionBody(w, v); err != nil {
			return nil, err
		}
	case *Recover:
		w.i32(int32(v.Requester))
		w.u16(uint16(len(v.Wants)))
		for _, want := range v.Wants {
			w.i32(int32(want.Proc))
			w.u32(uint32(want.From))
			w.u32(uint32(want.To))
		}
	case *Retransmit:
		w.i32(int32(v.Responder))
		w.u16(uint16(len(v.Msgs)))
		for _, m := range v.Msgs {
			marshalMsgBody(w, m)
		}
	default:
		return nil, fmt.Errorf("wire: unknown PDU type %T", p)
	}
	if len(w.buf) != p.EncodedSize() {
		return nil, fmt.Errorf("wire: %v encoded to %d bytes, EncodedSize says %d", p.Kind(), len(w.buf), p.EncodedSize())
	}
	return w.buf, nil
}

// Unmarshal decodes a buffer produced by Marshal.
func Unmarshal(buf []byte) (PDU, error) {
	r := &reader{buf: buf}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	var p PDU
	switch Kind(kind) {
	case KindData:
		d := &Data{}
		if err := unmarshalMsgBody(r, &d.Msg); err != nil {
			return nil, err
		}
		p = d
	case KindRequest:
		req := &Request{}
		if req.Sender, err = r.procID(); err != nil {
			return nil, err
		}
		if req.Subrun, err = r.i64(); err != nil {
			return nil, err
		}
		n, err := r.u16()
		if err != nil {
			return nil, err
		}
		if req.LastProcessed, err = r.seqVec(int(n)); err != nil {
			return nil, err
		}
		if req.Waiting, err = r.seqVec(int(n)); err != nil {
			return nil, err
		}
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		if has > 1 {
			return nil, fmt.Errorf("wire: non-canonical hasPrev byte %#x", has)
		}
		if has != 0 {
			req.Prev = &Decision{}
			if err := unmarshalDecisionBody(r, req.Prev); err != nil {
				return nil, err
			}
		}
		p = req
	case KindDecision:
		d := &Decision{}
		if err := unmarshalDecisionBody(r, d); err != nil {
			return nil, err
		}
		p = d
	case KindRecover:
		rec := &Recover{}
		if rec.Requester, err = r.procID(); err != nil {
			return nil, err
		}
		cnt, err := r.u16()
		if err != nil {
			return nil, err
		}
		rec.Wants = make([]WantRange, cnt)
		for i := range rec.Wants {
			if rec.Wants[i].Proc, err = r.procID(); err != nil {
				return nil, err
			}
			f, err := r.u32()
			if err != nil {
				return nil, err
			}
			t, err := r.u32()
			if err != nil {
				return nil, err
			}
			rec.Wants[i].From, rec.Wants[i].To = mid.Seq(f), mid.Seq(t)
		}
		p = rec
	case KindRetransmit:
		rt := &Retransmit{}
		if rt.Responder, err = r.procID(); err != nil {
			return nil, err
		}
		cnt, err := r.u16()
		if err != nil {
			return nil, err
		}
		rt.Msgs = make([]*causal.Message, cnt)
		for i := range rt.Msgs {
			m := &causal.Message{}
			if err := unmarshalMsgBody(r, m); err != nil {
				return nil, err
			}
			rt.Msgs[i] = m
		}
		p = rt
	default:
		return nil, fmt.Errorf("wire: unknown kind %d", kind)
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", len(buf)-r.off, p.Kind())
	}
	return p, nil
}

func marshalMsgBody(w *writer, m *causal.Message) {
	w.i32(int32(m.ID.Proc))
	w.u32(uint32(m.ID.Seq))
	w.u16(uint16(len(m.Deps)))
	for _, d := range m.Deps {
		w.i32(int32(d.Proc))
		w.u32(uint32(d.Seq))
	}
	w.u16(uint16(len(m.Payload)))
	w.bytes(m.Payload)
}

func unmarshalMsgBody(r *reader, m *causal.Message) error {
	var err error
	if m.ID.Proc, err = r.procID(); err != nil {
		return err
	}
	s, err := r.u32()
	if err != nil {
		return err
	}
	m.ID.Seq = mid.Seq(s)
	cnt, err := r.u16()
	if err != nil {
		return err
	}
	if cnt > 0 {
		m.Deps = make(mid.DepList, cnt)
		for i := range m.Deps {
			if m.Deps[i].Proc, err = r.procID(); err != nil {
				return err
			}
			ds, err := r.u32()
			if err != nil {
				return err
			}
			m.Deps[i].Seq = mid.Seq(ds)
		}
	}
	plen, err := r.u16()
	if err != nil {
		return err
	}
	if m.Payload, err = r.take(int(plen)); err != nil {
		return err
	}
	if len(m.Payload) == 0 {
		m.Payload = nil
	}
	return nil
}

func marshalDecisionBody(w *writer, d *Decision) error {
	n := len(d.MaxProcessed)
	if len(d.MostUpdated) != n || len(d.MinWaiting) != n || len(d.CleanTo) != n ||
		len(d.Attempts) != n || len(d.Alive) != n || len(d.Covered) != n {
		return fmt.Errorf("wire: decision field lengths disagree (n=%d)", n)
	}
	w.i64(d.Subrun)
	w.i32(int32(d.Coord))
	w.u16(uint16(n))
	var flags uint8
	if d.FullGroup {
		flags |= 1
	}
	w.u8(flags)
	w.seqVec(d.MaxProcessed)
	for _, p := range d.MostUpdated {
		w.i32(int32(p))
	}
	w.seqVec(d.MinWaiting)
	w.seqVec(d.CleanTo)
	for _, a := range d.Attempts {
		w.u8(a)
	}
	w.bitmask(d.Alive)
	w.bitmask(d.Covered)
	return nil
}

func unmarshalDecisionBody(r *reader, d *Decision) error {
	var err error
	if d.Subrun, err = r.i64(); err != nil {
		return err
	}
	if d.Coord, err = r.procID(); err != nil {
		return err
	}
	n16, err := r.u16()
	if err != nil {
		return err
	}
	n := int(n16)
	flags, err := r.u8()
	if err != nil {
		return err
	}
	if flags&^uint8(1) != 0 {
		return fmt.Errorf("wire: non-canonical decision flags %#x", flags)
	}
	d.FullGroup = flags&1 != 0
	if d.MaxProcessed, err = r.seqVec(n); err != nil {
		return err
	}
	d.MostUpdated = make([]mid.ProcID, n)
	for i := range d.MostUpdated {
		if d.MostUpdated[i], err = r.procID(); err != nil {
			return err
		}
	}
	if d.MinWaiting, err = r.seqVec(n); err != nil {
		return err
	}
	if d.CleanTo, err = r.seqVec(n); err != nil {
		return err
	}
	d.Attempts = make([]uint8, n)
	for i := range d.Attempts {
		if d.Attempts[i], err = r.u8(); err != nil {
			return err
		}
	}
	if d.Alive, err = r.bitmask(n); err != nil {
		return err
	}
	if d.Covered, err = r.bitmask(n); err != nil {
		return err
	}
	return nil
}

// writer appends big-endian fields to a buffer.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) i64(v int64)  { w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v)) }
func (w *writer) bytes(b []byte) {
	w.buf = append(w.buf, b...)
}
func (w *writer) seqVec(v mid.SeqVector) {
	for _, s := range v {
		w.u32(uint32(s))
	}
}
func (w *writer) bitmask(bits []bool) {
	nbytes := (len(bits) + 7) / 8
	start := len(w.buf)
	w.buf = append(w.buf, make([]byte, nbytes)...)
	for i, b := range bits {
		if b {
			w.buf[start+i/8] |= 1 << (i % 8)
		}
	}
}

// reader consumes big-endian fields from a buffer.
type reader struct {
	buf []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) i64() (int64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}

func (r *reader) procID() (mid.ProcID, error) {
	v, err := r.u32()
	return mid.ProcID(int32(v)), err
}

func (r *reader) seqVec(n int) (mid.SeqVector, error) {
	v := mid.NewSeqVector(n)
	for i := range v {
		s, err := r.u32()
		if err != nil {
			return nil, err
		}
		v[i] = mid.Seq(s)
	}
	return v, nil
}

func (r *reader) bitmask(n int) ([]bool, error) {
	raw, err := r.take((n + 7) / 8)
	if err != nil {
		return nil, err
	}
	// Reject set padding bits: the encoding is canonical so that
	// Marshal(Unmarshal(b)) == b for every accepted b.
	if pad := len(raw)*8 - n; pad > 0 && raw[len(raw)-1]>>(8-pad) != 0 {
		return nil, fmt.Errorf("wire: non-canonical bitmask padding")
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return bits, nil
}

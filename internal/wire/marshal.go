package wire

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"unsafe"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// marshalCalls counts completed PDU encodings. The runtimes' broadcast
// paths promise exactly one marshal per PDU regardless of fan-out; tests
// assert that promise through MarshalCalls.
var marshalCalls atomic.Uint64

// MarshalCalls returns the number of PDU encodings performed so far. It is
// a testing hook for marshal-once assertions; the counter never resets.
func MarshalCalls() uint64 { return marshalCalls.Load() }

// Marshal encodes a PDU to a fresh buffer of exactly EncodedSize bytes.
func Marshal(p PDU) ([]byte, error) {
	return MarshalAppend(make([]byte, 0, p.EncodedSize()), p)
}

// MarshalAppend appends the encoding of p to dst and returns the extended
// slice, growing it at most once. The bytes appended are exactly
// p.EncodedSize() long and identical to what Marshal produces, whatever the
// prefix already in dst. On error dst is returned unchanged in content
// (its capacity may have grown).
func MarshalAppend(dst []byte, p PDU) ([]byte, error) {
	w := &writer{buf: grow(dst, p.EncodedSize())}
	start := len(dst)
	w.u8(uint8(p.Kind()))
	switch v := p.(type) {
	case *Data:
		if err := marshalMsgBody(w, &v.Msg); err != nil {
			return dst, err
		}
	case *DataBatch:
		if len(v.Msgs) > MaxBatch {
			return dst, fmt.Errorf("wire: batch of %d messages: %w", len(v.Msgs), ErrTooLarge)
		}
		w.u16(uint16(len(v.Msgs)))
		for i := range v.Msgs {
			if err := marshalMsgBody(w, &v.Msgs[i]); err != nil {
				return dst, err
			}
		}
	case *Request:
		w.i32(int32(v.Sender))
		w.i64(v.Subrun)
		if len(v.LastProcessed) != len(v.Waiting) {
			return dst, fmt.Errorf("wire: request vectors disagree on n (%d vs %d)", len(v.LastProcessed), len(v.Waiting))
		}
		if len(v.LastProcessed) > MaxVector {
			return dst, fmt.Errorf("wire: request vectors of %d entries: %w", len(v.LastProcessed), ErrTooLarge)
		}
		w.u16(uint16(len(v.LastProcessed)))
		w.seqVec(v.LastProcessed)
		w.seqVec(v.Waiting)
		var flags uint8
		if v.Prev != nil {
			flags |= 1
		}
		if v.Join {
			flags |= 2
		}
		w.u8(flags)
		if v.Prev != nil {
			if err := marshalDecisionBody(w, v.Prev); err != nil {
				return dst, err
			}
		}
	case *Decision:
		if err := marshalDecisionBody(w, v); err != nil {
			return dst, err
		}
	case *Recover:
		if len(v.Wants) > MaxWants {
			return dst, fmt.Errorf("wire: recover of %d ranges: %w", len(v.Wants), ErrTooLarge)
		}
		w.i32(int32(v.Requester))
		w.u16(uint16(len(v.Wants)))
		for _, want := range v.Wants {
			w.i32(int32(want.Proc))
			w.u32(uint32(want.From))
			w.u32(uint32(want.To))
		}
	case *Retransmit:
		if len(v.Msgs) > MaxBatch {
			return dst, fmt.Errorf("wire: retransmit of %d messages: %w", len(v.Msgs), ErrTooLarge)
		}
		if len(v.Compacted) > MaxWants {
			return dst, fmt.Errorf("wire: retransmit of %d compacted ranges: %w", len(v.Compacted), ErrTooLarge)
		}
		w.i32(int32(v.Responder))
		w.u16(uint16(len(v.Msgs)))
		for _, m := range v.Msgs {
			if err := marshalMsgBody(w, m); err != nil {
				return dst, err
			}
		}
		w.u16(uint16(len(v.Compacted)))
		for _, want := range v.Compacted {
			w.i32(int32(want.Proc))
			w.u32(uint32(want.From))
			w.u32(uint32(want.To))
		}
	case *Join:
		w.i32(int32(v.Joiner))
	case *JoinState:
		if len(v.Stable) != len(v.Processed) {
			return dst, fmt.Errorf("wire: joinstate vectors disagree on n (%d vs %d)", len(v.Stable), len(v.Processed))
		}
		if len(v.Stable) > MaxVector {
			return dst, fmt.Errorf("wire: joinstate vectors of %d entries: %w", len(v.Stable), ErrTooLarge)
		}
		w.i32(int32(v.Sponsor))
		w.u32(uint32(v.Resume))
		w.u16(uint16(len(v.Stable)))
		w.seqVec(v.Stable)
		w.seqVec(v.Processed)
		if v.Prev == nil {
			w.u8(0)
		} else {
			w.u8(1)
			if err := marshalDecisionBody(w, v.Prev); err != nil {
				return dst, err
			}
		}
	default:
		return dst, fmt.Errorf("wire: unknown PDU type %T", p)
	}
	if len(w.buf)-start != p.EncodedSize() {
		return dst, fmt.Errorf("wire: %v encoded to %d bytes, EncodedSize says %d", p.Kind(), len(w.buf)-start, p.EncodedSize())
	}
	marshalCalls.Add(1)
	return w.buf, nil
}

// grow returns b with room for at least n more bytes, reallocating at most
// once (append's growth policy may over-allocate, which the pool welcomes).
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	nb := make([]byte, len(b), len(b)+n)
	copy(nb, b)
	return nb
}

// Unmarshal decodes a buffer produced by Marshal. The returned PDU owns
// every byte of its variable-length fields: nothing in it aliases buf, so
// the caller may reuse or pool buf the moment Unmarshal returns.
func Unmarshal(buf []byte) (PDU, error) {
	r := &reader{buf: buf}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	var p PDU
	switch Kind(kind) {
	case KindData:
		d := &Data{}
		if err := unmarshalMsgBody(r, &d.Msg); err != nil {
			return nil, err
		}
		p = d
	case KindDataBatch:
		b := &DataBatch{}
		cnt, err := r.u16()
		if err != nil {
			return nil, err
		}
		// Every message body is at least 12 bytes (mid + two zero counts);
		// reject a forged count before it sizes an allocation.
		if len(r.buf)-r.off < 12*int(cnt) {
			return nil, ErrTruncated
		}
		// One arena for all message headers: decoded messages are handed
		// to the protocol individually (&Msgs[i]), but share the batch's
		// single slice allocation.
		b.Msgs = make([]causal.Message, cnt)
		for i := range b.Msgs {
			if err := unmarshalMsgBody(r, &b.Msgs[i]); err != nil {
				return nil, err
			}
		}
		p = b
	case KindRequest:
		req := &Request{}
		if req.Sender, err = r.procID(); err != nil {
			return nil, err
		}
		if req.Subrun, err = r.i64(); err != nil {
			return nil, err
		}
		n16, err := r.u16()
		if err != nil {
			return nil, err
		}
		n := int(n16)
		if len(r.buf)-r.off < 8*n {
			return nil, ErrTruncated
		}
		// One arena for both vectors (see unmarshalDecisionBody).
		u32s := make(mid.SeqVector, 2*n)
		req.LastProcessed = u32s[:n:n]
		req.Waiting = u32s[n : 2*n : 2*n]
		if err := r.seqVecInto(req.LastProcessed); err != nil {
			return nil, err
		}
		if err := r.seqVecInto(req.Waiting); err != nil {
			return nil, err
		}
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		if flags&^uint8(3) != 0 {
			return nil, fmt.Errorf("wire: non-canonical request flags %#x", flags)
		}
		req.Join = flags&2 != 0
		if flags&1 != 0 {
			req.Prev = &Decision{}
			if err := unmarshalDecisionBody(r, req.Prev); err != nil {
				return nil, err
			}
		}
		p = req
	case KindDecision:
		d := &Decision{}
		if err := unmarshalDecisionBody(r, d); err != nil {
			return nil, err
		}
		p = d
	case KindRecover:
		rec := &Recover{}
		if rec.Requester, err = r.procID(); err != nil {
			return nil, err
		}
		cnt, err := r.u16()
		if err != nil {
			return nil, err
		}
		rec.Wants = make([]WantRange, cnt)
		for i := range rec.Wants {
			if rec.Wants[i].Proc, err = r.procID(); err != nil {
				return nil, err
			}
			f, err := r.u32()
			if err != nil {
				return nil, err
			}
			t, err := r.u32()
			if err != nil {
				return nil, err
			}
			rec.Wants[i].From, rec.Wants[i].To = mid.Seq(f), mid.Seq(t)
		}
		p = rec
	case KindRetransmit:
		rt := &Retransmit{}
		if rt.Responder, err = r.procID(); err != nil {
			return nil, err
		}
		cnt, err := r.u16()
		if err != nil {
			return nil, err
		}
		if cnt > 0 {
			rt.Msgs = make([]*causal.Message, cnt)
			for i := range rt.Msgs {
				m := &causal.Message{}
				if err := unmarshalMsgBody(r, m); err != nil {
					return nil, err
				}
				rt.Msgs[i] = m
			}
		}
		ccnt, err := r.u16()
		if err != nil {
			return nil, err
		}
		if len(r.buf)-r.off < 12*int(ccnt) {
			return nil, ErrTruncated
		}
		if ccnt > 0 {
			rt.Compacted = make([]WantRange, ccnt)
			for i := range rt.Compacted {
				if rt.Compacted[i].Proc, err = r.procID(); err != nil {
					return nil, err
				}
				f, err := r.u32()
				if err != nil {
					return nil, err
				}
				t, err := r.u32()
				if err != nil {
					return nil, err
				}
				rt.Compacted[i].From, rt.Compacted[i].To = mid.Seq(f), mid.Seq(t)
			}
		}
		p = rt
	case KindJoin:
		j := &Join{}
		if j.Joiner, err = r.procID(); err != nil {
			return nil, err
		}
		p = j
	case KindJoinState:
		js := &JoinState{}
		if js.Sponsor, err = r.procID(); err != nil {
			return nil, err
		}
		res, err := r.u32()
		if err != nil {
			return nil, err
		}
		js.Resume = mid.Seq(res)
		n16, err := r.u16()
		if err != nil {
			return nil, err
		}
		n := int(n16)
		if len(r.buf)-r.off < 8*n {
			return nil, ErrTruncated
		}
		// One arena for both vectors (see unmarshalDecisionBody).
		u32s := make(mid.SeqVector, 2*n)
		js.Stable = u32s[:n:n]
		js.Processed = u32s[n : 2*n : 2*n]
		if err := r.seqVecInto(js.Stable); err != nil {
			return nil, err
		}
		if err := r.seqVecInto(js.Processed); err != nil {
			return nil, err
		}
		has, err := r.u8()
		if err != nil {
			return nil, err
		}
		if has > 1 {
			return nil, fmt.Errorf("wire: non-canonical hasPrev byte %#x", has)
		}
		if has != 0 {
			js.Prev = &Decision{}
			if err := unmarshalDecisionBody(r, js.Prev); err != nil {
				return nil, err
			}
		}
		p = js
	default:
		return nil, fmt.Errorf("wire: unknown kind %d", kind)
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", len(buf)-r.off, p.Kind())
	}
	return p, nil
}

func marshalMsgBody(w *writer, m *causal.Message) error {
	// Both counts ride 16-bit prefixes; without these checks a 65536-byte
	// payload would encode length 0 and corrupt the frame silently.
	if len(m.Deps) > MaxDeps {
		return fmt.Errorf("wire: message %v with %d deps: %w", m.ID, len(m.Deps), ErrTooLarge)
	}
	if len(m.Payload) > MaxPayload {
		return fmt.Errorf("wire: message %v payload of %d bytes: %w", m.ID, len(m.Payload), ErrTooLarge)
	}
	w.i32(int32(m.ID.Proc))
	w.u32(uint32(m.ID.Seq))
	w.u16(uint16(len(m.Deps)))
	for _, d := range m.Deps {
		w.i32(int32(d.Proc))
		w.u32(uint32(d.Seq))
	}
	w.u16(uint16(len(m.Payload)))
	w.bytes(m.Payload)
	return nil
}

func unmarshalMsgBody(r *reader, m *causal.Message) error {
	var err error
	if m.ID.Proc, err = r.procID(); err != nil {
		return err
	}
	s, err := r.u32()
	if err != nil {
		return err
	}
	m.ID.Seq = mid.Seq(s)
	cnt, err := r.u16()
	if err != nil {
		return err
	}
	if cnt > 0 {
		raw, err := r.take(8 * int(cnt))
		if err != nil {
			return err
		}
		m.Deps = make(mid.DepList, cnt)
		for i := range m.Deps {
			m.Deps[i].Proc = mid.ProcID(int32(binary.BigEndian.Uint32(raw[8*i:])))
			m.Deps[i].Seq = mid.Seq(binary.BigEndian.Uint32(raw[8*i+4:]))
		}
	}
	plen, err := r.u16()
	if err != nil {
		return err
	}
	raw, err := r.take(int(plen))
	if err != nil {
		return err
	}
	if len(raw) > 0 {
		// Copy so the decoded message owns its payload: decoded PDUs are
		// retained indefinitely (history), while buf may be pooled.
		m.Payload = append([]byte(nil), raw...)
	} else {
		m.Payload = nil
	}
	return nil
}

func marshalDecisionBody(w *writer, d *Decision) error {
	n := len(d.MaxProcessed)
	if len(d.MostUpdated) != n || len(d.MinWaiting) != n || len(d.CleanTo) != n ||
		len(d.Attempts) != n || len(d.Alive) != n || len(d.Covered) != n {
		return fmt.Errorf("wire: decision field lengths disagree (n=%d)", n)
	}
	w.i64(d.Subrun)
	w.i32(int32(d.Coord))
	w.u16(uint16(n))
	var flags uint8
	if d.FullGroup {
		flags |= 1
	}
	w.u8(flags)
	w.seqVec(d.MaxProcessed)
	w.procVec(d.MostUpdated)
	w.seqVec(d.MinWaiting)
	w.seqVec(d.CleanTo)
	w.bytes(d.Attempts)
	w.bitmask(d.Alive)
	w.bitmask(d.Covered)
	return nil
}

func unmarshalDecisionBody(r *reader, d *Decision) error {
	var err error
	if d.Subrun, err = r.i64(); err != nil {
		return err
	}
	if d.Coord, err = r.procID(); err != nil {
		return err
	}
	n16, err := r.u16()
	if err != nil {
		return err
	}
	n := int(n16)
	flags, err := r.u8()
	if err != nil {
		return err
	}
	if flags&^uint8(1) != 0 {
		return fmt.Errorf("wire: non-canonical decision flags %#x", flags)
	}
	d.FullGroup = flags&1 != 0
	// Before allocating anything sized by the claimed n, make sure the
	// buffer can actually hold the body (a forged header must not trigger
	// a large allocation).
	if need := 16*n + n + 2*((n+7)/8); len(r.buf)-r.off < need {
		return ErrTruncated
	}
	// Carve every slice field out of two arena allocations — one for the
	// 4-byte elements, one for the 1-byte elements. Decisions are decoded
	// once per peer per subrun, and the wire hot path pays per allocation,
	// not per byte: this turns 7 slice allocations into 2. The three-index
	// subslices cap each field exactly, so a later append cannot stomp a
	// neighbouring field.
	u32s := make(mid.SeqVector, 4*n)
	d.MaxProcessed = u32s[0*n : 1*n : 1*n]
	d.MinWaiting = u32s[1*n : 2*n : 2*n]
	d.CleanTo = u32s[2*n : 3*n : 3*n]
	d.MostUpdated = procIDSlice(u32s[3*n : 4*n : 4*n])
	bytes := make([]uint8, 3*n)
	d.Attempts = bytes[0*n : 1*n : 1*n]
	d.Alive = boolSlice(bytes[1*n : 2*n : 2*n])
	d.Covered = boolSlice(bytes[2*n : 3*n : 3*n])
	if err = r.seqVecInto(d.MaxProcessed); err != nil {
		return err
	}
	if err = r.procVecInto(d.MostUpdated); err != nil {
		return err
	}
	if err = r.seqVecInto(d.MinWaiting); err != nil {
		return err
	}
	if err = r.seqVecInto(d.CleanTo); err != nil {
		return err
	}
	raw, err := r.take(n)
	if err != nil {
		return err
	}
	copy(d.Attempts, raw)
	if err = r.bitmaskInto(d.Alive); err != nil {
		return err
	}
	return r.bitmaskInto(d.Covered)
}

// procIDSlice reinterprets a section of a Seq arena as []mid.ProcID. Both
// are 32-bit integer types with identical layout; the reinterpretation only
// shares the backing allocation, never overlapping elements.
func procIDSlice(v mid.SeqVector) []mid.ProcID {
	if len(v) == 0 {
		return []mid.ProcID{}
	}
	return unsafe.Slice((*mid.ProcID)(unsafe.Pointer(&v[0])), len(v))
}

// boolSlice reinterprets a zeroed section of a byte arena as []bool. Every
// element is written as a genuine bool (the arena starts zeroed = all
// false) before anything reads it, so no byte ever holds a non-bool value.
func boolSlice(b []uint8) []bool {
	if len(b) == 0 {
		return []bool{}
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b))
}

// writer appends big-endian fields to a buffer. MarshalAppend pre-grows the
// buffer to the PDU's EncodedSize, so the append calls below normally never
// reallocate; extend covers the defensive general case.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) i64(v int64)  { w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v)) }
func (w *writer) bytes(b []byte) {
	w.buf = append(w.buf, b...)
}

// extend lengthens the buffer by n zeroed bytes and returns the offset at
// which they start, so callers can fill a whole field with one bulk write.
func (w *writer) extend(n int) int {
	off := len(w.buf)
	if cap(w.buf)-off >= n {
		w.buf = w.buf[: off+n : cap(w.buf)]
		clear(w.buf[off:])
	} else {
		w.buf = append(w.buf, make([]byte, n)...)
	}
	return off
}

func (w *writer) seqVec(v mid.SeqVector) {
	off := w.extend(4 * len(v))
	for i, s := range v {
		binary.BigEndian.PutUint32(w.buf[off+4*i:], uint32(s))
	}
}

func (w *writer) procVec(v []mid.ProcID) {
	off := w.extend(4 * len(v))
	for i, p := range v {
		binary.BigEndian.PutUint32(w.buf[off+4*i:], uint32(int32(p)))
	}
}

func (w *writer) bitmask(bits []bool) {
	off := w.extend((len(bits) + 7) / 8)
	for i, b := range bits {
		if b {
			w.buf[off+i/8] |= 1 << (i % 8)
		}
	}
}

// reader consumes big-endian fields from a buffer.
type reader struct {
	buf []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) i64() (int64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}

func (r *reader) procID() (mid.ProcID, error) {
	v, err := r.u32()
	return mid.ProcID(int32(v)), err
}

// seqVecInto bulk-decodes len(v) big-endian sequence numbers into v.
func (r *reader) seqVecInto(v mid.SeqVector) error {
	raw, err := r.take(4 * len(v))
	if err != nil {
		return err
	}
	for i := range v {
		v[i] = mid.Seq(binary.BigEndian.Uint32(raw[4*i:]))
	}
	return nil
}

// procVecInto bulk-decodes len(v) big-endian process IDs into v.
func (r *reader) procVecInto(v []mid.ProcID) error {
	raw, err := r.take(4 * len(v))
	if err != nil {
		return err
	}
	for i := range v {
		v[i] = mid.ProcID(int32(binary.BigEndian.Uint32(raw[4*i:])))
	}
	return nil
}

// bitmaskInto bulk-decodes a packed bitmask into bits.
func (r *reader) bitmaskInto(bits []bool) error {
	n := len(bits)
	raw, err := r.take((n + 7) / 8)
	if err != nil {
		return err
	}
	// Reject set padding bits: the encoding is canonical so that
	// Marshal(Unmarshal(b)) == b for every accepted b.
	if pad := len(raw)*8 - n; pad > 0 && raw[len(raw)-1]>>(8-pad) != 0 {
		return fmt.Errorf("wire: non-canonical bitmask padding")
	}
	for i := range bits {
		bits[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return nil
}

package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

func roundTrip(t *testing.T, p PDU) PDU {
	t.Helper()
	buf, err := Marshal(p)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", p.Kind(), err)
	}
	if len(buf) != p.EncodedSize() {
		t.Fatalf("%v: encoded %d bytes, EncodedSize %d", p.Kind(), len(buf), p.EncodedSize())
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", p.Kind(), err)
	}
	return got
}

func TestDataRoundTrip(t *testing.T) {
	d := &Data{Msg: causal.Message{
		ID:      mid.MID{Proc: 3, Seq: 17},
		Deps:    mid.DepList{{Proc: 0, Seq: 4}, {Proc: 2, Seq: 9}},
		Payload: []byte("hello group"),
	}}
	got := roundTrip(t, d).(*Data)
	if !reflect.DeepEqual(d, got) {
		t.Errorf("round trip mismatch:\n  in  %+v\n  out %+v", d, got)
	}
}

func TestDataEmptyRoundTrip(t *testing.T) {
	d := &Data{Msg: causal.Message{ID: mid.MID{Proc: 0, Seq: 1}}}
	got := roundTrip(t, d).(*Data)
	if !reflect.DeepEqual(d, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", d, got)
	}
}

func mkDecision(n int) *Decision {
	d := &Decision{
		Subrun:       42,
		Coord:        1,
		MaxProcessed: mid.NewSeqVector(n),
		MostUpdated:  make([]mid.ProcID, n),
		MinWaiting:   mid.NewSeqVector(n),
		CleanTo:      mid.NewSeqVector(n),
		Attempts:     make([]uint8, n),
		Alive:        make([]bool, n),
		Covered:      make([]bool, n),
		FullGroup:    true,
	}
	for i := 0; i < n; i++ {
		d.MaxProcessed[i] = mid.Seq(i * 3)
		d.MostUpdated[i] = mid.ProcID((i + 1) % n)
		d.MinWaiting[i] = mid.Seq(i)
		d.CleanTo[i] = mid.Seq(i * 2)
		d.Attempts[i] = uint8(i % 4)
		d.Alive[i] = i%3 != 0
		d.Covered[i] = i%2 == 0
	}
	d.MostUpdated[0] = mid.None
	return d
}

func TestDecisionRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 9, 15, 40} {
		d := mkDecision(n)
		got := roundTrip(t, d).(*Decision)
		if !reflect.DeepEqual(d, got) {
			t.Errorf("n=%d round trip mismatch:\n  in  %+v\n  out %+v", n, d, got)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	r := &Request{
		Sender:        2,
		Subrun:        7,
		LastProcessed: mid.SeqVector{1, 2, 3},
		Waiting:       mid.SeqVector{0, 5, 0},
		Prev:          mkDecision(3),
	}
	got := roundTrip(t, r).(*Request)
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip mismatch:\n  in  %+v\n  out %+v", r, got)
	}
}

func TestRequestNoPrevRoundTrip(t *testing.T) {
	r := &Request{
		Sender:        0,
		Subrun:        0,
		LastProcessed: mid.SeqVector{0, 0},
		Waiting:       mid.SeqVector{0, 0},
	}
	got := roundTrip(t, r).(*Request)
	if got.Prev != nil {
		t.Error("Prev should stay nil")
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", r, got)
	}
}

func TestRequestJoinFlagRoundTrip(t *testing.T) {
	// The join flag rides a bit in the byte that used to be hasPrev, so it
	// must survive every {Join, Prev} combination without changing the
	// encoded size.
	for _, join := range []bool{false, true} {
		for _, prev := range []*Decision{nil, mkDecision(3)} {
			r := &Request{
				Sender:        1,
				Subrun:        9,
				LastProcessed: mid.SeqVector{1, 2, 3},
				Waiting:       mid.SeqVector{0, 5, 0},
				Prev:          prev,
				Join:          join,
			}
			plain := &Request{
				Sender: r.Sender, Subrun: r.Subrun,
				LastProcessed: r.LastProcessed, Waiting: r.Waiting, Prev: r.Prev,
			}
			if r.EncodedSize() != plain.EncodedSize() {
				t.Fatalf("join=%v changed the encoded size: %d vs %d",
					join, r.EncodedSize(), plain.EncodedSize())
			}
			got := roundTrip(t, r).(*Request)
			if !reflect.DeepEqual(r, got) {
				t.Errorf("join=%v prev=%v round trip mismatch:\n  in  %+v\n  out %+v",
					join, prev != nil, r, got)
			}
		}
	}
}

func TestJoinRoundTrip(t *testing.T) {
	j := &Join{Joiner: 6}
	got := roundTrip(t, j).(*Join)
	if !reflect.DeepEqual(j, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", j, got)
	}
}

func TestJoinStateRoundTrip(t *testing.T) {
	for _, prev := range []*Decision{nil, mkDecision(4)} {
		js := &JoinState{
			Sponsor:   2,
			Resume:    17,
			Stable:    mid.SeqVector{4, 3, 9, 1},
			Processed: mid.SeqVector{6, 3, 12, 2},
			Prev:      prev,
		}
		got := roundTrip(t, js).(*JoinState)
		if !reflect.DeepEqual(js, got) {
			t.Errorf("prev=%v round trip mismatch:\n  in  %+v\n  out %+v", prev != nil, js, got)
		}
	}
}

func TestJoinStateVectorMismatchRejected(t *testing.T) {
	js := &JoinState{Sponsor: 0, Stable: mid.SeqVector{1}, Processed: mid.SeqVector{1, 2}}
	if _, err := Marshal(js); err == nil {
		t.Error("mismatched vector lengths must be rejected")
	}
}

func TestRetransmitCompactedRoundTrip(t *testing.T) {
	cases := []*Retransmit{
		// Compacted alongside recovered bytes.
		{
			Responder: 1,
			Msgs:      []*causal.Message{{ID: mid.MID{Proc: 0, Seq: 5}, Payload: []byte("kept")}},
			Compacted: []WantRange{{Proc: 0, From: 1, To: 4}},
		},
		// Everything wanted was already purged: no messages at all.
		{
			Responder: 2,
			Compacted: []WantRange{{Proc: 0, From: 1, To: 9}, {Proc: 3, From: 2, To: 2}},
		},
	}
	for _, rt := range cases {
		got := roundTrip(t, rt).(*Retransmit)
		if !reflect.DeepEqual(rt, got) {
			t.Errorf("round trip mismatch:\n  in  %+v\n  out %+v", rt, got)
		}
	}
}

func TestRequestVectorMismatchRejected(t *testing.T) {
	r := &Request{LastProcessed: mid.SeqVector{1}, Waiting: mid.SeqVector{1, 2}}
	if _, err := Marshal(r); err == nil {
		t.Error("mismatched vector lengths must be rejected")
	}
}

func TestDecisionFieldMismatchRejected(t *testing.T) {
	d := mkDecision(3)
	d.Attempts = d.Attempts[:2]
	if _, err := Marshal(d); err == nil {
		t.Error("mismatched decision fields must be rejected")
	}
}

func TestRecoverRoundTrip(t *testing.T) {
	r := &Recover{
		Requester: 4,
		Wants: []WantRange{
			{Proc: 0, From: 3, To: 9},
			{Proc: 2, From: 1, To: 1},
		},
	}
	got := roundTrip(t, r).(*Recover)
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", r, got)
	}
}

func TestRetransmitRoundTrip(t *testing.T) {
	rt := &Retransmit{
		Responder: 1,
		Msgs: []*causal.Message{
			{ID: mid.MID{Proc: 0, Seq: 1}, Payload: []byte("a")},
			{ID: mid.MID{Proc: 0, Seq: 2}, Deps: mid.DepList{{Proc: 1, Seq: 1}}},
		},
	}
	got := roundTrip(t, rt).(*Retransmit)
	if !reflect.DeepEqual(rt, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", rt, got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty buffer must fail")
	}
	if _, err := Unmarshal([]byte{99}); err == nil {
		t.Error("unknown kind must fail")
	}
	// Truncations of a valid PDU at every prefix length must error, never
	// panic or succeed.
	buf, err := Marshal(mkDecision(5))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(buf))
		}
	}
	// Trailing garbage must error.
	if _, err := Unmarshal(append(append([]byte{}, buf...), 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestDecisionClone(t *testing.T) {
	d := mkDecision(4)
	c := d.Clone()
	if !reflect.DeepEqual(d, c) {
		t.Fatal("clone should equal original")
	}
	c.MaxProcessed[0] = 999
	c.Alive[1] = !c.Alive[1]
	if d.MaxProcessed[0] == 999 || d.Alive[1] == c.Alive[1] {
		t.Error("clone must be independent")
	}
	if (*Decision)(nil).Clone() != nil {
		t.Error("nil clone is nil")
	}
}

// TestMarshalAppendPrefix: MarshalAppend behind any prefix produces the
// exact bytes Marshal produces, leaves the prefix intact, and grows the
// slice by exactly EncodedSize.
func TestMarshalAppendPrefix(t *testing.T) {
	pdus := []PDU{
		&Data{Msg: causal.Message{ID: mid.MID{Proc: 3, Seq: 17}, Payload: []byte("hello")}},
		&Request{Sender: 2, Subrun: 7, LastProcessed: mid.SeqVector{1, 2, 3}, Waiting: mid.SeqVector{0, 5, 0}, Prev: mkDecision(3)},
		mkDecision(8),
		&Recover{Requester: 4, Wants: []WantRange{{Proc: 0, From: 3, To: 9}}},
		&Retransmit{Responder: 1, Msgs: []*causal.Message{{ID: mid.MID{Proc: 0, Seq: 1}, Payload: []byte("a")}},
			Compacted: []WantRange{{Proc: 2, From: 1, To: 6}}},
		&Join{Joiner: 2},
		&JoinState{Sponsor: 0, Resume: 4, Stable: mid.SeqVector{1, 2, 3}, Processed: mid.SeqVector{2, 2, 4}, Prev: mkDecision(3)},
	}
	prefixes := [][]byte{nil, {}, {0xde, 0xad, 0xbe, 0xef}, bytes.Repeat([]byte{7}, 100)}
	for _, p := range pdus {
		want, err := Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, prefix := range prefixes {
			dst := append([]byte(nil), prefix...)
			got, err := MarshalAppend(dst, p)
			if err != nil {
				t.Fatalf("%v: MarshalAppend: %v", p.Kind(), err)
			}
			if !bytes.Equal(got[:len(prefix)], prefix) {
				t.Fatalf("%v: prefix clobbered", p.Kind())
			}
			if !bytes.Equal(got[len(prefix):], want) {
				t.Fatalf("%v: appended bytes differ from Marshal:\n append %x\n direct %x", p.Kind(), got[len(prefix):], want)
			}
			if len(got) != len(prefix)+p.EncodedSize() {
				t.Fatalf("%v: appended %d bytes, EncodedSize %d", p.Kind(), len(got)-len(prefix), p.EncodedSize())
			}
		}
	}
}

// TestMarshalAppendErrorKeepsPrefix: a failed MarshalAppend must not leave
// a half-written PDU visible behind the prefix.
func TestMarshalAppendErrorKeepsPrefix(t *testing.T) {
	bad := &Request{LastProcessed: mid.SeqVector{1}, Waiting: mid.SeqVector{1, 2}}
	prefix := []byte{1, 2, 3}
	got, err := MarshalAppend(append([]byte(nil), prefix...), bad)
	if err == nil {
		t.Fatal("mismatched vectors must be rejected")
	}
	if !bytes.Equal(got, prefix) {
		t.Fatalf("error path returned %x, want the untouched prefix %x", got, prefix)
	}
}

// TestUnmarshalDoesNotAliasInput: decoded PDUs must own all their memory so
// the input buffer can be pooled/reused the moment Unmarshal returns. This
// is the ownership rule the rt and transport hot paths rely on.
func TestUnmarshalDoesNotAliasInput(t *testing.T) {
	pdus := []PDU{
		&Data{Msg: causal.Message{
			ID:      mid.MID{Proc: 3, Seq: 17},
			Deps:    mid.DepList{{Proc: 0, Seq: 4}, {Proc: 2, Seq: 9}},
			Payload: []byte("payload bytes"),
		}},
		&Request{Sender: 2, Subrun: 7, LastProcessed: mid.SeqVector{1, 2, 3}, Waiting: mid.SeqVector{0, 5, 0}, Prev: mkDecision(3)},
		mkDecision(9),
		&Retransmit{Responder: 1, Msgs: []*causal.Message{
			{ID: mid.MID{Proc: 0, Seq: 1}, Payload: []byte("retained")},
		}, Compacted: []WantRange{{Proc: 4, From: 2, To: 8}}},
		&JoinState{Sponsor: 1, Resume: 3, Stable: mid.SeqVector{5, 5, 5}, Processed: mid.SeqVector{7, 5, 6}, Prev: mkDecision(3)},
	}
	for _, p := range pdus {
		buf, err := Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		// Scribble over the input as a pooled-reuse would; the decoded PDU
		// must be unaffected.
		for i := range buf {
			buf[i] = 0xAA
		}
		re, err := Marshal(got)
		if err != nil {
			t.Fatalf("%v: re-marshal after input scribble: %v", p.Kind(), err)
		}
		want, err := Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, want) {
			t.Errorf("%v: decoded PDU aliases the input buffer (corrupted after scribble)", p.Kind())
		}
	}
}

// TestGetPutBuf exercises the pool contract.
func TestGetPutBuf(t *testing.T) {
	b := GetBuf(128)
	if len(b) != 0 || cap(b) < 128 {
		t.Fatalf("GetBuf(128): len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	b2 := GetBuf(8)
	if len(b2) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(b2))
	}
	PutBuf(nil)                           // must not panic
	PutBuf(make([]byte, maxPooledBuf+1))  // oversize: silently dropped
	big := GetBuf(maxPooledBuf + 1)       // bigger than anything pooled
	if cap(big) < maxPooledBuf+1 {
		t.Fatalf("GetBuf must satisfy the request: cap=%d", cap(big))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData: "DATA", KindRequest: "REQUEST", KindDecision: "DECISION",
		KindRecover: "RECOVER", KindRetransmit: "RETRANSMIT",
		KindJoin: "JOIN", KindJoinState: "JOIN-STATE", Kind(77): "KIND(77)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// Property: Marshal∘Unmarshal∘Marshal is the identity on bytes for randomly
// generated PDUs of every kind.
func TestMarshalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randMsg := func() *causal.Message {
		m := &causal.Message{ID: mid.MID{Proc: mid.ProcID(rng.Intn(20)), Seq: mid.Seq(1 + rng.Intn(1000))}}
		for d := rng.Intn(5); d > 0; d-- {
			m.Deps = append(m.Deps, mid.MID{Proc: mid.ProcID(rng.Intn(20)), Seq: mid.Seq(1 + rng.Intn(1000))})
		}
		if rng.Intn(2) == 0 {
			m.Payload = make([]byte, rng.Intn(100))
			rng.Read(m.Payload)
			if len(m.Payload) == 0 {
				m.Payload = nil
			}
		}
		return m
	}
	for trial := 0; trial < 300; trial++ {
		var p PDU
		switch rng.Intn(7) {
		case 0:
			p = &Data{Msg: *randMsg()}
		case 1:
			n := 1 + rng.Intn(12)
			req := &Request{
				Sender:        mid.ProcID(rng.Intn(n)),
				Subrun:        rng.Int63n(1 << 40),
				LastProcessed: mid.NewSeqVector(n),
				Waiting:       mid.NewSeqVector(n),
				Join:          rng.Intn(4) == 0,
			}
			for i := 0; i < n; i++ {
				req.LastProcessed[i] = mid.Seq(rng.Intn(500))
				req.Waiting[i] = mid.Seq(rng.Intn(500))
			}
			if rng.Intn(2) == 0 {
				req.Prev = mkDecision(n)
			}
			p = req
		case 2:
			p = mkDecision(1 + rng.Intn(40))
		case 3:
			rec := &Recover{Requester: mid.ProcID(rng.Intn(10))}
			for i := rng.Intn(6); i > 0; i-- {
				f := mid.Seq(1 + rng.Intn(100))
				rec.Wants = append(rec.Wants, WantRange{Proc: mid.ProcID(rng.Intn(10)), From: f, To: f + mid.Seq(rng.Intn(20))})
			}
			p = rec
		case 4:
			p = &Join{Joiner: mid.ProcID(rng.Intn(20))}
		case 5:
			n := 1 + rng.Intn(12)
			js := &JoinState{
				Sponsor:   mid.ProcID(rng.Intn(n)),
				Resume:    mid.Seq(rng.Intn(500)),
				Stable:    mid.NewSeqVector(n),
				Processed: mid.NewSeqVector(n),
			}
			for i := 0; i < n; i++ {
				js.Stable[i] = mid.Seq(rng.Intn(500))
				js.Processed[i] = js.Stable[i] + mid.Seq(rng.Intn(50))
			}
			if rng.Intn(2) == 0 {
				js.Prev = mkDecision(n)
			}
			p = js
		default:
			rt := &Retransmit{Responder: mid.ProcID(rng.Intn(10))}
			for i := rng.Intn(4); i > 0; i-- {
				rt.Msgs = append(rt.Msgs, randMsg())
			}
			for i := rng.Intn(3); i > 0; i-- {
				f := mid.Seq(1 + rng.Intn(100))
				rt.Compacted = append(rt.Compacted, WantRange{Proc: mid.ProcID(rng.Intn(10)), From: f, To: f + mid.Seq(rng.Intn(20))})
			}
			p = rt
		}
		b1, err := Marshal(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		q, err := Unmarshal(b1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b2, err := Marshal(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("trial %d: re-marshal differs for %v", trial, p.Kind())
		}
	}
}

package wire

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// allocCases lists one representative PDU per kind, shaped like paper-scale
// traffic (n=40 control vectors, 64-byte payloads).
func allocCases() map[string]PDU {
	return map[string]PDU{
		"Data": &Data{Msg: causal.Message{
			ID:      mid.MID{Proc: 3, Seq: 17},
			Deps:    mid.DepList{{Proc: 0, Seq: 4}, {Proc: 2, Seq: 9}},
			Payload: make([]byte, 64),
		}},
		"Request": &Request{
			Sender: 2, Subrun: 7,
			LastProcessed: mid.NewSeqVector(40),
			Waiting:       mid.NewSeqVector(40),
			Prev:          mkDecision(40),
		},
		"Decision": mkDecision(40),
		"Recover": &Recover{Requester: 4, Wants: []WantRange{
			{Proc: 0, From: 3, To: 9}, {Proc: 2, From: 1, To: 1},
		}},
		"Retransmit": &Retransmit{Responder: 1, Msgs: []*causal.Message{
			{ID: mid.MID{Proc: 0, Seq: 1}, Payload: make([]byte, 64)},
			{ID: mid.MID{Proc: 0, Seq: 2}, Deps: mid.DepList{{Proc: 1, Seq: 1}}},
		}},
		"DataBatch": &DataBatch{Msgs: []causal.Message{
			{ID: mid.MID{Proc: 3, Seq: 17}, Deps: mid.DepList{{Proc: 0, Seq: 4}}, Payload: make([]byte, 64)},
			{ID: mid.MID{Proc: 3, Seq: 18}, Payload: make([]byte, 64)},
		}},
	}
}

// TestMarshalAppendAllocFree guards the broadcast hot path: encoding into a
// buffer with sufficient capacity must never allocate, for any PDU kind.
func TestMarshalAppendAllocFree(t *testing.T) {
	for name, p := range allocCases() {
		buf := make([]byte, 0, p.EncodedSize())
		got := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = MarshalAppend(buf[:0], p)
			if err != nil {
				t.Fatal(err)
			}
		})
		if got != 0 {
			t.Errorf("%s: MarshalAppend into presized buffer allocates %.1f/op, want 0", name, got)
		}
	}
}

// TestMarshalAllocBudget pins Marshal to its single buffer allocation.
func TestMarshalAllocBudget(t *testing.T) {
	for name, p := range allocCases() {
		p := p
		got := testing.AllocsPerRun(200, func() {
			if _, err := Marshal(p); err != nil {
				t.Fatal(err)
			}
		})
		if got > 1 {
			t.Errorf("%s: Marshal allocates %.1f/op, want <= 1 (the buffer)", name, got)
		}
	}
}

// TestUnmarshalAllocBudget pins the decode path to its arena allocation
// counts so pooling and arena wins cannot silently regress. Budgets per
// kind: the PDU struct, the 4-byte-element arena, the 1-byte-element arena,
// plus per-message deps/payload copies for the message-bearing kinds.
func TestUnmarshalAllocBudget(t *testing.T) {
	budgets := map[string]float64{
		"Data":       3, // struct + deps + payload copy
		"Request":    6, // struct + request arena + prev decision (struct + 2 arenas)... one spare
		"Decision":   3, // struct + u32 arena + byte arena
		"Recover":    2, // struct + wants
		"Retransmit": 7, // struct + msgs + 2*(msg struct + payload/deps)
		"DataBatch":  6, // struct + msgs slice + 2*(deps + payload copy)
	}
	for name, p := range allocCases() {
		buf, err := Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		got := testing.AllocsPerRun(200, func() {
			if _, err := Unmarshal(buf); err != nil {
				t.Fatal(err)
			}
		})
		if got > budgets[name] {
			t.Errorf("%s: Unmarshal allocates %.1f/op, budget %.0f", name, got, budgets[name])
		}
	}
}

// TestPooledRoundTripAllocFree guards the full pooled hot path — GetBuf,
// MarshalAppend, PutBuf — at zero allocations in steady state.
func TestPooledRoundTripAllocFree(t *testing.T) {
	d := mkDecision(40)
	// Warm the pool.
	PutBuf(GetBuf(d.EncodedSize()))
	got := testing.AllocsPerRun(200, func() {
		buf, err := MarshalAppend(GetBuf(d.EncodedSize()), d)
		if err != nil {
			t.Fatal(err)
		}
		PutBuf(buf)
	})
	if got != 0 {
		t.Errorf("pooled marshal cycle allocates %.1f/op, want 0", got)
	}
}

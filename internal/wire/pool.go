package wire

import "sync"

// Buffer pooling for the wire hot path. Every broadcast round marshals
// O(n)-sized Request/Decision PDUs and the UDP sender frames each of them;
// recycling those buffers keeps the steady-state codec allocation-free.
//
// Ownership rule: a buffer obtained from GetBuf is exclusively the
// caller's until PutBuf; after PutBuf no reference to it (or to any slice
// of it) may survive. Unmarshal never aliases its input (decoded PDUs copy
// their variable-length fields), so a buffer may be returned to the pool
// the moment decoding finishes.

// maxPooledBuf caps what PutBuf retains; anything larger (a jumbo
// retransmit burst) is left for the GC rather than pinned in the pool.
const maxPooledBuf = 1 << 20

// bufPool holds *[]byte entries whose slices carry recycled backing
// arrays; holderPool recycles the pointer-sized holders themselves so
// neither GetBuf nor PutBuf allocates in steady state.
var (
	bufPool    sync.Pool
	holderPool sync.Pool
)

// GetBuf returns a zero-length buffer with capacity at least n, recycled
// when possible.
func GetBuf(n int) []byte {
	if p, _ := bufPool.Get().(*[]byte); p != nil {
		b := *p
		*p = nil
		holderPool.Put(p)
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]byte, 0, n)
}

// PutBuf recycles a buffer for a later GetBuf (provenance does not matter).
// The caller must not retain b or any slice sharing its backing array.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	p, _ := holderPool.Get().(*[]byte)
	if p == nil {
		p = new([]byte)
	}
	*p = b[:0:cap(b)]
	bufPool.Put(p)
}

package wire

import (
	"encoding/binary"
	"fmt"

	"urcgc/internal/mid"
)

// Frame envelope: the runtime prefix in front of every marshaled PDU on a
// datagram socket, identifying the sending member — and, since the sharded
// multi-group runtime, the group the frame belongs to.
//
// Two canonical forms share one address space:
//
//	group 0:  [src:4][body]              — byte-identical to the pre-group
//	                                       framing, so single-group nodes
//	                                       and multi-group nodes carrying
//	                                       only group 0 interoperate.
//	group>0:  [1<<31|group:4][src:4][body]
//
// A member identifier is a non-negative int32, so the first word's high bit
// cleanly discriminates the two forms: legacy receivers see a group-tagged
// frame as a negative source and drop it as bad-src — a by-design omission,
// not corruption.

// MaxGroupID bounds the group identifier carried in a long-form envelope:
// 31 bits minus the marker bit.
const MaxGroupID = 1<<31 - 1

// envGroupMarker flags the long (group-tagged) envelope form in the first
// 32-bit word.
const envGroupMarker = uint32(1) << 31

// ErrBadEnvelope is returned by ParseEnvelope for a frame too short for its
// form or using the non-canonical long form for group 0.
var ErrBadEnvelope = fmt.Errorf("wire: bad frame envelope")

// EnvelopeSize returns the envelope prefix length for a group: 4 bytes for
// group 0 (the wire-compatible short form), 8 for any other group.
func EnvelopeSize(group uint32) int {
	if group == 0 {
		return 4
	}
	return 8
}

// AppendEnvelope appends the canonical envelope for (group, src) to dst and
// returns the extended slice. Group 0 always takes the short form, so its
// frames stay byte-identical to the pre-group framing.
func AppendEnvelope(dst []byte, group uint32, src mid.ProcID) []byte {
	if group == 0 {
		return binary.BigEndian.AppendUint32(dst, uint32(src))
	}
	dst = binary.BigEndian.AppendUint32(dst, envGroupMarker|group)
	return binary.BigEndian.AppendUint32(dst, uint32(src))
}

// ParseEnvelope splits a received frame into its group, source member and
// PDU body. The body aliases pkt; callers decode it before reusing the
// buffer. Source validity (0 <= src < N) is the caller's check — the
// envelope does not know the group cardinality.
func ParseEnvelope(pkt []byte) (group uint32, src mid.ProcID, body []byte, err error) {
	if len(pkt) < 4 {
		return 0, 0, nil, ErrBadEnvelope
	}
	first := binary.BigEndian.Uint32(pkt)
	if first&envGroupMarker == 0 {
		return 0, mid.ProcID(int32(first)), pkt[4:], nil
	}
	group = first &^ envGroupMarker
	if group == 0 || len(pkt) < 8 {
		// Long-form group 0 is non-canonical: exactly one encoding exists
		// per (group, src), so frames compare byte-for-byte.
		return 0, 0, nil, ErrBadEnvelope
	}
	return group, mid.ProcID(int32(binary.BigEndian.Uint32(pkt[4:]))), pkt[8:], nil
}

package wire

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// mkBatch builds a DataBatch of n messages shaped like coalesced app
// traffic: consecutive seqs from one sender, a dep on every other message,
// and a small distinct payload.
func mkBatch(n int) *DataBatch {
	b := &DataBatch{Msgs: make([]causal.Message, n)}
	for i := range b.Msgs {
		b.Msgs[i] = causal.Message{
			ID:      mid.MID{Proc: 2, Seq: mid.Seq(10 + i)},
			Payload: []byte(fmt.Sprintf("m-%d", i)),
		}
		if i%2 == 1 {
			b.Msgs[i].Deps = mid.DepList{{Proc: 0, Seq: mid.Seq(i)}, {Proc: 1, Seq: 3}}
		}
	}
	return b
}

func depsEqual(a, b mid.DepList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDataBatchRoundTrip drives empty, single-message, and multi-message
// batches through Marshal/Unmarshal and checks canonical encoding plus
// EncodedSize accounting at each size.
func TestDataBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64} {
		in := mkBatch(n)
		buf, err := Marshal(in)
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		if len(buf) != in.EncodedSize() {
			t.Fatalf("n=%d: wire length %d != EncodedSize %d", n, len(buf), in.EncodedSize())
		}
		p, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		out, ok := p.(*DataBatch)
		if !ok {
			t.Fatalf("n=%d: decoded %T, want *DataBatch", n, p)
		}
		if len(out.Msgs) != n {
			t.Fatalf("n=%d: decoded %d messages", n, len(out.Msgs))
		}
		for i := range out.Msgs {
			got, want := &out.Msgs[i], &in.Msgs[i]
			if got.ID != want.ID || !depsEqual(got.Deps, want.Deps) || !bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("n=%d: msg %d decoded %+v, want %+v", n, i, got, want)
			}
		}
		re, err := Marshal(out)
		if err != nil {
			t.Fatalf("n=%d: re-marshal: %v", n, err)
		}
		if !bytes.Equal(re, buf) {
			t.Fatalf("n=%d: non-canonical round trip", n)
		}
	}
}

// TestDataBatchMaxFit round-trips a batch of exactly MaxBatch messages —
// the largest count the u16 prefix can carry.
func TestDataBatchMaxFit(t *testing.T) {
	in := &DataBatch{Msgs: make([]causal.Message, MaxBatch)}
	for i := range in.Msgs {
		in.Msgs[i].ID = mid.MID{Proc: 1, Seq: mid.Seq(i + 1)}
	}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatalf("marshal MaxBatch: %v", err)
	}
	p, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("unmarshal MaxBatch: %v", err)
	}
	out := p.(*DataBatch)
	if len(out.Msgs) != MaxBatch {
		t.Fatalf("decoded %d messages, want %d", len(out.Msgs), MaxBatch)
	}
	if out.Msgs[MaxBatch-1].ID != in.Msgs[MaxBatch-1].ID {
		t.Fatalf("last message decoded %v, want %v", out.Msgs[MaxBatch-1].ID, in.Msgs[MaxBatch-1].ID)
	}
}

// TestDataBatchTruncation feeds every strict prefix of a marshaled batch to
// the decoder: each must fail cleanly — truncation at every field boundary
// (and mid-field) is covered because every prefix length appears.
func TestDataBatchTruncation(t *testing.T) {
	buf, err := Marshal(mkBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf); i++ {
		if _, err := Unmarshal(buf[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(buf))
		}
	}
}

// TestDataBatchForgedCount hands the decoder a header claiming the maximum
// message count over an empty body: it must reject with ErrTruncated before
// sizing any allocation by the forged count.
func TestDataBatchForgedCount(t *testing.T) {
	forged := []byte{byte(KindDataBatch), 0xFF, 0xFF}
	if _, err := Unmarshal(forged); !errors.Is(err, ErrTruncated) {
		t.Fatalf("forged count decoded with err=%v, want ErrTruncated", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		Unmarshal(forged)
	})
	if allocs > 3 {
		t.Fatalf("forged-count rejection allocates %.1f/op; the claimed count is sizing allocations", allocs)
	}
}

// TestMarshalLimits pins the 16-bit length-prefix boundaries: exactly the
// maximum encodes and round-trips, one past it fails with ErrTooLarge
// instead of silently wrapping the length through uint16 (the bug this
// release fixes).
func TestMarshalLimits(t *testing.T) {
	atMax := &Data{Msg: causal.Message{
		ID:      mid.MID{Proc: 0, Seq: 1},
		Payload: make([]byte, MaxPayload),
	}}
	buf, err := Marshal(atMax)
	if err != nil {
		t.Fatalf("payload of MaxPayload bytes must marshal: %v", err)
	}
	p, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("payload of MaxPayload bytes must round-trip: %v", err)
	}
	if got := len(p.(*Data).Msg.Payload); got != MaxPayload {
		t.Fatalf("round-tripped payload of %d bytes, want %d", got, MaxPayload)
	}

	oversized := []struct {
		name string
		pdu  PDU
	}{
		{"payload", &Data{Msg: causal.Message{Payload: make([]byte, MaxPayload+1)}}},
		{"deps", &Data{Msg: causal.Message{Deps: make(mid.DepList, MaxDeps+1)}}},
		{"batch count", &DataBatch{Msgs: make([]causal.Message, MaxBatch+1)}},
		{"batch member payload", &DataBatch{Msgs: []causal.Message{
			{Payload: make([]byte, MaxPayload+1)},
		}}},
		{"retransmit count", &Retransmit{Msgs: func() []*causal.Message {
			ms := make([]*causal.Message, MaxBatch+1)
			for i := range ms {
				ms[i] = &causal.Message{}
			}
			return ms
		}()}},
		{"recover ranges", &Recover{Wants: make([]WantRange, MaxWants+1)}},
		{"request vectors", &Request{
			LastProcessed: mid.NewSeqVector(MaxVector + 1),
			Waiting:       mid.NewSeqVector(MaxVector + 1),
		}},
	}
	for _, tc := range oversized {
		if _, err := Marshal(tc.pdu); !errors.Is(err, ErrTooLarge) {
			t.Errorf("%s one past the limit: err=%v, want ErrTooLarge", tc.name, err)
		}
		if _, err := MarshalAppend(nil, tc.pdu); !errors.Is(err, ErrTooLarge) {
			t.Errorf("%s one past the limit via MarshalAppend: err=%v, want ErrTooLarge", tc.name, err)
		}
	}
}

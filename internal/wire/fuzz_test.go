package wire

import (
	"bytes"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// FuzzUnmarshal throws arbitrary bytes at the decoder: it must never panic,
// and anything it accepts must re-marshal to the same bytes (canonical
// encoding). Runs its seed corpus under plain `go test`; extend with
// `go test -fuzz=FuzzUnmarshal ./internal/wire`.
func FuzzUnmarshal(f *testing.F) {
	seed := []PDU{
		&Data{Msg: causal.Message{
			ID:      mid.MID{Proc: 3, Seq: 17},
			Deps:    mid.DepList{{Proc: 0, Seq: 4}},
			Payload: []byte("payload"),
		}},
		&Request{
			Sender: 2, Subrun: 7,
			LastProcessed: mid.SeqVector{1, 2, 3},
			Waiting:       mid.SeqVector{0, 5, 0},
		},
		mkDecision(5),
		&Recover{Requester: 4, Wants: []WantRange{{Proc: 0, From: 3, To: 9}}},
		&Retransmit{Responder: 1, Msgs: []*causal.Message{
			{ID: mid.MID{Proc: 0, Seq: 1}, Payload: []byte("a")},
		}},
		&DataBatch{Msgs: []causal.Message{
			{ID: mid.MID{Proc: 1, Seq: 5}, Deps: mid.DepList{{Proc: 2, Seq: 3}}, Payload: []byte("b0")},
			{ID: mid.MID{Proc: 1, Seq: 6}, Payload: []byte("b1")},
		}},
	}
	for _, p := range seed {
		buf, err := Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out, err := Marshal(p)
		if err != nil {
			t.Fatalf("accepted PDU failed to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical decode:\n in  %x\n out %x", data, out)
		}
		if p.EncodedSize() != len(data) {
			t.Fatalf("EncodedSize %d != wire length %d", p.EncodedSize(), len(data))
		}
		// MarshalAppend behind a non-empty prefix must reproduce the exact
		// same bytes and leave the prefix intact.
		prefix := []byte{0xC0, 0xFF, 0xEE}
		app, err := MarshalAppend(append([]byte(nil), prefix...), p)
		if err != nil {
			t.Fatalf("MarshalAppend failed where Marshal succeeded: %v", err)
		}
		if !bytes.Equal(app[:len(prefix)], prefix) || !bytes.Equal(app[len(prefix):], data) {
			t.Fatalf("MarshalAppend diverges from Marshal:\n got %x\n want %x%x", app, prefix, data)
		}
		// Ownership: the decoded PDU must not alias the input. Scribble the
		// input (as pooled reuse would) and re-marshal — bytes must hold.
		for i := range data {
			data[i] ^= 0xFF
		}
		out2, err := Marshal(p)
		if err != nil {
			t.Fatalf("re-marshal after input scribble: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("decoded PDU aliases pooled input memory:\n before %x\n after  %x", out, out2)
		}
	})
}

// Package trace records protocol events as structured logs and verifies
// the URCGC correctness clauses offline, from the logs alone.
//
// The verifier is deliberately independent of the protocol implementation:
// it reconstructs the causal relation from the messages' own dependency
// labels and checks Definition 3.2 against what each process actually did.
// Tests attach a Recorder to a simulated cluster and then run Verify; a bug
// anywhere in the pipeline (protocol, network, harness) surfaces as a
// violated clause.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

// Kind labels an event.
type Kind uint8

// Event kinds.
const (
	EvGenerate  Kind = iota + 1 // a user message entered the system at Proc
	EvProcess                   // Proc processed Msg
	EvDiscard                   // Proc destroyed Msg by agreement
	EvCrash                     // Proc fail-stopped (injected)
	EvLeave                     // Proc self-excluded
	EvBroadcast                 // Proc's own Msg left the outbox onto the wire
	EvWait                      // Msg parked in Proc's waiting list; Deps = unmet dependencies
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case EvGenerate:
		return "generate"
	case EvProcess:
		return "process"
	case EvDiscard:
		return "discard"
	case EvCrash:
		return "crash"
	case EvLeave:
		return "leave"
	case EvBroadcast:
		return "broadcast"
	case EvWait:
		return "wait"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded protocol event.
type Event struct {
	At   sim.Time
	Kind Kind
	Proc mid.ProcID
	Msg  mid.MID     // EvGenerate/EvProcess/EvDiscard/EvBroadcast/EvWait
	Deps mid.DepList // EvGenerate: the message's labels; EvWait: the unmet deps
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case EvGenerate:
		return fmt.Sprintf("%6.2f %-8s p%d %v deps=%v", e.At.RTD(), e.Kind, e.Proc, e.Msg, e.Deps)
	case EvProcess, EvDiscard, EvBroadcast:
		return fmt.Sprintf("%6.2f %-8s p%d %v", e.At.RTD(), e.Kind, e.Proc, e.Msg)
	case EvWait:
		return fmt.Sprintf("%6.2f %-8s p%d %v missing=%v", e.At.RTD(), e.Kind, e.Proc, e.Msg, e.Deps)
	default:
		return fmt.Sprintf("%6.2f %-8s p%d", e.At.RTD(), e.Kind, e.Proc)
	}
}

// Recorder accumulates events. It is not safe for concurrent use; the
// simulator is single-goroutine.
type Recorder struct {
	N      int
	Events []Event
}

// NewRecorder returns a recorder for a group of n processes.
func NewRecorder(n int) *Recorder { return &Recorder{N: n} }

// Add appends an event.
func (r *Recorder) Add(e Event) { r.Events = append(r.Events, e) }

// Generate records a user message entering the system.
func (r *Recorder) Generate(at sim.Time, p mid.ProcID, m mid.MID, deps mid.DepList) {
	r.Add(Event{At: at, Kind: EvGenerate, Proc: p, Msg: m, Deps: deps.Clone()})
}

// Process records a processing event.
func (r *Recorder) Process(at sim.Time, p mid.ProcID, m mid.MID) {
	r.Add(Event{At: at, Kind: EvProcess, Proc: p, Msg: m})
}

// Discard records an agreed destruction.
func (r *Recorder) Discard(at sim.Time, p mid.ProcID, m mid.MID) {
	r.Add(Event{At: at, Kind: EvDiscard, Proc: p, Msg: m})
}

// Broadcast records an own message leaving the outbox onto the wire.
func (r *Recorder) Broadcast(at sim.Time, p mid.ProcID, m mid.MID) {
	r.Add(Event{At: at, Kind: EvBroadcast, Proc: p, Msg: m})
}

// Wait records a message parking in p's waiting list; missing is cloned
// (callers may hand a scratch-backed list, per the core OnWait contract).
func (r *Recorder) Wait(at sim.Time, p mid.ProcID, m mid.MID, missing mid.DepList) {
	r.Add(Event{At: at, Kind: EvWait, Proc: p, Msg: m, Deps: missing.Clone()})
}

// Crash records an injected fail-stop.
func (r *Recorder) Crash(at sim.Time, p mid.ProcID) {
	r.Add(Event{At: at, Kind: EvCrash, Proc: p})
}

// Leave records a self-exclusion.
func (r *Recorder) Leave(at sim.Time, p mid.ProcID) {
	r.Add(Event{At: at, Kind: EvLeave, Proc: p})
}

// Dump renders the whole log.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Violation is one broken clause.
type Violation struct {
	Clause string
	Detail string
}

func (v Violation) String() string { return v.Clause + ": " + v.Detail }

// Verify checks the URCGC clauses against the log:
//
//   - per-process sequence contiguity (each log processes (q,1),(q,2),...);
//   - Uniform Ordering: no process processes a message before one of its
//     labelled dependencies (reconstructed from the EvGenerate labels and
//     the implicit own-sequence predecessor);
//   - Uniform Atomicity among survivors: processes that neither crashed
//     nor left end with identical processed sets;
//   - discard consistency: a message processed by any survivor is
//     discarded at no survivor;
//   - no processing after crash or leave.
//
// It returns every violation found (empty = the log is URCGC-consistent).
func (r *Recorder) Verify() []Violation {
	var out []Violation
	deps := map[mid.MID]mid.DepList{}
	halted := map[mid.ProcID]sim.Time{}
	for _, e := range r.Events {
		if e.Kind == EvGenerate {
			deps[e.Msg] = e.Deps
		}
		if e.Kind == EvCrash || e.Kind == EvLeave {
			if _, dup := halted[e.Proc]; !dup {
				halted[e.Proc] = e.At
			}
		}
	}

	processed := make([]map[mid.MID]bool, r.N)
	discarded := make([]map[mid.MID]bool, r.N)
	last := make([]mid.SeqVector, r.N)
	for i := range processed {
		processed[i] = map[mid.MID]bool{}
		discarded[i] = map[mid.MID]bool{}
		last[i] = mid.NewSeqVector(r.N)
	}

	for _, e := range r.Events {
		switch e.Kind {
		case EvProcess:
			if at, dead := halted[e.Proc]; dead && e.At > at {
				out = append(out, Violation{"liveness-bound", fmt.Sprintf("p%d processed %v after halting at %v", e.Proc, e.Msg, at)})
			}
			if int(e.Proc) >= r.N {
				out = append(out, Violation{"model", fmt.Sprintf("process %d outside group", e.Proc)})
				continue
			}
			if e.Msg.Seq != last[e.Proc][e.Msg.Proc]+1 {
				out = append(out, Violation{"ordering", fmt.Sprintf("p%d processed %v after (q,%d): sequence gap", e.Proc, e.Msg, last[e.Proc][e.Msg.Proc])})
			}
			last[e.Proc][e.Msg.Proc] = e.Msg.Seq
			for _, d := range effectiveDeps(e.Msg, deps) {
				if !processed[e.Proc][d] {
					out = append(out, Violation{"ordering", fmt.Sprintf("p%d processed %v before its dependency %v", e.Proc, e.Msg, d)})
				}
			}
			processed[e.Proc][e.Msg] = true
		case EvDiscard:
			discarded[e.Proc][e.Msg] = true
			if processed[e.Proc][e.Msg] {
				out = append(out, Violation{"atomicity", fmt.Sprintf("p%d discarded %v it had processed", e.Proc, e.Msg)})
			}
		}
	}

	// Survivors: never halted.
	var survivors []mid.ProcID
	for i := 0; i < r.N; i++ {
		if _, dead := halted[mid.ProcID(i)]; !dead {
			survivors = append(survivors, mid.ProcID(i))
		}
	}
	if len(survivors) > 1 {
		ref := survivors[0]
		refSet := keys(processed[ref])
		for _, p := range survivors[1:] {
			got := keys(processed[p])
			if !sameSet(refSet, got) {
				out = append(out, Violation{"atomicity", fmt.Sprintf("survivors p%d and p%d processed different sets (%d vs %d messages)", ref, p, len(refSet), len(got))})
			}
		}
	}
	for _, p := range survivors {
		for m := range discarded[p] {
			for _, q := range survivors {
				if processed[q][m] {
					out = append(out, Violation{"atomicity", fmt.Sprintf("%v discarded at p%d but processed at p%d", m, p, q)})
				}
			}
		}
	}
	return out
}

// effectiveDeps mirrors causal.Message.EffectiveDeps using the recorded
// labels: the explicit deps plus the implicit own-sequence predecessor.
func effectiveDeps(m mid.MID, labels map[mid.MID]mid.DepList) mid.DepList {
	d := labels[m].Clone()
	if prev := m.Prev(); !prev.IsZero() && !d.Covers(prev) {
		d = append(d, prev)
	}
	return d
}

func keys(set map[mid.MID]bool) []mid.MID {
	out := make([]mid.MID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func sameSet(a, b []mid.MID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package trace_test

import (
	"fmt"

	"urcgc/internal/mid"
	"urcgc/internal/trace"
)

// The offline verifier reconstructs the causal relation from the recorded
// labels and reports any URCGC clause a log violates.
func ExampleRecorder_Verify() {
	r := trace.NewRecorder(2)
	a := mid.MID{Proc: 0, Seq: 1}
	b := mid.MID{Proc: 1, Seq: 1}
	r.Generate(0, 0, a, nil)
	r.Generate(0, 1, b, mid.DepList{a}) // b depends on a
	// Process 0 breaks causal order: b before a.
	r.Process(10, 0, b)
	r.Process(20, 0, a)
	r.Process(10, 1, a)
	r.Process(20, 1, b)
	for _, v := range r.Verify() {
		fmt.Println(v)
	}
	// Output: ordering: p0 processed p1#1 before its dependency p0#1
}

package trace

import (
	"strings"
	"testing"

	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

func m(p mid.ProcID, s mid.Seq) mid.MID { return mid.MID{Proc: p, Seq: s} }

func TestCleanLogVerifies(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), nil)
	r.Process(0, 0, m(0, 1))
	r.Process(100, 1, m(0, 1))
	r.Generate(200, 1, m(1, 1), mid.DepList{m(0, 1)})
	r.Process(200, 1, m(1, 1))
	r.Process(300, 0, m(1, 1))
	if v := r.Verify(); len(v) != 0 {
		t.Errorf("clean log produced violations: %v", v)
	}
}

func TestDetectsOrderingViolation(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), nil)
	r.Generate(0, 1, m(1, 1), mid.DepList{m(0, 1)})
	// p0 processes the dependent message before its dependency.
	r.Process(10, 0, m(1, 1))
	r.Process(20, 0, m(0, 1))
	v := r.Verify()
	if !hasClause(v, "ordering") {
		t.Errorf("ordering violation not detected: %v", v)
	}
}

func TestDetectsSequenceGap(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), nil)
	r.Generate(0, 0, m(0, 2), nil)
	r.Process(10, 1, m(0, 2)) // skipped (0,1)
	v := r.Verify()
	if !hasClause(v, "ordering") {
		t.Errorf("gap not detected: %v", v)
	}
}

func TestDetectsSurvivorDivergence(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), nil)
	r.Process(0, 0, m(0, 1))
	// p1 never processes it and nobody halted.
	v := r.Verify()
	if !hasClause(v, "atomicity") {
		t.Errorf("divergence not detected: %v", v)
	}
}

func TestCrashedProcessExemptFromAtomicity(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), nil)
	r.Process(0, 0, m(0, 1))
	r.Crash(5, 1) // p1 crashed; its missing processing is fine
	if v := r.Verify(); len(v) != 0 {
		t.Errorf("crashed process should be exempt: %v", v)
	}
}

func TestDetectsProcessingAfterHalt(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), nil)
	r.Crash(5, 0)
	r.Process(10, 0, m(0, 1))
	v := r.Verify()
	if !hasClause(v, "liveness-bound") {
		t.Errorf("post-crash processing not detected: %v", v)
	}
}

func TestDetectsDiscardProcessedConflict(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), nil)
	r.Process(0, 0, m(0, 1))
	r.Process(1, 1, m(0, 1))
	r.Discard(5, 1, m(0, 1)) // p1 discards what it processed
	v := r.Verify()
	if !hasClause(v, "atomicity") {
		t.Errorf("discard/process conflict not detected: %v", v)
	}
}

func TestDetectsDiscardAtOneProcessedAtOther(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), nil)
	r.Generate(0, 0, m(0, 2), nil)
	// Keep the processed SETS equal in count but conflicting on discard:
	// p0 processes (0,1); p1 processes (0,1) too, then p1 discards (0,2)
	// while p0 processes (0,2).
	r.Process(0, 0, m(0, 1))
	r.Process(0, 1, m(0, 1))
	r.Process(1, 0, m(0, 2))
	r.Discard(2, 1, m(0, 2))
	v := r.Verify()
	if !hasClause(v, "atomicity") {
		t.Errorf("cross discard conflict not detected: %v", v)
	}
}

func TestLeaveCountsAsHalt(t *testing.T) {
	r := NewRecorder(3)
	r.Generate(0, 0, m(0, 1), nil)
	r.Process(0, 0, m(0, 1))
	r.Process(1, 1, m(0, 1))
	r.Leave(2, 2)
	if v := r.Verify(); len(v) != 0 {
		t.Errorf("left process should be exempt: %v", v)
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := NewRecorder(2)
	r.Generate(0, 0, m(0, 1), mid.DepList{m(1, 3)})
	r.Process(sim.TicksPerRTD, 1, m(0, 1))
	r.Crash(2*sim.TicksPerRTD, 0)
	d := r.Dump()
	for _, want := range []string{"generate", "process", "crash", "p0#1"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	if EvDiscard.String() != "discard" || Kind(99).String() == "" {
		t.Error("kind strings")
	}
}

func hasClause(vs []Violation, clause string) bool {
	for _, v := range vs {
		if v.Clause == clause {
			return true
		}
	}
	return false
}

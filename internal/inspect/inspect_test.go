package inspect

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"urcgc/internal/health"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

// fakeNode serves canned nodehttp responses for one member.
type fakeNode struct {
	mu         sync.Mutex
	status     rt.Status
	health     *health.Status
	metrics    string
	timeseries *obs.FlightSnapshot
	srv        *httptest.Server
}

func newFakeNode(t *testing.T, st rt.Status) *fakeNode {
	t.Helper()
	f := &fakeNode{status: st}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		switch r.URL.Path {
		case "/status":
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(f.status)
		case "/metrics":
			fmt.Fprint(w, f.metrics)
		case "/healthz":
			if f.health == nil {
				http.NotFound(w, r)
				return
			}
			if !f.health.Healthy {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = json.NewEncoder(w).Encode(f.health)
		case "/timeseries":
			if f.timeseries == nil {
				http.NotFound(w, r)
				return
			}
			_ = json.NewEncoder(w).Encode(f.timeseries)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeNode) set(mut func(*fakeNode)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mut(f)
}

// runningStatus builds a healthy member's status.
func runningStatus(id, n int, stable int64) rt.Status {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	st := rt.Status{
		ID: mid.ProcID(id), N: n, Running: true,
		Subrun: 40, Coordinator: mid.ProcID(id % n),
		Processed: make(mid.SeqVector, n),
		StableTo:  make(mid.SeqVector, n),
		Alive:     alive,
	}
	for i := range st.StableTo {
		st.StableTo[i] = mid.Seq(stable / int64(n))
		st.Processed[i] = mid.Seq(stable/int64(n) + 1)
	}
	return st
}

func addrs(fakes []*fakeNode) []string {
	out := make([]string, len(fakes))
	for i, f := range fakes {
		out[i] = f.srv.URL
	}
	return out
}

func collect(t *testing.T, cfg Config) Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return Collect(ctx, cfg)
}

func problemKinds(r Report) []string {
	out := make([]string, 0, len(r.Problems))
	for _, p := range r.Problems {
		out = append(out, p.Kind)
	}
	return out
}

func hasProblem(r Report, kind string) bool {
	for _, p := range r.Problems {
		if p.Kind == kind {
			return true
		}
	}
	return false
}

func TestHealthyCluster(t *testing.T) {
	fakes := []*fakeNode{
		newFakeNode(t, runningStatus(0, 3, 12)),
		newFakeNode(t, runningStatus(1, 3, 12)),
		newFakeNode(t, runningStatus(2, 3, 9)),
	}
	r := collect(t, Config{Nodes: addrs(fakes)})
	if !r.Healthy || !r.ViewsAgree {
		t.Fatalf("healthy cluster flagged: %+v", r.Problems)
	}
	if r.MinFrontier != 9 || r.MaxFrontier != 12 {
		t.Fatalf("frontier bounds = [%d..%d], want [9..12]", r.MinFrontier, r.MaxFrontier)
	}
	if len(r.Nodes) != 3 || !r.Nodes[2].Reachable || r.Nodes[2].Status.ID != 2 {
		t.Fatalf("probes: %+v", r.Nodes)
	}
}

func TestUnreachableNode(t *testing.T) {
	f0 := newFakeNode(t, runningStatus(0, 2, 4))
	f1 := newFakeNode(t, runningStatus(1, 2, 4))
	dead := f1.srv.URL
	f1.srv.Close()
	r := collect(t, Config{Nodes: []string{f0.srv.URL, dead}, Timeout: time.Second})
	if r.Healthy || !hasProblem(r, "unreachable") {
		t.Fatalf("dead node not flagged: %v", problemKinds(r))
	}
	if r.Nodes[1].Reachable || r.Nodes[1].Err == "" {
		t.Fatalf("probe of dead node: %+v", r.Nodes[1])
	}
}

func TestLeftNode(t *testing.T) {
	st := runningStatus(1, 3, 6)
	st.Running = false
	fakes := []*fakeNode{
		newFakeNode(t, runningStatus(0, 3, 6)),
		newFakeNode(t, st),
		newFakeNode(t, runningStatus(2, 3, 6)),
	}
	r := collect(t, Config{Nodes: addrs(fakes)})
	if r.Healthy || !hasProblem(r, "left") {
		t.Fatalf("departed member not flagged: %v", problemKinds(r))
	}
}

func TestViewDivergence(t *testing.T) {
	st2 := runningStatus(2, 3, 6)
	st2.Alive = []bool{true, false, true} // believes member 1 crashed
	fakes := []*fakeNode{
		newFakeNode(t, runningStatus(0, 3, 6)),
		newFakeNode(t, runningStatus(1, 3, 6)),
		newFakeNode(t, st2),
	}
	r := collect(t, Config{Nodes: addrs(fakes)})
	if r.Healthy || r.ViewsAgree || !hasProblem(r, "view-divergence") {
		t.Fatalf("divergent views not flagged: %v", problemKinds(r))
	}
	for _, p := range r.Problems {
		if p.Kind == "view-divergence" {
			if !strings.Contains(p.Detail, "101") || !strings.Contains(p.Detail, "111") {
				t.Fatalf("divergence detail lacks the masks: %s", p.Detail)
			}
		}
	}
}

func TestTokenStall(t *testing.T) {
	frozen := newFakeNode(t, runningStatus(0, 2, 6))
	frozen.set(func(f *fakeNode) {
		f.timeseries = &obs.FlightSnapshot{
			Samples: 8,
			Series: map[string][]int64{
				obs.Labeled("core_decision_subrun", "node", "0"): {7, 7, 7, 7, 7, 7, 7, 7},
			},
		}
	})
	moving := newFakeNode(t, runningStatus(1, 2, 6))
	moving.set(func(f *fakeNode) {
		f.timeseries = &obs.FlightSnapshot{
			Samples: 8,
			Series: map[string][]int64{
				obs.Labeled("core_decision_subrun", "node", "1"): {3, 4, 5, 6, 7, 8, 9, 10},
			},
		}
	})
	r := collect(t, Config{Nodes: addrs([]*fakeNode{frozen, moving}), StallWindow: 6})
	if r.Healthy || !hasProblem(r, "token-stall") {
		t.Fatalf("frozen token not flagged: %v", problemKinds(r))
	}
	stalls := 0
	for _, p := range r.Problems {
		if p.Kind == "token-stall" {
			stalls++
			if len(p.Nodes) != 1 || p.Nodes[0] != frozen.srv.URL {
				t.Fatalf("stall names %v, want only the frozen node", p.Nodes)
			}
		}
	}
	if stalls != 1 {
		t.Fatalf("stall problems = %d, want 1", stalls)
	}
}

func TestTokenStallNeedsFullWindow(t *testing.T) {
	// Too few samples must NOT fire: a freshly booted cluster is warming up.
	f := newFakeNode(t, runningStatus(0, 1, 0))
	f.set(func(fn *fakeNode) {
		fn.timeseries = &obs.FlightSnapshot{
			Samples: 3,
			Series: map[string][]int64{
				obs.Labeled("core_decision_subrun", "node", "0"): {7, 7, 7},
			},
		}
	})
	r := collect(t, Config{Nodes: addrs([]*fakeNode{f}), StallWindow: 6})
	if hasProblem(r, "token-stall") {
		t.Fatalf("warming-up node flagged as stalled: %v", problemKinds(r))
	}
}

func TestFrontierSkewNamesLaggards(t *testing.T) {
	fakes := []*fakeNode{
		newFakeNode(t, runningStatus(0, 3, 120)),
		newFakeNode(t, runningStatus(1, 3, 117)),
		newFakeNode(t, runningStatus(2, 3, 3)), // partitioned away
	}
	r := collect(t, Config{Nodes: addrs(fakes), FrontierSkew: 32})
	if r.Healthy || !hasProblem(r, "frontier-skew") {
		t.Fatalf("skew not flagged: %v", problemKinds(r))
	}
	for _, p := range r.Problems {
		if p.Kind == "frontier-skew" {
			if len(p.Nodes) != 1 || !strings.Contains(p.Nodes[0], fakes[2].srv.URL) {
				t.Fatalf("laggards = %v, want only node 2", p.Nodes)
			}
			if !strings.Contains(p.Detail, "member 2") {
				t.Fatalf("detail does not name the lagging member: %s", p.Detail)
			}
		}
	}
}

func TestProgressSkewNamesPartitionedNode(t *testing.T) {
	// An active partition from outside: stability frozen everywhere (equal
	// stable sums) while only the cut-off member stops processing.
	cut := runningStatus(2, 3, 30)
	cut.Processed = mid.SeqVector{10, 1, 1}
	majority := func(id int) rt.Status {
		st := runningStatus(id, 3, 30)
		st.Processed = mid.SeqVector{60, 60, 1}
		return st
	}
	fakes := []*fakeNode{
		newFakeNode(t, majority(0)),
		newFakeNode(t, majority(1)),
		newFakeNode(t, cut),
	}
	r := collect(t, Config{Nodes: addrs(fakes), FrontierSkew: 32})
	if r.Healthy || !hasProblem(r, "progress-skew") {
		t.Fatalf("processing laggard not flagged: %v", problemKinds(r))
	}
	if hasProblem(r, "frontier-skew") {
		t.Fatalf("equal stable sums flagged as frontier skew: %v", problemKinds(r))
	}
	for _, p := range r.Problems {
		if p.Kind == "progress-skew" {
			if len(p.Nodes) != 1 || !strings.Contains(p.Nodes[0], fakes[2].srv.URL) {
				t.Fatalf("laggards = %v, want only the cut-off node", p.Nodes)
			}
		}
	}
}

func TestMetricsOverrideStatusSums(t *testing.T) {
	f := newFakeNode(t, runningStatus(0, 1, 6))
	f.set(func(fn *fakeNode) {
		fn.metrics = "# TYPE core_stable_sum gauge\n" +
			"core_stable_sum{node=\"0\"} 42\n" +
			"# TYPE rt_processed_total counter\n" +
			"rt_processed_total{node=\"0\"} 43\n"
	})
	r := collect(t, Config{Nodes: addrs([]*fakeNode{f})})
	if r.Nodes[0].StableSum != 42 || r.Nodes[0].ProcessedSum != 43 {
		t.Fatalf("metrics did not override sums: %+v", r.Nodes[0])
	}
}

func TestNodeUnhealthyCarriesReasons(t *testing.T) {
	f := newFakeNode(t, runningStatus(0, 1, 6))
	f.set(func(fn *fakeNode) {
		fn.health = &health.Status{Node: "0", Healthy: false, Reasons: []health.Reason{
			{Rule: "token-stall", Detail: "frozen"},
		}}
	})
	r := collect(t, Config{Nodes: addrs([]*fakeNode{f})})
	if r.Healthy || !hasProblem(r, "node-unhealthy") {
		t.Fatalf("503 healthz not surfaced: %v", problemKinds(r))
	}
	for _, p := range r.Problems {
		if p.Kind == "node-unhealthy" && !strings.Contains(p.Detail, "token-stall") {
			t.Fatalf("reasons not carried through: %s", p.Detail)
		}
	}
}

// TestOneShotGraceClearsTransient pins the grace re-probe: divergence that
// heals between the two probes is not reported, divergence that persists is.
func TestOneShotGraceClearsTransient(t *testing.T) {
	st1 := runningStatus(1, 2, 6)
	st1.Alive = []bool{false, true} // transiently disagrees
	f0 := newFakeNode(t, runningStatus(0, 2, 6))
	f1 := newFakeNode(t, st1)

	go func() {
		time.Sleep(50 * time.Millisecond)
		f1.set(func(fn *fakeNode) { fn.status = runningStatus(1, 2, 6) })
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cfg := Config{Nodes: addrs([]*fakeNode{f0, f1}), Grace: 300 * time.Millisecond}
	if r := OneShot(ctx, cfg); !r.Healthy {
		t.Fatalf("healed divergence still reported: %v", problemKinds(r))
	}

	// Persistent divergence survives the grace re-probe.
	f1.set(func(fn *fakeNode) {
		st := runningStatus(1, 2, 6)
		st.Alive = []bool{false, true}
		fn.status = st
	})
	cfg.Grace = 50 * time.Millisecond
	if r := OneShot(ctx, cfg); r.Healthy || !hasProblem(r, "view-divergence") {
		t.Fatalf("persistent divergence cleared: %v", problemKinds(r))
	}
}

func TestWatchEmitsSummaries(t *testing.T) {
	f := newFakeNode(t, runningStatus(0, 1, 6))
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	var buf strings.Builder
	r := Watch(ctx, Config{Nodes: addrs([]*fakeNode{f})}, 50*time.Millisecond, &buf)
	if !r.Healthy {
		t.Fatalf("watch final report unhealthy: %v", problemKinds(r))
	}
	lines := strings.Count(buf.String(), "\n")
	if lines < 2 || !strings.Contains(buf.String(), "healthy nodes=1/1") {
		t.Fatalf("watch output (%d lines): %q", lines, buf.String())
	}
}

func TestMetricValue(t *testing.T) {
	body := []byte("# TYPE x counter\nx{node=\"0\"} 7\nx{node=\"10\"} 9\ny 3\n")
	if v, ok := metricValue(body, `x{node="0"}`); !ok || v != 7 {
		t.Errorf(`x{node="0"} = %d,%v`, v, ok)
	}
	if v, ok := metricValue(body, `x{node="1"}`); ok {
		t.Errorf(`x{node="1"} matched a prefix: %d`, v)
	}
	if v, ok := metricValue(body, `y`); !ok || v != 3 {
		t.Errorf("y = %d,%v", v, ok)
	}
	if _, ok := metricValue(body, `absent`); ok {
		t.Error("absent series matched")
	}
}

func TestSummaryLine(t *testing.T) {
	r := Report{Healthy: true, ViewsAgree: true,
		Nodes:       []NodeProbe{{Reachable: true}, {Reachable: true}},
		MinFrontier: 3, MaxFrontier: 9}
	if got := Summary(r); got != "healthy nodes=2/2 views_agree=true frontier=[3..9]" {
		t.Fatalf("summary = %q", got)
	}
	r.Healthy = false
	r.Problems = []Problem{{Kind: "unreachable"}, {Kind: "frontier-skew"}, {Kind: "unreachable"}}
	if got := Summary(r); !strings.Contains(got, "UNHEALTHY [unreachable, frontier-skew]") {
		t.Fatalf("unhealthy summary = %q", got)
	}
}

// TestJoiningMemberIsInformational pins the rejoin grace: a member that is
// state-transferring back into the group trips none of the divergence
// rules its join legitimately causes — the stale view mask, the frozen
// decision subrun, the lagging frontier — and is surfaced only as an
// informational "joining" problem that leaves the verdict healthy.
func TestJoiningMemberIsInformational(t *testing.T) {
	// Survivors still exclude member 2; the joiner reports a full view
	// from its sponsor's snapshot, a frontier far behind, and no fresh
	// decisions yet.
	survivor := func(id int) rt.Status {
		st := runningStatus(id, 3, 120)
		st.Alive = []bool{true, true, false}
		return st
	}
	joiner := runningStatus(2, 3, 3)
	joiner.Joining = true
	fakes := []*fakeNode{
		newFakeNode(t, survivor(0)),
		newFakeNode(t, survivor(1)),
		newFakeNode(t, joiner),
	}
	fakes[2].set(func(f *fakeNode) {
		f.timeseries = &obs.FlightSnapshot{
			Samples: 8,
			Series: map[string][]int64{
				obs.Labeled("core_decision_subrun", "node", "2"): {7, 7, 7, 7, 7, 7, 7, 7},
			},
		}
	})
	r := collect(t, Config{Nodes: addrs(fakes), FrontierSkew: 32, StallWindow: 6})
	if !r.Healthy {
		t.Fatalf("joining member flipped the verdict: %v", problemKinds(r))
	}
	if !r.ViewsAgree {
		t.Fatal("joiner's stale mask counted as view divergence")
	}
	if !hasProblem(r, "joining") {
		t.Fatalf("join not surfaced: %v", problemKinds(r))
	}
	for _, p := range r.Problems {
		if p.Kind != "joining" {
			t.Fatalf("rule fired on join evidence: %+v", p)
		}
		if !p.Informational || !strings.Contains(p.Detail, "member 2") {
			t.Fatalf("joining problem malformed: %+v", p)
		}
	}
	if s := Summary(r); !strings.Contains(s, "healthy [joining]") {
		t.Fatalf("summary hides the join: %q", s)
	}

	// One-shot with a grace window: the informational problem must not
	// cost the exit-code verdict a re-probe round either.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	one := OneShot(ctx, Config{Nodes: addrs(fakes), FrontierSkew: 32, StallWindow: 6, Grace: 200 * time.Millisecond})
	if !one.Healthy || !hasProblem(one, "joining") {
		t.Fatalf("one-shot verdict with joiner: healthy=%v problems=%v", one.Healthy, problemKinds(one))
	}
}

// TestPerGroupJoiningIsInformational is the multi-group variant: one
// hosted group of one member mid-join is reported against that group,
// informationally, while the rest of the cluster stays clean.
func TestPerGroupJoiningIsInformational(t *testing.T) {
	mkStatus := func(id int, g1 rt.GroupStatus) rt.Status {
		st := runningStatus(id, 3, 12)
		st.Groups = []rt.GroupStatus{groupSummary(0, 3, 200, nil), g1}
		return st
	}
	rejoining := groupSummary(1, 3, 5, nil)
	rejoining.Joining = true
	fakes := []*fakeNode{
		newFakeNode(t, mkStatus(0, groupSummary(1, 3, 200, []bool{true, true, false}))),
		newFakeNode(t, mkStatus(1, groupSummary(1, 3, 200, []bool{true, true, false}))),
		newFakeNode(t, mkStatus(2, rejoining)),
	}
	r := collect(t, Config{Nodes: addrs(fakes)})
	if !r.Healthy || !r.ViewsAgree {
		t.Fatalf("per-group join flagged: %v", problemKinds(r))
	}
	if !hasProblem(r, "joining") {
		t.Fatalf("per-group join not surfaced: %v", problemKinds(r))
	}
	for _, p := range r.Problems {
		if p.Kind != "joining" || !p.Informational {
			t.Fatalf("unexpected problem: %+v", p)
		}
		if p.Group == nil || *p.Group != 1 {
			t.Fatalf("joining problem not scoped to group 1: %+v", p)
		}
	}
}

// groupSummary builds one hosted group's summary for a multi-group fake.
func groupSummary(group uint32, n int, processed int64, alive []bool) rt.GroupStatus {
	if alive == nil {
		alive = make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
	}
	return rt.GroupStatus{
		Group: group, Running: true, Subrun: 40,
		Alive:        alive,
		ProcessedSum: processed,
		StableSum:    processed,
	}
}

// TestPerGroupProblems pins satellite behaviour: on multi-group members a
// divergence confined to one group is reported against that group — with
// the group id in the Problem JSON — while the healthy group and the
// whole-node rules stay quiet.
func TestPerGroupProblems(t *testing.T) {
	mkStatus := func(id int, g1Processed int64, g1Alive []bool) rt.Status {
		st := runningStatus(id, 3, 12)
		st.Groups = []rt.GroupStatus{
			groupSummary(0, 3, 200, nil),
			groupSummary(1, 3, g1Processed, g1Alive),
		}
		return st
	}
	fakes := []*fakeNode{
		newFakeNode(t, mkStatus(0, 200, nil)),
		newFakeNode(t, mkStatus(1, 200, nil)),
		// Member 2: group 1 is cut off — it stopped processing and its view
		// dropped member 0 — while its group 0 stays in step.
		newFakeNode(t, mkStatus(2, 10, []bool{false, true, true})),
	}
	r := collect(t, Config{Nodes: addrs(fakes)})
	if r.Healthy {
		t.Fatal("per-group divergence went undetected")
	}
	var sawView, sawSkew bool
	for _, p := range r.Problems {
		if p.Group == nil {
			t.Fatalf("whole-node problem fired on a per-group fault: %+v", p)
		}
		if *p.Group != 1 {
			t.Fatalf("problem against healthy group %d: %+v", *p.Group, p)
		}
		if !strings.Contains(p.Detail, "group 1") {
			t.Fatalf("detail does not name the group: %q", p.Detail)
		}
		switch p.Kind {
		case "view-divergence":
			sawView = true
		case "progress-skew":
			sawSkew = true
		}
	}
	if !sawView || !sawSkew {
		t.Fatalf("want per-group view-divergence and progress-skew, got %v", problemKinds(r))
	}
	if r.ViewsAgree {
		t.Fatal("per-group view divergence must clear ViewsAgree")
	}

	// The Problem JSON carries the group field.
	raw, _ := json.Marshal(r.Problems[0])
	if !strings.Contains(string(raw), `"group":1`) {
		t.Fatalf("problem JSON lacks group: %s", raw)
	}

	// All groups in step: no problems.
	healthy := collect(t, Config{Nodes: addrs([]*fakeNode{
		newFakeNode(t, mkStatus(0, 200, nil)),
		newFakeNode(t, mkStatus(1, 200, nil)),
		newFakeNode(t, mkStatus(2, 200, nil)),
	})})
	if !healthy.Healthy {
		t.Fatalf("healthy multi-group cluster flagged: %v", problemKinds(healthy))
	}
}

// Package inspect reconstructs the cluster-wide protocol picture from the
// per-node observability endpoints (/status, /metrics, /timeseries,
// /healthz — the nodehttp surface). One probe per node yields a Report:
// the global view agreement, the token position each member believes, the
// min/max stability frontier across the group, and per-sender history
// occupancy. On top of the raw picture it flags divergence:
//
//   - unreachable:      a node did not answer its /status probe.
//   - left:             a node answered but no longer runs the protocol
//     (it left the group — suicide, recovery exhaustion
//     or coordinator silence).
//   - view-divergence:  two members disagree about who is alive. Benign
//     while a crash propagates, so one-shot probes give
//     it a grace re-probe before declaring it real.
//   - token-stall:      a member's freshest decision subrun has not moved
//     for a full sample window of its flight recording —
//     the rotating token is no longer reaching it.
//   - frontier-skew:    the stability frontiers (sum of the clean vector
//     from the freshest full-group decision) have spread
//     wider than the threshold; the lagging members are
//     named, since they are the ones holding back
//     uniform delivery and history cleaning (Fig. 6).
//   - progress-skew:    the processed counts have spread wider than the
//     threshold — the outside view of an active
//     partition, which halts stability group-wide while
//     only the cut-off members stop processing; again
//     the laggards are named.
//   - node-unhealthy:   the node's own /healthz verdict is 503; its
//     machine-readable reasons are carried through.
//
// The package is transport-only glue plus pure diagnosis rules; it embeds
// no protocol logic beyond reading the gauges the runtime exports.
package inspect

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"urcgc/internal/health"
	"urcgc/internal/obs"
	"urcgc/internal/probe"
	"urcgc/internal/rt"
)

// Config tells the collector where the nodes are and how strict to be.
type Config struct {
	// Nodes lists the observability addresses, "host:port" or full URLs.
	Nodes []string
	// Timeout bounds each HTTP request; 0 means 2s.
	Timeout time.Duration
	// Grace is how long OneShot waits before re-probing to confirm that
	// view divergence (and other problems) persist; 0 skips the re-probe.
	Grace time.Duration
	// FrontierSkew is the max-min stability-frontier spread tolerated
	// before lagging nodes are flagged; 0 means 64.
	FrontierSkew int64
	// StallWindow is how many trailing flight samples of a frozen decision
	// subrun count as a token stall; 0 means 12.
	StallWindow int
	// Client overrides the HTTP client (tests); nil uses a default.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.FrontierSkew <= 0 {
		c.FrontierSkew = 64
	}
	if c.StallWindow <= 0 {
		c.StallWindow = 12
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// NodeProbe is everything learned about one node in one probe.
type NodeProbe struct {
	// Addr is the node's normalized base URL.
	Addr string `json:"addr"`
	// Reachable reports whether the /status probe succeeded.
	Reachable bool `json:"reachable"`
	// Err holds the probe error when unreachable.
	Err string `json:"error,omitempty"`
	// Status is the node's protocol state (from /status?format=json).
	Status *rt.Status `json:"status,omitempty"`
	// Health is the node's own verdict (from /healthz), if served.
	Health *health.Status `json:"health,omitempty"`
	// StableSum is the node's stability frontier: the sum of its clean
	// vector, read from core_stable_sum on /metrics (falling back to the
	// status StableTo vector when the gauge is absent).
	StableSum int64 `json:"stable_sum"`
	// ProcessedSum is the total messages processed, read from
	// rt_processed_total on /metrics (falling back to the status vector).
	ProcessedSum int64 `json:"processed_sum"`
	// DecisionTail is the trailing window of the node's decision-subrun
	// gauge from /timeseries, oldest first; empty without a flight.
	DecisionTail []int64 `json:"decision_tail,omitempty"`
}

// Problem is one detected divergence.
type Problem struct {
	// Kind is "unreachable", "left", "view-divergence", "token-stall",
	// "frontier-skew", "progress-skew", "node-unhealthy" or "joining".
	Kind string `json:"kind"`
	// Group, when set, scopes the problem to one hosted group of a
	// multi-group cluster; nil means whole-node.
	Group *uint32 `json:"group,omitempty"`
	// Nodes are the addresses involved (for frontier-skew, the laggards).
	Nodes []string `json:"nodes,omitempty"`
	// Detail elaborates with the numbers.
	Detail string `json:"detail"`
	// Informational marks kinds that describe expected transients (a
	// member mid-join) rather than divergence: they are reported but do
	// not flip Report.Healthy or the one-shot exit code.
	Informational bool `json:"informational,omitempty"`
}

// Report is the reconstructed global picture, the JSON shape urcgc-inspect
// prints in one-shot mode.
type Report struct {
	// Healthy is true when no problems were detected.
	Healthy bool `json:"healthy"`
	// Nodes holds one probe per configured address, in input order.
	Nodes []NodeProbe `json:"nodes"`
	// Problems lists every detected divergence.
	Problems []Problem `json:"problems,omitempty"`
	// MinFrontier/MaxFrontier bound the stability frontiers observed
	// across reachable nodes (both 0 when none are reachable).
	MinFrontier int64 `json:"min_frontier"`
	MaxFrontier int64 `json:"max_frontier"`
	// ViewsAgree reports whether every reachable running member holds the
	// same alive mask.
	ViewsAgree bool `json:"views_agree"`
}

// metricValue finds a `name{labels} value` sample in Prometheus text.
func metricValue(body []byte, series string) (int64, bool) {
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, series) {
			continue
		}
		rest := line[len(series):]
		if len(rest) == 0 || rest[0] != ' ' {
			continue
		}
		v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// probeNode collects one node's picture. Only the /status fetch is fatal
// to the probe; /metrics, /healthz and /timeseries degrade gracefully so
// a cluster without a flight recorder still inspects.
func probeNode(ctx context.Context, cfg Config, addr string) NodeProbe {
	p := NodeProbe{Addr: addr}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	body, code, err := probe.Fetch(ctx, cfg.Client, addr+"/status?format=json")
	if err != nil {
		p.Err = err.Error()
		return p
	}
	if code != http.StatusOK {
		p.Err = fmt.Sprintf("/status: HTTP %d", code)
		return p
	}
	var st rt.Status
	if err := json.Unmarshal(body, &st); err != nil {
		p.Err = "decoding /status: " + err.Error()
		return p
	}
	p.Reachable = true
	p.Status = &st
	for _, v := range st.StableTo {
		p.StableSum += int64(v)
	}
	for _, v := range st.Processed {
		p.ProcessedSum += int64(v)
	}

	node := strconv.Itoa(int(st.ID))
	if body, code, err := probe.Fetch(ctx, cfg.Client, addr+"/metrics"); err == nil && code == http.StatusOK {
		if v, ok := metricValue(body, obs.Labeled("core_stable_sum", "node", node)); ok {
			p.StableSum = v
		}
		if v, ok := metricValue(body, obs.Labeled("rt_processed_total", "node", node)); ok {
			p.ProcessedSum = v
		}
	}

	// /healthz answers 200 or 503; both carry the JSON verdict.
	if body, code, err := probe.Fetch(ctx, cfg.Client, addr+"/healthz"); err == nil &&
		(code == http.StatusOK || code == http.StatusServiceUnavailable) {
		var h health.Status
		if json.Unmarshal(body, &h) == nil {
			p.Health = &h
		}
	}

	if body, code, err := probe.Fetch(ctx, cfg.Client, addr+"/timeseries"); err == nil && code == http.StatusOK {
		var fs obs.FlightSnapshot
		if json.Unmarshal(body, &fs) == nil {
			tail := fs.Series[obs.Labeled("core_decision_subrun", "node", node)]
			if len(tail) > cfg.StallWindow {
				tail = tail[len(tail)-cfg.StallWindow:]
			}
			p.DecisionTail = tail
		}
	}
	return p
}

// maskString renders an alive mask compactly: "101" = member 1 crashed.
func maskString(alive []bool) string {
	var b strings.Builder
	for _, a := range alive {
		if a {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// joining reports whether the probe's member is mid-join: its own status
// says so, or its /healthz verdict is still inside the join grace window.
// A joiner's frozen token and lagging frontier are the join, not a fault,
// so the divergence rules skip it.
func joining(p NodeProbe) bool {
	if !p.Reachable {
		return false
	}
	return (p.Status != nil && p.Status.Joining) || (p.Health != nil && p.Health.Joining)
}

// skewProblem flags a spread wider than the threshold in one per-node
// quantity, naming the members that trail the leader by more than it.
func skewProblem(probes []NodeProbe, threshold int64, kind, what string, value func(NodeProbe) int64) []Problem {
	var min, max int64
	first := true
	for _, p := range probes {
		if !p.Reachable || joining(p) {
			continue
		}
		v := value(p)
		if first {
			min, max = v, v
			first = false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if first || max-min <= threshold {
		return nil
	}
	var laggards []string
	for _, p := range probes {
		if p.Reachable && !joining(p) && max-value(p) > threshold {
			laggards = append(laggards, fmt.Sprintf("%s (member %d, %s %d)", p.Addr, p.Status.ID, what, value(p)))
		}
	}
	return []Problem{{
		Kind: kind, Nodes: laggards,
		Detail: fmt.Sprintf("%s spread %d (min %d, max %d) exceeds %d; lagging: %s",
			what, max-min, min, max, threshold, strings.Join(laggards, ", ")),
	}}
}

// groupProblems re-applies the view-divergence and skew rules once per
// hosted group of a multi-group cluster, reading each member's per-group
// summary from Status.Groups. Whole-node checks stay in force (a whole
// node losing the token is still whole-node news); the per-group pass is
// what localizes a divergence to the one group it afflicts — one
// partitioned group reads as that group's problem, not the node's.
func groupProblems(probes []NodeProbe, cfg Config) []Problem {
	ids := map[uint32]bool{}
	for _, p := range probes {
		if !p.Reachable || p.Status == nil {
			continue
		}
		for _, gs := range p.Status.Groups {
			ids[gs.Group] = true
		}
	}
	if len(ids) == 0 {
		return nil
	}
	order := make([]uint32, 0, len(ids))
	for g := range ids {
		order = append(order, g)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var out []Problem
	for _, gid := range order {
		gid := gid
		// Project each member's per-group summary onto a probe copy so the
		// whole-node rules apply unchanged to the one group's numbers.
		var sub []NodeProbe
		masks := map[string][]string{}
		for _, p := range probes {
			if !p.Reachable || p.Status == nil {
				continue
			}
			for _, gs := range p.Status.Groups {
				if gs.Group != gid {
					continue
				}
				if gs.Joining {
					// The member is still state-transferring into this
					// group: report it, but keep its frozen numbers out of
					// the mask and skew evidence.
					g := gid
					out = append(out, Problem{
						Kind: "joining", Group: &g, Nodes: []string{p.Addr}, Informational: true,
						Detail: fmt.Sprintf("group %d: %s (member %d) is state-transferring back into the group",
							gid, p.Addr, p.Status.ID),
					})
					continue
				}
				q := p
				q.StableSum = gs.StableSum
				q.ProcessedSum = gs.ProcessedSum
				sub = append(sub, q)
				if gs.Running {
					m := maskString(gs.Alive)
					masks[m] = append(masks[m], p.Addr)
				}
			}
		}
		if len(masks) > 1 {
			keys := make([]string, 0, len(masks))
			for m := range masks {
				keys = append(keys, m)
			}
			sort.Strings(keys)
			var parts []string
			var nodes []string
			for _, m := range keys {
				sort.Strings(masks[m])
				parts = append(parts, fmt.Sprintf("%s held by %s", m, strings.Join(masks[m], ",")))
				nodes = append(nodes, masks[m]...)
			}
			g := gid
			out = append(out, Problem{
				Kind: "view-divergence", Group: &g, Nodes: nodes,
				Detail: fmt.Sprintf("group %d: members disagree about who is alive: %s",
					gid, strings.Join(parts, "; ")),
			})
		}
		skews := append(
			skewProblem(sub, cfg.FrontierSkew, "frontier-skew",
				"stability frontier", func(p NodeProbe) int64 { return p.StableSum }),
			skewProblem(sub, cfg.FrontierSkew, "progress-skew",
				"processed count", func(p NodeProbe) int64 { return p.ProcessedSum })...)
		for _, pr := range skews {
			g := gid
			pr.Group = &g
			pr.Detail = fmt.Sprintf("group %d: %s", gid, pr.Detail)
			out = append(out, pr)
		}
	}
	return out
}

// diagnose applies the divergence rules to one round of probes.
func diagnose(probes []NodeProbe, cfg Config) (problems []Problem, viewsAgree bool) {
	viewsAgree = true

	for _, p := range probes {
		if !p.Reachable {
			problems = append(problems, Problem{
				Kind: "unreachable", Nodes: []string{p.Addr},
				Detail: fmt.Sprintf("%s: %s", p.Addr, p.Err),
			})
		}
	}
	for _, p := range probes {
		if p.Reachable && !p.Status.Running {
			problems = append(problems, Problem{
				Kind: "left", Nodes: []string{p.Addr},
				Detail: fmt.Sprintf("%s (member %d) no longer runs the protocol", p.Addr, p.Status.ID),
			})
		}
	}

	// View agreement: every reachable running member must hold the same
	// alive mask. A mid-join member is excluded: its view is the
	// sponsor's snapshot until a decision admits it, and it does not yet
	// appear alive in the others' masks — both disagreements are the join
	// in progress, not divergence.
	masks := map[string][]string{}
	for _, p := range probes {
		if p.Reachable && p.Status.Running && !joining(p) {
			m := maskString(p.Status.Alive)
			masks[m] = append(masks[m], p.Addr)
		}
	}
	if len(masks) > 1 {
		viewsAgree = false
		keys := make([]string, 0, len(masks))
		for m := range masks {
			keys = append(keys, m)
		}
		sort.Strings(keys)
		var parts []string
		var nodes []string
		for _, m := range keys {
			sort.Strings(masks[m])
			parts = append(parts, fmt.Sprintf("%s held by %s", m, strings.Join(masks[m], ",")))
			nodes = append(nodes, masks[m]...)
		}
		problems = append(problems, Problem{
			Kind: "view-divergence", Nodes: nodes,
			Detail: "members disagree about who is alive: " + strings.Join(parts, "; "),
		})
	}

	// Token stall: a frozen decision-subrun window on any running member.
	// A joiner's subrun is legitimately frozen until the sponsor's state
	// installs, so joiners are exempt.
	for _, p := range probes {
		if !p.Reachable || !p.Status.Running || joining(p) || len(p.DecisionTail) < cfg.StallWindow {
			continue
		}
		frozen := true
		for _, v := range p.DecisionTail[1:] {
			if v != p.DecisionTail[0] {
				frozen = false
				break
			}
		}
		if frozen {
			problems = append(problems, Problem{
				Kind: "token-stall", Nodes: []string{p.Addr},
				Detail: fmt.Sprintf("%s (member %d): decision subrun frozen at %d for %d samples",
					p.Addr, p.Status.ID, p.DecisionTail[0], cfg.StallWindow),
			})
		}
	}

	// Skew rules: name the lagging members. Stability-frontier skew says
	// some members hold full-group decisions others never saw (a healed
	// split still reconciling); processed skew says some members are not
	// receiving the traffic at all. The latter is what an active partition
	// looks like from outside: stability halts group-wide (a full-group
	// decision needs reports from every believed-alive member), while the
	// majority side keeps processing and the cut-off member does not.
	problems = append(problems, skewProblem(probes, cfg.FrontierSkew, "frontier-skew",
		"stability frontier", func(p NodeProbe) int64 { return p.StableSum })...)
	problems = append(problems, skewProblem(probes, cfg.FrontierSkew, "progress-skew",
		"processed count", func(p NodeProbe) int64 { return p.ProcessedSum })...)

	// Per-group pass: multi-group members expose Status.Groups, and a
	// divergence confined to one group is reported against that group.
	perGroup := groupProblems(probes, cfg)
	for _, p := range perGroup {
		if p.Kind == "view-divergence" {
			viewsAgree = false
		}
	}
	problems = append(problems, perGroup...)

	// Surface mid-join members as informational problems: visible in the
	// report and in watch mode, but never a failing exit code — a rolling
	// restart would otherwise flap the one-shot verdict on every member.
	for _, p := range probes {
		if joining(p) {
			problems = append(problems, Problem{
				Kind: "joining", Nodes: []string{p.Addr}, Informational: true,
				Detail: fmt.Sprintf("%s (member %d) is state-transferring back into the group",
					p.Addr, p.Status.ID),
			})
		}
	}

	// Carry through each node's own verdict.
	for _, p := range probes {
		if p.Health != nil && !p.Health.Healthy {
			var rules []string
			for _, r := range p.Health.Reasons {
				rules = append(rules, r.Rule)
			}
			problems = append(problems, Problem{
				Kind: "node-unhealthy", Nodes: []string{p.Addr},
				Detail: fmt.Sprintf("%s reports itself unhealthy: %s", p.Addr, strings.Join(rules, ", ")),
			})
		}
	}
	return problems, viewsAgree
}

// Collect probes every configured node once and diagnoses the result.
func Collect(ctx context.Context, cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{Nodes: probe.Fanout(cfg.Nodes, func(_ int, addr string) NodeProbe {
		return probeNode(ctx, cfg, probe.NormalizeAddr(addr))
	})}
	r.Problems, r.ViewsAgree = diagnose(r.Nodes, cfg)
	r.Healthy = healthyProblems(r.Problems)
	for _, p := range r.Nodes {
		if p.Reachable {
			if r.MinFrontier == 0 && r.MaxFrontier == 0 {
				r.MinFrontier, r.MaxFrontier = p.StableSum, p.StableSum
			}
			if p.StableSum < r.MinFrontier {
				r.MinFrontier = p.StableSum
			}
			if p.StableSum > r.MaxFrontier {
				r.MaxFrontier = p.StableSum
			}
		}
	}
	return r
}

// healthyProblems reports whether the problem list carries any real
// divergence. Informational kinds (a member mid-join) never flip the
// verdict or the one-shot exit code.
func healthyProblems(problems []Problem) bool {
	for _, p := range problems {
		if !p.Informational {
			return false
		}
	}
	return true
}

// OneShot probes once and, if problems showed up and a grace period is
// configured, re-probes after it — transient divergence (a crash still
// propagating through attempts counters, a frontier catching up) clears
// itself; only problem kinds present in both rounds are reported.
// Informational problems are always carried through: they never triggered
// the re-probe and must not be able to suppress or cause a failure.
func OneShot(ctx context.Context, cfg Config) Report {
	first := Collect(ctx, cfg)
	if first.Healthy || cfg.Grace <= 0 {
		return first
	}
	select {
	case <-ctx.Done():
		return first
	case <-time.After(cfg.Grace):
	}
	second := Collect(ctx, cfg)
	seen := map[string]bool{}
	for _, p := range first.Problems {
		seen[p.Kind] = true
	}
	persistent := second.Problems[:0]
	for _, p := range second.Problems {
		if p.Informational || seen[p.Kind] {
			persistent = append(persistent, p)
		}
	}
	second.Problems = persistent
	second.Healthy = healthyProblems(second.Problems)
	return second
}

// Summary renders one human-readable line per report, for watch mode.
func Summary(r Report) string {
	reachable := 0
	for _, p := range r.Nodes {
		if p.Reachable {
			reachable++
		}
	}
	verdict := "healthy"
	kinds := map[string]bool{}
	var order []string
	for _, p := range r.Problems {
		if !kinds[p.Kind] {
			kinds[p.Kind] = true
			order = append(order, p.Kind)
		}
	}
	if !r.Healthy {
		verdict = "UNHEALTHY [" + strings.Join(order, ", ") + "]"
	} else if len(order) > 0 {
		// Only informational kinds (e.g. a member mid-join): still healthy.
		verdict = "healthy [" + strings.Join(order, ", ") + "]"
	}
	return fmt.Sprintf("%s nodes=%d/%d views_agree=%v frontier=[%d..%d]",
		verdict, reachable, len(r.Nodes), r.ViewsAgree, r.MinFrontier, r.MaxFrontier)
}

// Watch collects at the given interval, writing one summary line per
// round, until ctx ends. It returns the last report.
func Watch(ctx context.Context, cfg Config, interval time.Duration, w io.Writer) Report {
	if interval <= 0 {
		interval = time.Second
	}
	var last Report
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		r := Collect(ctx, cfg)
		if ctx.Err() != nil {
			// Cancelled mid-probe: the round is truncated, not evidence.
			return last
		}
		last = r
		fmt.Fprintln(w, Summary(last))
		for _, p := range last.Problems {
			fmt.Fprintf(w, "  %s: %s\n", p.Kind, p.Detail)
		}
		select {
		case <-ctx.Done():
			return last
		case <-t.C:
		}
	}
}

package inspect

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/faultrt"
	"urcgc/internal/health"
	"urcgc/internal/mid"
	"urcgc/internal/nodehttp"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

// freePorts grabs n distinct loopback UDP ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// TestInspectSmoke boots three real UDP members, each serving the full
// nodehttp surface with its own registry and flight recorder, and checks
// that one inspection round reconstructs a healthy, agreeing cluster —
// the same path `make inspect-smoke` drives through the built binaries.
func TestInspectSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	const n = 3
	peers := freePorts(t, n)
	obsAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		reg := obs.New()
		node, err := rt.NewUDPNode(rt.UDPConfig{
			Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
			Self:          mid.ProcID(i),
			Peers:         peers,
			RoundDuration: 3 * time.Millisecond,
			Metrics:       reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		flight := obs.NewFlight(reg, obs.FlightOptions{Interval: 25 * time.Millisecond, Cap: 256})
		mux := nodehttp.Mux(nodehttp.Options{
			Registry: reg,
			Flight:   flight,
			Health:   health.NewEvaluator(flight, strconv.Itoa(i), health.Thresholds{}),
			Status:   node.Status,
		})
		ln, err := nodehttp.Serve("127.0.0.1:0", mux)
		if err != nil {
			t.Fatal(err)
		}
		obsAddrs[i] = ln.Addr().String()
		node.Start()
		flight.Start()
		t.Cleanup(func() { flight.Stop(); node.Stop(); ln.Close() })

		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		const perNode = 4
		for k := 0; k < perNode; k++ {
			go func(node *rt.UDPNode, i, k int) {
				if _, err := node.Send(ctx, []byte(fmt.Sprintf("s%d-%d", i, k)), nil); err != nil {
					t.Errorf("node %d send: %v", i, err)
				}
			}(node, i, k)
		}
		defer cancel()
	}

	cfg := Config{Nodes: obsAddrs, Timeout: 2 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	var r Report
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		r = Collect(ctx, cfg)
		cancel()
		// Healthy, agreeing, and with real progress: every member's
		// frontier must cover the whole burst (3 nodes x 4 messages).
		if r.Healthy && r.ViewsAgree && r.MinFrontier >= 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never inspected healthy: %s\nproblems: %+v", Summary(r), r.Problems)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i, p := range r.Nodes {
		if !p.Reachable || p.Status == nil || int(p.Status.ID) != i {
			t.Fatalf("probe %d: %+v", i, p)
		}
		if p.Health == nil || !p.Health.Healthy {
			t.Errorf("node %d /healthz: %+v", i, p.Health)
		}
		if len(p.Status.HistoryBySender) != n {
			t.Errorf("node %d per-sender occupancy: %v", i, p.Status.HistoryBySender)
		}
	}
}

// TestInspectPartitionRecovery is the acceptance demo as a test: a live
// five-member in-process cluster inspects healthy; a faultrt partition
// isolates member 4 and inspect flags the divergence naming it; the cut
// heals and the cluster inspects healthy again with the stability
// frontier past its pre-fault mark. The partition is shorter than the K
// detection window, so no one is declared crashed — from outside it shows
// up exactly as the paper predicts: stability halts group-wide while the
// majority keeps processing and the cut-off member falls behind.
func TestInspectPartitionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live run")
	}
	const (
		n     = 5
		round = 2 * time.Millisecond
		from  = 4 * time.Second // partition window on the hook clock
		to    = 5500 * time.Millisecond
	)
	reg := obs.New()
	hook := faultrt.NewHook(faultrt.Partition{
		From: from, To: to, SideA: map[mid.ProcID]bool{4: true},
	}, reg)
	// K far above the subruns a partition window can span, so neither side
	// declares the other crashed; SelfExclusion off so nobody leaves.
	c, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: n, K: 600, R: 1202, SelfExclusion: false},
		RoundDuration: round,
		Metrics:       reg,
		Fault:         hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	flight := obs.NewFlight(reg, obs.FlightOptions{Interval: 25 * time.Millisecond, Cap: 1024})
	flight.Start()
	defer flight.Stop()

	th := health.Thresholds{
		TokenStallSamples: 10, HistoryWindow: 8, HistoryGrowthMin: 24,
		WaitingStuckSamples: 12, FrontierLagWindow: 8, FrontierLagMin: 8,
	}
	obsAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		node := c.Node(mid.ProcID(i))
		mux := nodehttp.Mux(nodehttp.Options{
			Registry: reg,
			Flight:   flight,
			Health:   health.NewEvaluator(flight, strconv.Itoa(i), th),
			Status:   node.Status,
		})
		ln, err := nodehttp.Serve("127.0.0.1:0", mux)
		if err != nil {
			t.Fatal(err)
		}
		obsAddrs[i] = ln.Addr().String()
		t.Cleanup(func() { ln.Close() })
	}

	// Steady load from the majority side for the whole run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				case <-time.After(10 * time.Millisecond):
				}
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				_, err := c.Node(mid.ProcID(i)).Send(ctx, []byte(fmt.Sprintf("l%d-%d", i, seq)), nil)
				cancel()
				if err != nil {
					select {
					case <-stop:
					default:
						t.Errorf("node %d send %d: %v", i, seq, err)
					}
					return
				}
			}
		}(i)
	}
	defer func() { close(stop); wg.Wait() }()

	cfg := Config{Nodes: obsAddrs, Timeout: 2 * time.Second, FrontierSkew: 25, StallWindow: 10}
	inspectOnce := func() Report {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return Collect(ctx, cfg)
	}

	// Phase 1: healthy before the fault, with stability demonstrably
	// advancing.
	var before Report
	for {
		before = inspectOnce()
		if before.Healthy && before.ViewsAgree && before.MinFrontier > 0 {
			break
		}
		if hook.Elapsed() > from-500*time.Millisecond {
			t.Fatalf("never healthy before the partition window: %s\nproblems: %+v",
				Summary(before), before.Problems)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("pre-fault: %s", Summary(before))

	// Phase 2: during the partition, inspect must flag divergence naming
	// the cut-off member.
	for hook.Elapsed() < from {
		time.Sleep(10 * time.Millisecond)
	}
	var flagged bool
	var during Report
	for hook.Elapsed() < to-200*time.Millisecond {
		during = inspectOnce()
		if !during.Healthy {
			for _, p := range during.Problems {
				for _, addr := range p.Nodes {
					if strings.Contains(addr, obsAddrs[4]) {
						flagged = true
					}
				}
			}
			if flagged {
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !flagged {
		t.Fatalf("partition never flagged naming the cut-off member: %s\nproblems: %+v",
			Summary(during), during.Problems)
	}
	t.Logf("during fault: %s", Summary(during))

	// Phase 3: after the heal everything recovers — healthy verdict, views
	// agreed, and the frontier past its pre-fault mark (stability resumed
	// and covered the traffic sent through the fault window).
	deadline := time.Now().Add(30 * time.Second)
	var after Report
	for {
		after = inspectOnce()
		if after.Healthy && after.ViewsAgree && after.MinFrontier > before.MaxFrontier {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered: %s\nproblems: %+v", Summary(after), after.Problems)
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Logf("post-heal: %s", Summary(after))
}

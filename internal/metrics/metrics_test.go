package metrics

import (
	"math"
	"testing"

	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

func TestDelayMean(t *testing.T) {
	d := NewDelay()
	id1 := mid.MID{Proc: 0, Seq: 1}
	id2 := mid.MID{Proc: 1, Seq: 1}
	d.Generated(id1, 0)
	d.Generated(id2, sim.TicksPerRTD)
	d.Processed(id1, sim.TicksPerRTD)   // 1 rtd
	d.Processed(id1, 2*sim.TicksPerRTD) // 2 rtd (second process)
	d.Processed(id2, 2*sim.TicksPerRTD) // 1 rtd
	if d.Count() != 3 {
		t.Errorf("Count = %d", d.Count())
	}
	want := (1.0 + 2.0 + 1.0) / 3.0
	if got := d.MeanRTD(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanRTD = %v, want %v", got, want)
	}
	if d.MaxRTD() != 2.0 {
		t.Errorf("MaxRTD = %v", d.MaxRTD())
	}
}

func TestDelayIgnoresUnknownAndDuplicateGen(t *testing.T) {
	d := NewDelay()
	d.Processed(mid.MID{Proc: 9, Seq: 9}, 100)
	if d.Count() != 0 {
		t.Error("unknown message must be ignored")
	}
	id := mid.MID{Proc: 0, Seq: 1}
	d.Generated(id, 10)
	d.Generated(id, 999) // duplicate keeps first
	d.Processed(id, 10+sim.TicksPerRTD)
	if got := d.MeanRTD(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("MeanRTD = %v", got)
	}
}

func TestDelayEmptyMeanIsNaN(t *testing.T) {
	if !math.IsNaN(NewDelay().MeanRTD()) {
		t.Error("empty mean should be NaN")
	}
	if !math.IsNaN(NewDelay().PercentileRTD(50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestDelayPercentile(t *testing.T) {
	d := NewDelay()
	for i := 1; i <= 10; i++ {
		id := mid.MID{Proc: 0, Seq: mid.Seq(i)}
		d.Generated(id, 0)
		d.Processed(id, sim.Time(i)*sim.TicksPerRTD)
	}
	if got := d.PercentileRTD(50); got != 5.0 {
		t.Errorf("p50 = %v", got)
	}
	if got := d.PercentileRTD(100); got != 10.0 {
		t.Errorf("p100 = %v", got)
	}
	if got := d.PercentileRTD(1); got != 1.0 {
		t.Errorf("p1 = %v", got)
	}
}

func TestLoadAccounting(t *testing.T) {
	l := NewLoad()
	l.Add(wire.KindData, 100)
	l.Add(wire.KindRequest, 40)
	l.Add(wire.KindRequest, 40)
	l.Add(wire.KindDecision, 60)
	if l.TotalMsgs() != 4 {
		t.Errorf("TotalMsgs = %d", l.TotalMsgs())
	}
	if l.ControlMsgs() != 3 {
		t.Errorf("ControlMsgs = %d", l.ControlMsgs())
	}
	if l.ControlBytes() != 140 {
		t.Errorf("ControlBytes = %d", l.ControlBytes())
	}
	if got := l.MeanSize(wire.KindRequest); got != 40 {
		t.Errorf("MeanSize = %v", got)
	}
	if got := l.MeanSize(wire.KindRecover); got != 0 {
		t.Errorf("MeanSize of absent kind = %v", got)
	}
	if NewLoad().String() != "(no traffic)" {
		t.Error("empty String")
	}
	if l.String() == "" {
		t.Error("non-empty String")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(sim.TicksPerRTD, 5)
	s.Add(2*sim.TicksPerRTD, 3)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Max() != 5 {
		t.Errorf("Max = %v", s.Max())
	}
	if got := s.At(1.5); got != 5 {
		t.Errorf("At(1.5) = %v", got)
	}
	if got := s.At(2.0); got != 3 {
		t.Errorf("At(2.0) = %v", got)
	}
	if !math.IsNaN(s.At(-1)) {
		t.Error("At before first sample should be NaN")
	}
	var empty Series
	if !math.IsNaN(empty.Max()) {
		t.Error("empty Max should be NaN")
	}
}

func TestAgreement(t *testing.T) {
	var a Agreement
	if a.Measured() || !math.IsNaN(a.RTD()) {
		t.Error("unmeasured agreement")
	}
	a.Start(sim.TicksPerRTD)
	a.Start(5 * sim.TicksPerRTD) // ignored: already open
	a.Done(4 * sim.TicksPerRTD)
	if !a.Measured() {
		t.Error("should be measured")
	}
	if got := a.RTD(); got != 3.0 {
		t.Errorf("T = %v rtd", got)
	}
	a.Done(99 * sim.TicksPerRTD) // ignored: first completion counts
	if got := a.RTD(); got != 3.0 {
		t.Errorf("T changed to %v", got)
	}
}

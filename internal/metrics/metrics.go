// Package metrics collects the quantities the paper's evaluation reports:
// mean end-to-end delay D (generation to processing, in rtd), the amount
// and size of control messages (network load, Table 1), history and
// waiting-list lengths over time (Figure 6), and agreement time T
// (Figure 5).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

// Delay measures end-to-end delay: the elapsed time from the instant a user
// message is generated to the instant it is processed, sampled once per
// (message, processing process) pair, exactly as the paper defines D.
type Delay struct {
	gen     map[mid.MID]sim.Time
	sum     sim.Time
	count   int
	max     sim.Time
	samples []sim.Time
}

// NewDelay returns an empty delay collector.
func NewDelay() *Delay {
	return &Delay{gen: make(map[mid.MID]sim.Time)}
}

// Generated records the generation instant of a message.
func (d *Delay) Generated(id mid.MID, t sim.Time) {
	if _, dup := d.gen[id]; !dup {
		d.gen[id] = t
	}
}

// Processed records that some process processed the message at time t.
// Unknown messages (never recorded as generated) are ignored.
func (d *Delay) Processed(id mid.MID, t sim.Time) {
	g, ok := d.gen[id]
	if !ok {
		return
	}
	delta := t - g
	d.sum += delta
	d.count++
	if delta > d.max {
		d.max = delta
	}
	d.samples = append(d.samples, delta)
}

// Count returns the number of (message, process) samples.
func (d *Delay) Count() int { return d.count }

// MeanRTD returns the mean end-to-end delay in rtd units, or NaN if empty.
func (d *Delay) MeanRTD() float64 {
	if d.count == 0 {
		return math.NaN()
	}
	return float64(d.sum) / float64(d.count) / float64(sim.TicksPerRTD)
}

// MaxRTD returns the largest observed delay in rtd units.
func (d *Delay) MaxRTD() float64 { return d.max.RTD() }

// PercentileRTD returns the p-th percentile delay (0 < p <= 100) in rtd.
func (d *Delay) PercentileRTD(p float64) float64 {
	if len(d.samples) == 0 {
		return math.NaN()
	}
	s := append([]sim.Time(nil), d.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx].RTD()
}

// Load accounts network traffic per PDU kind: how many messages and how
// many bytes. Data messages are the user traffic; every other kind is
// control traffic (Table 1).
type Load struct {
	Counts map[wire.Kind]int
	Bytes  map[wire.Kind]int
}

// NewLoad returns an empty load accountant.
func NewLoad() *Load {
	return &Load{Counts: make(map[wire.Kind]int), Bytes: make(map[wire.Kind]int)}
}

// Add accounts one sent message of the given kind and encoded size.
func (l *Load) Add(kind wire.Kind, size int) {
	l.Counts[kind]++
	l.Bytes[kind] += size
}

// ControlMsgs returns the number of non-DATA messages.
func (l *Load) ControlMsgs() int {
	total := 0
	for k, c := range l.Counts {
		if !k.IsData() {
			total += c
		}
	}
	return total
}

// ControlBytes returns the bytes of non-DATA traffic.
func (l *Load) ControlBytes() int {
	total := 0
	for k, b := range l.Bytes {
		if !k.IsData() {
			total += b
		}
	}
	return total
}

// TotalMsgs returns the number of messages of every kind.
func (l *Load) TotalMsgs() int {
	total := 0
	for _, c := range l.Counts {
		total += c
	}
	return total
}

// MeanSize returns the mean encoded size of messages of kind k, or 0.
func (l *Load) MeanSize(k wire.Kind) float64 {
	if l.Counts[k] == 0 {
		return 0
	}
	return float64(l.Bytes[k]) / float64(l.Counts[k])
}

// String summarizes the load for reports.
func (l *Load) String() string {
	s := ""
	for _, k := range []wire.Kind{wire.KindData, wire.KindRequest, wire.KindDecision, wire.KindRecover, wire.KindRetransmit} {
		if l.Counts[k] == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:%d/%dB", k, l.Counts[k], l.Bytes[k])
	}
	if s == "" {
		return "(no traffic)"
	}
	return s
}

// Series is a time series of (time in rtd, value) points, e.g. the history
// length sampled every round for Figure 6.
type Series struct {
	T []float64
	V []float64
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.T = append(s.T, t.RTD())
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Max returns the largest value in the series, or NaN if empty.
func (s *Series) Max() float64 {
	if len(s.V) == 0 {
		return math.NaN()
	}
	m := s.V[0]
	for _, v := range s.V[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// At returns the value at the latest sample time <= t (in rtd), or NaN if
// the series has no sample that early.
func (s *Series) At(rtd float64) float64 {
	best := math.NaN()
	for i, tt := range s.T {
		if tt <= rtd {
			best = s.V[i]
		} else {
			break
		}
	}
	return best
}

// Agreement measures T: the time the protocol needs to complete the set of
// actions deciding on group composition and message stability after a
// failure (Figure 5). Start marks the failure instant; Done marks the
// completed agreement.
type Agreement struct {
	start sim.Time
	done  sim.Time
	open  bool
	did   bool
}

// Start marks the failure instant.
func (a *Agreement) Start(t sim.Time) {
	if !a.open && !a.did {
		a.start = t
		a.open = true
	}
}

// Done marks the completed agreement. Later calls are ignored: T measures
// the first completion.
func (a *Agreement) Done(t sim.Time) {
	if a.open && !a.did {
		a.done = t
		a.did = true
		a.open = false
	}
}

// Measured reports whether both endpoints were recorded.
func (a *Agreement) Measured() bool { return a.did }

// RTD returns T in rtd units, or NaN if not measured.
func (a *Agreement) RTD() float64 {
	if !a.did {
		return math.NaN()
	}
	return (a.done - a.start).RTD()
}

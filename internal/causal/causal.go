// Package causal implements the causal dependency machinery of Definition
// 3.1 of the paper: messages carry explicit dependency labels, sequences are
// rooted at processes, and a message is processable only after every message
// it depends on has been processed.
//
// Two interpretations are supported:
//
//   - The general interpretation lets a process root any number of
//     concurrent sequences (Definition 3.1 verbatim).
//   - The intermediate interpretation — the one the protocol runs with —
//     restricts each process to rooting a single sequence, so every message
//     implicitly depends on its sender's previous message and explicitly on
//     at most one message per other sequence. This bounds the dependency
//     list by the group cardinality n.
//
// The package also tracks condemned messages: when the only holders of a
// message crash, the group agrees to destroy the messages that depend on it
// (Section 4); Tracker mirrors that rule locally.
package causal

import (
	"fmt"

	"urcgc/internal/mid"
)

// Message is the protocol-level view of a user message: its identifier, its
// explicit dependency labels, and an opaque payload.
type Message struct {
	ID      mid.MID
	Deps    mid.DepList
	Payload []byte
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	cp := &Message{ID: m.ID, Deps: m.Deps.Clone()}
	if m.Payload != nil {
		cp.Payload = append([]byte(nil), m.Payload...)
	}
	return cp
}

// EffectiveDeps returns the full dependency set of m under the intermediate
// interpretation: the explicit labels plus the implicit dependency on the
// sender's previous message.
func (m *Message) EffectiveDeps() mid.DepList {
	deps := m.Deps.Clone()
	if prev := m.ID.Prev(); !prev.IsZero() && !deps.Covers(prev) {
		deps = append(deps, prev)
	}
	return deps.Canonical()
}

// Validate checks the structural invariants a message must satisfy before
// entering the protocol: a real MID, and no dependency on itself, on a later
// message of any sequence than is expressible, or on its own sequence at or
// beyond its own position (which would create a cycle).
func (m *Message) Validate() error {
	if m.ID.IsZero() {
		return fmt.Errorf("causal: message has zero MID")
	}
	for _, d := range m.Deps {
		if d.IsZero() {
			return fmt.Errorf("causal: %v depends on zero MID", m.ID)
		}
		if d.Proc == m.ID.Proc && d.Seq >= m.ID.Seq {
			return fmt.Errorf("causal: %v depends on %v of its own sequence at or after itself", m.ID, d)
		}
	}
	return nil
}

// Ready reports whether a message with the given effective dependencies is
// processable given processed, the vector of last-processed sequence
// numbers per sender. A sequence is processed contiguously, so dependency
// (q,s) is satisfied exactly when processed[q] >= s.
func Ready(m *Message, processed mid.SeqVector) bool {
	for _, d := range m.EffectiveDeps() {
		if int(d.Proc) >= len(processed) || processed[d.Proc] < d.Seq {
			return false
		}
	}
	return true
}

// MissingDeps returns the effective dependencies of m that processed does
// not yet satisfy.
func MissingDeps(m *Message, processed mid.SeqVector) mid.DepList {
	var miss mid.DepList
	for _, d := range m.EffectiveDeps() {
		if int(d.Proc) >= len(processed) || processed[d.Proc] < d.Seq {
			miss = append(miss, d)
		}
	}
	return miss
}

// Tracker maintains a process's causal processing state: the contiguous
// last-processed vector and the set of condemned sequence suffixes.
// A condemned suffix (q, from) means every message (q, s) with s >= from is
// destroyed: it can never be processed, and any message depending on one of
// them is destroyed transitively.
type Tracker struct {
	processed mid.SeqVector
	condemned mid.SeqVector // condemned[q] = smallest condemned seq of q; 0 = none
}

// NewTracker returns a Tracker for a group of n processes with nothing
// processed and nothing condemned.
func NewTracker(n int) *Tracker {
	t := &Tracker{
		processed: mid.NewSeqVector(n),
		condemned: mid.NewSeqVector(n),
	}
	for i := range t.condemned {
		t.condemned[i] = 0
	}
	return t
}

// Processed returns the last-processed vector. The caller must not modify it.
func (t *Tracker) Processed() mid.SeqVector { return t.processed }

// LastProcessed returns the last processed sequence number of process q's
// sequence, or 0 if none.
func (t *Tracker) LastProcessed(q mid.ProcID) mid.Seq {
	if int(q) >= len(t.processed) || q < 0 {
		return 0
	}
	return t.processed[q]
}

// Ready reports whether m is processable now: all effective dependencies
// processed and neither m nor any dependency condemned.
func (t *Tracker) Ready(m *Message) bool {
	if t.IsCondemned(m.ID) {
		return false
	}
	for _, d := range m.EffectiveDeps() {
		if t.IsCondemned(d) {
			return false
		}
	}
	return Ready(m, t.processed)
}

// Doomed reports whether m can never be processed: m itself or one of its
// effective dependencies is condemned.
func (t *Tracker) Doomed(m *Message) bool {
	if t.IsCondemned(m.ID) {
		return true
	}
	for _, d := range m.EffectiveDeps() {
		if t.IsCondemned(d) {
			return true
		}
	}
	return false
}

// Process records that m has been processed. It returns an error if m was
// not Ready: processing out of causal order is a protocol bug, not a runtime
// condition, and the simulator tests rely on this being loud.
func (t *Tracker) Process(m *Message) error {
	if t.Doomed(m) {
		return fmt.Errorf("causal: processing condemned message %v", m.ID)
	}
	if !Ready(m, t.processed) {
		return fmt.Errorf("causal: processing %v before its dependencies (missing %v)", m.ID, MissingDeps(m, t.processed))
	}
	if int(m.ID.Proc) >= len(t.processed) {
		return fmt.Errorf("causal: message %v from process outside group of %d", m.ID, len(t.processed))
	}
	if t.processed[m.ID.Proc] != m.ID.Seq-1 {
		return fmt.Errorf("causal: %v breaks sequence contiguity (last processed %d)", m.ID, t.processed[m.ID.Proc])
	}
	t.processed[m.ID.Proc] = m.ID.Seq
	return nil
}

// Condemn destroys the suffix of q's sequence starting at from. Later calls
// with a higher from for the same sequence are ignored; earlier ones widen
// the condemned range. Condemning at or below the processed position is
// rejected: a processed message is never destroyed.
func (t *Tracker) Condemn(q mid.ProcID, from mid.Seq) error {
	if int(q) >= len(t.condemned) || q < 0 {
		return fmt.Errorf("causal: condemn of unknown process %d", q)
	}
	if from == 0 {
		return fmt.Errorf("causal: condemn from seq 0")
	}
	if t.processed[q] >= from {
		return fmt.Errorf("causal: condemning %v already processed locally (last %d)", mid.MID{Proc: q, Seq: from}, t.processed[q])
	}
	if cur := t.condemned[q]; cur == 0 || from < cur {
		t.condemned[q] = from
	}
	return nil
}

// Uncondemn clears the condemned suffix of q's sequence — the local half of
// a join adoption: the rejoined member's sequence resumes, so the group's
// agreement to destroy its suffix no longer applies to the messages it will
// now reissue. A sequence with nothing condemned is a no-op.
func (t *Tracker) Uncondemn(q mid.ProcID) {
	if q >= 0 && int(q) < len(t.condemned) {
		t.condemned[q] = 0
	}
}

// Install replaces the processed vector wholesale with the given watermark —
// the joiner's bootstrap: everything at or below a stability watermark is
// uniformly delivered group-wide, so a joiner treats it as processed and
// resumes contiguous processing from there. Entries may also move forward
// later when a Retransmit reports a wanted range compacted everywhere
// (see Tracker.FastForward). Install must not move any entry backwards.
func (t *Tracker) Install(watermark mid.SeqVector) error {
	for q := range t.processed {
		w := mid.Seq(0)
		if q < len(watermark) {
			w = watermark[q]
		}
		if w < t.processed[q] {
			return fmt.Errorf("causal: installing watermark %d below processed %d for p%d", w, t.processed[q], q)
		}
	}
	for q := range t.processed {
		if q < len(watermark) {
			t.processed[q] = watermark[q]
		}
	}
	return nil
}

// FastForward advances one sequence's processed position to seq without the
// messages in between — valid only when those messages are known uniformly
// stable (a responder reported the range compacted, which requires a
// full-group decision covering it). Moving backwards is a no-op.
func (t *Tracker) FastForward(q mid.ProcID, seq mid.Seq) {
	if q >= 0 && int(q) < len(t.processed) && seq > t.processed[q] {
		t.processed[q] = seq
	}
}

// IsCondemned reports whether message m has been destroyed by agreement.
func (t *Tracker) IsCondemned(m mid.MID) bool {
	if int(m.Proc) >= len(t.condemned) || m.Proc < 0 {
		return false
	}
	c := t.condemned[m.Proc]
	return c != 0 && m.Seq >= c
}

// CondemnedFrom returns the first condemned sequence number of q, or 0.
func (t *Tracker) CondemnedFrom(q mid.ProcID) mid.Seq {
	if int(q) >= len(t.condemned) || q < 0 {
		return 0
	}
	return t.condemned[q]
}

// Graph is an offline validator for a set of messages: it checks that the
// causal relation they describe is acyclic and respects Definition 3.1
// (dependencies point strictly backwards within each sequence). It is used
// by tests and by the trace verifier, not on the hot path.
type Graph struct {
	msgs map[mid.MID]*Message
}

// NewGraph returns an empty validator.
func NewGraph() *Graph { return &Graph{msgs: make(map[mid.MID]*Message)} }

// Add inserts a message. Adding two different messages with the same MID is
// an error (MIDs are unique by construction).
func (g *Graph) Add(m *Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if _, dup := g.msgs[m.ID]; dup {
		return fmt.Errorf("causal: duplicate MID %v", m.ID)
	}
	g.msgs[m.ID] = m
	return nil
}

// Len returns the number of messages in the graph.
func (g *Graph) Len() int { return len(g.msgs) }

// Get returns the message with the given MID, or nil.
func (g *Graph) Get(id mid.MID) *Message { return g.msgs[id] }

// CheckAcyclic verifies the transitive closure of the dependency relation
// contains no cycles. With Validate enforcing that intra-sequence edges
// point strictly backwards, cycles can only arise through cross-sequence
// edges; this walks the full graph to be sure.
func (g *Graph) CheckAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[mid.MID]int, len(g.msgs))
	var visit func(id mid.MID) error
	visit = func(id mid.MID) error {
		switch color[id] {
		case grey:
			return fmt.Errorf("causal: cycle through %v", id)
		case black:
			return nil
		}
		color[id] = grey
		if m := g.msgs[id]; m != nil {
			for _, d := range m.EffectiveDeps() {
				if _, known := g.msgs[d]; !known {
					continue // dependency outside the captured set
				}
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for id := range g.msgs {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// TopoOrder returns the messages in an order compatible with the causal
// relation (dependencies first). It fails if the graph is cyclic.
func (g *Graph) TopoOrder() ([]*Message, error) {
	if err := g.CheckAcyclic(); err != nil {
		return nil, err
	}
	out := make([]*Message, 0, len(g.msgs))
	done := make(map[mid.MID]bool, len(g.msgs))
	var visit func(id mid.MID)
	visit = func(id mid.MID) {
		if done[id] {
			return
		}
		done[id] = true
		m := g.msgs[id]
		if m == nil {
			return
		}
		for _, d := range m.EffectiveDeps() {
			if _, known := g.msgs[d]; known {
				visit(d)
			}
		}
		out = append(out, m)
	}
	// Visit in a deterministic order for reproducible tests.
	ids := make([]mid.MID, 0, len(g.msgs))
	for id := range g.msgs {
		ids = append(ids, id)
	}
	sortMIDs(ids)
	for _, id := range ids {
		visit(id)
	}
	return out, nil
}

func sortMIDs(ids []mid.MID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].Less(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

package causal

import (
	"math/rand"
	"testing"

	"urcgc/internal/mid"
)

func msg(p mid.ProcID, s mid.Seq, deps ...mid.MID) *Message {
	return &Message{ID: mid.MID{Proc: p, Seq: s}, Deps: mid.DepList(deps)}
}

func TestEffectiveDepsAddsImplicitPredecessor(t *testing.T) {
	m := msg(1, 3, mid.MID{Proc: 0, Seq: 2})
	deps := m.EffectiveDeps()
	if !deps.Covers(mid.MID{Proc: 1, Seq: 2}) {
		t.Errorf("effective deps %v should cover implicit p1#2", deps)
	}
	if !deps.Covers(mid.MID{Proc: 0, Seq: 2}) {
		t.Errorf("effective deps %v should cover explicit p0#2", deps)
	}
}

func TestEffectiveDepsFirstMessageHasNoImplicit(t *testing.T) {
	m := msg(1, 1)
	if deps := m.EffectiveDeps(); len(deps) != 0 {
		t.Errorf("first message of a sequence should have no deps, got %v", deps)
	}
}

func TestEffectiveDepsDoesNotDuplicate(t *testing.T) {
	m := msg(1, 3, mid.MID{Proc: 1, Seq: 2})
	deps := m.EffectiveDeps()
	count := 0
	for _, d := range deps {
		if d.Proc == 1 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("own-sequence dep should appear once, got %v", deps)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		m  *Message
		ok bool
	}{
		{msg(0, 1), true},
		{msg(0, 2, mid.MID{Proc: 1, Seq: 5}), true},
		{&Message{}, false},                          // zero MID
		{msg(0, 2, mid.MID{}), false},                // zero dep
		{msg(0, 2, mid.MID{Proc: 0, Seq: 2}), false}, // self dep
		{msg(0, 2, mid.MID{Proc: 0, Seq: 9}), false}, // forward own-sequence dep
		{msg(0, 5, mid.MID{Proc: 0, Seq: 4}), true},  // backward own-sequence dep ok
	}
	for i, c := range cases {
		err := c.m.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestReadyAndMissing(t *testing.T) {
	processed := mid.SeqVector{2, 0, 1}
	m := msg(1, 1, mid.MID{Proc: 0, Seq: 2}, mid.MID{Proc: 2, Seq: 2})
	if Ready(m, processed) {
		t.Error("p2#2 not processed, should not be ready")
	}
	miss := MissingDeps(m, processed)
	if len(miss) != 1 || miss[0] != (mid.MID{Proc: 2, Seq: 2}) {
		t.Errorf("MissingDeps = %v", miss)
	}
	processed[2] = 2
	if !Ready(m, processed) {
		t.Error("all deps satisfied, should be ready")
	}
}

func TestReadyOutOfRangeProc(t *testing.T) {
	m := msg(0, 1, mid.MID{Proc: 9, Seq: 1})
	if Ready(m, mid.SeqVector{0, 0}) {
		t.Error("dep on process outside vector is never satisfied")
	}
}

func TestTrackerProcessContiguity(t *testing.T) {
	tr := NewTracker(3)
	if err := tr.Process(msg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Process(msg(0, 3)); err == nil {
		t.Error("skipping p0#2 must fail")
	}
	if err := tr.Process(msg(0, 2)); err != nil {
		t.Fatal(err)
	}
	if tr.LastProcessed(0) != 2 {
		t.Errorf("LastProcessed = %d", tr.LastProcessed(0))
	}
}

func TestTrackerReadyRespectsCrossDeps(t *testing.T) {
	tr := NewTracker(3)
	m := msg(1, 1, mid.MID{Proc: 0, Seq: 1})
	if tr.Ready(m) {
		t.Error("cross dep unsatisfied")
	}
	if err := tr.Process(msg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if !tr.Ready(m) {
		t.Error("cross dep satisfied now")
	}
}

func TestTrackerCondemn(t *testing.T) {
	tr := NewTracker(3)
	if err := tr.Process(msg(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Condemn(2, 1); err == nil {
		t.Error("cannot condemn an already-processed message")
	}
	if err := tr.Condemn(2, 3); err != nil {
		t.Fatal(err)
	}
	if !tr.IsCondemned(mid.MID{Proc: 2, Seq: 3}) || !tr.IsCondemned(mid.MID{Proc: 2, Seq: 9}) {
		t.Error("suffix from 3 should be condemned")
	}
	if tr.IsCondemned(mid.MID{Proc: 2, Seq: 2}) {
		t.Error("p2#2 not condemned")
	}
	// Widening.
	if err := tr.Condemn(2, 2); err != nil {
		t.Fatal(err)
	}
	if !tr.IsCondemned(mid.MID{Proc: 2, Seq: 2}) {
		t.Error("condemned range should widen to 2")
	}
	// Narrowing attempt is a no-op.
	if err := tr.Condemn(2, 5); err != nil {
		t.Fatal(err)
	}
	if tr.CondemnedFrom(2) != 2 {
		t.Errorf("CondemnedFrom = %d, want 2", tr.CondemnedFrom(2))
	}
}

func TestTrackerDoomedTransitively(t *testing.T) {
	tr := NewTracker(3)
	if err := tr.Condemn(0, 1); err != nil {
		t.Fatal(err)
	}
	m := msg(1, 1, mid.MID{Proc: 0, Seq: 1})
	if !tr.Doomed(m) {
		t.Error("message depending on condemned message is doomed")
	}
	if tr.Ready(m) {
		t.Error("doomed message is never ready")
	}
	clean := msg(2, 1)
	if tr.Doomed(clean) {
		t.Error("independent message is not doomed")
	}
}

func TestTrackerProcessCondemnedFails(t *testing.T) {
	tr := NewTracker(2)
	if err := tr.Condemn(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Process(msg(0, 1)); err == nil {
		t.Error("processing a condemned message must fail")
	}
}

func TestGraphDuplicateMID(t *testing.T) {
	g := NewGraph()
	if err := g.Add(msg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(msg(0, 1)); err == nil {
		t.Error("duplicate MID must be rejected")
	}
}

func TestGraphAcyclicAndTopo(t *testing.T) {
	g := NewGraph()
	// p0: m1 <- m2 ; p1: n1 depends on m2 ; p0#3 depends on n1.
	mustAdd(t, g, msg(0, 1))
	mustAdd(t, g, msg(0, 2))
	mustAdd(t, g, msg(1, 1, mid.MID{Proc: 0, Seq: 2}))
	mustAdd(t, g, msg(0, 3, mid.MID{Proc: 1, Seq: 1}))
	if err := g.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[mid.MID]int)
	for i, m := range order {
		pos[m.ID] = i
	}
	for _, m := range order {
		for _, d := range m.EffectiveDeps() {
			if dp, ok := pos[d]; ok && dp >= pos[m.ID] {
				t.Errorf("%v should come after dep %v", m.ID, d)
			}
		}
	}
}

func TestGraphDetectsCrossSequenceCycle(t *testing.T) {
	g := NewGraph()
	// p0#1 depends on p1#1, p1#1 depends on p0#1: a cycle that per-message
	// validation cannot see.
	mustAdd(t, g, msg(0, 1, mid.MID{Proc: 1, Seq: 1}))
	mustAdd(t, g, msg(1, 1, mid.MID{Proc: 0, Seq: 1}))
	if err := g.CheckAcyclic(); err == nil {
		t.Error("cycle should be detected")
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Error("TopoOrder on cyclic graph must fail")
	}
}

func mustAdd(t *testing.T, g *Graph, m *Message) {
	t.Helper()
	if err := g.Add(m); err != nil {
		t.Fatal(err)
	}
}

// Property: feeding any randomly generated acyclic message population to a
// Tracker in topological order always succeeds, and the final processed
// vector counts every message.
func TestTrackerConsumesAnyTopoOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		perProc := 1 + rng.Intn(6)
		g := NewGraph()
		// Generate sequences in causal-time order: message (p, s) may depend
		// on any (q, s') already generated.
		generated := mid.NewSeqVector(n)
		total := n * perProc
		for k := 0; k < total; k++ {
			p := mid.ProcID(k % n)
			s := generated[p] + 1
			var deps mid.DepList
			for q := 0; q < n; q++ {
				if mid.ProcID(q) == p || generated[q] == 0 {
					continue
				}
				if rng.Intn(2) == 0 {
					deps = append(deps, mid.MID{Proc: mid.ProcID(q), Seq: mid.Seq(1 + rng.Intn(int(generated[q])))})
				}
			}
			if err := g.Add(&Message{ID: mid.MID{Proc: p, Seq: s}, Deps: deps}); err != nil {
				t.Fatal(err)
			}
			generated[p] = s
		}
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tr := NewTracker(n)
		for _, m := range order {
			if !tr.Ready(m) {
				t.Fatalf("trial %d: %v not ready in topo order", trial, m.ID)
			}
			if err := tr.Process(m); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		if tr.Processed().Sum() != uint64(total) {
			t.Fatalf("trial %d: processed %d of %d", trial, tr.Processed().Sum(), total)
		}
	}
}

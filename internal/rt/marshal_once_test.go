package rt

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// drainInboxes runs every queued closure on the caller's goroutine. Only
// valid for clusters that were never Started (no loop goroutines racing).
func drainInboxes(c *Cluster) {
	for _, n := range c.nodes {
		for {
			select {
			case fn := <-n.inbox:
				fn()
			default:
				goto next
			}
		}
	next:
	}
}

func broadcastPDU() wire.PDU {
	return &wire.Data{Msg: causal.Message{
		ID:      mid.MID{Proc: 0, Seq: 1},
		Payload: make([]byte, 64),
	}}
}

// TestMeshBroadcastMarshalsOnce asserts the tentpole property on the
// in-process mesh: one Broadcast = exactly one wire marshal, however many
// peers receive the bytes.
func TestMeshBroadcastMarshalsOnce(t *testing.T) {
	c, err := NewCluster(liveConfig(5)) // never Started: inboxes drain manually
	if err != nil {
		t.Fatal(err)
	}
	tr := meshTransport{n: c.nodes[0]}
	before := wire.MarshalCalls()
	tr.Broadcast(broadcastPDU())
	if got := wire.MarshalCalls() - before; got != 1 {
		t.Fatalf("Broadcast to %d peers marshaled %d times, want exactly 1", c.N()-1, got)
	}
	// Every peer (and not the sender) holds exactly one datagram.
	for i, n := range c.nodes {
		want := 1
		if i == 0 {
			want = 0
		}
		if got := len(n.inbox); got != want {
			t.Errorf("node %d inbox holds %d datagrams, want %d", i, got, want)
		}
	}
	// Decoding the fan-out must not marshal either.
	before = wire.MarshalCalls()
	drainInboxes(c)
	if got := wire.MarshalCalls() - before; got != 0 {
		t.Errorf("receive path marshaled %d times, want 0", got)
	}
}

// TestMeshSendMarshalsOnce pins the unicast path to one marshal too.
func TestMeshSendMarshalsOnce(t *testing.T) {
	c, err := NewCluster(liveConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := meshTransport{n: c.nodes[0]}
	before := wire.MarshalCalls()
	tr.Send(1, broadcastPDU())
	if got := wire.MarshalCalls() - before; got != 1 {
		t.Fatalf("Send marshaled %d times, want exactly 1", got)
	}
	drainInboxes(c)
}

// TestMeshBroadcastAllocBudget guards the send side of the mesh fan-out.
// The budget covers the per-broadcast bookkeeping (shared-buffer refcount,
// one queued closure per peer, and a fresh wire buffer while none cycle
// back through the pool); a re-marshal-per-peer regression costs several
// allocations per peer and blows well past it.
func TestMeshBroadcastAllocBudget(t *testing.T) {
	c, err := NewCluster(liveConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	tr := meshTransport{n: c.nodes[0]}
	pdu := broadcastPDU()
	got := testing.AllocsPerRun(100, func() {
		tr.Broadcast(pdu)
	})
	drainInboxes(c)
	if got > 8 {
		t.Errorf("mesh Broadcast allocates %.1f/op, budget 8", got)
	}
}

// TestUDPBroadcastMarshalsOnce asserts the same property over the real
// socket transport: one Broadcast = one marshal = one framed buffer, fanned
// out to every peer with WriteToUDP.
func TestUDPBroadcastMarshalsOnce(t *testing.T) {
	addrs := freePorts(t, 3)
	n, err := NewUDPNode(UDPConfig{
		Config: core.Config{N: 3, K: 3, R: 8, SelfExclusion: true},
		Self:   0,
		Peers:  addrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	tr := udpTransport{n: n}
	before := wire.MarshalCalls()
	tr.Broadcast(broadcastPDU())
	if got := wire.MarshalCalls() - before; got != 1 {
		t.Fatalf("UDP Broadcast to %d peers marshaled %d times, want exactly 1", n.cfg.N-1, got)
	}
	before = wire.MarshalCalls()
	tr.Send(1, broadcastPDU())
	if got := wire.MarshalCalls() - before; got != 1 {
		t.Fatalf("UDP Send marshaled %d times, want exactly 1", got)
	}
}

//go:build linux && (amd64 || arm64)

package rt

import (
	"context"
	"fmt"
	"sync"
	"syscall"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
)

// refuseMmsg swaps both burst syscalls for ones the "kernel" refuses with
// ENOSYS, restoring the real ones on cleanup. The platform still *builds*
// the burst sender and receiver — the refusal happens at runtime, which is
// exactly the degradation path under test.
func refuseMmsg(t *testing.T) {
	t.Helper()
	prevSend, prevRecv := sendmmsgRaw, recvmmsgRaw
	sendmmsgRaw = func(fd uintptr, hdrs *mmsghdr, n int) (uintptr, syscall.Errno) {
		return 0, syscall.ENOSYS
	}
	recvmmsgRaw = func(fd uintptr, hdrs *mmsghdr, n int) (uintptr, syscall.Errno) {
		return 0, syscall.ENOSYS
	}
	t.Cleanup(func() { sendmmsgRaw, recvmmsgRaw = prevSend, prevRecv })
}

// TestMmsgRuntimeFallback pins the runtime degradation contract: a kernel
// that accepts socket construction but refuses sendmmsg/recvmmsg with
// ENOSYS must push the node onto classic single-datagram I/O, with every
// frame still arriving — the fallback is silent degradation, not loss.
// (mmsg tests mutate the package-level syscall seams, so this test must not
// run in parallel with other UDP tests; Go runs same-package tests
// sequentially unless t.Parallel is called, and none of these call it.)
func TestMmsgRuntimeFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	refuseMmsg(t)

	const n = 3
	reg := obs.New()
	peers := freePorts(t, n)
	nodes := make([]*UDPNode, n)
	for i := 0; i < n; i++ {
		node, err := NewUDPNode(UDPConfig{
			Config:        core.Config{N: n, K: 5, R: 16, SelfExclusion: true},
			Self:          mid.ProcID(i),
			Peers:         peers,
			RoundDuration: 3 * time.Millisecond,
			BatchWindow:   2 * time.Millisecond,
			Metrics:       reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The burst machinery must have been constructed — the whole point
		// is that the refusal arrives only once the syscall runs.
		if node.mmsend == nil {
			t.Fatal("burst sender was not built on a linux target")
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const perNode = 8
	var wg sync.WaitGroup
	errs := make(chan error, n*perNode)
	for i := 0; i < n; i++ {
		for k := 0; k < perNode; k++ {
			wg.Add(1)
			i, k := i, k
			go func() {
				defer wg.Done()
				if _, err := nodes[i].Send(ctx, []byte(fmt.Sprintf("fb%d-%d", i, k)), nil); err != nil {
					errs <- fmt.Errorf("node %d send %d: %w", i, k, err)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// No frame may be lost to the refusal: the group converges on the full
	// vector exactly as it would with the burst path live.
	want := mid.SeqVector{perNode, perNode, perNode}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for i := 0; i < n; i++ {
			var got mid.SeqVector
			sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
			err := nodes[i].Snapshot(sctx, func(p *core.Process) { got = p.Processed().Clone() })
			scancel()
			if err != nil || !got.Equal(want) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group never converged after mmsg ENOSYS fallback")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every sender must have latched the refusal and disabled its burst
	// path (checked via Snapshot so the read happens on the loop goroutine
	// that owns the sender).
	for i, node := range nodes {
		var disabled bool
		sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
		err := node.Snapshot(sctx, func(*core.Process) { disabled = node.mmsend.disabled })
		scancel()
		if err != nil {
			t.Fatal(err)
		}
		if !disabled {
			t.Errorf("node %d: burst sender still enabled after ENOSYS", i)
		}
	}
	// Frames moved despite the refused bursts.
	if reg.Counter("udp_send_datagrams_total").Value() == 0 {
		t.Error("no datagrams accounted on the classic fallback path")
	}
}

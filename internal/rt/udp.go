package rt

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/faultrt"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/wire"
)

// UDPConfig configures a group member running over real UDP sockets — the
// deployment the paper's concluding remarks describe as the prototype over
// an Ethernet LAN. Rounds are driven by each member's local clock; drift
// and reordering surface as omissions, which the protocol repairs from
// history, so no clock synchronization service is required.
type UDPConfig struct {
	core.Config
	// Self is this member's identity; Peers[Self] must be our bind address.
	Self mid.ProcID
	// Peers maps every ProcID to its UDP address, e.g. "10.0.0.7:7701".
	Peers []string
	// RoundDuration is the wall-clock round length. It must comfortably
	// exceed the LAN round-trip time; default 20ms.
	RoundDuration time.Duration
	// BatchWindow enables the coalescing sender: Send calls arriving
	// within this window (or until the BatchMax / BatchBytes budgets fill
	// first) enter the protocol loop as one event and leave the next
	// subrun as DataBatch frames. Zero disables coalescing. When set
	// while BatchMax is zero, BatchMax defaults to core.DefaultBatchMax.
	BatchWindow time.Duration
	// InboxDepth bounds the datagram queue (default 4096).
	InboxDepth int
	// IndicationDepth bounds the indication queue (default 4096).
	IndicationDepth int
	// Metrics, when non-nil, receives live counters, gauges and
	// histograms for this member plus socket-level send/recv/drop
	// accounting. Nil costs nothing.
	Metrics *obs.Registry
	// Lifecycle, when non-nil, enables per-message lifecycle tracing
	// (spans readable via Lifecycle(), stage histograms fed into Metrics
	// when set). Nil keeps the hot path free of stage callbacks.
	Lifecycle *lifecycle.Options
	// Logf receives throttled operator-visible warnings: malformed or
	// oversize datagrams, socket errors — omissions that would otherwise
	// be silently recovered and invisible. Nil means log.Printf.
	Logf func(format string, args ...any)
	// Fault, when non-nil, consults a wall-clock fault injector at this
	// member's socket boundary: before each datagram is written, after
	// each datagram is read and validated, and once per tick to fail-stop
	// a scheduled crash of Self. The hook is local — it sees only this
	// member's boundary, so a cluster-wide schedule needs the same seeded
	// schedule on every member. Nil costs one pointer check per datagram.
	Fault *faultrt.Hook
	// Capture, when non-nil, records every frame crossing the socket —
	// ingress with the reader's discard verdict, egress with the fault
	// verdict — into a bounded flight recorder served on /capture and
	// replayable offline by urcgc-replay. Nil costs one pointer check per
	// datagram and zero allocations.
	Capture *capture.Ring
	// Joined, when non-nil, fires on the protocol loop goroutine when a
	// member started with Config.Join set is re-admitted by a decision and
	// resumes full participation — the urcgc-node restart path logs it.
	Joined func()
}

func (c *UDPConfig) fill() {
	if c.RoundDuration == 0 {
		c.RoundDuration = 20 * time.Millisecond
	}
	if c.BatchWindow > 0 && c.BatchMax == 0 {
		c.BatchMax = core.DefaultBatchMax
	}
	if c.InboxDepth == 0 {
		c.InboxDepth = 4096
	}
	if c.IndicationDepth == 0 {
		c.IndicationDepth = 4096
	}
}

// UDPNode is one live group member on a real network.
type UDPNode struct {
	cfg    UDPConfig
	proc   *core.Process
	conn   *net.UDPConn
	peers  []*net.UDPAddr
	obs    *NodeObs
	sock   *sockObs
	tracer *lifecycle.Tracer
	coal   *Coalescer  // nil unless BatchWindow is set
	mmsend *mmsgSender // nil where sendmmsg is unavailable

	// burstScratch collects the clean-verdict destinations of one
	// Broadcast for the burst syscall. Loop goroutine only.
	burstScratch []mid.ProcID

	inbox chan func()
	ind   chan Indication

	mu       sync.Mutex
	waiters  map[mid.MID]chan struct{}
	leftWith *core.LeaveReason

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	warnTh obs.Throttle // rate-limits operator-visible warnings
}

// warnf logs an operator-visible warning at a throttled rate (at most one
// line per second), appending how many similar warnings were suppressed in
// between so nothing is silently lost.
func (n *UDPNode) warnf(format string, args ...any) {
	suppressed, ok := n.warnTh.Allow()
	if !ok {
		return
	}
	if suppressed > 0 {
		format += fmt.Sprintf(" [+%d warnings suppressed]", suppressed)
	}
	n.cfg.Logf("rt[%d]: "+format, append([]any{int(n.cfg.Self)}, args...)...)
}

// capNote renders the warn-line suffix joining a discard to its captured
// frame, so udp_drop_* warnings are greppable against the /capture dump.
// Empty when capture is disabled.
func (n *UDPNode) capNote(seq uint64) string {
	if n.cfg.Capture == nil {
		return ""
	}
	return fmt.Sprintf(" [capture #%d]", seq)
}

// sockObs accounts socket-level traffic and the reader's silent discards.
// A nil *sockObs disables the counters but not the throttled logging.
type sockObs struct {
	recvDatagrams *obs.Counter
	recvBytes     *obs.Counter
	sendDatagrams *obs.Counter
	sendBytes     *obs.Counter
	sendErrors    *obs.Counter
	sendOversize  *obs.Counter
	dropShort     *obs.Counter
	dropBadSrc    *obs.Counter
	dropDecode    *obs.Counter
	dropOversize  *obs.Counter
	dropReadErr   *obs.Counter
	ticksSkipped  *obs.Counter
}

func newSockObs(reg *obs.Registry) *sockObs {
	if reg == nil {
		return nil
	}
	return &sockObs{
		recvDatagrams: reg.Counter("udp_recv_datagrams_total"),
		recvBytes:     reg.Counter("udp_recv_bytes_total"),
		sendDatagrams: reg.Counter("udp_send_datagrams_total"),
		sendBytes:     reg.Counter("udp_send_bytes_total"),
		sendErrors:    reg.Counter("udp_send_errors_total"),
		sendOversize:  reg.Counter("udp_send_oversize_total"),
		dropShort:     reg.Counter("udp_drop_short_total"),
		dropBadSrc:    reg.Counter("udp_drop_badsrc_total"),
		dropDecode:    reg.Counter("udp_drop_decode_total"),
		dropOversize:  reg.Counter("udp_drop_oversize_total"),
		dropReadErr:   reg.Counter("udp_drop_readerr_total"),
		ticksSkipped:  reg.Counter("udp_ticks_skipped_total"),
	}
}

// maxDatagram bounds received datagrams. The urcgc PDUs for paper-scale
// groups fit comfortably; jumbo decisions for very large n would need
// fragmentation, which the paper delegates to the transport layer.
const maxDatagram = 64 * 1024

// NewUDPNode binds the member's socket and prepares the protocol entity.
func NewUDPNode(cfg UDPConfig) (*UDPNode, error) {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Peers) != cfg.N {
		return nil, fmt.Errorf("rt: %d peers for group of %d", len(cfg.Peers), cfg.N)
	}
	if cfg.Self < 0 || int(cfg.Self) >= cfg.N {
		return nil, fmt.Errorf("rt: self %d outside group", cfg.Self)
	}
	n := &UDPNode{
		cfg:     cfg,
		obs:     NewNodeObs(cfg.Metrics, cfg.Self, cfg.N),
		sock:    newSockObs(cfg.Metrics),
		inbox:   make(chan func(), cfg.InboxDepth),
		ind:     make(chan Indication, cfg.IndicationDepth),
		waiters: make(map[mid.MID]chan struct{}),
		stopCh:  make(chan struct{}),
		peers:   make([]*net.UDPAddr, cfg.N),
	}
	if n.cfg.Logf == nil {
		n.cfg.Logf = log.Printf
	}
	for i, p := range cfg.Peers {
		addr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			return nil, fmt.Errorf("rt: peer %d %q: %w", i, p, err)
		}
		n.peers[i] = addr
	}
	conn, err := net.ListenUDP("udp", n.peers[cfg.Self])
	if err != nil {
		return nil, fmt.Errorf("rt: bind %q: %w", cfg.Peers[cfg.Self], err)
	}
	n.conn = conn
	cb := core.Callbacks{
		OnProcess: func(m *causal.Message) {
			n.mu.Lock()
			if ch, ok := n.waiters[m.ID]; ok {
				close(ch)
				delete(n.waiters, m.ID)
			}
			n.mu.Unlock()
			select {
			case n.ind <- Indication{Msg: *m}:
			default: // slow consumer: indication dropped, like a full SAP queue
				n.obs.IndicationDropped()
			}
		},
		OnLeave: func(r core.LeaveReason) {
			n.mu.Lock()
			n.leftWith = &r
			for _, ch := range n.waiters {
				close(ch)
			}
			n.waiters = map[mid.MID]chan struct{}{}
			n.mu.Unlock()
		},
		OnJoined: func() {
			if cfg.Joined != nil {
				cfg.Joined()
			}
		},
	}
	if cfg.Lifecycle != nil {
		opts := *cfg.Lifecycle
		if opts.Blame == nil && cfg.Fault != nil {
			opts.Blame = cfg.Fault.Blame
		}
		n.tracer = lifecycle.New(cfg.Self, cfg.N, opts, cfg.Metrics)
	}
	proc, err := core.NewProcess(cfg.Self, cfg.Config, udpTransport{n: n}, InstallLifecycle(n.tracer, n.obs.Install(cb)))
	if err != nil {
		conn.Close()
		return nil, err
	}
	n.proc = proc
	n.obs.MarkJoining(cfg.Join)
	if cfg.BatchWindow > 0 {
		n.coal = NewCoalescer(cfg.BatchWindow, cfg.BatchMax, cfg.BatchBytes,
			n.enqueueCommand, n.submitNow, n.obs.Coalesced)
	}
	n.mmsend = newMmsgSender(n) // nil → single-syscall fallback
	n.burstScratch = make([]mid.ProcID, 0, cfg.N)
	return n, nil
}

// enqueueCommand hands a user command to the protocol loop, blocking while
// the inbox is full — commands are not datagrams and must not be lost.
func (n *UDPNode) enqueueCommand(fn func()) error {
	select {
	case n.inbox <- fn:
		return nil
	case <-n.stopCh:
		return fmt.Errorf("rt: node stopped")
	}
}

// Lifecycle returns the member's message-lifecycle tracer, or nil when
// tracing is disabled. Safe from any goroutine.
func (n *UDPNode) Lifecycle() *lifecycle.Tracer { return n.tracer }

// LocalAddr returns the bound UDP address (useful with port 0 in tests), or
// nil when it is unavailable — a closed socket reports a nil address, and a
// wrapped conn may report a non-UDP one; a status probe must not panic on
// either, so the type assertion is checked.
func (n *UDPNode) LocalAddr() *net.UDPAddr {
	addr, _ := n.conn.LocalAddr().(*net.UDPAddr)
	return addr
}

// Start launches the reader, the round clock and the protocol loop.
func (n *UDPNode) Start() {
	n.wg.Add(3)
	go func() { defer n.wg.Done(); n.reader() }()
	go func() { defer n.wg.Done(); n.clock() }()
	go func() { defer n.wg.Done(); n.loop() }()
}

// Stop halts the member and closes its socket. Any submissions still
// pending inside an open coalescer window are failed, so no Send is left
// waiting on a confirm that can never come.
func (n *UDPNode) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopCh)
		n.conn.Close()
		n.coal.Stop()
	})
	n.wg.Wait()
}

// Indications returns the urcgc-data.Ind stream.
func (n *UDPNode) Indications() <-chan Indication { return n.ind }

// Left reports whether and why the member halted itself.
func (n *UDPNode) Left() (core.LeaveReason, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leftWith == nil {
		return 0, false
	}
	return *n.leftWith, true
}

// submitNow runs one queued submission. Loop goroutine only.
func (n *UDPNode) submitNow(s *Submission) {
	var id mid.MID
	var err error
	if s.Causal {
		id, err = n.proc.SubmitCausal(s.Payload)
	} else {
		id, err = n.proc.Submit(s.Payload, s.Deps)
	}
	if err == nil {
		n.mu.Lock()
		n.waiters[id] = s.Confirm
		n.mu.Unlock()
	}
	s.Res <- SubResult{id, err}
}

// Send is the urcgc-data.Rq/Conf pair over UDP. With BatchWindow set,
// concurrent Sends coalesce into DataBatch frames; each still blocks until
// its own message is processed locally.
func (n *UDPNode) Send(ctx context.Context, payload []byte, deps mid.DepList) (mid.MID, error) {
	t0 := time.Now()
	s := &Submission{
		Payload: payload,
		Deps:    deps,
		Res:     make(chan SubResult, 1),
		Confirm: make(chan struct{}),
	}
	if n.coal != nil {
		n.coal.Add(s)
	} else {
		select {
		case n.inbox <- func() { n.submitNow(s) }:
		case <-n.stopCh:
			return mid.MID{}, fmt.Errorf("rt: node stopped")
		case <-ctx.Done():
			return mid.MID{}, ctx.Err()
		}
	}
	var r SubResult
	select {
	case r = <-s.Res:
	case <-n.stopCh:
		return mid.MID{}, fmt.Errorf("rt: node stopped")
	case <-ctx.Done():
		return mid.MID{}, ctx.Err()
	}
	if r.Err != nil {
		return mid.MID{}, r.Err
	}
	select {
	case <-s.Confirm:
	case <-n.stopCh:
		n.unwait(r.ID, s.Confirm)
		return r.ID, fmt.Errorf("rt: node stopped")
	case <-ctx.Done():
		n.unwait(r.ID, s.Confirm)
		return r.ID, ctx.Err()
	}
	n.obs.ObserveConfirm(t0)
	return r.ID, nil
}

// unwait removes a registered confirm waiter, but only if it is still the
// registered one, so a Send abandoned on shutdown or context cancellation
// does not leak its map entry. OnProcess deletes the entry when the message
// is processed and OnLeave clears the map wholesale; unwait covers the
// abandoned-while-in-flight path.
func (n *UDPNode) unwait(id mid.MID, ch chan struct{}) {
	n.mu.Lock()
	if n.waiters[id] == ch {
		delete(n.waiters, id)
	}
	n.mu.Unlock()
}

// Snapshot runs fn with safe access to the protocol entity.
func (n *UDPNode) Snapshot(ctx context.Context, fn func(p *core.Process)) error {
	done := make(chan struct{})
	select {
	case n.inbox <- func() { fn(n.proc); close(done) }:
	case <-n.stopCh:
		return fmt.Errorf("rt: node stopped")
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-n.stopCh:
		return fmt.Errorf("rt: node stopped")
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (n *UDPNode) loop() {
	for {
		select {
		case <-n.stopCh:
			return
		case fn := <-n.inbox:
			fn()
		}
	}
}

func (n *UDPNode) clock() {
	t := time.NewTicker(n.cfg.RoundDuration)
	defer t.Stop()
	var rounds *obs.Counter
	if n.cfg.Metrics != nil {
		rounds = n.cfg.Metrics.Counter("rt_rounds_total")
	}
	round := 0
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			if n.cfg.Fault.Crashed(n.cfg.Self) {
				continue // fail-stopped: a crashed site stops ticking
			}
			r := round
			round++
			n.obs.SampleInbox(len(n.inbox))
			select {
			case n.inbox <- func() { n.obs.MarkRound(r); n.proc.StartRound(r) }:
				if rounds != nil {
					rounds.Inc()
				}
			default: // overloaded: skipping a tick is an omission
				if n.sock != nil {
					n.sock.ticksSkipped.Inc()
				}
				n.warnf("round tick %d skipped: inbox full (overload omission)", r)
			}
		}
	}
}

// errMmsgUnsupported is the burst receiver's "fall back to the classic
// reader" signal: the platform built the receiver but the running kernel
// refused the syscall.
var errMmsgUnsupported = fmt.Errorf("rt: recvmmsg unsupported by kernel")

func (n *UDPNode) reader() {
	if m := newMmsgReceiver(n); m != nil {
		if n.readerBurst(m) {
			return
		}
		// recvmmsg refused at runtime: classic path takes over.
	}
	// One byte of slack past maxDatagram distinguishes an exactly-full
	// datagram from one the kernel truncated to fit the buffer.
	buf := make([]byte, maxDatagram+1)
	for {
		sz, from, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.stopCh:
				return
			default:
				if n.sock != nil {
					n.sock.dropReadErr.Inc()
				}
				n.warnf("socket read error (datagram lost): %v", err)
				continue // transient read error: a datagram lost
			}
		}
		n.handleDatagram(buf[:sz], from)
	}
}

// readerBurst drains the socket with recvmmsg: each wakeup ingests up to a
// whole burst of datagrams in one syscall. Per-datagram handling is
// identical to the classic reader. Reports whether it ran to shutdown
// (false asks the caller to fall back to the classic loop).
func (n *UDPNode) readerBurst(m *mmsgReceiver) bool {
	for {
		cnt, err := m.recv()
		if err == errMmsgUnsupported {
			return false
		}
		if err != nil {
			select {
			case <-n.stopCh:
				return true
			default:
				if n.sock != nil {
					n.sock.dropReadErr.Inc()
				}
				n.warnf("socket burst read error (datagrams lost): %v", err)
				continue
			}
		}
		for i := 0; i < cnt; i++ {
			n.handleDatagram(m.packet(i), m.from(i))
		}
	}
}

// handleDatagram validates, decodes and enqueues one received datagram.
// pkt is valid only for the duration of the call (the read buffer is
// reused); from is used for warnings only and may be reused by the caller.
func (n *UDPNode) handleDatagram(pkt []byte, from *net.UDPAddr) {
	sz := len(pkt)
	if n.sock != nil {
		n.sock.recvDatagrams.Inc()
		n.sock.recvBytes.Add(int64(sz))
	}
	if sz > maxDatagram {
		if n.sock != nil {
			n.sock.dropOversize.Inc()
		}
		seq := n.cfg.Capture.Record(capture.DirIngress, 0, mid.None, capture.DropOversize, 0, nil)
		n.warnf("oversize datagram from %v truncated past %d bytes: dropped%s", from, maxDatagram, n.capNote(seq))
		return
	}
	group, src, body, err := wire.ParseEnvelope(pkt)
	if err != nil {
		if n.sock != nil {
			n.sock.dropShort.Inc()
		}
		seq := n.cfg.Capture.Record(capture.DirIngress, 0, mid.None, capture.DropShort, 0, pkt)
		n.warnf("unparseable datagram (%d bytes) from %v: dropped%s", sz, from, n.capNote(seq))
		return
	}
	if group != 0 {
		if n.sock != nil {
			n.sock.dropBadSrc.Inc()
		}
		seq := n.cfg.Capture.Record(capture.DirIngress, group, src, capture.DropGroup, 0, body)
		n.warnf("datagram from %v for group %d on single-group node: dropped%s", from, group, n.capNote(seq))
		return
	}
	if src < 0 || int(src) >= n.cfg.N {
		if n.sock != nil {
			n.sock.dropBadSrc.Inc()
		}
		seq := n.cfg.Capture.Record(capture.DirIngress, 0, src, capture.DropBadSrc, 0, body)
		n.warnf("datagram from %v claims member %d outside group of %d: dropped%s", from, src, n.cfg.N, n.capNote(seq))
		return
	}
	act := n.cfg.Fault.Recv(src, n.cfg.Self)
	if act.Drop {
		n.cfg.Capture.Record(capture.DirIngress, 0, src, capture.FaultDrop, act.Kinds, body)
		return // injected receive omission (or crashed self)
	}
	// Decode in place: Unmarshal never aliases its input, so the read
	// buffer is immediately reusable for the next datagram — no
	// per-datagram copy or allocation.
	pdu, err := wire.Unmarshal(body)
	if err != nil {
		if n.sock != nil {
			n.sock.dropDecode.Inc()
		}
		seq := n.cfg.Capture.Record(capture.DirIngress, 0, src, capture.DropDecode, 0, body)
		n.warnf("undecodable datagram from %v (%d bytes): %v%s", from, sz, err, n.capNote(seq))
		return // malformed datagram: dropped
	}
	if !act.Faulty() {
		accepted := n.enqueueDatagram(func() { n.proc.Recv(src, pdu) })
		if n.cfg.Capture != nil {
			v := capture.Delivered
			if !accepted {
				v = capture.DropInbox
			}
			n.cfg.Capture.Record(capture.DirIngress, 0, src, v, 0, body)
		}
		return
	}
	n.cfg.Capture.Record(capture.DirIngress, 0, src, capture.Classify(capture.Delivered, act), act.Kinds, body)
	// Receive-side duplicates each decode their own self-owned PDU
	// before the read buffer is reused for the next datagram.
	var extra []wire.PDU
	for i := 0; i < act.Dup; i++ {
		d, derr := wire.Unmarshal(body)
		if derr != nil {
			break
		}
		extra = append(extra, d)
	}
	deliver := func() {
		n.enqueueDatagram(func() {
			n.proc.Recv(src, pdu)
			for _, d := range extra {
				n.proc.Recv(src, d)
			}
		})
	}
	if act.Delay > 0 {
		time.AfterFunc(act.Delay, deliver)
		return
	}
	deliver()
}

// enqueueDatagram hands a received datagram's closure to the protocol
// loop; a full inbox drops it, like any datagram. Reports whether the
// closure was accepted.
func (n *UDPNode) enqueueDatagram(fn func()) bool {
	select {
	case n.inbox <- fn:
		return true
	default:
		n.obs.InboxDropped(n.cfg.Self)
		return false
	}
}

// udpTransport sends PDUs as [src:4][marshaled PDU] datagrams.
type udpTransport struct{ n *UDPNode }

// frame encodes the group-0 envelope ([src:4][body], byte-identical to the
// pre-group framing) into one pooled buffer: the header is reserved up
// front so the PDU marshals directly behind it with no second buffer or
// copy. The caller owns the result until PutBuf.
func (t udpTransport) frame(pdu wire.PDU) ([]byte, error) {
	buf := wire.GetBuf(wire.EnvelopeSize(0) + pdu.EncodedSize())[:0]
	buf = wire.AppendEnvelope(buf, 0, t.n.cfg.Self)
	return wire.MarshalAppend(buf, pdu)
}

// write ships one framed datagram and accounts for it.
func (t udpTransport) write(dst mid.ProcID, frame []byte) {
	if _, err := t.n.conn.WriteToUDP(frame, t.n.peers[dst]); err != nil {
		// Loss is an omission the protocol repairs; count it anyway.
		if t.n.sock != nil {
			t.n.sock.sendErrors.Inc()
		}
		return
	}
	if t.n.sock != nil {
		t.n.sock.sendDatagrams.Inc()
		t.n.sock.sendBytes.Add(int64(len(frame)))
	}
}

// shipAct ships under an already-computed fault verdict, so the injector
// is consulted exactly once per datagram per destination regardless of
// which send path runs. Delayed copies clone the frame into their own
// pooled buffer because the caller reclaims frame on return.
func (t udpTransport) shipAct(dst mid.ProcID, frame []byte, act faultrt.Action) {
	if act.Drop {
		return // injected send omission (or crashed self)
	}
	if act.Delay > 0 {
		cp := append(wire.GetBuf(len(frame)), frame...)
		copies := 1 + act.Dup
		time.AfterFunc(act.Delay, func() {
			for c := 0; c < copies; c++ {
				t.write(dst, cp)
			}
			wire.PutBuf(cp)
		})
		return
	}
	for c := 0; c <= act.Dup; c++ {
		t.write(dst, frame)
	}
}

// checkSize rejects a frame no receiver would accept: it would only be
// sent for every peer to count it as udp_drop_oversize. Reported here at
// the sender, where the operator can actually act on it.
func (t udpTransport) checkSize(frame []byte, pdu wire.PDU) bool {
	if len(frame) <= maxDatagram {
		return true
	}
	if t.n.sock != nil {
		t.n.sock.sendOversize.Inc()
	}
	seq := t.n.cfg.Capture.Record(capture.DirEgress, 0, mid.None, capture.DropOversize, 0, nil)
	t.n.warnf("oversize %v frame (%d bytes > %d): dropped before send%s", pdu.Kind(), len(frame), maxDatagram, t.n.capNote(seq))
	return false
}

// recordEgress captures one outgoing frame under its fault verdict. The
// stored bytes are the PDU body behind the group-0 envelope — the record's
// Peer and Group fields carry what the envelope would.
func (n *UDPNode) recordEgress(dst mid.ProcID, act faultrt.Action, frame []byte) {
	if n.cfg.Capture == nil {
		return
	}
	n.cfg.Capture.Record(capture.DirEgress, 0, dst,
		capture.Classify(capture.Sent, act), act.Kinds, frame[wire.EnvelopeSize(0):])
}

func (t udpTransport) Send(dst mid.ProcID, pdu wire.PDU) {
	if dst == t.n.cfg.Self || dst < 0 || int(dst) >= t.n.cfg.N {
		return
	}
	frame, err := t.frame(pdu)
	if err != nil || !t.checkSize(frame, pdu) {
		wire.PutBuf(frame)
		return
	}
	act := t.n.cfg.Fault.Send(t.n.cfg.Self, dst)
	t.n.recordEgress(dst, act, frame)
	t.shipAct(dst, frame, act)
	wire.PutBuf(frame)
}

// Broadcast marshals the PDU exactly once and sends the same framed bytes
// to every peer — destinations with a clean fault verdict leave in one
// sendmmsg burst where the platform has it, the rest take the per-copy
// path. Neither sender retains the buffer, so it goes back to the pool
// after the fan-out.
func (t udpTransport) Broadcast(pdu wire.PDU) {
	frame, err := t.frame(pdu)
	if err != nil || !t.checkSize(frame, pdu) {
		wire.PutBuf(frame)
		return
	}
	if t.n.cfg.Capture != nil {
		t.n.cfg.Capture.Record(capture.DirEgress, 0, mid.None, capture.Sent, 0,
			frame[wire.EnvelopeSize(0):])
	}
	burst := t.n.burstScratch[:0]
	for i := 0; i < t.n.cfg.N; i++ {
		dst := mid.ProcID(i)
		if dst == t.n.cfg.Self {
			continue
		}
		act := t.n.cfg.Fault.Send(t.n.cfg.Self, dst)
		if act.Faulty() {
			t.n.recordEgress(dst, act, frame)
			t.shipAct(dst, frame, act)
			continue
		}
		burst = append(burst, dst)
	}
	t.n.burstScratch = burst[:0]
	if !t.n.mmsend.send(t.n, burst, frame) {
		for _, dst := range burst {
			t.write(dst, frame)
		}
	}
	wire.PutBuf(frame)
}

package rt

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
)

// nodeCounter reads a per-node labeled counter from the registry.
func nodeCounter(reg *obs.Registry, name string, node int) int64 {
	return reg.Counter(obs.Labeled(name, "node", fmt.Sprint(node))).Value()
}

func nodeGauge(reg *obs.Registry, name string, node int) int64 {
	return reg.Gauge(obs.Labeled(name, "node", fmt.Sprint(node))).Value()
}

// TestClusterMetrics runs a live in-process cluster with a metrics registry
// and asserts the tentpole series move: rounds tick, decisions land,
// confirms are timed, processed vectors stay monotone under concurrent
// Status sampling, and the history-length gauge falls back once stability
// cleaning has purged the delivered burst.
func TestClusterMetrics(t *testing.T) {
	reg := obs.New()
	cfg := liveConfig(3)
	cfg.Metrics = reg
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Sample Status concurrently with the traffic below: every member's
	// processed vector must be elementwise monotone across samples. This
	// is the off-loop observation path the accessor contract mandates.
	monDone := make(chan error, 1)
	monStop := make(chan struct{})
	go func() {
		prev := make([]mid.SeqVector, c.N())
		for {
			select {
			case <-monStop:
				monDone <- nil
				return
			case <-time.After(time.Millisecond):
			}
			for i := 0; i < c.N(); i++ {
				sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
				st, err := c.Node(mid.ProcID(i)).Status(sctx)
				scancel()
				if err != nil {
					monDone <- fmt.Errorf("status node %d: %v", i, err)
					return
				}
				if prev[i] != nil && !st.Processed.Dominates(prev[i]) {
					monDone <- fmt.Errorf("node %d processed went backwards: %v then %v", i, prev[i], st.Processed)
					return
				}
				prev[i] = st.Processed
			}
		}
	}()

	const perNode = 5
	for k := 0; k < perNode; k++ {
		for i := 0; i < c.N(); i++ {
			if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte(fmt.Sprintf("m%d-%d", i, k)), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitConverged(t, c, mid.SeqVector{perNode, perNode, perNode}, 20*time.Second)
	close(monStop)
	if err := <-monDone; err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("rt_rounds_total").Value(); got == 0 {
		t.Error("rt_rounds_total never incremented")
	}
	if got := reg.Histogram("rt_round_barrier_seconds", nil).Count(); got == 0 {
		t.Error("rt_round_barrier_seconds never observed")
	}
	for i := 0; i < c.N(); i++ {
		if got := nodeCounter(reg, "rt_decisions_total", i); got == 0 {
			t.Errorf("node %d: rt_decisions_total = 0", i)
		}
		if got := nodeCounter(reg, "rt_processed_total", i); got < perNode*int64(c.N()) {
			t.Errorf("node %d: rt_processed_total = %d, want ≥ %d", i, got, perNode*c.N())
		}
		lat := reg.Histogram(obs.Labeled("rt_confirm_latency_seconds", "node", fmt.Sprint(i)), nil)
		if lat.Count() < perNode {
			t.Errorf("node %d: confirm latency count = %d, want ≥ %d", i, lat.Count(), perNode)
		}
		if lat.Count() > 0 && lat.Mean() <= 0 {
			t.Errorf("node %d: confirm latency mean = %v", i, lat.Mean())
		}
		dlat := reg.Histogram(obs.Labeled("rt_decision_latency_seconds", "node", fmt.Sprint(i)), nil)
		if dlat.Count() == 0 {
			t.Errorf("node %d: rt_decision_latency_seconds never observed", i)
		}
	}

	// The burst filled history buffers; with traffic stopped, the rounds
	// keep running and full-group stability decisions purge them, so the
	// gauge must fall back to zero (Section 5's cleaning claim).
	deadline := time.Now().Add(15 * time.Second)
	for {
		drained := true
		for i := 0; i < c.N(); i++ {
			if nodeGauge(reg, "core_history_len", i) != 0 {
				drained = false
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < c.N(); i++ {
				t.Logf("node %d core_history_len = %d", i, nodeGauge(reg, "core_history_len", i))
			}
			t.Fatal("history gauges never fell back after stability cleaning")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsServedOverHTTP renders the live registry the way
// cmd/urcgc-node exposes it and checks the series a dashboard would
// scrape are present and non-zero.
func TestMetricsServedOverHTTP(t *testing.T) {
	reg := obs.New()
	cfg := liveConfig(2)
	cfg.Metrics = reg
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := c.Node(0).Send(ctx, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, mid.SeqVector{1, 0}, 10*time.Second)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE rt_rounds_total counter",
		`rt_decisions_total{node="0"}`,
		`core_history_len{node="1"}`,
		"rt_confirm_latency_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestUDPReaderCountsMalformedDatagrams feeds a live UDP member garbage
// and asserts the previously-silent discard paths now count each cause.
func TestUDPReaderCountsMalformedDatagrams(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	reg := obs.New()
	var logged int
	node, err := NewUDPNode(UDPConfig{
		Config:        core.Config{N: 1, K: 1, R: 3, SelfExclusion: true},
		Self:          0,
		Peers:         []string{"127.0.0.1:0"},
		RoundDuration: 5 * time.Millisecond,
		Metrics:       reg,
		Logf:          func(string, ...any) { logged++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	defer node.Stop()

	conn, err := net.Dial("udp", node.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Runt: shorter than the 4-byte source header.
	if _, err := conn.Write([]byte{0xff}); err != nil {
		t.Fatal(err)
	}
	// Bad source: header names member 99 of a 1-member group.
	bad := make([]byte, 8)
	binary.BigEndian.PutUint32(bad, 99)
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	// Undecodable: valid source 0, garbage PDU body.
	junk := make([]byte, 16)
	binary.BigEndian.PutUint32(junk, 0)
	for i := 4; i < len(junk); i++ {
		junk[i] = 0xee
	}
	if _, err := conn.Write(junk); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		short := reg.Counter("udp_drop_short_total").Value()
		badsrc := reg.Counter("udp_drop_badsrc_total").Value()
		decode := reg.Counter("udp_drop_decode_total").Value()
		if short >= 1 && badsrc >= 1 && decode >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drop counters: short=%d badsrc=%d decode=%d", short, badsrc, decode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Counter("udp_recv_datagrams_total").Value() < 3 {
		t.Errorf("udp_recv_datagrams_total = %d, want ≥ 3", reg.Counter("udp_recv_datagrams_total").Value())
	}
}

// TestInboxOverflowIsCountedAndTraced forces the rt inbox full path and
// asserts the drop is counted and leaves a trace event, not silence.
func TestInboxOverflowIsCountedAndTraced(t *testing.T) {
	reg := obs.New()
	cfg := liveConfig(2)
	cfg.Metrics = reg
	cfg.InboxDepth = 1
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// A tiny inbox under concurrent traffic overflows quickly; the
	// protocol recovers the omissions from history, so sends still confirm.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			for k := 0; k < 8; k++ {
				if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte(fmt.Sprintf("ov%d-%d", i, k)), nil); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c, mid.SeqVector{8, 8}, 20*time.Second)

	drops := nodeCounter(reg, "rt_inbox_dropped_total", 0) + nodeCounter(reg, "rt_inbox_dropped_total", 1)
	if drops == 0 {
		t.Skip("no overflow provoked this run (scheduling-dependent); counters wired but unexercised")
	}
	if reg.Events().Total() == 0 {
		t.Error("inbox drops counted but no trace events recorded")
	}
	found := false
	for _, e := range reg.Events().Events() {
		if strings.Contains(e.Msg, "inbox-drop") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no inbox-drop event in the log")
	}
}

package rt

import (
	"context"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

func TestConfigDefaultsFilled(t *testing.T) {
	cfg := Config{Config: core.Config{N: 2, K: 2, R: 5, SelfExclusion: true}}
	cfg.fill()
	if cfg.RoundDuration == 0 || cfg.InboxDepth == 0 || cfg.IndicationDepth == 0 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
	// Explicit values survive.
	cfg2 := Config{
		Config:        core.Config{N: 2, K: 2, R: 5, SelfExclusion: true},
		RoundDuration: time.Second, InboxDepth: 7, IndicationDepth: 9,
	}
	cfg2.fill()
	if cfg2.RoundDuration != time.Second || cfg2.InboxDepth != 7 || cfg2.IndicationDepth != 9 {
		t.Errorf("explicit values overwritten: %+v", cfg2)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := NewCluster(Config{Config: core.Config{N: 0}}); err == nil {
		t.Error("invalid core config must be rejected")
	}
}

func TestKilledNodeRejectsSends(t *testing.T) {
	c, err := NewCluster(liveConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	c.Node(1).Kill()
	if !c.Node(1).Killed() {
		t.Fatal("Killed not reported")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Node(1).Send(ctx, []byte("x"), nil); err == nil {
		t.Error("send on a killed node must fail")
	}
	// SendCausal too.
	if _, err := c.Node(1).SendCausal(ctx, []byte("x")); err == nil {
		t.Error("SendCausal on a killed node must fail")
	}
}

func TestLeftReportsNothingInitially(t *testing.T) {
	c, err := NewCluster(liveConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, left := c.Node(0).Left(); left {
		t.Error("fresh node should not have left")
	}
}

func TestSnapshotAfterStopFails(t *testing.T) {
	c, err := NewCluster(liveConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err = c.Node(0).Snapshot(ctx, func(*core.Process) {})
	if err == nil {
		t.Error("snapshot after Stop should fail")
	}
}

func TestContextCancelUnblocksSend(t *testing.T) {
	c, err := NewCluster(liveConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Cluster never started: nothing ticks, so the Confirm never comes.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := c.Node(0).Send(ctx, []byte("x"), nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("send should fail on context expiry")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send never unblocked")
	}
	c.Start()
	c.Stop()
}

func TestIndicationOrderPerSequence(t *testing.T) {
	c, err := NewCluster(liveConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	const k = 5
	for i := 0; i < k; i++ {
		if _, err := c.Node(0).Send(ctx, []byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Node 1 must observe node 0's sequence contiguously.
	var seen []mid.Seq
	for len(seen) < k {
		select {
		case ind := <-c.Node(1).Indications():
			if ind.Msg.ID.Proc == 0 {
				seen = append(seen, ind.Msg.ID.Seq)
			}
		case <-ctx.Done():
			t.Fatalf("starved after %v", seen)
		}
	}
	for i, s := range seen {
		if s != mid.Seq(i+1) {
			t.Fatalf("sequence broken: %v", seen)
		}
	}
}

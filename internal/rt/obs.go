package rt

import (
	"strconv"
	"time"

	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/wire"
)

// NodeObs holds one protocol entity's pre-resolved instruments, so hot
// paths touch atomics instead of registry maps. A nil *NodeObs disables
// everything. Exported so the multi-group runtime (internal/topics) reuses
// the same instrument set with an extra group label.
type NodeObs struct {
	reg *obs.Registry

	processed   *obs.Counter
	indDropped  *obs.Counter
	inboxDrops  *obs.Counter
	decisions   *obs.Counter
	recoveries  *obs.Counter
	retransmits *obs.Counter
	crashDecls  *obs.Counter
	discards    *obs.Counter

	viewChanges *obs.Counter
	joins       *obs.Counter // completed joins (this member re-entered the view)
	fastFwds    *obs.Counter // recovery fast-forwards over compacted history

	joiningG *obs.Gauge // 1 while this member is joining, 0 once admitted

	histLen     *obs.Gauge
	waitLen     *obs.Gauge
	pendingLen  *obs.Gauge
	inboxDepth  *obs.Gauge
	subrunG     *obs.Gauge
	coordG      *obs.Gauge
	aliveCount  *obs.Gauge
	decisionSub *obs.Gauge
	stableSum   *obs.Gauge

	decisionLat *obs.Histogram
	confirmLat  *obs.Histogram

	batchFrames *obs.Counter   // multi-message DataBatch frames broadcast
	batchMsgs   *obs.Counter   // user messages carried by those frames
	batchSize   *obs.Histogram // messages per DataBatch frame
	coalesceSz  *obs.Histogram // submissions per coalescer flush

	// subrunStart is the wall-clock open of the member's current subrun,
	// written and read only on the node loop goroutine.
	subrunStart time.Time
}

// NewNodeObs resolves the per-member instrument set for a group of n;
// nil registry → nil. Every series carries a node label; extraLabels
// appends further Prometheus label pairs (the multi-group runtime passes
// "group", "<g>" so each group's series stay separable).
func NewNodeObs(reg *obs.Registry, id mid.ProcID, n int, extraLabels ...string) *NodeObs {
	if reg == nil {
		return nil
	}
	kv := append([]string{"node", strconv.Itoa(int(id))}, extraLabels...)
	l := func(name string) string { return obs.Labeled(name, kv...) }
	o := &NodeObs{
		reg:         reg,
		processed:   reg.Counter(l("rt_processed_total")),
		indDropped:  reg.Counter(l("rt_indications_dropped_total")),
		inboxDrops:  reg.Counter(l("rt_inbox_dropped_total")),
		decisions:   reg.Counter(l("rt_decisions_total")),
		recoveries:  reg.Counter(l("core_recoveries_total")),
		retransmits: reg.Counter(l("core_retransmits_total")),
		crashDecls:  reg.Counter(l("core_crash_declarations_total")),
		discards:    reg.Counter(l("core_discards_total")),
		viewChanges: reg.Counter(l("core_view_changes_total")),
		joins:       reg.Counter(l("core_joins_total")),
		fastFwds:    reg.Counter(l("core_fast_forwards_total")),
		joiningG:    reg.Gauge(l("core_joining")),
		histLen:     reg.Gauge(l("core_history_len")),
		waitLen:     reg.Gauge(l("core_waiting_len")),
		pendingLen:  reg.Gauge(l("core_pending_len")),
		inboxDepth:  reg.Gauge(l("rt_inbox_depth")),
		subrunG:     reg.Gauge(l("core_subrun")),
		coordG:      reg.Gauge(l("core_coordinator")),
		aliveCount:  reg.Gauge(l("core_alive_count")),
		decisionSub: reg.Gauge(l("core_decision_subrun")),
		stableSum:   reg.Gauge(l("core_stable_sum")),
		decisionLat: reg.Histogram(l("rt_decision_latency_seconds"), obs.DurationBuckets),
		confirmLat:  reg.Histogram(l("rt_confirm_latency_seconds"), obs.DurationBuckets),
		batchFrames: reg.Counter(l("rt_batch_frames_total")),
		batchMsgs:   reg.Counter(l("rt_batch_msgs_total")),
		batchSize:   reg.Histogram(l("rt_batch_frame_msgs"), obs.LengthBuckets),
		coalesceSz:  reg.Histogram(l("rt_coalesce_flush_msgs"), obs.LengthBuckets),
	}
	o.aliveCount.Set(int64(n))
	return o
}

// Install extends a member's protocol callbacks with the observability
// hooks. The passed callbacks' own fields keep running first. All hooks
// execute on the node loop goroutine, like every core callback. Nil-safe.
func (o *NodeObs) Install(cb core.Callbacks) core.Callbacks {
	if o == nil {
		return cb
	}
	prevProcess, prevDecision := cb.OnProcess, cb.OnDecision
	cb.OnProcess = func(m *causal.Message) {
		if prevProcess != nil {
			prevProcess(m)
		}
		o.processed.Inc()
	}
	cb.OnDecision = func(d *wire.Decision) {
		if prevDecision != nil {
			prevDecision(d)
		}
		o.decisions.Inc()
		o.decisionSub.Set(d.Subrun)
		if !o.subrunStart.IsZero() {
			o.decisionLat.ObserveSince(o.subrunStart)
		}
	}
	prevBatch := cb.OnBatchBroadcast
	cb.OnBatchBroadcast = func(msgs, bytes int) {
		if prevBatch != nil {
			prevBatch(msgs, bytes)
		}
		o.batchFrames.Inc()
		o.batchMsgs.Add(int64(msgs))
		o.batchSize.Observe(float64(msgs))
	}
	prevSubrun := cb.OnSubrunStart
	cb.OnSubrunStart = func(s int64, coord mid.ProcID) {
		if prevSubrun != nil {
			prevSubrun(s, coord)
		}
		o.subrunG.Set(s)
		o.coordG.Set(int64(coord))
	}
	prevView := cb.OnViewChange
	cb.OnViewChange = func(alive []bool) {
		if prevView != nil {
			prevView(alive)
		}
		o.viewChanges.Inc()
		n := int64(0)
		for _, a := range alive {
			if a {
				n++
			}
		}
		o.aliveCount.Set(n)
	}
	prevStable := cb.OnStable
	cb.OnStable = func(clean mid.SeqVector) {
		if prevStable != nil {
			prevStable(clean)
		}
		var sum int64
		for _, s := range clean {
			sum += int64(s)
		}
		o.stableSum.Set(sum)
	}
	cb.OnRoundEnd = func(ro core.RoundObservation) {
		o.histLen.Set(int64(ro.HistoryLen))
		o.waitLen.Set(int64(ro.WaitingLen))
		o.pendingLen.Set(int64(ro.Pending))
	}
	prevInstalled := cb.OnJoinInstalled
	cb.OnJoinInstalled = func(stable mid.SeqVector) {
		if prevInstalled != nil {
			prevInstalled(stable)
		}
		// The counter is per-OS-process, but the prefix at or below the
		// installed watermark was processed by the member's previous
		// incarnation and is skipped by state transfer. Seed it so the
		// count stays comparable across the cluster (inspect's
		// progress-skew rule compares raw totals between members).
		var sum int64
		for _, s := range stable {
			sum += int64(s)
		}
		o.processed.Add(sum)
	}
	prevJoined := cb.OnJoined
	cb.OnJoined = func() {
		if prevJoined != nil {
			prevJoined()
		}
		o.joins.Inc()
		o.joiningG.Set(0)
	}
	prevFF := cb.OnFastForward
	cb.OnFastForward = func(q mid.ProcID, to mid.Seq) {
		if prevFF != nil {
			prevFF(q, to)
		}
		o.fastFwds.Inc()
	}
	cb.OnRecover = func(mid.ProcID, int) { o.recoveries.Inc() }
	cb.OnRetransmit = func(_ mid.ProcID, msgs int) { o.retransmits.Add(int64(msgs)) }
	cb.OnCrashDeclared = func(mid.ProcID) { o.crashDecls.Inc() }
	prevDiscard := cb.OnDiscard
	cb.OnDiscard = func(m *causal.Message) {
		if prevDiscard != nil {
			prevDiscard(m)
		}
		o.discards.Inc()
	}
	return cb
}

// MarkJoining publishes whether the member is currently a joiner (the
// core_joining gauge). Called at process construction; the OnJoined hook
// clears it when the join completes.
func (o *NodeObs) MarkJoining(v bool) {
	if o == nil {
		return
	}
	if v {
		o.joiningG.Set(1)
	} else {
		o.joiningG.Set(0)
	}
}

// MarkRound notes the subrun open for decision-latency measurement. Loop
// goroutine only.
func (o *NodeObs) MarkRound(r int) {
	if o == nil || r%2 != 0 {
		return
	}
	o.subrunStart = time.Now()
}

// Coalesced records one coalescer flush of n submissions. Safe from any
// goroutine.
func (o *NodeObs) Coalesced(n int) {
	if o != nil {
		o.coalesceSz.Observe(float64(n))
	}
}

// IndicationDropped counts a slow consumer losing an indication.
func (o *NodeObs) IndicationDropped() {
	if o != nil {
		o.indDropped.Inc()
	}
}

// InboxDropped counts a datagram refused by a full inbox and records the
// by-design omission as a trace event, so the recovery path is verifiable
// from the log rather than assumed.
func (o *NodeObs) InboxDropped(id mid.ProcID) {
	if o == nil {
		return
	}
	o.inboxDrops.Inc()
	o.reg.Events().Addf("inbox-drop node=%d (full inbox: omission, recovered from history)", id)
}

// ObserveConfirm records one Rq→Conf latency (the paper's delay, wall-
// clock edition). Safe from any goroutine.
func (o *NodeObs) ObserveConfirm(t0 time.Time) {
	if o != nil {
		o.confirmLat.ObserveSince(t0)
	}
}

// SampleInbox publishes the current inbox depth. Safe from any goroutine.
func (o *NodeObs) SampleInbox(depth int) {
	if o != nil {
		o.inboxDepth.Set(int64(depth))
	}
}

// Processed returns the number of messages processed at this member so far
// — the per-group shutdown-summary count of the multi-group runtime. Safe
// from any goroutine; 0 when observability is disabled.
func (o *NodeObs) Processed() int64 {
	if o == nil {
		return 0
	}
	return o.processed.Value()
}

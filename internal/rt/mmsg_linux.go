//go:build linux && (amd64 || arm64)

package rt

import (
	"net"
	"syscall"
	"unsafe"

	"urcgc/internal/mid"
)

// Burst datagram I/O via sendmmsg(2)/recvmmsg(2), straight from the
// syscall package — no cgo, no external modules. One broadcast fan-out or
// one reader wakeup moves a whole burst of datagrams per syscall. Anything
// unusual — an IPv6 peer, a kernel without the syscalls, a raw-conn
// failure — falls back to the classic one-syscall-per-datagram path.

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// kernel-written datagram length. Go's natural alignment reproduces the
// kernel's padding on every linux target.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
}

// mmsgBurst is how many datagrams one recvmmsg may drain.
const mmsgBurst = 8

// sendmmsgRaw/recvmmsgRaw are the raw burst syscalls behind one seam, so
// the runtime-fallback tests can make a kernel that built the burst path
// refuse it afterwards (ENOSYS) without a special kernel. Replaced only in
// tests, before any node starts.
var sendmmsgRaw = func(fd uintptr, hdrs *mmsghdr, n int) (uintptr, syscall.Errno) {
	r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(hdrs)), uintptr(n), 0, 0, 0)
	return r, errno
}

var recvmmsgRaw = func(fd uintptr, hdrs *mmsghdr, n int) (uintptr, syscall.Errno) {
	r, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
		uintptr(unsafe.Pointer(hdrs)), uintptr(n), 0, 0, 0)
	return r, errno
}

// mmsgSender ships one frame to many destinations in a single sendmmsg.
// Owned by the protocol loop goroutine; no locking.
type mmsgSender struct {
	rc       syscall.RawConn
	sas      []syscall.RawSockaddrInet4 // per-peer, precomputed
	hdrs     []mmsghdr
	iovs     []syscall.Iovec
	disabled bool // kernel refused sendmmsg: classic path from now on
}

// newMmsgSender returns nil when the burst path cannot be used, which the
// callers treat as "use WriteToUDP per destination".
func newMmsgSender(n *UDPNode) *mmsgSender {
	rc, err := n.conn.SyscallConn()
	if err != nil {
		return nil
	}
	sas := make([]syscall.RawSockaddrInet4, len(n.peers))
	for i, a := range n.peers {
		ip4 := a.IP.To4()
		if ip4 == nil {
			return nil // IPv6 peer: classic path
		}
		p := uint16(a.Port)
		// sin_port is network byte order read as a native uint16.
		sas[i] = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: p<<8 | p>>8}
		copy(sas[i].Addr[:], ip4)
	}
	return &mmsgSender{
		rc:   rc,
		sas:  sas,
		hdrs: make([]mmsghdr, len(n.peers)),
		iovs: make([]syscall.Iovec, len(n.peers)),
	}
}

// send ships frame to every listed destination in as few sendmmsg calls
// as possible, with full socket accounting. It reports false when the
// caller should take the classic per-destination path instead (nil
// sender, burst of one, or sendmmsg unsupported).
func (m *mmsgSender) send(n *UDPNode, dsts []mid.ProcID, frame []byte) bool {
	if m == nil || m.disabled || len(dsts) < 2 || len(frame) == 0 {
		return false
	}
	for i, dst := range dsts {
		m.iovs[i].Base = &frame[0]
		m.iovs[i].SetLen(len(frame))
		m.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&m.sas[dst])),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     &m.iovs[i],
			Iovlen:  1,
		}}
	}
	sent, errs, fellBack := 0, 0, false
	werr := m.rc.Write(func(fd uintptr) bool {
		for sent < len(dsts) {
			r, errno := sendmmsgRaw(fd, &m.hdrs[sent], len(dsts)-sent)
			switch errno {
			case 0:
				sent += int(r)
			case syscall.EAGAIN:
				return false // wait for writability, then resume
			case syscall.EINTR:
				continue
			case syscall.ENOSYS, syscall.EOPNOTSUPP:
				if sent == 0 {
					m.disabled = true
					fellBack = true // nothing left the socket yet
					return true
				}
				errs = len(dsts) - sent
				return true
			default:
				// Loss is an omission the protocol repairs; count the rest.
				errs = len(dsts) - sent
				return true
			}
		}
		return true
	})
	if fellBack {
		return false
	}
	if werr != nil {
		errs = len(dsts) - sent // raw-conn failure (e.g. closing socket)
	}
	if n.sock != nil {
		n.sock.sendDatagrams.Add(int64(sent))
		n.sock.sendBytes.Add(int64(sent * len(frame)))
		n.sock.sendErrors.Add(int64(errs))
	}
	return true
}

// mmsgReceiver drains the socket in recvmmsg bursts. Owned by the reader
// goroutine; no locking.
type mmsgReceiver struct {
	rc   syscall.RawConn
	bufs [][]byte
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sas  []syscall.RawSockaddrAny
	addr net.UDPAddr // scratch for from(); warnings only, never retained
}

// newMmsgReceiver returns nil when burst receive cannot be used; the
// reader then runs its classic ReadFromUDP loop.
func newMmsgReceiver(n *UDPNode) *mmsgReceiver {
	rc, err := n.conn.SyscallConn()
	if err != nil {
		return nil
	}
	m := &mmsgReceiver{
		rc:   rc,
		bufs: make([][]byte, mmsgBurst),
		hdrs: make([]mmsghdr, mmsgBurst),
		iovs: make([]syscall.Iovec, mmsgBurst),
		sas:  make([]syscall.RawSockaddrAny, mmsgBurst),
	}
	for i := range m.bufs {
		// One byte of slack past maxDatagram distinguishes an exactly-full
		// datagram from a kernel-truncated one, like the classic reader.
		m.bufs[i] = make([]byte, maxDatagram+1)
	}
	return m
}

// recv blocks until at least one datagram arrives and returns how many
// burst slots the kernel filled. errMmsgUnsupported asks the caller to
// fall back to the classic reader.
func (m *mmsgReceiver) recv() (int, error) {
	for i := range m.hdrs {
		m.iovs[i].Base = &m.bufs[i][0]
		m.iovs[i].SetLen(len(m.bufs[i]))
		m.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&m.sas[i])),
			Namelen: syscall.SizeofSockaddrAny,
			Iov:     &m.iovs[i],
			Iovlen:  1,
		}}
	}
	got := 0
	var sysErr error
	err := m.rc.Read(func(fd uintptr) bool {
		r, errno := recvmmsgRaw(fd, &m.hdrs[0], len(m.hdrs))
		switch errno {
		case 0:
			got = int(r)
		case syscall.EAGAIN, syscall.EINTR:
			return false // wait on the poller, then retry
		case syscall.ENOSYS, syscall.EOPNOTSUPP:
			sysErr = errMmsgUnsupported
		default:
			sysErr = errno
		}
		return true
	})
	if err != nil {
		return 0, err // raw-conn failure: the socket is closing
	}
	return got, sysErr
}

// packet returns slot i's received bytes, valid until the next recv.
func (m *mmsgReceiver) packet(i int) []byte {
	return m.bufs[i][:m.hdrs[i].len]
}

// from decodes slot i's source address into a reused scratch UDPAddr —
// for warnings only; callees must not retain it. The port byte swap
// assumes a little-endian host, which covers every supported linux
// target; a wrong port in a warning line is cosmetic anyway.
func (m *mmsgReceiver) from(i int) *net.UDPAddr {
	sa := &m.sas[i]
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		m.addr.IP = append(m.addr.IP[:0], sa4.Addr[:]...)
		m.addr.Port = int(sa4.Port>>8 | sa4.Port<<8)
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		m.addr.IP = append(m.addr.IP[:0], sa6.Addr[:]...)
		m.addr.Port = int(sa6.Port>>8 | sa6.Port<<8)
	default:
		m.addr = net.UDPAddr{}
	}
	return &m.addr
}

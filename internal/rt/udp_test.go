package rt

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// freePorts grabs n distinct loopback UDP ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

func TestUDPGroupConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	const n = 3
	peers := freePorts(t, n)
	nodes := make([]*UDPNode, n)
	for i := 0; i < n; i++ {
		node, err := NewUDPNode(UDPConfig{
			Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
			Self:          mid.ProcID(i),
			Peers:         peers,
			RoundDuration: 3 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const perNode = 4
	for k := 0; k < perNode; k++ {
		for i := 0; i < n; i++ {
			if _, err := nodes[i].Send(ctx, []byte(fmt.Sprintf("u%d-%d", i, k)), nil); err != nil {
				t.Fatalf("node %d send %d: %v", i, k, err)
			}
		}
	}
	want := mid.SeqVector{perNode, perNode, perNode}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for i := 0; i < n; i++ {
			var got mid.SeqVector
			sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
			err := nodes[i].Snapshot(sctx, func(p *core.Process) { got = p.Processed().Clone() })
			scancel()
			if err != nil || !got.Equal(want) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < n; i++ {
				var got mid.SeqVector
				sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
				_ = nodes[i].Snapshot(sctx, func(p *core.Process) { got = p.Processed().Clone() })
				scancel()
				t.Logf("node %d: %v", i, got)
			}
			t.Fatal("UDP group never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestUDPConfigValidation(t *testing.T) {
	_, err := NewUDPNode(UDPConfig{
		Config: core.Config{N: 3, K: 2, R: 5, SelfExclusion: true},
		Self:   0,
		Peers:  []string{"127.0.0.1:0"},
	})
	if err == nil {
		t.Error("peer count mismatch must fail")
	}
	_, err = NewUDPNode(UDPConfig{
		Config: core.Config{N: 2, K: 2, R: 5, SelfExclusion: true},
		Self:   5,
		Peers:  []string{"127.0.0.1:0", "127.0.0.1:0"},
	})
	if err == nil {
		t.Error("self out of range must fail")
	}
	_, err = NewUDPNode(UDPConfig{
		Config: core.Config{N: 1, K: 1, R: 3, SelfExclusion: true},
		Self:   0,
		Peers:  []string{"not-an-address"},
	})
	if err == nil {
		t.Error("bad address must fail")
	}
}

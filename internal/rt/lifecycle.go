package rt

import (
	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// InstallLifecycle extends a member's callbacks with the lifecycle stage
// hooks. A nil tracer returns cb untouched, so the send/deliver hot path
// carries no tracing branches when the layer is disabled — the same
// optional-callback pattern NodeObs uses. Apply it after NodeObs.Install
// so the chains compose; every hook runs on the goroutine driving the
// protocol entity. Exported so the multi-group runtime (internal/topics)
// chains the same stage hooks onto its per-group sessions.
func InstallLifecycle(tr *lifecycle.Tracer, cb core.Callbacks) core.Callbacks {
	if tr == nil {
		return cb
	}
	prevGenerate := cb.OnGenerate
	cb.OnGenerate = func(m *causal.Message) {
		if prevGenerate != nil {
			prevGenerate(m)
		}
		tr.Generated(m.ID)
	}
	prevBroadcast := cb.OnBroadcast
	cb.OnBroadcast = func(m *causal.Message) {
		if prevBroadcast != nil {
			prevBroadcast(m)
		}
		tr.Broadcast(m.ID)
	}
	prevWait := cb.OnWait
	cb.OnWait = func(m *causal.Message, missing mid.DepList) {
		if prevWait != nil {
			prevWait(m, missing)
		}
		tr.Waiting(m.ID, missing)
	}
	// nodeObs installs OnStable for the stability-sum gauge; chain it, do
	// not overwrite.
	prevStable := cb.OnStable
	cb.OnStable = func(clean mid.SeqVector) {
		if prevStable != nil {
			prevStable(clean)
		}
		tr.StableTo(clean)
	}
	prevProcess := cb.OnProcess
	cb.OnProcess = func(m *causal.Message) {
		if prevProcess != nil {
			prevProcess(m)
		}
		tr.Processed(m.ID)
	}
	prevDiscard := cb.OnDiscard
	cb.OnDiscard = func(m *causal.Message) {
		if prevDiscard != nil {
			prevDiscard(m)
		}
		tr.Discarded(m.ID)
	}
	prevDecision := cb.OnDecision
	cb.OnDecision = func(d *wire.Decision) {
		if prevDecision != nil {
			prevDecision(d)
		}
		tr.DecisionApplied(d.MaxProcessed)
	}
	prevRound := cb.OnRoundEnd
	cb.OnRoundEnd = func(ro core.RoundObservation) {
		if prevRound != nil {
			prevRound(ro)
		}
		tr.Tick() // the watchdog heartbeat: self-rate-limited
	}
	return cb
}

package rt

import (
	"context"
	"strings"
	"testing"
	"time"

	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/wire"
)

// nopTransport drops every PDU: the receive path under test never replies.
type nopTransport struct{}

func (nopTransport) Send(mid.ProcID, wire.PDU) {}
func (nopTransport) Broadcast(wire.PDU)        {}

// driveWaitCascade measures the allocations of the park-then-cascade
// deliver path on a bare process: each run parks (1, s+1) on its unmet
// implicit predecessor, then delivers (1, s) and cascades both. The PDUs
// are prebuilt so only the deliver path itself is measured.
func driveWaitCascade(t *testing.T, cb core.Callbacks) float64 {
	t.Helper()
	p, err := core.NewProcess(0, core.Config{N: 3, K: 3, R: 8, SelfExclusion: true},
		nopTransport{}, cb)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 500
	payload := make([]byte, 16)
	msgs := make([]*wire.Data, 2*(runs+2))
	for i := range msgs {
		msgs[i] = &wire.Data{Msg: causal.Message{
			ID:      mid.MID{Proc: 1, Seq: mid.Seq(i + 1)},
			Payload: payload,
		}}
	}
	// Warm the scratch buffer and containers outside the measured region.
	p.Recv(1, msgs[1])
	p.Recv(1, msgs[0])
	i := 2
	got := testing.AllocsPerRun(runs, func() {
		p.Recv(1, msgs[i+1]) // parks: implicit dep (1, i) missing
		p.Recv(1, msgs[i])   // ready: processes, cascade releases i+1
		i += 2
	})
	if want := mid.Seq(2 * (runs + 2)); p.Processed()[1] != want {
		t.Fatalf("processed up to %d, want %d (driver bug)", p.Processed()[1], want)
	}
	return got
}

// TestLifecycleDisabledAllocFree proves the overhead contract from two
// directions. With tracing disabled, installLifecycle is the identity and
// the nil-gated OnWait/OnStable branches never run, so the deliver path
// costs exactly what it did before this layer existed — pinned against the
// pre-existing EffectiveDeps clones in the readiness checks so tracing
// creep into the disabled path shows up as a budget blowout. And the one
// new computation the wait path can run, missingDeps, must be free: with a
// no-op OnWait installed, the scratch buffer keeps the delta at zero
// allocations per message.
func TestLifecycleDisabledAllocFree(t *testing.T) {
	if cb := InstallLifecycle(nil, core.Callbacks{}); cb.OnGenerate != nil ||
		cb.OnBroadcast != nil || cb.OnWait != nil || cb.OnStable != nil {
		t.Fatal("InstallLifecycle(nil, ...) must not install stage hooks")
	}
	disabled := driveWaitCascade(t, core.Callbacks{})
	// The park+deliver pair's pre-existing cost: EffectiveDeps clones in
	// Ready/Process plus waitlist bookkeeping. Not zero, but fixed; the
	// lifecycle branches must add nothing to it.
	if disabled > 13 {
		t.Errorf("deliver path with tracing disabled allocates %.2f/op, budget 13", disabled)
	}
	withWait := driveWaitCascade(t, core.Callbacks{
		OnWait: func(m *causal.Message, missing mid.DepList) {},
	})
	if extra := withWait - disabled; extra > 0.5 {
		t.Errorf("missingDeps adds %.2f allocs/op over the disabled path, want 0 (scratch regression)", extra)
	}
}

// TestLiveLifecycleTrace runs the in-process mesh with tracing enabled and
// checks a message's span picks up every stage, including uniform
// stability, and that the stage histograms fill.
func TestLiveLifecycleTrace(t *testing.T) {
	reg := obs.New()
	cfg := liveConfig(3)
	cfg.Metrics = reg
	cfg.Lifecycle = &lifecycle.Options{SlowThreshold: 10 * time.Second}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := c.Node(0).Send(ctx, []byte("hello"), nil); err != nil {
			t.Fatal(err)
		}
	}

	tr := c.Node(0).Lifecycle()
	if tr == nil {
		t.Fatal("Lifecycle() = nil with tracing enabled")
	}
	// Stability needs the full-group clean_to to circulate; poll for it.
	var span lifecycle.Span
	deadline := time.Now().Add(8 * time.Second)
	for {
		found := false
		for _, s := range tr.TopSlowest(16) {
			if s.ID == (mid.MID{Proc: 0, Seq: 1}) {
				span, found = s, true
			}
		}
		if found && !span.StableAt.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("span (0,1) never reached stability; have %+v", span)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if span.GeneratedAt.IsZero() || span.BroadcastAt.IsZero() || span.ProcessedAt.IsZero() || span.DecidedAt.IsZero() {
		t.Fatalf("own-message span missing stages: %+v", span)
	}
	if span.Outcome != lifecycle.Processed {
		t.Fatalf("outcome = %v", span.Outcome)
	}
	if c := tr.Counts(); c.Completed < 5 {
		t.Fatalf("node 0 completed %d spans, want >= 5", c.Completed)
	}
	// A remote member saw the same messages without the origin-only stages.
	// Its processing of the later messages may trail node 0's stability of
	// the first, so poll.
	for {
		if c1 := c.Node(1).Lifecycle().Counts(); c1.Completed >= 5 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("node 1 completed %d spans, want >= 5", c1.Completed)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := reg.Histogram(obs.Labeled("lifecycle_emit_to_process_seconds", "node", "0"), nil); h.Count() < 5 {
		t.Fatalf("emit_to_process histogram count = %d", h.Count())
	}
	if h := reg.Histogram(obs.Labeled("lifecycle_stability_lag_seconds", "node", "0", "sender", "0"), nil); h.Count() == 0 {
		t.Fatal("stability_lag histogram empty")
	}
	r := tr.Report(5, 5)
	if r.Counts.Completed < 5 || len(r.Recent) == 0 {
		t.Fatalf("report = %+v", r)
	}
	var sb strings.Builder
	tr.WriteSlowest(&sb, 5)
	if !strings.Contains(sb.String(), "end-to-end") {
		t.Fatalf("WriteSlowest output:\n%s", sb.String())
	}
}

// TestLifecycleDisabledByDefault pins the default-off contract.
func TestLifecycleDisabledByDefault(t *testing.T) {
	c, err := NewCluster(liveConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(0).Lifecycle() != nil {
		t.Fatal("Lifecycle() non-nil without opting in")
	}
}

package rt

import (
	"context"
	"fmt"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
)

// TestProtocolHealthGauges runs a live cluster and asserts the gauge set
// the health layer consumes actually moves: the subrun/token position
// advances, decisions stamp their subrun, the stability frontier sum
// rises after full-group cleaning, and a kill shows up as a view change
// with a falling alive count.
func TestProtocolHealthGauges(t *testing.T) {
	reg := obs.New()
	cfg := liveConfig(3)
	cfg.Metrics = reg
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < c.N(); i++ {
		if got := nodeGauge(reg, "core_alive_count", i); got != 3 {
			t.Errorf("node %d: core_alive_count = %d at start, want 3", i, got)
		}
	}

	const perNode = 4
	for k := 0; k < perNode; k++ {
		for i := 0; i < c.N(); i++ {
			if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte(fmt.Sprintf("h%d-%d", i, k)), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitConverged(t, c, mid.SeqVector{perNode, perNode, perNode}, 20*time.Second)

	// Token, decision and stability gauges must all have advanced; poll
	// for stability since full-group cleaning trails convergence.
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		for i := 0; i < c.N(); i++ {
			if nodeGauge(reg, "core_stable_sum", i) < perNode*int64(c.N()) {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < c.N(); i++ {
				t.Logf("node %d core_stable_sum = %d", i, nodeGauge(reg, "core_stable_sum", i))
			}
			t.Fatal("stability frontier never covered the delivered burst")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < c.N(); i++ {
		if got := nodeGauge(reg, "core_subrun", i); got == 0 {
			t.Errorf("node %d: core_subrun never advanced", i)
		}
		if got := nodeGauge(reg, "core_decision_subrun", i); got == 0 {
			t.Errorf("node %d: core_decision_subrun never advanced", i)
		}
		if got := nodeGauge(reg, "core_coordinator", i); got < 0 || got >= int64(c.N()) {
			t.Errorf("node %d: core_coordinator = %d outside group", i, got)
		}
	}

	// Fail-stop node 2: survivors must declare it, which surfaces as one
	// view change and an alive count of 2 on each survivor.
	c.Node(2).Kill()
	deadline = time.Now().Add(15 * time.Second)
	for {
		ok := true
		for i := 0; i < 2; i++ {
			if nodeGauge(reg, "core_alive_count", i) != 2 || nodeCounter(reg, "core_view_changes_total", i) == 0 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < 2; i++ {
				t.Logf("node %d alive=%d changes=%d", i,
					nodeGauge(reg, "core_alive_count", i), nodeCounter(reg, "core_view_changes_total", i))
			}
			t.Fatal("kill never surfaced as a view change on the survivors")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSamplerDisabledDeliverAllocFree is the flight-recorder counterpart
// of the lifecycle disabled-path guard: with metrics installed but no
// sampler attached, the deliver hot path must cost exactly what it costs
// bare — the per-node instruments are pre-resolved atomics and the new
// subrun/view/stability hooks never run on deliver.
func TestSamplerDisabledDeliverAllocFree(t *testing.T) {
	bare := driveWaitCascade(t, core.Callbacks{})
	o := NewNodeObs(obs.New(), 0, 3)
	instrumented := driveWaitCascade(t, o.Install(core.Callbacks{}))
	if extra := instrumented - bare; extra > 0.5 {
		t.Errorf("metrics hooks add %.2f allocs/op to the deliver path, want 0", extra)
	}
}

// Package rt runs the urcgc protocol in real time: one goroutine per group
// member, channel-based datagram transport, and wall-clock rounds. It is
// the non-simulated runtime behind the examples and the UDP node (the
// paper's "prototype over an Ethernet LAN" — Section 7).
//
// Every PDU crossing a node boundary goes through the wire codec, so the
// in-process mesh exercises exactly the bytes a real network would carry,
// and a full inbox drops the datagram — an omission the protocol recovers
// from by design.
package rt

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/faultrt"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/wire"
)

// Config configures a live cluster.
type Config struct {
	core.Config
	// RoundDuration is the wall-clock length of one protocol round. It
	// must comfortably exceed the in-process delivery time; the default
	// of 2ms is generous.
	RoundDuration time.Duration
	// BatchWindow enables the coalescing sender: Send/SendCausal calls
	// arriving within this window (or until the BatchMax / BatchBytes
	// budgets fill first) enter the node goroutine as one inbox event and
	// leave the next subrun as DataBatch frames. Zero disables
	// coalescing: every Send is its own inbox event and subruns carry at
	// most BatchMax messages. When set while BatchMax is zero, BatchMax
	// defaults to core.DefaultBatchMax so the batches actually drain.
	BatchWindow time.Duration
	// InboxDepth bounds each node's datagram queue; overflow drops, like
	// any datagram network. Default 4096.
	InboxDepth int
	// IndicationDepth bounds each session's indication queue. Default 4096.
	IndicationDepth int
	// Metrics, when non-nil, receives live counters, gauges and
	// histograms for every node (per-node series carry a node label) and
	// trace events for by-design omissions. Nil costs nothing.
	Metrics *obs.Registry
	// Lifecycle, when non-nil, enables per-message lifecycle tracing on
	// every node (spans readable via Node.Lifecycle, histograms fed into
	// Metrics when set). Nil keeps the hot path free of stage callbacks.
	Lifecycle *lifecycle.Options
	// Fault, when non-nil, consults a wall-clock fault injector at the
	// transport boundary: before each datagram leaves its sender, after it
	// reaches its receiver, and once per round to fail-stop scheduled
	// crashes. Nil costs one pointer check per datagram. When Lifecycle is
	// also set, stuck-span watchdog lines name the injected fault that
	// plausibly caused the stall.
	Fault *faultrt.Hook
	// JoinInstalled, when non-nil, fires on a restarted member's loop
	// goroutine the moment its new incarnation installs the sponsor's
	// state-transfer snapshot — before it processes anything. The chaos
	// harness rebaselines its invariant checker here.
	JoinInstalled func(node mid.ProcID, stable mid.SeqVector)
	// Joined, when non-nil, fires on the member's loop goroutine when a
	// restarted incarnation is re-admitted by a decision and resumes full
	// protocol participation.
	Joined func(node mid.ProcID)
	// FastForwarded, when non-nil, fires on the member's loop goroutine
	// when recovery tells it that of's sequence through to was purged as
	// uniformly stable, so its frontier skipped the gap instead of
	// processing it.
	FastForwarded func(node mid.ProcID, of mid.ProcID, to mid.Seq)
	// Captures, when non-nil, holds one flight recorder per member
	// (indexed by ProcID; nil entries and members past the slice length
	// are disabled): every frame crossing the mesh transport is recorded —
	// egress on the sender's ring with its send-side fault verdict,
	// ingress on the receiver's ring with its receive-side verdict — so a
	// soak's anomaly can be dumped and replayed offline by urcgc-replay.
	Captures []*capture.Ring
}

func (c *Config) fill() {
	if c.RoundDuration == 0 {
		c.RoundDuration = 2 * time.Millisecond
	}
	if c.BatchWindow > 0 && c.BatchMax == 0 {
		c.BatchMax = core.DefaultBatchMax
	}
	if c.InboxDepth == 0 {
		c.InboxDepth = 4096
	}
	if c.IndicationDepth == 0 {
		c.IndicationDepth = 4096
	}
}

// Indication is the urcgc-data.Ind primitive: a message processed at this
// member, delivered in causal order.
type Indication struct {
	Msg causal.Message
}

// Cluster is an in-process group of live nodes.
type Cluster struct {
	cfg   Config
	nodes []*Node

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewCluster builds (but does not start) a live group.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, stopCh: make(chan struct{})}
	c.nodes = make([]*Node, cfg.N)
	for i := range c.nodes {
		c.nodes[i] = newNode(c, mid.ProcID(i))
	}
	for i := range c.nodes {
		if err := c.nodes[i].init(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Start launches every node goroutine and the round clock.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n := n
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			n.loop()
		}()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.clock()
	}()
}

// Stop halts the cluster and waits for every goroutine to exit. Any
// submissions still pending inside an open coalescer window are failed, so
// no Send is left waiting on a confirm that can never come.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		for _, n := range c.nodes {
			n.coal.Stop()
		}
	})
	c.wg.Wait()
}

// Node returns member i.
func (c *Cluster) Node(i mid.ProcID) *Node { return c.nodes[i] }

// Restart revives member i as a joiner — the kill-and-restart experiment.
// The fresh incarnation solicits a live sponsor, installs the state
// transfer and re-enters the view through a decision; the suicide rule
// becomes "leave, resync, rejoin". The swap happens on the node's loop
// goroutine, so in-flight datagrams never see a half-built entity; the
// killed flag clears afterwards, which also means the caller must first
// make sure any Fault injector no longer reports the member crashed, or
// the next round tick re-kills it. Confirm waiters of the previous
// incarnation stay registered: a message the new incarnation recovers and
// processes confirms normally, one lost with the crash waits out its
// context — exactly a restarted client's uncertainty.
func (c *Cluster) Restart(ctx context.Context, i mid.ProcID) error {
	if i < 0 || int(i) >= c.N() {
		return fmt.Errorf("rt: restart of member %d outside group of %d", i, c.N())
	}
	n := c.nodes[i]
	p, err := n.makeProc(true)
	if err != nil {
		return err
	}
	done := make(chan struct{})
	if err := n.enqueueWait(ctx, func() {
		n.proc = p
		close(done)
	}); err != nil {
		return err
	}
	select {
	case <-done:
	case <-c.stopCh:
		return fmt.Errorf("rt: cluster stopped")
	case <-ctx.Done():
		return ctx.Err()
	}
	n.mu.Lock()
	n.killed = false
	n.leftWith = nil
	n.mu.Unlock()
	return nil
}

// N returns the group cardinality.
func (c *Cluster) N() int { return c.cfg.N }

// clock drives rounds in lockstep: every node finishes round r before any
// node starts round r+1, and at least RoundDuration elapses per round. The
// barrier removes scheduler-starvation artifacts (a node ticking late looks
// like an omission-faulty process and would eventually be excluded); the
// UDP runtime, whose members run on separate machines, uses free-running
// clocks instead and relies on the protocol's omission recovery.
func (c *Cluster) clock() {
	var rounds *obs.Counter
	var barrier *obs.Histogram
	if c.cfg.Metrics != nil {
		rounds = c.cfg.Metrics.Counter("rt_rounds_total")
		barrier = c.cfg.Metrics.Histogram("rt_round_barrier_seconds", obs.DurationBuckets)
	}
	round := 0
	for {
		start := time.Now()
		r := round
		round++
		dones := make([]chan struct{}, len(c.nodes))
		for i, n := range c.nodes {
			n := n
			if c.cfg.Fault.Crashed(n.id) {
				n.Kill()
			}
			n.obs.SampleInbox(len(n.inbox))
			done := make(chan struct{})
			dones[i] = done
			select {
			case n.inbox <- func() {
				if !n.Killed() {
					n.obs.MarkRound(r)
					n.proc.StartRound(r)
				}
				close(done)
			}:
			case <-c.stopCh:
				return
			}
		}
		for _, done := range dones {
			select {
			case <-done:
			case <-c.stopCh:
				return
			}
		}
		if rounds != nil {
			rounds.Inc()
			barrier.ObserveSince(start)
		}
		if rest := c.cfg.RoundDuration - time.Since(start); rest > 0 {
			select {
			case <-time.After(rest):
			case <-c.stopCh:
				return
			}
		}
	}
}

// Node is one live group member: a core.Process owned by a single
// goroutine, fed ticks, datagrams and user commands through its inbox.
type Node struct {
	c      *Cluster
	id     mid.ProcID
	proc   *core.Process
	obs    *NodeObs
	tracer *lifecycle.Tracer
	coal   *Coalescer // nil unless BatchWindow is set

	inbox chan func()
	ind   chan Indication
	cap   *capture.Ring // nil disables frame capture

	mu       sync.Mutex
	waiters  map[mid.MID]chan struct{}
	leftWith *core.LeaveReason
	killed   bool
	dropped  int
}

func newNode(c *Cluster, id mid.ProcID) *Node {
	n := &Node{
		c:       c,
		id:      id,
		obs:     NewNodeObs(c.cfg.Metrics, id, c.cfg.N),
		inbox:   make(chan func(), c.cfg.InboxDepth),
		ind:     make(chan Indication, c.cfg.IndicationDepth),
		waiters: make(map[mid.MID]chan struct{}),
	}
	if int(id) < len(c.cfg.Captures) {
		n.cap = c.cfg.Captures[id]
	}
	if c.cfg.Lifecycle != nil {
		opts := *c.cfg.Lifecycle
		if opts.Blame == nil && c.cfg.Fault != nil {
			opts.Blame = c.cfg.Fault.Blame
		}
		n.tracer = lifecycle.New(id, c.cfg.N, opts, c.cfg.Metrics)
	}
	if c.cfg.BatchWindow > 0 {
		n.coal = NewCoalescer(c.cfg.BatchWindow, c.cfg.BatchMax, c.cfg.BatchBytes,
			func(fn func()) error { return n.enqueueWait(context.Background(), fn) },
			n.submitNow, n.obs.Coalesced)
	}
	return n
}

func (n *Node) init() error {
	p, err := n.makeProc(false)
	if err != nil {
		return err
	}
	n.proc = p
	return nil
}

// callbacks builds the node's protocol callbacks: indication fan-out,
// confirm waiters, leave bookkeeping, and the cluster-level join hooks.
func (n *Node) callbacks() core.Callbacks {
	return core.Callbacks{
		OnProcess: func(m *causal.Message) {
			n.mu.Lock()
			if ch, ok := n.waiters[m.ID]; ok {
				close(ch)
				delete(n.waiters, m.ID)
			}
			n.mu.Unlock()
			select {
			case n.ind <- Indication{Msg: *m}:
			default: // slow consumer: indication dropped, like a full SAP queue
				n.obs.IndicationDropped()
			}
		},
		OnLeave: func(r core.LeaveReason) {
			n.mu.Lock()
			n.leftWith = &r
			for _, ch := range n.waiters {
				close(ch)
			}
			n.waiters = map[mid.MID]chan struct{}{}
			n.mu.Unlock()
		},
		OnJoinInstalled: func(stable mid.SeqVector) {
			if n.c.cfg.JoinInstalled != nil {
				n.c.cfg.JoinInstalled(n.id, stable)
			}
		},
		OnJoined: func() {
			if n.c.cfg.Joined != nil {
				n.c.cfg.Joined(n.id)
			}
		},
		OnFastForward: func(q mid.ProcID, to mid.Seq) {
			if n.c.cfg.FastForwarded != nil {
				n.c.cfg.FastForwarded(n.id, q, to)
			}
		},
	}
}

// makeProc builds a fresh protocol entity for this member slot, joining or
// founding.
func (n *Node) makeProc(join bool) (*core.Process, error) {
	cfg := n.c.cfg.Config
	cfg.Join = join
	p, err := core.NewProcess(n.id, cfg, meshTransport{n: n}, InstallLifecycle(n.tracer, n.obs.Install(n.callbacks())))
	if err != nil {
		return nil, err
	}
	n.obs.MarkJoining(join)
	return p, nil
}

// Lifecycle returns the node's message-lifecycle tracer, or nil when
// tracing is disabled. Safe from any goroutine.
func (n *Node) Lifecycle() *lifecycle.Tracer { return n.tracer }

// enqueue hands a closure to the node goroutine; a full inbox drops it
// (datagram semantics). It reports whether the closure was accepted.
func (n *Node) enqueue(fn func()) bool {
	select {
	case n.inbox <- fn:
		return true
	default:
		n.mu.Lock()
		n.dropped++
		n.mu.Unlock()
		n.obs.InboxDropped(n.id)
		return false
	}
}

// enqueueWait hands a closure to the node goroutine, blocking while the
// inbox is full — user commands are not datagrams and must not be lost.
func (n *Node) enqueueWait(ctx context.Context, fn func()) error {
	select {
	case n.inbox <- fn:
		return nil
	case <-n.c.stopCh:
		return fmt.Errorf("rt: cluster stopped")
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (n *Node) loop() {
	for {
		select {
		case <-n.c.stopCh:
			return
		case fn := <-n.inbox:
			fn()
		}
	}
}

// Kill fail-stops the node: from now on it neither ticks nor receives,
// exactly like a crashed site. The rest of the group will detect the
// silence and exclude it. Used by the fault-injection examples and tests.
func (n *Node) Kill() {
	n.mu.Lock()
	n.killed = true
	n.mu.Unlock()
}

// Killed reports whether the node was fail-stopped.
func (n *Node) Killed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.killed
}

// ID returns the member identifier.
func (n *Node) ID() mid.ProcID { return n.id }

// Indications returns the urcgc-data.Ind stream: every message processed at
// this member, in causal order.
func (n *Node) Indications() <-chan Indication { return n.ind }

// Left returns the reason this member halted, if it has.
func (n *Node) Left() (core.LeaveReason, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leftWith == nil {
		return 0, false
	}
	return *n.leftWith, true
}

// unwait removes a registered confirm waiter, but only if it is still the
// registered one, so an abandoned Send does not leak its map entry (and
// does not remove a successor's). OnProcess deletes the entry when the
// message is processed and OnLeave clears the map wholesale; unwait covers
// the remaining path, a Send abandoned on context cancellation while the
// message is still in flight.
func (n *Node) unwait(id mid.MID, ch chan struct{}) {
	n.mu.Lock()
	if n.waiters[id] == ch {
		delete(n.waiters, id)
	}
	n.mu.Unlock()
}

// Send implements the urcgc-data.Rq/Conf primitive pair: it submits the
// payload with the given explicit cross-sequence dependencies and blocks
// until the message has been processed locally (the Confirm), or the
// context ends.
func (n *Node) Send(ctx context.Context, payload []byte, deps mid.DepList) (mid.MID, error) {
	return n.send(ctx, payload, deps, false)
}

// SendCausal is Send with the conservative depend-on-everything-seen
// labelling computed inside the node goroutine.
func (n *Node) SendCausal(ctx context.Context, payload []byte) (mid.MID, error) {
	return n.send(ctx, payload, nil, true)
}

// submitNow runs one queued submission. Loop goroutine only.
func (n *Node) submitNow(s *Submission) {
	if n.Killed() {
		s.Res <- SubResult{Err: fmt.Errorf("rt: member %d is fail-stopped", n.id)}
		return
	}
	var id mid.MID
	var err error
	if s.Causal {
		id, err = n.proc.SubmitCausal(s.Payload)
	} else {
		id, err = n.proc.Submit(s.Payload, s.Deps)
	}
	if err == nil {
		n.mu.Lock()
		n.waiters[id] = s.Confirm
		n.mu.Unlock()
	}
	s.Res <- SubResult{id, err}
}

func (n *Node) send(ctx context.Context, payload []byte, deps mid.DepList, causal bool) (mid.MID, error) {
	t0 := time.Now()
	s := &Submission{
		Payload: payload,
		Deps:    deps,
		Causal:  causal,
		Res:     make(chan SubResult, 1),
		Confirm: make(chan struct{}),
	}
	if n.coal != nil {
		n.coal.Add(s)
	} else if err := n.enqueueWait(ctx, func() { n.submitNow(s) }); err != nil {
		return mid.MID{}, err
	}
	var r SubResult
	select {
	case r = <-s.Res:
	case <-n.c.stopCh:
		return mid.MID{}, fmt.Errorf("rt: cluster stopped")
	case <-ctx.Done():
		return mid.MID{}, ctx.Err()
	}
	if r.Err != nil {
		return mid.MID{}, r.Err
	}
	select {
	case <-s.Confirm:
	case <-n.c.stopCh:
		n.unwait(r.ID, s.Confirm)
		return r.ID, fmt.Errorf("rt: cluster stopped")
	case <-ctx.Done():
		n.unwait(r.ID, s.Confirm)
		return r.ID, ctx.Err()
	}
	if _, left := n.Left(); left {
		return r.ID, fmt.Errorf("rt: member %d left the group", n.id)
	}
	n.obs.ObserveConfirm(t0)
	return r.ID, nil
}

// Dropped returns how many datagrams this node's inbox refused because it
// was full — omissions by design, which the protocol recovers from. Safe
// from any goroutine.
func (n *Node) Dropped() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// Snapshot runs fn inside the node goroutine with safe access to the
// protocol entity, and waits for it. Use it for reads (views, vectors).
// The core.Process accessors are loop-goroutine-only; fn runs on that
// goroutine, so accessors may be called freely inside it, but nothing
// reached through p (views, vectors, history) may be retained after fn
// returns without cloning. For the common fields, Status packages a
// cloned, race-free sample.
func (n *Node) Snapshot(ctx context.Context, fn func(p *core.Process)) error {
	done := make(chan struct{})
	if err := n.enqueueWait(ctx, func() {
		fn(n.proc)
		close(done)
	}); err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// meshTransport carries PDUs between in-process nodes through the wire
// codec, byte-for-byte as a real datagram network would.
type meshTransport struct {
	n *Node
}

// sharedBuf is a pooled wire buffer fanned out to several receivers: the
// last reference released returns it to the wire pool. Receivers decode
// concurrently, which is safe because reads of the shared bytes are
// read-only and Unmarshal never aliases its input.
type sharedBuf struct {
	buf  []byte
	refs atomic.Int32
}

func (s *sharedBuf) release() {
	if s.refs.Add(-1) == 0 {
		wire.PutBuf(s.buf)
	}
}

func (t meshTransport) Send(dst mid.ProcID, pdu wire.PDU) {
	if dst == t.n.id || dst < 0 || int(dst) >= t.n.c.N() {
		return
	}
	buf, err := wire.MarshalAppend(wire.GetBuf(pdu.EncodedSize()), pdu)
	if err != nil {
		wire.PutBuf(buf)
		return // unencodable PDUs never leave the node
	}
	if t.n.Killed() {
		wire.PutBuf(buf)
		return // a crashed site emits nothing
	}
	if act := t.n.c.cfg.Fault.Send(t.n.id, dst); act.Faulty() {
		t.n.cap.Record(capture.DirEgress, 0, dst, capture.Classify(capture.Sent, act), act.Kinds, buf)
		if act.Drop {
			wire.PutBuf(buf)
			return
		}
		sh := &sharedBuf{buf: buf}
		sh.refs.Store(1)
		t.fanout(t.n.c.nodes[dst], buf, sh, act)
		sh.release()
		return
	}
	t.n.cap.Record(capture.DirEgress, 0, dst, capture.Sent, 0, buf)
	if !t.deliver(t.n.c.nodes[dst], buf, nil) {
		wire.PutBuf(buf)
	}
}

// fanout hands one destination its copies of a datagram: 1+Dup copies,
// each optionally delayed. Every copy takes its own reference on sh;
// refused copies release immediately, delayed copies hold theirs until the
// timer delivers. With a zero Action this is exactly one immediate copy.
func (t meshTransport) fanout(target *Node, buf []byte, sh *sharedBuf, act faultrt.Action) {
	for c := 0; c <= act.Dup; c++ {
		sh.refs.Add(1)
		if act.Delay > 0 {
			time.AfterFunc(act.Delay, func() {
				if !t.deliver(target, buf, sh) {
					sh.release()
				}
			})
			continue
		}
		if !t.deliver(target, buf, sh) {
			sh.release()
		}
	}
}

// Broadcast marshals the PDU exactly once and fans the same byte slice out
// to every peer; each receiver decodes its own self-owned PDU from the
// shared bytes.
func (t meshTransport) Broadcast(pdu wire.PDU) {
	if t.n.Killed() {
		return // a crashed site emits nothing
	}
	buf, err := wire.MarshalAppend(wire.GetBuf(pdu.EncodedSize()), pdu)
	if err != nil {
		wire.PutBuf(buf)
		return
	}
	t.n.cap.Record(capture.DirEgress, 0, mid.None, capture.Sent, 0, buf)
	sh := &sharedBuf{buf: buf}
	sh.refs.Store(1) // the sender's own hold, released after the fan-out
	for i := 0; i < t.n.c.N(); i++ {
		dst := mid.ProcID(i)
		if dst == t.n.id {
			continue
		}
		act := t.n.c.cfg.Fault.Send(t.n.id, dst)
		if act.Faulty() {
			t.n.cap.Record(capture.DirEgress, 0, dst, capture.Classify(capture.Sent, act), act.Kinds, buf)
		}
		if act.Drop {
			continue
		}
		t.fanout(t.n.c.nodes[dst], buf, sh, act)
	}
	sh.release()
}

// deliver enqueues buf for decoding on the target's loop goroutine. When sh
// is non-nil the receiver releases its reference after decoding; otherwise
// the receiver owns buf and returns it to the pool itself. Reports whether
// the datagram was accepted (a full inbox drops it).
func (t meshTransport) deliver(target *Node, buf []byte, sh *sharedBuf) bool {
	src := t.n.id
	accepted := target.enqueue(func() {
		act := target.c.cfg.Fault.Recv(src, target.id)
		if act.Drop || target.Killed() {
			if target.cap != nil {
				kinds := act.Kinds
				if !act.Drop {
					// Absorbed by a fail-stopped receiver, not an injector.
					kinds = kinds.With(faultrt.KindCrash)
				}
				target.cap.Record(capture.DirIngress, 0, src, capture.FaultDrop, kinds, buf)
			}
			if sh != nil {
				sh.release()
			} else {
				wire.PutBuf(buf)
			}
			return // dropped at receive; a crashed site absorbs nothing
		}
		decoded, err := wire.Unmarshal(buf)
		// Receive-side duplicates each decode their own self-owned PDU
		// from the shared bytes before those go back to the pool.
		var extra []wire.PDU
		for i := 0; i < act.Dup && err == nil; i++ {
			d, derr := wire.Unmarshal(buf)
			if derr != nil {
				break
			}
			extra = append(extra, d)
		}
		if target.cap != nil {
			v := capture.Classify(capture.Delivered, act)
			if err != nil {
				v = capture.DropDecode
			}
			target.cap.Record(capture.DirIngress, 0, src, v, act.Kinds, buf)
		}
		if sh != nil {
			sh.release()
		} else {
			wire.PutBuf(buf)
		}
		if err != nil {
			return // undecodable dropped
		}
		if act.Delay > 0 {
			time.AfterFunc(act.Delay, func() {
				target.enqueue(func() {
					if target.Killed() {
						return
					}
					target.proc.Recv(src, decoded)
					for _, d := range extra {
						target.proc.Recv(src, d)
					}
				})
			})
			return
		}
		target.proc.Recv(src, decoded)
		for _, d := range extra {
			target.proc.Recv(src, d)
		}
	})
	if !accepted {
		target.cap.Record(capture.DirIngress, 0, src, capture.DropInbox, 0, buf)
	}
	return accepted
}

package rt

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
)

// sumMetric adds up a (possibly node-labeled) counter family from a
// registry snapshot.
func sumMetric(reg *obs.Registry, prefix string) int64 {
	var total int64
	for name, v := range reg.Snapshot() {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// TestCoalescedSendsConverge fires a burst of concurrent Sends through the
// coalescing sender: every send must confirm, every node must process every
// message, and the burst must actually leave as multi-message DataBatch
// frames rather than 32 singleton broadcasts.
func TestCoalescedSendsConverge(t *testing.T) {
	reg := obs.New()
	cfg := liveConfig(3)
	cfg.RoundDuration = time.Millisecond
	// The window is deliberately huge next to the goroutine launch time:
	// the flush that matters is the count-budget one at DefaultBatchMax.
	cfg.BatchWindow = 100 * time.Millisecond
	cfg.Metrics = reg
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	const burst = core.DefaultBatchMax
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for k := 0; k < burst; k++ {
		wg.Add(1)
		k := k
		go func() {
			defer wg.Done()
			if _, err := c.Node(0).Send(ctx, []byte(fmt.Sprintf("burst-%d", k)), nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitConverged(t, c, mid.SeqVector{burst, 0, 0}, 15*time.Second)

	if frames := sumMetric(reg, "rt_batch_frames_total"); frames == 0 {
		t.Errorf("a %d-send burst through the coalescer broadcast no DataBatch frames", burst)
	}
	if msgs := sumMetric(reg, "rt_batch_msgs_total"); msgs == 0 {
		t.Errorf("rt_batch_msgs_total is zero after a coalesced burst")
	}
}

// TestCoalescedCausalSendPreservesDeps checks SendCausal through the
// coalescer: a message coalesced behind its dependency must still be
// delivered after it everywhere.
func TestCoalescedCausalSendPreservesDeps(t *testing.T) {
	cfg := liveConfig(3)
	cfg.RoundDuration = time.Millisecond
	cfg.BatchWindow = 5 * time.Millisecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for k := 0; k < 4; k++ {
		if _, err := c.Node(0).SendCausal(ctx, []byte(fmt.Sprintf("c-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c, mid.SeqVector{4, 0, 0}, 15*time.Second)
}

// TestCoalescerFlushesOnWindow pins the timer path: a lone submission —
// under every budget — must still flush once the window elapses.
func TestCoalescerFlushesOnWindow(t *testing.T) {
	cfg := liveConfig(2)
	cfg.RoundDuration = time.Millisecond
	cfg.BatchWindow = 2 * time.Millisecond
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Node(0).Send(ctx, []byte("solo"), nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, mid.SeqVector{1, 0}, 10*time.Second)
}

// TestCoalescerStopFailsPendingWindow pins the shutdown edge: submissions
// queued inside an open batch window when Stop arrives must be answered —
// each waiter gets ErrCoalescerStopped on its Res channel — never left
// blocked on a flush that will not happen.
func TestCoalescerStopFailsPendingWindow(t *testing.T) {
	enqueued := 0
	c := NewCoalescer(time.Hour, 16, 1<<20,
		func(fn func()) error { enqueued++; fn(); return nil },
		func(s *Submission) { t.Error("submission reached submit after Stop") },
		nil)
	const pending = 5
	subs := make([]*Submission, pending)
	for i := range subs {
		subs[i] = &Submission{
			Payload: []byte("pending"),
			Res:     make(chan SubResult, 1),
			Confirm: make(chan struct{}),
		}
		c.Add(subs[i])
	}
	if enqueued != 0 {
		t.Fatalf("window is an hour and budgets are slack, yet %d flushes ran early", enqueued)
	}
	c.Stop()
	for i, s := range subs {
		select {
		case r := <-s.Res:
			if r.Err != ErrCoalescerStopped {
				t.Errorf("submission %d: err = %v, want ErrCoalescerStopped", i, r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("submission %d leaked: no Res after Stop", i)
		}
	}
	// Idempotent, and Adds after Stop fail immediately the same way.
	c.Stop()
	late := &Submission{Res: make(chan SubResult, 1)}
	c.Add(late)
	select {
	case r := <-late.Res:
		if r.Err != ErrCoalescerStopped {
			t.Errorf("post-Stop Add: err = %v, want ErrCoalescerStopped", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-Stop Add leaked: no Res")
	}
}

// TestClusterStopUnblocksWindowedSends drives the same edge end to end: a
// Send sitting inside an open window when Cluster.Stop runs must return an
// error instead of hanging on its confirm channel.
func TestClusterStopUnblocksWindowedSends(t *testing.T) {
	cfg := liveConfig(2)
	cfg.RoundDuration = time.Millisecond
	cfg.BatchWindow = time.Hour // never fires: only Stop can resolve the Send
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	done := make(chan error, 1)
	go func() {
		_, err := c.Node(0).Send(context.Background(), []byte("stranded"), nil)
		done <- err
	}()
	// Wait until the submission is actually inside the coalescer window, so
	// Stop races against a queued waiter rather than an unstarted goroutine.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.nodes[0].coal.mu.Lock()
		queued := len(c.nodes[0].coal.pending)
		c.nodes[0].coal.mu.Unlock()
		if queued > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submission never entered the coalescer window")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Send stranded in a stopped coalescer returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Send leaked: still blocked after Cluster.Stop")
	}
}

// TestUDPOversizeSendCounted pins the transport-boundary bugfix: a frame
// the 64 KiB datagram cannot carry is counted and dropped at the sender
// instead of being handed to WriteToUDP to fail (or worse, truncate).
// A maximum-payload Data message plus framing exceeds the datagram budget,
// so it is processed locally but never reaches the peer.
func TestUDPOversizeSendCounted(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	reg := obs.New()
	peers := freePorts(t, 2)
	node, err := NewUDPNode(UDPConfig{
		// K is high so the lone live node does not exclude its silent peer
		// (or itself) before the assertion runs.
		Config:        core.Config{N: 2, K: 100, R: 256, SelfExclusion: true},
		Self:          0,
		Peers:         peers,
		RoundDuration: 2 * time.Millisecond,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	defer node.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	payload := make([]byte, 65535) // accepted by Submit; oversize once framed
	if _, err := node.Send(ctx, payload, nil); err != nil {
		t.Fatalf("oversize-on-wire send must still confirm locally: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("udp_send_oversize_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("udp_send_oversize_total never incremented for a >64KiB frame")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUDPBatchedGroupConverges drives a real-socket group with coalescing
// enabled: DataBatch frames cross actual UDP datagrams (and the
// sendmmsg/recvmmsg burst paths where the platform has them).
func TestUDPBatchedGroupConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	const n = 3
	reg := obs.New()
	peers := freePorts(t, n)
	nodes := make([]*UDPNode, n)
	for i := 0; i < n; i++ {
		node, err := NewUDPNode(UDPConfig{
			Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
			Self:          mid.ProcID(i),
			Peers:         peers,
			RoundDuration: 3 * time.Millisecond,
			BatchWindow:   2 * time.Millisecond,
			Metrics:       reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const perNode = 8
	var wg sync.WaitGroup
	errs := make(chan error, n*perNode)
	for i := 0; i < n; i++ {
		for k := 0; k < perNode; k++ {
			wg.Add(1)
			i, k := i, k
			go func() {
				defer wg.Done()
				if _, err := nodes[i].Send(ctx, []byte(fmt.Sprintf("ub%d-%d", i, k)), nil); err != nil {
					errs <- fmt.Errorf("node %d send %d: %w", i, k, err)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := mid.SeqVector{perNode, perNode, perNode}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for i := 0; i < n; i++ {
			var got mid.SeqVector
			sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
			err := nodes[i].Snapshot(sctx, func(p *core.Process) { got = p.Processed().Clone() })
			scancel()
			if err != nil || !got.Equal(want) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batched UDP group never converged")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reg.Counter("udp_send_oversize_total").Value() != 0 {
		t.Error("batched traffic tripped the oversize guard; the batcher must split to the datagram budget")
	}
}

package rt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/faultrt"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
)

// TestMeshFaultHookCrashAndConverge runs the in-process mesh with a fault
// hook at its transport boundary: a scheduled crash plus send omissions,
// delays and duplicates. The clock must fail-stop the scheduled process,
// the survivors must still converge, and the per-kind injection counters
// must be live on the registry.
func TestMeshFaultHookCrashAndConverge(t *testing.T) {
	reg := obs.New()
	hook := faultrt.NewHook(faultrt.Multi{
		faultrt.CrashAt{Proc: 2, At: 30 * time.Millisecond},
		&faultrt.DropEvery{N: 40, Side: faultrt.AtSend},
		faultrt.NewDelayEvery(25, time.Millisecond, time.Millisecond, faultrt.AtRecv, 5),
		&faultrt.DupEvery{N: 30, Copies: 1, Side: faultrt.AtSend},
	}, reg)
	cfg := liveConfig(4)
	cfg.Metrics = reg
	cfg.Fault = hook
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const perNode = 6
	want := make(mid.SeqVector, 4)
	for k := 0; k < perNode; k++ {
		for i := 0; i < 3; i++ { // node 3... node 2 crashes mid-run; load the others
			if i == 2 {
				continue
			}
			if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte(fmt.Sprintf("m%d-%d", i, k)), nil); err != nil {
				t.Fatalf("node %d send %d: %v", i, k, err)
			}
			want[i]++
		}
	}
	waitConverged(t, c, want, 20*time.Second)

	deadline := time.Now().Add(5 * time.Second)
	for !c.Node(2).Killed() {
		if time.Now().After(deadline) {
			t.Fatal("scheduled crash of node 2 never fail-stopped it")
		}
		time.Sleep(2 * time.Millisecond)
	}
	inj := hook.Injected()
	for _, kind := range []string{"crash", "drop", "delay", "duplicate"} {
		if inj[kind] == 0 {
			t.Errorf("no %s fault was ever injected: %v", kind, inj)
		}
		if reg.Snapshot()[obs.Labeled("faultrt_injected_total", "kind", kind)] == 0 {
			t.Errorf("faultrt_injected_total{kind=%q} not exported", kind)
		}
	}
}

// TestSendAbandonedDoesNotLeakWaiter is the regression test for the
// waiter-map leak: a Send abandoned on context timeout while its message
// is still unprocessed must remove its confirm entry. Long rounds make the
// outbox flow control (one user message broadcast per subrun) hold the
// later submissions back past the context deadline deterministically.
func TestSendAbandonedDoesNotLeakWaiter(t *testing.T) {
	cfg := Config{
		Config:        core.Config{N: 3, K: 3, R: 8},
		RoundDuration: 200 * time.Millisecond,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	n := c.Node(1)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	const sends = 3
	var (
		wg   sync.WaitGroup
		ids  [sends]mid.MID
		errs [sends]error
	)
	for j := 0; j < sends; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[j], errs[j] = n.Send(ctx, []byte("stuck"), nil)
		}()
	}
	wg.Wait()
	abandoned := 0
	for j := 0; j < sends; j++ {
		if errs[j] != nil && ids[j] != (mid.MID{}) {
			abandoned++
		}
	}
	// The first submission may ride the initial subrun's broadcast, but
	// the rest cannot leave the outbox before 400ms.
	if abandoned < sends-1 {
		t.Fatalf("only %d sends were abandoned mid-flight (ids %v, errs %v): the leak path was not exercised",
			abandoned, ids, errs)
	}
	n.mu.Lock()
	leaked := len(n.waiters)
	n.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d waiter entries leaked after abandoned sends", leaked)
	}
}

// TestUDPSendAbandonedDoesNotLeakWaiterOrGoroutines is the same regression
// for the UDP runtime, plus a shutdown goroutine-leak check: a member
// whose peer never answers abandons its send on timeout, must leave no
// waiter entry behind, and Stop must wind down every goroutine.
func TestUDPSendAbandonedDoesNotLeakWaiterOrGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	before := runtime.NumGoroutine()
	peers := freePorts(t, 2)
	node, err := NewUDPNode(UDPConfig{
		Config:        core.Config{N: 2, K: 3, R: 8},
		Self:          1, // peer 0 is never started
		Peers:         peers,
		RoundDuration: 200 * time.Millisecond, // first tick after the deadline
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()

	// No round ticks before the deadline, so no submission can leave the
	// outbox: every send is abandoned with its confirm still pending.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	id, err := node.Send(ctx, []byte("stuck"), nil)
	if err == nil {
		t.Fatal("send confirmed before the first round tick")
	}
	if id == (mid.MID{}) {
		t.Fatalf("send failed before registering its waiter (err %v): the leak path was not exercised", err)
	}
	node.mu.Lock()
	leaked := len(node.waiters)
	node.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d waiter entries leaked after abandoned send", leaked)
	}

	node.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Stop: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUDPGroupConvergesUnderFaults reruns the UDP convergence test with a
// fault hook on every member's socket boundary injecting omissions and
// duplicates; the protocol must recover everything.
func TestUDPGroupConvergesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	const n = 3
	peers := freePorts(t, n)
	nodes := make([]*UDPNode, n)
	for i := 0; i < n; i++ {
		node, err := NewUDPNode(UDPConfig{
			Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
			Self:          mid.ProcID(i),
			Peers:         peers,
			RoundDuration: 3 * time.Millisecond,
			Fault: faultrt.NewHook(faultrt.Multi{
				&faultrt.DropEvery{N: 25, Side: faultrt.AtSend},
				&faultrt.DropEvery{N: 25, Side: faultrt.AtRecv},
				&faultrt.DupEvery{N: 20, Copies: 1, Side: faultrt.AtSend},
			}, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const perNode = 4
	for k := 0; k < perNode; k++ {
		for i := 0; i < n; i++ {
			if _, err := nodes[i].Send(ctx, []byte(fmt.Sprintf("f%d-%d", i, k)), nil); err != nil {
				t.Fatalf("node %d send %d: %v", i, k, err)
			}
		}
	}
	want := mid.SeqVector{perNode, perNode, perNode}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for i := 0; i < n; i++ {
			var got mid.SeqVector
			sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
			err := nodes[i].Snapshot(sctx, func(p *core.Process) { got = p.Processed().Clone() })
			scancel()
			if err != nil || !got.Equal(want) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("UDP group never converged under injected faults")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package rt

import (
	"fmt"
	"sync"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// Submission is one user Send waiting to enter the protocol through a node
// loop goroutine. Exported so the multi-group runtime (internal/topics) can
// reuse the coalescing sender; user code goes through Node.Send and friends,
// never through this directly.
type Submission struct {
	Payload []byte
	Deps    mid.DepList
	Causal  bool
	Res     chan SubResult  // receives the submit outcome (buffered, cap 1)
	Confirm chan struct{}   // closed when the message is processed locally
}

// SubResult is the outcome of running one Submission inside the loop.
type SubResult struct {
	ID  mid.MID
	Err error
}

// ErrCoalescerStopped answers submissions caught pending in the coalescer
// when its runtime shuts down.
var ErrCoalescerStopped = fmt.Errorf("rt: node stopped with submission unsent")

// wireCost is the submission's encoded body size on the wire — mid(8) +
// depCount(2) + deps(8 each) + payloadLen(2) + payload. SubmitCausal
// labels are computed later inside the node goroutine, so for causal
// sends this is a floor, which only makes the coalescer flush earlier.
func (s *Submission) wireCost() int {
	return 12 + 8*len(s.Deps) + len(s.Payload)
}

// Coalescer batches user submissions: Sends arriving within BatchWindow
// (or until the count/byte budget fills first) are handed to the node
// goroutine as ONE inbox event, so the protocol's outbox drains them as
// DataBatch frames in the next subrun instead of dribbling one Data per
// subrun. Confirm semantics are untouched — every Send still blocks until
// its own message is processed locally.
type Coalescer struct {
	window   time.Duration
	maxCount int
	maxBytes int

	// enqueue hands a closure to the node loop, blocking until accepted;
	// it fails only on shutdown. submit runs one submission inside that
	// loop. observe records flush sizes (may be nil).
	enqueue func(fn func()) error
	submit  func(s *Submission)
	observe func(batch int)

	mu      sync.Mutex
	pending []*Submission
	bytes   int
	timer   *time.Timer
	stopped bool
}

// NewCoalescer builds a coalescing sender. enqueue must hand a closure to
// the loop goroutine that owns submit, blocking until accepted and failing
// only on shutdown; observe (optional) receives the size of every flush.
func NewCoalescer(window time.Duration, maxCount, maxBytes int,
	enqueue func(func()) error, submit func(*Submission), observe func(int)) *Coalescer {
	if maxCount <= 1 {
		maxCount = core.DefaultBatchMax
	}
	if maxBytes <= 0 {
		maxBytes = core.DefaultBatchBytes
	}
	return &Coalescer{
		window:   window,
		maxCount: maxCount,
		maxBytes: maxBytes,
		enqueue:  enqueue,
		submit:   submit,
		observe:  observe,
	}
}

// Add queues one submission. It returns once the submission is part of a
// flushed or pending batch; the caller then waits on s.Res and s.Confirm
// under its own context. After Stop, submissions fail immediately on Res.
func (c *Coalescer) Add(s *Submission) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		s.Res <- SubResult{Err: ErrCoalescerStopped}
		return
	}
	c.pending = append(c.pending, s)
	c.bytes += s.wireCost()
	var batch []*Submission
	if len(c.pending) >= c.maxCount || c.bytes >= c.maxBytes {
		batch = c.take()
	} else if len(c.pending) == 1 {
		c.timer = time.AfterFunc(c.window, c.fire)
	}
	c.mu.Unlock()
	if batch != nil {
		c.flush(batch)
	}
}

// Stop fails every submission still pending inside an open batch window, so
// no Send is left waiting on a confirm that can never come, and makes any
// later Add fail the same way. Nil-safe; idempotent. The runtimes call it
// on shutdown after closing their stop channels.
func (c *Coalescer) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stopped = true
	batch := c.take()
	c.mu.Unlock()
	for _, s := range batch {
		s.Res <- SubResult{Err: ErrCoalescerStopped}
	}
}

// Pending reports how many submissions sit inside the open batch window.
// Nil-safe; for tests and introspection, not the hot path.
func (c *Coalescer) Pending() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// take must run under mu: it claims the pending batch and disarms the
// window timer.
func (c *Coalescer) take() []*Submission {
	batch := c.pending
	c.pending = nil
	c.bytes = 0
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

func (c *Coalescer) fire() {
	c.mu.Lock()
	batch := c.take()
	c.mu.Unlock()
	if len(batch) > 0 {
		c.flush(batch)
	}
}

// flush hands the whole batch to the node goroutine as one inbox event.
// On shutdown every waiter is answered with the enqueue error instead of
// being left to hang.
func (c *Coalescer) flush(batch []*Submission) {
	if c.observe != nil {
		c.observe(len(batch))
	}
	if err := c.enqueue(func() {
		for _, s := range batch {
			c.submit(s)
		}
	}); err != nil {
		for _, s := range batch {
			s.Res <- SubResult{Err: err}
		}
	}
}

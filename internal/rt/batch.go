package rt

import (
	"sync"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// submission is one user Send waiting to enter the protocol through the
// node goroutine.
type submission struct {
	payload []byte
	deps    mid.DepList
	causal  bool
	res     chan subResult
	confirm chan struct{}
}

type subResult struct {
	id  mid.MID
	err error
}

// wireCost is the submission's encoded body size on the wire — mid(8) +
// depCount(2) + deps(8 each) + payloadLen(2) + payload. SubmitCausal
// labels are computed later inside the node goroutine, so for causal
// sends this is a floor, which only makes the coalescer flush earlier.
func (s *submission) wireCost() int {
	return 12 + 8*len(s.deps) + len(s.payload)
}

// coalescer batches user submissions: Sends arriving within BatchWindow
// (or until the count/byte budget fills first) are handed to the node
// goroutine as ONE inbox event, so the protocol's outbox drains them as
// DataBatch frames in the next subrun instead of dribbling one Data per
// subrun. Confirm semantics are untouched — every Send still blocks until
// its own message is processed locally.
type coalescer struct {
	window   time.Duration
	maxCount int
	maxBytes int

	// enqueue hands a closure to the node loop, blocking until accepted;
	// it fails only on shutdown. submit runs one submission inside that
	// loop. obs records flush sizes (nil-safe).
	enqueue func(fn func()) error
	submit  func(s *submission)
	obs     *nodeObs

	mu      sync.Mutex
	pending []*submission
	bytes   int
	timer   *time.Timer
}

func newCoalescer(window time.Duration, maxCount, maxBytes int,
	enqueue func(func()) error, submit func(*submission), o *nodeObs) *coalescer {
	if maxCount <= 1 {
		maxCount = core.DefaultBatchMax
	}
	if maxBytes <= 0 {
		maxBytes = core.DefaultBatchBytes
	}
	return &coalescer{
		window:   window,
		maxCount: maxCount,
		maxBytes: maxBytes,
		enqueue:  enqueue,
		submit:   submit,
		obs:      o,
	}
}

// add queues one submission. It returns once the submission is part of a
// flushed or pending batch; the caller then waits on s.res and s.confirm
// under its own context.
func (c *coalescer) add(s *submission) {
	c.mu.Lock()
	c.pending = append(c.pending, s)
	c.bytes += s.wireCost()
	var batch []*submission
	if len(c.pending) >= c.maxCount || c.bytes >= c.maxBytes {
		batch = c.take()
	} else if len(c.pending) == 1 {
		c.timer = time.AfterFunc(c.window, c.fire)
	}
	c.mu.Unlock()
	if batch != nil {
		c.flush(batch)
	}
}

// take must run under mu: it claims the pending batch and disarms the
// window timer.
func (c *coalescer) take() []*submission {
	batch := c.pending
	c.pending = nil
	c.bytes = 0
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

func (c *coalescer) fire() {
	c.mu.Lock()
	batch := c.take()
	c.mu.Unlock()
	if len(batch) > 0 {
		c.flush(batch)
	}
}

// flush hands the whole batch to the node goroutine as one inbox event.
// On shutdown every waiter is answered with the enqueue error instead of
// being left to hang.
func (c *coalescer) flush(batch []*submission) {
	c.obs.coalesced(len(batch))
	if err := c.enqueue(func() {
		for _, s := range batch {
			c.submit(s)
		}
	}); err != nil {
		for _, s := range batch {
			s.res <- subResult{err: err}
		}
	}
}

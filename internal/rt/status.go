package rt

import (
	"context"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// Status is a consistent sample of one live member's protocol state,
// captured inside the node loop goroutine and cloned, so it is safe to
// hold and read from anywhere. It is the supported way to observe a live
// member; the raw core.Process accessors are loop-goroutine-only (see the
// core.Process concurrency contract).
type Status struct {
	// Running reports whether the member still executes the protocol.
	Running bool
	// HistoryLen is the history buffer length (the Figure 6 gauge).
	HistoryLen int
	// WaitingLen is the waiting-list length.
	WaitingLen int
	// Pending is the number of user messages queued for future rounds.
	Pending int
	// Processed is a clone of the last-processed vector.
	Processed mid.SeqVector
	// Alive is a clone of the member's view: Alive[q] reports whether it
	// believes member q alive.
	Alive []bool
	// Stats is a copy of the protocol activity counters.
	Stats core.Stats
}

// statusOf samples p. Must run on the goroutine driving p.
func statusOf(p *core.Process) Status {
	return Status{
		Running:    p.Running(),
		HistoryLen: p.HistoryLen(),
		WaitingLen: p.WaitingLen(),
		Pending:    p.PendingSubmissions(),
		Processed:  p.Processed().Clone(),
		Alive:      append([]bool(nil), p.View().AliveMask()...),
		Stats:      p.Stats,
	}
}

// Status captures a race-free sample of the member's protocol state by
// running inside the node goroutine.
func (n *Node) Status(ctx context.Context) (Status, error) {
	var s Status
	err := n.Snapshot(ctx, func(p *core.Process) { s = statusOf(p) })
	return s, err
}

// Status captures a race-free sample of the member's protocol state by
// running inside the node goroutine.
func (n *UDPNode) Status(ctx context.Context) (Status, error) {
	var s Status
	err := n.Snapshot(ctx, func(p *core.Process) { s = statusOf(p) })
	return s, err
}

package rt

import (
	"context"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// Status is a consistent sample of one live member's protocol state,
// captured inside the node loop goroutine and cloned, so it is safe to
// hold and read from anywhere. It is the supported way to observe a live
// member; the raw core.Process accessors are loop-goroutine-only (see the
// core.Process concurrency contract). The JSON shape is what
// /status?format=json serves and what urcgc-inspect consumes.
type Status struct {
	// ID is the member's process identifier.
	ID mid.ProcID `json:"id"`
	// N is the group cardinality (live and crashed members).
	N int `json:"n"`
	// Running reports whether the member still executes the protocol.
	Running bool `json:"running"`
	// Joining reports whether the member is a restarted incarnation still
	// working its way back into the view: soliciting a sponsor, installing
	// the state transfer, or waiting for an admitting decision. A joining
	// member does not generate and is legitimately behind.
	Joining bool `json:"joining,omitempty"`
	// Subrun is the member's current subrun index — the local view of the
	// token position in the coordinator rotation.
	Subrun int64 `json:"subrun"`
	// Coordinator is the coordinator of the current subrun under this
	// member's view.
	Coordinator mid.ProcID `json:"coordinator"`
	// HistoryLen is the history buffer length (the Figure 6 gauge).
	HistoryLen int `json:"history_len"`
	// HistoryBySender is the per-sender history occupancy: how many of
	// each sequence's messages this member still retains.
	HistoryBySender []int `json:"history_by_sender"`
	// WaitingLen is the waiting-list length.
	WaitingLen int `json:"waiting_len"`
	// Pending is the number of user messages queued for future rounds.
	Pending int `json:"pending"`
	// Processed is a clone of the last-processed vector.
	Processed mid.SeqVector `json:"processed"`
	// StableTo is a clone of the stability watermark from the freshest
	// full-group decision: the member's local stability frontier.
	StableTo mid.SeqVector `json:"stable_to"`
	// Alive is a clone of the member's view: Alive[q] reports whether it
	// believes member q alive.
	Alive []bool `json:"alive"`
	// Stats is a copy of the protocol activity counters.
	Stats core.Stats `json:"stats"`
	// GroupProcessed, when the member hosts multiple groups (internal/topics),
	// is the per-group processed-message count; empty for single-group
	// members, so existing consumers see an unchanged shape.
	GroupProcessed []int64 `json:"group_processed,omitempty"`
	// Groups, when the member hosts multiple groups, is a per-group
	// protocol summary — what urcgc-inspect needs to judge view divergence
	// and progress skew per group instead of whole-node. Empty for
	// single-group members.
	Groups []GroupStatus `json:"groups,omitempty"`
}

// GroupStatus is one hosted group's protocol summary inside a multi-group
// member's Status: enough to compare views and frontiers across members
// without shipping every group's full Status.
type GroupStatus struct {
	Group        uint32        `json:"group"`
	Running      bool          `json:"running"`
	Joining      bool          `json:"joining,omitempty"`
	Subrun       int64         `json:"subrun"`
	Coordinator  mid.ProcID    `json:"coordinator"`
	Alive        []bool        `json:"alive"`
	Processed    mid.SeqVector `json:"processed"`
	StableTo     mid.SeqVector `json:"stable_to"`
	ProcessedSum int64         `json:"processed_sum"`
	StableSum    int64         `json:"stable_sum"`
	WaitingLen   int           `json:"waiting_len"`
	HistoryLen   int           `json:"history_len"`
}

// GroupStatusOf samples one group's process into the compact per-group
// shape. Like StatusOf it must run on the goroutine driving p.
func GroupStatusOf(group uint32, p *core.Process) GroupStatus {
	return GroupStatus{
		Group:        group,
		Running:      p.Running(),
		Joining:      p.Joining(),
		Subrun:       p.Subrun(),
		Coordinator:  p.CurrentCoordinator(),
		Alive:        append([]bool(nil), p.View().AliveMask()...),
		Processed:    p.Processed().Clone(),
		StableTo:     p.StableTo().Clone(),
		ProcessedSum: int64(p.Processed().Sum()),
		StableSum:    int64(p.StableTo().Sum()),
		WaitingLen:   p.WaitingLen(),
		HistoryLen:   p.HistoryLen(),
	}
}

// StatusOf samples p. Exported for the multi-group runtime (internal/topics),
// which snapshots each group's process on its shard goroutine. Must run on the goroutine driving p.
func StatusOf(p *core.Process) Status {
	return Status{
		ID:              p.ID(),
		N:               p.View().N(),
		Running:         p.Running(),
		Joining:         p.Joining(),
		Subrun:          p.Subrun(),
		Coordinator:     p.CurrentCoordinator(),
		HistoryLen:      p.HistoryLen(),
		HistoryBySender: p.History().PerSender(),
		WaitingLen:      p.WaitingLen(),
		Pending:         p.PendingSubmissions(),
		Processed:       p.Processed().Clone(),
		StableTo:        p.StableTo().Clone(),
		Alive:           append([]bool(nil), p.View().AliveMask()...),
		Stats:           p.Stats,
	}
}

// Status captures a race-free sample of the member's protocol state by
// running inside the node goroutine.
func (n *Node) Status(ctx context.Context) (Status, error) {
	var s Status
	err := n.Snapshot(ctx, func(p *core.Process) { s = StatusOf(p) })
	return s, err
}

// Status captures a race-free sample of the member's protocol state by
// running inside the node goroutine.
func (n *UDPNode) Status(ctx context.Context) (Status, error) {
	var s Status
	err := n.Snapshot(ctx, func(p *core.Process) { s = StatusOf(p) })
	return s, err
}

//go:build !linux || !(amd64 || arm64)

package rt

import (
	"net"

	"urcgc/internal/mid"
)

// Non-linux platforms have no sendmmsg/recvmmsg: both constructors return
// nil and the runtime stays on the classic one-syscall-per-datagram path.

type mmsgSender struct{}

func newMmsgSender(*UDPNode) *mmsgSender { return nil }

func (m *mmsgSender) send(*UDPNode, []mid.ProcID, []byte) bool { return false }

type mmsgReceiver struct{}

func newMmsgReceiver(*UDPNode) *mmsgReceiver { return nil }

func (m *mmsgReceiver) recv() (int, error)    { return 0, nil }
func (m *mmsgReceiver) packet(int) []byte     { return nil }
func (m *mmsgReceiver) from(int) *net.UDPAddr { return nil }

package rt

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

// TestRestartedNodeRejoins: kill a live member, let the survivors exclude
// it, then Restart it — the new incarnation must state-transfer, be
// re-admitted into every view, and accept Sends again on its old sequence.
func TestRestartedNodeRejoins(t *testing.T) {
	const victim = 3
	cfg := liveConfig(4)
	var installed, joined atomic.Bool
	cfg.JoinInstalled = func(node mid.ProcID, stable mid.SeqVector) {
		if node == victim && len(stable) == 4 {
			installed.Store(true)
		}
	}
	cfg.Joined = func(node mid.ProcID) {
		if node == victim {
			joined.Store(true)
		}
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 4; i++ {
		if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte("warm"), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Node(victim).Kill()
	// Traffic drives the silence detection.
	waitFor(t, ctx, 20*time.Second, "survivors never excluded the victim", func() bool {
		for i := 0; i < 3; i++ {
			if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte("drive"), nil); err != nil {
				t.Fatal(err)
			}
		}
		return !aliveAt(t, c, 0, victim)
	})

	if err := c.Restart(ctx, victim); err != nil {
		t.Fatal(err)
	}
	st, err := c.Node(victim).Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Joining {
		t.Error("restarted member must report joining")
	}
	// Traffic keeps subruns decision-bearing while the joiner re-enters.
	waitFor(t, ctx, 30*time.Second, "restarted member never rejoined", func() bool {
		for i := 0; i < 3; i++ {
			if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte("drive"), nil); err != nil {
				t.Fatal(err)
			}
		}
		return joined.Load()
	})
	if !installed.Load() {
		t.Error("JoinInstalled hook never fired")
	}

	// Every view re-admits it, and it generates again.
	waitFor(t, ctx, 20*time.Second, "views never re-admitted the member", func() bool {
		for i := 0; i < 4; i++ {
			if !aliveAt(t, c, mid.ProcID(i), victim) {
				return false
			}
		}
		return true
	})
	waitFor(t, ctx, 20*time.Second, "rejoined member never accepted a Send", func() bool {
		sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
		_, err := c.Node(victim).Send(sctx, []byte("back"), nil)
		scancel()
		return err == nil
	})
	st, err = c.Node(victim).Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Joining || !st.Running {
		t.Errorf("post-rejoin status joining=%v running=%v", st.Joining, st.Running)
	}
}

// aliveAt samples whether member at's view believes q alive.
func aliveAt(t *testing.T, c *Cluster, at, q mid.ProcID) bool {
	t.Helper()
	var alive bool
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	err := c.Node(at).Snapshot(ctx, func(p *core.Process) { alive = p.View().Alive(q) })
	cancel()
	return err == nil && alive
}

// waitFor polls cond until it holds or the timeout passes.
func waitFor(t *testing.T, ctx context.Context, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

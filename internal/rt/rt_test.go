package rt

import (
	"context"
	"fmt"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
)

func liveConfig(n int) Config {
	return Config{
		Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: 500 * time.Microsecond,
	}
}

// waitConverged polls until every live node's processed vector equals want,
// or the deadline passes.
func waitConverged(t *testing.T, c *Cluster, want mid.SeqVector, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for i := 0; i < c.N(); i++ {
			n := c.Node(mid.ProcID(i))
			if n.Killed() {
				continue
			}
			if _, left := n.Left(); left {
				continue
			}
			var got mid.SeqVector
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			err := n.Snapshot(ctx, func(p *core.Process) { got = p.Processed().Clone() })
			cancel()
			if err != nil || !got.Equal(want) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < c.N(); i++ {
		n := c.Node(mid.ProcID(i))
		var got mid.SeqVector
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = n.Snapshot(ctx, func(p *core.Process) { got = p.Processed().Clone() })
		cancel()
		t.Logf("node %d processed %v killed=%v", i, got, n.Killed())
	}
	t.Fatalf("group never converged to %v", want)
}

func TestLiveClusterConverges(t *testing.T) {
	c, err := NewCluster(liveConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	const perProc = 6
	errs := make(chan error, 5)
	for i := 0; i < 5; i++ {
		i := i
		go func() {
			for k := 0; k < perProc; k++ {
				if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte(fmt.Sprintf("n%d-%d", i, k)), nil); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < 5; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c, mid.SeqVector{perProc, perProc, perProc, perProc, perProc}, 15*time.Second)
}

func TestIndicationsAreCausallyOrdered(t *testing.T) {
	c, err := NewCluster(liveConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Node 0 sends a; node 1 waits to see a, then sends b depending on it.
	aID, err := c.Node(0).Send(ctx, []byte("a"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sawA bool
	for !sawA {
		select {
		case ind := <-c.Node(1).Indications():
			if ind.Msg.ID == aID {
				sawA = true
			}
		case <-ctx.Done():
			t.Fatal("node 1 never saw a")
		}
	}
	bID, err := c.Node(1).Send(ctx, []byte("b"), mid.DepList{aID})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 must observe a before b.
	posA, posB, pos := -1, -1, 0
	for posB < 0 {
		select {
		case ind := <-c.Node(2).Indications():
			switch ind.Msg.ID {
			case aID:
				posA = pos
			case bID:
				posB = pos
			}
			pos++
		case <-ctx.Done():
			t.Fatal("node 2 never saw b")
		}
	}
	if posA < 0 || posA > posB {
		t.Errorf("node 2 saw a at %d, b at %d", posA, posB)
	}
}

func TestSendRejectsBadDeps(t *testing.T) {
	c, err := NewCluster(liveConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Node(0).Send(ctx, []byte("x"), mid.DepList{{Proc: 1, Seq: 99}}); err == nil {
		t.Error("dep on unseen message must be rejected")
	}
}

func TestKilledNodeIsExcludedAndGroupContinues(t *testing.T) {
	c, err := NewCluster(liveConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Warm up with some traffic.
	for i := 0; i < 5; i++ {
		if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte("warm"), nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Node(4).Kill()
	// Keep traffic flowing so detection progresses.
	for k := 0; k < 10; k++ {
		for i := 0; i < 4; i++ {
			if _, err := c.Node(mid.ProcID(i)).Send(ctx, []byte("post"), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Survivors must exclude node 4 from their views.
	deadline := time.Now().Add(15 * time.Second)
	for {
		allExcluded := true
		for i := 0; i < 4; i++ {
			var alive bool
			sctx, scancel := context.WithTimeout(ctx, time.Second)
			err := c.Node(mid.ProcID(i)).Snapshot(sctx, func(p *core.Process) { alive = p.View().Alive(4) })
			scancel()
			if err != nil || alive {
				allExcluded = false
				break
			}
		}
		if allExcluded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never excluded the killed node")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And they can still make progress.
	if _, err := c.Node(0).Send(ctx, []byte("after"), nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, mid.SeqVector{12, 11, 11, 11, 1}, 15*time.Second)
}

func TestSendCausal(t *testing.T) {
	c, err := NewCluster(liveConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Node(0).Send(ctx, []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, mid.SeqVector{1, 0, 0}, 10*time.Second)
	id, err := c.Node(1).SendCausal(ctx, []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if id != (mid.MID{Proc: 1, Seq: 1}) {
		t.Errorf("id = %v", id)
	}
	waitConverged(t, c, mid.SeqVector{1, 1, 0}, 10*time.Second)
}

func TestStopUnblocksSenders(t *testing.T) {
	c, err := NewCluster(liveConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Kill node 0 so its own Send can never confirm; Stop must unblock.
		c.Node(0).Kill()
		_, err := c.Node(0).Send(ctx, []byte("never"), nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Stop()
	select {
	case <-done:
		// Any outcome is fine as long as it returned.
	case <-time.After(5 * time.Second):
		t.Fatal("Send did not unblock on Stop")
	}
}

//go:build linux

package rt

// sendmmsg(2)'s syscall number on linux/amd64; it postdates the frozen
// syscall package tables, which carry only SYS_RECVMMSG.
const sysSENDMMSG = 307

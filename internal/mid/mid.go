// Package mid defines message identifiers and causal dependency labels for
// the urcgc protocol.
//
// Every message in the system is uniquely identified by a MID: the identity
// of the process that generated it and a per-process progressive sequence
// number. Under the paper's "intermediate interpretation" of causality
// (Section 3 of Aiello/Pagani/Rossi 1993), each process roots exactly one
// sequence of causally ordered messages, so the pair (process, seq) both
// identifies a message and locates it inside its sequence. A message
// additionally carries the list of MIDs it causally depends on; that list is
// modelled here as a DepList.
package mid

import (
	"fmt"
	"sort"
)

// ProcID identifies a process in the group. Processes are numbered 0..n-1.
// The zero value is a valid process identifier; use None for "no process".
type ProcID int32

// None is the sentinel "no process" value used in decision fields such as
// most_updated when no process is known to hold a message.
const None ProcID = -1

// Seq is the progressive order a process assigns to its own messages.
// Sequence numbers start at 1; 0 means "no message" (for example,
// last_processed[j] == 0 means no message from p_j has been processed yet).
type Seq uint32

// MID uniquely identifies a message: the Proc that generated it and the
// progressive Seq the generator assigned. The zero MID (Proc 0, Seq 0) is
// not a valid message identifier; IsZero reports that case.
type MID struct {
	Proc ProcID
	Seq  Seq
}

// IsZero reports whether m is the zero MID, i.e. not a real message.
func (m MID) IsZero() bool { return m.Seq == 0 }

// Prev returns the identifier of the message that immediately precedes m in
// its sequence, or the zero MID if m is the first of its sequence.
func (m MID) Prev() MID {
	if m.Seq <= 1 {
		return MID{}
	}
	return MID{Proc: m.Proc, Seq: m.Seq - 1}
}

// Next returns the identifier of the message that immediately follows m in
// its sequence.
func (m MID) Next() MID { return MID{Proc: m.Proc, Seq: m.Seq + 1} }

// Less orders MIDs first by process, then by sequence number. It is a total
// order used only for canonicalization (sorting dependency lists, map
// iteration); it is NOT the causal order.
func (m MID) Less(o MID) bool {
	if m.Proc != o.Proc {
		return m.Proc < o.Proc
	}
	return m.Seq < o.Seq
}

// String renders the MID as "p<proc>#<seq>", e.g. "p3#17".
func (m MID) String() string {
	if m.IsZero() {
		return "p?#0"
	}
	return fmt.Sprintf("p%d#%d", m.Proc, m.Seq)
}

// DepList is the list of MIDs a message causally depends on. Under the
// intermediate interpretation each message depends on at most n other
// messages (at most one per sequence), which bounds the size of the list
// field on the wire.
type DepList []MID

// Canonical sorts the list in (Proc, Seq) order and removes duplicates,
// keeping for each process only the highest sequence number (depending on
// (q,5) subsumes depending on (q,3), because each sequence is totally
// ordered by construction). The receiver is modified in place and returned.
func (d DepList) Canonical() DepList {
	if len(d) <= 1 {
		return d
	}
	sort.Slice(d, func(i, j int) bool { return d[i].Less(d[j]) })
	out := d[:0]
	for _, m := range d {
		if n := len(out); n > 0 && out[n-1].Proc == m.Proc {
			out[n-1] = m // later entry has >= seq after sorting
			continue
		}
		out = append(out, m)
	}
	return out
}

// Contains reports whether the list names message m.
func (d DepList) Contains(m MID) bool {
	for _, x := range d {
		if x == m {
			return true
		}
	}
	return false
}

// Covers reports whether the list subsumes a dependency on m, i.e. whether
// it names a message of m's sequence with sequence number >= m's.
func (d DepList) Covers(m MID) bool {
	for _, x := range d {
		if x.Proc == m.Proc && x.Seq >= m.Seq {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the list.
func (d DepList) Clone() DepList {
	if d == nil {
		return nil
	}
	out := make(DepList, len(d))
	copy(out, d)
	return out
}

// SeqVector is a per-process vector of sequence numbers, indexed by ProcID.
// It is the representation of last_processed, max_processed, min_waiting and
// clean_to in requests and decisions: entry j holds a sequence number within
// p_j's sequence (0 meaning "none").
type SeqVector []Seq

// NewSeqVector returns a zeroed vector for a group of n processes.
func NewSeqVector(n int) SeqVector { return make(SeqVector, n) }

// Clone returns an independent copy of the vector.
func (v SeqVector) Clone() SeqVector {
	out := make(SeqVector, len(v))
	copy(out, v)
	return out
}

// MaxInto raises each entry of v to the corresponding entry of o.
func (v SeqVector) MaxInto(o SeqVector) {
	for i := range v {
		if i < len(o) && o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// MinInto lowers each entry of v to the corresponding entry of o.
func (v SeqVector) MinInto(o SeqVector) {
	for i := range v {
		if i < len(o) && o[i] < v[i] {
			v[i] = o[i]
		}
	}
}

// Dominates reports whether every entry of v is >= the matching entry of o.
func (v SeqVector) Dominates(o SeqVector) bool {
	for i := range v {
		if i < len(o) && v[i] < o[i] {
			return false
		}
	}
	for i := len(v); i < len(o); i++ {
		if o[i] > 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and o hold the same entries.
func (v SeqVector) Equal(o SeqVector) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Sum returns the total number of messages the vector accounts for.
func (v SeqVector) Sum() uint64 {
	var s uint64
	for _, x := range v {
		s += uint64(x)
	}
	return s
}

package mid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMIDIsZero(t *testing.T) {
	if !(MID{}).IsZero() {
		t.Error("zero MID should report IsZero")
	}
	if (MID{Proc: 0, Seq: 1}).IsZero() {
		t.Error("p0#1 is a real message")
	}
	if (MID{Proc: 3, Seq: 0}).IsZero() != true {
		t.Error("seq 0 is never a real message")
	}
}

func TestMIDPrevNext(t *testing.T) {
	m := MID{Proc: 2, Seq: 5}
	if got := m.Prev(); got != (MID{Proc: 2, Seq: 4}) {
		t.Errorf("Prev = %v", got)
	}
	if got := m.Next(); got != (MID{Proc: 2, Seq: 6}) {
		t.Errorf("Next = %v", got)
	}
	first := MID{Proc: 2, Seq: 1}
	if got := first.Prev(); !got.IsZero() {
		t.Errorf("Prev of first message should be zero, got %v", got)
	}
}

func TestMIDLessIsTotalOrder(t *testing.T) {
	ms := []MID{{0, 2}, {1, 1}, {0, 1}, {2, 9}, {1, 7}}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Less(ms[j]) })
	want := []MID{{0, 1}, {0, 2}, {1, 1}, {1, 7}, {2, 9}}
	for i := range ms {
		if ms[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, ms[i], want[i])
		}
	}
}

func TestMIDString(t *testing.T) {
	if got := (MID{Proc: 3, Seq: 17}).String(); got != "p3#17" {
		t.Errorf("String = %q", got)
	}
	if got := (MID{}).String(); got != "p?#0" {
		t.Errorf("zero String = %q", got)
	}
}

func TestDepListCanonical(t *testing.T) {
	d := DepList{{2, 3}, {0, 1}, {2, 5}, {0, 1}, {1, 4}}
	got := d.Canonical()
	want := DepList{{0, 1}, {1, 4}, {2, 5}}
	if len(got) != len(want) {
		t.Fatalf("Canonical = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Canonical = %v, want %v", got, want)
		}
	}
}

func TestDepListCanonicalKeepsHighestSeq(t *testing.T) {
	d := DepList{{0, 9}, {0, 2}, {0, 5}}
	got := d.Canonical()
	if len(got) != 1 || got[0] != (MID{0, 9}) {
		t.Fatalf("Canonical = %v, want [p0#9]", got)
	}
}

func TestDepListCanonicalEmptyAndSingle(t *testing.T) {
	if got := (DepList{}).Canonical(); len(got) != 0 {
		t.Errorf("empty Canonical = %v", got)
	}
	d := DepList{{1, 1}}
	if got := d.Canonical(); len(got) != 1 || got[0] != (MID{1, 1}) {
		t.Errorf("single Canonical = %v", got)
	}
}

func TestDepListContainsAndCovers(t *testing.T) {
	d := DepList{{0, 3}, {2, 7}}
	if !d.Contains(MID{0, 3}) {
		t.Error("should contain p0#3")
	}
	if d.Contains(MID{0, 2}) {
		t.Error("should not contain p0#2")
	}
	if !d.Covers(MID{0, 2}) {
		t.Error("p0#3 covers p0#2")
	}
	if !d.Covers(MID{2, 7}) {
		t.Error("covers its own entry")
	}
	if d.Covers(MID{2, 8}) {
		t.Error("p2#7 does not cover p2#8")
	}
	if d.Covers(MID{1, 1}) {
		t.Error("no entry for p1")
	}
}

func TestDepListClone(t *testing.T) {
	d := DepList{{0, 1}, {1, 2}}
	c := d.Clone()
	c[0] = MID{5, 5}
	if d[0] != (MID{0, 1}) {
		t.Error("Clone should be independent")
	}
	if (DepList)(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestSeqVectorMaxMin(t *testing.T) {
	a := SeqVector{1, 5, 3}
	b := SeqVector{2, 4, 3}
	a.MaxInto(b)
	if !a.Equal(SeqVector{2, 5, 3}) {
		t.Errorf("MaxInto = %v", a)
	}
	a.MinInto(SeqVector{1, 9, 2})
	if !a.Equal(SeqVector{1, 5, 2}) {
		t.Errorf("MinInto = %v", a)
	}
}

func TestSeqVectorDominates(t *testing.T) {
	a := SeqVector{2, 2, 2}
	if !a.Dominates(SeqVector{1, 2, 0}) {
		t.Error("a should dominate")
	}
	if a.Dominates(SeqVector{3, 0, 0}) {
		t.Error("a should not dominate")
	}
	// Longer other vector with nonzero tail.
	if a.Dominates(SeqVector{1, 1, 1, 1}) {
		t.Error("nonzero tail beyond len(a) breaks dominance")
	}
	if !a.Dominates(SeqVector{1, 1, 1, 0}) {
		t.Error("zero tail beyond len(a) is fine")
	}
}

func TestSeqVectorSumAndClone(t *testing.T) {
	a := SeqVector{1, 2, 3}
	if a.Sum() != 6 {
		t.Errorf("Sum = %d", a.Sum())
	}
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone should be independent")
	}
}

// Property: Canonical is idempotent and its result is sorted, duplicate-free
// per process, and covers every input element.
func TestDepListCanonicalProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		d := make(DepList, 0, len(raw))
		for _, r := range raw {
			d = append(d, MID{Proc: ProcID(r % 7), Seq: Seq(r%13) + 1})
		}
		orig := d.Clone()
		c := d.Canonical()
		// Sorted and unique per proc.
		for i := 1; i < len(c); i++ {
			if !c[i-1].Less(c[i]) || c[i-1].Proc == c[i].Proc {
				return false
			}
		}
		// Covers every input.
		for _, m := range orig {
			if !c.Covers(m) {
				return false
			}
		}
		// Idempotent.
		c2 := c.Clone().Canonical()
		if len(c2) != len(c) {
			return false
		}
		for i := range c {
			if c[i] != c2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MaxInto yields a vector that dominates both inputs, and MinInto
// yields one dominated by both.
func TestSeqVectorLatticeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a, b := NewSeqVector(n), NewSeqVector(n)
		for i := 0; i < n; i++ {
			a[i], b[i] = Seq(rng.Intn(20)), Seq(rng.Intn(20))
		}
		up := a.Clone()
		up.MaxInto(b)
		if !up.Dominates(a) || !up.Dominates(b) {
			t.Fatalf("join %v of %v,%v does not dominate", up, a, b)
		}
		down := a.Clone()
		down.MinInto(b)
		if !a.Dominates(down) || !b.Dominates(down) {
			t.Fatalf("meet %v of %v,%v not dominated", down, a, b)
		}
	}
}

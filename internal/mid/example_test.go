package mid_test

import (
	"fmt"

	"urcgc/internal/mid"
)

// Canonical sorts a dependency list and keeps, per sequence, only the
// deepest dependency (depending on p0#5 subsumes depending on p0#2).
func ExampleDepList_Canonical() {
	d := mid.DepList{
		{Proc: 2, Seq: 3},
		{Proc: 0, Seq: 2},
		{Proc: 0, Seq: 5},
	}
	fmt.Println(d.Canonical())
	// Output: [p0#5 p2#3]
}

package health

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"

	"urcgc/internal/obs"
)

// multiHarness drives a Flight for a node hosting several groups, each
// with its own labeled series (the shape topics.MultiNode registers).
type multiHarness struct {
	flight   *obs.Flight
	eval     *MultiEvaluator
	decision []*obs.Gauge
}

func newMultiHarness(t *testing.T, groups int, th Thresholds) *multiHarness {
	t.Helper()
	reg := obs.New()
	f := obs.NewFlight(reg, obs.FlightOptions{Cap: 64})
	h := &multiHarness{flight: f, eval: NewMultiEvaluator(f, "0", groups, th)}
	for g := 0; g < groups; g++ {
		l := func(name string) string {
			return obs.Labeled(name, "node", "0", "group", strconv.Itoa(g))
		}
		h.decision = append(h.decision, reg.Gauge(l("core_decision_subrun")))
		reg.Gauge(l("core_history_len"))
		reg.Gauge(l("core_waiting_len"))
		reg.Counter(l("rt_processed_total"))
		reg.Gauge(l("core_stable_sum"))
	}
	return h
}

// TestMultiEvaluatorIsolatesGroups stalls group 1's token while groups 0
// and 2 keep circulating decisions: the aggregate must go unhealthy with
// exactly one {group, rule} triple, and per-group verdicts must disagree.
func TestMultiEvaluatorIsolatesGroups(t *testing.T) {
	th := Thresholds{TokenStallSamples: 4}
	h := newMultiHarness(t, 3, th)
	for i := 0; i < 8; i++ {
		h.decision[0].Add(1)
		if i < 3 {
			h.decision[1].Add(1) // group 1's token freezes after sample 3
		}
		h.decision[2].Add(1)
		h.flight.Sample()
	}
	st := h.eval.Eval()
	if st.Healthy {
		t.Fatalf("stalled group not flagged: %+v", st)
	}
	if len(st.Reasons) != 1 || st.Reasons[0].Group != 1 || st.Reasons[0].Rule != "token-stall" {
		t.Fatalf("reasons = %+v, want one token-stall on group 1", st.Reasons)
	}
	if len(st.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(st.Groups))
	}
	for g, gs := range st.Groups {
		if gs.Group == nil || *gs.Group != g {
			t.Fatalf("group %d verdict missing group tag: %+v", g, gs)
		}
		if wantHealthy := g != 1; gs.Healthy != wantHealthy {
			t.Fatalf("group %d healthy = %v, want %v", g, gs.Healthy, wantHealthy)
		}
	}

	// Recovery: the partitioned group's token resumes.
	h.decision[1].Add(1)
	h.flight.Sample()
	if st := h.eval.Eval(); !st.Healthy {
		t.Fatalf("aggregate did not recover: %+v", st.Reasons)
	}
}

func TestMultiHandlerStatusCodes(t *testing.T) {
	th := Thresholds{TokenStallSamples: 3}
	h := newMultiHarness(t, 2, th)
	for i := 0; i < 4; i++ {
		h.decision[0].Add(1)
		h.decision[1].Add(1)
		h.flight.Sample()
	}
	rec := httptest.NewRecorder()
	h.eval.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy code = %d, body %s", rec.Code, rec.Body.String())
	}
	var st MultiStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || !st.Healthy || len(st.Groups) != 2 {
		t.Fatalf("healthy body: %v %s", err, rec.Body.String())
	}

	for i := 0; i < 3; i++ {
		h.decision[0].Add(1) // group 1 frozen
		h.flight.Sample()
	}
	rec = httptest.NewRecorder()
	h.eval.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("unhealthy code = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.Healthy ||
		len(st.Reasons) != 1 || st.Reasons[0].Group != 1 {
		t.Fatalf("unhealthy body: %v %s", err, rec.Body.String())
	}
}

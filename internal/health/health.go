// Package health evaluates one node's protocol health from the flight
// recorder's gauge time series. Each rule turns a paper claim into a
// runtime check over a sample window:
//
//   - token-stall: the rotating-coordinator scheme means decisions keep
//     arriving with fresh subrun stamps; a frozen core_decision_subrun
//     says the token stopped reaching this node (Section 4's reliable
//     circulation of decisions has broken down for it).
//   - history-growth: Figure 6's claim that history buffers stay bounded
//     because stability keeps cleaning them; a monotonically growing
//     core_history_len says cleaning has stopped.
//   - waiting-stuck: causal delivery means waiting messages drain once
//     dependencies arrive (recovered from history if need be); a
//     persistently non-empty waiting list says recovery is not closing
//     gaps.
//   - frontier-lag: Section 5's bounded stability time; a monotonically
//     growing gap between messages processed and messages uniformly
//     stable says full-group decisions have stopped covering the group.
//
// Rules fire only on evidence spanning a full window; a node with too few
// samples is healthy ("warming up"). All rules recover: one sample of
// progress resets the window.
package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"urcgc/internal/obs"
)

// Thresholds tune the health rules. Zero values select the defaults.
type Thresholds struct {
	// TokenStallSamples is how many consecutive samples the freshest
	// decision subrun may stay frozen before the token counts as stalled.
	TokenStallSamples int
	// HistoryWindow is the sample window for the history-growth rule.
	HistoryWindow int
	// HistoryGrowthMin is the minimum history-length growth across a
	// never-shrinking window for the rule to fire (filters flat idle).
	HistoryGrowthMin int64
	// WaitingStuckSamples is how many consecutive samples the waiting
	// list may stay non-empty before messages count as stuck.
	WaitingStuckSamples int
	// FrontierLagWindow is the sample window for the frontier-lag rule.
	FrontierLagWindow int
	// FrontierLagMin is the minimum growth of processed-minus-stable
	// across a never-shrinking window for the rule to fire.
	FrontierLagMin int64
}

// DefaultThresholds are tuned for sampling intervals in the 10ms–1s
// range: a rule needs roughly a dozen intervals of sustained evidence.
var DefaultThresholds = Thresholds{
	TokenStallSamples:   12,
	HistoryWindow:       20,
	HistoryGrowthMin:    32,
	WaitingStuckSamples: 20,
	FrontierLagWindow:   20,
	FrontierLagMin:      16,
}

func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds
	if t.TokenStallSamples <= 0 {
		t.TokenStallSamples = d.TokenStallSamples
	}
	if t.HistoryWindow <= 0 {
		t.HistoryWindow = d.HistoryWindow
	}
	if t.HistoryGrowthMin <= 0 {
		t.HistoryGrowthMin = d.HistoryGrowthMin
	}
	if t.WaitingStuckSamples <= 0 {
		t.WaitingStuckSamples = d.WaitingStuckSamples
	}
	if t.FrontierLagWindow <= 0 {
		t.FrontierLagWindow = d.FrontierLagWindow
	}
	if t.FrontierLagMin <= 0 {
		t.FrontierLagMin = d.FrontierLagMin
	}
	return t
}

// Reason is one machine-readable explanation of an unhealthy verdict.
type Reason struct {
	// Rule names the check that fired: "token-stall", "history-growth",
	// "waiting-stuck" or "frontier-lag".
	Rule string `json:"rule"`
	// Detail is a human-readable elaboration with the numbers.
	Detail string `json:"detail"`
}

// Status is one node's health verdict, the JSON shape of /healthz.
type Status struct {
	Node string `json:"node"`
	// Group is set when the verdict covers one hosted group of a
	// multi-group member rather than the whole node.
	Group   *int     `json:"group,omitempty"`
	Healthy bool     `json:"healthy"`
	Samples int64    `json:"samples"`
	Reasons []Reason `json:"reasons,omitempty"`
	// Joining reports that the member is (or very recently was)
	// state-transferring into the group: the rules are suppressed for a
	// full window because a joiner legitimately freezes the series they
	// watch (no decisions reach it pre-sync, its history installs in one
	// jump, its frontier is the sponsor's).
	Joining bool `json:"joining,omitempty"`
}

// tokenStalled reports whether the last window values are present and
// all identical: the freshest decision's subrun stopped moving.
func tokenStalled(decisionSubrun []int64, window int) bool {
	if len(decisionSubrun) < window {
		return false
	}
	tail := decisionSubrun[len(decisionSubrun)-window:]
	for _, v := range tail[1:] {
		if v != tail[0] {
			return false
		}
	}
	return true
}

// growingMonotonically reports whether the last window values never
// decrease and grow by at least min overall — the shape of an unbounded
// buffer, as opposed to the sawtooth of a cleaned one or a flat idle one.
func growingMonotonically(vals []int64, window int, min int64) bool {
	if len(vals) < window {
		return false
	}
	tail := vals[len(vals)-window:]
	for i := 1; i < len(tail); i++ {
		if tail[i] < tail[i-1] {
			return false
		}
	}
	return tail[len(tail)-1]-tail[0] >= min
}

// stuckNonEmpty reports whether the last window values are all positive:
// the waiting list never drained.
func stuckNonEmpty(vals []int64, window int) bool {
	if len(vals) < window {
		return false
	}
	for _, v := range vals[len(vals)-window:] {
		if v <= 0 {
			return false
		}
	}
	return true
}

// Evaluator applies the rules to one node's flight series. Safe for
// concurrent use (the HTTP handler may race a poller).
type Evaluator struct {
	flight *obs.Flight
	node   string
	group  int // hosted-group id, or -1 when the verdict is whole-node
	th     Thresholds

	mu                 sync.Mutex
	bufA, bufB, bufLag []int64

	// Pre-composed series names (the per-node label is fixed).
	sDecision, sHistory, sWaiting, sProcessed, sStable, sJoining string
}

// NewEvaluator builds an evaluator for the node with the given label
// (the "node" label value used by the rt instruments, e.g. "0").
func NewEvaluator(f *obs.Flight, node string, th Thresholds) *Evaluator {
	l := func(name string) string { return obs.Labeled(name, "node", node) }
	return newEvaluator(f, node, -1, th, l)
}

// NewGroupEvaluator builds an evaluator for one hosted group of a
// multi-group member: same rules, read from the group-labeled series the
// topics runtime registers (label order matches rt.NewNodeObs — node
// first, then group).
func NewGroupEvaluator(f *obs.Flight, node string, group int, th Thresholds) *Evaluator {
	g := strconv.Itoa(group)
	l := func(name string) string { return obs.Labeled(name, "node", node, "group", g) }
	return newEvaluator(f, node, group, th, l)
}

func newEvaluator(f *obs.Flight, node string, group int, th Thresholds, l func(string) string) *Evaluator {
	return &Evaluator{
		flight:     f,
		node:       node,
		group:      group,
		th:         th.withDefaults(),
		sDecision:  l("core_decision_subrun"),
		sHistory:   l("core_history_len"),
		sWaiting:   l("core_waiting_len"),
		sProcessed: l("rt_processed_total"),
		sStable:    l("core_stable_sum"),
		sJoining:   l("core_joining"),
	}
}

// Eval applies every rule to the current flight window.
func (e *Evaluator) Eval() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{Node: e.node, Healthy: true, Samples: e.flight.Samples()}
	if e.group >= 0 {
		g := e.group
		st.Group = &g
	}

	// The widest window any rule needs bounds every Tail read.
	max := e.th.TokenStallSamples
	for _, w := range []int{e.th.HistoryWindow, e.th.WaitingStuckSamples, e.th.FrontierLagWindow} {
		if w > max {
			max = w
		}
	}

	// Join grace window: a state-transferring member freezes exactly the
	// series the rules watch (no decisions pre-sync, history installed in
	// one jump, frontier borrowed from the sponsor). While any sample in
	// the widest rule window still shows core_joining set, report the
	// join instead of false alarms; once the gauge has been clear for a
	// full window the rules resume on post-join evidence only.
	e.bufA = e.flight.Tail(e.sJoining, e.bufA[:0], max)
	for _, v := range e.bufA {
		if v != 0 {
			st.Joining = true
			return st
		}
	}

	e.bufA = e.flight.Tail(e.sDecision, e.bufA[:0], max)
	if tokenStalled(e.bufA, e.th.TokenStallSamples) {
		st.Reasons = append(st.Reasons, Reason{
			Rule: "token-stall",
			Detail: fmt.Sprintf("no fresh decision: core_decision_subrun frozen at %d for %d samples",
				e.bufA[len(e.bufA)-1], e.th.TokenStallSamples),
		})
	}

	e.bufA = e.flight.Tail(e.sHistory, e.bufA[:0], max)
	if growingMonotonically(e.bufA, e.th.HistoryWindow, e.th.HistoryGrowthMin) {
		st.Reasons = append(st.Reasons, Reason{
			Rule: "history-growth",
			Detail: fmt.Sprintf("history buffer grew %d→%d without cleaning over %d samples (Fig. 6 bound at risk)",
				e.bufA[len(e.bufA)-e.th.HistoryWindow], e.bufA[len(e.bufA)-1], e.th.HistoryWindow),
		})
	}

	e.bufA = e.flight.Tail(e.sWaiting, e.bufA[:0], max)
	if stuckNonEmpty(e.bufA, e.th.WaitingStuckSamples) {
		st.Reasons = append(st.Reasons, Reason{
			Rule: "waiting-stuck",
			Detail: fmt.Sprintf("waiting list non-empty (now %d) for %d consecutive samples",
				e.bufA[len(e.bufA)-1], e.th.WaitingStuckSamples),
		})
	}

	e.bufA = e.flight.Tail(e.sProcessed, e.bufA[:0], max)
	e.bufB = e.flight.Tail(e.sStable, e.bufB[:0], max)
	if len(e.bufA) == len(e.bufB) {
		e.bufLag = e.bufLag[:0]
		for i := range e.bufA {
			e.bufLag = append(e.bufLag, e.bufA[i]-e.bufB[i])
		}
		if growingMonotonically(e.bufLag, e.th.FrontierLagWindow, e.th.FrontierLagMin) {
			st.Reasons = append(st.Reasons, Reason{
				Rule: "frontier-lag",
				Detail: fmt.Sprintf("stability frontier falling behind: processed-stable gap grew to %d over %d samples",
					e.bufLag[len(e.bufLag)-1], e.th.FrontierLagWindow),
			})
		}
	}

	st.Healthy = len(st.Reasons) == 0
	return st
}

// Handler serves the verdict as JSON: HTTP 200 when healthy, 503 when
// not (the /healthz endpoint).
func (e *Evaluator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := e.Eval()
		w.Header().Set("Content-Type", "application/json")
		if !st.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(st)
	})
}

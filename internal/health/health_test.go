package health

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"urcgc/internal/obs"
)

func TestTokenStalled(t *testing.T) {
	cases := []struct {
		name   string
		series []int64
		window int
		want   bool
	}{
		{"too few samples", []int64{5, 5, 5}, 4, false},
		{"frozen for window", []int64{4, 5, 5, 5, 5}, 4, true},
		{"advancing", []int64{5, 6, 7, 8}, 4, false},
		{"advance inside window", []int64{5, 5, 6, 6}, 4, false},
		{"recovered after stall", []int64{5, 5, 5, 5, 6}, 4, false},
		{"exactly window frozen", []int64{9, 9, 9, 9}, 4, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := tokenStalled(c.series, c.window); got != c.want {
				t.Errorf("tokenStalled(%v, %d) = %v, want %v", c.series, c.window, got, c.want)
			}
		})
	}
}

func TestGrowingMonotonically(t *testing.T) {
	cases := []struct {
		name   string
		series []int64
		window int
		min    int64
		want   bool
	}{
		{"too few samples", []int64{0, 10, 20}, 4, 10, false},
		{"unbounded growth", []int64{0, 10, 20, 40}, 4, 10, true},
		{"growth below min", []int64{0, 1, 2, 3}, 4, 10, false},
		{"sawtooth (cleaned)", []int64{0, 30, 5, 40}, 4, 10, false},
		{"flat idle", []int64{7, 7, 7, 7}, 4, 10, false},
		{"recovery: cleaning resumed", []int64{0, 10, 20, 40, 2}, 4, 10, false},
		{"growth at exactly min", []int64{0, 4, 8, 10}, 4, 10, true},
		{"plateau then growth", []int64{5, 5, 5, 16}, 4, 11, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := growingMonotonically(c.series, c.window, c.min); got != c.want {
				t.Errorf("growingMonotonically(%v, %d, %d) = %v, want %v", c.series, c.window, c.min, got, c.want)
			}
		})
	}
}

func TestStuckNonEmpty(t *testing.T) {
	cases := []struct {
		name   string
		series []int64
		window int
		want   bool
	}{
		{"too few samples", []int64{1, 1}, 3, false},
		{"never drains", []int64{2, 1, 3}, 3, true},
		{"drained mid-window", []int64{2, 0, 3}, 3, false},
		{"recovery: drained at end", []int64{2, 1, 3, 0}, 3, false},
		{"empty throughout", []int64{0, 0, 0}, 3, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := stuckNonEmpty(c.series, c.window); got != c.want {
				t.Errorf("stuckNonEmpty(%v, %d) = %v, want %v", c.series, c.window, got, c.want)
			}
		})
	}
}

// evalHarness drives a Flight deterministically for one node's series.
type evalHarness struct {
	reg       *obs.Registry
	flight    *obs.Flight
	eval      *Evaluator
	decision  *obs.Gauge
	history   *obs.Gauge
	waiting   *obs.Gauge
	processed *obs.Counter
	stable    *obs.Gauge
	joining   *obs.Gauge
}

func newEvalHarness(t *testing.T, th Thresholds) *evalHarness {
	t.Helper()
	reg := obs.New()
	l := func(name string) string { return obs.Labeled(name, "node", "0") }
	f := obs.NewFlight(reg, obs.FlightOptions{Cap: 64})
	return &evalHarness{
		reg:       reg,
		flight:    f,
		eval:      NewEvaluator(f, "0", th),
		decision:  reg.Gauge(l("core_decision_subrun")),
		history:   reg.Gauge(l("core_history_len")),
		waiting:   reg.Gauge(l("core_waiting_len")),
		processed: reg.Counter(l("rt_processed_total")),
		stable:    reg.Gauge(l("core_stable_sum")),
		joining:   reg.Gauge(l("core_joining")),
	}
}

// tick advances the simulated node one sample: a healthy node's decision
// subrun advances and its stability frontier tracks its processed count.
func (h *evalHarness) tickHealthy() {
	h.decision.Add(1)
	h.processed.Add(2)
	h.stable.Set(h.processed.Value())
	h.flight.Sample()
}

func reasons(st Status) []string {
	out := make([]string, 0, len(st.Reasons))
	for _, r := range st.Reasons {
		out = append(out, r.Rule)
	}
	return out
}

func hasRule(st Status, rule string) bool {
	for _, r := range st.Reasons {
		if r.Rule == rule {
			return true
		}
	}
	return false
}

// TestEvaluatorLifecycle walks one node through warm-up, health, every
// failure mode, and recovery back to healthy.
func TestEvaluatorLifecycle(t *testing.T) {
	th := Thresholds{
		TokenStallSamples:   4,
		HistoryWindow:       4,
		HistoryGrowthMin:    8,
		WaitingStuckSamples: 4,
		FrontierLagWindow:   4,
		FrontierLagMin:      6,
	}
	h := newEvalHarness(t, th)

	// Warming up: no samples at all is healthy.
	if st := h.eval.Eval(); !st.Healthy || st.Samples != 0 {
		t.Fatalf("empty flight: %+v", st)
	}

	// Healthy steady state.
	for i := 0; i < 8; i++ {
		h.tickHealthy()
	}
	if st := h.eval.Eval(); !st.Healthy {
		t.Fatalf("healthy node flagged: %v", reasons(st))
	}

	// Token stall: decision subrun freezes while samples keep coming.
	for i := 0; i < 4; i++ {
		h.flight.Sample()
	}
	st := h.eval.Eval()
	if st.Healthy || !hasRule(st, "token-stall") {
		t.Fatalf("frozen token not flagged: %+v", st)
	}
	// Recovery: one fresh decision clears it.
	h.tickHealthy()
	if st := h.eval.Eval(); hasRule(st, "token-stall") {
		t.Fatalf("token-stall did not recover: %+v", st)
	}

	// History growth: monotone climb past the minimum with no cleaning.
	for i := 0; i < 4; i++ {
		h.history.Add(3)
		h.tickHealthy()
	}
	st = h.eval.Eval()
	if st.Healthy || !hasRule(st, "history-growth") {
		t.Fatalf("unbounded history not flagged: %+v", st)
	}
	// Recovery: stability cleaning shrinks the buffer.
	h.history.Set(1)
	h.tickHealthy()
	if st := h.eval.Eval(); hasRule(st, "history-growth") {
		t.Fatalf("history-growth did not recover: %+v", st)
	}

	// Waiting-stuck: the waiting list stays non-empty a full window.
	h.waiting.Set(2)
	for i := 0; i < 4; i++ {
		h.tickHealthy()
	}
	st = h.eval.Eval()
	if st.Healthy || !hasRule(st, "waiting-stuck") {
		t.Fatalf("stuck waiting list not flagged: %+v", st)
	}
	h.waiting.Set(0)
	h.tickHealthy()
	if st := h.eval.Eval(); hasRule(st, "waiting-stuck") {
		t.Fatalf("waiting-stuck did not recover: %+v", st)
	}

	// Frontier lag: processing continues but stability stops advancing.
	for i := 0; i < 4; i++ {
		h.decision.Add(1)
		h.processed.Add(2) // stable stays put: the gap grows 2 per sample
		h.flight.Sample()
	}
	st = h.eval.Eval()
	if st.Healthy || !hasRule(st, "frontier-lag") {
		t.Fatalf("lagging frontier not flagged: %+v", st)
	}
	// Recovery: a full-group decision catches the frontier up.
	h.stable.Set(h.processed.Value())
	h.flight.Sample()
	if st := h.eval.Eval(); !st.Healthy {
		t.Fatalf("node did not return to healthy: %v", reasons(st))
	}
}

// TestEvaluatorIdleIsHealthy pins that a quiescent node — flat series,
// no traffic, token still advancing — stays healthy forever.
func TestEvaluatorIdleIsHealthy(t *testing.T) {
	h := newEvalHarness(t, Thresholds{
		TokenStallSamples: 4, HistoryWindow: 4, HistoryGrowthMin: 8,
		WaitingStuckSamples: 4, FrontierLagWindow: 4, FrontierLagMin: 6,
	})
	for i := 0; i < 12; i++ {
		h.decision.Add(1) // rounds keep running; no user traffic
		h.flight.Sample()
	}
	if st := h.eval.Eval(); !st.Healthy {
		t.Fatalf("idle node flagged: %v", reasons(st))
	}
}

// TestJoiningSuppressesRules pins the join grace window: while the
// member is state-transferring (and for one full rule window after), the
// evaluator reports joining instead of firing rules on series the join
// legitimately freezes — /healthz must not flap 503 across a restart.
func TestJoiningSuppressesRules(t *testing.T) {
	th := Thresholds{
		TokenStallSamples: 4, HistoryWindow: 4, HistoryGrowthMin: 8,
		WaitingStuckSamples: 4, FrontierLagWindow: 4, FrontierLagMin: 6,
	}
	h := newEvalHarness(t, th)
	for i := 0; i < 6; i++ {
		h.tickHealthy()
	}

	// The joiner's token freezes and its waiting list fills — exactly the
	// evidence token-stall and waiting-stuck fire on. Joining wins.
	h.joining.Set(1)
	h.waiting.Set(3)
	for i := 0; i < 6; i++ {
		h.flight.Sample()
	}
	st := h.eval.Eval()
	if !st.Joining || !st.Healthy || len(st.Reasons) != 0 {
		t.Fatalf("joining member flagged: %+v", st)
	}

	// Join completed: the gauge clears but stale pre-join samples are
	// still inside the window — the grace period holds.
	h.joining.Set(0)
	h.waiting.Set(0)
	h.tickHealthy()
	st = h.eval.Eval()
	if !st.Joining || !st.Healthy {
		t.Fatalf("grace window did not hold just after join: %+v", st)
	}

	// A full window of clear samples later the rules are live again.
	for i := 0; i < 4; i++ {
		h.tickHealthy()
	}
	if st := h.eval.Eval(); st.Joining || !st.Healthy {
		t.Fatalf("rules did not resume after grace window: %+v", st)
	}
	for i := 0; i < 4; i++ {
		h.flight.Sample() // freeze the token for real this time
	}
	st = h.eval.Eval()
	if st.Joining || st.Healthy || !hasRule(st, "token-stall") {
		t.Fatalf("post-join stall not flagged: %+v", st)
	}
}

func TestHandlerStatusCodes(t *testing.T) {
	th := Thresholds{TokenStallSamples: 3}
	h := newEvalHarness(t, th)
	for i := 0; i < 4; i++ {
		h.tickHealthy()
	}
	rec := httptest.NewRecorder()
	h.eval.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthy code = %d, body %s", rec.Code, rec.Body.String())
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || !st.Healthy || st.Node != "0" {
		t.Fatalf("healthy body: %v %s", err, rec.Body.String())
	}
	for i := 0; i < 3; i++ {
		h.flight.Sample() // freeze the token
	}
	rec = httptest.NewRecorder()
	h.eval.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("unhealthy code = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.Healthy || len(st.Reasons) == 0 {
		t.Fatalf("unhealthy body: %v %s", err, rec.Body.String())
	}
}

func TestThresholdDefaults(t *testing.T) {
	th := Thresholds{}.withDefaults()
	if th != DefaultThresholds {
		t.Fatalf("zero thresholds = %+v, want defaults %+v", th, DefaultThresholds)
	}
	custom := Thresholds{TokenStallSamples: 3}.withDefaults()
	if custom.TokenStallSamples != 3 || custom.HistoryWindow != DefaultThresholds.HistoryWindow {
		t.Fatalf("partial thresholds = %+v", custom)
	}
}

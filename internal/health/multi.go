package health

import (
	"encoding/json"
	"net/http"

	"urcgc/internal/obs"
)

// GroupReason is one unhealthy-group explanation in an aggregate verdict:
// the {group, rule, reason} triple /healthz lists on a 503.
type GroupReason struct {
	Group  int    `json:"group"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
}

// MultiStatus is a multi-group member's aggregate health verdict: the
// whole node is healthy iff every hosted group is. Groups carries the
// per-group verdicts; Reasons flattens every firing rule with its group.
type MultiStatus struct {
	Node    string        `json:"node"`
	Healthy bool          `json:"healthy"`
	Samples int64         `json:"samples"`
	Groups  []Status      `json:"groups"`
	Reasons []GroupReason `json:"reasons,omitempty"`
	// Joining reports that at least one hosted group is still inside its
	// join grace window (that group's rules are suppressed, see Status).
	Joining bool `json:"joining,omitempty"`
}

// MultiEvaluator aggregates one per-group Evaluator per hosted group.
// Each group's rules read only that group's labeled flight series, so a
// partition that stalls one group's token degrades exactly that group's
// verdict while the others stay healthy.
type MultiEvaluator struct {
	node  string
	evals []*Evaluator
}

// NewMultiEvaluator builds one group evaluator per hosted group
// (0..groups-1) over the shared flight recorder.
func NewMultiEvaluator(f *obs.Flight, node string, groups int, th Thresholds) *MultiEvaluator {
	m := &MultiEvaluator{node: node}
	for g := 0; g < groups; g++ {
		m.evals = append(m.evals, NewGroupEvaluator(f, node, g, th))
	}
	return m
}

// Eval applies every group's rules to the current flight window.
func (m *MultiEvaluator) Eval() MultiStatus {
	st := MultiStatus{Node: m.node, Healthy: true}
	for _, e := range m.evals {
		gs := e.Eval()
		st.Samples = gs.Samples
		st.Groups = append(st.Groups, gs)
		if gs.Joining {
			st.Joining = true
		}
		for _, r := range gs.Reasons {
			st.Reasons = append(st.Reasons, GroupReason{Group: e.group, Rule: r.Rule, Reason: r.Detail})
		}
	}
	st.Healthy = len(st.Reasons) == 0
	return st
}

// Handler serves the aggregate verdict as JSON: 200 when every group is
// healthy, 503 listing the {group, rule, reason} triples when any is not.
func (m *MultiEvaluator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := m.Eval()
		w.Header().Set("Content-Type", "application/json")
		if !st.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(st)
	})
}

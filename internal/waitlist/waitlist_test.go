package waitlist

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

func msg(p mid.ProcID, s mid.Seq, deps ...mid.MID) *causal.Message {
	return &causal.Message{ID: mid.MID{Proc: p, Seq: s}, Deps: mid.DepList(deps)}
}

func TestAddRemoveHas(t *testing.T) {
	l := New(3)
	m := msg(0, 2)
	if !l.Add(m) {
		t.Error("first Add should succeed")
	}
	if l.Add(msg(0, 2)) {
		t.Error("duplicate Add should be rejected")
	}
	if !l.Has(m.ID) || l.Len() != 1 {
		t.Error("Has/Len wrong after Add")
	}
	if got := l.Remove(m.ID); got != m {
		t.Error("Remove should return the message")
	}
	if l.Remove(m.ID) != nil {
		t.Error("second Remove should return nil")
	}
	if l.Len() != 0 {
		t.Error("Len after Remove")
	}
}

func TestNextReadyCascade(t *testing.T) {
	tr := causal.NewTracker(2)
	l := New(2)
	// p0#2 waits for p0#1; p1#1 waits for p0#2.
	l.Add(msg(0, 2))
	l.Add(msg(1, 1, mid.MID{Proc: 0, Seq: 2}))
	if l.NextReady(tr) != nil {
		t.Fatal("nothing should be ready yet")
	}
	if err := tr.Process(msg(0, 1)); err != nil {
		t.Fatal(err)
	}
	var order []mid.MID
	for {
		m := l.NextReady(tr)
		if m == nil {
			break
		}
		if err := tr.Process(m); err != nil {
			t.Fatal(err)
		}
		l.Remove(m.ID)
		order = append(order, m.ID)
	}
	if len(order) != 2 || order[0] != (mid.MID{Proc: 0, Seq: 2}) || order[1] != (mid.MID{Proc: 1, Seq: 1}) {
		t.Errorf("cascade order = %v", order)
	}
	if l.Len() != 0 {
		t.Errorf("waiting list should drain, Len = %d", l.Len())
	}
}

func TestNextReadyDeterministicOrder(t *testing.T) {
	tr := causal.NewTracker(3)
	l := New(3)
	l.Add(msg(2, 1))
	l.Add(msg(0, 1))
	l.Add(msg(1, 1))
	if got := l.NextReady(tr); got.ID != (mid.MID{Proc: 0, Seq: 1}) {
		t.Errorf("NextReady = %v, want smallest MID first", got.ID)
	}
}

func TestOldestWaiting(t *testing.T) {
	l := New(3)
	l.Add(msg(1, 4))
	l.Add(msg(1, 2))
	l.Add(msg(2, 7))
	v := l.OldestWaiting()
	if !v.Equal(mid.SeqVector{0, 2, 7}) {
		t.Errorf("OldestWaiting = %v", v)
	}
}

func TestMissingBefore(t *testing.T) {
	l := New(3)
	// p1#3 waits; we processed p1 up to 1, so p1#2 is the first missing.
	l.Add(msg(1, 3))
	// p2#1 depends on p0#4; we processed p0 up to 1, first missing p0#2.
	l.Add(msg(2, 1, mid.MID{Proc: 0, Seq: 4}))
	need := l.MissingBefore(mid.SeqVector{1, 1, 0})
	if !need.Equal(mid.SeqVector{2, 2, 0}) {
		t.Errorf("MissingBefore = %v", need)
	}
}

func TestMissingBeforeSkipsAlreadyReceived(t *testing.T) {
	l := New(2)
	// p0#2 and p0#3 both wait; p0#2 is received, so nothing of p0's
	// sequence needs recovery (it will unblock once p0#1... wait: processed
	// is 1, so p0#2 is processable and just hasn't cascaded yet).
	l.Add(msg(0, 2))
	l.Add(msg(0, 3))
	need := l.MissingBefore(mid.SeqVector{1, 0})
	if need[0] != 0 {
		t.Errorf("MissingBefore = %v, first missing already held", need)
	}
}

func TestDropDoomedTransitive(t *testing.T) {
	tr := causal.NewTracker(3)
	l := New(3)
	// Sequence p0: message 1 is lost forever; condemn (0,1).
	// Waiting: p0#2 (doomed: implicit dep on condemned p0#1),
	//          p1#1 depending on p0#2 (doomed transitively),
	//          p2#1 independent (survives).
	l.Add(msg(0, 2))
	l.Add(msg(1, 1, mid.MID{Proc: 0, Seq: 2}))
	l.Add(msg(2, 1))
	if err := tr.Condemn(0, 1); err != nil {
		t.Fatal(err)
	}
	dropped := l.DropDoomed(tr)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d messages, want 2: %v", len(dropped), dropped)
	}
	if !l.Has(mid.MID{Proc: 2, Seq: 1}) {
		t.Error("independent message should survive")
	}
	if !tr.IsCondemned(mid.MID{Proc: 1, Seq: 1}) {
		t.Error("dropped message's suffix should be condemned")
	}
	// Condemnation is sticky: a late arrival depending on the dropped chain
	// is doomed immediately.
	late := msg(2, 1, mid.MID{Proc: 1, Seq: 1})
	if !tr.Doomed(late) {
		t.Error("late dependent arrival should be doomed")
	}
}

func TestDropDoomedNothing(t *testing.T) {
	tr := causal.NewTracker(2)
	l := New(2)
	l.Add(msg(0, 2))
	if dropped := l.DropDoomed(tr); dropped != nil {
		t.Errorf("nothing condemned, dropped %v", dropped)
	}
	if l.Len() != 1 {
		t.Error("list should be untouched")
	}
}

func TestAllReturnsEverything(t *testing.T) {
	l := New(2)
	l.Add(msg(0, 1))
	l.Add(msg(1, 1))
	if got := l.All(); len(got) != 2 {
		t.Errorf("All returned %d messages", len(got))
	}
}

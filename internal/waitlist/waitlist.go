// Package waitlist implements the waiting list of the urcgc protocol: the
// buffer holding received messages whose causal dependencies are not yet
// satisfied. Each subrun every process reports to the coordinator, per
// sequence, the oldest mid still waiting (the paper's waiting_i vector);
// the coordinator's min over those reports, compared against max_processed,
// reveals sequences whose next message is lost forever, triggering the
// agreed destruction of the dependent messages.
package waitlist

import (
	"urcgc/internal/causal"
	"urcgc/internal/mid"
)

// List is a per-process waiting list. It is not safe for concurrent use.
type List struct {
	n    int
	byID map[mid.MID]*causal.Message
}

// New returns an empty waiting list for a group of n processes.
func New(n int) *List {
	return &List{n: n, byID: make(map[mid.MID]*causal.Message)}
}

// Add enters a message into the waiting list. Duplicates (same MID) are
// ignored and reported as false.
func (l *List) Add(m *causal.Message) bool {
	if _, dup := l.byID[m.ID]; dup {
		return false
	}
	l.byID[m.ID] = m
	return true
}

// Has reports whether a message with the given MID is waiting.
func (l *List) Has(id mid.MID) bool {
	_, ok := l.byID[id]
	return ok
}

// Remove deletes the message with the given MID, returning it if present.
func (l *List) Remove(id mid.MID) *causal.Message {
	m := l.byID[id]
	if m != nil {
		delete(l.byID, id)
	}
	return m
}

// Len returns the number of waiting messages.
func (l *List) Len() int { return len(l.byID) }

// NextReady returns a waiting message that is processable under tr, or nil.
// To keep runs reproducible it returns the ready message with the smallest
// (Proc, Seq) identifier.
func (l *List) NextReady(tr *causal.Tracker) *causal.Message {
	var best *causal.Message
	for _, m := range l.byID {
		if !tr.Ready(m) {
			continue
		}
		if best == nil || m.ID.Less(best.ID) {
			best = m
		}
	}
	return best
}

// OldestWaiting returns, per sequence, the smallest waiting sequence number
// (0 where nothing of that sequence waits). This is the waiting_i vector a
// process sends to the coordinator each subrun.
func (l *List) OldestWaiting() mid.SeqVector {
	v := mid.NewSeqVector(l.n)
	for id := range l.byID {
		if int(id.Proc) >= l.n || id.Proc < 0 {
			continue
		}
		if v[id.Proc] == 0 || id.Seq < v[id.Proc] {
			v[id.Proc] = id.Seq
		}
	}
	return v
}

// MissingBefore returns, per sequence, the lowest sequence number that the
// process still needs to receive in order to unblock the oldest waiting
// message of that sequence, given the last-processed vector. Zero entries
// mean nothing of that sequence is waiting. This drives recovery requests.
func (l *List) MissingBefore(processed mid.SeqVector) mid.SeqVector {
	need := mid.NewSeqVector(l.n)
	for _, m := range l.byID {
		for _, d := range m.EffectiveDeps() {
			if int(d.Proc) >= len(processed) || d.Proc < 0 {
				continue
			}
			if processed[d.Proc] >= d.Seq {
				continue // satisfied
			}
			// The first missing message of d's sequence.
			first := processed[d.Proc] + 1
			if l.Has(mid.MID{Proc: d.Proc, Seq: first}) {
				continue // already received, just not processable yet
			}
			if need[d.Proc] == 0 || first < need[d.Proc] {
				need[d.Proc] = first
			}
		}
	}
	return need
}

// DropDoomed removes every waiting message that can never be processed
// because it — or, transitively, one of its dependencies — is condemned
// under tr. Dropping a message (q, k) condemns the suffix (q, k...) in tr,
// since a sequence with a destroyed element can never progress past it;
// the removal therefore iterates to a fixpoint. The dropped messages are
// returned for accounting.
func (l *List) DropDoomed(tr *causal.Tracker) []*causal.Message {
	var dropped []*causal.Message
	for {
		var victim *causal.Message
		for _, m := range l.byID {
			if tr.Doomed(m) {
				if victim == nil || m.ID.Less(victim.ID) {
					victim = m
				}
			}
		}
		if victim == nil {
			return dropped
		}
		delete(l.byID, victim.ID)
		// Ignore the error: the suffix may already be condemned more widely.
		_ = tr.Condemn(victim.ID.Proc, victim.ID.Seq)
		dropped = append(dropped, victim)
	}
}

// DropSender removes every waiting message of q's sequence — the local half
// of a join adoption: copies buffered from q's old incarnation are stale
// (any of them still needed is re-fetched through recovery against the
// decision's catch-up targets), and keeping them would collide with the
// sequence numbers the rejoined member reissues. Returns how many dropped.
func (l *List) DropSender(q mid.ProcID) int {
	dropped := 0
	for id := range l.byID {
		if id.Proc == q {
			delete(l.byID, id)
			dropped++
		}
	}
	return dropped
}

// DropStale removes every waiting message whose sequence position is at or
// below the processed vector — duplicates made obsolete by a fast-forward
// (a Compacted answer jumped the processed frontier over them). Left in
// place they would be re-examined as ready and crash the contiguity check.
func (l *List) DropStale(processed mid.SeqVector) int {
	dropped := 0
	for id := range l.byID {
		if int(id.Proc) < len(processed) && id.Proc >= 0 && id.Seq <= processed[id.Proc] {
			delete(l.byID, id)
			dropped++
		}
	}
	return dropped
}

// All returns the waiting messages in an unspecified order. Intended for
// tests and trace dumps.
func (l *List) All() []*causal.Message {
	out := make([]*causal.Message, 0, len(l.byID))
	for _, m := range l.byID {
		out = append(out, m)
	}
	return out
}

package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Error("get-or-create returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(9)
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 7 {
		t.Errorf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Errorf("SetMax = %d, want 11", got)
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.6 || got > 5.7 {
		t.Errorf("sum = %g", got)
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Errorf("p50 = %g, want 0.1", q)
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Errorf("p99 = %g, want 1 (overflow clips to largest bound)", q)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", nil).Observe(0.001)
				r.Events().Addf("ev %d", j)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	if got := r.Events().Total(); got != 8000 {
		t.Errorf("events total = %d, want 8000", got)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := New()
	r.Counter(Labeled("drops_total", "node", "0")).Add(3)
	r.Counter(Labeled("drops_total", "node", "1")).Add(4)
	r.Gauge("hist_len").Set(12)
	r.Histogram("rt_seconds", []float64{0.5, 1}).Observe(0.7)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE drops_total counter",
		`drops_total{node="0"} 3`,
		`drops_total{node="1"} 4`,
		"# TYPE hist_len gauge",
		"hist_len 12",
		"# TYPE rt_seconds histogram",
		`rt_seconds_bucket{le="0.5"} 0`,
		`rt_seconds_bucket{le="1"} 1`,
		`rt_seconds_bucket{le="+Inf"} 1`,
		"rt_seconds_sum 0.7",
		"rt_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("export missing %q in:\n%s", want, body)
		}
	}
	// One TYPE line per base name even with multiple labelled series.
	if n := strings.Count(body, "# TYPE drops_total"); n != 1 {
		t.Errorf("%d TYPE lines for drops_total", n)
	}
}

func TestSummaryAndSnapshot(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(2)
	r.Gauge("b").Set(-1)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	var sb strings.Builder
	r.WriteSummary(&sb)
	out := sb.String()
	for _, want := range []string{"a_total", "2", "b", "-1", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
	snap := r.Snapshot()
	if snap["a_total"] != 2 || snap["b"] != -1 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		l.Addf("e%d", i)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	if evs[0].Msg != "e2" || evs[3].Msg != "e5" {
		t.Errorf("ring order wrong: %v %v", evs[0].Msg, evs[3].Msg)
	}
	if l.Total() != 6 {
		t.Errorf("total = %d", l.Total())
	}
}

func TestThrottle(t *testing.T) {
	th := Throttle{Every: 50 * time.Millisecond}
	if _, ok := th.Allow(); !ok {
		t.Fatal("first call must pass")
	}
	suppressedSeen := false
	for i := 0; i < 10; i++ {
		if _, ok := th.Allow(); ok {
			t.Fatal("throttle leaked inside the interval")
		}
	}
	time.Sleep(60 * time.Millisecond)
	if s, ok := th.Allow(); ok && s == 10 {
		suppressedSeen = true
	}
	if !suppressedSeen {
		t.Error("suppressed count not reported after interval")
	}
}

func TestEventLogConcurrentWraparound(t *testing.T) {
	const (
		capacity   = 64
		goroutines = 8
		perG       = 500
	)
	l := NewEventLog(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Addf("g%d event %d", g, i)
			}
		}(g)
	}
	wg.Wait()

	total, dropped := l.Total(), l.Dropped()
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("Total = %d, want %d", total, want)
	}
	if want := int64(goroutines*perG - capacity); dropped != want {
		t.Fatalf("Dropped = %d, want %d (total-capacity)", dropped, want)
	}
	if evs := l.Events(); len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	if got := total - dropped; got != capacity {
		t.Fatalf("Total-Dropped = %d, want retained count %d", got, capacity)
	}
}

func TestPrometheusExportsEventCounters(t *testing.T) {
	r := New()
	r.Events().Addf("one")
	r.Events().Addf("two")
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, want := range []string{"obs_events_total 2", "obs_events_dropped_total 0"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("export missing %q in:\n%s", want, b.String())
		}
	}
}

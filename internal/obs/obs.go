// Package obs is a lightweight, dependency-free observability substrate
// for the live runtime: counters, gauges and histograms collected in a
// Registry, exported as Prometheus text, as expvar, or as an aligned
// shutdown summary table.
//
// The package exists because the paper's evaluation (Figures 5-6, Table 1)
// is reproduced only under simulated time in internal/metrics; the
// wall-clock runtime needs its own continuously-updated signals — round
// timing, inbox depth, dropped datagrams, history and waiting-list growth —
// to make recovery-driven behavior observable rather than assumed
// (Lundström-Raynal-Schiller's argument for self-stabilizing URB: buffer
// gauges are how divergence is detected).
//
// All instruments are safe for concurrent use. Creation through the
// Registry is get-or-create, so hot paths may call Counter(name) every
// time, though holding the returned pointer is cheaper.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the value to n if n is larger.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DurationBuckets suit wall-clock latencies from 50µs to ~13s.
var DurationBuckets = expBuckets(50e-6, 2, 18)

// LengthBuckets suit queue/buffer lengths from 1 to ~32k.
var LengthBuckets = expBuckets(1, 2, 16)

func expBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	sort.Float64s(h.bounds)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the mean observation (0 with no samples).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1)
// from the bucket boundaries: the smallest bound whose cumulative count
// covers q. The last bucket reports the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // overflow bucket: clip
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a named collection of instruments. The zero value is not
// usable; call New.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// histInts holds each histogram's precomputed flight-series names
	// (`<base>_count{labels}`, `<base>_sum_us{labels}`), so VisitInts can
	// surface latency histograms as integer series without allocating.
	histInts map[string]histIntNames
	events   *EventLog
}

type histIntNames struct{ count, sumUs string }

// New returns an empty registry with an event log of the given capacity
// (≤ 0 means a default of 256 events).
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		histInts: make(map[string]histIntNames),
		events:   NewEventLog(256),
	}
}

// Counter returns the counter with the given name, creating it if needed.
// The name may carry a Prometheus label suffix built with Labeled.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket bounds if needed (nil bounds means DurationBuckets).
// Bounds are fixed at creation; later calls may pass nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DurationBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
		base, labels := splitName(name)
		r.histInts[name] = histIntNames{
			count: base + "_count" + labelBody(labels),
			sumUs: base + "_sum_us" + labelBody(labels),
		}
	}
	return h
}

// Events returns the registry's event log.
func (r *Registry) Events() *EventLog { return r.events }

// Labeled composes a metric name with Prometheus labels from key/value
// pairs: Labeled("x_total", "node", "3") = `x_total{node="3"}`. The export
// format groups series sharing a base name under one TYPE line.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// baseName strips a label suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName separates a series name into base and label body ("" if none).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format, sorted by name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.hists)
	cs := make(map[string]*Counter, len(counters))
	gs := make(map[string]*Gauge, len(gauges))
	hs := make(map[string]*Histogram, len(hists))
	for _, k := range counters {
		cs[k] = r.counters[k]
	}
	for _, k := range gauges {
		gs[k] = r.gauges[k]
	}
	for _, k := range hists {
		hs[k] = r.hists[k]
	}
	r.mu.Unlock()

	lastType := ""
	for _, name := range counters {
		emitType(w, baseName(name), "counter", &lastType)
		fmt.Fprintf(w, "%s %d\n", name, cs[name].Value())
	}
	// The event log's own accounting, so scrapes can tell how much of the
	// trace ring has wrapped without hitting the /events endpoint.
	if r.events != nil {
		fmt.Fprintf(w, "# TYPE obs_events_total counter\nobs_events_total %d\n", r.events.Total())
		fmt.Fprintf(w, "# TYPE obs_events_dropped_total counter\nobs_events_dropped_total %d\n", r.events.Dropped())
	}
	lastType = ""
	for _, name := range gauges {
		emitType(w, baseName(name), "gauge", &lastType)
		fmt.Fprintf(w, "%s %d\n", name, gs[name].Value())
	}
	lastType = ""
	for _, name := range hists {
		h := hs[name]
		base, labels := splitName(name)
		emitType(w, base, "histogram", &lastType)
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labelPrefix(labels), formatBound(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labelPrefix(labels), cum)
		fmt.Fprintf(w, "%s_sum%s %g\n", base, labelBody(labels), h.Sum())
		fmt.Fprintf(w, "%s_count%s %d\n", base, labelBody(labels), h.Count())
	}
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func labelBody(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func emitType(w io.Writer, base, typ string, last *string) {
	if base == *last {
		return
	}
	*last = base
	fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteSummary renders an aligned human-readable table of every
// instrument: the shutdown report of a live node.
func (r *Registry) WriteSummary(w io.Writer) {
	r.mu.Lock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.hists)
	lines := make([][2]string, 0, len(counters)+len(gauges)+len(hists))
	for _, name := range counters {
		lines = append(lines, [2]string{name, fmt.Sprintf("%d", r.counters[name].Value())})
	}
	for _, name := range gauges {
		lines = append(lines, [2]string{name, fmt.Sprintf("%d", r.gauges[name].Value())})
	}
	for _, name := range hists {
		h := r.hists[name]
		lines = append(lines, [2]string{name, fmt.Sprintf(
			"count=%d mean=%.4g p50≤%.4g p99≤%.4g", h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99))})
	}
	r.mu.Unlock()

	width := 0
	for _, l := range lines {
		if len(l[0]) > width {
			width = len(l[0])
		}
	}
	for _, l := range lines {
		fmt.Fprintf(w, "  %-*s  %s\n", width, l[0], l[1])
	}
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// VisitInts calls f once for the current value of every plain counter and
// gauge, and twice per histogram with its integer projections — the
// observation count as `<base>_count{labels}` and the sum in microseconds
// as `<base>_sum_us{labels}` — holding the registry lock for the duration.
// The histogram projections are what put latency on the flight recorder:
// a window of (count, sum) deltas is a windowed mean, so per-group confirm
// and submit→stable latency ride /timeseries next to the gauges. Unlike
// Snapshot it allocates nothing (the projection names are precomputed at
// histogram creation), which is what the flight recorder's fixed-interval
// sampler needs; f must not call back into the registry.
func (r *Registry) VisitInts(f func(name string, v int64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		f(name, c.Value())
	}
	for name, g := range r.gauges {
		f(name, g.Value())
	}
	for name, h := range r.hists {
		names := r.histInts[name]
		f(names.count, h.Count())
		f(names.sumUs, int64(h.Sum()*1e6))
	}
}

// Snapshot returns the current value of every plain counter and gauge
// (histograms excluded), for tests and expvar export.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

package obs

import "expvar"

// PublishExpvar exposes the registry's counters and gauges under the given
// expvar name (served at /debug/vars). expvar.Publish panics on duplicate
// names, so call this at most once per name per process.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

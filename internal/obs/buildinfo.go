package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo sets the urcgc_build_info gauge to 1, labeled with
// the Go toolchain version and the VCS revision baked into the binary by
// `go build` (debug.ReadBuildInfo's vcs.revision setting, shortened to
// 12 hex digits; "unknown" when the binary was built outside a
// checkout, e.g. under `go test`). The constant-1 gauge with identity
// labels is the standard Prometheus idiom: joins against it annotate
// every other series with the build that produced it.
func RegisterBuildInfo(reg *Registry) {
	goVersion := runtime.Version()
	revision := "unknown"
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.GoVersion != "" {
			goVersion = info.GoVersion
		}
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
				if len(revision) > 12 {
					revision = revision[:12]
				}
			}
		}
	}
	reg.Gauge(Labeled("urcgc_build_info", "go_version", goVersion, "revision", revision)).Set(1)
}

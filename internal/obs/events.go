package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one timestamped trace entry.
type Event struct {
	At  time.Time
	Msg string
}

// EventLog is a bounded, concurrency-safe ring of trace events — the
// wall-clock counterpart of internal/trace's simulator Recorder. It makes
// by-design omissions (inbox overflow, malformed datagrams) verifiable
// from the log instead of silently assumed recovered.
type EventLog struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	full    bool
	total   int64
	dropped int64 // events overwritten by ring wraparound
}

// NewEventLog returns a log keeping the most recent cap events
// (cap ≤ 0 means 256).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &EventLog{ring: make([]Event, capacity)}
}

// Addf appends a formatted event, evicting the oldest when full.
func (l *EventLog) Addf(format string, args ...any) {
	e := Event{At: time.Now(), Msg: fmt.Sprintf(format, args...)}
	l.mu.Lock()
	if l.full {
		l.dropped++
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.next == 0 {
		l.full = true
	}
	l.total++
	l.mu.Unlock()
}

// Total returns how many events were ever added.
func (l *EventLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped returns how many events were overwritten by ring wraparound.
// Total − Dropped is always the number of retained events.
func (l *EventLog) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]Event(nil), l.ring[:l.next]...)
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Write renders the retained events, oldest first.
func (l *EventLog) Write(w io.Writer) {
	for _, e := range l.Events() {
		fmt.Fprintf(w, "%s %s\n", e.At.Format("15:04:05.000"), e.Msg)
	}
}

// Throttle rate-limits an action (typically logging) to once per period,
// counting what was suppressed in between so nothing is silently lost.
// The zero value with Every unset throttles to once per second.
type Throttle struct {
	// Every is the minimum interval between allowed actions.
	Every time.Duration

	mu         sync.Mutex
	last       time.Time
	suppressed int64
}

// Allow reports whether the action may run now; when it may, it also
// returns how many calls were suppressed since the last allowed one.
func (t *Throttle) Allow() (suppressed int64, ok bool) {
	every := t.Every
	if every == 0 {
		every = time.Second
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.last.IsZero() && now.Sub(t.last) < every {
		t.suppressed++
		return 0, false
	}
	t.last = now
	s := t.suppressed
	t.suppressed = 0
	return s, true
}

package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"time"
)

// Flight is a flight recorder: a fixed-interval sampler that snapshots
// every counter and gauge in a Registry into bounded ring buffers. It
// turns the instantaneous per-node metrics into short time series, which
// is what the health rules in internal/health and the cross-node
// divergence checks in urcgc-inspect evaluate — a stalled token or an
// unbounded history buffer is a property of a *window*, not of any one
// scrape.
//
// The steady-state Sample path allocates nothing: ring storage is
// preallocated, the registry is walked with VisitInts, and the visit
// closure is constructed once. A series that first appears mid-flight
// costs one allocation on its first sample and reads as zero for the
// samples before it existed (counters and gauges start at zero, so the
// backfill is semantically right).
//
// Sample, Snapshot and Tail are safe for concurrent use.
type Flight struct {
	reg      *Registry
	interval time.Duration
	capacity int

	mu      sync.Mutex
	samples int64 // total samples ever taken
	idx     int   // ring slot being written (valid inside sampleLocked)
	times   []int64
	series  map[string]*flightSeries
	visit   func(name string, v int64) // built once in NewFlight

	start time.Time
	mem   runtime.MemStats
	upG   *Gauge
	goroG *Gauge
	heapG *Gauge

	stopOnce sync.Once
	started  bool
	stop     chan struct{}
	done     chan struct{}
}

type flightSeries struct {
	vals []int64
}

// FlightOptions configure a Flight. Zero values select the defaults.
type FlightOptions struct {
	// Interval between samples when running via Start. Default 1s.
	Interval time.Duration
	// Cap is the ring length: how many samples of history are retained.
	// Default 512.
	Cap int
}

// NewFlight builds a recorder over reg. It registers the process gauges
// (uptime, goroutine count, heap in use) and the urcgc_build_info gauge
// so every flight automatically carries them; it does not start
// sampling — call Start, or drive Sample directly for deterministic
// tests.
func NewFlight(reg *Registry, opts FlightOptions) *Flight {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Cap <= 0 {
		opts.Cap = 512
	}
	f := &Flight{
		reg:      reg,
		interval: opts.Interval,
		capacity: opts.Cap,
		times:    make([]int64, opts.Cap),
		series:   make(map[string]*flightSeries),
		start:    time.Now(),
		upG:      reg.Gauge("process_uptime_seconds"),
		goroG:    reg.Gauge("process_goroutines"),
		heapG:    reg.Gauge("process_heap_inuse_bytes"),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	RegisterBuildInfo(reg)
	f.visit = func(name string, v int64) {
		s, ok := f.series[name]
		if !ok {
			s = &flightSeries{vals: make([]int64, f.capacity)}
			f.series[name] = s
		}
		s.vals[f.idx] = v
	}
	return f
}

// Interval returns the configured sampling interval.
func (f *Flight) Interval() time.Duration { return f.interval }

// Cap returns the ring length.
func (f *Flight) Cap() int { return f.capacity }

// Start launches the background sampler. Stop ends it; Start must be
// called at most once.
func (f *Flight) Start() {
	f.mu.Lock()
	f.started = true
	f.mu.Unlock()
	go func() {
		defer close(f.done)
		t := time.NewTicker(f.interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				f.Sample()
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit. Safe to
// call multiple times, and a no-op wait if Start was never called.
func (f *Flight) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if started {
		<-f.done
	}
}

// Sample takes one snapshot of every counter and gauge right now. The
// process gauges are refreshed first so they land in the same slot.
func (f *Flight) Sample() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.upG.Set(int64(time.Since(f.start) / time.Second))
	f.goroG.Set(int64(runtime.NumGoroutine()))
	runtime.ReadMemStats(&f.mem)
	f.heapG.Set(int64(f.mem.HeapInuse))
	f.idx = int(f.samples % int64(f.capacity))
	f.times[f.idx] = time.Now().UnixMilli()
	f.reg.VisitInts(f.visit)
	f.samples++
}

// Samples returns the total number of samples taken so far.
func (f *Flight) Samples() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.samples
}

// window returns (start ring slot, length) of the valid chronological
// window. Caller holds f.mu.
func (f *Flight) window() (start, n int) {
	n = int(f.samples)
	if n > f.capacity {
		n = f.capacity
	}
	start = int((f.samples - int64(n)) % int64(f.capacity))
	return start, n
}

// Tail appends the most recent values of the named series, oldest to
// newest, to buf and returns it. At most max values are returned (max
// ≤ 0 means the whole window). A series sampled for the first time
// mid-window reads zero before it existed. Returns buf unchanged if the
// series has never been sampled.
func (f *Flight) Tail(name string, buf []int64, max int) []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[name]
	if !ok {
		return buf
	}
	start, n := f.window()
	if max > 0 && n > max {
		start = (start + n - max) % f.capacity
		n = max
	}
	for i := 0; i < n; i++ {
		buf = append(buf, s.vals[(start+i)%f.capacity])
	}
	return buf
}

// FlightSnapshot is the JSON shape served from /timeseries: the
// chronological sample window for every recorded series.
type FlightSnapshot struct {
	IntervalMillis int64              `json:"interval_ms"`
	Samples        int64              `json:"samples"`
	TimesMillis    []int64            `json:"times_ms"`
	Series         map[string][]int64 `json:"series"`
}

// Snapshot copies out the full chronological window.
func (f *Flight) Snapshot() FlightSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	start, n := f.window()
	snap := FlightSnapshot{
		IntervalMillis: f.interval.Milliseconds(),
		Samples:        f.samples,
		TimesMillis:    make([]int64, n),
		Series:         make(map[string][]int64, len(f.series)),
	}
	for i := 0; i < n; i++ {
		snap.TimesMillis[i] = f.times[(start+i)%f.capacity]
	}
	for name, s := range f.series {
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			vals[i] = s.vals[(start+i)%f.capacity]
		}
		snap.Series[name] = vals
	}
	return snap
}

// Handler serves the flight window as JSON (the /timeseries endpoint).
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(f.Snapshot())
	})
}

package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestFlightRecordsWindow(t *testing.T) {
	reg := New()
	g := reg.Gauge("g")
	c := reg.Counter("c")
	f := NewFlight(reg, FlightOptions{Interval: time.Millisecond, Cap: 4})
	for i := 1; i <= 3; i++ {
		g.Set(int64(i * 10))
		c.Inc()
		f.Sample()
	}
	snap := f.Snapshot()
	if snap.Samples != 3 || len(snap.TimesMillis) != 3 {
		t.Fatalf("samples=%d times=%d, want 3/3", snap.Samples, len(snap.TimesMillis))
	}
	if got := snap.Series["g"]; got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("g series = %v", got)
	}
	if got := snap.Series["c"]; got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("c series = %v", got)
	}
	// Process gauges and build info ride along automatically.
	for _, name := range []string{"process_uptime_seconds", "process_goroutines", "process_heap_inuse_bytes"} {
		if _, ok := snap.Series[name]; !ok {
			t.Errorf("series %q missing from flight", name)
		}
	}
	found := false
	for name, vals := range snap.Series {
		if len(name) > 16 && name[:16] == "urcgc_build_info" {
			found = true
			if vals[len(vals)-1] != 1 {
				t.Errorf("build info gauge = %v, want 1", vals)
			}
		}
	}
	if !found {
		t.Error("urcgc_build_info series missing")
	}
}

func TestFlightRingWraps(t *testing.T) {
	reg := New()
	g := reg.Gauge("g")
	f := NewFlight(reg, FlightOptions{Cap: 4})
	for i := 1; i <= 10; i++ {
		g.Set(int64(i))
		f.Sample()
	}
	snap := f.Snapshot()
	if snap.Samples != 10 || len(snap.TimesMillis) != 4 {
		t.Fatalf("samples=%d window=%d, want 10/4", snap.Samples, len(snap.TimesMillis))
	}
	want := []int64{7, 8, 9, 10}
	got := snap.Series["g"]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrapped g series = %v, want %v", got, want)
		}
	}
}

func TestFlightTail(t *testing.T) {
	reg := New()
	g := reg.Gauge("g")
	f := NewFlight(reg, FlightOptions{Cap: 8})
	for i := 1; i <= 5; i++ {
		g.Set(int64(i))
		f.Sample()
	}
	if tail := f.Tail("g", nil, 3); len(tail) != 3 || tail[0] != 3 || tail[2] != 5 {
		t.Fatalf("Tail(3) = %v", tail)
	}
	if tail := f.Tail("g", nil, 0); len(tail) != 5 || tail[0] != 1 {
		t.Fatalf("Tail(0) = %v", tail)
	}
	if tail := f.Tail("absent", nil, 4); len(tail) != 0 {
		t.Fatalf("Tail(absent) = %v", tail)
	}
	// Reuses the caller's buffer.
	buf := make([]int64, 0, 8)
	if tail := f.Tail("g", buf, 2); &tail[0] != &buf[:1][0] {
		t.Fatal("Tail did not append into the provided buffer")
	}
}

// TestFlightLateSeriesBackfilled pins the alignment rule: a series first
// sampled mid-flight reads zero for the slots before it existed, keeping
// every series the same length as the timestamp window.
func TestFlightLateSeriesBackfilled(t *testing.T) {
	reg := New()
	reg.Gauge("early").Set(1)
	f := NewFlight(reg, FlightOptions{Cap: 8})
	f.Sample()
	f.Sample()
	reg.Gauge("late").Set(7)
	f.Sample()
	snap := f.Snapshot()
	late := snap.Series["late"]
	if len(late) != 3 || late[0] != 0 || late[1] != 0 || late[2] != 7 {
		t.Fatalf("late series = %v, want [0 0 7]", late)
	}
}

// TestFlightConcurrentReads hammers Snapshot/Tail from several goroutines
// while the sampler runs; the race detector is the assertion.
func TestFlightConcurrentReads(t *testing.T) {
	reg := New()
	g := reg.Gauge("g")
	f := NewFlight(reg, FlightOptions{Interval: 100 * time.Microsecond, Cap: 32})
	f.Start()
	defer f.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = f.Snapshot()
				buf = f.Tail("g", buf[:0], 8)
				g.Add(1)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if f.Samples() == 0 {
		t.Fatal("background sampler took no samples")
	}
}

// TestFlightHistogramProjection pins the integer projections VisitInts
// derives from each histogram: `<base>_count{labels}` and
// `<base>_sum_us{labels}` ride the flight window like any gauge, which is
// how per-group latency histograms reach /timeseries.
func TestFlightHistogramProjection(t *testing.T) {
	reg := New()
	h := reg.Histogram(Labeled("lat_seconds", "group", "2"), DurationBuckets)
	f := NewFlight(reg, FlightOptions{Cap: 4})
	h.Observe(0.001)
	h.Observe(0.002)
	f.Sample()
	snap := f.Snapshot()
	if got := snap.Series[`lat_seconds_count{group="2"}`]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("count series = %v, want [2]", got)
	}
	got := snap.Series[`lat_seconds_sum_us{group="2"}`]
	if len(got) != 1 || got[0] < 2900 || got[0] > 3100 {
		t.Fatalf("sum_us series = %v, want ~[3000]", got)
	}
}

// TestFlightSampleAllocFree proves the steady-state Sample path allocates
// nothing once every series has been seen: the recorder can run at a
// tight interval inside the soak harness without disturbing the
// zero-allocation hot-path guarantees of PR 2.
func TestFlightSampleAllocFree(t *testing.T) {
	reg := New()
	for i := 0; i < 8; i++ {
		reg.Gauge(Labeled("g", "node", string(rune('0'+i)))).Set(int64(i))
		reg.Counter(Labeled("c", "node", string(rune('0'+i)))).Inc()
		reg.Histogram(Labeled("h_seconds", "node", string(rune('0'+i))), DurationBuckets).Observe(0.001)
	}
	f := NewFlight(reg, FlightOptions{Cap: 16})
	f.Sample() // warm: series rings created here
	if got := testing.AllocsPerRun(100, f.Sample); got > 0 {
		t.Errorf("warmed Sample allocates %.2f/op, want 0", got)
	}
}

func TestFlightHandler(t *testing.T) {
	reg := New()
	reg.Gauge("g").Set(42)
	f := NewFlight(reg, FlightOptions{Cap: 4})
	f.Sample()
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/timeseries", nil))
	var snap FlightSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if got := snap.Series["g"]; len(got) != 1 || got[0] != 42 {
		t.Fatalf("g = %v", got)
	}
}

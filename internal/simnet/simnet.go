// Package simnet provides the simulated datagram subnetwork the protocol
// entities run over: n-unicast sends with sub-round latency, failure
// injection under the general omission model, and byte-accurate load
// accounting.
//
// The service deliberately matches the weakest transport of Section 5
// (h = 1): pure datagrams, no acknowledgements, no retransmission. The
// urcgc entity sits directly on top, as in the paper's simulations, so every
// loss must be recovered through the protocol's own history mechanism.
package simnet

import (
	"fmt"

	"urcgc/internal/fault"
	"urcgc/internal/metrics"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

// Handler receives delivered PDUs. Implementations must not retain pdu
// beyond the call unless they own it; the simulator passes PDUs by
// reference without copying.
type Handler interface {
	Recv(src mid.ProcID, pdu wire.PDU)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(src mid.ProcID, pdu wire.PDU)

// Recv implements Handler.
func (f HandlerFunc) Recv(src mid.ProcID, pdu wire.PDU) { f(src, pdu) }

// Latency computes the one-way delay of a packet. It must return a value in
// (0, TicksPerRound) so that a packet sent at a round's start is delivered
// before the next round begins — the round-synchronous model of Section 4.
type Latency func(src, dst mid.ProcID, eng *sim.Engine) sim.Time

// DefaultLatency is half a round plus uniform jitter of up to a fifth of a
// round: rtd/4 on average each way, so a request/decision exchange completes
// within its subrun.
func DefaultLatency(_, _ mid.ProcID, eng *sim.Engine) sim.Time {
	return sim.TicksPerRound/2 + sim.Time(eng.RNG().Int63n(int64(sim.TicksPerRound/5)))
}

// FixedLatency returns a Latency with no jitter.
func FixedLatency(d sim.Time) Latency {
	return func(_, _ mid.ProcID, _ *sim.Engine) sim.Time { return d }
}

// Network is the simulated subnetwork for one group.
type Network struct {
	eng      *sim.Engine
	inj      fault.Injector
	latency  Latency
	handlers []Handler
	load     *metrics.Load
	drops    int

	// OnDeliver, when non-nil, observes every successful delivery. Used by
	// tests and the trace recorder.
	OnDeliver func(src, dst mid.ProcID, pdu wire.PDU)
}

// New returns a network for n processes over the given engine with the given
// failure injector.
func New(eng *sim.Engine, n int, inj fault.Injector) *Network {
	if inj == nil {
		inj = fault.None{}
	}
	return &Network{
		eng:      eng,
		inj:      inj,
		latency:  DefaultLatency,
		handlers: make([]Handler, n),
		load:     metrics.NewLoad(),
	}
}

// SetLatency replaces the latency model. Must be called before traffic flows.
func (nw *Network) SetLatency(l Latency) { nw.latency = l }

// Attach registers the handler for process p. Traffic to an unattached
// process is silently dropped (it models a site that never came up).
func (nw *Network) Attach(p mid.ProcID, h Handler) {
	if int(p) >= len(nw.handlers) || p < 0 {
		panic(fmt.Sprintf("simnet: attach of process %d outside group of %d", p, len(nw.handlers)))
	}
	nw.handlers[p] = h
}

// N returns the group cardinality.
func (nw *Network) N() int { return len(nw.handlers) }

// Load returns the byte-accurate traffic accountant. Load is accounted at
// send time (offered load), before any omission, which matches how the
// paper counts generated control messages.
func (nw *Network) Load() *metrics.Load { return nw.load }

// Drops returns the number of packets destroyed by the failure injector.
func (nw *Network) Drops() int { return nw.drops }

// Send transmits one datagram from src to dst. Sends from a crashed process
// or to oneself are ignored (processes handle their own messages locally).
func (nw *Network) Send(src, dst mid.ProcID, pdu wire.PDU) {
	if src == dst {
		return
	}
	now := nw.eng.Now()
	if nw.inj.Crashed(src, now) {
		return
	}
	nw.load.Add(pdu.Kind(), pdu.EncodedSize())
	if nw.inj.DropSend(src, dst, now) {
		nw.drops++
		return
	}
	d := nw.latency(src, dst, nw.eng)
	nw.eng.After(d, func() { nw.deliver(src, dst, pdu) })
}

// Multicast transmits the PDU to every destination with independent
// latencies and losses — the n-unicast semantics of the paper's transport
// service. The sender itself is skipped.
func (nw *Network) Multicast(src mid.ProcID, dsts []mid.ProcID, pdu wire.PDU) {
	for _, dst := range dsts {
		nw.Send(src, dst, pdu)
	}
}

func (nw *Network) deliver(src, dst mid.ProcID, pdu wire.PDU) {
	now := nw.eng.Now()
	if nw.inj.Crashed(dst, now) || nw.inj.DropRecv(src, dst, now) {
		nw.drops++
		return
	}
	h := nw.handlers[dst]
	if h == nil {
		nw.drops++
		return
	}
	if nw.OnDeliver != nil {
		nw.OnDeliver(src, dst, pdu)
	}
	h.Recv(src, pdu)
}

// MatrixLatency draws per-pair latencies from a base matrix plus uniform
// jitter, modelling heterogeneous topologies (e.g. two LANs joined by a
// slower link). Base entries and jitter must keep every delay inside a
// round so the round-synchronous protocol assumptions hold; values are
// clamped defensively.
func MatrixLatency(base [][]sim.Time, jitter sim.Time) Latency {
	return func(src, dst mid.ProcID, eng *sim.Engine) sim.Time {
		d := sim.TicksPerRound / 2
		if int(src) < len(base) && int(dst) < len(base[src]) {
			d = base[src][dst]
		}
		if jitter > 0 {
			d += sim.Time(eng.RNG().Int63n(int64(jitter)))
		}
		if d < 1 {
			d = 1
		}
		if max := sim.TicksPerRound - 1; d > max {
			d = max
		}
		return d
	}
}

// TwoSiteLatency models two sites: traffic within a site takes local,
// traffic across the cut takes remote (both plus jitter). SiteA lists the
// members of one site.
func TwoSiteLatency(siteA map[mid.ProcID]bool, local, remote, jitter sim.Time) Latency {
	return func(src, dst mid.ProcID, eng *sim.Engine) sim.Time {
		d := local
		if siteA[src] != siteA[dst] {
			d = remote
		}
		if jitter > 0 {
			d += sim.Time(eng.RNG().Int63n(int64(jitter)))
		}
		if d < 1 {
			d = 1
		}
		if max := sim.TicksPerRound - 1; d > max {
			d = max
		}
		return d
	}
}

package simnet

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/wire"
)

func data(p mid.ProcID, s mid.Seq) *wire.Data {
	return &wire.Data{Msg: causal.Message{ID: mid.MID{Proc: p, Seq: s}}}
}

type recorder struct {
	got []wire.PDU
	src []mid.ProcID
	at  []sim.Time
	eng *sim.Engine
}

func (r *recorder) Recv(src mid.ProcID, pdu wire.PDU) {
	r.got = append(r.got, pdu)
	r.src = append(r.src, src)
	r.at = append(r.at, r.eng.Now())
}

func TestSendDelivers(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 3, nil)
	rec := &recorder{eng: eng}
	nw.Attach(1, rec)
	nw.Send(0, 1, data(0, 1))
	eng.Run()
	if len(rec.got) != 1 || rec.src[0] != 0 {
		t.Fatalf("got %d deliveries", len(rec.got))
	}
	if rec.at[0] <= 0 || rec.at[0] >= sim.TicksPerRound {
		t.Errorf("delivery at %d, want within the round", rec.at[0])
	}
	if nw.Load().TotalMsgs() != 1 {
		t.Errorf("load = %v", nw.Load())
	}
}

func TestSelfSendIgnored(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, nil)
	rec := &recorder{eng: eng}
	nw.Attach(0, rec)
	nw.Send(0, 0, data(0, 1))
	eng.Run()
	if len(rec.got) != 0 {
		t.Error("self-send must not traverse the network")
	}
	if nw.Load().TotalMsgs() != 0 {
		t.Error("self-send must not be accounted")
	}
}

func TestMulticastFanout(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 4, nil)
	var count int
	for p := mid.ProcID(1); p < 4; p++ {
		nw.Attach(p, HandlerFunc(func(mid.ProcID, wire.PDU) { count++ }))
	}
	nw.Multicast(0, []mid.ProcID{0, 1, 2, 3}, data(0, 1))
	eng.Run()
	if count != 3 {
		t.Errorf("deliveries = %d, want 3 (self skipped)", count)
	}
	if nw.Load().Counts[wire.KindData] != 3 {
		t.Errorf("accounted %d sends", nw.Load().Counts[wire.KindData])
	}
}

func TestCrashedSenderSendsNothing(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, fault.Crash{Proc: 0, At: 0})
	rec := &recorder{eng: eng}
	nw.Attach(1, rec)
	nw.Send(0, 1, data(0, 1))
	eng.Run()
	if len(rec.got) != 0 {
		t.Error("crashed sender must emit nothing")
	}
	if nw.Load().TotalMsgs() != 0 {
		t.Error("crashed sends are not offered load")
	}
}

func TestCrashedReceiverAbsorbsNothing(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, fault.Crash{Proc: 1, At: 0})
	rec := &recorder{eng: eng}
	nw.Attach(1, rec)
	nw.Send(0, 1, data(0, 1))
	eng.Run()
	if len(rec.got) != 0 {
		t.Error("crashed receiver must get nothing")
	}
	if nw.Drops() != 1 {
		t.Errorf("Drops = %d", nw.Drops())
	}
}

func TestSendOmission(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, &fault.EveryNth{N: 2, Side: fault.AtSend})
	rec := &recorder{eng: eng}
	nw.Attach(1, rec)
	for i := 0; i < 6; i++ {
		nw.Send(0, 1, data(0, mid.Seq(i+1)))
	}
	eng.Run()
	if len(rec.got) != 3 {
		t.Errorf("deliveries = %d, want 3", len(rec.got))
	}
	// Offered load counts all 6; drops count 3.
	if nw.Load().TotalMsgs() != 6 || nw.Drops() != 3 {
		t.Errorf("load=%d drops=%d", nw.Load().TotalMsgs(), nw.Drops())
	}
}

func TestDeliveryWithinRound(t *testing.T) {
	eng := sim.NewEngine(7)
	nw := New(eng, 2, nil)
	rec := &recorder{eng: eng}
	nw.Attach(1, rec)
	// Send at the start of round 3.
	eng.At(sim.StartOfRound(3), func() { nw.Send(0, 1, data(0, 1)) })
	eng.Run()
	if len(rec.got) != 1 {
		t.Fatal("no delivery")
	}
	if got := sim.RoundOf(rec.at[0]); got != 3 {
		t.Errorf("delivered in round %d, want 3", got)
	}
}

func TestFixedLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, nil)
	nw.SetLatency(FixedLatency(123))
	rec := &recorder{eng: eng}
	nw.Attach(1, rec)
	nw.Send(0, 1, data(0, 1))
	eng.Run()
	if rec.at[0] != 123 {
		t.Errorf("delivered at %d", rec.at[0])
	}
}

func TestUnattachedDestinationDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, nil)
	nw.Send(0, 1, data(0, 1))
	eng.Run()
	if nw.Drops() != 1 {
		t.Errorf("Drops = %d", nw.Drops())
	}
}

func TestOnDeliverHook(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, 2, nil)
	nw.Attach(1, HandlerFunc(func(mid.ProcID, wire.PDU) {}))
	var hooked int
	nw.OnDeliver = func(src, dst mid.ProcID, pdu wire.PDU) {
		hooked++
		if src != 0 || dst != 1 || pdu.Kind() != wire.KindData {
			t.Errorf("hook saw %d->%d %v", src, dst, pdu.Kind())
		}
	}
	nw.Send(0, 1, data(0, 1))
	eng.Run()
	if hooked != 1 {
		t.Errorf("hooked = %d", hooked)
	}
}

func TestAttachOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(sim.NewEngine(1), 2, nil).Attach(5, HandlerFunc(func(mid.ProcID, wire.PDU) {}))
}

func TestMatrixLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	base := [][]sim.Time{{0, 100}, {200, 0}}
	l := MatrixLatency(base, 0)
	if got := l(0, 1, eng); got != 100 {
		t.Errorf("latency(0,1) = %d", got)
	}
	if got := l(1, 0, eng); got != 200 {
		t.Errorf("latency(1,0) = %d", got)
	}
	// Out-of-matrix pairs fall back to half a round.
	if got := l(5, 9, eng); got != sim.TicksPerRound/2 {
		t.Errorf("fallback = %d", got)
	}
	// Clamping: zero base becomes >= 1; huge base stays inside the round.
	if got := l(0, 0, eng); got < 1 {
		t.Errorf("clamped low = %d", got)
	}
	huge := MatrixLatency([][]sim.Time{{2 * sim.TicksPerRound}}, 0)
	if got := huge(0, 0, eng); got >= sim.TicksPerRound {
		t.Errorf("clamped high = %d", got)
	}
}

func TestTwoSiteLatency(t *testing.T) {
	eng := sim.NewEngine(2)
	l := TwoSiteLatency(map[mid.ProcID]bool{0: true, 1: true}, 50, 400, 0)
	if got := l(0, 1, eng); got != 50 {
		t.Errorf("local = %d", got)
	}
	if got := l(0, 2, eng); got != 400 {
		t.Errorf("remote = %d", got)
	}
	if got := l(2, 3, eng); got != 50 {
		t.Errorf("other-site local = %d", got)
	}
}

// TestTwoSiteProtocolRun: the protocol converges over a heterogeneous
// topology; delays grow with the remote link but nothing else changes.
func TestTwoSiteProtocolRun(t *testing.T) {
	// Exercised at the protocol level in core (latency is injected through
	// the cluster config); here verify deliveries respect the model.
	eng := sim.NewEngine(3)
	nw := New(eng, 4, nil)
	nw.SetLatency(TwoSiteLatency(map[mid.ProcID]bool{0: true, 1: true}, 50, 400, 10))
	var localAt, remoteAt sim.Time
	nw.Attach(1, HandlerFunc(func(mid.ProcID, wire.PDU) { localAt = eng.Now() }))
	nw.Attach(2, HandlerFunc(func(mid.ProcID, wire.PDU) { remoteAt = eng.Now() }))
	nw.Send(0, 1, data(0, 1))
	nw.Send(0, 2, data(0, 2))
	eng.Run()
	if !(localAt < remoteAt) {
		t.Errorf("local %d should beat remote %d", localAt, remoteAt)
	}
}

//go:build !linux || (!amd64 && !arm64)

package topics

// txBurst is unavailable off linux/amd64 and linux/arm64; the shared
// sender writes one datagram per syscall instead.
type txBurst struct{}

func newTxBurst(m *MultiNode) *txBurst { return nil }

func (b *txBurst) send(m *MultiNode, batch []txPacket) bool { return false }

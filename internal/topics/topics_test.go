package topics

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	conns := make([]*net.UDPConn, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

func meshConfig(n, groups, shards int) Config {
	return Config{
		Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
		Groups:        groups,
		Shards:        shards,
		RoundDuration: 500 * time.Microsecond,
	}
}

// waitGroupConverged polls until every member's processed vector in every
// group equals want.
func waitGroupConverged(t *testing.T, nodes []*MultiNode, groups int, want mid.SeqVector, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
	check:
		for _, n := range nodes {
			for g := 0; g < groups; g++ {
				var got mid.SeqVector
				sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
				err := n.Snapshot(sctx, uint32(g), func(p *core.Process) { got = p.Processed().Clone() })
				scancel()
				if err != nil || !got.Equal(want) {
					ok = false
					break check
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("multi-group cluster never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMeshMultiGroupConverges drives several groups over the in-process
// mesh concurrently: every group must reach the same processed vector on
// every member, and groups must not bleed into each other.
func TestMeshMultiGroupConverges(t *testing.T) {
	const n, groups, shards, perGroup = 3, 4, 2, 6
	cfg := meshConfig(n, groups, shards)
	cfg.BatchWindow = 200 * time.Microsecond
	c, err := NewMultiCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, groups*perGroup)
	for g := 0; g < groups; g++ {
		for k := 0; k < perGroup; k++ {
			wg.Add(1)
			g, k := g, k
			go func() {
				defer wg.Done()
				payload := []byte(fmt.Sprintf("g%d-%d", g, k))
				if _, err := c.Node(0).Send(ctx, uint32(g), payload, nil); err != nil {
					errs <- fmt.Errorf("group %d send %d: %w", g, k, err)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	nodes := make([]*MultiNode, n)
	for i := range nodes {
		nodes[i] = c.Node(mid.ProcID(i))
	}
	waitGroupConverged(t, nodes, groups, mid.SeqVector{perGroup, 0, 0}, 20*time.Second)

	for i, n := range nodes {
		counts := n.GroupCounts()
		if len(counts) != groups {
			t.Fatalf("node %d: %d group counts, want %d", i, len(counts), groups)
		}
		for g, got := range counts {
			if got != perGroup {
				t.Errorf("node %d group %d: processed %d, want %d", i, g, got, perGroup)
			}
		}
	}
}

// TestMeshCausalOrderPerGroup checks causal submissions stay ordered
// within their group while other groups churn.
func TestMeshCausalOrderPerGroup(t *testing.T) {
	const n, groups = 3, 3
	cfg := meshConfig(n, groups, 2)
	cfg.BatchWindow = 200 * time.Microsecond
	c, err := NewMultiCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	inds, err := c.Node(1).Indications(1)
	if err != nil {
		t.Fatal(err)
	}
	const chain = 5
	for k := 0; k < chain; k++ {
		if _, err := c.Node(0).SendCausal(ctx, 1, []byte(fmt.Sprintf("c%d", k))); err != nil {
			t.Fatal(err)
		}
		// Background noise on the other groups.
		if _, err := c.Node(2).Send(ctx, 0, []byte("noise"), nil); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	deadline := time.After(20 * time.Second)
	for seen < chain {
		select {
		case ind := <-inds:
			if ind.Group != 1 {
				t.Fatalf("group-1 indication stream delivered group %d", ind.Group)
			}
			if ind.Msg.ID.Proc != 0 {
				continue // another member's message
			}
			want := fmt.Sprintf("c%d", seen)
			if string(ind.Msg.Payload) != want {
				t.Fatalf("causal chain out of order: got %q, want %q", ind.Msg.Payload, want)
			}
			seen++
		case <-deadline:
			t.Fatalf("saw %d of %d causal messages", seen, chain)
		}
	}
}

// TestUDPMultiGroupConverges runs the full UDP runtime: G groups sharing
// one socket per member, demuxed by the group envelope, shipped through
// the shared burst sender.
func TestUDPMultiGroupConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	const n, groups, shards, perGroup = 3, 3, 2, 4
	reg := obs.New()
	peers := freePorts(t, n)
	nodes := make([]*MultiNode, n)
	for i := 0; i < n; i++ {
		node, err := NewMultiNode(Config{
			Config:        core.Config{N: n, K: 5, R: 16, SelfExclusion: true},
			Groups:        groups,
			Shards:        shards,
			Self:          mid.ProcID(i),
			Peers:         peers,
			RoundDuration: 3 * time.Millisecond,
			BatchWindow:   2 * time.Millisecond,
			Metrics:       reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, n*groups*perGroup)
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			for k := 0; k < perGroup; k++ {
				wg.Add(1)
				i, g, k := i, g, k
				go func() {
					defer wg.Done()
					payload := []byte(fmt.Sprintf("u%d-%d-%d", i, g, k))
					if _, err := nodes[i].Send(ctx, uint32(g), payload, nil); err != nil {
						errs <- fmt.Errorf("node %d group %d send %d: %w", i, g, k, err)
					}
				}()
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := mid.SeqVector{perGroup, perGroup, perGroup}
	waitGroupConverged(t, nodes, groups, want, 20*time.Second)

	if reg.Counter("topics_send_oversize_total").Value() != 0 {
		t.Error("multi-group traffic tripped the oversize guard")
	}
}

// TestUDPInteropGroupZero pins the wire-compat acceptance: a MultiNode
// hosting group 0 interoperates with single-group rt.UDPNodes in the same
// group — PR-6 frames and multi-group frames are byte-identical there.
func TestUDPInteropGroupZero(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	const n = 3
	peers := freePorts(t, n)
	base := core.Config{N: n, K: 5, R: 16, SelfExclusion: true}

	legacy := make([]*rt.UDPNode, 2)
	for i := 0; i < 2; i++ {
		node, err := rt.NewUDPNode(rt.UDPConfig{
			Config:        base,
			Self:          mid.ProcID(i),
			Peers:         peers,
			RoundDuration: 3 * time.Millisecond,
			BatchWindow:   2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		legacy[i] = node
	}
	multi, err := NewMultiNode(Config{
		Config:        base,
		Groups:        1,
		Shards:        1,
		Self:          2,
		Peers:         peers,
		RoundDuration: 3 * time.Millisecond,
		BatchWindow:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range legacy {
		node.Start()
	}
	multi.Start()
	defer func() {
		for _, node := range legacy {
			node.Stop()
		}
		multi.Stop()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const per = 4
	for k := 0; k < per; k++ {
		if _, err := legacy[0].Send(ctx, []byte(fmt.Sprintf("L%d", k)), nil); err != nil {
			t.Fatalf("legacy send %d: %v", k, err)
		}
		if _, err := multi.Send(ctx, 0, []byte(fmt.Sprintf("M%d", k)), nil); err != nil {
			t.Fatalf("multi send %d: %v", k, err)
		}
	}
	want := mid.SeqVector{per, 0, per}
	deadline := time.Now().Add(20 * time.Second)
	for {
		var legacyGot, multiGot mid.SeqVector
		sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
		err1 := legacy[1].Snapshot(sctx, func(p *core.Process) { legacyGot = p.Processed().Clone() })
		err2 := multi.Snapshot(sctx, 0, func(p *core.Process) { multiGot = p.Processed().Clone() })
		scancel()
		if err1 == nil && err2 == nil && legacyGot.Equal(want) && multiGot.Equal(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mixed legacy/multi group never converged: legacy=%v multi=%v want=%v",
				legacyGot, multiGot, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLegacyNodeDropsGroupTaggedFrames pins graceful degradation in the
// other direction: a single-group rt.UDPNode receiving a group-tagged
// frame counts it as a drop instead of mis-decoding it.
func TestLegacyNodeDropsGroupTaggedFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and timers")
	}
	reg := obs.New()
	peers := freePorts(t, 2)
	node, err := rt.NewUDPNode(rt.UDPConfig{
		Config:        core.Config{N: 2, K: 100, R: 256, SelfExclusion: true},
		Self:          0,
		Peers:         peers,
		RoundDuration: 3 * time.Millisecond,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	defer node.Stop()

	multi, err := NewMultiNode(Config{
		Config:        core.Config{N: 2, K: 100, R: 256, SelfExclusion: true},
		Groups:        2,
		Shards:        1,
		Self:          1,
		Peers:         peers,
		RoundDuration: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	multi.Start()
	defer multi.Stop()

	// Group-1 traffic from the multi-group node reaches the legacy node's
	// socket as group-tagged frames it must refuse.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The group-1 peer never answers (the legacy node drops those
		// frames), so the confirm blocks until the context ends — the
		// round ticks alone already broadcast group-tagged REQUESTs.
		sctx, scancel := context.WithTimeout(ctx, 3*time.Second)
		defer scancel()
		multi.Send(sctx, 1, []byte("tagged"), nil)
	}()
	deadline := time.Now().Add(15 * time.Second)
	for reg.Counter("udp_drop_badsrc_total").Value()+reg.Counter("udp_drop_short_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("legacy node never counted a dropped group-tagged frame")
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-done
}

// TestConcurrentDemuxShardDispatchStress is the race-detector stress for
// the demux path: many groups over few shards, every member sending on
// every group concurrently while status snapshots and group counts are
// read from other goroutines.
func TestConcurrentDemuxShardDispatchStress(t *testing.T) {
	const n, groups, shards, perGroup = 3, 8, 3, 4
	cfg := meshConfig(n, groups, shards)
	cfg.BatchWindow = 200 * time.Microsecond
	cfg.Metrics = obs.New()
	c, err := NewMultiCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, n*groups*perGroup)
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			for k := 0; k < perGroup; k++ {
				wg.Add(1)
				i, g, k := i, g, k
				go func() {
					defer wg.Done()
					payload := []byte(fmt.Sprintf("s%d-%d-%d", i, g, k))
					if _, err := c.Node(mid.ProcID(i)).Send(ctx, uint32(g), payload, nil); err != nil {
						errs <- fmt.Errorf("node %d group %d send %d: %w", i, g, k, err)
					}
				}()
			}
		}
	}
	// Concurrent observers: statuses and counts while traffic flows.
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		for j := 0; j < 50; j++ {
			for i := 0; i < n; i++ {
				node := c.Node(mid.ProcID(i))
				node.GroupCounts()
				sctx, scancel := context.WithTimeout(ctx, time.Second)
				node.GroupStatus(sctx, uint32(j%groups))
				scancel()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	<-obsDone
	nodes := make([]*MultiNode, n)
	for i := range nodes {
		nodes[i] = c.Node(mid.ProcID(i))
	}
	waitGroupConverged(t, nodes, groups, mid.SeqVector{perGroup, perGroup, perGroup}, 30*time.Second)
}

// TestConfigValidation pins the construction-time guardrails.
func TestConfigValidation(t *testing.T) {
	base := meshConfig(3, 2, 1)
	if _, err := NewMultiCluster(base); err != nil {
		t.Fatalf("valid config refused: %v", err)
	}
	bad := base
	bad.Groups = -1
	if _, err := NewMultiCluster(bad); err == nil {
		t.Error("negative group count accepted")
	}
	bad = base
	bad.Shards = -2
	if _, err := NewMultiCluster(bad); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := NewMultiNode(Config{
		Config: core.Config{N: 2, K: 3, R: 8},
		Self:   0,
		Peers:  []string{"127.0.0.1:0"}, // one peer for a group of two
	}); err == nil {
		t.Error("mismatched peer list accepted")
	}
}

// TestMultiNodeStopFailsPendingSends mirrors the coalescer shutdown edge
// at the multi-group API: Sends stranded in an open window when Stop runs
// must error out, in every group, never hang.
func TestMultiNodeStopFailsPendingSends(t *testing.T) {
	const groups = 3
	cfg := meshConfig(2, groups, 2)
	cfg.BatchWindow = time.Hour // only Stop can resolve these Sends
	c, err := NewMultiCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	done := make(chan error, groups)
	for g := 0; g < groups; g++ {
		g := g
		go func() {
			_, err := c.Node(0).Send(context.Background(), uint32(g), []byte("stranded"), nil)
			done <- err
		}()
	}
	// Wait until each submission is inside its coalescer window, so Stop
	// races against queued waiters rather than unstarted goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for g := 0; g < groups; g++ {
		for c.Node(0).sessions[g].coal.Pending() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("submission never entered the coalescer window")
			}
			time.Sleep(time.Millisecond)
		}
	}
	c.Stop()
	for g := 0; g < groups; g++ {
		select {
		case err := <-done:
			if err == nil {
				t.Error("Send stranded in a stopped coalescer returned nil error")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Send leaked: still blocked after Stop")
		}
	}
}

package topics

import (
	"sync"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// MultiCluster is an in-process group of multi-group members, for tests
// and benchmarks: every frame still crosses the wire codec and the group
// envelope, so the demux path is exercised byte-for-byte as over UDP, but
// delivery is a function call instead of a socket.
//
// Rounds run in lockstep across every node and group — each round's
// barrier waits for all G×N protocol entities — removing
// scheduler-starvation artifacts exactly as rt.Cluster does for one group.
type MultiCluster struct {
	cfg   Config
	nodes []*MultiNode

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewMultiCluster builds (but does not start) N in-process multi-group
// members. Config.Self and Config.Peers are ignored; every member hosts
// every group.
func NewMultiCluster(cfg Config) (*MultiCluster, error) {
	cfg.fill(true)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &MultiCluster{cfg: cfg, stopCh: make(chan struct{})}
	c.nodes = make([]*MultiNode, cfg.N)
	for i := range c.nodes {
		ncfg := cfg
		ncfg.Self = mid.ProcID(i)
		n := newMultiNode(ncfg)
		n.mesh = c
		c.nodes[i] = n
	}
	for _, n := range c.nodes {
		if err := n.initSessions(func(s *session) core.Transport { return meshTransport{s} }); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Start launches every node's shard loops and the lockstep clock.
func (c *MultiCluster) Start() {
	for _, n := range c.nodes {
		n.Start()
	}
	c.wg.Add(1)
	go func() { defer c.wg.Done(); c.clock() }()
}

// Stop halts the clock, then every node. Pending coalescer submissions are
// failed, never leaked.
func (c *MultiCluster) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.wg.Wait()
	for _, n := range c.nodes {
		n.Stop()
	}
}

// Node returns member i.
func (c *MultiCluster) Node(i mid.ProcID) *MultiNode { return c.nodes[i] }

// N returns the group cardinality.
func (c *MultiCluster) N() int { return c.cfg.N }

// Groups returns how many groups every member hosts.
func (c *MultiCluster) Groups() int { return c.cfg.Groups }

// clock drives rounds in lockstep: every protocol entity of every node
// finishes round r before any starts r+1, and at least RoundDuration
// elapses per round.
func (c *MultiCluster) clock() {
	round := 0
	dones := make([]chan struct{}, 0, c.cfg.N*c.cfg.Groups)
	for {
		start := time.Now()
		r := round
		round++
		dones = dones[:0]
		for _, n := range c.nodes {
			for _, s := range n.sessions {
				s := s
				done := make(chan struct{})
				select {
				case s.shard.inbox <- func() { s.obs.MarkRound(r); s.proc.StartRound(r); close(done) }:
					dones = append(dones, done)
				case <-c.stopCh:
					return
				}
			}
		}
		for _, done := range dones {
			select {
			case <-done:
			case <-c.stopCh:
				return
			}
		}
		if rest := c.cfg.RoundDuration - time.Since(start); rest > 0 {
			select {
			case <-time.After(rest):
			case <-c.stopCh:
				return
			}
		}
	}
}

// meshTransport frames one group's PDUs with the group envelope and feeds
// them straight into the destination node's demultiplexer — the same
// validate-decode-dispatch path UDP frames take. The frame buffer never
// outlives the call: demux decodes a self-owned PDU before returning, so
// the pooled buffer goes back immediately.
type meshTransport struct{ s *session }

func (t meshTransport) frame(pdu wire.PDU) ([]byte, error) {
	buf := wire.GetBuf(wire.EnvelopeSize(t.s.group) + pdu.EncodedSize())[:0]
	buf = wire.AppendEnvelope(buf, t.s.group, t.s.m.cfg.Self)
	return wire.MarshalAppend(buf, pdu)
}

func (t meshTransport) Send(dst mid.ProcID, pdu wire.PDU) {
	m := t.s.m
	if dst == m.cfg.Self || dst < 0 || int(dst) >= m.cfg.N {
		return
	}
	if m.cfg.DropFrame != nil && m.cfg.DropFrame(t.s.group, m.cfg.Self, dst) {
		return
	}
	frame, err := t.frame(pdu)
	if err != nil || !m.checkSize(frame, pdu) {
		wire.PutBuf(frame)
		return
	}
	m.mesh.nodes[dst].demux(frame)
	wire.PutBuf(frame)
}

// Broadcast marshals the PDU exactly once; every destination demultiplexes
// its own self-owned PDU from the same bytes.
func (t meshTransport) Broadcast(pdu wire.PDU) {
	m := t.s.m
	frame, err := t.frame(pdu)
	if err != nil || !m.checkSize(frame, pdu) {
		wire.PutBuf(frame)
		return
	}
	for i := 0; i < m.cfg.N; i++ {
		dst := mid.ProcID(i)
		if dst == m.cfg.Self {
			continue
		}
		if m.cfg.DropFrame != nil && m.cfg.DropFrame(t.s.group, m.cfg.Self, dst) {
			continue
		}
		m.mesh.nodes[dst].demux(frame)
	}
	wire.PutBuf(frame)
}

//go:build linux && arm64

package topics

// sendmmsg(2) syscall number on linux/arm64.
const sysSENDMMSG = 269

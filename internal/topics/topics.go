// Package topics runs many independent urcgc groups inside one process
// over one shared transport. Each group is a full protocol entity — its
// own rotating coordinator, history buffer and causal order — multiplexed
// onto a single UDP socket (or one in-process mesh) by the group-id frame
// envelope from internal/wire.
//
// The runtime is sharded: groups hash onto S shard loops, each shard a
// goroutine owning its groups' core.Process instances, so G groups cost S
// protocol goroutines rather than G and independent groups make progress
// in parallel. One reader goroutine demultiplexes incoming frames onto the
// shards; one sender goroutine coalesces outgoing datagrams from every
// group into burst syscalls.
//
// Demux ownership rule: the reader's receive buffer never crosses a
// goroutine boundary. A frame is validated and decoded into a self-owned
// PDU on the reader goroutine; only that PDU travels into a shard inbox.
// Symmetrically, outgoing frames are pooled buffers owned by the shared
// sender (refcounted across a broadcast fan-out) and return to the wire
// pool after the last write.
package topics

import (
	"context"
	"fmt"
	"log"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"urcgc/internal/capture"
	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/faultrt"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
	"urcgc/internal/wire"
)

// maxDatagram bounds datagrams in both directions, matching the
// single-group UDP runtime so a mixed deployment agrees on the limit.
const maxDatagram = 64 * 1024

// Config configures one member's multi-group runtime. The embedded
// core.Config applies to every group; all groups share the member
// identity, the peer set and the socket.
type Config struct {
	core.Config
	// Groups is how many independent groups (ids 0..Groups-1) this member
	// hosts. Group 0 is wire-compatible with single-group nodes. Default 1.
	Groups int
	// Shards is how many shard loops carry the groups. Groups hash onto
	// shards (group mod Shards); each shard is one goroutine owning its
	// groups' protocol entities. Default min(Groups, GOMAXPROCS).
	Shards int
	// Self is this member's identity in every group.
	Self mid.ProcID
	// Peers maps every ProcID to its UDP address; Peers[Self] is our bind
	// address. Ignored by the in-process mesh.
	Peers []string
	// RoundDuration is the wall-clock round length, shared by all groups.
	// Default 20ms over UDP, 2ms on the mesh.
	RoundDuration time.Duration
	// BatchWindow enables each group's coalescing sender, exactly as in
	// the single-group runtimes. Zero disables coalescing.
	BatchWindow time.Duration
	// InboxDepth bounds each shard's event queue (default 4096). A full
	// shard inbox drops datagrams — an omission the protocol repairs.
	InboxDepth int
	// IndicationDepth bounds each group's indication queue (default 1024).
	IndicationDepth int
	// TxDepth bounds the shared outgoing-datagram queue (default 4096).
	TxDepth int
	// Metrics, when non-nil, receives per-group protocol series (each
	// carrying node and group labels) plus shared socket accounting.
	Metrics *obs.Registry
	// Lifecycle, when non-nil, enables per-MID span tracking on every
	// group: each session gets its own group-tagged lifecycle.Tracer
	// (reachable via Lifecycle/Lifecycles for /trace), with the watchdog
	// Blame defaulting to naming the group and its shard. Nil keeps the
	// hot path free of tracing branches.
	Lifecycle *lifecycle.Options
	// DropFrame, when non-nil, is consulted before every outgoing frame
	// with (group, src, dst); returning true silently drops it. A test
	// seam for partitioning individual groups (the chaos harness's
	// group-partition soak); nil in production.
	DropFrame func(group uint32, src, dst mid.ProcID) bool
	// Capture, when non-nil, records every frame crossing this member's
	// shared socket — ingress with the demux verdict, egress with the
	// send verdict, every group on the one ring (records carry the group
	// id) — for /capture dumps and offline replay. Nil costs one pointer
	// check per frame and zero allocations.
	Capture *capture.Ring
	// Logf receives throttled operator-visible warnings; nil means
	// log.Printf.
	Logf func(format string, args ...any)
	// Joined, when non-nil, fires on the owning shard goroutine each time a
	// member started with Config.Join set is re-admitted into one hosted
	// group. Groups rejoin independently — a restarted multi-group member
	// is fully back only once every hosted group has fired.
	Joined func(group uint32)
}

func (c *Config) fill(mesh bool) {
	if c.Groups == 0 {
		c.Groups = 1
	}
	if c.Shards == 0 {
		c.Shards = c.Groups
		if p := runtime.GOMAXPROCS(0); c.Shards > p {
			c.Shards = p
		}
	}
	if c.RoundDuration == 0 {
		if mesh {
			c.RoundDuration = 2 * time.Millisecond
		} else {
			c.RoundDuration = 20 * time.Millisecond
		}
	}
	if c.BatchWindow > 0 && c.BatchMax == 0 {
		c.BatchMax = core.DefaultBatchMax
	}
	if c.InboxDepth == 0 {
		c.InboxDepth = 4096
	}
	if c.IndicationDepth == 0 {
		c.IndicationDepth = 1024
	}
	if c.TxDepth == 0 {
		c.TxDepth = 4096
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

func (c *Config) validate() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Groups < 1 || c.Groups > wire.MaxGroupID {
		return fmt.Errorf("topics: %d groups outside [1,%d]", c.Groups, int64(wire.MaxGroupID))
	}
	if c.Shards < 1 {
		return fmt.Errorf("topics: %d shards", c.Shards)
	}
	return nil
}

// Indication is one message processed in causal order, tagged with the
// group that carried it.
type Indication struct {
	Group uint32
	Msg   causal.Message
}

var errStopped = fmt.Errorf("topics: node stopped")

// MultiNode is one member of every hosted group: G protocol entities over
// one socket, S shard loops, one reader, one shared sender.
type MultiNode struct {
	cfg      Config
	sessions []*session
	shards   []*shard

	// UDP mode; all nil on a mesh node.
	conn  *net.UDPConn
	peers []*net.UDPAddr
	tx    *txSender

	mesh *MultiCluster // set on mesh nodes only

	mobs *multiObs

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	warnTh   obs.Throttle
}

// NewMultiNode binds the shared socket and prepares every group's protocol
// entity. Start launches the runtime; Stop halts it.
func NewMultiNode(cfg Config) (*MultiNode, error) {
	cfg.fill(false)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Peers) != cfg.N {
		return nil, fmt.Errorf("topics: %d peers for group of %d", len(cfg.Peers), cfg.N)
	}
	if cfg.Self < 0 || int(cfg.Self) >= cfg.N {
		return nil, fmt.Errorf("topics: self %d outside group", cfg.Self)
	}
	m := newMultiNode(cfg)
	m.peers = make([]*net.UDPAddr, cfg.N)
	for i, p := range cfg.Peers {
		addr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			return nil, fmt.Errorf("topics: peer %d %q: %w", i, p, err)
		}
		m.peers[i] = addr
	}
	conn, err := net.ListenUDP("udp", m.peers[cfg.Self])
	if err != nil {
		return nil, fmt.Errorf("topics: bind %q: %w", cfg.Peers[cfg.Self], err)
	}
	m.conn = conn
	m.tx = newTxSender(m)
	if err := m.initSessions(func(s *session) core.Transport { return groupTransport{s} }); err != nil {
		conn.Close()
		return nil, err
	}
	return m, nil
}

func newMultiNode(cfg Config) *MultiNode {
	m := &MultiNode{
		cfg:    cfg,
		stopCh: make(chan struct{}),
		mobs:   newMultiObs(cfg.Metrics),
	}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		m.shards[i] = &shard{m: m, inbox: make(chan func(), cfg.InboxDepth)}
	}
	return m
}

// initSessions builds one protocol entity per group, each wired to its
// shard and to the transport tp constructs for it.
func (m *MultiNode) initSessions(tp func(*session) core.Transport) error {
	m.sessions = make([]*session, m.cfg.Groups)
	for g := range m.sessions {
		s := &session{
			m:       m,
			group:   uint32(g),
			shard:   m.shards[g%len(m.shards)],
			ind:     make(chan Indication, m.cfg.IndicationDepth),
			waiters: make(map[mid.MID]chan struct{}),
			obs:     rt.NewNodeObs(m.cfg.Metrics, m.cfg.Self, m.cfg.N, "group", strconv.Itoa(g)),
			gobs:    newGroupObs(m.cfg.Metrics, m.cfg.Self, g),
		}
		if s.gobs != nil {
			s.stableWait = make(map[mid.MID]time.Time)
		}
		if m.cfg.Lifecycle != nil {
			opts := *m.cfg.Lifecycle
			if opts.Blame == nil {
				group, shardIdx, shards := g, g%len(m.shards), len(m.shards)
				opts.Blame = func([]mid.MID) string {
					return fmt.Sprintf("group %d on shard %d/%d", group, shardIdx, shards)
				}
			}
			s.tracer = lifecycle.NewGroup(m.cfg.Self, m.cfg.N, s.group, opts, m.cfg.Metrics)
		}
		cb := core.Callbacks{
			OnProcess: func(msg *causal.Message) {
				s.processed.Add(1)
				s.mu.Lock()
				if ch, ok := s.waiters[msg.ID]; ok {
					close(ch)
					delete(s.waiters, msg.ID)
				}
				s.mu.Unlock()
				select {
				case s.ind <- Indication{Group: s.group, Msg: *msg}:
				default: // slow consumer: indication dropped, like a full SAP queue
					s.obs.IndicationDropped()
				}
			},
			// Shard goroutine, like every core callback: settles the
			// submit→stable histogram for our own newly stable messages.
			OnStable: func(clean mid.SeqVector) {
				s.settleStable(clean)
			},
			OnLeave: func(r core.LeaveReason) {
				s.mu.Lock()
				s.leftWith = &r
				for _, ch := range s.waiters {
					close(ch)
				}
				s.waiters = map[mid.MID]chan struct{}{}
				s.mu.Unlock()
				clear(s.stableWait)
			},
			OnJoined: func() {
				if m.cfg.Joined != nil {
					m.cfg.Joined(s.group)
				}
			},
		}
		proc, err := core.NewProcess(m.cfg.Self, m.cfg.Config, tp(s), rt.InstallLifecycle(s.tracer, s.obs.Install(cb)))
		if err != nil {
			return fmt.Errorf("topics: group %d: %w", g, err)
		}
		s.proc = proc
		s.obs.MarkJoining(m.cfg.Join)
		if m.cfg.BatchWindow > 0 {
			s.coal = rt.NewCoalescer(m.cfg.BatchWindow, m.cfg.BatchMax, m.cfg.BatchBytes,
				s.shard.enqueueWait, s.submitNow, s.obs.Coalesced)
		}
		m.sessions[g] = s
	}
	return nil
}

// Start launches the shard loops and, over UDP, the reader, the round
// clock and the shared sender. Mesh nodes are driven by their cluster.
func (m *MultiNode) Start() {
	for _, sh := range m.shards {
		sh := sh
		m.wg.Add(1)
		go func() { defer m.wg.Done(); sh.loop() }()
	}
	if m.conn != nil {
		m.wg.Add(3)
		go func() { defer m.wg.Done(); m.reader() }()
		go func() { defer m.wg.Done(); m.clock() }()
		go func() { defer m.wg.Done(); m.tx.loop() }()
	}
}

// Stop halts every group and closes the socket. Submissions still pending
// inside any group's open coalescer window are failed, never leaked.
func (m *MultiNode) Stop() {
	m.stopOnce.Do(func() {
		close(m.stopCh)
		if m.conn != nil {
			m.conn.Close()
		}
		for _, s := range m.sessions {
			s.coal.Stop()
		}
	})
	m.wg.Wait()
}

// Groups returns how many groups this member hosts.
func (m *MultiNode) Groups() int { return len(m.sessions) }

// Shards returns how many shard loops carry them.
func (m *MultiNode) Shards() int { return len(m.shards) }

// LocalAddr returns the bound UDP address (useful with port 0 in tests),
// or nil on a mesh node or when the address is unavailable.
func (m *MultiNode) LocalAddr() *net.UDPAddr {
	if m.conn == nil {
		return nil
	}
	addr, _ := m.conn.LocalAddr().(*net.UDPAddr)
	return addr
}

func (m *MultiNode) session(group uint32) (*session, error) {
	if int64(group) >= int64(len(m.sessions)) {
		return nil, fmt.Errorf("topics: group %d outside [0,%d)", group, len(m.sessions))
	}
	return m.sessions[group], nil
}

// Send submits a payload on one group and blocks until it is processed
// locally (the urcgc-data Rq/Conf pair), or the context ends.
func (m *MultiNode) Send(ctx context.Context, group uint32, payload []byte, deps mid.DepList) (mid.MID, error) {
	s, err := m.session(group)
	if err != nil {
		return mid.MID{}, err
	}
	return s.send(ctx, payload, deps, false)
}

// SendCausal is Send with the conservative depend-on-everything-seen
// labelling computed inside the owning shard.
func (m *MultiNode) SendCausal(ctx context.Context, group uint32, payload []byte) (mid.MID, error) {
	s, err := m.session(group)
	if err != nil {
		return mid.MID{}, err
	}
	return s.send(ctx, payload, nil, true)
}

// Indications returns one group's urcgc-data.Ind stream.
func (m *MultiNode) Indications(group uint32) (<-chan Indication, error) {
	s, err := m.session(group)
	if err != nil {
		return nil, err
	}
	return s.ind, nil
}

// Left reports whether and why this member halted itself in one group.
// Groups leave independently: an exclusion in one group does not touch the
// others.
func (m *MultiNode) Left(group uint32) (core.LeaveReason, bool) {
	s, err := m.session(group)
	if err != nil {
		return 0, false
	}
	return s.left()
}

// Snapshot runs fn with safe access to one group's protocol entity, on the
// shard goroutine that owns it.
func (m *MultiNode) Snapshot(ctx context.Context, group uint32, fn func(p *core.Process)) error {
	s, err := m.session(group)
	if err != nil {
		return err
	}
	done := make(chan struct{})
	select {
	case s.shard.inbox <- func() { fn(s.proc); close(done) }:
	case <-m.stopCh:
		return errStopped
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-m.stopCh:
		return errStopped
	case <-ctx.Done():
		return ctx.Err()
	}
}

// GroupStatus captures a race-free sample of one group's protocol state,
// in the same shape the single-group runtimes serve.
func (m *MultiNode) GroupStatus(ctx context.Context, group uint32) (rt.Status, error) {
	var st rt.Status
	err := m.Snapshot(ctx, group, func(p *core.Process) { st = rt.StatusOf(p) })
	return st, err
}

// Status reports group 0 in the single-group shape, annotated with the
// per-group processed counts and (on a multi-group member) one compact
// GroupStatus per hosted group, so the /status endpoint keeps its shape
// for single-group consumers while urcgc-inspect can judge view
// divergence and progress skew per group.
func (m *MultiNode) Status(ctx context.Context) (rt.Status, error) {
	st, err := m.GroupStatus(ctx, 0)
	if err != nil {
		return st, err
	}
	st.GroupProcessed = m.GroupCounts()
	if len(m.sessions) > 1 {
		st.Groups = make([]rt.GroupStatus, len(m.sessions))
		for g := range m.sessions {
			gs := &st.Groups[g]
			gid := uint32(g)
			if err := m.Snapshot(ctx, gid, func(p *core.Process) { *gs = rt.GroupStatusOf(gid, p) }); err != nil {
				return st, err
			}
		}
	}
	return st, nil
}

// Lifecycle returns one group's span tracer, or nil when tracing is
// disabled or the group is not hosted. A nil tracer is a no-op receiver,
// so callers may use the result unconditionally.
func (m *MultiNode) Lifecycle(group uint32) *lifecycle.Tracer {
	s, err := m.session(group)
	if err != nil {
		return nil
	}
	return s.tracer
}

// Lifecycles returns the per-group span tracers indexed by group id, or
// nil when tracing is disabled.
func (m *MultiNode) Lifecycles() []*lifecycle.Tracer {
	if m.cfg.Lifecycle == nil {
		return nil
	}
	out := make([]*lifecycle.Tracer, len(m.sessions))
	for g, s := range m.sessions {
		out[g] = s.tracer
	}
	return out
}

// GroupCounts returns the number of messages processed per group so far.
// Safe from any goroutine, even after Stop — it is the shutdown summary's
// data source.
func (m *MultiNode) GroupCounts() []int64 {
	out := make([]int64, len(m.sessions))
	for i, s := range m.sessions {
		out[i] = s.processed.Load()
	}
	return out
}

// warnf logs an operator-visible warning at a throttled rate, appending
// how many similar warnings were suppressed in between.
func (m *MultiNode) warnf(format string, args ...any) {
	suppressed, ok := m.warnTh.Allow()
	if !ok {
		return
	}
	if suppressed > 0 {
		format += fmt.Sprintf(" [+%d warnings suppressed]", suppressed)
	}
	m.cfg.Logf("topics[%d]: "+format, append([]any{int(m.cfg.Self)}, args...)...)
}

// capNote renders the warn-line suffix joining a discard to its captured
// frame; empty when capture is disabled.
func (m *MultiNode) capNote(seq uint64) string {
	if m.cfg.Capture == nil {
		return ""
	}
	return fmt.Sprintf(" [capture #%d]", seq)
}

// shard is one loop goroutine owning the protocol entities of every group
// hashed onto it. Everything a session's core.Process does happens on its
// shard's goroutine, preserving the single-owner concurrency contract.
type shard struct {
	m     *MultiNode
	inbox chan func()
}

func (sh *shard) loop() {
	for {
		select {
		case <-sh.m.stopCh:
			return
		case fn := <-sh.inbox:
			fn()
		}
	}
}

// enqueue hands a datagram closure to the shard loop on behalf of one
// group's session; a full inbox drops it, like any datagram, charging
// both the shared counter and the group's own. Reports whether it was
// accepted.
func (sh *shard) enqueue(s *session, fn func()) bool {
	select {
	case sh.inbox <- fn:
		return true
	default:
		if sh.m.mobs != nil {
			sh.m.mobs.shardDrops.Inc()
		}
		if s.gobs != nil {
			s.gobs.shardDrops.Inc()
		}
		return false
	}
}

// enqueueWait hands a user command to the shard loop, blocking while the
// inbox is full — commands are not datagrams and must not be lost.
func (sh *shard) enqueueWait(fn func()) error {
	select {
	case sh.inbox <- fn:
		return nil
	case <-sh.m.stopCh:
		return errStopped
	}
}

// session is one group's protocol entity plus its user-facing plumbing:
// confirm waiters, indication stream, coalescing sender, labeled metrics.
type session struct {
	m      *MultiNode
	group  uint32
	shard  *shard
	proc   *core.Process
	obs    *rt.NodeObs
	gobs   *groupObs         // nil when metrics are disabled
	tracer *lifecycle.Tracer // nil unless Config.Lifecycle is set
	coal   *rt.Coalescer     // nil unless BatchWindow is set
	ind    chan Indication

	processed atomic.Int64

	// stableWait maps our in-flight submissions to their protocol-submit
	// time until uniform stability covers them. Shard goroutine only
	// (written in submitNow, settled in OnStable, cleared in OnLeave), so
	// it needs no lock. Nil when metrics are disabled.
	stableWait map[mid.MID]time.Time

	mu       sync.Mutex
	waiters  map[mid.MID]chan struct{}
	leftWith *core.LeaveReason
}

// groupObs is one group's share of the runtime accounting the shared
// multiObs counters cannot attribute: which group's shard inbox dropped,
// which group's ticks were skipped, and the group's submit→stable latency.
type groupObs struct {
	shardDrops   *obs.Counter
	ticksSkipped *obs.Counter
	submitStable *obs.Histogram
}

func newGroupObs(reg *obs.Registry, self mid.ProcID, group int) *groupObs {
	if reg == nil {
		return nil
	}
	kv := []string{"node", strconv.Itoa(int(self)), "group", strconv.Itoa(group)}
	return &groupObs{
		shardDrops:   reg.Counter(obs.Labeled("topics_shard_dropped_total", kv...)),
		ticksSkipped: reg.Counter(obs.Labeled("topics_ticks_skipped_total", kv...)),
		submitStable: reg.Histogram(obs.Labeled("topics_submit_to_stable_seconds", kv...), obs.DurationBuckets),
	}
}

// settleStable observes the submit→stable latency of every own submission
// the full-group clean vector newly covers. Shard goroutine only.
func (s *session) settleStable(clean mid.SeqVector) {
	if s.gobs == nil || len(s.stableWait) == 0 {
		return
	}
	now := time.Now()
	for id, t0 := range s.stableWait {
		if int(id.Proc) < len(clean) && id.Seq <= clean[id.Proc] {
			s.gobs.submitStable.Observe(now.Sub(t0).Seconds())
			delete(s.stableWait, id)
		}
	}
}

func (s *session) left() (core.LeaveReason, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leftWith == nil {
		return 0, false
	}
	return *s.leftWith, true
}

// submitNow runs one queued submission. Shard goroutine only.
func (s *session) submitNow(sub *rt.Submission) {
	var id mid.MID
	var err error
	if sub.Causal {
		id, err = s.proc.SubmitCausal(sub.Payload)
	} else {
		id, err = s.proc.Submit(sub.Payload, sub.Deps)
	}
	if err == nil {
		s.mu.Lock()
		s.waiters[id] = sub.Confirm
		s.mu.Unlock()
		if s.gobs != nil {
			s.stableWait[id] = time.Now()
		}
	}
	sub.Res <- rt.SubResult{ID: id, Err: err}
}

func (s *session) unwait(id mid.MID, ch chan struct{}) {
	s.mu.Lock()
	if s.waiters[id] == ch {
		delete(s.waiters, id)
	}
	s.mu.Unlock()
}

func (s *session) send(ctx context.Context, payload []byte, deps mid.DepList, causal bool) (mid.MID, error) {
	t0 := time.Now()
	sub := &rt.Submission{
		Payload: payload,
		Deps:    deps,
		Causal:  causal,
		Res:     make(chan rt.SubResult, 1),
		Confirm: make(chan struct{}),
	}
	if s.coal != nil {
		s.coal.Add(sub)
	} else if err := s.shard.enqueueWait(func() { s.submitNow(sub) }); err != nil {
		return mid.MID{}, err
	}
	var r rt.SubResult
	select {
	case r = <-sub.Res:
	case <-s.m.stopCh:
		return mid.MID{}, errStopped
	case <-ctx.Done():
		return mid.MID{}, ctx.Err()
	}
	if r.Err != nil {
		return mid.MID{}, r.Err
	}
	select {
	case <-sub.Confirm:
	case <-s.m.stopCh:
		s.unwait(r.ID, sub.Confirm)
		return r.ID, errStopped
	case <-ctx.Done():
		s.unwait(r.ID, sub.Confirm)
		return r.ID, ctx.Err()
	}
	if _, left := s.left(); left {
		return r.ID, fmt.Errorf("topics: member %d left group %d", s.m.cfg.Self, s.group)
	}
	s.obs.ObserveConfirm(t0)
	return r.ID, nil
}

// clock drives every group's rounds off one free-running ticker (UDP mode;
// the mesh cluster uses a lockstep barrier instead). A full shard inbox
// skips that group's tick — an overload omission the protocol repairs.
func (m *MultiNode) clock() {
	t := time.NewTicker(m.cfg.RoundDuration)
	defer t.Stop()
	round := 0
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			r := round
			round++
			for _, s := range m.sessions {
				s := s
				if !s.shard.enqueue(s, func() { s.obs.MarkRound(r); s.proc.StartRound(r) }) {
					if m.mobs != nil {
						m.mobs.ticksSkipped.Inc()
					}
					if s.gobs != nil {
						s.gobs.ticksSkipped.Inc()
					}
					m.warnf("group %d round tick %d skipped: shard inbox full (overload omission)", s.group, r)
				}
			}
		}
	}
}

// reader is the single demultiplexing receiver: it owns the receive buffer
// for the whole node and never lets it cross a goroutine boundary.
func (m *MultiNode) reader() {
	// One byte of slack past maxDatagram distinguishes an exactly-full
	// datagram from one the kernel truncated to fit the buffer.
	buf := make([]byte, maxDatagram+1)
	for {
		sz, _, err := m.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-m.stopCh:
				return
			default:
				if m.mobs != nil {
					m.mobs.dropReadErr.Inc()
				}
				m.warnf("socket read error (datagram lost): %v", err)
				continue
			}
		}
		m.demux(buf[:sz])
	}
}

// demux validates one envelope frame, decodes the PDU into self-owned
// memory, and dispatches it onto the owning group's shard. pkt is read
// only during the call; the caller may reuse it immediately after —
// the demux ownership rule that keeps the reader single-buffered.
func (m *MultiNode) demux(pkt []byte) {
	if m.mobs != nil {
		m.mobs.recvDatagrams.Inc()
		m.mobs.recvBytes.Add(int64(len(pkt)))
	}
	if len(pkt) > maxDatagram {
		if m.mobs != nil {
			m.mobs.dropOversize.Inc()
		}
		seq := m.cfg.Capture.Record(capture.DirIngress, 0, mid.None, capture.DropOversize, 0, nil)
		m.warnf("oversize datagram truncated past %d bytes: dropped%s", maxDatagram, m.capNote(seq))
		return
	}
	group, src, body, err := wire.ParseEnvelope(pkt)
	if err != nil {
		if m.mobs != nil {
			m.mobs.dropEnvelope.Inc()
		}
		seq := m.cfg.Capture.Record(capture.DirIngress, 0, mid.None, capture.DropShort, 0, pkt)
		m.warnf("unparseable datagram (%d bytes): dropped%s", len(pkt), m.capNote(seq))
		return
	}
	if int64(group) >= int64(len(m.sessions)) {
		if m.mobs != nil {
			m.mobs.dropGroup.Inc()
		}
		seq := m.cfg.Capture.Record(capture.DirIngress, group, src, capture.DropGroup, 0, body)
		m.warnf("datagram for unhosted group %d (hosting %d): dropped%s", group, len(m.sessions), m.capNote(seq))
		return
	}
	if src < 0 || int(src) >= m.cfg.N {
		if m.mobs != nil {
			m.mobs.dropBadSrc.Inc()
		}
		seq := m.cfg.Capture.Record(capture.DirIngress, group, src, capture.DropBadSrc, 0, body)
		m.warnf("datagram claims member %d outside group of %d: dropped%s", src, m.cfg.N, m.capNote(seq))
		return
	}
	pdu, err := wire.Unmarshal(body)
	if err != nil {
		if m.mobs != nil {
			m.mobs.dropDecode.Inc()
		}
		seq := m.cfg.Capture.Record(capture.DirIngress, group, src, capture.DropDecode, 0, body)
		m.warnf("undecodable datagram for group %d: %v%s", group, err, m.capNote(seq))
		return
	}
	s := m.sessions[group]
	if s.shard.enqueue(s, func() { s.proc.Recv(src, pdu) }) {
		m.cfg.Capture.Record(capture.DirIngress, group, src, capture.Delivered, 0, body)
	} else {
		seq := m.cfg.Capture.Record(capture.DirIngress, group, src, capture.DropInbox, 0, body)
		m.warnf("group %d: shard inbox full, datagram from member %d dropped (overload omission)%s", group, src, m.capNote(seq))
	}
}

// multiObs is the shared (not per-group) accounting: socket traffic, demux
// verdicts and sender behavior. Nil when metrics are disabled.
type multiObs struct {
	recvDatagrams *obs.Counter
	recvBytes     *obs.Counter
	dropEnvelope  *obs.Counter
	dropGroup     *obs.Counter
	dropBadSrc    *obs.Counter
	dropDecode    *obs.Counter
	dropOversize  *obs.Counter
	dropReadErr   *obs.Counter
	shardDrops    *obs.Counter
	ticksSkipped  *obs.Counter

	txDatagrams *obs.Counter
	txBytes     *obs.Counter
	txErrors    *obs.Counter
	txDropped   *obs.Counter
	txBursts    *obs.Counter
	txOversize  *obs.Counter
}

func newMultiObs(reg *obs.Registry) *multiObs {
	if reg == nil {
		return nil
	}
	return &multiObs{
		recvDatagrams: reg.Counter("topics_recv_datagrams_total"),
		recvBytes:     reg.Counter("topics_recv_bytes_total"),
		dropEnvelope:  reg.Counter("topics_drop_envelope_total"),
		dropGroup:     reg.Counter("topics_drop_group_total"),
		dropBadSrc:    reg.Counter("topics_drop_badsrc_total"),
		dropDecode:    reg.Counter("topics_drop_decode_total"),
		dropOversize:  reg.Counter("topics_drop_oversize_total"),
		dropReadErr:   reg.Counter("topics_drop_readerr_total"),
		shardDrops:    reg.Counter("topics_shard_dropped_total"),
		ticksSkipped:  reg.Counter("topics_ticks_skipped_total"),
		txDatagrams:   reg.Counter("topics_send_datagrams_total"),
		txBytes:       reg.Counter("topics_send_bytes_total"),
		txErrors:      reg.Counter("topics_send_errors_total"),
		txDropped:     reg.Counter("topics_send_dropped_total"),
		txBursts:      reg.Counter("topics_send_bursts_total"),
		txOversize:    reg.Counter("topics_send_oversize_total"),
	}
}

// checkSize rejects a frame no receiver would accept, at the sender where
// the operator can act on it.
func (m *MultiNode) checkSize(frame []byte, pdu wire.PDU) bool {
	if len(frame) <= maxDatagram {
		return true
	}
	if m.mobs != nil {
		m.mobs.txOversize.Inc()
	}
	m.warnf("oversize %v frame (%d bytes > %d): dropped before send", pdu.Kind(), len(frame), maxDatagram)
	return false
}

// groupTransport frames one group's PDUs with the group-id envelope and
// hands them to the shared sender. Runs on the group's shard goroutine.
type groupTransport struct{ s *session }

// frame reserves the envelope up front in one pooled buffer so the PDU
// marshals directly behind it. The sender owns the result until release.
func (t groupTransport) frame(pdu wire.PDU) ([]byte, error) {
	buf := wire.GetBuf(wire.EnvelopeSize(t.s.group) + pdu.EncodedSize())[:0]
	buf = wire.AppendEnvelope(buf, t.s.group, t.s.m.cfg.Self)
	return wire.MarshalAppend(buf, pdu)
}

func (t groupTransport) Send(dst mid.ProcID, pdu wire.PDU) {
	m := t.s.m
	if dst == m.cfg.Self || dst < 0 || int(dst) >= m.cfg.N {
		return
	}
	frame, err := t.frame(pdu)
	if err != nil || !m.checkSize(frame, pdu) {
		if err == nil {
			m.cfg.Capture.Record(capture.DirEgress, t.s.group, dst, capture.DropOversize, 0, nil)
		}
		wire.PutBuf(frame)
		return
	}
	// DropFrame partitions individual groups in tests; the capture record
	// charges the loss as an injected partition so replay can attribute it.
	if m.cfg.DropFrame != nil && m.cfg.DropFrame(t.s.group, m.cfg.Self, dst) {
		m.cfg.Capture.Record(capture.DirEgress, t.s.group, dst, capture.FaultDrop,
			faultrt.KindSet(0).With(faultrt.KindPartition), t.body(frame))
		wire.PutBuf(frame)
		return
	}
	m.cfg.Capture.Record(capture.DirEgress, t.s.group, dst, capture.Sent, 0, t.body(frame))
	m.tx.push(txPacket{dst: dst, frame: frame})
}

// body strips the group envelope off a framed datagram: capture records
// store the PDU body only, with the envelope's group and peer as fields.
func (t groupTransport) body(frame []byte) []byte {
	return frame[wire.EnvelopeSize(t.s.group):]
}

// Broadcast marshals the PDU exactly once; every destination's packet
// shares the same refcounted buffer, released after the last write.
func (t groupTransport) Broadcast(pdu wire.PDU) {
	m := t.s.m
	frame, err := t.frame(pdu)
	if err != nil || !m.checkSize(frame, pdu) {
		if err == nil {
			m.cfg.Capture.Record(capture.DirEgress, t.s.group, mid.None, capture.DropOversize, 0, nil)
		}
		wire.PutBuf(frame)
		return
	}
	m.cfg.Capture.Record(capture.DirEgress, t.s.group, mid.None, capture.Sent, 0, t.body(frame))
	sh := &sharedFrame{buf: frame}
	sh.refs.Store(1) // the sender's own hold, released after the fan-out
	for i := 0; i < m.cfg.N; i++ {
		dst := mid.ProcID(i)
		if dst == m.cfg.Self {
			continue
		}
		if m.cfg.DropFrame != nil && m.cfg.DropFrame(t.s.group, m.cfg.Self, dst) {
			m.cfg.Capture.Record(capture.DirEgress, t.s.group, dst, capture.FaultDrop,
				faultrt.KindSet(0).With(faultrt.KindPartition), t.body(frame))
			continue
		}
		sh.refs.Add(1)
		m.tx.push(txPacket{dst: dst, frame: frame, sh: sh})
	}
	sh.release()
}

// sharedFrame is a pooled wire buffer fanned out to several destinations:
// the last reference released returns it to the pool.
type sharedFrame struct {
	buf  []byte
	refs atomic.Int32
}

func (s *sharedFrame) release() {
	if s.refs.Add(-1) == 0 {
		wire.PutBuf(s.buf)
	}
}

// txPacket is one outgoing datagram in the shared sender's queue. A nil sh
// means the queue owns frame outright; otherwise the packet holds one
// reference on the shared buffer.
type txPacket struct {
	dst   mid.ProcID
	frame []byte
	sh    *sharedFrame
}

func (p txPacket) done() {
	if p.sh != nil {
		p.sh.release()
	} else {
		wire.PutBuf(p.frame)
	}
}

// txBurstMax is how many queued datagrams one sendmmsg may carry. It also
// bounds how much the shared sender drains per wakeup on the fallback path.
const txBurstMax = 16

// txSender is the shared outgoing path: every group's shard loops feed it
// framed datagrams through one bounded queue, and it ships them in
// mixed-group, mixed-destination sendmmsg bursts (single writes where the
// platform or kernel lacks the syscall). A full queue drops the datagram —
// an omission the protocol repairs — so shard loops never block on the
// socket.
type txSender struct {
	m     *MultiNode
	ch    chan txPacket
	burst *txBurst // nil where sendmmsg is unavailable
	batch []txPacket
}

func newTxSender(m *MultiNode) *txSender {
	return &txSender{
		m:     m,
		ch:    make(chan txPacket, m.cfg.TxDepth),
		burst: newTxBurst(m),
		batch: make([]txPacket, 0, txBurstMax),
	}
}

// push queues one datagram for the shared sender. Never blocks: a full
// queue drops the datagram and releases its buffer.
func (t *txSender) push(p txPacket) {
	select {
	case t.ch <- p:
	default:
		p.done()
		if t.m.mobs != nil {
			t.m.mobs.txDropped.Inc()
		}
	}
}

func (t *txSender) loop() {
	for {
		var p txPacket
		select {
		case <-t.m.stopCh:
			t.drain()
			return
		case p = <-t.ch:
		}
		t.batch = append(t.batch[:0], p)
	fill:
		for len(t.batch) < txBurstMax {
			select {
			case q := <-t.ch:
				t.batch = append(t.batch, q)
			default:
				break fill
			}
		}
		t.ship(t.batch)
	}
}

// ship writes one drained batch: a multi-destination sendmmsg burst when
// available, per-datagram writes otherwise. Buffers release afterwards.
func (t *txSender) ship(batch []txPacket) {
	if !t.burst.send(t.m, batch) {
		for _, p := range batch {
			t.m.writeOne(p.dst, p.frame)
		}
	} else if t.m.mobs != nil {
		t.m.mobs.txBursts.Inc()
	}
	for _, p := range batch {
		p.done()
	}
}

// drain releases whatever was still queued at shutdown.
func (t *txSender) drain() {
	for {
		select {
		case p := <-t.ch:
			p.done()
		default:
			return
		}
	}
}

// writeOne ships one datagram with a classic write and accounts for it.
func (m *MultiNode) writeOne(dst mid.ProcID, frame []byte) {
	if _, err := m.conn.WriteToUDP(frame, m.peers[dst]); err != nil {
		// Loss is an omission the protocol repairs; count it anyway.
		if m.mobs != nil {
			m.mobs.txErrors.Inc()
		}
		return
	}
	if m.mobs != nil {
		m.mobs.txDatagrams.Inc()
		m.mobs.txBytes.Add(int64(len(frame)))
	}
}

//go:build linux && (amd64 || arm64)

package topics

import (
	"syscall"
	"unsafe"
)

// Mixed-destination burst transmit via sendmmsg(2): one syscall ships a
// whole drained batch of datagrams, each to its own destination — the
// multi-group generalization of the single-group runtime's one-frame-to-
// many-peers burst. Anything unusual (IPv6 peer, kernel without the
// syscall, raw-conn failure) falls back to one write per datagram.

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// kernel-written datagram length. Go's natural alignment reproduces the
// kernel's padding on every linux target.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
}

// txBurst ships one mixed batch per sendmmsg. Owned by the shared sender
// goroutine; no locking.
type txBurst struct {
	rc       syscall.RawConn
	sas      []syscall.RawSockaddrInet4 // per-peer, precomputed
	hdrs     [txBurstMax]mmsghdr
	iovs     [txBurstMax]syscall.Iovec
	disabled bool // kernel refused sendmmsg: classic path from now on
}

// newTxBurst returns nil when the burst path cannot be used, which the
// sender treats as "one WriteToUDP per datagram".
func newTxBurst(m *MultiNode) *txBurst {
	if m.conn == nil {
		return nil
	}
	rc, err := m.conn.SyscallConn()
	if err != nil {
		return nil
	}
	sas := make([]syscall.RawSockaddrInet4, len(m.peers))
	for i, a := range m.peers {
		ip4 := a.IP.To4()
		if ip4 == nil {
			return nil // IPv6 peer: classic path
		}
		p := uint16(a.Port)
		// sin_port is network byte order read as a native uint16.
		sas[i] = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: p<<8 | p>>8}
		copy(sas[i].Addr[:], ip4)
	}
	return &txBurst{rc: rc, sas: sas}
}

// send ships the whole batch (each datagram to its own destination) in as
// few sendmmsg calls as possible, with full accounting. It reports false
// when the caller should write per-datagram instead (nil burst, batch of
// one, or sendmmsg unsupported).
func (b *txBurst) send(m *MultiNode, batch []txPacket) bool {
	if b == nil || b.disabled || len(batch) < 2 {
		return false
	}
	bytes := 0
	for i, p := range batch {
		bytes += len(p.frame)
		b.iovs[i].Base = &p.frame[0]
		b.iovs[i].SetLen(len(p.frame))
		b.hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&b.sas[p.dst])),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     &b.iovs[i],
			Iovlen:  1,
		}}
	}
	sent, errs, fellBack := 0, 0, false
	werr := b.rc.Write(func(fd uintptr) bool {
		for sent < len(batch) {
			r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&b.hdrs[sent])), uintptr(len(batch)-sent), 0, 0, 0)
			switch errno {
			case 0:
				sent += int(r)
			case syscall.EAGAIN:
				return false // wait for writability, then resume
			case syscall.EINTR:
				continue
			case syscall.ENOSYS, syscall.EOPNOTSUPP:
				if sent == 0 {
					b.disabled = true
					fellBack = true // nothing left the socket yet
					return true
				}
				errs = len(batch) - sent
				return true
			default:
				// Loss is an omission the protocol repairs; count the rest.
				errs = len(batch) - sent
				return true
			}
		}
		return true
	})
	if fellBack {
		return false
	}
	if werr != nil {
		errs = len(batch) - sent // raw-conn failure (e.g. closing socket)
	}
	if m.mobs != nil {
		m.mobs.txDatagrams.Add(int64(sent))
		m.mobs.txBytes.Add(int64(bytes))
		m.mobs.txErrors.Add(int64(errs))
	}
	return true
}

package topics

import (
	"context"
	"strconv"
	"testing"
	"time"

	"urcgc/internal/causal"
	"urcgc/internal/core"
	"urcgc/internal/lifecycle"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/wire"
)

// TestMultiGroupObservability drives a mesh cluster with metrics and
// tracing enabled and checks the per-group observability surface: each
// group's tracer is group-tagged, its report carries the group id, the
// per-group submit→stable histogram fills, and Status exposes one
// GroupStatus per hosted group.
func TestMultiGroupObservability(t *testing.T) {
	const n, groups = 3, 3
	reg := obs.New()
	cfg := meshConfig(n, groups, 2)
	cfg.Metrics = reg
	cfg.Lifecycle = &lifecycle.Options{SlowThreshold: 10 * time.Second}
	c, err := NewMultiCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for g := 0; g < groups; g++ {
		for i := 0; i < 3; i++ {
			if _, err := c.Node(0).Send(ctx, uint32(g), []byte("payload"), nil); err != nil {
				t.Fatalf("group %d send %d: %v", g, i, err)
			}
		}
	}

	for g := 0; g < groups; g++ {
		tr := c.Node(0).Lifecycle(uint32(g))
		if tr == nil {
			t.Fatalf("group %d tracer nil with tracing enabled", g)
		}
		if tr.Group() != g {
			t.Fatalf("group %d tracer tagged %d", g, tr.Group())
		}
		r := tr.Report(5, 5)
		if r.Group != g || r.Node != 0 {
			t.Fatalf("group %d report tagged node=%d group=%d", g, r.Node, r.Group)
		}
		if r.Counts.Started == 0 {
			t.Fatalf("group %d report tracked no spans", g)
		}
	}
	if trs := c.Node(1).Lifecycles(); len(trs) != groups {
		t.Fatalf("Lifecycles() = %d tracers, want %d", len(trs), groups)
	}

	// Uniform stability settles the per-group submit→stable histogram on
	// the origin; poll, then check every group's series landed.
	deadline := time.Now().Add(15 * time.Second)
	for g := 0; g < groups; g++ {
		name := obs.Labeled("topics_submit_to_stable_seconds", "node", "0", "group", strconv.Itoa(g))
		for reg.Histogram(name, nil).Count() < 3 {
			if time.Now().After(deadline) {
				t.Fatalf("group %d submit_to_stable count = %d, want 3", g, reg.Histogram(name, nil).Count())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// The group-labeled lifecycle histograms fill too.
	if h := reg.Histogram(obs.Labeled("lifecycle_emit_to_process_seconds", "node", "0", "group", "1"), nil); h.Count() == 0 {
		t.Fatal("group-labeled lifecycle histogram empty")
	}

	st, err := c.Node(0).Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Groups) != groups {
		t.Fatalf("status groups = %d, want %d", len(st.Groups), groups)
	}
	for g, gs := range st.Groups {
		if int(gs.Group) != g || !gs.Running || gs.ProcessedSum < 3 {
			t.Fatalf("group %d status = %+v", g, gs)
		}
	}
}

// TestDropFramePartitionsOneGroup pins the DropFrame seam: with every
// frame of group 1 dropped, group 0 still replicates across the cluster
// while group 1's messages never reach a remote member (a sender's own
// message can still self-deliver, so the remote frontier is the witness).
func TestDropFramePartitionsOneGroup(t *testing.T) {
	cfg := meshConfig(3, 2, 2)
	cfg.DropFrame = func(group uint32, src, dst mid.ProcID) bool { return group == 1 }
	c, err := NewMultiCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Node(0).Send(ctx, 0, []byte("ok"), nil); err != nil {
		t.Fatalf("healthy group blocked: %v", err)
	}
	c.Node(0).Send(ctx, 1, []byte("lost"), nil) // may self-deliver; must not replicate

	// Group 0's message reaches every member; group 1's reaches none.
	want := mid.SeqVector{1, 0, 0}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got mid.SeqVector
		if err := c.Node(1).Snapshot(ctx, 0, func(p *core.Process) { got = p.Processed().Clone() }); err != nil {
			t.Fatal(err)
		}
		if got.Equal(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group 0 never replicated: %v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var remote mid.SeqVector
	if err := c.Node(1).Snapshot(ctx, 1, func(p *core.Process) { remote = p.Processed().Clone() }); err != nil {
		t.Fatal(err)
	}
	if remote.Sum() != 0 {
		t.Fatalf("partitioned group leaked frames: remote processed %v", remote)
	}
}

// nopTransport drops every PDU, as in the rt alloc guards.
type nopTransport struct{}

func (nopTransport) Send(mid.ProcID, wire.PDU) {}
func (nopTransport) Broadcast(wire.PDU)        {}

// TestTopicsDisabledObsAllocFree pins the disabled-observability contract
// on the multi-group deliver path: with Metrics and Lifecycle both nil, a
// session's park-then-cascade delivery costs exactly the pre-existing
// core budget (see rt's TestLifecycleDisabledAllocFree) — the per-group
// accounting added for multi-group observability must be nil-gated out.
func TestTopicsDisabledObsAllocFree(t *testing.T) {
	cfg := Config{
		Config: core.Config{N: 3, K: 3, R: 8, SelfExclusion: true},
		Groups: 2,
		Shards: 1,
	}
	cfg.fill(true)
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	m := newMultiNode(cfg)
	if err := m.initSessions(func(*session) core.Transport { return nopTransport{} }); err != nil {
		t.Fatal(err)
	}
	// Shards are never started: the driver below is the only goroutine
	// touching the process, satisfying the single-owner contract.
	s := m.sessions[1]
	if s.gobs != nil || s.tracer != nil || s.stableWait != nil {
		t.Fatal("disabled observability left per-group state allocated")
	}

	const runs = 400
	payload := make([]byte, 16)
	msgs := make([]*wire.Data, 2*(runs+2))
	for i := range msgs {
		msgs[i] = &wire.Data{Msg: causal.Message{
			ID:      mid.MID{Proc: 1, Seq: mid.Seq(i + 1)},
			Payload: payload,
		}}
	}
	s.proc.Recv(1, msgs[1]) // warm scratch containers outside the measurement
	s.proc.Recv(1, msgs[0])
	i := 2
	got := testing.AllocsPerRun(runs, func() {
		s.proc.Recv(1, msgs[i+1]) // parks on the missing implicit dep (1, i)
		s.proc.Recv(1, msgs[i])   // delivers and cascades both
		i += 2
	})
	if want := mid.Seq(2 * (runs + 2)); s.proc.Processed()[1] != want {
		t.Fatalf("processed up to %d, want %d (driver bug)", s.proc.Processed()[1], want)
	}
	// Same pre-existing budget as the single-group runtime: the topics
	// layer must add nothing when observability is off.
	if got > 13 {
		t.Errorf("disabled-observability deliver path allocates %.2f/op, budget 13", got)
	}
}

//go:build linux && amd64

package topics

// sendmmsg(2) syscall number on linux/amd64; the syscall package predates
// the syscall and does not export it.
const sysSENDMMSG = 307

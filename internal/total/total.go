// Package total implements the urgc service the paper builds on (its
// [APR93] reference, Sections 1-2): Uniform Reliable Group Communication
// with TOTAL ordering, where the service provider — not the application —
// autonomously assigns the processing order (the ABCAST-style service for
// replicated data objects).
//
// The construction is the classic "causal + sequencer = total", riding
// entirely on urcgc's guarantees:
//
//   - Data messages are ordinary urcgc messages with no causal labels.
//   - The sequencer — the lowest-ranked live member — periodically emits
//     ORDER messages through its own urcgc sequence, each naming the next
//     batch of data messages in the total order and causally depending on
//     them, so no member can process an ORDER before the data it commits.
//   - Every member applies ORDER batches in the causal order of the
//     sequencer's sequence, which urcgc already makes identical everywhere.
//
// Sequencer failover is where uniform atomicity earns its keep. Successive
// sequencers have strictly increasing ranks (the group only shrinks), and a
// member defers applying batches from sequencer Z until, for every former
// sequencer Y < Z, a full-group decision has both excluded Y and shown the
// member has processed every message of Y's sequence that any live member
// holds (lastProcessed[Y] >= MaxProcessed[Y]). Past that point no further
// ORDER of Y's can ever be processed by anyone — stragglers were either
// processed before it (and hence applied first) or condemned by the orphan
// agreement (and hence processed by nobody) — so the arbitration
// "lower-ranked sequencer's batches first, then mine" is identical at every
// member, and the total order is consistent across the group.
package total

import (
	"encoding/binary"
	"fmt"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/metrics"
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// payload markers.
const (
	markData  = 'D'
	markOrder = 'O'
)

// Config configures a totally-ordered group.
type Config struct {
	N, K, R  int
	Seed     int64
	Injector fault.Injector
}

// Cluster runs a totally-ordered group on a simulated urcgc group.
type Cluster struct {
	C *core.Cluster

	// Delay measures generation -> total-order application.
	Delay *metrics.Delay
	// OrderedLog is the per-member total-order application log.
	OrderedLog [][]mid.MID

	members []*member
}

// member is the per-member total-ordering state.
type member struct {
	id mid.ProcID

	// sequencer-side: data messages processed but not yet named by any
	// processed ORDER (in causal processing order, which seeds the batch).
	unordered []mid.MID
	named     map[mid.MID]bool // messages named by any processed ORDER

	// application-side: batches processed but deferred pending failover
	// arbitration, keyed by the sequencer that emitted them.
	deferred [][]mid.MID // deferred[z] = concatenated batches from sequencer z
	applied  map[mid.MID]bool

	// failover arbitration: resolved[y] means no further ORDER from y can
	// ever be processed here.
	resolved []bool
}

// NewCluster builds the group.
func NewCluster(cfg Config) (*Cluster, error) {
	inner, err := core.NewCluster(core.ClusterConfig{
		Config:   core.Config{N: cfg.N, K: cfg.K, R: cfg.R, SelfExclusion: true},
		Seed:     cfg.Seed,
		Injector: cfg.Injector,
	})
	if err != nil {
		return nil, err
	}
	t := &Cluster{
		C:          inner,
		Delay:      metrics.NewDelay(),
		OrderedLog: make([][]mid.MID, cfg.N),
		members:    make([]*member, cfg.N),
	}
	for i := range t.members {
		t.members[i] = &member{
			id:       mid.ProcID(i),
			named:    map[mid.MID]bool{},
			applied:  map[mid.MID]bool{},
			deferred: make([][]mid.MID, cfg.N),
			resolved: make([]bool, cfg.N),
		}
	}
	inner.OnDecision = t.onDecision
	return t, nil
}

// Submit queues a payload for totally-ordered delivery via member p.
func (t *Cluster) Submit(p mid.ProcID, payload []byte) (mid.MID, error) {
	buf := append([]byte{markData}, payload...)
	id, err := t.C.Submit(p, buf, nil)
	if err != nil {
		return id, err
	}
	t.Delay.Generated(id, t.C.Engine().Now())
	return id, nil
}

// OnRound drives the wrapper; compose it into core.RunOptions.OnRound. It
// consumes the cluster's ProcessedLog growth (the causal layer's output) and
// lets the current sequencer emit ORDER batches.
func (t *Cluster) OnRound(inner func(int)) func(int) {
	consumed := make([]int, t.C.N())
	return func(round int) {
		if inner != nil {
			inner(round)
		}
		for i, m := range t.members {
			log := t.C.ProcessedLog[i]
			for ; consumed[i] < len(log); consumed[i]++ {
				t.consume(m, log[consumed[i]])
			}
		}
		// Sequencer action once per subrun, before the request round.
		if round%2 != 0 {
			return
		}
		for i, m := range t.members {
			p := mid.ProcID(i)
			if !t.C.Active(p) || !t.isSequencer(p) {
				continue
			}
			t.emitBatch(m)
		}
	}
}

// isSequencer reports whether p is the lowest-ranked live member of ITS OWN
// view (views converge through decisions, so so do sequencers).
func (t *Cluster) isSequencer(p mid.ProcID) bool {
	v := t.C.Proc(p).View()
	for q := 0; q < v.N(); q++ {
		if v.Alive(mid.ProcID(q)) {
			return mid.ProcID(q) == p
		}
	}
	return false
}

// emitBatch submits one ORDER message naming the sequencer's unordered
// backlog, causally depending on the newest named message per sequence.
func (t *Cluster) emitBatch(m *member) {
	if len(m.unordered) == 0 {
		return
	}
	batch := m.unordered
	m.unordered = nil
	var deps mid.DepList
	for _, id := range batch {
		if id.Proc != m.id {
			deps = append(deps, id)
		}
	}
	payload := encodeBatch(batch)
	if _, err := t.C.Submit(m.id, payload, deps.Canonical()); err != nil {
		// The member left between the check and the submit; drop the batch
		// (a successor will re-sequence the unnamed messages).
		return
	}
}

// consume routes one causally processed message.
func (t *Cluster) consume(m *member, id mid.MID) {
	msg, _ := t.C.Proc(m.id).History().Get(id.Proc, id.Seq)
	if msg == nil {
		return // already purged; only possible long after application
	}
	if len(msg.Payload) == 0 {
		return
	}
	switch msg.Payload[0] {
	case markData:
		if !m.named[id] {
			m.unordered = append(m.unordered, id)
		}
	case markOrder:
		batch, err := decodeBatch(msg.Payload)
		if err != nil {
			return
		}
		for _, named := range batch {
			m.named[named] = true
		}
		m.unordered = filterNamed(m.unordered, m.named)
		z := id.Proc
		m.deferred[z] = append(m.deferred[z], batch...)
		t.drain(m)
	}
}

// filterNamed removes already-named messages from the backlog, preserving
// order.
func filterNamed(backlog []mid.MID, named map[mid.MID]bool) []mid.MID {
	out := backlog[:0]
	for _, id := range backlog {
		if !named[id] {
			out = append(out, id)
		}
	}
	return out
}

// drain applies deferred batches in sequencer-rank order, up to the first
// unresolved former sequencer.
func (t *Cluster) drain(m *member) {
	for z := 0; z < t.C.N(); z++ {
		if len(m.deferred[z]) > 0 {
			if !t.clearBelow(m, mid.ProcID(z)) {
				return // a lower-ranked sequencer may still emit; wait
			}
			for _, id := range m.deferred[z] {
				if m.applied[id] {
					continue
				}
				m.applied[id] = true
				t.OrderedLog[m.id] = append(t.OrderedLog[m.id], id)
				t.Delay.Processed(id, t.C.Engine().Now())
			}
			m.deferred[z] = nil
		}
	}
}

// clearBelow reports whether every member ranked below z is resolved: dead
// in this member's view with nothing of its sequence left to arrive.
func (t *Cluster) clearBelow(m *member, z mid.ProcID) bool {
	for y := mid.ProcID(0); y < z; y++ {
		if !m.resolved[y] {
			return false
		}
	}
	return true
}

// onDecision updates failover resolution: former sequencer y is resolved at
// member p once a full-group decision excludes y and p has processed every
// message of y's sequence any live member holds.
func (t *Cluster) onDecision(p mid.ProcID, d *wire.Decision) {
	m := t.members[p]
	if !d.FullGroup {
		return
	}
	done := t.C.Proc(p).Processed()
	changed := false
	for y := 0; y < t.C.N() && y < len(d.Alive); y++ {
		if m.resolved[y] || d.Alive[y] {
			continue
		}
		if done[y] >= d.MaxProcessed[y] {
			m.resolved[y] = true
			changed = true
		}
	}
	if changed {
		t.drain(m)
	}
}

// Run drives the group; compose workload through OnRound.
func (t *Cluster) Run(opts core.RunOptions) (core.RunResult, error) {
	opts.OnRound = t.OnRound(opts.OnRound)
	return t.C.Run(opts)
}

// VerifyTotalOrder checks the ABCAST property: active members' ordered logs
// agree on their common prefix.
func (t *Cluster) VerifyTotalOrder() error {
	var ref []mid.MID
	refOwner := mid.ProcID(-1)
	for i := range t.OrderedLog {
		p := mid.ProcID(i)
		if !t.C.Active(p) {
			continue
		}
		log := t.OrderedLog[i]
		if ref == nil {
			ref, refOwner = log, p
			continue
		}
		n := len(ref)
		if len(log) < n {
			n = len(log)
		}
		for j := 0; j < n; j++ {
			if ref[j] != log[j] {
				return fmt.Errorf("total: members %d and %d disagree at position %d: %v vs %v",
					refOwner, p, j, ref[j], log[j])
			}
		}
	}
	return nil
}

// encodeBatch packs an ORDER payload: marker + count(2) + (proc(4),seq(4))*.
func encodeBatch(batch []mid.MID) []byte {
	buf := make([]byte, 3+8*len(batch))
	buf[0] = markOrder
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(batch)))
	for i, id := range batch {
		binary.BigEndian.PutUint32(buf[3+8*i:], uint32(id.Proc))
		binary.BigEndian.PutUint32(buf[7+8*i:], uint32(id.Seq))
	}
	return buf
}

func decodeBatch(buf []byte) ([]mid.MID, error) {
	if len(buf) < 3 || buf[0] != markOrder {
		return nil, fmt.Errorf("total: not an ORDER payload")
	}
	n := int(binary.BigEndian.Uint16(buf[1:3]))
	if len(buf) != 3+8*n {
		return nil, fmt.Errorf("total: ORDER payload length %d for %d entries", len(buf), n)
	}
	out := make([]mid.MID, n)
	for i := range out {
		out[i] = mid.MID{
			Proc: mid.ProcID(int32(binary.BigEndian.Uint32(buf[3+8*i:]))),
			Seq:  mid.Seq(binary.BigEndian.Uint32(buf[7+8*i:])),
		}
	}
	return out, nil
}

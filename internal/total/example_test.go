package total_test

import (
	"fmt"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/total"
)

func int32ToProc(i int) mid.ProcID { return mid.ProcID(i) }

// Three members submit concurrently; the sequencer assigns one global
// order, identical at every member — the urgc/ABCAST-style service.
func ExampleCluster() {
	tc, err := total.NewCluster(total.Config{N: 3, K: 2, R: 5, Seed: 1})
	if err != nil {
		panic(err)
	}
	_, err = tc.Run(core.RunOptions{
		MaxRounds: 80,
		MinRounds: 16,
		OnRound: func(round int) {
			if round == 0 {
				for p := 0; p < 3; p++ {
					tc.Submit(int32ToProc(p), []byte{byte(p)})
				}
			}
		},
		StopWhenQuiescent: true,
		DrainSubruns:      4,
	})
	if err != nil {
		panic(err)
	}
	if err := tc.VerifyTotalOrder(); err != nil {
		panic(err)
	}
	// The order follows arrival at the sequencer (here p2's broadcast beat
	// p1's by network jitter); the guarantee is that it is the SAME order
	// at every member.
	fmt.Println("member 0 order:", tc.OrderedLog[0])
	fmt.Println("member 2 order:", tc.OrderedLog[2])
	// Output:
	// member 0 order: [p0#1 p2#1 p1#1]
	// member 2 order: [p0#1 p2#1 p1#1]
}

package total

import (
	"math/rand"
	"testing"

	"urcgc/internal/core"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
)

func submitWorkload(t *Cluster, rng *rand.Rand, perProc int) func(int) {
	return func(round int) {
		if round%2 != 0 || round/2 >= perProc {
			return
		}
		for i := 0; i < t.C.N(); i++ {
			p := mid.ProcID(i)
			if t.C.Active(p) {
				_, _ = t.Submit(p, []byte{byte(rng.Intn(256))})
			}
		}
	}
}

func TestTotalOrderReliable(t *testing.T) {
	tc, err := NewCluster(Config{N: 5, K: 3, R: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	perProc := 10
	res, err := tc.Run(core.RunOptions{
		MaxRounds: 600, MinRounds: 2 * 2 * (perProc + 6),
		OnRound:           submitWorkload(tc, rng, perProc),
		StopWhenQuiescent: true, DrainSubruns: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	if err := tc.VerifyTotalOrder(); err != nil {
		t.Fatal(err)
	}
	// Every data message got ordered at every member.
	want := 5 * perProc
	for i := 0; i < 5; i++ {
		if got := len(tc.OrderedLog[i]); got != want {
			t.Errorf("member %d ordered %d, want %d", i, got, want)
		}
	}
	// Total order costs more latency than the causal service: at least one
	// extra trip through the sequencer.
	if d := tc.Delay.MeanRTD(); d < 0.5 {
		t.Errorf("total-order delay %.2f rtd suspiciously low", d)
	}
}

func TestTotalOrderSurvivesSequencerCrash(t *testing.T) {
	// Member 0 is the initial sequencer; crash it mid-run. Member 1 takes
	// over once 0 is excluded and resolved; the combined order must stay
	// consistent and complete for all data the survivors generated.
	tc, err := NewCluster(Config{
		N: 5, K: 2, R: 6, Seed: 3,
		Injector: fault.Crash{Proc: 0, At: sim.StartOfSubrun(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	perProc := 12
	res, err := tc.Run(core.RunOptions{
		MaxRounds: 900, MinRounds: 2 * 2 * (perProc + 10),
		OnRound:           submitWorkload(tc, rng, perProc),
		StopWhenQuiescent: true, DrainSubruns: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuiescentAtRound < 0 {
		t.Fatal("never quiescent")
	}
	if err := tc.VerifyTotalOrder(); err != nil {
		t.Fatal(err)
	}
	// Survivors ordered every message the group processed (member 0's
	// unsequenced backlog was re-sequenced by member 1).
	survivors := tc.C.ActiveSet()
	if len(survivors) != 4 {
		t.Fatalf("survivors = %v", survivors)
	}
	ref := len(tc.OrderedLog[survivors[0]])
	if ref == 0 {
		t.Fatal("nothing ordered")
	}
	for _, p := range survivors {
		if got := len(tc.OrderedLog[p]); got != ref {
			t.Errorf("member %d ordered %d, others %d", p, got, ref)
		}
	}
	// At minimum every submission by a survivor was ordered (member 0's
	// pre-crash submissions may be partially condemned).
	if ref < perProc*4 {
		t.Errorf("ordered %d, want at least the survivors' %d submissions", ref, perProc*4)
	}
}

func TestBatchCodec(t *testing.T) {
	in := []mid.MID{{Proc: 0, Seq: 1}, {Proc: 3, Seq: 99}}
	out, err := decodeBatch(encodeBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("round trip = %v", out)
	}
	if _, err := decodeBatch([]byte{markData, 0, 0}); err == nil {
		t.Error("wrong marker accepted")
	}
	if _, err := decodeBatch([]byte{markOrder, 0, 2, 1}); err == nil {
		t.Error("truncated batch accepted")
	}
	empty, err := decodeBatch(encodeBatch(nil))
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v %v", empty, err)
	}
}

func TestDeterministicTotalOrder(t *testing.T) {
	runOnce := func() []mid.MID {
		tc, err := NewCluster(Config{N: 4, K: 2, R: 6, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(8))
		_, err = tc.Run(core.RunOptions{
			MaxRounds: 400, MinRounds: 2 * 2 * 12,
			OnRound:           submitWorkload(tc, rng, 8),
			StopWhenQuiescent: true, DrainSubruns: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tc.OrderedLog[0]
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}

// Package transport implements the multicast transport service of Section 5
// of the paper: the primitive t.data.Rq(m, h, v, d) transfers data d to the
// destination set m with n-unicast semantics, retransmitting until at least
// h destinations have acknowledged (1 <= h <= |m|). The primitive never
// fails, even if fewer than h acknowledgements arrive — after MaxRetries
// the entity simply stops retransmitting.
//
// The voting function v of the paper's tuple manages reply messages for
// client/server groups and is not used by the urcgc protocol; it is
// accepted and ignored, as in the paper.
//
// With h = 1 the service degenerates to the bare datagram network — the
// configuration all of the paper's simulations use — and packet losses
// surface as process omissions that urcgc repairs from history. With larger
// h the retransmission function moves into the transport, trading transport
// acks for fewer history recoveries; the ablation benchmarks quantify
// exactly that trade.
package transport

import (
	"fmt"

	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/simnet"
	"urcgc/internal/wire"
)

// Frame wraps an upper-layer PDU with the transport header.
type Frame struct {
	Src     mid.ProcID
	Seq     uint32
	NeedAck bool
	Inner   wire.PDU
}

// KindFrame and KindAck are the transport-level PDU kinds (3x range).
const (
	KindFrame wire.Kind = 30
	KindAck   wire.Kind = 31
)

// Kind implements wire.PDU.
func (*Frame) Kind() wire.Kind { return KindFrame }

// EncodedSize implements wire.PDU: header(1+4+4+1) + inner.
func (f *Frame) EncodedSize() int { return 1 + 4 + 4 + 1 + f.Inner.EncodedSize() }

// Ack acknowledges a frame.
type Ack struct {
	Src mid.ProcID // acknowledging process
	Seq uint32
}

// Kind implements wire.PDU.
func (*Ack) Kind() wire.Kind { return KindAck }

// EncodedSize implements wire.PDU.
func (*Ack) EncodedSize() int { return 1 + 4 + 4 }

// Voting is the v parameter of t.data.Rq. The urcgc protocol never sets it;
// it exists for client/server groups that manage replies in the transport.
type Voting func(replies int) bool

// Handler receives upper-layer PDUs from the transport entity.
type Handler interface {
	Recv(src mid.ProcID, pdu wire.PDU)
}

// Config tunes a transport entity.
type Config struct {
	// MaxRetries bounds retransmission rounds per request (default 5).
	MaxRetries int
	// RetryEvery spaces retransmissions (default one round).
	RetryEvery sim.Time
	// MTU, when positive, fragments any PDU whose encoding exceeds it and
	// reassembles at the receiving entity (Section 5's fragmentation
	// service). Zero disables fragmentation.
	MTU int
}

func (c *Config) fill() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 5
	}
	if c.RetryEvery == 0 {
		c.RetryEvery = sim.TicksPerRound
	}
}

// Entity is one process's transport entity (the mt-attached t-SAP of the
// paper's Figure 3). It lives on the simulated network.
type Entity struct {
	id      mid.ProcID
	nw      *simnet.Network
	eng     *sim.Engine
	cfg     Config
	upper   Handler
	nextSeq uint32
	seen    map[frameKey]bool
	pending map[uint32]*outstanding
	reasm   map[fragKey]*reassembly

	// Stats for the ablation benchmarks.
	Stats Stats
}

// Stats counts transport activity.
type Stats struct {
	Requests    int // t.data.Rq invocations
	Frames      int // frames sent, including retransmissions
	Retries     int
	Acks        int
	Delivered   int // inner PDUs handed to the upper layer
	Dups        int // duplicate frames suppressed
	Fragments   int // fragments sent
	Reassembled int // oversized PDUs reassembled and delivered
}

type frameKey struct {
	src mid.ProcID
	seq uint32
}

type outstanding struct {
	dsts    []mid.ProcID
	h       int
	acked   map[mid.ProcID]bool
	retries int
	frame   *Frame
	done    bool
}

// NewEntity attaches a transport entity for process id to the network. The
// entity registers itself as the simnet handler; the upper-layer handler
// receives the decapsulated PDUs.
func NewEntity(id mid.ProcID, nw *simnet.Network, eng *sim.Engine, cfg Config, upper Handler) (*Entity, error) {
	if upper == nil {
		return nil, fmt.Errorf("transport: nil upper handler")
	}
	cfg.fill()
	e := &Entity{
		id:      id,
		nw:      nw,
		eng:     eng,
		cfg:     cfg,
		upper:   upper,
		seen:    make(map[frameKey]bool),
		pending: make(map[uint32]*outstanding),
		reasm:   make(map[fragKey]*reassembly),
	}
	nw.Attach(id, e)
	return e, nil
}

// DataRq is t.data.Rq(m, h, v, d): send d to every destination in m,
// retransmitting until h of them acknowledged. v is accepted for interface
// fidelity and ignored (the urcgc protocol does not use voting). h <= 1
// sends plain datagrams with no acknowledgement traffic at all.
func (e *Entity) DataRq(m []mid.ProcID, h int, v Voting, d wire.PDU) {
	_ = v
	e.Stats.Requests++
	if h > len(m) {
		h = len(m)
	}
	if h <= 1 {
		for _, dst := range m {
			if dst == e.id {
				continue
			}
			if enc, oversized := e.oversized(d); oversized {
				e.sendFragmented(dst, d, enc)
				continue
			}
			e.Stats.Frames++
			e.nw.Send(e.id, dst, &Frame{Src: e.id, Seq: e.allocSeq(), Inner: d})
		}
		return
	}
	seq := e.allocSeq()
	out := &outstanding{h: h, acked: make(map[mid.ProcID]bool), frame: &Frame{Src: e.id, Seq: seq, NeedAck: true, Inner: d}}
	for _, dst := range m {
		if dst != e.id {
			out.dsts = append(out.dsts, dst)
		}
	}
	if len(out.dsts) == 0 {
		return
	}
	if out.h > len(out.dsts) {
		out.h = len(out.dsts)
	}
	e.pending[seq] = out
	e.transmit(out)
	e.scheduleRetry(seq)
}

func (e *Entity) allocSeq() uint32 {
	e.nextSeq++
	return e.nextSeq
}

func (e *Entity) transmit(out *outstanding) {
	for _, dst := range out.dsts {
		if out.acked[dst] {
			continue
		}
		e.Stats.Frames++
		e.nw.Send(e.id, dst, out.frame)
	}
}

func (e *Entity) scheduleRetry(seq uint32) {
	e.eng.After(e.cfg.RetryEvery, func() {
		out, ok := e.pending[seq]
		if !ok || out.done {
			return
		}
		if len(out.acked) >= out.h || out.retries >= e.cfg.MaxRetries {
			out.done = true
			delete(e.pending, seq)
			return // the primitive never fails; it just stops trying
		}
		out.retries++
		e.Stats.Retries++
		e.transmit(out)
		e.scheduleRetry(seq)
	})
}

// Recv implements simnet.Handler: decapsulate, dedup, ack, deliver.
func (e *Entity) Recv(src mid.ProcID, pdu wire.PDU) {
	switch f := pdu.(type) {
	case *Frame:
		if f.NeedAck {
			e.Stats.Acks++
			e.nw.Send(e.id, src, &Ack{Src: e.id, Seq: f.Seq})
		}
		k := frameKey{src: f.Src, seq: f.Seq}
		if e.seen[k] {
			e.Stats.Dups++
			return
		}
		e.seen[k] = true
		e.Stats.Delivered++
		e.upper.Recv(f.Src, f.Inner)
	case *Ack:
		for seq, out := range e.pending {
			if seq == f.Seq {
				out.acked[src] = true
				if len(out.acked) >= out.h {
					out.done = true
					delete(e.pending, seq)
				}
				break
			}
		}
	case *Fragment:
		e.recvFragment(f)
	default:
		// Raw PDU from a peer not running the transport layer: pass it up.
		e.upper.Recv(src, pdu)
	}
}

// oversized reports whether the PDU needs fragmentation and, if so, returns
// its encoding. PDUs that cannot be marshaled (baseline-protocol PDUs) are
// never fragmented.
func (e *Entity) oversized(d wire.PDU) ([]byte, bool) {
	if e.cfg.MTU <= 0 || d.EncodedSize() <= e.cfg.MTU {
		return nil, false
	}
	enc, err := wire.Marshal(d)
	if err != nil {
		return nil, false
	}
	return enc, true
}

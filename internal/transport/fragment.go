package transport

import (
	"urcgc/internal/mid"
	"urcgc/internal/wire"
)

// Fragmentation (Section 5): "the urcgc protocol does not require any
// particular service from the transport protocol that is useful when there
// is the need of fragmenting and assembling the urcgc data units to fit the
// network packet size." When an Entity is configured with an MTU, any PDU
// whose encoding exceeds it is split into Fragment PDUs and reassembled at
// the receiving entity before decapsulation. Loss of any fragment loses the
// whole PDU — an ordinary omission the protocol above repairs.

// Fragment carries one piece of an oversized PDU.
type Fragment struct {
	Src    mid.ProcID
	Seq    uint32 // per-source fragmented-PDU identifier
	Index  uint16
	Total  uint16
	Chunk  []byte
	Anchor wire.Kind // inner kind, for load accounting and debugging
}

// KindFragment is the transport fragment kind (3x range).
const KindFragment wire.Kind = 32

// Kind implements wire.PDU.
func (*Fragment) Kind() wire.Kind { return KindFragment }

// EncodedSize implements wire.PDU: kind(1)+src(4)+seq(4)+index(2)+total(2)+
// anchor(1)+len(2)+chunk.
func (f *Fragment) EncodedSize() int { return 1 + 4 + 4 + 2 + 2 + 1 + 2 + len(f.Chunk) }

// fragmentOverhead is EncodedSize minus the chunk.
const fragmentOverhead = 16

type fragKey struct {
	src mid.ProcID
	seq uint32
}

type reassembly struct {
	total  uint16
	chunks [][]byte
	have   int
}

// sendFragmented splits an encoded PDU into MTU-sized fragments toward dst.
// The caller has already decided the PDU exceeds the MTU.
func (e *Entity) sendFragmented(dst mid.ProcID, inner wire.PDU, encoded []byte) {
	chunkSize := e.cfg.MTU - fragmentOverhead
	if chunkSize <= 0 {
		chunkSize = 1
	}
	total := (len(encoded) + chunkSize - 1) / chunkSize
	seq := e.allocSeq()
	for i := 0; i < total; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(encoded) {
			hi = len(encoded)
		}
		e.Stats.Fragments++
		e.nw.Send(e.id, dst, &Fragment{
			Src: e.id, Seq: seq,
			Index: uint16(i), Total: uint16(total),
			Chunk:  encoded[lo:hi],
			Anchor: inner.Kind(),
		})
	}
}

// recvFragment buffers one fragment and, on completion, decodes and
// delivers the reassembled PDU.
func (e *Entity) recvFragment(f *Fragment) {
	if f.Total == 0 || f.Index >= f.Total {
		return
	}
	k := fragKey{src: f.Src, seq: f.Seq}
	r, ok := e.reasm[k]
	if !ok {
		r = &reassembly{total: f.Total, chunks: make([][]byte, f.Total)}
		e.reasm[k] = r
	}
	if r.total != f.Total || r.chunks[f.Index] != nil {
		return // inconsistent or duplicate fragment
	}
	r.chunks[f.Index] = f.Chunk
	r.have++
	if r.have < int(r.total) {
		return
	}
	delete(e.reasm, k)
	size := 0
	for _, c := range r.chunks {
		size += len(c)
	}
	// Reassemble into a pooled buffer; Unmarshal never aliases its input,
	// so the buffer goes straight back to the pool.
	buf := wire.GetBuf(size)
	for _, c := range r.chunks {
		buf = append(buf, c...)
	}
	pdu, err := wire.Unmarshal(buf)
	wire.PutBuf(buf)
	if err != nil {
		return // corrupted reassembly: the PDU is lost, an omission
	}
	e.Stats.Reassembled++
	e.upper.Recv(f.Src, pdu)
}

package transport

import (
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/simnet"
	"urcgc/internal/wire"
)

type sink struct {
	got []wire.PDU
	src []mid.ProcID
}

func (s *sink) Recv(src mid.ProcID, pdu wire.PDU) {
	s.got = append(s.got, pdu)
	s.src = append(s.src, src)
}

func data(seq mid.Seq) *wire.Data {
	return &wire.Data{Msg: causal.Message{ID: mid.MID{Proc: 0, Seq: seq}}}
}

func setup(t *testing.T, n int, inj fault.Injector) (*sim.Engine, *simnet.Network, []*Entity, []*sink) {
	t.Helper()
	eng := sim.NewEngine(1)
	nw := simnet.New(eng, n, inj)
	entities := make([]*Entity, n)
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		sinks[i] = &sink{}
		e, err := NewEntity(mid.ProcID(i), nw, eng, Config{}, sinks[i])
		if err != nil {
			t.Fatal(err)
		}
		entities[i] = e
	}
	return eng, nw, entities, sinks
}

func TestH1IsPlainDatagram(t *testing.T) {
	eng, nw, es, sinks := setup(t, 3, nil)
	es[0].DataRq([]mid.ProcID{0, 1, 2}, 1, nil, data(1))
	eng.Run()
	for i := 1; i < 3; i++ {
		if len(sinks[i].got) != 1 {
			t.Errorf("dst %d got %d PDUs", i, len(sinks[i].got))
		}
	}
	// No ack traffic at h=1.
	if nw.Load().Counts[KindAck] != 0 {
		t.Errorf("acks = %d, want 0", nw.Load().Counts[KindAck])
	}
	if es[0].Stats.Retries != 0 {
		t.Error("no retries at h=1")
	}
}

func TestHNRetransmitsUntilAcked(t *testing.T) {
	// Drop the first two frames; with h=2 the entity must retry until both
	// destinations acked.
	eng, nw, es, sinks := setup(t, 3, &fault.EveryNth{N: 2, Side: fault.AtSend})
	es[0].DataRq([]mid.ProcID{0, 1, 2}, 2, nil, data(1))
	eng.Run()
	delivered := 0
	for i := 1; i < 3; i++ {
		delivered += len(sinks[i].got)
	}
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2 (both destinations, once each)", delivered)
	}
	if es[0].Stats.Retries == 0 {
		t.Error("expected retransmissions under loss")
	}
	if nw.Load().Counts[KindAck] == 0 {
		t.Error("expected ack traffic at h=2")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// With retransmission and no loss on the retry path, destinations see
	// the frame more than once but deliver it once.
	eng, _, es, sinks := setup(t, 2, nil)
	es[0].DataRq([]mid.ProcID{0, 1}, 2, nil, data(1))
	// Force one gratuitous retransmission by running only partway, then
	// re-sending manually.
	eng.Run()
	if len(sinks[1].got) != 1 {
		t.Fatalf("delivered %d, want 1", len(sinks[1].got))
	}
	// Simulate a duplicate arrival.
	before := es[1].Stats.Dups
	es[1].Recv(0, &Frame{Src: 0, Seq: 1, Inner: data(1)})
	if len(sinks[1].got) != 1 {
		t.Error("duplicate must be suppressed")
	}
	if es[1].Stats.Dups != before+1 {
		t.Errorf("Dups = %d, want %d", es[1].Stats.Dups, before+1)
	}
}

func TestPrimitiveNeverFails(t *testing.T) {
	// Destination 1 is crashed: h=2 can never be reached, but the request
	// must terminate after MaxRetries without error and deliver to the
	// live destination.
	eng, _, es, sinks := setup(t, 3, fault.Crash{Proc: 1, At: 0})
	es[0].DataRq([]mid.ProcID{0, 1, 2}, 2, nil, data(1))
	eng.Run()
	if len(sinks[2].got) != 1 {
		t.Errorf("live destination got %d", len(sinks[2].got))
	}
	if es[0].Stats.Retries != 5 {
		t.Errorf("Retries = %d, want MaxRetries=5", es[0].Stats.Retries)
	}
	if len(es[0].pending) != 0 {
		t.Error("request should have been abandoned")
	}
}

func TestHClampedToDestinations(t *testing.T) {
	eng, _, es, sinks := setup(t, 2, nil)
	es[0].DataRq([]mid.ProcID{0, 1}, 99, nil, data(1))
	eng.Run()
	if len(sinks[1].got) != 1 {
		t.Errorf("delivered %d", len(sinks[1].got))
	}
	if len(es[0].pending) != 0 {
		t.Error("request should complete once the single destination acks")
	}
}

func TestVotingAcceptedAndIgnored(t *testing.T) {
	eng, _, es, sinks := setup(t, 2, nil)
	called := false
	es[0].DataRq([]mid.ProcID{0, 1}, 1, func(int) bool { called = true; return true }, data(1))
	eng.Run()
	if called {
		t.Error("urcgc semantics: the voting function is not used")
	}
	if len(sinks[1].got) != 1 {
		t.Error("data not delivered")
	}
}

func TestRawPDUPassthrough(t *testing.T) {
	_, _, es, sinks := setup(t, 2, nil)
	es[1].Recv(0, data(7))
	if len(sinks[1].got) != 1 {
		t.Error("raw PDU should pass through to the upper layer")
	}
}

func TestFrameSizes(t *testing.T) {
	f := &Frame{Inner: data(1)}
	if f.EncodedSize() != 1+4+4+1+data(1).EncodedSize() {
		t.Errorf("Frame size = %d", f.EncodedSize())
	}
	if (&Ack{}).EncodedSize() != 9 {
		t.Errorf("Ack size = %d", (&Ack{}).EncodedSize())
	}
}

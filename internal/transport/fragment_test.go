package transport

import (
	"bytes"
	"testing"

	"urcgc/internal/causal"
	"urcgc/internal/fault"
	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/simnet"
	"urcgc/internal/wire"
)

func fragSetup(t *testing.T, n, mtu int, inj fault.Injector) (*sim.Engine, *simnet.Network, []*Entity, []*sink) {
	t.Helper()
	eng := sim.NewEngine(1)
	nw := simnet.New(eng, n, inj)
	entities := make([]*Entity, n)
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		sinks[i] = &sink{}
		e, err := NewEntity(mid.ProcID(i), nw, eng, Config{MTU: mtu}, sinks[i])
		if err != nil {
			t.Fatal(err)
		}
		entities[i] = e
	}
	return eng, nw, entities, sinks
}

func bigData(payload int) *wire.Data {
	return &wire.Data{Msg: causal.Message{
		ID:      mid.MID{Proc: 0, Seq: 1},
		Payload: bytes.Repeat([]byte{0xab}, payload),
	}}
}

func TestOversizedPDUIsFragmentedAndReassembled(t *testing.T) {
	eng, nw, es, sinks := fragSetup(t, 2, 64, nil)
	d := bigData(300) // encodes to ~313 bytes >> 64
	es[0].DataRq([]mid.ProcID{0, 1}, 1, nil, d)
	eng.Run()
	if len(sinks[1].got) != 1 {
		t.Fatalf("delivered %d PDUs", len(sinks[1].got))
	}
	got, ok := sinks[1].got[0].(*wire.Data)
	if !ok || !bytes.Equal(got.Msg.Payload, d.Msg.Payload) {
		t.Fatal("reassembled PDU corrupted")
	}
	if es[0].Stats.Fragments < 5 {
		t.Errorf("Fragments = %d, want several", es[0].Stats.Fragments)
	}
	if es[1].Stats.Reassembled != 1 {
		t.Errorf("Reassembled = %d", es[1].Stats.Reassembled)
	}
	// Every fragment fit the MTU.
	if frags := nw.Load().Counts[KindFragment]; frags != es[0].Stats.Fragments {
		t.Errorf("network saw %d fragments, entity sent %d", frags, es[0].Stats.Fragments)
	}
	if mean := nw.Load().MeanSize(KindFragment); mean > 64 {
		t.Errorf("mean fragment size %.0f exceeds MTU", mean)
	}
}

func TestSmallPDUNotFragmented(t *testing.T) {
	eng, _, es, sinks := fragSetup(t, 2, 576, nil)
	es[0].DataRq([]mid.ProcID{0, 1}, 1, nil, bigData(10))
	eng.Run()
	if es[0].Stats.Fragments != 0 {
		t.Errorf("Fragments = %d", es[0].Stats.Fragments)
	}
	if len(sinks[1].got) != 1 {
		t.Errorf("delivered %d", len(sinks[1].got))
	}
}

func TestLostFragmentLosesWholePDU(t *testing.T) {
	// Drop one packet mid-burst: the PDU must not be delivered (and must
	// not crash the reassembler) — an ordinary omission for the layer above.
	eng, _, es, sinks := fragSetup(t, 2, 64, &fault.EveryNth{N: 3, Side: fault.AtSend})
	es[0].DataRq([]mid.ProcID{0, 1}, 1, nil, bigData(300))
	eng.Run()
	if len(sinks[1].got) != 0 {
		t.Errorf("delivered %d PDUs despite fragment loss", len(sinks[1].got))
	}
	if es[1].Stats.Reassembled != 0 {
		t.Error("partial reassembly claimed completion")
	}
}

func TestDuplicateFragmentIgnored(t *testing.T) {
	_, _, es, sinks := fragSetup(t, 2, 64, nil)
	f := &Fragment{Src: 0, Seq: 1, Index: 0, Total: 2, Chunk: []byte{1, 2}}
	es[1].Recv(0, f)
	es[1].Recv(0, f) // duplicate
	if len(sinks[1].got) != 0 {
		t.Error("half-reassembled PDU delivered")
	}
	// Inconsistent total is ignored too.
	es[1].Recv(0, &Fragment{Src: 0, Seq: 1, Index: 1, Total: 3, Chunk: []byte{3}})
	if len(sinks[1].got) != 0 {
		t.Error("inconsistent reassembly delivered")
	}
	// Bad index bounds never panic.
	es[1].Recv(0, &Fragment{Src: 0, Seq: 2, Index: 5, Total: 2, Chunk: []byte{9}})
	es[1].Recv(0, &Fragment{Src: 0, Seq: 3, Index: 0, Total: 0})
}

func TestCorruptedReassemblyDropped(t *testing.T) {
	_, _, es, sinks := fragSetup(t, 2, 64, nil)
	es[1].Recv(0, &Fragment{Src: 0, Seq: 9, Index: 0, Total: 1, Chunk: []byte{0xff, 0xff}})
	if len(sinks[1].got) != 0 {
		t.Error("undecodable reassembly delivered")
	}
}

func TestFragmentSizeAccounting(t *testing.T) {
	f := &Fragment{Chunk: make([]byte, 48)}
	if f.EncodedSize() != fragmentOverhead+48 {
		t.Errorf("EncodedSize = %d", f.EncodedSize())
	}
}

package lifecycle

import (
	"fmt"
	"sort"
	"strings"

	"urcgc/internal/mid"
	"urcgc/internal/sim"
	"urcgc/internal/trace"
)

// Breakdown is the per-stage latency table of a simulated run, computed
// from a trace.Recorder log alone — the simulator counterpart of the live
// Tracer's histograms, in virtual RTD units. It reproduces the delivery-
// latency breakdown tables of the CBCAST and Psync evaluations for this
// protocol: where between emission and uniform coverage a message spends
// its rounds.
type Breakdown struct {
	// Messages is how many generated messages the log accounts for.
	Messages int
	// MeanEmitToBroadcast is generate→broadcast: outbox residence, i.e.
	// round alignment plus Section 6 flow control.
	MeanEmitToBroadcast float64
	// MeanEmitToFirstProcess is generate→first processing anywhere (the
	// origin processes its own message at broadcast, so this usually
	// equals MeanEmitToBroadcast; it differs when the origin crashes).
	MeanEmitToFirstProcess float64
	// MeanEmitToUniform is generate→processed at every survivor — the
	// operational uniform-atomicity latency (Definition 3.2). Only
	// messages every survivor processed contribute.
	MeanEmitToUniform float64
	// P99EmitToUniform is the 99th percentile of the same distribution.
	P99EmitToUniform float64
	// UniformCount is how many messages reached every survivor.
	UniformCount int
	// MeanWait and P99Wait describe waiting-list residence: EvWait at a
	// process → that process's EvProcess of the same message.
	MeanWait float64
	P99Wait  float64
	// WaitCount is how many (process, message) pairs ever waited.
	WaitCount int
	// Discarded is how many messages were destroyed by agreement anywhere.
	Discarded int
}

// Render formats the breakdown as an aligned table (RTD units).
func (b Breakdown) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "stage breakdown (%d messages, RTD units)\n", b.Messages)
	fmt.Fprintf(&sb, "  %-28s %8.3f\n", "emit -> broadcast (mean)", b.MeanEmitToBroadcast)
	fmt.Fprintf(&sb, "  %-28s %8.3f\n", "emit -> first process (mean)", b.MeanEmitToFirstProcess)
	fmt.Fprintf(&sb, "  %-28s %8.3f  (n=%d)\n", "emit -> uniform (mean)", b.MeanEmitToUniform, b.UniformCount)
	fmt.Fprintf(&sb, "  %-28s %8.3f\n", "emit -> uniform (p99)", b.P99EmitToUniform)
	fmt.Fprintf(&sb, "  %-28s %8.3f  (n=%d)\n", "waitlist residence (mean)", b.MeanWait, b.WaitCount)
	fmt.Fprintf(&sb, "  %-28s %8.3f\n", "waitlist residence (p99)", b.P99Wait)
	fmt.Fprintf(&sb, "  %-28s %8d\n", "discarded", b.Discarded)
	return sb.String()
}

// FromRecorder computes the stage breakdown from a simulator trace. It
// needs only the recorder's own event kinds: EvGenerate/EvBroadcast open
// the span, EvWait/EvProcess locate the waiting stage per process, and the
// survivor set (no EvCrash/EvLeave) defines uniform coverage.
func FromRecorder(rec *trace.Recorder) Breakdown {
	var b Breakdown
	halted := map[mid.ProcID]bool{}
	for _, e := range rec.Events {
		if e.Kind == trace.EvCrash || e.Kind == trace.EvLeave {
			halted[e.Proc] = true
		}
	}
	survivors := 0
	for q := 0; q < rec.N; q++ {
		if !halted[mid.ProcID(q)] {
			survivors++
		}
	}

	type key struct {
		p mid.ProcID
		m mid.MID
	}
	generated := map[mid.MID]sim.Time{}
	broadcast := map[mid.MID]sim.Time{}
	firstProc := map[mid.MID]sim.Time{}
	lastProc := map[mid.MID]sim.Time{} // over survivors only
	coverage := map[mid.MID]int{}      // survivor processes that processed it
	waitAt := map[key]sim.Time{}
	discarded := map[mid.MID]bool{}
	var waits []float64

	for _, e := range rec.Events {
		switch e.Kind {
		case trace.EvGenerate:
			if _, dup := generated[e.Msg]; !dup {
				generated[e.Msg] = e.At
			}
		case trace.EvBroadcast:
			if _, dup := broadcast[e.Msg]; !dup {
				broadcast[e.Msg] = e.At
			}
		case trace.EvWait:
			k := key{e.Proc, e.Msg}
			if _, dup := waitAt[k]; !dup {
				waitAt[k] = e.At
			}
		case trace.EvProcess:
			if at, ok := firstProc[e.Msg]; !ok || e.At < at {
				firstProc[e.Msg] = e.At
			}
			if !halted[e.Proc] {
				coverage[e.Msg]++
				if e.At > lastProc[e.Msg] {
					lastProc[e.Msg] = e.At
				}
			}
			if at, ok := waitAt[key{e.Proc, e.Msg}]; ok {
				waits = append(waits, (e.At - at).RTD())
				delete(waitAt, key{e.Proc, e.Msg})
			}
		case trace.EvDiscard:
			discarded[e.Msg] = true
		}
	}

	b.Messages = len(generated)
	b.Discarded = len(discarded)
	var uniform []float64
	var sumBcast, sumFirst float64
	nBcast, nFirst := 0, 0
	for m, g := range generated {
		if at, ok := broadcast[m]; ok {
			sumBcast += (at - g).RTD()
			nBcast++
		}
		if at, ok := firstProc[m]; ok {
			sumFirst += (at - g).RTD()
			nFirst++
		}
		if survivors > 0 && coverage[m] == survivors {
			uniform = append(uniform, (lastProc[m] - g).RTD())
		}
	}
	if nBcast > 0 {
		b.MeanEmitToBroadcast = sumBcast / float64(nBcast)
	}
	if nFirst > 0 {
		b.MeanEmitToFirstProcess = sumFirst / float64(nFirst)
	}
	b.UniformCount = len(uniform)
	b.MeanEmitToUniform, b.P99EmitToUniform = meanP99(uniform)
	b.WaitCount = len(waits)
	b.MeanWait, b.P99Wait = meanP99(waits)
	return b
}

// meanP99 returns the mean and an upper-bound p99 of the samples.
func meanP99(xs []float64) (mean, p99 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	sort.Float64s(xs)
	idx := (99*len(xs) + 99) / 100
	if idx > len(xs) {
		idx = len(xs)
	}
	return sum / float64(len(xs)), xs[idx-1]
}

package lifecycle

import (
	"fmt"
	"io"
	"time"
)

// SpanView is the export shape of one span: stage timestamps plus the
// derived durations an operator actually wants, JSON-ready for /trace.
type SpanView struct {
	MID      string   `json:"mid"`
	Outcome  string   `json:"outcome"`
	Stuck    bool     `json:"stuck,omitempty"`
	Blocking []string `json:"blocking,omitempty"`

	Generated string `json:"generated,omitempty"`
	Broadcast string `json:"broadcast,omitempty"`
	Waiting   string `json:"waiting,omitempty"`
	Decided   string `json:"decided,omitempty"`
	Processed string `json:"processed,omitempty"`
	Discarded string `json:"discarded,omitempty"`
	Stable    string `json:"stable,omitempty"`

	// The same stamps as absolute unix nanoseconds, machine-joinable:
	// the cross-node stitcher (internal/stitch) subtracts them across
	// members' reports, which the date-less display strings cannot do.
	FirstSeenNs int64 `json:"first_seen_ns,omitempty"`
	GeneratedNs int64 `json:"generated_ns,omitempty"`
	BroadcastNs int64 `json:"broadcast_ns,omitempty"`
	WaitingNs   int64 `json:"waiting_ns,omitempty"`
	DecidedNs   int64 `json:"decided_ns,omitempty"`
	ProcessedNs int64 `json:"processed_ns,omitempty"`
	DiscardedNs int64 `json:"discarded_ns,omitempty"`
	StableNs    int64 `json:"stable_ns,omitempty"`

	// AgeSeconds is how long an in-flight span has been tracked.
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	// WaitSeconds is the waiting-list residence so far (or total).
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
	// EndToEndSeconds is first-seen→terminal for completed spans.
	EndToEndSeconds float64 `json:"end_to_end_seconds,omitempty"`
	// StabilityLagSeconds is processed→uniformly-stable, when both known.
	StabilityLagSeconds float64 `json:"stability_lag_seconds,omitempty"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format("15:04:05.000000")
}

func stampNs(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// View renders a span relative to now (for in-flight ages).
func (s *Span) View(now time.Time) SpanView {
	v := SpanView{
		MID:       s.ID.String(),
		Outcome:   s.Outcome.String(),
		Stuck:     s.Stuck,
		Generated: stamp(s.GeneratedAt),
		Broadcast: stamp(s.BroadcastAt),
		Waiting:   stamp(s.WaitingAt),
		Decided:   stamp(s.DecidedAt),
		Processed: stamp(s.ProcessedAt),
		Discarded: stamp(s.DiscardedAt),
		Stable:    stamp(s.StableAt),

		FirstSeenNs: stampNs(s.FirstSeen),
		GeneratedNs: stampNs(s.GeneratedAt),
		BroadcastNs: stampNs(s.BroadcastAt),
		WaitingNs:   stampNs(s.WaitingAt),
		DecidedNs:   stampNs(s.DecidedAt),
		ProcessedNs: stampNs(s.ProcessedAt),
		DiscardedNs: stampNs(s.DiscardedAt),
		StableNs:    stampNs(s.StableAt),
	}
	for _, b := range s.Blocking {
		v.Blocking = append(v.Blocking, b.String())
	}
	if s.done() {
		v.EndToEndSeconds = s.EndToEnd().Seconds()
		if !s.WaitingAt.IsZero() && !s.ProcessedAt.IsZero() {
			v.WaitSeconds = s.ProcessedAt.Sub(s.WaitingAt).Seconds()
		}
		if !s.ProcessedAt.IsZero() && !s.StableAt.IsZero() && s.StableAt.After(s.ProcessedAt) {
			v.StabilityLagSeconds = s.StableAt.Sub(s.ProcessedAt).Seconds()
		}
	} else {
		if !s.FirstSeen.IsZero() {
			v.AgeSeconds = now.Sub(s.FirstSeen).Seconds()
		}
		if !s.WaitingAt.IsZero() {
			v.WaitSeconds = now.Sub(s.WaitingAt).Seconds()
		}
	}
	return v
}

// Report is the /trace payload: accounting, the slowest in-flight spans
// (the watchdog's view), and the most recently completed ones.
type Report struct {
	Node int `json:"node"`
	// Group is the hosted-group id on a multi-group member, 0 for a
	// single-group member (whose frames are wire-compatible with group 0).
	// MIDs recur across groups — each group is an independent sequence
	// space — so (group, mid) is the cross-node join key, not mid alone.
	Group         int        `json:"group"`
	Now           string     `json:"now"`
	NowNs         int64      `json:"now_ns,omitempty"`
	SlowThreshold string     `json:"slow_threshold"`
	Counts        Counts     `json:"counts"`
	Slowest       []SpanView `json:"slowest_in_flight,omitempty"`
	Recent        []SpanView `json:"recent_completed,omitempty"`
}

// MultiReport is the /trace payload of a multi-group member when no group
// filter is given: one Report per hosted group. The stitcher accepts both
// shapes (the "groups" key discriminates).
type MultiReport struct {
	Node   int      `json:"node"`
	Groups []Report `json:"groups"`
}

// Report assembles the export payload with up to slowN in-flight and
// recentN completed spans. It runs the watchdog first so freshly stuck
// spans are flagged in the same response that shows them.
func (t *Tracer) Report(slowN, recentN int) Report {
	if t == nil {
		return Report{}
	}
	t.Tick()
	now := t.clock()
	group := t.group
	if group < 0 {
		group = 0 // single-group members speak group 0 on the wire
	}
	r := Report{
		Node:          int(t.node),
		Group:         group,
		Now:           stamp(now),
		NowNs:         stampNs(now),
		SlowThreshold: t.opts.SlowThreshold.String(),
		Counts:        t.Counts(),
	}
	for _, s := range t.SlowestInFlight(slowN) {
		s := s
		r.Slowest = append(r.Slowest, s.View(now))
	}
	for _, s := range t.Recent(recentN) {
		s := s
		r.Recent = append(r.Recent, s.View(now))
	}
	return r
}

// WriteSlowest renders the n slowest completed spans as an aligned table —
// the shutdown-summary evidence a short run leaves behind.
func (t *Tracer) WriteSlowest(w io.Writer, n int) {
	spans := t.TopSlowest(n)
	if len(spans) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-10s %-10s %12s %12s %12s\n", "mid", "outcome", "end-to-end", "waited", "stab-lag")
	for i := range spans {
		s := &spans[i]
		wait, lag := time.Duration(0), time.Duration(0)
		if !s.WaitingAt.IsZero() && !s.ProcessedAt.IsZero() {
			wait = s.ProcessedAt.Sub(s.WaitingAt)
		}
		if !s.ProcessedAt.IsZero() && s.StableAt.After(s.ProcessedAt) {
			lag = s.StableAt.Sub(s.ProcessedAt)
		}
		fmt.Fprintf(w, "  %-10s %-10s %12s %12s %12s\n",
			s.ID, s.Outcome, s.EndToEnd().Round(time.Microsecond),
			wait.Round(time.Microsecond), lag.Round(time.Microsecond))
	}
}

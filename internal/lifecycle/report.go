package lifecycle

import (
	"fmt"
	"io"
	"time"
)

// SpanView is the export shape of one span: stage timestamps plus the
// derived durations an operator actually wants, JSON-ready for /trace.
type SpanView struct {
	MID      string   `json:"mid"`
	Outcome  string   `json:"outcome"`
	Stuck    bool     `json:"stuck,omitempty"`
	Blocking []string `json:"blocking,omitempty"`

	Generated string `json:"generated,omitempty"`
	Broadcast string `json:"broadcast,omitempty"`
	Waiting   string `json:"waiting,omitempty"`
	Decided   string `json:"decided,omitempty"`
	Processed string `json:"processed,omitempty"`
	Discarded string `json:"discarded,omitempty"`
	Stable    string `json:"stable,omitempty"`

	// AgeSeconds is how long an in-flight span has been tracked.
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	// WaitSeconds is the waiting-list residence so far (or total).
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
	// EndToEndSeconds is first-seen→terminal for completed spans.
	EndToEndSeconds float64 `json:"end_to_end_seconds,omitempty"`
	// StabilityLagSeconds is processed→uniformly-stable, when both known.
	StabilityLagSeconds float64 `json:"stability_lag_seconds,omitempty"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format("15:04:05.000000")
}

// View renders a span relative to now (for in-flight ages).
func (s *Span) View(now time.Time) SpanView {
	v := SpanView{
		MID:       s.ID.String(),
		Outcome:   s.Outcome.String(),
		Stuck:     s.Stuck,
		Generated: stamp(s.GeneratedAt),
		Broadcast: stamp(s.BroadcastAt),
		Waiting:   stamp(s.WaitingAt),
		Decided:   stamp(s.DecidedAt),
		Processed: stamp(s.ProcessedAt),
		Discarded: stamp(s.DiscardedAt),
		Stable:    stamp(s.StableAt),
	}
	for _, b := range s.Blocking {
		v.Blocking = append(v.Blocking, b.String())
	}
	if s.done() {
		v.EndToEndSeconds = s.EndToEnd().Seconds()
		if !s.WaitingAt.IsZero() && !s.ProcessedAt.IsZero() {
			v.WaitSeconds = s.ProcessedAt.Sub(s.WaitingAt).Seconds()
		}
		if !s.ProcessedAt.IsZero() && !s.StableAt.IsZero() && s.StableAt.After(s.ProcessedAt) {
			v.StabilityLagSeconds = s.StableAt.Sub(s.ProcessedAt).Seconds()
		}
	} else {
		if !s.FirstSeen.IsZero() {
			v.AgeSeconds = now.Sub(s.FirstSeen).Seconds()
		}
		if !s.WaitingAt.IsZero() {
			v.WaitSeconds = now.Sub(s.WaitingAt).Seconds()
		}
	}
	return v
}

// Report is the /trace payload: accounting, the slowest in-flight spans
// (the watchdog's view), and the most recently completed ones.
type Report struct {
	Node          int        `json:"node"`
	Now           string     `json:"now"`
	SlowThreshold string     `json:"slow_threshold"`
	Counts        Counts     `json:"counts"`
	Slowest       []SpanView `json:"slowest_in_flight,omitempty"`
	Recent        []SpanView `json:"recent_completed,omitempty"`
}

// Report assembles the export payload with up to slowN in-flight and
// recentN completed spans. It runs the watchdog first so freshly stuck
// spans are flagged in the same response that shows them.
func (t *Tracer) Report(slowN, recentN int) Report {
	if t == nil {
		return Report{}
	}
	t.Tick()
	now := t.clock()
	r := Report{
		Node:          int(t.node),
		Now:           stamp(now),
		SlowThreshold: t.opts.SlowThreshold.String(),
		Counts:        t.Counts(),
	}
	for _, s := range t.SlowestInFlight(slowN) {
		s := s
		r.Slowest = append(r.Slowest, s.View(now))
	}
	for _, s := range t.Recent(recentN) {
		s := s
		r.Recent = append(r.Recent, s.View(now))
	}
	return r
}

// WriteSlowest renders the n slowest completed spans as an aligned table —
// the shutdown-summary evidence a short run leaves behind.
func (t *Tracer) WriteSlowest(w io.Writer, n int) {
	spans := t.TopSlowest(n)
	if len(spans) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-10s %-10s %12s %12s %12s\n", "mid", "outcome", "end-to-end", "waited", "stab-lag")
	for i := range spans {
		s := &spans[i]
		wait, lag := time.Duration(0), time.Duration(0)
		if !s.WaitingAt.IsZero() && !s.ProcessedAt.IsZero() {
			wait = s.ProcessedAt.Sub(s.WaitingAt)
		}
		if !s.ProcessedAt.IsZero() && s.StableAt.After(s.ProcessedAt) {
			lag = s.StableAt.Sub(s.ProcessedAt)
		}
		fmt.Fprintf(w, "  %-10s %-10s %12s %12s %12s\n",
			s.ID, s.Outcome, s.EndToEnd().Round(time.Microsecond),
			wait.Round(time.Microsecond), lag.Round(time.Microsecond))
	}
}

// Package lifecycle traces one span per message identifier through the
// urcgc protocol's own stages: generated → broadcast → waiting (with which
// dependencies are blocking) → decided → processed/discarded → uniformly
// stable. The paper's headline claims are latency claims — bounded-time
// uniform atomicity, no suspension during membership change — and a span
// records exactly where a message spent that time, so "why is delivery
// stalled" is answered by a query instead of a debugging session.
//
// A Tracer is fed from the core.Callbacks stage hooks on the goroutine
// driving the protocol entity, and read concurrently by HTTP handlers and
// shutdown reports; a mutex serializes the two. The layer is disabled by
// default: a nil *Tracer accepts every call as a no-op, and the runtimes
// only install the stage callbacks when a tracer exists, so the send and
// deliver hot paths stay allocation-free when tracing is off (guarded by
// TestLifecycleDisabledAllocFree and the LifecycleOverhead bench).
//
// Stage semantics follow the paper. "Generated" and "broadcast" are
// Definition 3.1's emission of a labelled message (broadcast may lag
// generation by rounds: the outbox and Section 6 flow control sit between
// them). "Waiting" is the waiting-list residence of Definition 3.1's
// processing rule — a message parks until its labels are satisfied.
// "Decided" means a decision whose max_processed covers the MID was applied
// locally: the group provably knows the message exists. "Stable" is
// Definition 3.2's uniform atomicity made operational: a full-group
// clean_to covering the MID arrived, so every live member has processed it.
package lifecycle

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"urcgc/internal/mid"
	"urcgc/internal/obs"
)

// Outcome says how a span ended, if it has.
type Outcome uint8

// Span outcomes.
const (
	// InFlight marks a span still moving through the stages.
	InFlight Outcome = iota
	// Processed marks a span whose message was processed locally.
	Processed
	// Discarded marks a span destroyed by the orphaned-sequence agreement.
	Discarded
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case InFlight:
		return "in-flight"
	case Processed:
		return "processed"
	case Discarded:
		return "discarded"
	default:
		return "outcome(" + strconv.Itoa(int(o)) + ")"
	}
}

// Span is one message's locally observed lifecycle. Zero timestamps mean
// the stage was not observed at this member (remote messages have no
// Generated/Broadcast; fast messages never wait).
type Span struct {
	ID mid.MID

	FirstSeen   time.Time // earliest local observation, whatever the stage
	GeneratedAt time.Time // own message accepted by Submit
	BroadcastAt time.Time // own message left the outbox onto the wire
	WaitingAt   time.Time // parked in the waiting list
	DecidedAt   time.Time // first decision covering the MID applied locally
	ProcessedAt time.Time // processed (delivered in causal order)
	DiscardedAt time.Time // destroyed by agreement
	StableAt    time.Time // full-group clean_to covered the MID

	// Blocking lists the unmet dependencies observed when the message
	// parked in the waiting list; cleared once the message processes.
	Blocking []mid.MID

	Outcome Outcome
	// Stuck marks a span the watchdog flagged for waiting past threshold.
	Stuck bool
}

// done reports whether the span reached a terminal outcome.
func (s *Span) done() bool { return s.Outcome != InFlight }

// EndToEnd returns the first-observation→terminal latency of a done span.
func (s *Span) EndToEnd() time.Duration {
	end := s.ProcessedAt
	if s.Outcome == Discarded {
		end = s.DiscardedAt
	}
	if end.IsZero() || s.FirstSeen.IsZero() {
		return 0
	}
	return end.Sub(s.FirstSeen)
}

// Options tunes a Tracer. The zero value is usable.
type Options struct {
	// Capacity bounds the retained completed spans (default 256).
	Capacity int
	// SlowThreshold is how long a span may sit in the waiting list before
	// the watchdog flags it (default 1s).
	SlowThreshold time.Duration
	// CheckEvery is the watchdog cadence (default SlowThreshold/4).
	CheckEvery time.Duration
	// Blame, when non-nil, is asked to explain a stuck span from the
	// dependencies blocking it; a non-empty answer is appended to the
	// watchdog's event line. The runtimes wire this to the fault injector's
	// per-process fault summary, so a span stalled behind an injected crash
	// or omission burst says so. Called outside the tracer's lock.
	Blame func(blocking []mid.MID) string
}

func (o Options) fill() Options {
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = time.Second
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = o.SlowThreshold / 4
	}
	return o
}

// Tracer records spans for one group member. All stage methods are safe on
// a nil receiver (no-ops), so callers thread a possibly-nil tracer without
// branching. A non-nil Tracer is safe for concurrent use: stages arrive
// from the protocol goroutine while reports are read from HTTP handlers.
type Tracer struct {
	opts   Options
	node   mid.ProcID
	group  int // hosted-group id, or -1 on single-group members
	events *obs.EventLog

	// Pre-resolved instruments; all nil when no registry was given.
	emitToProcess *obs.Histogram
	waitlist      *obs.Histogram
	decision      *obs.Histogram
	stabilityLag  []*obs.Histogram // per sender
	slowTotal     *obs.Counter

	mu        sync.Mutex
	byID      map[mid.MID]*Span // in-flight + retained completed
	inflight  int
	ring      []*Span // completed, oldest overwritten first
	next      int
	full      bool
	started   int64
	completed int64
	discarded int64
	evicted   int64
	flagged   int64
	decided   mid.SeqVector // watermark: decisions cover (q, s<=decided[q])
	stable    mid.SeqVector // watermark: uniform stability
	lastCheck time.Time

	clock func() time.Time // test seam; time.Now outside tests
}

// New returns a tracer for member node of a group of n. reg, when non-nil,
// receives the stage-latency histograms and the watchdog counter (series
// labeled with the node); its event log receives watchdog flags.
func New(node mid.ProcID, n int, opts Options, reg *obs.Registry) *Tracer {
	return newTracer(node, n, -1, opts, reg)
}

// NewGroup returns a tracer for member node of hosted group `group` on a
// multi-group member: every instrument series carries node AND group labels
// (matching the per-group series rt.NewNodeObs emits for internal/topics),
// watchdog lines name the group, and Report carries it — the join key the
// cross-node stitcher needs, since MIDs recur across groups.
func NewGroup(node mid.ProcID, n int, group uint32, opts Options, reg *obs.Registry) *Tracer {
	return newTracer(node, n, int(group), opts, reg)
}

func newTracer(node mid.ProcID, n, group int, opts Options, reg *obs.Registry) *Tracer {
	t := &Tracer{
		opts:    opts.fill(),
		node:    node,
		group:   group,
		byID:    make(map[mid.MID]*Span),
		decided: mid.NewSeqVector(n),
		stable:  mid.NewSeqVector(n),
		clock:   time.Now,
	}
	t.ring = make([]*Span, t.opts.Capacity)
	if reg != nil {
		t.events = reg.Events()
		kv := []string{"node", strconv.Itoa(int(node))}
		if group >= 0 {
			kv = append(kv, "group", strconv.Itoa(group))
		}
		l := func(name string) string { return obs.Labeled(name, kv...) }
		t.emitToProcess = reg.Histogram(l("lifecycle_emit_to_process_seconds"), obs.DurationBuckets)
		t.waitlist = reg.Histogram(l("lifecycle_waitlist_seconds"), obs.DurationBuckets)
		t.decision = reg.Histogram(l("lifecycle_decision_seconds"), obs.DurationBuckets)
		t.slowTotal = reg.Counter(l("lifecycle_slow_messages_total"))
		t.stabilityLag = make([]*obs.Histogram, n)
		for q := range t.stabilityLag {
			t.stabilityLag[q] = reg.Histogram(obs.Labeled(
				"lifecycle_stability_lag_seconds", append(kv, "sender", strconv.Itoa(q))...), obs.DurationBuckets)
		}
	}
	return t
}

// Group returns the hosted-group id this tracer is tagged with, or -1 for
// a single-group member's tracer. Nil-safe.
func (t *Tracer) Group() int {
	if t == nil {
		return -1
	}
	return t.group
}

// get returns the span for id, creating it at now on first observation.
// A freshly created span inherits the watermarks: a message first seen
// after the decision (or stability) covering it — a recovery retransmit,
// say — is already decided (stable) from its first instant here.
func (t *Tracer) get(id mid.MID, now time.Time) *Span {
	if s, ok := t.byID[id]; ok {
		return s
	}
	s := &Span{ID: id, FirstSeen: now}
	if int(id.Proc) < len(t.decided) && id.Seq <= t.decided[id.Proc] {
		s.DecidedAt = now
	}
	if int(id.Proc) < len(t.stable) && id.Seq <= t.stable[id.Proc] {
		s.StableAt = now
	}
	t.byID[id] = s
	t.inflight++
	t.started++
	return s
}

// complete moves a span to the completed ring, evicting the oldest
// retained span when the ring is full.
func (t *Tracer) complete(s *Span) {
	t.inflight--
	if old := t.ring[t.next]; old != nil {
		// Evict only if the map still points at the ring occupant (a
		// re-observed MID may have replaced it).
		if cur, ok := t.byID[old.ID]; ok && cur == old {
			delete(t.byID, old.ID)
		}
		t.evicted++
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.next == 0 {
		t.full = true
	}
}

// Generated records Submit accepting an own message.
func (t *Tracer) Generated(id mid.MID) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	t.get(id, now).GeneratedAt = now
	t.mu.Unlock()
}

// Broadcast records an own message leaving the outbox onto the wire.
func (t *Tracer) Broadcast(id mid.MID) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	s := t.get(id, now)
	if s.BroadcastAt.IsZero() {
		s.BroadcastAt = now
	}
	t.mu.Unlock()
}

// Waiting records a message parking in the waiting list with the given
// unmet dependencies. blocking is cloned; callers may reuse the backing
// array (core hands out a scratch buffer).
func (t *Tracer) Waiting(id mid.MID, blocking mid.DepList) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	s := t.get(id, now)
	if s.WaitingAt.IsZero() {
		s.WaitingAt = now
	}
	s.Blocking = append(s.Blocking[:0], blocking...)
	t.mu.Unlock()
}

// Processed records local processing: the span completes with stage
// latencies fed into the histograms.
func (t *Tracer) Processed(id mid.MID) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	s := t.get(id, now)
	if s.done() { // duplicate terminal observation: keep the first
		t.mu.Unlock()
		return
	}
	s.ProcessedAt = now
	s.Outcome = Processed
	s.Blocking = s.Blocking[:0]
	t.completed++
	t.complete(s)
	generatedAt, waitingAt := s.GeneratedAt, s.WaitingAt
	t.mu.Unlock()
	if t.emitToProcess != nil && !generatedAt.IsZero() {
		t.emitToProcess.Observe(now.Sub(generatedAt).Seconds())
	}
	if t.waitlist != nil && !waitingAt.IsZero() {
		t.waitlist.Observe(now.Sub(waitingAt).Seconds())
	}
}

// Discarded records the agreed destruction of a waiting message.
func (t *Tracer) Discarded(id mid.MID) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	s := t.get(id, now)
	if s.done() {
		t.mu.Unlock()
		return
	}
	s.DiscardedAt = now
	s.Outcome = Discarded
	t.discarded++
	t.complete(s)
	t.mu.Unlock()
}

// DecisionApplied advances the decided watermark to the decision's
// max_processed vector and stamps every covered span that was still
// undecided, feeding first-seen→decided latency into the histogram.
func (t *Tracer) DecisionApplied(maxProcessed mid.SeqVector) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	t.decided.MaxInto(maxProcessed)
	var samples []float64
	for _, s := range t.byID {
		if !s.DecidedAt.IsZero() {
			continue
		}
		if int(s.ID.Proc) < len(t.decided) && s.ID.Seq <= t.decided[s.ID.Proc] {
			s.DecidedAt = now
			if t.decision != nil && !s.FirstSeen.IsZero() {
				samples = append(samples, now.Sub(s.FirstSeen).Seconds())
			}
		}
	}
	t.mu.Unlock()
	for _, lat := range samples {
		t.decision.Observe(lat)
	}
}

// StableTo advances the uniform-stability watermark to the full-group
// clean_to vector, stamping every covered span and feeding the per-sender
// processed→stable lag (the paper's uniform-atomicity latency).
func (t *Tracer) StableTo(clean mid.SeqVector) {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	t.stable.MaxInto(clean)
	type sample struct {
		sender mid.ProcID
		lat    float64
	}
	var samples []sample
	for _, s := range t.byID {
		if !s.StableAt.IsZero() {
			continue
		}
		if int(s.ID.Proc) < len(t.stable) && s.ID.Seq <= t.stable[s.ID.Proc] {
			s.StableAt = now
			if t.stabilityLag != nil && !s.ProcessedAt.IsZero() && int(s.ID.Proc) < len(t.stabilityLag) {
				samples = append(samples, sample{s.ID.Proc, now.Sub(s.ProcessedAt).Seconds()})
			}
		}
	}
	t.mu.Unlock()
	for _, sm := range samples {
		t.stabilityLag[sm.sender].Observe(sm.lat)
	}
}

// Tick runs the slow-message watchdog if a check is due: any in-flight
// span waiting past SlowThreshold is flagged once, counted, and logged with
// the dependencies blocking it. Call it from the round hook; it self-rate-
// limits to CheckEvery, so per-round cost is usually one time comparison.
func (t *Tracer) Tick() {
	if t == nil {
		return
	}
	now := t.clock()
	t.mu.Lock()
	if now.Sub(t.lastCheck) < t.opts.CheckEvery {
		t.mu.Unlock()
		return
	}
	t.lastCheck = now
	type flag struct {
		id       mid.MID
		waited   time.Duration
		blocking []mid.MID
	}
	var flags []flag
	for _, s := range t.byID {
		if s.done() || s.Stuck || s.WaitingAt.IsZero() {
			continue
		}
		if w := now.Sub(s.WaitingAt); w >= t.opts.SlowThreshold {
			s.Stuck = true
			t.flagged++
			flags = append(flags, flag{s.ID, w, append([]mid.MID(nil), s.Blocking...)})
		}
	}
	t.mu.Unlock()
	for _, f := range flags {
		if t.slowTotal != nil {
			t.slowTotal.Inc()
		}
		if t.events != nil {
			blame := ""
			if t.opts.Blame != nil {
				if b := t.opts.Blame(f.blocking); b != "" {
					blame = " (" + b + ")"
				}
			}
			if t.group >= 0 {
				t.events.Addf("lifecycle: node=%d group=%d %v stuck waiting %v, blocked on %v%s",
					t.node, t.group, f.id, f.waited.Round(time.Millisecond), f.blocking, blame)
			} else {
				t.events.Addf("lifecycle: node=%d %v stuck waiting %v, blocked on %v%s",
					t.node, f.id, f.waited.Round(time.Millisecond), f.blocking, blame)
			}
		}
	}
}

// Counts is the tracer's span accounting.
type Counts struct {
	Started   int64 // spans ever opened
	InFlight  int   // spans without a terminal outcome
	Completed int64 // spans ended in Processed
	Discarded int64 // spans ended in Discarded
	Evicted   int64 // completed spans dropped by ring wraparound
	Flagged   int64 // spans the watchdog marked stuck
}

// Counts returns the current span accounting.
func (t *Tracer) Counts() Counts {
	if t == nil {
		return Counts{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Counts{
		Started: t.started, InFlight: t.inflight, Completed: t.completed,
		Discarded: t.discarded, Evicted: t.evicted, Flagged: t.flagged,
	}
}

// snapshotLocked deep-copies a span for handoff outside the lock.
func snapshotLocked(s *Span) Span {
	cp := *s
	cp.Blocking = append([]mid.MID(nil), s.Blocking...)
	return cp
}

// SlowestInFlight returns up to n in-flight spans ordered slowest first
// (oldest first observation). Spans flagged by the watchdog sort ahead of
// unflagged ones of the same age class.
func (t *Tracer) SlowestInFlight(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, 0, t.inflight)
	for _, s := range t.byID {
		if !s.done() {
			out = append(out, snapshotLocked(s))
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stuck != out[j].Stuck {
			return out[i].Stuck
		}
		return out[i].FirstSeen.Before(out[j].FirstSeen)
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Recent returns up to n completed spans, most recently completed first.
func (t *Tracer) Recent(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, n)
	size := t.next
	if t.full {
		size = len(t.ring)
	}
	for i := 0; i < size && len(out) < n; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		if s := t.ring[idx]; s != nil {
			out = append(out, snapshotLocked(s))
		}
	}
	return out
}

// TopSlowest returns up to n retained completed spans with the largest
// end-to-end latency, slowest first — the shutdown-summary evidence.
func (t *Tracer) TopSlowest(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	all := make([]Span, 0, len(t.ring))
	for _, s := range t.ring {
		if s != nil {
			all = append(all, snapshotLocked(s))
		}
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].EndToEnd() > all[j].EndToEnd() })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

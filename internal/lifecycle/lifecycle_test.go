package lifecycle

import (
	"strings"
	"testing"
	"time"

	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/sim"
	"urcgc/internal/trace"
)

// fakeClock installs a settable clock on the tracer and returns the setter.
func fakeClock(t *Tracer) func(time.Duration) {
	now := time.Unix(1000, 0)
	t.clock = func() time.Time { return now }
	return func(d time.Duration) { now = now.Add(d) }
}

func TestSpanHappyPath(t *testing.T) {
	reg := obs.New()
	tr := New(0, 3, Options{}, reg)
	advance := fakeClock(tr)
	id := mid.MID{Proc: 0, Seq: 1}

	tr.Generated(id)
	advance(time.Millisecond)
	tr.Broadcast(id)
	advance(2 * time.Millisecond)
	tr.Processed(id)
	advance(time.Millisecond)
	tr.DecisionApplied(mid.SeqVector{1, 0, 0})
	advance(time.Millisecond)
	tr.StableTo(mid.SeqVector{1, 0, 0})

	c := tr.Counts()
	if c.Started != 1 || c.Completed != 1 || c.InFlight != 0 {
		t.Fatalf("counts = %+v", c)
	}
	spans := tr.Recent(10)
	if len(spans) != 1 {
		t.Fatalf("recent = %d spans", len(spans))
	}
	s := spans[0]
	if s.Outcome != Processed {
		t.Fatalf("outcome = %v", s.Outcome)
	}
	for name, at := range map[string]time.Time{
		"generated": s.GeneratedAt, "broadcast": s.BroadcastAt,
		"processed": s.ProcessedAt, "decided": s.DecidedAt, "stable": s.StableAt,
	} {
		if at.IsZero() {
			t.Errorf("%s timestamp not stamped", name)
		}
	}
	if got := s.EndToEnd(); got != 3*time.Millisecond {
		t.Errorf("end-to-end = %v, want 3ms", got)
	}
	if h := reg.Histogram(obs.Labeled("lifecycle_emit_to_process_seconds", "node", "0"), nil); h.Count() != 1 {
		t.Errorf("emit_to_process count = %d", h.Count())
	}
	if h := reg.Histogram(obs.Labeled("lifecycle_stability_lag_seconds", "node", "0", "sender", "0"), nil); h.Count() != 1 {
		t.Errorf("stability_lag count = %d", h.Count())
	}
}

func TestWaitingClonesBlockingList(t *testing.T) {
	tr := New(1, 3, Options{}, nil)
	fakeClock(tr)
	id := mid.MID{Proc: 0, Seq: 2}
	scratch := mid.DepList{{Proc: 0, Seq: 1}}
	tr.Waiting(id, scratch)
	scratch[0] = mid.MID{Proc: 2, Seq: 9} // caller reuses the backing array

	spans := tr.SlowestInFlight(1)
	if len(spans) != 1 {
		t.Fatalf("in-flight = %d", len(spans))
	}
	want := mid.MID{Proc: 0, Seq: 1}
	if len(spans[0].Blocking) != 1 || spans[0].Blocking[0] != want {
		t.Fatalf("blocking = %v, want [%v]", spans[0].Blocking, want)
	}
}

func TestOutOfOrderStageObservations(t *testing.T) {
	tr := New(0, 3, Options{}, nil)
	advance := fakeClock(tr)

	// A decision and full-group stability arrive before the message itself
	// (recovery retransmit): the span must inherit both watermarks at
	// creation instead of showing an undecided ghost.
	tr.DecisionApplied(mid.SeqVector{0, 3, 0})
	tr.StableTo(mid.SeqVector{0, 3, 0})
	advance(time.Millisecond)
	late := mid.MID{Proc: 1, Seq: 2}
	tr.Waiting(late, nil)
	spans := tr.SlowestInFlight(1)
	if len(spans) != 1 || spans[0].DecidedAt.IsZero() || spans[0].StableAt.IsZero() {
		t.Fatalf("late span did not inherit watermarks: %+v", spans)
	}

	// Processing before any decision: the decided stamp lands later, on the
	// completed span still retained in the ring.
	early := mid.MID{Proc: 2, Seq: 1}
	tr.Processed(early)
	advance(time.Millisecond)
	tr.DecisionApplied(mid.SeqVector{0, 0, 1})
	for _, s := range tr.Recent(10) {
		if s.ID == early {
			if s.DecidedAt.IsZero() {
				t.Fatal("decision after processing did not stamp the completed span")
			}
			if !s.DecidedAt.After(s.ProcessedAt) {
				t.Fatal("decided stamp should postdate processing here")
			}
			return
		}
	}
	t.Fatal("early span not in recent ring")
}

func TestDiscardedOutcome(t *testing.T) {
	tr := New(0, 3, Options{}, nil)
	advance := fakeClock(tr)
	id := mid.MID{Proc: 1, Seq: 5}
	tr.Waiting(id, mid.DepList{{Proc: 1, Seq: 4}})
	advance(time.Millisecond)
	tr.Discarded(id)
	tr.Processed(id) // duplicate terminal observation: first one wins

	c := tr.Counts()
	if c.Discarded != 1 || c.Completed != 0 || c.InFlight != 0 {
		t.Fatalf("counts = %+v", c)
	}
	s := tr.Recent(1)
	if len(s) != 1 || s[0].Outcome != Discarded || s[0].DiscardedAt.IsZero() {
		t.Fatalf("span = %+v", s)
	}
	if s[0].EndToEnd() != time.Millisecond {
		t.Fatalf("end-to-end = %v", s[0].EndToEnd())
	}
}

func TestWatchdogFlagsStuckSpans(t *testing.T) {
	reg := obs.New()
	tr := New(0, 3, Options{SlowThreshold: 100 * time.Millisecond}, reg)
	advance := fakeClock(tr)

	stuck := mid.MID{Proc: 1, Seq: 7}
	dep := mid.MID{Proc: 1, Seq: 6}
	tr.Waiting(stuck, mid.DepList{dep})
	advance(50 * time.Millisecond)
	tr.Tick()
	if c := tr.Counts(); c.Flagged != 0 {
		t.Fatalf("flagged before threshold: %+v", c)
	}
	advance(60 * time.Millisecond) // 110ms waited, past threshold
	tr.Tick()
	tr.Tick() // second check must not double-flag
	advance(time.Hour)
	tr.Tick()
	if c := tr.Counts(); c.Flagged != 1 {
		t.Fatalf("flagged = %d, want 1", c.Flagged)
	}
	if got := reg.Counter(obs.Labeled("lifecycle_slow_messages_total", "node", "0")).Value(); got != 1 {
		t.Fatalf("slow counter = %d", got)
	}
	var sb strings.Builder
	reg.Events().Write(&sb)
	if !strings.Contains(sb.String(), dep.String()) {
		t.Fatalf("watchdog event does not name the blocking MID:\n%s", sb.String())
	}
	// The stuck span sorts ahead of a younger healthy one.
	tr.Waiting(mid.MID{Proc: 2, Seq: 1}, nil)
	if spans := tr.SlowestInFlight(2); len(spans) != 2 || spans[0].ID != stuck || !spans[0].Stuck {
		t.Fatalf("slowest-first order wrong: %+v", spans)
	}
	// Processing clears it from the in-flight set.
	tr.Processed(stuck)
	if spans := tr.SlowestInFlight(2); len(spans) != 1 {
		t.Fatalf("in-flight after processing = %d", len(spans))
	}
}

func TestRingEvictionAccounting(t *testing.T) {
	tr := New(0, 3, Options{Capacity: 2}, nil)
	fakeClock(tr)
	for s := mid.Seq(1); s <= 3; s++ {
		tr.Processed(mid.MID{Proc: 0, Seq: s})
	}
	c := tr.Counts()
	if c.Completed != 3 || c.Evicted != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if spans := tr.Recent(10); len(spans) != 2 || spans[0].ID.Seq != 3 || spans[1].ID.Seq != 2 {
		t.Fatalf("recent = %+v", spans)
	}
	// The evicted span is gone from the index: a later stability stamp for
	// it must not resurrect anything.
	tr.StableTo(mid.SeqVector{3, 0, 0})
	if c := tr.Counts(); c.Started != 3 {
		t.Fatalf("stability resurrect: %+v", c)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	id := mid.MID{Proc: 0, Seq: 1}
	tr.Generated(id)
	tr.Broadcast(id)
	tr.Waiting(id, nil)
	tr.Processed(id)
	tr.Discarded(id)
	tr.DecisionApplied(nil)
	tr.StableTo(nil)
	tr.Tick()
	if c := tr.Counts(); c != (Counts{}) {
		t.Fatalf("nil counts = %+v", c)
	}
	if tr.SlowestInFlight(5) != nil || tr.Recent(5) != nil || tr.TopSlowest(5) != nil {
		t.Fatal("nil queries should return nil")
	}
	if r := tr.Report(5, 5); r.Counts != (Counts{}) {
		t.Fatalf("nil report = %+v", r)
	}
}

func TestFromRecorderBreakdown(t *testing.T) {
	const rtd = sim.TicksPerRTD
	rec := trace.NewRecorder(2)
	m := mid.MID{Proc: 0, Seq: 1}
	rec.Generate(0, 0, m, nil)
	rec.Broadcast(1*rtd, 0, m)
	rec.Process(1*rtd, 0, m) // origin processes at broadcast
	rec.Wait(2*rtd, 1, m, mid.DepList{{Proc: 0, Seq: 0}})
	rec.Process(3*rtd, 1, m) // waited one RTD at p1; uniform at 3 RTD

	b := FromRecorder(rec)
	if b.Messages != 1 || b.UniformCount != 1 || b.WaitCount != 1 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.MeanEmitToBroadcast != 1 || b.MeanEmitToFirstProcess != 1 {
		t.Fatalf("emit stages = %+v", b)
	}
	if b.MeanEmitToUniform != 3 || b.MeanWait != 1 {
		t.Fatalf("uniform/wait = %+v", b)
	}
	if !strings.Contains(b.Render(), "emit -> uniform") {
		t.Fatal("render missing stage row")
	}

	// A crashed process drops out of the uniform condition.
	rec2 := trace.NewRecorder(2)
	rec2.Generate(0, 0, m, nil)
	rec2.Broadcast(1*rtd, 0, m)
	rec2.Process(1*rtd, 0, m)
	rec2.Crash(2*rtd, 1)
	b2 := FromRecorder(rec2)
	if b2.UniformCount != 1 || b2.MeanEmitToUniform != 1 {
		t.Fatalf("survivor-only uniform = %+v", b2)
	}
}

func TestReportShapes(t *testing.T) {
	tr := New(2, 3, Options{SlowThreshold: time.Second}, nil)
	advance := fakeClock(tr)
	waiting := mid.MID{Proc: 0, Seq: 1}
	tr.Waiting(waiting, mid.DepList{{Proc: 1, Seq: 3}})
	done := mid.MID{Proc: 2, Seq: 1}
	tr.Generated(done)
	advance(time.Millisecond)
	tr.Processed(done)

	r := tr.Report(5, 5)
	if r.Node != 2 || r.Counts.InFlight != 1 || len(r.Slowest) != 1 || len(r.Recent) != 1 {
		t.Fatalf("report = %+v", r)
	}
	if r.Slowest[0].MID != waiting.String() || len(r.Slowest[0].Blocking) != 1 {
		t.Fatalf("slowest view = %+v", r.Slowest[0])
	}
	if r.Recent[0].Outcome != "processed" || r.Recent[0].EndToEndSeconds == 0 {
		t.Fatalf("recent view = %+v", r.Recent[0])
	}

	var sb strings.Builder
	tr.WriteSlowest(&sb, 5)
	if !strings.Contains(sb.String(), done.String()) {
		t.Fatalf("WriteSlowest missing completed span:\n%s", sb.String())
	}
}

// TestWatchdogBlamesInjectedFaults pins the fault-injection integration:
// when Options.Blame explains the blocking dependencies, the watchdog
// event line carries the explanation, and an empty answer adds nothing.
func TestWatchdogBlamesInjectedFaults(t *testing.T) {
	reg := obs.New()
	var asked []mid.MID
	tr := New(0, 3, Options{
		SlowThreshold: 100 * time.Millisecond,
		Blame: func(blocking []mid.MID) string {
			asked = append(asked, blocking...)
			if len(blocking) > 0 && blocking[0].Proc == 1 {
				return "faultrt[p1: crashed at 2s]"
			}
			return ""
		},
	}, reg)
	advance := fakeClock(tr)

	blamed := mid.MID{Proc: 1, Seq: 7}
	tr.Waiting(mid.MID{Proc: 2, Seq: 3}, mid.DepList{blamed})
	tr.Waiting(mid.MID{Proc: 2, Seq: 4}, mid.DepList{{Proc: 0, Seq: 9}})
	advance(time.Hour)
	tr.Tick()
	if c := tr.Counts(); c.Flagged != 2 {
		t.Fatalf("flagged = %d, want 2", c.Flagged)
	}
	if len(asked) == 0 {
		t.Fatal("Blame was never consulted")
	}
	var sb strings.Builder
	reg.Events().Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "(faultrt[p1: crashed at 2s])") {
		t.Errorf("blamed span's event line missing the fault summary:\n%s", out)
	}
	if strings.Count(out, "faultrt[") != 1 {
		t.Errorf("unblamed span must not carry a fault annotation:\n%s", out)
	}
}

package benchsuite

import (
	"context"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/obs"
	"urcgc/internal/rt"
)

// SamplerOverhead is LiveConfirmLatency with the full observability stack
// attached: a metrics registry on the cluster and a flight recorder
// sampling every instrument at 1ms — an order of magnitude faster than
// urcgc-node's default, so the recorded number is an upper bound on what
// /timeseries costs a live cluster. Comparing its ns/op and allocs/op
// against LiveConfirmLatency bounds the price of health monitoring when
// switched on; the sampler-disabled path is separately proven
// 0-extra-allocs by TestSamplerDisabledDeliverAllocFree in rt and
// TestFlightSampleAllocFree in obs.
func SamplerOverhead(b *testing.B) {
	reg := obs.New()
	c, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: 5, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: 200 * time.Microsecond,
		Metrics:       reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	flight := obs.NewFlight(reg, obs.FlightOptions{Interval: time.Millisecond, Cap: 2048})
	flight.Start()
	defer flight.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Node(mid.ProcID(i%5)).Send(ctx, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

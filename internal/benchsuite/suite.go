// Package benchsuite holds the benchmark bodies for the paper's evaluation
// figures and the protocol's hot paths. The root bench_test.go wraps each
// function as a standard `go test -bench` benchmark, while cmd/urcgc-bench
// runs the same bodies through testing.Benchmark to record the
// BENCH_BASELINE.json perf artifact — one implementation, two harnesses, so
// the committed baseline and the CI benches can never drift apart.
package benchsuite

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"urcgc/internal/causal"
	"urcgc/internal/cbcast"
	"urcgc/internal/core"
	"urcgc/internal/experiments"
	"urcgc/internal/fault"
	"urcgc/internal/history"
	"urcgc/internal/mid"
	"urcgc/internal/rt"
	"urcgc/internal/sim"
	"urcgc/internal/vclock"
	"urcgc/internal/waitlist"
	"urcgc/internal/wire"
)

// Case names one benchmark of the recorded baseline.
type Case struct {
	Name string
	F    func(b *testing.B)
}

// Baseline lists the benches recorded in BENCH_BASELINE.json: the Fig. 4/5/6
// end-to-end benches plus the hot-path micro benches. Every future perf PR
// refreshes the artifact and has these numbers to beat.
func Baseline() []Case {
	return []Case{
		{"Fig4Reliable", Fig4Reliable},
		{"Fig4Crashes", Fig4Crashes},
		{"Fig4Omit500", Fig4Omit500},
		{"Fig4Omit100", Fig4Omit100},
		{"Fig5", Fig5},
		{"Fig6a", Fig6a},
		{"Fig6b", Fig6b},
		{"DeliveryReadyTest", DeliveryReadyTest},
		{"HistoryStoreAndClean", HistoryStoreAndClean},
		{"WaitlistCascade", WaitlistCascade},
		{"WireMarshalDecision", WireMarshalDecision},
		{"WireMarshalAppendDecision", WireMarshalAppendDecision},
		{"WireUnmarshalData", WireUnmarshalData},
		{"VectorClockDeliverable", VectorClockDeliverable},
		{"CBCASTRun", CBCASTRun},
		{"LiveConfirmLatency", LiveConfirmLatency},
		{"StageLatencyBreakdown", StageLatencyBreakdown},
		{"LifecycleOverhead", LifecycleOverhead},
		{"SamplerOverhead", SamplerOverhead},
		{"ThroughputSaturationN5B1", ThroughputSaturationN5B1},
		{"ThroughputSaturationN5B8", ThroughputSaturationN5B8},
		{"ThroughputSaturationN5B32", ThroughputSaturationN5B32},
		{"ThroughputSaturationN9B32", ThroughputSaturationN9B32},
		{"GroupScalingG1S1", GroupScalingG1S1},
		{"GroupScalingG2S2", GroupScalingG2S2},
		{"GroupScalingG4S4", GroupScalingG4S4},
		{"GroupScalingG8S8", GroupScalingG8S8},
		{"GroupScalingG8S1", GroupScalingG8S1},
	}
}

// ---- Figure 4: mean end-to-end delay vs offered load ----

func benchFig4(b *testing.B, inj func() fault.Injector) {
	b.ReportAllocs()
	var lastD float64
	for i := 0; i < b.N; i++ {
		var fi fault.Injector
		if inj != nil {
			fi = inj()
		}
		c, err := core.NewCluster(core.ClusterConfig{
			Config:   core.Config{N: 10, K: 3, R: 8, SelfExclusion: true},
			Seed:     int64(i) + 1,
			Injector: fi,
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i) + 7))
		_, err = c.Run(core.RunOptions{
			MaxRounds: 2*120 + 200, MinRounds: 2 * 120,
			OnRound: func(round int) {
				if round%2 != 0 || round/2 >= 120 {
					return
				}
				for p := 0; p < c.N(); p++ {
					pp := mid.ProcID(p)
					if c.Active(pp) && rng.Float64() < 1.0 {
						_, _ = c.Submit(pp, make([]byte, 64), nil)
					}
				}
			},
			StopWhenQuiescent: true, DrainSubruns: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		lastD = c.Delay.MeanRTD()
	}
	b.ReportMetric(lastD, "delay_rtd")
}

// Fig4Reliable is the failure-free load/delay curve point.
func Fig4Reliable(b *testing.B) { benchFig4(b, nil) }

// Fig4Crashes injects four staggered crashes (the paper's crash curve).
func Fig4Crashes(b *testing.B) {
	benchFig4(b, func() fault.Injector {
		return fault.Multi{
			fault.Crash{Proc: 9, At: sim.StartOfSubrun(20)},
			fault.Crash{Proc: 8, At: sim.StartOfSubrun(45)},
			fault.Crash{Proc: 7, At: sim.StartOfSubrun(70)},
			fault.Crash{Proc: 6, At: sim.StartOfSubrun(95)},
		}
	})
}

// Fig4Omit500 drops every 500th send.
func Fig4Omit500(b *testing.B) {
	benchFig4(b, func() fault.Injector { return &fault.EveryNth{N: 500, Side: fault.AtSend} })
}

// Fig4Omit100 drops every 100th send.
func Fig4Omit100(b *testing.B) {
	benchFig4(b, func() fault.Injector { return &fault.EveryNth{N: 100, Side: fault.AtSend} })
}

// ---- Figure 5: agreement time vs consecutive coordinator crashes ----

// Fig5 measures agreement time with 0 and 2 coordinator crashes, for urcgc
// and the CBCAST baseline.
func Fig5(b *testing.B) {
	b.ReportAllocs()
	var res experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig5(experiments.Fig5Config{N: 10, K: 3, Fs: []int{0, 2}, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Points) == 2 {
		b.ReportMetric(res.Points[0].URCGCMeasured, "urcgcT(f=0)_rtd")
		b.ReportMetric(res.Points[1].URCGCMeasured, "urcgcT(f=2)_rtd")
		b.ReportMetric(res.Points[0].CBCASTMeasured, "cbcastT(f=0)_rtd")
		b.ReportMetric(res.Points[1].CBCASTMeasured, "cbcastT(f=2)_rtd")
	}
}

// ---- Table 1: control messages and sizes ----

// Table1 regenerates the control-traffic table at n=15.
func Table1(b *testing.B) {
	b.ReportAllocs()
	var res experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1(experiments.Table1Config{Ns: []int{15}, K: 3, Subruns: 40, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Protocol == "urcgc" && row.Condition == "reliable" {
			b.ReportMetric(row.MsgsPerSubrun, "urcgc_ctl/subrun")
			b.ReportMetric(row.MeanSize, "urcgc_ctlB")
		}
		if row.Protocol == "cbcast" && row.Condition == "crash" {
			b.ReportMetric(row.MsgsPerSubrun, "cbcast_crash_ctl/subrun")
		}
	}
}

// ---- Figure 6: history length over time ----

func benchFig6(b *testing.B, flow bool) {
	b.ReportAllocs()
	var res experiments.Fig6Result
	cfg := experiments.Fig6Config{
		N: 40, Messages: 480, Ks: []int{3}, Threshold: 320, FailWindowRTD: 5, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		var err error
		if flow {
			res, err = experiments.Fig6b(cfg)
		} else {
			res, err = experiments.Fig6a(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, curve := range res.Curves {
		if curve.Faulty {
			b.ReportMetric(curve.Peak, "faulty_histpeak")
			b.ReportMetric(curve.DoneRTD, "faulty_done_rtd")
		} else {
			b.ReportMetric(curve.Peak, "reliable_histpeak")
		}
	}
}

// Fig6a plots history growth without flow control.
func Fig6a(b *testing.B) { benchFig6(b, false) }

// Fig6b plots history growth with the flow-control threshold.
func Fig6b(b *testing.B) { benchFig6(b, true) }

// ---- Hot-path micro-benchmarks ----

// DeliveryReadyTest measures the causal readiness test on a warm tracker.
func DeliveryReadyTest(b *testing.B) {
	tr := causal.NewTracker(40)
	for q := 0; q < 40; q++ {
		for s := mid.Seq(1); s <= 10; s++ {
			if err := tr.Process(&causal.Message{ID: mid.MID{Proc: mid.ProcID(q), Seq: s}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	m := &causal.Message{
		ID:   mid.MID{Proc: 3, Seq: 11},
		Deps: mid.DepList{{Proc: 7, Seq: 10}, {Proc: 20, Seq: 9}, {Proc: 39, Seq: 10}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !tr.Ready(m) {
			b.Fatal("should be ready")
		}
	}
}

// HistoryStoreAndClean measures the store-then-purge cycle for 40 senders.
func HistoryStoreAndClean(b *testing.B) {
	b.ReportAllocs()
	stable := mid.NewSeqVector(40)
	for i := range stable {
		stable[i] = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := history.New(40)
		for q := 0; q < 40; q++ {
			for s := mid.Seq(1); s <= 10; s++ {
				if err := h.Store(&causal.Message{ID: mid.MID{Proc: mid.ProcID(q), Seq: s}}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if h.CleanTo(stable) != 400 {
			b.Fatal("clean mismatch")
		}
	}
}

// WaitlistCascade measures releasing a 64-deep reversed dependency chain.
func WaitlistCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := causal.NewTracker(8)
		wl := waitlist.New(8)
		// A chain of 64 messages arriving in reverse.
		for s := mid.Seq(64); s >= 2; s-- {
			wl.Add(&causal.Message{ID: mid.MID{Proc: 0, Seq: s}})
		}
		b.StartTimer()
		if err := tr.Process(&causal.Message{ID: mid.MID{Proc: 0, Seq: 1}}); err != nil {
			b.Fatal(err)
		}
		for {
			m := wl.NextReady(tr)
			if m == nil {
				break
			}
			wl.Remove(m.ID)
			if err := tr.Process(m); err != nil {
				b.Fatal(err)
			}
		}
		if wl.Len() != 0 {
			b.Fatal("cascade incomplete")
		}
	}
}

// benchDecision builds the n=40 decision used by the codec benches.
func benchDecision() *wire.Decision {
	return &wire.Decision{
		Subrun:       1234,
		Coord:        3,
		MaxProcessed: mid.NewSeqVector(40),
		MostUpdated:  make([]mid.ProcID, 40),
		MinWaiting:   mid.NewSeqVector(40),
		CleanTo:      mid.NewSeqVector(40),
		Attempts:     make([]uint8, 40),
		Alive:        make([]bool, 40),
		Covered:      make([]bool, 40),
	}
}

// WireMarshalDecision round-trips an n=40 decision through Marshal and
// Unmarshal — the dominant control-plane codec cost per round.
func WireMarshalDecision(b *testing.B) {
	d := benchDecision()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := wire.Marshal(d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// WireMarshalAppendDecision measures the pure encode hot path: MarshalAppend
// into a reused buffer, which the broadcast fan-out runs once per PDU. It
// must stay allocation-free.
func WireMarshalAppendDecision(b *testing.B) {
	d := benchDecision()
	buf := make([]byte, 0, d.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.MarshalAppend(buf[:0], d)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// WireUnmarshalData measures decoding a 64-byte-payload data message — the
// per-datagram cost of the UDP reader.
func WireUnmarshalData(b *testing.B) {
	d := &wire.Data{Msg: causal.Message{
		ID:      mid.MID{Proc: 3, Seq: 17},
		Deps:    mid.DepList{{Proc: 0, Seq: 4}, {Proc: 2, Seq: 9}},
		Payload: make([]byte, 64),
	}}
	buf, err := wire.Marshal(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// VectorClockDeliverable measures the CBCAST delivery test.
func VectorClockDeliverable(b *testing.B) {
	local := vclock.New(40)
	ts := vclock.New(40)
	for i := range local {
		local[i] = uint32(i)
		ts[i] = uint32(i)
	}
	ts[5] = local[5] + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !vclock.Deliverable(ts, 5, local) {
			b.Fatal("should deliver")
		}
	}
}

// CBCASTRun exercises the baseline end to end for comparison with the urcgc
// figure benches.
func CBCASTRun(b *testing.B) {
	b.ReportAllocs()
	var d float64
	for i := 0; i < b.N; i++ {
		c, err := cbcast.NewCluster(cbcast.ClusterConfig{
			Config: cbcast.Config{N: 10, K: 3},
			Seed:   int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		err = c.Run(2*120+100, func(round int) {
			if round%2 != 0 || round/2 >= 120 {
				return
			}
			for p := 0; p < c.N(); p++ {
				c.Submit(mid.ProcID(p), make([]byte, 64))
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		d = c.Delay.MeanRTD()
	}
	b.ReportMetric(d, "delay_rtd")
}

// ---- Throughput saturation: msgs/sec x cluster size x batch size ----

// benchThroughput saturates a live mesh cluster of n nodes with many
// concurrent blocking senders and reports sustained confirmed messages per
// second. batch <= 1 runs the classic path — one Data broadcast per subrun
// per node, so throughput is capped near n/subrun — while batch > 1 turns
// on the coalescing sender and multi-message DataBatch frames.
func benchThroughput(b *testing.B, n, batch int) {
	cfg := rt.Config{
		Config:        core.Config{N: n, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: 200 * time.Microsecond,
	}
	if batch > 1 {
		cfg.BatchWindow = 100 * time.Microsecond
		cfg.BatchMax = batch
	}
	c, err := rt.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	payload := make([]byte, 64)
	// Enough in-flight senders per node to fill every subrun's drain even
	// at the largest batch budget benched.
	const workers = 64
	var next atomic.Int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				if _, err := c.Node(mid.ProcID(int(i)%n)).Send(ctx, payload, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// ThroughputSaturationN5B1 is the unbatched control: five nodes, classic
// one-Data-per-subrun hot path.
func ThroughputSaturationN5B1(b *testing.B) { benchThroughput(b, 5, 1) }

// ThroughputSaturationN5B8 batches up to 8 messages per subrun drain.
func ThroughputSaturationN5B8(b *testing.B) { benchThroughput(b, 5, 8) }

// ThroughputSaturationN5B32 batches up to 32 messages per subrun drain —
// the acceptance shape, required to confirm >= 3x the unbatched rate.
func ThroughputSaturationN5B32(b *testing.B) { benchThroughput(b, 5, 32) }

// ThroughputSaturationN9B32 scales the batched shape to nine nodes.
func ThroughputSaturationN9B32(b *testing.B) { benchThroughput(b, 9, 32) }

// LiveConfirmLatency measures the urcgc-data.Rq -> Conf latency on the live
// goroutine runtime (one confirm per iteration), exercising the real codec
// and channel mesh rather than the simulator.
func LiveConfirmLatency(b *testing.B) {
	c, err := rt.NewCluster(rt.Config{
		Config:        core.Config{N: 5, K: 3, R: 8, SelfExclusion: true},
		RoundDuration: 200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Node(mid.ProcID(i%5)).Send(ctx, payload, nil); err != nil {
			b.Fatal(err)
		}
	}
}

package benchsuite

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"urcgc/internal/core"
	"urcgc/internal/mid"
	"urcgc/internal/topics"
)

// ---- Group scaling: aggregate msgs/s x groups x shards ----

// benchGroupScaling saturates a multi-group mesh cluster and reports the
// aggregate confirmed rate across every group. Each group's throughput is
// round-pacing-bound (confirm latency is one or two subruns), so hosting G
// independent groups over S shard loops multiplies the aggregate even on
// one core — the sharded runtime's whole point. Workers spread across
// groups and members; the iteration budget is shared, so msgs/s is the
// true aggregate.
func benchGroupScaling(b *testing.B, groups, shards int) {
	const n = 3
	c, err := topics.NewMultiCluster(topics.Config{
		Config:        core.Config{N: n, K: 3, R: 8, BatchMax: 64, SelfExclusion: true},
		Groups:        groups,
		Shards:        shards,
		RoundDuration: 500 * time.Microsecond,
		BatchWindow:   200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	payload := make([]byte, 64)
	// Enough in-flight senders per group to fill its subrun drains without
	// flooding the shared shards when G is large.
	const workersPerGroup = 8
	workers := workersPerGroup * groups
	var next atomic.Int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		g := uint32(w % groups)
		node := c.Node(mid.ProcID(w % n))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				if _, err := node.Send(ctx, g, payload, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
	b.ReportMetric(float64(groups), "groups")
	b.ReportMetric(float64(shards), "shards")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// GroupScalingG1S1 is the single-group control every scaling point is
// measured against.
func GroupScalingG1S1(b *testing.B) { benchGroupScaling(b, 1, 1) }

// GroupScalingG2S2 doubles the groups and the shards.
func GroupScalingG2S2(b *testing.B) { benchGroupScaling(b, 2, 2) }

// GroupScalingG4S4 is the mid scaling point.
func GroupScalingG4S4(b *testing.B) { benchGroupScaling(b, 4, 4) }

// GroupScalingG8S8 is the acceptance shape: aggregate msgs/s must be at
// least 3x the G1S1 control.
func GroupScalingG8S8(b *testing.B) { benchGroupScaling(b, 8, 8) }

// GroupScalingG8S1 squeezes eight groups through one shard loop — the
// contrast that isolates what sharding (vs mere multiplexing) buys.
func GroupScalingG8S1(b *testing.B) { benchGroupScaling(b, 8, 1) }
